// Package lcn3d is a library for designing microchannel liquid cooling
// networks for 3D ICs, reproducing "Minimizing Thermal Gradient and
// Pumping Power in 3D IC Liquid Cooling Network Design" (Chen, Kuang,
// Zeng, Zhang, Young, Yu — DAC 2017).
//
// It bundles:
//
//   - a laminar flow solver for arbitrary channel topologies (paper
//     Eqs. (1)-(3));
//   - two steady thermal simulators: the accurate fine-grained 4RM model
//     and the fast porous-medium 2RM model (Sections 2.2-2.3), plus a
//     transient extension;
//   - network evaluation procedures that find the lowest feasible
//     pumping power or thermal gradient of a design (Algorithms 2-3,
//     golden-section search);
//   - a multi-stage simulated-annealing optimizer over hierarchical
//     tree-like cooling networks (Algorithm 1, Sections 4.3-4.4);
//   - reconstructions of the five ICCAD 2015 contest benchmarks
//     (Table 2).
//
// # Quick start
//
//	bench, _ := lcn3d.LoadBenchmarkScaled(1, 51)      // ICCAD case 1, 51x51 grid
//	net := lcn3d.StraightNetwork(bench.Stk.Dims)      // straight-channel baseline
//	out, _ := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: 10e3})
//	fmt.Println(out.Tmax, out.DeltaT, out.Wpump)
//
// See the examples/ directory for runnable programs.
package lcn3d

import (
	"context"
	"fmt"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// Re-exported central types. The implementation lives in internal
// packages; these aliases form the supported public surface.
type (
	// Benchmark is a loaded ICCAD-2015-style case: stack, power maps and
	// constraints.
	Benchmark = iccad.Benchmark
	// Network is a cooling-network topology on the channel layer.
	Network = network.Network
	// TreeSpec parameterizes a hierarchical tree-like network.
	TreeSpec = network.TreeSpec
	// Outcome is the result of one steady simulation.
	Outcome = thermal.Outcome
	// EvalResult scores a network under Problem 1 or Problem 2.
	EvalResult = core.EvalResult
	// Solution is an optimized cooling system.
	Solution = core.Solution
	// Options tunes the SA optimization flow.
	Options = core.Options
	// Stage configures one SA stage.
	Stage = core.Stage
	// SearchOptions tunes the pressure searches.
	SearchOptions = core.SearchOptions
	// Stack describes the 3D IC layer composition.
	Stack = stack.Stack
	// Instance is a benchmark problem for the optimizer.
	Instance = core.Instance
	// Dims is a basic-cell grid size.
	Dims = grid.Dims
)

// Branch types for tree networks.
const (
	Branch2 = network.Branch2
	Branch4 = network.Branch4
	Branch8 = network.Branch8
)

// LoadBenchmark loads ICCAD 2015 case id (1-5) at full 101×101 scale.
func LoadBenchmark(id int) (*Benchmark, error) { return iccad.Load(id) }

// LoadBenchmarkScaled loads case id on an n×n grid (power scaled to
// preserve areal density).
func LoadBenchmarkScaled(id, n int) (*Benchmark, error) {
	return iccad.LoadScaled(id, grid.Dims{NX: n, NY: n})
}

// StraightNetwork builds the maximum-density straight-channel baseline
// flowing west to east.
func StraightNetwork(d Dims) *Network { return network.Straight(d, grid.SideWest, 1) }

// TreeNetwork builds a hierarchical tree-like network with numTrees
// trees of the given branch type and uniform branch fractions f1 < f2.
func TreeNetwork(d Dims, numTrees int, typ network.BranchType, f1, f2 float64) (*Network, error) {
	return network.Tree(d, network.UniformTreeSpec(d, numTrees, typ, f1, f2))
}

// MeshNetwork builds straight channels with vertical cross-links.
func MeshNetwork(d Dims, rowStep, colStep int) *Network { return network.Mesh(d, rowStep, colStep) }

// SerpentineNetwork builds a single snake channel.
func SerpentineNetwork(d Dims) *Network { return network.Serpentine(d) }

// AdaptiveNetwork builds straight channels whose row density follows a
// power map's heat distribution (hot bands dense, cold bands thinned) —
// the paper's "factor 3" compensation in its simplest manual form.
// keepFrac in (0, 1] is the fraction of channel rows kept; maxGap bounds
// consecutive skipped rows.
func AdaptiveNetwork(b *Benchmark, keepFrac float64, maxGap int) *Network {
	d := b.Stk.Dims
	heat := make([]float64, d.NY)
	for _, l := range b.Stk.SourceLayers() {
		rows := network.RowHeatLoads(d, b.Stk.Layers[l].Power.W)
		for y := range heat {
			heat[y] += rows[y]
		}
	}
	return network.DensityAdaptive(d, heat, keepFrac, maxGap)
}

// ModulateWidths applies the GreenCool-style open-loop channel-width
// rule to a straight network: each channel's flow share is matched to
// its heat share (see DESIGN.md for why the closed-loop
// network.CalibrateStraightWidths is usually preferable).
func ModulateWidths(b *Benchmark, n *Network, minFrac float64) error {
	d := b.Stk.Dims
	heat := make([]float64, d.NY)
	for _, l := range b.Stk.SourceLayers() {
		rows := network.RowHeatLoads(d, b.Stk.Layers[l].Power.W)
		for y := range heat {
			heat[y] += rows[y]
		}
	}
	hc := b.Stk.Layers[b.Stk.ChannelLayers()[0]].Thickness
	return network.ModulateStraightWidths(n, heat, b.Stk.ChannelWidth, hc, minFrac)
}

// SaveNetwork / LoadNetwork persist networks in the human-readable lcn
// format (also used by lcn-opt -save and lcn-sim -netfile).
var (
	SaveNetwork = network.Write
	LoadNetwork = network.Read
)

// SimConfig selects the simulator for Simulate.
type SimConfig struct {
	Psys float64 // system pressure drop, Pa (required)
	// Use2RM selects the fast porous-medium model with coarsening
	// CoarseM (default 4) instead of the accurate 4RM model.
	Use2RM  bool
	CoarseM int
	Upwind  bool // use the upwind convection scheme instead of central
}

// Simulate runs one steady simulation of the benchmark's stack cooled by
// the network (replicated across channel layers).
func Simulate(b *Benchmark, n *Network, cfg SimConfig) (*Outcome, error) {
	if cfg.Psys <= 0 {
		return nil, fmt.Errorf("lcn3d: SimConfig.Psys must be positive")
	}
	scheme := thermal.Central
	if cfg.Upwind {
		scheme = thermal.Upwind
	}
	var sim core.SimFunc
	var err error
	if cfg.Use2RM {
		m := cfg.CoarseM
		if m <= 0 {
			m = 4
		}
		sim, err = b.Sim2RM(n, m, scheme)
	} else {
		sim, err = b.Sim4RM(n, scheme)
	}
	if err != nil {
		return nil, err
	}
	return sim(cfg.Psys)
}

// EvaluatePumpingPower computes the lowest feasible pumping power of the
// network under the benchmark's ΔT* and T*_max constraints (Problem 1's
// network evaluation, Algorithm 2), using the accurate 4RM model.
func EvaluatePumpingPower(b *Benchmark, n *Network) (EvalResult, error) {
	return b.EvaluateNetworkPumpMin(context.Background(), n, thermal.Central, SearchOptions{})
}

// EvaluateThermalGradient computes the lowest achievable thermal gradient
// of the network under the benchmark's T*_max and W*_pump constraints
// (Problem 2's network evaluation), using the accurate 4RM model.
func EvaluateThermalGradient(b *Benchmark, n *Network) (EvalResult, error) {
	return b.EvaluateNetworkGradMin(context.Background(), n, thermal.Central, SearchOptions{})
}

// OptimizePumpingPower runs the full Problem 1 flow (orientation sweep +
// multi-stage SA over tree networks) on the benchmark.
func OptimizePumpingPower(b *Benchmark, opt Options) (*Solution, error) {
	return b.SolveProblem1(opt)
}

// OptimizeThermalGradient runs the full Problem 2 flow on the benchmark.
func OptimizeThermalGradient(b *Benchmark, opt Options) (*Solution, error) {
	return b.SolveProblem2(opt)
}

// BestStraightBaseline evaluates straight-channel baselines in all four
// directions under the given problem (1 or 2) and returns the best.
func BestStraightBaseline(b *Benchmark, problem int) (*core.BaselineResult, error) {
	return b.Instance.BestStraightBaseline(context.Background(), problem, thermal.Central, SearchOptions{})
}

// Transient builds a transient stepper for the benchmark/network at a
// fixed pressure and time step, starting from the inlet temperature.
// The stepper rides the factored warm-start machinery, so mid-trace
// SetScale/SetDt calls refactor once per segment instead of rebuilding
// the model. Returned fields: the stepper and the initial field.
func Transient(b *Benchmark, n *Network, psys, dt float64) (*thermal.TransientSystem, []float64, error) {
	mod, err := rm4.New(b.Stk, replicate(n, len(b.Stk.ChannelLayers())), thermal.Central)
	if err != nil {
		return nil, nil, err
	}
	ts, err := mod.Transient(psys, dt)
	if err != nil {
		return nil, nil, err
	}
	field := make([]float64, mod.NumNodes())
	for i := range field {
		field[i] = b.Stk.TinK
	}
	return ts, field, nil
}

// RM4Model exposes the accurate simulator for advanced use (e.g. custom
// metrics over the full temperature field).
func RM4Model(b *Benchmark, n *Network) (*rm4.Model, error) {
	return rm4.New(b.Stk, replicate(n, len(b.Stk.ChannelLayers())), thermal.Central)
}

// RM2Model exposes the fast simulator for advanced use.
func RM2Model(b *Benchmark, n *Network, m int) (*rm2.Model, error) {
	return rm2.New(b.Stk, replicate(n, len(b.Stk.ChannelLayers())), m, thermal.Central)
}

func replicate(n *Network, k int) []*Network {
	out := make([]*Network, k)
	for i := range out {
		out[i] = n
	}
	return out
}
