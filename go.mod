module lcn3d

go 1.22
