package lcn3d

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := StraightNetwork(b.Stk.Dims)
	out, err := Simulate(b, n, SimConfig{Psys: 10e3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tmax <= 300 || math.IsNaN(out.DeltaT) || out.Wpump <= 0 {
		t.Fatalf("bad outcome: %+v", out.Metrics)
	}
}

func TestFacade2RMMatches4RMQsys(t *testing.T) {
	b, err := LoadBenchmarkScaled(2, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := StraightNetwork(b.Stk.Dims)
	o4, err := Simulate(b, n, SimConfig{Psys: 8e3})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Simulate(b, n, SimConfig{Psys: 8e3, Use2RM: true, CoarseM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o4.Qsys-o2.Qsys) > 1e-12 {
		t.Fatalf("flow disagrees: %g vs %g", o4.Qsys, o2.Qsys)
	}
	if math.Abs(o4.Tmax-o2.Tmax) > 0.2*(o4.Tmax-300) {
		t.Fatalf("models disagree too much: %g vs %g", o4.Tmax, o2.Tmax)
	}
}

func TestFacadeTreeAndMesh(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TreeNetwork(b.Stk.Dims, 2, Branch4, 0.3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Network{tr, MeshNetwork(b.Stk.Dims, 1, 3), SerpentineNetwork(b.Stk.Dims)} {
		out, err := Simulate(b, n, SimConfig{Psys: 20e3, Use2RM: true, CoarseM: 3})
		if err != nil {
			t.Fatal(err)
		}
		if out.Tmax <= 300 {
			t.Fatalf("bad Tmax %g", out.Tmax)
		}
	}
}

func TestFacadeEvaluate(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	b.DeltaTStar = 12 // feasible regime for the small grid
	r, err := EvaluatePumpingPower(b, StraightNetwork(b.Stk.Dims))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("expected feasible: %+v", r)
	}
	if r.Out.DeltaT > b.DeltaTStar*1.01 || r.Out.Tmax > b.TmaxStar {
		t.Fatal("constraints violated")
	}
}

func TestFacadeTransient(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	ts, field, err := Transient(b, StraightNetwork(b.Stk.Dims), 10e3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(field, 5, nil); err != nil {
		t.Fatal(err)
	}
	rose := false
	for _, v := range field {
		if v > 300.001 {
			rose = true
		}
		if v < 300-1e-6 {
			t.Fatalf("temperature %g below inlet", v)
		}
	}
	if !rose {
		t.Fatal("chip should heat up after power-on")
	}
}

func TestFacadeRejectsZeroPressure(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(b, StraightNetwork(b.Stk.Dims), SimConfig{}); err == nil {
		t.Fatal("Psys=0 should be rejected")
	}
}

func TestUpwindOption(t *testing.T) {
	b, err := LoadBenchmarkScaled(2, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := StraightNetwork(b.Stk.Dims)
	oc, err := Simulate(b, n, SimConfig{Psys: 10e3})
	if err != nil {
		t.Fatal(err)
	}
	ou, err := Simulate(b, n, SimConfig{Psys: 10e3, Upwind: true})
	if err != nil {
		t.Fatal(err)
	}
	if oc.Tmax == ou.Tmax {
		t.Fatal("schemes should differ slightly")
	}
}

func TestFacadeAdaptiveNetwork(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	n := AdaptiveNetwork(b, 0.6, 3)
	if errs := n.Check(); len(errs) > 0 {
		t.Fatalf("adaptive network illegal: %v", errs)
	}
	full := StraightNetwork(b.Stk.Dims)
	if n.NumLiquid() >= full.NumLiquid() {
		t.Fatal("keepFrac < 1 should thin the network")
	}
	out, err := Simulate(b, n, SimConfig{Psys: 10e3, Use2RM: true, CoarseM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tmax <= 300 {
		t.Fatalf("bad Tmax %g", out.Tmax)
	}
}

func TestFacadeModulateWidths(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := StraightNetwork(b.Stk.Dims)
	if err := ModulateWidths(b, n, 0.5); err != nil {
		t.Fatal(err)
	}
	if n.Width == nil {
		t.Fatal("widths not assigned")
	}
	out, err := Simulate(b, n, SimConfig{Psys: 10e3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Qsys <= 0 {
		t.Fatal("no flow")
	}
}

func TestFacadeSaveLoadNetwork(t *testing.T) {
	b, err := LoadBenchmarkScaled(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	n := StraightNetwork(b.Stk.Dims)
	var buf bytes.Buffer
	if err := SaveNetwork(&buf, n); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != n.Hash() {
		t.Fatal("save/load round trip changed the network")
	}
}
