// Powermin runs the paper's Problem 1 (pumping power minimization) on
// ICCAD case 2: it searches tree-like cooling networks with multi-stage
// simulated annealing and compares the result against the best
// straight-channel baseline, printing the layouts and the saving.
package main

import (
	"fmt"
	"log"
	"time"

	"lcn3d"
)

func main() {
	bench, err := lcn3d.LoadBenchmarkScaled(2, 51)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.2f W, ΔT* = %.0f K, T*max = %.2f K\n",
		bench.Name, bench.Stk.TotalPower(), bench.DeltaTStar, bench.TmaxStar)

	// Baseline: best straight-channel direction, evaluated by the paper's
	// Algorithm 2 (lowest feasible pumping power).
	t0 := time.Now()
	base, err := lcn3d.BestStraightBaseline(bench, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline (straight, inlet %v) in %v:\n", base.Side, time.Since(t0).Round(time.Second))
	printEval(base.Eval)

	// Ours: orientation sweep + multi-stage SA over tree parameters
	// (Algorithm 1). The stage schedule here is a scaled-down version of
	// the paper's 60/40/40/30 iterations; see cmd/lcn-opt -full for the
	// real one.
	t0 = time.Now()
	sol, err := lcn3d.OptimizePumpingPower(bench, lcn3d.Options{
		Seed: 7,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntree network (orientation %v, %d evaluations) in %v:\n",
		sol.Orient, sol.Evals, time.Since(t0).Round(time.Second))
	printEval(sol.Eval)

	if base.Eval.Feasible && sol.Eval.Feasible {
		fmt.Printf("\npumping power saving: %.1f%%\n", 100*(1-sol.Eval.Wpump/base.Eval.Wpump))
	}
	fmt.Println("\noptimized network layout ('#' = microchannel, 'T' = TSV):")
	fmt.Print(sol.Net.String())
}

func printEval(ev lcn3d.EvalResult) {
	if !ev.Feasible {
		fmt.Println("  infeasible under the constraints")
		return
	}
	fmt.Printf("  P_sys = %.2f kPa, W_pump = %.4f mW, ΔT = %.2f K, T_max = %.2f K\n",
		ev.Psys/1e3, ev.Wpump*1e3, ev.DeltaT, ev.Out.Tmax)
}
