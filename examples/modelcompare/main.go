// Modelcompare contrasts the fast 2RM porous-medium simulator against the
// accurate 4RM reference across thermal cell sizes (the trade-off behind
// the paper's Fig. 9): accuracy decreases and speed-up grows as thermal
// cells get larger.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"lcn3d"
)

func main() {
	bench, err := lcn3d.LoadBenchmarkScaled(1, 51)
	if err != nil {
		log.Fatal(err)
	}
	net, err := lcn3d.TreeNetwork(bench.Stk.Dims, 2, lcn3d.Branch4, 0.35, 0.65)
	if err != nil {
		log.Fatal(err)
	}
	const psys = 20e3

	t0 := time.Now()
	ref, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: psys})
	if err != nil {
		log.Fatal(err)
	}
	refTime := time.Since(t0)
	fmt.Printf("4RM reference: T_max %.2f K, ΔT %.2f K, %v\n", ref.Tmax, ref.DeltaT, refTime.Round(time.Millisecond))

	fmt.Println("\ncell (µm)   mean err (%)   max err (K)   time      speed-up")
	for _, m := range []int{1, 2, 3, 4, 6, 8} {
		t1 := time.Now()
		out, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: psys, Use2RM: true, CoarseM: m})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(t1)

		var sumRel, maxAbs float64
		n := 0
		for l := range ref.FineTemps {
			for i := range ref.FineTemps[l] {
				d := math.Abs(out.FineTemps[l][i] - ref.FineTemps[l][i])
				sumRel += d / ref.FineTemps[l][i]
				maxAbs = math.Max(maxAbs, d)
				n++
			}
		}
		fmt.Printf("%8d    %10.4f   %11.3f   %-8v  %.1fx\n",
			m*100, 100*sumRel/float64(n), maxAbs,
			el.Round(time.Millisecond), refTime.Seconds()/el.Seconds())
	}
	fmt.Println("\nThe paper adopts 400 µm cells (m=4) inside the optimization loop.")
}
