// Quickstart: load an ICCAD 2015 benchmark, build a straight-channel
// cooling network, simulate it at one pressure, and print the thermal
// metrics. This is the smallest useful lcn3d program.
package main

import (
	"fmt"
	"log"

	"lcn3d"
)

func main() {
	// Case 1: two dies, 200 µm channels, 42 W, ΔT* = 15 K. The 51 here
	// selects a 51x51 grid (quarter-size chip) so the example runs in a
	// couple of seconds; use lcn3d.LoadBenchmark(1) for full scale.
	bench, err := lcn3d.LoadBenchmarkScaled(1, 51)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %.2f W over %d dies\n",
		bench.Name, bench.Stk.TotalPower(), len(bench.Stk.SourceLayers()))

	// The classic baseline: parallel straight microchannels, west to east.
	net := lcn3d.StraightNetwork(bench.Stk.Dims)

	// One steady simulation with the accurate 4RM model at 10 kPa.
	out, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: 10e3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P_sys  = %.1f kPa\n", out.Psys/1e3)
	fmt.Printf("Q_sys  = %.3f mL/s\n", out.Qsys*1e6)
	fmt.Printf("W_pump = %.3f mW\n", out.Wpump*1e3)
	fmt.Printf("T_max  = %.2f K (limit %.2f K)\n", out.Tmax, bench.TmaxStar)
	fmt.Printf("ΔT     = %.2f K (limit %.2f K)\n", out.DeltaT, bench.DeltaTStar)

	// The same simulation with the fast 2RM porous-medium model
	// (the paper's 400 µm thermal cells): ~2 orders of magnitude faster
	// with sub-percent error.
	fast, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: 10e3, Use2RM: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2RM check: T_max = %.2f K (Δ vs 4RM: %+.2f K)\n",
		fast.Tmax, fast.Tmax-out.Tmax)

	// Find the cheapest feasible operating point of this network
	// (Algorithm 2 of the paper).
	ev, err := lcn3d.EvaluatePumpingPower(bench, net)
	if err != nil {
		log.Fatal(err)
	}
	if ev.Feasible {
		fmt.Printf("lowest feasible pumping power: %.3f mW at %.2f kPa\n",
			ev.Wpump*1e3, ev.Psys/1e3)
	} else {
		fmt.Println("no feasible pressure for this network under the constraints")
	}
}
