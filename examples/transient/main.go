// Transient exercises the transient extension the paper mentions for its
// thermal models: a power-step response. The chip starts at the coolant
// inlet temperature, full power switches on at t=0, and the peak
// temperature is tracked as it approaches the steady-state value.
package main

import (
	"fmt"
	"log"

	"lcn3d"
)

func main() {
	bench, err := lcn3d.LoadBenchmarkScaled(1, 31)
	if err != nil {
		log.Fatal(err)
	}
	net := lcn3d.StraightNetwork(bench.Stk.Dims)
	const psys = 10e3

	// Steady-state target for reference.
	steady, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: psys})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state T_max = %.2f K\n\n", steady.Tmax)

	// Backward-Euler stepping at 1 ms resolution.
	ts, field, err := lcn3d.Transient(bench, net, psys, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t (ms)    T_max (K)   of steady rise")
	report := map[int]bool{1: true, 2: true, 5: true, 10: true, 20: true, 50: true, 100: true, 200: true}
	maxOf := func(v []float64) float64 {
		m := v[0]
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	err = ts.Run(field, 200, func(elapsed float64, f []float64) {
		ms := int(elapsed*1e3 + 0.5)
		if report[ms] {
			tm := maxOf(f)
			frac := (tm - 300) / (steady.Tmax - 300)
			fmt.Printf("%6d    %8.2f    %5.1f%%\n", ms, tm, 100*frac)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	final := maxOf(field)
	fmt.Printf("\nafter 200 ms the transient peak is within %.2f K of steady state\n",
		steady.Tmax-final)
}
