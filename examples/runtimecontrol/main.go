// Runtimecontrol demonstrates the paper's future-work direction:
// combining a cooling network with run-time thermal management via
// adjustable flow rates. A workload alternates between a low-power and a
// high-power phase; a bang-bang pump controller and a PI controller are
// compared against fixed low/high pumping on peak temperature and
// pumping energy.
package main

import (
	"fmt"
	"log"

	"lcn3d"
	"lcn3d/internal/dtm"
)

func main() {
	bench, err := lcn3d.LoadBenchmarkScaled(1, 31)
	if err != nil {
		log.Fatal(err)
	}
	net := lcn3d.StraightNetwork(bench.Stk.Dims)
	model, err := lcn3d.RM4Model(bench, net)
	if err != nil {
		log.Fatal(err)
	}

	// Workload: 100 ms phases alternating between 30% and 120% of the
	// nominal die power.
	trace := dtm.StepTrace(0.3, 1.2, 0.2)
	base := dtm.Config{
		Model: model, Trace: trace,
		Dt: 2e-3, CtrlEvery: 5, Duration: 0.8,
	}
	const limit = 318.0 // K, run-time thermal limit for this example

	controllers := []struct {
		name string
		ctrl dtm.Controller
	}{
		{"fixed low (3 kPa)", dtm.Fixed(3e3)},
		{"fixed high (40 kPa)", dtm.Fixed(40e3)},
		{"bang-bang", &dtm.BangBang{TLow: limit - 6, THigh: limit - 2, PLow: 3e3, PHigh: 40e3}},
		{"PI", &dtm.PI{Target: limit - 3, Kp: 4e3, Ki: 300, PMin: 3e3, PMax: 40e3}},
	}

	fmt.Printf("workload: 30%%/120%% power steps, limit %.1f K, %.1f s simulated\n\n", limit, base.Duration)
	fmt.Println("controller            peak Tmax (K)   pump energy (mJ)   mean Psys (kPa)   over-limit periods")
	for _, c := range controllers {
		cfg := base
		cfg.Controller = c.ctrl
		res, err := dtm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res.CountOvershoots(limit)
		fmt.Printf("%-20s  %12.2f   %16.3f   %15.2f   %18d\n",
			c.name, res.PeakTmax, res.PumpEnergy*1e3, res.MeanPsys/1e3, res.Overshoots)
	}
	fmt.Println("\nAdaptive pumping holds the thermal limit at a fraction of the")
	fmt.Println("fixed-high pumping energy — the trade the paper's future-work")
	fmt.Println("section anticipates.")
}
