// Gradientopt runs the paper's Problem 2 (thermal gradient minimization)
// on ICCAD case 1: under a pumping power budget of 0.1% of the die power,
// find the cooling network with the flattest temperature profile, and
// render before/after temperature maps of the bottom source layer.
package main

import (
	"fmt"
	"log"

	"lcn3d"
	"lcn3d/internal/report"
)

func main() {
	bench, err := lcn3d.LoadBenchmarkScaled(1, 51)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.2f W, W*pump = %.3f mW, T*max = %.2f K\n",
		bench.Name, bench.Stk.TotalPower(), bench.WpumpStar*1e3, bench.TmaxStar)

	base, err := lcn3d.BestStraightBaseline(bench, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstraight baseline: ΔT = %.2f K at %.2f kPa (W_pump %.3f mW)\n",
		base.Eval.DeltaT, base.Eval.Psys/1e3, base.Eval.Wpump*1e3)

	sol, err := lcn3d.OptimizeThermalGradient(bench, lcn3d.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree network:      ΔT = %.2f K at %.2f kPa (W_pump %.3f mW)\n",
		sol.Eval.DeltaT, sol.Eval.Psys/1e3, sol.Eval.Wpump*1e3)
	if base.Eval.Feasible && sol.Eval.Feasible {
		fmt.Printf("thermal gradient reduction: %.1f%%\n",
			100*(1-sol.Eval.DeltaT/base.Eval.DeltaT))
	}

	// Side-by-side ASCII temperature maps (hotter = denser glyph).
	fmt.Println("\nbottom source layer, straight baseline:")
	hmB := &report.Heatmap{Dims: base.Eval.Out.FineDims, V: base.Eval.Out.FineTemps[0]}
	fmt.Print(hmB.ASCII(48))
	lo, hi := hmB.Bounds()
	fmt.Printf("range [%.1f, %.1f] K\n", lo, hi)

	fmt.Println("\nbottom source layer, optimized tree network:")
	hmT := &report.Heatmap{Dims: sol.Eval.Out.FineDims, V: sol.Eval.Out.FineTemps[0]}
	fmt.Print(hmT.ASCII(48))
	lo, hi = hmT.Bounds()
	fmt.Printf("range [%.1f, %.1f] K\n", lo, hi)
}
