package lcn3d_test

import (
	"fmt"
	"log"

	"lcn3d"
)

// The examples below run on tiny grids so `go test` stays fast; real
// studies use scale 51-101 (see the examples/ directory).

func ExampleSimulate() {
	bench, err := lcn3d.LoadBenchmarkScaled(1, 21)
	if err != nil {
		log.Fatal(err)
	}
	net := lcn3d.StraightNetwork(bench.Stk.Dims)
	out, err := lcn3d.Simulate(bench, net, lcn3d.SimConfig{Psys: 10e3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible ΔT: %v\n", out.DeltaT < bench.DeltaTStar)
	// Output:
	// feasible ΔT: true
}

func ExampleTreeNetwork() {
	d := lcn3d.Dims{NX: 31, NY: 31}
	net, err := lcn3d.TreeNetwork(d, 2, lcn3d.Branch4, 0.3, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	errs := net.Check()
	fmt.Printf("legal: %v, trees feed %d liquid cells\n", len(errs) == 0, net.NumLiquid())
	// Output:
	// legal: true, trees feed 184 liquid cells
}

func ExampleEvaluatePumpingPower() {
	bench, err := lcn3d.LoadBenchmarkScaled(2, 21)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := lcn3d.EvaluatePumpingPower(bench, lcn3d.StraightNetwork(bench.Stk.Dims))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v at positive pressure: %v\n", ev.Feasible, ev.Psys > 0)
	// Output:
	// feasible: true at positive pressure: true
}
