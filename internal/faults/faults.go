// Package faults is a deterministic fault-injection registry for the
// evaluation engine and the serving path. Production code asks Fire at
// named injection points; a test or a chaos run arms a plan describing
// which points trigger and how often, so every degradation path — solver
// breakdown, non-convergence, NaN temperature fields, slow solves,
// forced panics — is reachable from CI without crafting pathological
// physics.
//
// The registry is process-global and disarmed by default. Disarmed,
// Fire is a single atomic load — cheap enough to leave the probes in
// hot solver entry points permanently. Armed, rules are evaluated under
// a mutex; injection runs are not performance runs.
//
// Plans are described by a spec string, e.g.
//
//	solver.bicgstab.breakdown=always;service.panic=first:1
//
// with one point=mode entry per rule. Modes:
//
//	always     fire on every call
//	once       fire on the first call only (alias for first:1)
//	first:N    fire on the first N calls
//	every:N    fire on every Nth call (calls N, 2N, ...)
//	p:F        fire with probability F, seeded deterministically
//
// Two option keys may appear alongside rules: seed=N fixes the PRNG
// seed for p: rules (per-point streams are derived from it, so runs
// with the same spec and seed fire identically), and delay=DURATION
// sets the sleep injected by slow-solve points (default 100ms).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into the engine.
type Point string

// The registered injection points.
const (
	// CGBreakdown forces CG to report ErrBreakdown on entry.
	CGBreakdown Point = "solver.cg.breakdown"
	// BiCGBreakdown forces BiCGSTAB to report ErrBreakdown on entry.
	BiCGBreakdown Point = "solver.bicgstab.breakdown"
	// GMRESBreakdown forces GMRES to report ErrBreakdown on entry.
	GMRESBreakdown Point = "solver.gmres.breakdown"
	// NotConverged forces the iterative solvers to report
	// ErrNotConverged on entry without spending iterations.
	NotConverged Point = "solver.notconverged"
	// ThermalNaN poisons the primary thermal solve's temperature field
	// with a NaN, exercising the post-solve field validation.
	ThermalNaN Point = "thermal.nan"
	// ThermalSlow sleeps for Delay() inside thermal.Factored.SolveAt.
	ThermalSlow Point = "thermal.slow"
	// FlowBreakdown makes flow.Solve treat its primary CG solve as
	// broken down, exercising the flow escalation ladder.
	FlowBreakdown Point = "flow.breakdown"
	// ServicePanic panics on the service compute path after the worker
	// slot is taken, exercising panic containment end to end.
	ServicePanic Point = "service.panic"
	// MGSmoother poisons the multigrid V-cycle after the pre-smoothing
	// sweeps, so the outer solve breaks down and climbs the ladder off
	// the multigrid preconditioner.
	MGSmoother Point = "solver.mg.smoother"
	// MGRestrict poisons the restricted coarse-grid residual.
	MGRestrict Point = "solver.mg.restrict"
	// MGCoarse poisons the coarse-grid correction after the coarse solve.
	MGCoarse Point = "solver.mg.coarse"
	// StoreFlush makes the result store's next group commit emit a torn
	// partial batch (no fsync) and fail, exercising crash recovery.
	StoreFlush Point = "store.flush"
	// StoreRead makes a result-store Get fail as if the segment bytes
	// were unreadable, exercising the miss-and-recompute path.
	StoreRead Point = "store.read"
	// ClusterForward fails peer request forwarding, exercising the
	// local-compute fallback.
	ClusterForward Point = "cluster.forward"
	// ClusterFetch fails the peer /v1/store/{hash} fetch path.
	ClusterFetch Point = "cluster.fetch"
	// ClusterProbe fails peer health probes, marking peers down.
	ClusterProbe Point = "cluster.probe"
	// JobsCheckpoint tears a job checkpoint blob mid-write: the persisted
	// bytes are truncated, so resume must fall back to the previous one.
	JobsCheckpoint Point = "jobs.checkpoint"
	// OverloadShed makes the admission controller shed the request as if
	// the queue were full, exercising the 429 path without real load.
	OverloadShed Point = "overload.shed"
	// OverloadPressure makes the brownout controller observe an
	// over-pressure sample, driving the degradation ladder
	// deterministically.
	OverloadPressure Point = "overload.pressure"
	// OverloadBreaker trips the peer circuit breaker open before the
	// call, so the forward is refused locally without a network attempt.
	OverloadBreaker Point = "overload.breaker"
	// OverloadHedge elides the hedge delay, so the secondary (local
	// compute) launches immediately alongside the peer read.
	OverloadHedge Point = "overload.hedge"
	// TransientPump halves the effective pump pressure for the transient
	// step it fires on, a chaos stand-in for pump stutter on top of any
	// scheduled pump events.
	TransientPump Point = "thermal.transient.pump"
	// TransientNaN poisons the stepped temperature field with a NaN
	// after the solve, exercising the transient post-step field guard.
	TransientNaN Point = "thermal.transient.nan"
	// TransientSlow sleeps for Delay() inside TransientSystem.Step.
	TransientSlow Point = "thermal.transient.slow"
)

// Points lists every registered injection point.
var Points = []Point{
	CGBreakdown, BiCGBreakdown, GMRESBreakdown, NotConverged,
	ThermalNaN, ThermalSlow, FlowBreakdown, ServicePanic,
	MGSmoother, MGRestrict, MGCoarse,
	StoreFlush, StoreRead, ClusterForward, ClusterFetch, ClusterProbe,
	JobsCheckpoint,
	OverloadShed, OverloadPressure, OverloadBreaker, OverloadHedge,
	TransientPump, TransientNaN, TransientSlow,
}

// EnvVar is the environment variable ArmFromEnv reads the spec from.
const EnvVar = "LCN_FAULTS"

const defaultDelay = 100 * time.Millisecond

type mode int

const (
	modeAlways mode = iota
	modeFirst
	modeEvery
	modeProb
)

type rule struct {
	mode  mode
	n     int64   // first:N / every:N parameter
	p     float64 // p:F parameter
	rng   uint64  // per-point splitmix64 state for p: rules
	calls int64
	fired int64
}

var (
	armed atomic.Bool // fast-path gate; true iff the plan is non-empty

	mu    sync.Mutex
	rules map[Point]*rule
	delay = defaultDelay
	spec  string // the armed spec, verbatim, for logging/metrics
)

// Armed reports whether any fault plan is armed.
func Armed() bool { return armed.Load() }

// Spec returns the spec string of the armed plan ("" when disarmed).
func Spec() string {
	mu.Lock()
	defer mu.Unlock()
	return spec
}

// Fire reports whether the named fault should trigger now. Disarmed it
// is a single atomic load; armed it advances the point's rule state
// deterministically.
func Fire(p Point) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	r, ok := rules[p]
	if !ok {
		return false
	}
	r.calls++
	var hit bool
	switch r.mode {
	case modeAlways:
		hit = true
	case modeFirst:
		hit = r.calls <= r.n
	case modeEvery:
		hit = r.calls%r.n == 0
	case modeProb:
		r.rng = splitmix64(r.rng)
		// 53-bit mantissa -> uniform in [0, 1).
		hit = float64(r.rng>>11)/(1<<53) < r.p
	}
	if hit {
		r.fired++
	}
	return hit
}

// Delay returns the sleep duration slow-solve injection points use.
func Delay() time.Duration {
	mu.Lock()
	defer mu.Unlock()
	return delay
}

// Stat counts one point's activity since arming.
type Stat struct {
	Calls int64 `json:"calls"`
	Fired int64 `json:"fired"`
}

// Snapshot returns per-point counters for the armed plan, keyed by
// point name. It returns nil when disarmed.
func Snapshot() map[string]Stat {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]Stat, len(rules))
	for p, r := range rules {
		out[string(p)] = Stat{Calls: r.calls, Fired: r.fired}
	}
	return out
}

// Arm parses a spec and installs it as the active plan, replacing any
// previous plan and resetting counters. An empty spec disarms.
func Arm(s string) error {
	newRules, newDelay, err := parse(s)
	if err != nil {
		return err
	}
	mu.Lock()
	rules = newRules
	delay = newDelay
	spec = s
	if len(newRules) == 0 {
		spec = ""
	}
	armed.Store(len(newRules) > 0)
	mu.Unlock()
	return nil
}

// Disarm removes the active plan. Subsequent Fire calls are free.
func Disarm() { Arm("") }

// ArmFromEnv arms the plan named by the LCN_FAULTS environment variable
// via the lookup function (pass os.Getenv). It returns the spec that was
// armed ("" if the variable is unset or empty).
func ArmFromEnv(getenv func(string) string) (string, error) {
	s := strings.TrimSpace(getenv(EnvVar))
	if s == "" {
		return "", nil
	}
	if err := Arm(s); err != nil {
		return "", err
	}
	return s, nil
}

func parse(s string) (map[Point]*rule, time.Duration, error) {
	out := make(map[Point]*rule)
	d := defaultDelay
	seed := int64(1)
	var probPoints []Point // seeded after the full spec is read
	for _, entry := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, 0, fmt.Errorf("faults: entry %q is not point=mode", entry)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "delay":
			dd, err := time.ParseDuration(val)
			if err != nil || dd < 0 {
				return nil, 0, fmt.Errorf("faults: bad delay %q", val)
			}
			d = dd
			continue
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("faults: bad seed %q", val)
			}
			seed = n
			continue
		}
		pt := Point(key)
		if !known(pt) {
			return nil, 0, fmt.Errorf("faults: unknown point %q (known: %s)", key, pointList())
		}
		r, err := parseMode(val)
		if err != nil {
			return nil, 0, fmt.Errorf("faults: point %s: %w", pt, err)
		}
		out[pt] = r
		if r.mode == modeProb {
			probPoints = append(probPoints, pt)
		}
	}
	// Derive one deterministic stream per probabilistic point from the
	// global seed and the point name, so adding a rule does not shift
	// another rule's stream.
	for _, pt := range probPoints {
		out[pt].rng = seedFor(seed, pt)
	}
	return out, d, nil
}

func parseMode(val string) (*rule, error) {
	m, param, _ := strings.Cut(val, ":")
	switch m {
	case "always":
		return &rule{mode: modeAlways}, nil
	case "once":
		return &rule{mode: modeFirst, n: 1}, nil
	case "first", "every":
		n, err := strconv.ParseInt(param, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q (want %s:N, N >= 1)", param, m)
		}
		if m == "first" {
			return &rule{mode: modeFirst, n: n}, nil
		}
		return &rule{mode: modeEvery, n: n}, nil
	case "p":
		p, err := strconv.ParseFloat(param, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad probability %q (want p:F, 0 <= F <= 1)", param)
		}
		return &rule{mode: modeProb, p: p}, nil
	}
	return nil, fmt.Errorf("unknown mode %q", val)
}

func known(p Point) bool {
	for _, q := range Points {
		if p == q {
			return true
		}
	}
	return false
}

func pointList() string {
	names := make([]string, len(Points))
	for i, p := range Points {
		names[i] = string(p)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// seedFor mixes the global seed with an FNV-1a hash of the point name.
func seedFor(seed int64, p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return splitmix64(uint64(seed) ^ h)
}

// splitmix64 is the standard 64-bit mixing PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
