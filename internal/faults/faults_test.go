package faults

import (
	"testing"
	"time"
)

func arm(t *testing.T, spec string) {
	t.Helper()
	if err := Arm(spec); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedNeverFires(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed after Disarm")
	}
	for _, p := range Points {
		if Fire(p) {
			t.Fatalf("disarmed %s fired", p)
		}
	}
	if Snapshot() != nil {
		t.Fatal("disarmed snapshot not nil")
	}
}

func TestModes(t *testing.T) {
	cases := []struct {
		spec  string
		point Point
		want  []bool // fire pattern over successive calls
	}{
		{"solver.cg.breakdown=always", CGBreakdown, []bool{true, true, true, true}},
		{"solver.cg.breakdown=once", CGBreakdown, []bool{true, false, false, false}},
		{"solver.cg.breakdown=first:2", CGBreakdown, []bool{true, true, false, false}},
		{"solver.cg.breakdown=every:3", CGBreakdown, []bool{false, false, true, false, false, true}},
		{"solver.cg.breakdown=p:0", CGBreakdown, []bool{false, false, false}},
		{"solver.cg.breakdown=p:1", CGBreakdown, []bool{true, true, true}},
	}
	for _, c := range cases {
		arm(t, c.spec)
		for i, want := range c.want {
			if got := Fire(c.point); got != want {
				t.Errorf("%s call %d: fired=%v, want %v", c.spec, i+1, got, want)
			}
		}
	}
}

func TestUnarmedPointDoesNotFire(t *testing.T) {
	arm(t, "solver.cg.breakdown=always")
	if Fire(BiCGBreakdown) {
		t.Fatal("unarmed point fired")
	}
}

func TestProbabilisticIsSeededDeterministic(t *testing.T) {
	run := func(seed string) []bool {
		arm(t, "solver.cg.breakdown=p:0.5;seed="+seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire(CGBreakdown)
		}
		return out
	}
	a, b := run("42"), run("42")
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different fire patterns")
	}
	c := run("43")
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical 64-call patterns")
	}
}

func TestCounters(t *testing.T) {
	arm(t, "solver.cg.breakdown=first:2")
	for i := 0; i < 5; i++ {
		Fire(CGBreakdown)
	}
	st := Snapshot()[string(CGBreakdown)]
	if st.Calls != 5 || st.Fired != 2 {
		t.Fatalf("stat = %+v, want calls=5 fired=2", st)
	}
}

func TestDelayOption(t *testing.T) {
	arm(t, "thermal.slow=always;delay=5ms")
	if d := Delay(); d != 5*time.Millisecond {
		t.Fatalf("delay = %v, want 5ms", d)
	}
	arm(t, "thermal.slow=always")
	if d := Delay(); d != defaultDelay {
		t.Fatalf("delay = %v, want default %v", d, defaultDelay)
	}
}

func TestSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"unknown.point=always",
		"solver.cg.breakdown=sometimes",
		"solver.cg.breakdown=first:0",
		"solver.cg.breakdown=p:1.5",
		"delay=never",
		"seed=abc",
	} {
		if err := Arm(bad); err == nil {
			Disarm()
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
	if Armed() {
		t.Fatal("failed Arm left registry armed")
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Disarm)
	spec, err := ArmFromEnv(func(string) string { return "solver.cg.breakdown=always" })
	if err != nil || spec == "" || !Armed() {
		t.Fatalf("ArmFromEnv: spec=%q err=%v armed=%v", spec, err, Armed())
	}
	if Spec() != spec {
		t.Fatalf("Spec() = %q, want %q", Spec(), spec)
	}
	Disarm()
	spec, err = ArmFromEnv(func(string) string { return "" })
	if err != nil || spec != "" || Armed() {
		t.Fatalf("empty env: spec=%q err=%v armed=%v", spec, err, Armed())
	}
}
