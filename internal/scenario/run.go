package scenario

import (
	"context"
	"fmt"
	"math"

	"lcn3d/internal/faults"
	"lcn3d/internal/power"
	"lcn3d/internal/thermal"
)

// Model is the simulator surface a scenario drives. Both rm4.Model and
// rm2.Model implement it: schedules are expressed on the fine grid and
// each model maps them onto its own unknowns.
type Model interface {
	Name() string
	NumNodes() int
	Tin() float64
	// Transient compiles the implicit-Euler stepper at the base pressure.
	Transient(psys, dt float64) (*thermal.TransientSystem, error)
	// BasePowers returns clones of the source-layer power maps.
	BasePowers() []*power.Map
	// PowerDelta converts replacement maps into an RHS delta vector.
	PowerDelta(maps []*power.Map) ([]float64, error)
	// PeakDelta reduces a full field to (peak T, max layer spread).
	PeakDelta(field []float64) (tmax, deltaT float64)
	// PumpWork returns (throughput, pumping power) at a pressure.
	PumpWork(psys float64) (qsys, wpump float64)
}

// StepRecord is one step's observation — the payload streamed per step
// by /v1/transient.
type StepRecord struct {
	Step   int     `json:"step"`
	T      float64 `json:"t"`       // elapsed simulated time, s
	Psys   float64 `json:"psys"`    // effective pump pressure this step, Pa
	Tpeak  float64 `json:"t_peak"`  // peak source-layer temperature, K
	DeltaT float64 `json:"delta_t"` // max per-layer spread, K
	PumpW  float64 `json:"pump_w"`  // pumping power this step, W
}

// Result summarizes a completed trace.
type Result struct {
	Peak       float64 `json:"peak"`      // highest Tpeak over the trace, K
	PeakTime   float64 `json:"peak_time"` // when it occurred, s
	Final      float64 `json:"final"`     // Tpeak at the last step, K
	FinalDT    float64 `json:"final_delta_t"`
	Overshoot  float64 `json:"overshoot"`   // Peak − Final, K
	SteadyTime float64 `json:"steady_time"` // first time Tpeak enters (and stays in) the steady band, s
	Steps      int     `json:"steps"`
	PumpEnergy float64 `json:"pump_energy"` // ∫ pump_W dt, J

	Stats thermal.TransientStats `json:"stats"`
}

// steadyBandFrac defines "steady": the trailing window where Tpeak stays
// within this fraction of the final rise above the inlet temperature.
const steadyBandFrac = 0.005

// Run integrates the scenario on the model, invoking observe (if
// non-nil) after every step; an observe error aborts the trace. The
// context is checked between steps so streamed runs stop promptly when
// the client goes away. Pump pressure and power maps are evaluated at
// the start of each step; the thermal.transient.pump fault point, when
// armed, halves the effective pressure on the steps it fires.
func Run(ctx context.Context, m Model, spec *Spec, observe func(StepRecord) error) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ts, err := m.Transient(spec.Psys, spec.Dt)
	if err != nil {
		return nil, err
	}
	base := m.BasePowers()
	// Surface bad event layers before stepping, not at the first active
	// window mid-trace.
	if _, err := spec.PowersAt(0, base); err != nil {
		return nil, err
	}
	field := make([]float64, m.NumNodes())
	for i := range field {
		field[i] = m.Tin()
	}

	res := &Result{Steps: spec.Steps}
	tpeaks := make([]float64, 0, spec.Steps)
	lastScale := spec.Psys
	for k := 1; k <= spec.Steps; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tEval := float64(k-1) * spec.Dt // inputs held over [t_eval, t_eval+dt)
		s := spec.PsysAt(tEval)
		if faults.Fire(faults.TransientPump) {
			s *= 0.5
		}
		if s != lastScale {
			if err := ts.SetScale(s); err != nil {
				return nil, err
			}
			lastScale = s
		}
		if spec.HasPowerEvents() {
			maps, err := spec.PowersAt(tEval, base)
			if err != nil {
				return nil, err
			}
			delta, err := m.PowerDelta(maps)
			if err != nil {
				return nil, err
			}
			if err := ts.SetSourceDelta(delta); err != nil {
				return nil, err
			}
		}
		if err := ts.Step(field); err != nil {
			return nil, fmt.Errorf("scenario: step %d: %w", k, err)
		}
		tmax, dT := m.PeakDelta(field)
		_, wpump := m.PumpWork(s)
		t := float64(k) * spec.Dt
		rec := StepRecord{Step: k, T: t, Psys: s, Tpeak: tmax, DeltaT: dT, PumpW: wpump}
		tpeaks = append(tpeaks, tmax)
		res.PumpEnergy += wpump * spec.Dt
		if tmax > res.Peak {
			res.Peak, res.PeakTime = tmax, t
		}
		res.Final, res.FinalDT = tmax, dT
		if observe != nil {
			if err := observe(rec); err != nil {
				return nil, err
			}
		}
	}
	res.Overshoot = res.Peak - res.Final
	res.SteadyTime = steadyTime(tpeaks, spec.Dt, m.Tin())
	res.Stats = ts.Stats()
	return res, nil
}

// steadyTime returns the time of the first step from which every later
// Tpeak stays within the steady band around the final value, or the full
// trace time when the trace never settles.
func steadyTime(tpeaks []float64, dt, tin float64) float64 {
	if len(tpeaks) == 0 {
		return 0
	}
	final := tpeaks[len(tpeaks)-1]
	band := math.Max(steadyBandFrac*math.Abs(final-tin), 1e-3)
	k := len(tpeaks) - 1
	for k > 0 && math.Abs(tpeaks[k-1]-final) <= band {
		k--
	}
	return float64(k+1) * dt
}
