package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/power"
)

// FuzzScheduleLoad feeds arbitrary bytes through the Spec decoder and, for
// every spec that survives validation, exercises the evaluation surface:
// PsysAt must stay finite and non-negative, PowersAt on a small uniform map
// must stay finite, and the spec must survive a JSON round-trip. The
// package bounds (MaxSteps, MaxEvents, MaxSpecBytes, ...) are what keep a
// hostile spec from turning into unbounded solver work, mirroring the
// network codec's MaxEncodedDim policy.
func FuzzScheduleLoad(f *testing.F) {
	f.Add([]byte(`{"dt":1e-3,"steps":10,"psys":2e4}`))
	f.Add([]byte(`{"dt":1e-3,"steps":50,"psys":2e4,` +
		`"power":[{"kind":"dvfs","layer":-1,"t0":0.01,"factor":2.5}],` +
		`"pump":[{"kind":"fail","t0":0.02,"t1":0.04,"frac":0.3}]}`))
	f.Add([]byte(`{"dt":5e-4,"steps":40,"psys":1e4,` +
		`"power":[{"kind":"hotspot","layer":0,"t0":0,"t1":0.02,` +
		`"x0":0.1,"y0":0.5,"x1":0.9,"y1":0.5,"sigma":0.08,"watts":3}]}`))
	f.Add([]byte(`{"dt":1e-3,"steps":30,"psys":3e4,` +
		`"power":[{"kind":"duty","layer":0,"factor":4,"period":0.01,"duty":0.25,` +
		`"x0":0,"y0":0,"x1":0.5,"y1":0.5}],` +
		`"pump":[{"kind":"ramp","t0":0,"t1":0.01,"frac":0.1}]}`))

	d := grid.Dims{NX: 8, NY: 8}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing more to check
		}
		horizon := spec.Dt * float64(spec.Steps)
		for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
			p := spec.PsysAt(frac * horizon)
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				t.Fatalf("PsysAt(%g) = %g from valid spec %s", frac*horizon, p, data)
			}
		}
		base := []*power.Map{power.New(d), power.New(d)}
		base[0].AddUniform(1)
		base[1].AddUniform(2)
		for _, frac := range []float64{0, 0.5, 0.99} {
			maps, err := spec.PowersAt(frac*horizon, base)
			if err != nil {
				return // layer out of range for this 2-layer base: valid rejection
			}
			for li, m := range maps {
				for i, w := range m.W {
					if math.IsNaN(w) || math.IsInf(w, 0) {
						t.Fatalf("PowersAt layer %d cell %d = %g from valid spec %s", li, i, w, data)
					}
				}
			}
		}
		// A validated spec must survive a marshal/Load round-trip.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal valid spec: %v", err)
		}
		if _, err := Load(bytes.NewReader(enc)); err != nil {
			t.Fatalf("round-trip rejected: %v\nspec: %s", err, enc)
		}
	})
}
