// Package scenario describes and executes transient workloads: time-varying
// power schedules built from power.Map primitives (DVFS steps, duty-cycled
// blocks, migrating Gaussian hotspots) and time-varying pump events (spin-up
// ramps, partial or total pump failure). A Spec is the wire format of the
// /v1/transient endpoint and the -transient mode of lcn-sim; Run drives a
// model's implicit-Euler stepper through it.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lcn3d/internal/power"
)

// Decoder bounds, mirroring the network codec's MaxEncodedDim policy: a
// hostile or fuzzed spec must be rejected by cheap validation before any
// solver work happens.
const (
	// MaxSteps bounds a single trace (100k steps at 1 ms is 100 s of
	// simulated time — beyond that, run segments).
	MaxSteps = 100_000
	// MaxEvents bounds the combined power+pump event count.
	MaxEvents = 64
	// MaxSpecBytes bounds the encoded spec size.
	MaxSpecBytes = 1 << 20
	// MaxDt bounds the time step (s).
	MaxDt = 3600.0
	// MaxPsys bounds the base pump pressure (Pa).
	MaxPsys = 1e9
	// MaxFactor bounds power multipliers.
	MaxFactor = 1e3
	// MaxWatts bounds added hotspot power (W).
	MaxWatts = 1e6
)

// Spec is one transient scenario: a base operating point plus the events
// that perturb it over the trace.
type Spec struct {
	Dt    float64 `json:"dt"`    // time step, s
	Steps int     `json:"steps"` // number of implicit-Euler steps
	Psys  float64 `json:"psys"`  // base pump pressure, Pa

	Power []PowerEvent `json:"power,omitempty"`
	Pump  []PumpEvent  `json:"pump,omitempty"`
}

// PowerEvent perturbs the source-layer power maps over a time window.
// Times are in seconds from trace start; T1 == 0 means "until the end".
type PowerEvent struct {
	// Kind is "dvfs" (scale a layer's map by Factor), "duty" (scale a
	// rectangular block by Factor during the high phase of a square wave),
	// or "hotspot" (add a Gaussian blob migrating from (X0,Y0) to (X1,Y1)
	// across the window).
	Kind string `json:"kind"`
	// Layer selects the source layer (0-based, in BasePowers order);
	// -1 applies to every source layer.
	Layer  int     `json:"layer"`
	T0     float64 `json:"t0"`
	T1     float64 `json:"t1,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	// Period and Duty shape the "duty" square wave: within each Period
	// the first Duty fraction is the high phase.
	Period float64 `json:"period,omitempty"`
	Duty   float64 `json:"duty,omitempty"`
	// X0..Y1 are fractional grid coordinates in [0, 1]: the block corners
	// for "duty", the start and end hotspot centers for "hotspot".
	X0 float64 `json:"x0,omitempty"`
	Y0 float64 `json:"y0,omitempty"`
	X1 float64 `json:"x1,omitempty"`
	Y1 float64 `json:"y1,omitempty"`
	// Sigma is the hotspot radius as a fraction of the grid width.
	Sigma float64 `json:"sigma,omitempty"`
	// Watts is the hotspot's added total power.
	Watts float64 `json:"watts,omitempty"`
}

// PumpEvent perturbs the pump pressure over a time window. Kind is
// "ramp" (spin-up: the pressure factor climbs linearly from Frac to 1
// across [T0, T1]) or "fail" (the factor drops to Frac inside the
// window; Frac 0 is total pump failure, T1 == 0 means permanent).
type PumpEvent struct {
	Kind string  `json:"kind"`
	T0   float64 `json:"t0"`
	T1   float64 `json:"t1,omitempty"`
	Frac float64 `json:"frac,omitempty"`
}

// Load decodes and validates a spec from JSON, rejecting unknown fields
// and enforcing the package bounds. It never reads more than
// MaxSpecBytes.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate bounds-checks the spec. Every field a hostile encoder controls
// is range-checked here, so Run and PsysAt can assume a sane spec.
func (s *Spec) Validate() error {
	if !(s.Dt > 0 && s.Dt <= MaxDt) {
		return fmt.Errorf("scenario: dt %g outside (0, %g]", s.Dt, MaxDt)
	}
	if s.Steps < 1 || s.Steps > MaxSteps {
		return fmt.Errorf("scenario: steps %d outside [1, %d]", s.Steps, MaxSteps)
	}
	if !(s.Psys > 0 && s.Psys <= MaxPsys) {
		return fmt.Errorf("scenario: psys %g outside (0, %g]", s.Psys, MaxPsys)
	}
	if len(s.Power)+len(s.Pump) > MaxEvents {
		return fmt.Errorf("scenario: %d events exceed the %d-event bound", len(s.Power)+len(s.Pump), MaxEvents)
	}
	for i := range s.Power {
		if err := s.Power[i].validate(); err != nil {
			return fmt.Errorf("scenario: power[%d]: %w", i, err)
		}
	}
	for i := range s.Pump {
		if err := s.Pump[i].validate(); err != nil {
			return fmt.Errorf("scenario: pump[%d]: %w", i, err)
		}
	}
	return nil
}

func validWindow(t0, t1 float64) error {
	if !finite(t0, t1) || t0 < 0 || t1 < 0 {
		return fmt.Errorf("bad window [%g, %g]", t0, t1)
	}
	if t1 != 0 && t1 <= t0 {
		return fmt.Errorf("window end %g not after start %g", t1, t0)
	}
	return nil
}

func (e *PowerEvent) validate() error {
	if err := validWindow(e.T0, e.T1); err != nil {
		return err
	}
	if e.Layer < -1 || e.Layer > 63 {
		return fmt.Errorf("layer %d outside [-1, 63]", e.Layer)
	}
	frac01 := func(vs ...float64) bool {
		for _, v := range vs {
			if !finite(v) || v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	switch e.Kind {
	case "dvfs":
		if !finite(e.Factor) || e.Factor < 0 || e.Factor > MaxFactor {
			return fmt.Errorf("factor %g outside [0, %g]", e.Factor, MaxFactor)
		}
	case "duty":
		if !finite(e.Factor) || e.Factor < 0 || e.Factor > MaxFactor {
			return fmt.Errorf("factor %g outside [0, %g]", e.Factor, MaxFactor)
		}
		if !(e.Period > 0) || !finite(e.Period) || e.Period > MaxDt {
			return fmt.Errorf("period %g outside (0, %g]", e.Period, MaxDt)
		}
		if !(e.Duty > 0 && e.Duty < 1) || !finite(e.Duty) {
			return fmt.Errorf("duty %g outside (0, 1)", e.Duty)
		}
		if !frac01(e.X0, e.Y0, e.X1, e.Y1) || e.X1 <= e.X0 || e.Y1 <= e.Y0 {
			return fmt.Errorf("bad block [%g,%g]x[%g,%g]", e.X0, e.X1, e.Y0, e.Y1)
		}
	case "hotspot":
		if !frac01(e.X0, e.Y0, e.X1, e.Y1) {
			return fmt.Errorf("bad path (%g,%g)->(%g,%g)", e.X0, e.Y0, e.X1, e.Y1)
		}
		if !(e.Sigma > 0 && e.Sigma <= 1) || !finite(e.Sigma) {
			return fmt.Errorf("sigma %g outside (0, 1]", e.Sigma)
		}
		if !finite(e.Watts) || e.Watts < 0 || e.Watts > MaxWatts {
			return fmt.Errorf("watts %g outside [0, %g]", e.Watts, MaxWatts)
		}
	default:
		return fmt.Errorf("unknown kind %q (want dvfs, duty, or hotspot)", e.Kind)
	}
	return nil
}

func (e *PumpEvent) validate() error {
	if err := validWindow(e.T0, e.T1); err != nil {
		return err
	}
	if !finite(e.Frac) || e.Frac < 0 || e.Frac > 1 {
		return fmt.Errorf("frac %g outside [0, 1]", e.Frac)
	}
	switch e.Kind {
	case "ramp":
		if e.T1 == 0 {
			return fmt.Errorf("ramp needs an explicit end time")
		}
	case "fail":
	default:
		return fmt.Errorf("unknown kind %q (want ramp or fail)", e.Kind)
	}
	return nil
}

// active reports whether time t falls in [T0, T1), with T1 == 0 meaning
// "until the end of the trace".
func activeAt(t, t0, t1 float64) bool {
	return t >= t0 && (t1 == 0 || t < t1)
}

// PsysAt evaluates the pump pressure at time t: the base Psys times the
// factor of every active pump event. The result of a validated spec is
// always finite and non-negative.
func (s *Spec) PsysAt(t float64) float64 {
	p := s.Psys
	for i := range s.Pump {
		e := &s.Pump[i]
		switch e.Kind {
		case "ramp":
			if t < e.T0 {
				continue
			}
			if t >= e.T1 {
				continue // ramp complete, factor 1
			}
			p *= e.Frac + (1-e.Frac)*(t-e.T0)/(e.T1-e.T0)
		case "fail":
			if activeAt(t, e.T0, e.T1) {
				p *= e.Frac
			}
		}
	}
	return p
}

// HasPowerEvents reports whether any power event exists (a trace without
// them never rebuilds the RHS).
func (s *Spec) HasPowerEvents() bool { return len(s.Power) > 0 }

// PowersAt materializes the source-layer power maps at time t by cloning
// the base maps and applying every active power event. Layers beyond the
// model's source count are reported as an error (the spec cannot know
// the stack at validation time).
func (s *Spec) PowersAt(t float64, base []*power.Map) ([]*power.Map, error) {
	maps := make([]*power.Map, len(base))
	for i, b := range base {
		maps[i] = b.Clone()
	}
	for i := range s.Power {
		e := &s.Power[i]
		if e.Layer >= len(maps) {
			return nil, fmt.Errorf("scenario: power[%d] targets layer %d of %d", i, e.Layer, len(maps))
		}
		if !activeAt(t, e.T0, e.T1) {
			continue
		}
		targets := maps
		if e.Layer >= 0 {
			targets = maps[e.Layer : e.Layer+1]
		}
		for _, m := range targets {
			e.apply(t, m)
		}
	}
	return maps, nil
}

// apply mutates one layer map for an active event at time t.
func (e *PowerEvent) apply(t float64, m *power.Map) {
	d := m.Dims
	switch e.Kind {
	case "dvfs":
		for i := range m.W {
			m.W[i] *= e.Factor
		}
	case "duty":
		if math.Mod(t-e.T0, e.Period) >= e.Duty*e.Period {
			return // low phase: base power
		}
		x0 := int(e.X0 * float64(d.NX))
		x1 := int(math.Ceil(e.X1 * float64(d.NX)))
		y0 := int(e.Y0 * float64(d.NY))
		y1 := int(math.Ceil(e.Y1 * float64(d.NY)))
		for y := max(y0, 0); y < min(y1, d.NY); y++ {
			for x := max(x0, 0); x < min(x1, d.NX); x++ {
				m.W[d.Index(x, y)] *= e.Factor
			}
		}
	case "hotspot":
		// Migrate linearly from (X0, Y0) to (X1, Y1) across the window;
		// an open-ended window (T1 == 0) keeps the spot at its start.
		frac := 0.0
		if e.T1 > e.T0 {
			frac = (t - e.T0) / (e.T1 - e.T0)
			frac = math.Min(math.Max(frac, 0), 1)
		}
		cx := (e.X0 + frac*(e.X1-e.X0)) * float64(d.NX-1)
		cy := (e.Y0 + frac*(e.Y1-e.Y0)) * float64(d.NY-1)
		sigma := e.Sigma * float64(d.NX)
		if sigma <= 0 {
			sigma = 1
		}
		m.AddGaussian(cx, cy, sigma, e.Watts)
	}
}
