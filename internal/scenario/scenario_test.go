package scenario

import (
	"context"
	"math"
	"strings"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/power"
	"lcn3d/internal/sparse"
	"lcn3d/internal/thermal"
)

func validSpec() *Spec {
	return &Spec{Dt: 1e-3, Steps: 10, Psys: 2e4}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"zero dt", func(s *Spec) { s.Dt = 0 }, "dt"},
		{"huge dt", func(s *Spec) { s.Dt = MaxDt * 2 }, "dt"},
		{"nan dt", func(s *Spec) { s.Dt = math.NaN() }, "dt"},
		{"zero steps", func(s *Spec) { s.Steps = 0 }, "steps"},
		{"too many steps", func(s *Spec) { s.Steps = MaxSteps + 1 }, "steps"},
		{"zero psys", func(s *Spec) { s.Psys = 0 }, "psys"},
		{"inf psys", func(s *Spec) { s.Psys = math.Inf(1) }, "psys"},
		{"too many events", func(s *Spec) {
			for i := 0; i <= MaxEvents; i++ {
				s.Pump = append(s.Pump, PumpEvent{Kind: "fail", Frac: 0.5})
			}
		}, "event"},
		{"unknown power kind", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "warp"}}
		}, "kind"},
		{"dvfs bad factor", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "dvfs", Factor: -1}}
		}, "factor"},
		{"dvfs bad layer", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "dvfs", Layer: -2, Factor: 1}}
		}, "layer"},
		{"bad window", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "dvfs", Factor: 1, T0: 5, T1: 2}}
		}, "window"},
		{"duty without period", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "duty", Factor: 2, Duty: 0.5, X1: 1, Y1: 1}}
		}, "period"},
		{"duty bad duty", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "duty", Factor: 2, Period: 1, Duty: 1.5, X1: 1, Y1: 1}}
		}, "duty"},
		{"duty empty block", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "duty", Factor: 2, Period: 1, Duty: 0.5, X0: 0.5, X1: 0.5, Y1: 1}}
		}, "block"},
		{"hotspot bad sigma", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "hotspot", Sigma: 0, Watts: 1}}
		}, "sigma"},
		{"hotspot bad watts", func(s *Spec) {
			s.Power = []PowerEvent{{Kind: "hotspot", Sigma: 0.1, Watts: -1}}
		}, "watts"},
		{"ramp without end", func(s *Spec) {
			s.Pump = []PumpEvent{{Kind: "ramp", Frac: 0.2}}
		}, "ramp"},
		{"pump bad frac", func(s *Spec) {
			s.Pump = []PumpEvent{{Kind: "fail", Frac: 1.5}}
		}, "frac"},
		{"unknown pump kind", func(s *Spec) {
			s.Pump = []PumpEvent{{Kind: "stall", Frac: 0.5}}
		}, "kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"dt":1e-3,"steps":5,"psys":1e4,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := Load(strings.NewReader(`{"dt":1e-3,"steps":5,"psys":1e4}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps != 5 {
		t.Fatalf("steps = %d", s.Steps)
	}
}

func TestPsysAtRampAndFail(t *testing.T) {
	s := &Spec{Dt: 1e-3, Steps: 10, Psys: 1000,
		Pump: []PumpEvent{{Kind: "ramp", T0: 1, T1: 3, Frac: 0.2}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.PsysAt(0.5); got != 1000 {
		t.Fatalf("before ramp: %g", got)
	}
	if got := s.PsysAt(1); math.Abs(got-200) > 1e-9 {
		t.Fatalf("ramp start: %g want 200", got)
	}
	if got := s.PsysAt(2); math.Abs(got-600) > 1e-9 {
		t.Fatalf("ramp midpoint: %g want 600", got)
	}
	if got := s.PsysAt(3); got != 1000 {
		t.Fatalf("after ramp: %g", got)
	}

	s.Pump = []PumpEvent{{Kind: "fail", T0: 1, T1: 2, Frac: 0.5}, {Kind: "fail", T0: 4, Frac: 0}}
	if got := s.PsysAt(1.5); got != 500 {
		t.Fatalf("during fail: %g", got)
	}
	if got := s.PsysAt(2); got != 1000 {
		t.Fatalf("after bounded fail: %g", got)
	}
	if got := s.PsysAt(100); got != 0 {
		t.Fatalf("permanent total failure: %g", got)
	}
}

func uniformBase(d grid.Dims, w float64) []*power.Map {
	m := power.New(d)
	m.AddUniform(w)
	return []*power.Map{m}
}

func TestPowersAtDVFS(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 8}
	base := uniformBase(d, 1)
	s := &Spec{Dt: 1e-3, Steps: 10, Psys: 1e4,
		Power: []PowerEvent{{Kind: "dvfs", Layer: 0, T0: 1, T1: 2, Factor: 2}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	before, err := s.PowersAt(0.5, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := before[0].Total(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("inactive dvfs changed power: %g", got)
	}
	during, err := s.PowersAt(1.5, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := during[0].Total(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("active dvfs total %g want 2", got)
	}
	if math.Abs(base[0].Total()-1) > 1e-12 {
		t.Fatal("PowersAt mutated the base maps")
	}
}

func TestPowersAtAllLayersAndBadLayer(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 4}
	base := []*power.Map{power.New(d), power.New(d)}
	base[0].AddUniform(1)
	base[1].AddUniform(2)
	s := &Spec{Dt: 1e-3, Steps: 10, Psys: 1e4,
		Power: []PowerEvent{{Kind: "dvfs", Layer: -1, Factor: 3}}}
	maps, err := s.PowersAt(0, base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(maps[0].Total()-3) > 1e-9 || math.Abs(maps[1].Total()-6) > 1e-9 {
		t.Fatalf("layer -1 totals: %g %g", maps[0].Total(), maps[1].Total())
	}

	s.Power[0].Layer = 2
	s.Power[0].T0 = 1e9 // inactive — the layer check must still fire
	if _, err := s.PowersAt(0, base); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}

func TestPowersAtDuty(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 8}
	base := uniformBase(d, 1)
	s := &Spec{Dt: 1e-3, Steps: 10, Psys: 1e4,
		Power: []PowerEvent{{Kind: "duty", Layer: 0, Factor: 4,
			Period: 1, Duty: 0.5, X0: 0, Y0: 0, X1: 0.5, Y1: 0.5}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The base spreads 1 W over 64 cells (1/64 W each). At t=0.25, the
	// high phase quadruples the 4x4 block: 16 cells gain 3/64 W each.
	per := 1.0 / 64
	hi, err := s.PowersAt(0.25, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := hi[0].Total(); math.Abs(got-(1+16*3*per)) > 1e-9 {
		t.Fatalf("high phase total %g want %g", got, 1+16*3*per)
	}
	if math.Abs(hi[0].At(0, 0)-4*per) > 1e-12 || math.Abs(hi[0].At(7, 7)-per) > 1e-12 {
		t.Fatalf("block scaling wrong: corner %g, outside %g", hi[0].At(0, 0), hi[0].At(7, 7))
	}
	// t=0.75 is in the low phase: base power.
	lo, err := s.PowersAt(0.75, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := lo[0].Total(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("low phase total %g want 1", got)
	}
}

func TestPowersAtHotspotMigrates(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 16}
	base := uniformBase(d, 0)
	s := &Spec{Dt: 1e-3, Steps: 10, Psys: 1e4,
		Power: []PowerEvent{{Kind: "hotspot", Layer: 0, T0: 0, T1: 1,
			X0: 0, Y0: 0.5, X1: 1, Y1: 0.5, Sigma: 0.05, Watts: 5}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	argmax := func(m *power.Map) (int, int) {
		bi, bv := 0, math.Inf(-1)
		for i, v := range m.W {
			if v > bv {
				bi, bv = i, v
			}
		}
		return bi % d.NX, bi / d.NX
	}
	start, err := s.PowersAt(0, base)
	if err != nil {
		t.Fatal(err)
	}
	end, err := s.PowersAt(0.999, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := start[0].Total(); math.Abs(got-5) > 1e-6 {
		t.Fatalf("hotspot total %g want 5", got)
	}
	sx, _ := argmax(start[0])
	ex, _ := argmax(end[0])
	if sx >= ex {
		t.Fatalf("hotspot did not migrate: peak x %d -> %d", sx, ex)
	}
}

func TestSteadyTime(t *testing.T) {
	flat := []float64{350, 350, 350, 350}
	if got := steadyTime(flat, 0.5, 300); got != 0.5 {
		t.Fatalf("flat trace steady at %g, want 0.5", got)
	}
	rising := []float64{310, 320, 330, 340}
	if got := steadyTime(rising, 0.5, 300); got != 2.0 {
		t.Fatalf("rising trace steady at %g, want 2.0", got)
	}
	settle := []float64{340, 350, 350.01, 350.02}
	if got := steadyTime(settle, 1, 300); got != 2 {
		t.Fatalf("settling trace steady at %g, want 2", got)
	}
}

// fakeModel wraps a tiny diagonal RC system (each grid cell couples only
// to the ambient at Tin) so Run's orchestration can be tested without a
// full 3D-IC model: T' = (P + g(Tin - T)) / C per cell.
type fakeModel struct {
	d    grid.Dims
	tin  float64
	g, c float64
	base *power.Map
	b    []float64 // live RHS, aliased into the stepper
}

func newFakeModel(d grid.Dims, watts float64) *fakeModel {
	m := &fakeModel{d: d, tin: 300, g: 0.5, c: 1e-2, base: power.New(d)}
	m.base.AddUniform(watts) // total, spread uniformly: watts/N per cell
	return m
}

func (m *fakeModel) Name() string  { return "fake" }
func (m *fakeModel) NumNodes() int { return m.d.N() }
func (m *fakeModel) Tin() float64  { return m.tin }
func (m *fakeModel) BasePowers() []*power.Map {
	return []*power.Map{m.base.Clone()}
}

func (m *fakeModel) Transient(psys, dt float64) (*thermal.TransientSystem, error) {
	n := m.d.N()
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, m.g)
	}
	a := b.Build()
	rhs := make([]float64, n)
	caps := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = m.g*m.tin + m.base.W[i]
		caps[i] = m.c
	}
	ts, err := thermal.NewTransientSystem(a, rhs, caps, dt)
	if err != nil {
		return nil, err
	}
	m.b = ts.B
	return ts, nil
}

func (m *fakeModel) PowerDelta(maps []*power.Map) ([]float64, error) {
	delta := make([]float64, m.d.N())
	for i := range delta {
		delta[i] = maps[0].W[i] - m.base.W[i]
	}
	return delta, nil
}

func (m *fakeModel) PeakDelta(field []float64) (tmax, deltaT float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range field {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return hi, hi - lo
}

func (m *fakeModel) PumpWork(psys float64) (qsys, wpump float64) {
	return psys * 1e-9, psys * psys * 1e-9
}

func TestRunConstantPowerSettles(t *testing.T) {
	m := newFakeModel(grid.Dims{NX: 4, NY: 4}, 1.6)
	spec := &Spec{Dt: 5e-3, Steps: 80, Psys: 1e4}
	var seen int
	res, err := Run(context.Background(), m, spec, func(r StepRecord) error {
		seen++
		if r.Step != seen {
			t.Fatalf("step %d out of order (want %d)", r.Step, seen)
		}
		if r.Psys != 1e4 {
			t.Fatalf("psys %g", r.Psys)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != spec.Steps || res.Steps != spec.Steps {
		t.Fatalf("observed %d steps, result says %d, want %d", seen, res.Steps, spec.Steps)
	}
	// Steady state of the RC cell: Tin + P/g = 300 + 0.1/0.5 = 300.2 K.
	want := m.tin + m.base.W[0]/m.g
	if math.Abs(res.Final-want) > 1e-3 {
		t.Fatalf("final %g, want %g", res.Final, want)
	}
	if res.Peak < res.Final {
		t.Fatalf("peak %g below final %g", res.Peak, res.Final)
	}
	if res.SteadyTime <= 0 || res.SteadyTime > float64(spec.Steps)*spec.Dt {
		t.Fatalf("steady time %g outside trace", res.SteadyTime)
	}
	if res.Stats.Steps != spec.Steps || res.Stats.Segments != 1 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	wantEnergy := 1e4 * 1e4 * 1e-9 * spec.Dt * float64(spec.Steps)
	if math.Abs(res.PumpEnergy-wantEnergy) > 1e-9*wantEnergy {
		t.Fatalf("pump energy %g want %g", res.PumpEnergy, wantEnergy)
	}
}

func TestRunDVFSStepRaisesPeak(t *testing.T) {
	m := newFakeModel(grid.Dims{NX: 4, NY: 4}, 1.6)
	plain := &Spec{Dt: 5e-3, Steps: 60, Psys: 1e4}
	resPlain, err := Run(context.Background(), m, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	stepped := &Spec{Dt: 5e-3, Steps: 60, Psys: 1e4,
		Power: []PowerEvent{{Kind: "dvfs", Layer: 0, T0: 0.15, Factor: 3}}}
	resStep, err := Run(context.Background(), newFakeModel(grid.Dims{NX: 4, NY: 4}, 1.6), stepped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resStep.Peak <= resPlain.Peak {
		t.Fatalf("dvfs x3 did not raise the peak: %g vs %g", resStep.Peak, resPlain.Peak)
	}
	// After the step the RC cell heads to Tin + 3P/g.
	want := m.tin + 3*m.base.W[0]/m.g
	if math.Abs(resStep.Final-want) > 5e-3 {
		t.Fatalf("stepped final %g, want %g", resStep.Final, want)
	}
}

func TestRunPumpEventChangesPsys(t *testing.T) {
	m := newFakeModel(grid.Dims{NX: 4, NY: 4}, 0.16)
	spec := &Spec{Dt: 1e-2, Steps: 10, Psys: 1e4,
		Pump: []PumpEvent{{Kind: "fail", T0: 0.05, Frac: 0.5}}}
	var early, late float64
	res, err := Run(context.Background(), m, spec, func(r StepRecord) error {
		if r.Step == 3 {
			early = r.Psys
		}
		if r.Step == 9 {
			late = r.Psys
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if early != 1e4 || late != 5e3 {
		t.Fatalf("psys before/after failure: %g / %g", early, late)
	}
	if res.Stats.Segments < 2 {
		t.Fatalf("pressure change should open a new segment, got %d", res.Stats.Segments)
	}
}

func TestRunContextCancel(t *testing.T) {
	m := newFakeModel(grid.Dims{NX: 4, NY: 4}, 0.16)
	ctx, cancel := context.WithCancel(context.Background())
	spec := &Spec{Dt: 1e-3, Steps: 1000, Psys: 1e4}
	_, err := Run(ctx, m, spec, func(r StepRecord) error {
		if r.Step == 5 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func TestRunObserveErrorAborts(t *testing.T) {
	m := newFakeModel(grid.Dims{NX: 4, NY: 4}, 0.16)
	spec := &Spec{Dt: 1e-3, Steps: 100, Psys: 1e4}
	calls := 0
	_, err := Run(context.Background(), m, spec, func(r StepRecord) error {
		calls++
		if calls == 3 {
			return context.Canceled
		}
		return nil
	})
	if err == nil {
		t.Fatal("observe error did not abort")
	}
	if calls != 3 {
		t.Fatalf("observe called %d times after abort", calls)
	}
}
