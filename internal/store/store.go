// Package store is a disk-backed content-addressed result store: an
// append-only segment log mapping network.CanonicalHash-derived cache
// keys to opaque result blobs, built so a solved topology is never
// solved again — not by this process after a restart, and (through the
// cluster forwarding layer) not by any node of a fleet.
//
// Layout and durability model:
//
//   - Records are appended to numbered segment files (seg-00000001.log,
//     ...). A record is [magic][crc32][keyLen][valLen][key][val]; the
//     CRC covers everything after itself, so a torn write is detectable.
//   - Writes go through a batcher: Put enqueues and returns; a flusher
//     goroutine writes pending records with ONE write + ONE fsync when
//     the batch reaches FlushCount records, FlushBytes bytes, or
//     FlushInterval of age — group commit, so sustained put traffic
//     costs ~1 fsync per batch rather than per record. Flush/Close force
//     the pending batch out synchronously (the drain path uses this so
//     a clean shutdown never loses acknowledged writes).
//   - Open rebuilds the in-memory index by scanning every segment in
//     order. A record that fails its CRC is skipped, not fatal; a torn
//     tail (truncated header or body, or an implausible length field)
//     ends that segment's scan. New writes always start a fresh
//     segment, so recovered garbage is never appended to.
//   - Keys are content addresses: a key maps to exactly one immutable
//     value, so duplicate puts are dropped and compaction is pure
//     garbage collection (rewrite live records, delete old segments).
//
// Everything is counted (puts, gets, hits, misses, flushes, recovered
// and skipped records, compactions) and exported via Stats for the
// /v1/metrics snapshot.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/faults"
)

const (
	magic = 0x4C434E53 // "LCNS"

	headerSize = 14 // magic(4) + crc(4) + keyLen(2) + valLen(4)

	// maxKeyLen / maxValLen bound what a scan will believe: a length
	// field beyond these marks the record (and the rest of the segment)
	// as garbage rather than driving a huge allocation.
	maxKeyLen = 1 << 10
	maxValLen = 1 << 26 // 64 MB
)

// Options tunes a Store. The zero value is usable.
type Options struct {
	// FlushCount flushes the batch when this many records are pending
	// (default 64).
	FlushCount int
	// FlushBytes flushes when the pending batch reaches this many
	// encoded bytes (default 1 MB).
	FlushBytes int64
	// FlushInterval bounds how long an acknowledged put can sit
	// unflushed (default 100ms).
	FlushInterval time.Duration
	// MaxSegmentBytes rotates the active segment beyond this size
	// (default 64 MB).
	MaxSegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.FlushCount <= 0 {
		o.FlushCount = 64
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 1 << 20
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 100 * time.Millisecond
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	return o
}

// Stats snapshots the store counters.
type Stats struct {
	Puts     int64 `json:"puts"`
	PutDups  int64 `json:"put_dups"` // dropped: key already stored or pending
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	HitBytes int64 `json:"hit_bytes"`

	Flushes        int64 `json:"flushes"`
	FlushFails     int64 `json:"flush_fails"`
	FlushedRecords int64 `json:"flushed_records"`
	FlushedBytes   int64 `json:"flushed_bytes"`
	Pending        int   `json:"pending"` // records acknowledged, not yet flushed

	Records   int   `json:"records"`  // live index entries
	Segments  int   `json:"segments"` // segment files on disk
	SizeBytes int64 `json:"size_bytes"`

	// RecoveredRecords/SkippedRecords describe the Open scan: records
	// admitted to the index vs records dropped (CRC mismatch, torn tail,
	// implausible header).
	RecoveredRecords int64 `json:"recovered_records"`
	SkippedRecords   int64 `json:"skipped_records"`

	Compactions int64 `json:"compactions"`
	ReadErrors  int64 `json:"read_errors"` // Get-time CRC or I/O failures
}

// recLoc locates one record's value bytes inside a segment.
type recLoc struct {
	seg    int
	off    int64 // offset of the value bytes
	valLen int
	keyLen int
}

type pendingRec struct {
	key string
	val []byte
}

// Store is a content-addressed segment-log store. All methods are safe
// for concurrent use.
type Store struct {
	dir string
	opt Options

	mu        sync.Mutex
	index     map[string]recLoc
	pendIdx   map[string][]byte // acknowledged, unflushed (read-your-writes)
	pending   []pendingRec
	pendBytes int64
	segs      map[int]*os.File
	active    *os.File
	activeSeq int
	activeLen int64
	sizeBytes int64
	closed    bool

	flushC chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	ctrPuts, ctrPutDups, ctrGets, ctrHits, ctrMisses, ctrHitBytes atomic.Int64
	ctrFlushes, ctrFlushFails, ctrFlushedRecs, ctrFlushedBytes    atomic.Int64
	ctrRecovered, ctrSkipped, ctrCompactions, ctrReadErrors       atomic.Int64
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

func segName(seq int) string { return fmt.Sprintf("seg-%08d.log", seq) }

// Open opens (or creates) the store rooted at dir, scanning every
// segment to rebuild the index. Corrupt or torn records are counted and
// skipped; Open only fails on real I/O errors.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		index:   make(map[string]recLoc),
		pendIdx: make(map[string][]byte),
		segs:    make(map[int]*os.File),
		flushC:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if err := s.scan(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.wg.Add(1)
	go s.flusher()
	return s, nil
}

// scan reads every existing segment in sequence order, admitting valid
// records to the index. It leaves the store positioned to write a fresh
// segment (one past the highest existing sequence).
func (s *Store) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%d.log", &seq); n == 1 && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	maxSeq := 0
	for _, seq := range seqs {
		f, err := os.Open(filepath.Join(s.dir, segName(seq)))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		size, err := s.scanSegment(seq, f)
		if err != nil {
			f.Close()
			return err
		}
		s.segs[seq] = f
		s.sizeBytes += size
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	s.activeSeq = maxSeq // next append rotates to maxSeq+1
	s.active = nil
	return nil
}

// scanSegment walks one segment's records. Records whose CRC fails are
// skipped individually (their length fields are plausible, so the scan
// can step over them); a truncated or implausible header ends the scan
// — that is the torn tail of a crashed flush. It returns the file size.
func (s *Store) scanSegment(seq int, f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	var hdr [headerSize]byte
	var off int64
	for off+headerSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			s.ctrSkipped.Add(1)
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
			// Not a record boundary: garbage from here on.
			s.ctrSkipped.Add(1)
			break
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		keyLen := int(binary.LittleEndian.Uint16(hdr[8:10]))
		valLen := int(binary.LittleEndian.Uint32(hdr[10:14]))
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			s.ctrSkipped.Add(1)
			break
		}
		recEnd := off + headerSize + int64(keyLen) + int64(valLen)
		if recEnd > size {
			// Torn tail: the flush died mid-record.
			s.ctrSkipped.Add(1)
			break
		}
		body := make([]byte, keyLen+valLen)
		if _, err := f.ReadAt(body, off+headerSize); err != nil {
			s.ctrSkipped.Add(1)
			break
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[8:14])
		crc.Write(body)
		if crc.Sum32() != wantCRC {
			// Bit rot or a torn write that happened to keep plausible
			// lengths: skip this record, keep scanning.
			s.ctrSkipped.Add(1)
			off = recEnd
			continue
		}
		key := string(body[:keyLen])
		s.index[key] = recLoc{seg: seq, off: off + headerSize + int64(keyLen), valLen: valLen, keyLen: keyLen}
		s.ctrRecovered.Add(1)
		off = recEnd
	}
	return size, nil
}

// encode appends the record for (key, val) to buf and returns it.
func encode(buf []byte, key string, val []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:14])
	crc.Write([]byte(key))
	crc.Write(val)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	return buf
}

func recordSize(key string, val []byte) int64 {
	return headerSize + int64(len(key)) + int64(len(val))
}

// Put enqueues one record for asynchronous flushing and returns
// immediately. The value is copied. Duplicate keys (already stored or
// already pending) are dropped: keys are content addresses, so the
// value cannot have changed.
func (s *Store) Put(key string, val []byte) error {
	if key == "" || len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("store: record out of bounds (key %d bytes, val %d bytes)", len(key), len(val))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ctrPuts.Add(1)
	if _, dup := s.index[key]; dup {
		s.ctrPutDups.Add(1)
		s.mu.Unlock()
		return nil
	}
	if _, dup := s.pendIdx[key]; dup {
		s.ctrPutDups.Add(1)
		s.mu.Unlock()
		return nil
	}
	v := make([]byte, len(val))
	copy(v, val)
	s.pending = append(s.pending, pendingRec{key: key, val: v})
	s.pendIdx[key] = v
	s.pendBytes += recordSize(key, v)
	trigger := len(s.pending) >= s.opt.FlushCount || s.pendBytes >= s.opt.FlushBytes
	s.mu.Unlock()
	if trigger {
		select {
		case s.flushC <- struct{}{}:
		default:
		}
	}
	return nil
}

// Get returns the stored value for key. Pending (unflushed) records are
// visible. A record that fails its CRC on read is treated as a miss.
//
// Segment reads are optimistic (outside the lock), so a concurrent
// Compact can close the segment mid-read; a failed attempt re-resolves
// the record's location under the lock — waiting any in-flight
// compaction out — and the final attempt reads while still holding it,
// so a live key is never reported missing because of compaction.
func (s *Store) Get(key string) ([]byte, bool) {
	s.ctrGets.Add(1)
	if faults.Fire(faults.StoreRead) {
		s.ctrReadErrors.Add(1)
		s.ctrMisses.Add(1)
		return nil, false
	}
	const attempts = 3
	for attempt := 0; ; attempt++ {
		locked := attempt == attempts-1
		s.mu.Lock()
		if v, ok := s.pendIdx[key]; ok {
			out := make([]byte, len(v))
			copy(out, v)
			s.mu.Unlock()
			s.ctrHits.Add(1)
			s.ctrHitBytes.Add(int64(len(out)))
			return out, true
		}
		loc, ok := s.index[key]
		if !ok {
			s.mu.Unlock()
			s.ctrMisses.Add(1)
			return nil, false
		}
		f := s.segs[loc.seg]
		if !locked {
			s.mu.Unlock()
		}
		// Re-read header + body and verify the CRC: a hit must never hand
		// back silently corrupted result bytes.
		val, ok := readRecord(f, loc)
		if locked {
			s.mu.Unlock()
		}
		if ok {
			s.ctrHits.Add(1)
			s.ctrHitBytes.Add(int64(len(val)))
			return val, true
		}
		if locked { // genuine IO error or corruption, not a compaction race
			s.ctrReadErrors.Add(1)
			s.ctrMisses.Add(1)
			return nil, false
		}
	}
}

// readRecord reads and CRC-verifies one record at loc.
func readRecord(f *os.File, loc recLoc) ([]byte, bool) {
	if f == nil {
		return nil, false
	}
	hdrOff := loc.off - int64(loc.keyLen) - headerSize
	buf := make([]byte, headerSize+loc.keyLen+loc.valLen)
	if _, err := f.ReadAt(buf, hdrOff); err != nil {
		return nil, false
	}
	crc := crc32.NewIEEE()
	crc.Write(buf[8:])
	if crc.Sum32() != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, false
	}
	return buf[headerSize+loc.keyLen:], true
}

// Keys returns every key with the given prefix, flushed or pending,
// in sorted order. Used by the jobs subsystem to enumerate persisted
// job records and checkpoints on startup recovery.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	for k := range s.pendIdx {
		if _, dup := s.index[k]; !dup && strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of live (flushed) index entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// flusher is the background group-commit loop: it flushes when
// signalled (count/bytes threshold crossed) and on a ticker so no
// acknowledged put waits longer than FlushInterval.
func (s *Store) flusher() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opt.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.flushC:
		case <-tick.C:
		}
		s.mu.Lock()
		if len(s.pending) > 0 {
			s.flushLocked()
		}
		s.mu.Unlock()
	}
}

// Flush synchronously writes and fsyncs every pending record. The drain
// path calls this so acknowledged writes survive a clean shutdown.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.pending) == 0 {
		return nil
	}
	return s.flushLocked()
}

// rotateLocked opens the next segment file for appending.
func (s *Store) rotateLocked() error {
	seq := s.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	// Readers use a separate handle so ReadAt never races the appender's
	// file offset semantics.
	rf, err := os.Open(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		f.Close()
		return fmt.Errorf("store: rotate: %w", err)
	}
	s.active = f
	s.activeSeq = seq
	s.activeLen = 0
	s.segs[seq] = rf
	return nil
}

// flushLocked performs one group commit: encode every pending record,
// one Write, one fsync, then publish the index entries. On write
// failure the batch is dropped (this is a cache of recomputable
// results, not a WAL) and the segment is rotated so a torn tail is
// never appended to. Callers hold s.mu.
func (s *Store) flushLocked() error {
	if s.active == nil || s.activeLen >= s.opt.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			s.ctrFlushFails.Add(1)
			return err
		}
	}
	batch := s.pending
	buf := make([]byte, 0, s.pendBytes)
	locs := make([]recLoc, len(batch))
	off := s.activeLen
	for i, r := range batch {
		locs[i] = recLoc{
			seg:    s.activeSeq,
			off:    off + int64(len(buf)) + headerSize + int64(len(r.key)),
			valLen: len(r.val),
			keyLen: len(r.key),
		}
		buf = encode(buf, r.key, r.val)
	}
	fail := func(err error) error {
		// Drop the batch and abandon the segment: whatever bytes made it
		// out are a torn tail the next Open will skip.
		s.ctrFlushFails.Add(1)
		s.pending = nil
		s.pendBytes = 0
		s.pendIdx = make(map[string][]byte)
		s.active.Close()
		s.active = nil
		return err
	}
	if faults.Fire(faults.StoreFlush) {
		// Injected torn write: emit a few bytes cut inside the batch's
		// first record, with no fsync, then fail — the crash-recovery
		// scan must skip exactly this tail.
		cut := headerSize + 5
		if cut > len(buf) {
			cut = len(buf)
		}
		s.active.Write(buf[:cut])
		s.activeLen += int64(cut)
		s.sizeBytes += int64(cut)
		return fail(errors.New("store: injected flush fault"))
	}
	if _, err := s.active.Write(buf); err != nil {
		return fail(fmt.Errorf("store: flush write: %w", err))
	}
	if err := s.active.Sync(); err != nil {
		return fail(fmt.Errorf("store: flush sync: %w", err))
	}
	s.activeLen += int64(len(buf))
	s.sizeBytes += int64(len(buf))
	for i, r := range batch {
		s.index[r.key] = locs[i]
		delete(s.pendIdx, r.key)
	}
	s.pending = nil
	s.pendBytes = 0
	s.ctrFlushes.Add(1)
	s.ctrFlushedRecs.Add(int64(len(batch)))
	s.ctrFlushedBytes.Add(int64(len(buf)))
	return nil
}

// Compact rewrites every live record into fresh segments and deletes
// the old ones, dropping skipped garbage and superseded duplicates. The
// store stays readable throughout (the lock is held, so concurrent
// operations briefly queue — compaction is an offline-ish maintenance
// pass, not a hot-path one).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.pending) > 0 {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	oldSegs := make(map[int]*os.File, len(s.segs))
	for seq, f := range s.segs {
		oldSegs[seq] = f
	}
	oldIndex := s.index
	oldSize := s.sizeBytes

	// Live records are rewritten in deterministic key order into segments
	// numbered past every existing one.
	keys := make([]string, 0, len(oldIndex))
	for k := range oldIndex {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	newIndex := make(map[string]recLoc, len(keys))
	newSegs := make(map[int]*os.File)
	var newSize int64
	undo := func(err error) error {
		for _, f := range newSegs {
			f.Close()
		}
		if s.active != nil {
			s.active.Close()
			s.active = nil
		}
		for seq := range newSegs {
			os.Remove(filepath.Join(s.dir, segName(seq)))
		}
		// The old files are untouched; restore the old view.
		s.index, s.segs, s.sizeBytes = oldIndex, oldSegs, oldSize
		return err
	}
	for _, k := range keys {
		loc := oldIndex[k]
		f := oldSegs[loc.seg]
		val := make([]byte, loc.valLen)
		if f == nil {
			continue
		}
		if _, err := f.ReadAt(val, loc.off); err != nil {
			s.ctrReadErrors.Add(1)
			continue // unreadable record: drop it, it is recomputable
		}
		if s.active == nil || s.activeLen >= s.opt.MaxSegmentBytes {
			if err := s.rotateLocked(); err != nil {
				return undo(err)
			}
			newSegs[s.activeSeq] = s.segs[s.activeSeq]
		}
		rec := encode(nil, k, val)
		if _, err := s.active.Write(rec); err != nil {
			return undo(fmt.Errorf("store: compact write: %w", err))
		}
		newIndex[k] = recLoc{seg: s.activeSeq, off: s.activeLen + headerSize + int64(len(k)), valLen: len(val), keyLen: len(k)}
		s.activeLen += int64(len(rec))
		newSize += int64(len(rec))
	}
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return undo(fmt.Errorf("store: compact sync: %w", err))
		}
	}
	// Publish the compacted view, then remove the old generation.
	s.index = newIndex
	s.sizeBytes = newSize
	for seq, f := range oldSegs {
		f.Close()
		delete(s.segs, seq)
		os.Remove(filepath.Join(s.dir, segName(seq)))
	}
	for seq, f := range newSegs {
		s.segs[seq] = f
	}
	s.ctrCompactions.Add(1)
	return nil
}

func (s *Store) closeFiles() {
	for _, f := range s.segs {
		f.Close()
	}
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	s.segs = make(map[int]*os.File)
}

// Close flushes pending writes, stops the flusher, and closes every
// file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	if len(s.pending) > 0 {
		err = s.flushLocked()
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	s.closeFiles()
	s.mu.Unlock()
	return err
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	pending := len(s.pending)
	records := len(s.index)
	segments := len(s.segs)
	size := s.sizeBytes
	s.mu.Unlock()
	return Stats{
		Puts:             s.ctrPuts.Load(),
		PutDups:          s.ctrPutDups.Load(),
		Gets:             s.ctrGets.Load(),
		Hits:             s.ctrHits.Load(),
		Misses:           s.ctrMisses.Load(),
		HitBytes:         s.ctrHitBytes.Load(),
		Flushes:          s.ctrFlushes.Load(),
		FlushFails:       s.ctrFlushFails.Load(),
		FlushedRecords:   s.ctrFlushedRecs.Load(),
		FlushedBytes:     s.ctrFlushedBytes.Load(),
		Pending:          pending,
		Records:          records,
		Segments:         segments,
		SizeBytes:        size,
		RecoveredRecords: s.ctrRecovered.Load(),
		SkippedRecords:   s.ctrSkipped.Load(),
		Compactions:      s.ctrCompactions.Load(),
		ReadErrors:       s.ctrReadErrors.Load(),
	}
}
