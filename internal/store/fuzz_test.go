package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzStoreOpen feeds arbitrary bytes in as a pre-existing segment
// file: truncated, corrupted, or garbage records must at worst be
// skipped — Open must never panic, and the opened store must stay fully
// usable (put, get, flush, reopen) regardless of what it recovered.
func FuzzStoreOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a segment at all"))
	// A valid single-record segment.
	f.Add(encode(nil, "somekey", []byte(`{"v":1}`)))
	// A valid record followed by a torn copy of itself.
	rec := encode(nil, "another-key", bytes.Repeat([]byte("x"), 100))
	f.Add(append(append([]byte{}, rec...), rec[:len(rec)-7]...))
	// A record with a corrupted CRC.
	bad := encode(nil, "k3", []byte("vvv"))
	bad[5] ^= 0xFF
	f.Add(bad)
	// A header announcing an implausibly huge value.
	var huge [headerSize]byte
	binary.LittleEndian.PutUint32(huge[0:4], magic)
	binary.LittleEndian.PutUint16(huge[8:10], 4)
	binary.LittleEndian.PutUint32(huge[10:14], 1<<31)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{FlushInterval: time.Hour, FlushCount: 1 << 20})
		if err != nil {
			// Only real I/O errors may fail Open; corruption must not.
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		// The store must be usable whatever was recovered.
		if err := s.Put("fuzz-probe-key", []byte("fuzz-probe-val")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if got, ok := s.Get("fuzz-probe-key"); !ok || !bytes.Equal(got, []byte("fuzz-probe-val")) {
			t.Fatalf("Get after Put: ok=%v got=%q", ok, got)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// And survive a reopen: the new write landed in a fresh segment
		// past the fuzzed one.
		s2, err := Open(dir, Options{FlushInterval: time.Hour, FlushCount: 1 << 20})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s2.Close()
		if got, ok := s2.Get("fuzz-probe-key"); !ok || !bytes.Equal(got, []byte("fuzz-probe-val")) {
			t.Fatalf("reopen Get: ok=%v got=%q", ok, got)
		}
	})
}
