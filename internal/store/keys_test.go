package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestKeysPrefix(t *testing.T) {
	s, _ := openT(t, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("job/a/rec/%d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("job/b/rec/1", val(9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", val(10)); err != nil {
		t.Fatal(err)
	}
	// Flush half so both the flushed index and the pending index
	// contribute; Keys must merge them without duplicates.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("job/a/rec/%d", i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"job/a/rec/0", "job/a/rec/1", "job/a/rec/2",
		"job/a/rec/3", "job/a/rec/4", "job/a/rec/5",
	}
	if got := s.Keys("job/a/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys(job/a/) = %v, want %v", got, want)
	}
	if got := s.Keys("job/"); len(got) != 7 {
		t.Fatalf("Keys(job/) returned %d keys, want 7", len(got))
	}
	if got := s.Keys("nope/"); got != nil {
		t.Fatalf("Keys(nope/) = %v, want nil", got)
	}
}

// TestCompactConcurrentAccess hammers Get/Put/Keys from several
// goroutines while Compact runs repeatedly. Run under -race this proves
// compaction publishes its rewritten segments safely; every present key
// must stay readable with intact bytes throughout.
func TestCompactConcurrentAccess(t *testing.T) {
	s, _ := openT(t, Options{MaxSegmentBytes: 1 << 12})
	const seeded = 64
	for i := 0; i < seeded; i++ {
		put(t, s, i)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % seeded
				if v, ok := s.Get(key(k)); ok {
					if string(v) != string(val(k)) {
						t.Errorf("worker %d: corrupt read for %s", w, key(k))
						return
					}
				} else {
					t.Errorf("worker %d: lost key %s during compaction", w, key(k))
					return
				}
				if i%7 == 0 {
					// New keys racing the compactor's index rewrite.
					if err := s.Put(fmt.Sprintf("live/%d/%d", w, i), val(i)); err != nil {
						t.Errorf("worker %d: put: %v", w, err)
						return
					}
				}
				if i%13 == 0 {
					s.Keys("live/")
				}
				i++
			}
		}(w)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := s.Compact(); err != nil {
			t.Errorf("compact: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()

	for i := 0; i < seeded; i++ {
		v, ok := s.Get(key(i))
		if !ok || string(v) != string(val(i)) {
			t.Fatalf("key %s missing or corrupt after compaction storm", key(i))
		}
	}
}
