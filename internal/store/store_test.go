package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lcn3d/internal/faults"
)

// openT opens a store rooted in a fresh temp dir and closes it with the
// test. Flush thresholds are set high so tests control flushing
// explicitly unless they override.
func openT(t *testing.T, opt Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s := reopenT(t, dir, opt)
	return s, dir
}

func reopenT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	if opt.FlushInterval == 0 {
		opt.FlushInterval = time.Hour // tests flush explicitly
	}
	if opt.FlushCount == 0 {
		opt.FlushCount = 1 << 20
	}
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(i int) string { return fmt.Sprintf("%064d", i) }
func val(i int) []byte { return []byte(fmt.Sprintf(`{"result":%d,"pad":"abcdefgh"}`, i)) }
func put(t *testing.T, s *Store, i int) {
	t.Helper()
	if err := s.Put(key(i), val(i)); err != nil {
		t.Fatalf("Put(%d): %v", i, err)
	}
}
func wantGet(t *testing.T, s *Store, i int) {
	t.Helper()
	got, ok := s.Get(key(i))
	if !ok {
		t.Fatalf("Get(%d): miss, want hit", i)
	}
	if !bytes.Equal(got, val(i)) {
		t.Fatalf("Get(%d) = %q, want %q", i, got, val(i))
	}
}

func TestPutGetBeforeAndAfterFlush(t *testing.T) {
	s, _ := openT(t, Options{})
	put(t, s, 1)
	wantGet(t, s, 1) // pending records are readable (read-your-writes)
	if st := s.Stats(); st.Pending != 1 || st.Flushes != 0 {
		t.Fatalf("pre-flush stats: %+v", st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	wantGet(t, s, 1)
	st := s.Stats()
	if st.Pending != 0 || st.Flushes != 1 || st.FlushedRecords != 1 || st.Records != 1 {
		t.Fatalf("post-flush stats: %+v", st)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestDuplicatePutsDropped(t *testing.T) {
	s, _ := openT(t, Options{})
	put(t, s, 1)
	put(t, s, 1) // pending dup
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, s, 1) // stored dup
	st := s.Stats()
	if st.PutDups != 2 || st.FlushedRecords != 1 {
		t.Fatalf("dup stats: %+v", st)
	}
}

func TestReopenReadsBack(t *testing.T) {
	s, dir := openT(t, Options{})
	for i := 0; i < 20; i++ {
		put(t, s, i)
	}
	if err := s.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	s2 := reopenT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		wantGet(t, s2, i)
	}
	st := s2.Stats()
	if st.RecoveredRecords != 20 || st.SkippedRecords != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestCountThresholdTriggersBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushCount: 4, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		put(t, s, i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("count threshold never flushed: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.FlushedRecords != 4 || st.Pending != 0 {
		t.Fatalf("stats after threshold flush: %+v", st)
	}
}

func TestIntervalTriggersBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushCount: 1 << 20, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	put(t, s, 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval never flushed: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSegmentRotation(t *testing.T) {
	s, dir := openT(t, Options{MaxSegmentBytes: 256})
	for i := 0; i < 10; i++ {
		put(t, s, i)
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("want rotation across segments, got %+v", st)
	}
	for i := 0; i < 10; i++ {
		wantGet(t, s, i)
	}
	s.Close()
	s2 := reopenT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		wantGet(t, s2, i)
	}
}

func TestCompact(t *testing.T) {
	s, dir := openT(t, Options{MaxSegmentBytes: 256})
	for i := 0; i < 12; i++ {
		put(t, s, i)
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Leave torn garbage on disk via an injected flush fault, so the
	// compaction pass has something real to drop.
	if err := faults.Arm(string(faults.StoreFlush) + "=once"); err != nil {
		t.Fatal(err)
	}
	put(t, s, 99)
	if err := s.Flush(); err == nil {
		t.Fatal("injected flush fault did not error")
	}
	faults.Disarm()
	pre := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	post := s.Stats()
	if post.Compactions != 1 {
		t.Fatalf("compactions = %d", post.Compactions)
	}
	if post.SizeBytes >= pre.SizeBytes {
		t.Fatalf("size %d -> %d, want smaller (garbage dropped)", pre.SizeBytes, post.SizeBytes)
	}
	if post.Records != 12 {
		t.Fatalf("records = %d, want 12", post.Records)
	}
	for i := 0; i < 12; i++ {
		wantGet(t, s, i)
	}
	// Writes keep working after compaction, and the whole state survives
	// a reopen.
	put(t, s, 100)
	s.Close()
	s2 := reopenT(t, dir, Options{})
	for i := 0; i < 12; i++ {
		wantGet(t, s2, i)
	}
	wantGet(t, s2, 100)
}

// TestCrashRecoverySkipsTornTail is the satellite crash-recovery test:
// a store.flush fault tears a group commit mid-batch (partial write, no
// fsync, error). Reopening the directory must index every previously
// fsynced record and skip the torn tail — a crash must never poison the
// store. Run under -race in CI like everything else.
func TestCrashRecoverySkipsTornTail(t *testing.T) {
	s, dir := openT(t, Options{})
	// Batch 1: flushed cleanly — these must survive.
	for i := 0; i < 8; i++ {
		put(t, s, i)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Batch 2: torn mid-record by the injected fault.
	if err := faults.Arm(string(faults.StoreFlush) + "=once"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	for i := 8; i < 16; i++ {
		put(t, s, i)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("injected flush fault did not error")
	}
	if st := s.Stats(); st.FlushFails != 1 {
		t.Fatalf("flush_fails = %d, want 1", st.FlushFails)
	}
	// Batch 3: the store stays usable after the failure; a later batch
	// lands in a fresh segment and must also survive.
	for i := 16; i < 20; i++ {
		put(t, s, i)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// "Crash": abandon s without Close and reopen the directory.
	s2 := reopenT(t, dir, Options{})
	for i := 0; i < 8; i++ {
		wantGet(t, s2, i) // batch 1 fsynced before the fault
	}
	for i := 16; i < 20; i++ {
		wantGet(t, s2, i) // batch 3 fsynced after it
	}
	for i := 8; i < 16; i++ {
		if _, ok := s2.Get(key(i)); ok {
			t.Fatalf("torn record %d visible after reopen", i)
		}
	}
	st := s2.Stats()
	if st.RecoveredRecords != 12 {
		t.Fatalf("recovered = %d, want 12 (%+v)", st.RecoveredRecords, st)
	}
	if st.SkippedRecords == 0 {
		t.Fatalf("torn tail not counted as skipped: %+v", st)
	}
}

// TestCorruptMidSegmentRecordSkipped flips bits inside one record of a
// multi-record segment: the scan must skip exactly that record and keep
// the rest.
func TestCorruptMidSegmentRecordSkipped(t *testing.T) {
	s, dir := openT(t, Options{})
	for i := 0; i < 3; i++ {
		put(t, s, i)
	}
	s.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle record's value bytes (record layout is fixed:
	// all three records have identical sizes).
	rec := len(data) / 3
	data[rec+headerSize+70] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := reopenT(t, dir, Options{})
	wantGet(t, s2, 0)
	wantGet(t, s2, 2)
	if _, ok := s2.Get(key(1)); ok {
		t.Fatal("corrupted record served")
	}
	st := s2.Stats()
	if st.RecoveredRecords != 2 || st.SkippedRecords != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushCount: 8, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n := w*per + i
				if err := s.Put(key(n), val(n)); err != nil {
					t.Errorf("Put(%d): %v", n, err)
					return
				}
				if got, ok := s.Get(key(n)); !ok || !bytes.Equal(got, val(n)) {
					t.Errorf("Get(%d) after Put: ok=%v", n, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < workers*per; n++ {
		wantGet(t, s, n)
	}
}

func TestClosedStoreRejectsOperations(t *testing.T) {
	s, _ := openT(t, Options{})
	put(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestReadFaultIsMissNotFailure(t *testing.T) {
	s, _ := openT(t, Options{})
	put(t, s, 1)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm(string(faults.StoreRead) + "=once"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("faulted read served a hit")
	}
	if st := s.Stats(); st.ReadErrors != 1 {
		t.Fatalf("read_errors = %d, want 1", st.ReadErrors)
	}
	wantGet(t, s, 1) // next read is clean
}
