package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over a static peer list. Each peer
// contributes VirtualNodes points; a key is owned by the peer whose
// first point clockwise of the key's hash position. The ring is
// immutable after construction — membership is a deployment-time
// decision (the -peers flag), and a down peer keeps its ownership so
// keys do not migrate on transient failures (the service falls back to
// local compute instead).
type Ring struct {
	points []ringPoint
	peers  []string
}

type ringPoint struct {
	hash uint64
	peer string
}

// defaultVirtualNodes spreads ownership evenly: with 64 points per peer
// the max/min load ratio across a handful of peers stays within a few
// percent of 1.
const defaultVirtualNodes = 64

// NewRing builds a ring over peers (deduplicated, order-insensitive:
// two nodes configured with the same set in any order agree on every
// owner). virtualNodes <= 0 selects the default.
func NewRing(peers []string, virtualNodes int) (*Ring, error) {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, points: make([]ringPoint, 0, len(uniq)*virtualNodes)}
	for _, p := range uniq {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer // deterministic on (absurdly unlikely) collisions
	})
	return r, nil
}

// Peers returns the ring membership, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Owners returns the first n distinct peers clockwise of key: the owner
// first, then its successors in ring order. Successors are the fallback
// owners for job migration — the peers that adopt a job when the owner
// dies. n is clamped to the peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// hash64 is FNV-1a; key distribution comes from the keys themselves
// (SHA-256 hex content addresses), so a fast non-cryptographic mix is
// plenty for placement.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
