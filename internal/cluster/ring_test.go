package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:3", "n1:1", "n2:2", "n1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%064d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owners differ across peer orderings: %s vs %s",
				i, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoversAllPeersReasonablyEvenly(t *testing.T) {
	peers := []string{"n1:1", "n2:2", "n3:3", "n4:4"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("%064d", i))]++
	}
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("peer %s owns nothing: %v", p, counts)
		}
		frac := float64(counts[p]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("peer %s owns %.0f%% of keys, want roughly 25%%: %v", p, 100*frac, counts)
		}
	}
}

// TestRingStableUnderMembership: a key owned by a surviving peer keeps
// its owner when the ring is REBUILT without an unrelated peer — the
// consistent-hashing property that bounds re-sharding churn.
func TestRingStableUnderMembership(t *testing.T) {
	full, err := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1:1", "n2:2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%064d", i)
		was := full.Owner(key)
		if was == "n3:3" {
			continue // its keys must move somewhere, by definition
		}
		if reduced.Owner(key) != was {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d keys of surviving peers moved when n3 left", moved, n)
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("NewRing with empty address succeeded")
	}
}

// TestRingOwners: the owner leads, successors are distinct, the list is
// deterministic, and n clamps to the membership size.
func TestRingOwners(t *testing.T) {
	r, err := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("job:%064d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners, want 2", i, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %d: Owners[0]=%s, Owner=%s", i, owners[0], r.Owner(key))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %d: duplicate successor %s", i, owners[0])
		}
		all := r.Owners(key, 99)
		if len(all) != 3 {
			t.Fatalf("key %d: Owners(99) returned %d peers, want 3", i, len(all))
		}
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(0) = %v, want nil", got)
	}
}
