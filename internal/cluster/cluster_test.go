package cluster

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/overload"
)

// testPeer starts an HTTP server on a real loopback port and returns
// its host:port address.
func testPeer(t *testing.T, h http.Handler) (string, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	u, err := net.ResolveTCPAddr("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return u.String(), srv
}

func TestForwardSetsLoopGuardAndReturnsBody(t *testing.T) {
	var gotHeader atomic.Value
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(ForwardedHeader))
		w.Write([]byte(`{"ok":true}`))
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Forward(context.Background(), addr, "/v1/evaluate", []byte(`{}`))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if string(out) != `{"ok":true}` {
		t.Fatalf("body = %q", out)
	}
	if gotHeader.Load() != "self:1" {
		t.Fatalf("loop-guard header = %q, want self:1", gotHeader.Load())
	}
	if st := c.Stats(); st.Forwards != 1 || st.ForwardErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForwardFailureMarksPeerDown(t *testing.T) {
	addr, srv := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // connection refused from now on
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Healthy(addr) {
		t.Fatal("peer should start healthy (optimistic)")
	}
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("Forward to dead peer succeeded")
	}
	if c.Healthy(addr) {
		t.Fatal("failed forward did not mark peer down")
	}
	// Down peer: subsequent forwards are refused without a dial.
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("forward to down peer: %v, want ErrPeerDown", err)
	}
}

func TestForwardNon200IsError(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("503 forward reported success")
	}
	if st := c.Stats(); st.ForwardErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A rejected request is not a dead peer.
	if !c.Healthy(addr) {
		t.Fatal("non-200 marked peer down")
	}
}

func TestFetchStoreHitMissAndError(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/store/cached":
			w.Write([]byte("blob"))
		default:
			http.NotFound(w, r)
		}
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.FetchStore(context.Background(), addr, "cached")
	if err != nil || string(out) != "blob" {
		t.Fatalf("FetchStore hit: %q, %v", out, err)
	}
	if _, err := c.FetchStore(context.Background(), addr, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("FetchStore miss: %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.StoreFetchHits != 1 || st.StoreFetchMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProbeLoopRecoversPeer(t *testing.T) {
	var up atomic.Bool
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && up.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	c, err := New(Options{
		Self: "self:1", Peers: []string{addr},
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second,
		MaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for c.Healthy(addr) != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer never became %s: %+v", what, c.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(false, "down") // healthz 503s
	up.Store(true)
	waitFor(true, "healthy again") // probe recovers it despite backoff
	if st := c.Stats(); st.Probes == 0 || st.ProbeFails == 0 {
		t.Fatalf("probe counters empty: %+v", st)
	}
}

func TestInjectedForwardAndFetchFaults(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm("cluster.forward=always;cluster.fetch=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("injected forward fault did not fire")
	}
	if _, err := c.FetchStore(context.Background(), addr, "h"); err == nil {
		t.Fatal("injected fetch fault did not fire")
	}
	// Injected failures exercise the fallback path without marking the
	// peer down — the fault is in the forwarding, not the peer.
	if !c.Healthy(addr) {
		t.Fatal("injected fault marked peer down")
	}
}

// TestForwardClampsToRemainingDeadline: a caller with 150 ms of budget
// left must never hold a forward for the 2-minute ceiling — the forward
// times out with the caller, and the peer is told the clamped budget
// via the deadline header.
func TestForwardClampsToRemainingDeadline(t *testing.T) {
	var gotBudget atomic.Int64
	release := make(chan struct{})
	defer close(release)
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64); err == nil {
			gotBudget.Store(ms)
		}
		select { // hold the forward until the caller's budget expires
		case <-release:
		case <-r.Context().Done():
		}
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}, ForwardTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := c.Forward(ctx, addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("forward outlived the caller's deadline")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("forward held for %v despite a 150ms budget", elapsed)
	}
	if b := gotBudget.Load(); b <= 0 || b > 150 {
		t.Fatalf("propagated budget = %dms, want in (0, 150]", b)
	}
}

// TestForwardRefusesExhaustedBudget: with (almost) no budget left the
// forward fails fast locally instead of spending a network round trip.
func TestForwardRefusesExhaustedBudget(t *testing.T) {
	var dialed atomic.Bool
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dialed.Store(true)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // budget now below minForwardBudget
	if _, err := c.Forward(ctx, addr, "/v1/evaluate", nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("forward with exhausted budget: %v, want ErrBudgetExhausted", err)
	}
	if _, err := c.ForwardGet(ctx, addr, "/v1/jobs/x"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("get with exhausted budget: %v, want ErrBudgetExhausted", err)
	}
	if dialed.Load() {
		t.Fatal("exhausted-budget forward reached the network")
	}
}

func TestOwnerIsStableAcrossNodes(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3"}
	views := make([]*Cluster, len(peers))
	for i, self := range peers {
		c, err := New(Options{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = c
	}
	for i := 0; i < 100; i++ {
		key := string(rune('a'+i%26)) + "0123456789abcdef0123456789abcdef"
		owner, _ := views[0].Owner(key)
		for _, v := range views[1:] {
			if got, _ := v.Owner(key); got != owner {
				t.Fatalf("key %q: %s vs %s", key, got, owner)
			}
		}
		self := 0
		for _, v := range views {
			if _, s := v.Owner(key); s {
				self++
			}
		}
		if self != 1 {
			t.Fatalf("key %q claimed by %d nodes", key, self)
		}
	}
}

// TestBreakerOpensAfterRepeatedServerErrors: a peer answering 5xx feeds
// its circuit breaker until it opens; from then on forwards are refused
// locally — no further requests reach the peer until OpenFor elapses.
func TestBreakerOpensAfterRepeatedServerErrors(t *testing.T) {
	var hits atomic.Int64
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr},
		Breaker: overload.BreakerConfig{MinSamples: 3, OpenFor: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
			t.Fatal("503 forward succeeded")
		}
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("peer hits before open = %d, want 3", got)
	}
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("forward after trip: %v, want ErrBreakerOpen", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("open breaker still reached the peer (%d hits)", got)
	}
	st := c.Stats()
	if st.BreakerRefusals == 0 {
		t.Fatalf("breaker refusals = 0: %+v", st)
	}
	if len(st.PeerHealth) != 1 || st.PeerHealth[0].Breaker != "open" || st.PeerHealth[0].BreakerTrips != 1 {
		t.Fatalf("peer health rows: %+v", st.PeerHealth)
	}
	// A 503 means the peer answered: breaker state is orthogonal to the
	// liveness prober, which only cares about transport reachability.
	if !c.Healthy(addr) {
		t.Fatal("5xx responses marked a reachable peer down")
	}
}

// TestInjectedBreakerFaultRefusesLocally is the acceptance criterion:
// with the overload.breaker fault armed, a forward to a perfectly
// healthy peer is refused locally with ErrBreakerOpen and zero network
// attempts — breaker transitions are reachable deterministically.
func TestInjectedBreakerFaultRefusesLocally(t *testing.T) {
	var dialed atomic.Bool
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dialed.Store(true)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm("overload.breaker=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("forward = %v, want ErrBreakerOpen", err)
	}
	if _, err := c.FetchStore(context.Background(), addr, "h"); !errors.Is(err, overload.ErrBreakerOpen) {
		t.Fatalf("fetch = %v, want ErrBreakerOpen", err)
	}
	if dialed.Load() {
		t.Fatal("open-breaker call reached the network")
	}
	if st := c.Stats(); len(st.PeerHealth) != 1 || st.PeerHealth[0].Breaker != "open" {
		t.Fatalf("peer health rows: %+v", st.PeerHealth)
	}
}

// TestForwardRetriesTransportError: a connection torn down mid-request
// (status 0, no HTTP response) is retried within the budget and the
// retry succeeds; a disabled retry budget surfaces the error instead.
func TestForwardRetriesTransportError(t *testing.T) {
	var calls atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			panic(http.ErrAbortHandler) // close the conn without a response
		}
		w.Write([]byte("ok"))
	})
	addr, _ := testPeer(t, handler)
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil)
	if err != nil {
		t.Fatalf("forward with one transport failure: %v", err)
	}
	if string(out) != "ok" {
		t.Fatalf("body = %q", out)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Forwards != 1 {
		t.Fatalf("retries = %d forwards = %d, want 1/1: %+v", st.Retries, st.Forwards, st)
	}

	// Same failure shape with retries disabled: the error surfaces and
	// the denial is counted.
	calls.Store(0)
	addr2, _ := testPeer(t, handler)
	c2, err := New(Options{Self: "self:1", Peers: []string{addr2}, RetryRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Forward(context.Background(), addr2, "/v1/evaluate", nil); err == nil {
		t.Fatal("forward succeeded without a retry budget")
	}
	if st := c2.Stats(); st.RetryBudgetDenied != 1 || st.Retries != 0 {
		t.Fatalf("denied = %d retries = %d, want 1/0", st.RetryBudgetDenied, st.Retries)
	}
}
