package cluster

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lcn3d/internal/faults"
)

// testPeer starts an HTTP server on a real loopback port and returns
// its host:port address.
func testPeer(t *testing.T, h http.Handler) (string, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	u, err := net.ResolveTCPAddr("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return u.String(), srv
}

func TestForwardSetsLoopGuardAndReturnsBody(t *testing.T) {
	var gotHeader atomic.Value
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(ForwardedHeader))
		w.Write([]byte(`{"ok":true}`))
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Forward(context.Background(), addr, "/v1/evaluate", []byte(`{}`))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if string(out) != `{"ok":true}` {
		t.Fatalf("body = %q", out)
	}
	if gotHeader.Load() != "self:1" {
		t.Fatalf("loop-guard header = %q, want self:1", gotHeader.Load())
	}
	if st := c.Stats(); st.Forwards != 1 || st.ForwardErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForwardFailureMarksPeerDown(t *testing.T) {
	addr, srv := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // connection refused from now on
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Healthy(addr) {
		t.Fatal("peer should start healthy (optimistic)")
	}
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("Forward to dead peer succeeded")
	}
	if c.Healthy(addr) {
		t.Fatal("failed forward did not mark peer down")
	}
	// Down peer: subsequent forwards are refused without a dial.
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("forward to down peer: %v, want ErrPeerDown", err)
	}
}

func TestForwardNon200IsError(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("503 forward reported success")
	}
	if st := c.Stats(); st.ForwardErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A rejected request is not a dead peer.
	if !c.Healthy(addr) {
		t.Fatal("non-200 marked peer down")
	}
}

func TestFetchStoreHitMissAndError(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/store/cached":
			w.Write([]byte("blob"))
		default:
			http.NotFound(w, r)
		}
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.FetchStore(context.Background(), addr, "cached")
	if err != nil || string(out) != "blob" {
		t.Fatalf("FetchStore hit: %q, %v", out, err)
	}
	if _, err := c.FetchStore(context.Background(), addr, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("FetchStore miss: %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.StoreFetchHits != 1 || st.StoreFetchMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProbeLoopRecoversPeer(t *testing.T) {
	var up atomic.Bool
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && up.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	c, err := New(Options{
		Self: "self:1", Peers: []string{addr},
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: time.Second,
		MaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for c.Healthy(addr) != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer never became %s: %+v", what, c.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(false, "down") // healthz 503s
	up.Store(true)
	waitFor(true, "healthy again") // probe recovers it despite backoff
	if st := c.Stats(); st.Probes == 0 || st.ProbeFails == 0 {
		t.Fatalf("probe counters empty: %+v", st)
	}
}

func TestInjectedForwardAndFetchFaults(t *testing.T) {
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm("cluster.forward=always;cluster.fetch=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	if _, err := c.Forward(context.Background(), addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("injected forward fault did not fire")
	}
	if _, err := c.FetchStore(context.Background(), addr, "h"); err == nil {
		t.Fatal("injected fetch fault did not fire")
	}
	// Injected failures exercise the fallback path without marking the
	// peer down — the fault is in the forwarding, not the peer.
	if !c.Healthy(addr) {
		t.Fatal("injected fault marked peer down")
	}
}

// TestForwardClampsToRemainingDeadline: a caller with 150 ms of budget
// left must never hold a forward for the 2-minute ceiling — the forward
// times out with the caller, and the peer is told the clamped budget
// via the deadline header.
func TestForwardClampsToRemainingDeadline(t *testing.T) {
	var gotBudget atomic.Int64
	release := make(chan struct{})
	defer close(release)
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64); err == nil {
			gotBudget.Store(ms)
		}
		select { // hold the forward until the caller's budget expires
		case <-release:
		case <-r.Context().Done():
		}
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}, ForwardTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := c.Forward(ctx, addr, "/v1/evaluate", nil); err == nil {
		t.Fatal("forward outlived the caller's deadline")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("forward held for %v despite a 150ms budget", elapsed)
	}
	if b := gotBudget.Load(); b <= 0 || b > 150 {
		t.Fatalf("propagated budget = %dms, want in (0, 150]", b)
	}
}

// TestForwardRefusesExhaustedBudget: with (almost) no budget left the
// forward fails fast locally instead of spending a network round trip.
func TestForwardRefusesExhaustedBudget(t *testing.T) {
	var dialed atomic.Bool
	addr, _ := testPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dialed.Store(true)
	}))
	c, err := New(Options{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // budget now below minForwardBudget
	if _, err := c.Forward(ctx, addr, "/v1/evaluate", nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("forward with exhausted budget: %v, want ErrBudgetExhausted", err)
	}
	if _, err := c.ForwardGet(ctx, addr, "/v1/jobs/x"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("get with exhausted budget: %v, want ErrBudgetExhausted", err)
	}
	if dialed.Load() {
		t.Fatal("exhausted-budget forward reached the network")
	}
}

func TestOwnerIsStableAcrossNodes(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3"}
	views := make([]*Cluster, len(peers))
	for i, self := range peers {
		c, err := New(Options{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = c
	}
	for i := 0; i < 100; i++ {
		key := string(rune('a'+i%26)) + "0123456789abcdef0123456789abcdef"
		owner, _ := views[0].Owner(key)
		for _, v := range views[1:] {
			if got, _ := v.Owner(key); got != owner {
				t.Fatalf("key %q: %s vs %s", key, got, owner)
			}
		}
		self := 0
		for _, v := range views {
			if _, s := v.Owner(key); s {
				self++
			}
		}
		if self != 1 {
			t.Fatalf("key %q claimed by %d nodes", key, self)
		}
	}
}
