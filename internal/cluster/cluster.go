// Package cluster shards the lcn-serve fleet: a consistent-hash ring
// over a static peer list assigns every content-addressed cache key an
// owning node, requests are forwarded single-hop to the owner (an
// X-LCN-Forwarded header is the loop guard — a forwarded request is
// never forwarded again), and a per-peer health prober with timeout and
// exponential backoff keeps dead peers out of the forwarding path so
// the service can fall back to local compute. The internal
// /v1/store/{hash} fetch path lets any node serve any hash straight
// out of a peer's store without re-running the solver.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/overload"
)

// ForwardedHeader is the loop-guard header: set to the forwarding
// node's address on every forwarded request, so the receiver computes
// locally instead of forwarding again (single-hop).
const ForwardedHeader = "X-LCN-Forwarded"

// DeadlineHeader carries the caller's remaining deadline budget, in
// integer milliseconds, on forwarded requests. The receiving node
// applies it to the request context so work on the peer never outlives
// the budget of the client that asked for it.
const DeadlineHeader = "X-LCN-Deadline"

// minForwardBudget is the smallest remaining budget worth spending a
// network round trip on; below it a forward fails fast locally.
const minForwardBudget = 5 * time.Millisecond

// ErrBudgetExhausted reports a forward refused locally because the
// caller's remaining deadline budget is too small to be worth a
// network attempt.
var ErrBudgetExhausted = errors.New("cluster: remaining deadline budget exhausted")

// ErrNotFound reports a peer store fetch that answered 404.
var ErrNotFound = errors.New("cluster: hash not in peer store")

// ErrPeerDown reports a peer currently marked unhealthy.
var ErrPeerDown = errors.New("cluster: peer marked down")

// maxForwardRetries bounds the extra attempts one Forward/FetchStore
// makes after its first failure; each also costs a retry-budget token.
const maxForwardRetries = 2

// retryBackoffBase and retryBackoffCeil bound the jittered exponential
// delay between retry attempts.
const (
	retryBackoffBase = 25 * time.Millisecond
	retryBackoffCeil = 250 * time.Millisecond
)

// Options configures a Cluster.
type Options struct {
	// Self is this node's own address as it appears in Peers.
	Self string
	// Peers is the full static fleet membership, self included
	// (self is added if absent).
	Peers []string
	// VirtualNodes per peer on the ring (0 = 64).
	VirtualNodes int
	// ProbeInterval spaces health probes per healthy peer (0 = 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = 1s).
	ProbeTimeout time.Duration
	// MaxBackoff caps the exponential probe backoff for down peers
	// (0 = 30s).
	MaxBackoff time.Duration
	// ForwardTimeout bounds one forwarded request (0 = 2m; forwarded
	// evaluations run a full solve on the owner).
	ForwardTimeout time.Duration
	// Breaker configures the per-peer circuit breaker (zero value =
	// overload package defaults).
	Breaker overload.BreakerConfig
	// RetryRatio is the retry-budget earn rate per successful peer call
	// (0 = 0.1 token per success; negative disables retries entirely).
	RetryRatio float64
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = defaultVirtualNodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Minute
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// peerState tracks one peer's health. Peers start healthy (optimistic:
// the first real forward finds out) and are marked down either by a
// failed probe or passively by a failed forward.
type peerState struct {
	mu        sync.Mutex
	healthy   bool
	fails     int
	nextProbe time.Time
}

// PeerHealth is one peer's health row for /v1/metrics: liveness from
// the prober, plus the circuit-breaker view of the forwarding path.
type PeerHealth struct {
	Peer             string `json:"peer"`
	Healthy          bool   `json:"healthy"`
	Breaker          string `json:"breaker"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	NextProbeUnixMS  int64  `json:"next_probe_unix_ms"`
	BreakerTrips     int64  `json:"breaker_trips"`
}

// Stats snapshots the cluster counters for /v1/metrics.
type Stats struct {
	Self         string       `json:"self"`
	Peers        []string     `json:"peers"`
	HealthyPeers int          `json:"healthy_peers"`
	PeerHealth   []PeerHealth `json:"peer_health,omitempty"`

	Forwards      int64 `json:"forwards"`       // requests answered by the owning peer
	ForwardErrors int64 `json:"forward_errors"` // forward attempts that failed

	StoreFetches     int64 `json:"store_fetches"` // /v1/store/{hash} fetch attempts
	StoreFetchHits   int64 `json:"store_fetch_hits"`
	StoreFetchMisses int64 `json:"store_fetch_misses"`
	StoreFetchErrors int64 `json:"store_fetch_errors"`

	Probes     int64 `json:"probes"`
	ProbeFails int64 `json:"probe_fails"`

	StorePushes     int64 `json:"store_pushes"` // job-state replication PUTs
	StorePushErrors int64 `json:"store_push_errors"`

	Retries           int64                         `json:"retries"`             // extra peer-call attempts
	RetryBudgetDenied int64                         `json:"retry_budget_denied"` // retries refused by the budget
	BreakerRefusals   int64                         `json:"breaker_refusals"`    // calls refused locally by an open breaker
	RetryBudget       *overload.RetryBudgetSnapshot `json:"retry_budget,omitempty"`
}

// Cluster is one node's view of the fleet.
type Cluster struct {
	opt      Options
	self     string
	ring     *Ring
	others   []string // peers minus self
	states   map[string]*peerState
	breakers map[string]*overload.Breaker
	retry    *overload.RetryBudget
	client   *http.Client

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	ctrForwards, ctrForwardErrs                            atomic.Int64
	ctrFetches, ctrFetchHits, ctrFetchMisses, ctrFetchErrs atomic.Int64
	ctrProbes, ctrProbeFails                               atomic.Int64
	ctrPushes, ctrPushErrs                                 atomic.Int64
	ctrRetries, ctrRetryDenied, ctrBreakerRefusals         atomic.Int64
}

// New builds a cluster view. The ring covers Peers ∪ {Self}; probing
// does not start until Start.
func New(opt Options) (*Cluster, error) {
	opt = opt.withDefaults()
	if opt.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	peers := append([]string{opt.Self}, opt.Peers...)
	ring, err := NewRing(peers, opt.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opt:      opt,
		self:     opt.Self,
		ring:     ring,
		states:   make(map[string]*peerState),
		breakers: make(map[string]*overload.Breaker),
		retry:    overload.NewRetryBudget(opt.RetryRatio, 0),
		client:   opt.Client,
		done:     make(chan struct{}),
	}
	for _, p := range ring.Peers() {
		if p != c.self {
			c.others = append(c.others, p)
			c.states[p] = &peerState{healthy: true}
			c.breakers[p] = overload.NewBreaker(opt.Breaker)
		}
	}
	return c, nil
}

// Self returns this node's address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the full membership, sorted.
func (c *Cluster) Peers() []string { return c.ring.Peers() }

// Owner returns the peer owning key and whether that peer is this node.
func (c *Cluster) Owner(key string) (peer string, self bool) {
	p := c.ring.Owner(key)
	return p, p == c.self
}

// Owners returns the first n distinct peers clockwise of key (the owner
// followed by its fallback successors).
func (c *Cluster) Owners(key string, n int) []string {
	return c.ring.Owners(key, n)
}

// ReplicaTarget returns the first ring successor of key that is not
// this node — where this node replicates the key's job state so a
// fallback peer can adopt the job if this node dies. ok is false in a
// single-node fleet.
func (c *Cluster) ReplicaTarget(key string) (peer string, ok bool) {
	for _, p := range c.ring.Owners(key, len(c.ring.Peers())) {
		if p != c.self {
			return p, true
		}
	}
	return "", false
}

// Healthy reports whether peer is currently believed up. Unknown peers
// (not in the ring) are unhealthy.
func (c *Cluster) Healthy(peer string) bool {
	st, ok := c.states[peer]
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.healthy
}

// MarkDown records a passive failure observation for peer (e.g. a
// failed forward), scheduling the prober to re-check with backoff.
func (c *Cluster) MarkDown(peer string) {
	st, ok := c.states[peer]
	if !ok {
		return
	}
	st.mu.Lock()
	st.healthy = false
	st.fails++
	st.nextProbe = time.Now().Add(c.backoff(st.fails))
	st.mu.Unlock()
}

// breakerAllow asks peer's circuit breaker for permission to make one
// network attempt. The overload.breaker fault point trips the breaker
// first, so open-breaker behaviour is reachable deterministically.
func (c *Cluster) breakerAllow(peer string) error {
	b, ok := c.breakers[peer]
	if !ok {
		return nil
	}
	if faults.Fire(faults.OverloadBreaker) {
		b.Trip()
	}
	if err := b.Allow(); err != nil {
		c.ctrBreakerRefusals.Add(1)
		return fmt.Errorf("cluster: %s: %w", peer, err)
	}
	return nil
}

// breakerRecord feeds one attempt outcome to peer's breaker.
func (c *Cluster) breakerRecord(peer string, ok bool) {
	if b := c.breakers[peer]; b != nil {
		b.Record(ok)
	}
}

// retrySleep waits out one jittered backoff delay, bailing early if the
// caller's context dies or its remaining budget could not cover another
// network attempt after the sleep.
func (c *Cluster) retrySleep(ctx context.Context, attempt int) error {
	delay := c.retry.Backoff(attempt, retryBackoffBase, retryBackoffCeil)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay+minForwardBudget {
		return ErrBudgetExhausted
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Cluster) backoff(fails int) time.Duration {
	d := c.opt.ProbeInterval
	for i := 1; i < fails && d < c.opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opt.MaxBackoff {
		d = c.opt.MaxBackoff
	}
	return d
}

// Start launches the health-probe loop; Stop (or ctx cancellation)
// ends it.
func (c *Cluster) Start(ctx context.Context) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// The tick is fine-grained relative to ProbeInterval so backoff
		// deadlines are honored promptly without per-peer timers.
		step := c.opt.ProbeInterval / 4
		if step < 50*time.Millisecond {
			step = 50 * time.Millisecond
		}
		tick := time.NewTicker(step)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				c.probeDue()
			}
		}
	}()
}

// Stop ends probing. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// probeDue probes every peer whose next-probe deadline has passed, in
// parallel (a hung peer must not delay probes of the others).
func (c *Cluster) probeDue() {
	now := time.Now()
	var wg sync.WaitGroup
	for _, peer := range c.others {
		st := c.states[peer]
		st.mu.Lock()
		due := !st.nextProbe.After(now)
		if due {
			st.nextProbe = now.Add(c.opt.ProbeInterval) // re-set on completion for down peers
		}
		st.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(peer string, st *peerState) {
			defer wg.Done()
			err := c.probe(peer)
			st.mu.Lock()
			defer st.mu.Unlock()
			if err != nil {
				c.ctrProbeFails.Add(1)
				st.healthy = false
				st.fails++
				st.nextProbe = time.Now().Add(c.backoff(st.fails))
				return
			}
			st.healthy = true
			st.fails = 0
			st.nextProbe = time.Now().Add(c.opt.ProbeInterval)
		}(peer, st)
	}
	wg.Wait()
}

func (c *Cluster) probe(peer string) error {
	c.ctrProbes.Add(1)
	if faults.Fire(faults.ClusterProbe) {
		return errors.New("cluster: injected probe fault")
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// forwardBudget resolves the timeout of one outbound peer call: the
// configured ceiling clamped to the caller's remaining context budget,
// so a 5 s request can never hold a 2-minute forward. The returned
// duration is also what DeadlineHeader advertises to the peer.
func (c *Cluster) forwardBudget(ctx context.Context, ceiling time.Duration) (time.Duration, error) {
	budget := ceiling
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	if budget < minForwardBudget {
		return 0, ErrBudgetExhausted
	}
	return budget, nil
}

// Forward sends one API request body to the owning peer and returns the
// peer's response bytes. The loop-guard header makes the receiver
// compute locally; the deadline header propagates the caller's
// remaining budget (the forward's timeout is the configured ceiling
// clamped to that budget). The peer's circuit breaker is consulted
// before any network attempt — a forward to an open breaker is refused
// locally without dialing. Transport-level failures mark the peer down
// and are retried with jittered backoff while the retry budget and the
// remaining deadline allow; peer-returned statuses are not retried (the
// peer is alive; the caller falls back to local compute).
func (c *Cluster) Forward(ctx context.Context, peer, endpoint string, body []byte) ([]byte, error) {
	if !c.Healthy(peer) {
		c.ctrForwardErrs.Add(1)
		return nil, ErrPeerDown
	}
	if faults.Fire(faults.ClusterForward) {
		c.ctrForwardErrs.Add(1)
		return nil, errors.New("cluster: injected forward fault")
	}
	if _, err := c.forwardBudget(ctx, c.opt.ForwardTimeout); err != nil {
		// Deadline-starved before any network attempt: not the peer's
		// fault, so the breaker never hears about it.
		c.ctrForwardErrs.Add(1)
		return nil, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breakerAllow(peer); err != nil {
			c.ctrForwardErrs.Add(1)
			return nil, err
		}
		out, status, err := c.forwardOnce(ctx, peer, endpoint, body)
		// Failure, for the breaker, means the peer looks sick: transport
		// errors, 5xx, or 429 shedding. Budget exhaustion and other 4xx
		// are this node's (or the request's) problem, not the peer's.
		c.breakerRecord(peer, err == nil || errors.Is(err, ErrBudgetExhausted) ||
			(status >= 400 && status < 500 && status != http.StatusTooManyRequests))
		if err == nil {
			c.retry.Earn()
			c.ctrForwards.Add(1)
			return out, nil
		}
		c.ctrForwardErrs.Add(1)
		lastErr = err
		// Only transport-level failures (status 0) are worth retrying,
		// and only while the budget holds.
		if status != 0 || errors.Is(err, ErrBudgetExhausted) || attempt >= maxForwardRetries {
			return nil, lastErr
		}
		if !c.retry.Spend() {
			c.ctrRetryDenied.Add(1)
			return nil, lastErr
		}
		if err := c.retrySleep(ctx, attempt); err != nil {
			return nil, lastErr
		}
		c.ctrRetries.Add(1)
	}
}

// forwardOnce makes one network attempt. status is 0 for failures that
// never got an HTTP response (budget exhausted, dial/transport errors —
// these mark the peer down); otherwise it is the peer's status code.
func (c *Cluster) forwardOnce(ctx context.Context, peer, endpoint string, body []byte) ([]byte, int, error) {
	budget, err := c.forwardBudget(ctx, c.opt.ForwardTimeout)
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	req.Header.Set(DeadlineHeader, strconv.FormatInt(budget.Milliseconds(), 10))
	resp, err := c.client.Do(req)
	if err != nil {
		c.MarkDown(peer)
		return nil, 0, fmt.Errorf("cluster: forward to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("cluster: forward to %s: read: %w", peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		// The peer is alive but rejected the work (overload, drain, its
		// own fault plan): fall back to local compute rather than
		// propagating a peer-internal status to the client.
		return nil, resp.StatusCode, fmt.Errorf("cluster: forward to %s: status %d: %s", peer, resp.StatusCode, truncate(out, 200))
	}
	return out, resp.StatusCode, nil
}

// FetchStore asks peer for the raw result blob of hash via the internal
// /v1/store/{hash} path. ErrNotFound reports a clean 404 (a responsive
// peer — the breaker counts it a success and it is never retried).
// Transport failures mark the peer down and are retried within the
// shared retry budget.
func (c *Cluster) FetchStore(ctx context.Context, peer, hash string) ([]byte, error) {
	c.ctrFetches.Add(1)
	if !c.Healthy(peer) {
		c.ctrFetchErrs.Add(1)
		return nil, ErrPeerDown
	}
	if faults.Fire(faults.ClusterFetch) {
		c.ctrFetchErrs.Add(1)
		return nil, errors.New("cluster: injected fetch fault")
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breakerAllow(peer); err != nil {
			c.ctrFetchErrs.Add(1)
			return nil, err
		}
		out, status, err := c.fetchOnce(ctx, peer, hash)
		c.breakerRecord(peer, err == nil || errors.Is(err, ErrNotFound) ||
			(status >= 400 && status < 500 && status != http.StatusTooManyRequests))
		if err == nil {
			c.retry.Earn()
			c.ctrFetchHits.Add(1)
			return out, nil
		}
		if errors.Is(err, ErrNotFound) {
			c.ctrFetchMisses.Add(1)
			return nil, err
		}
		c.ctrFetchErrs.Add(1)
		lastErr = err
		if status != 0 || attempt >= maxForwardRetries {
			return nil, lastErr
		}
		if !c.retry.Spend() {
			c.ctrRetryDenied.Add(1)
			return nil, lastErr
		}
		if err := c.retrySleep(ctx, attempt); err != nil {
			return nil, lastErr
		}
		c.ctrRetries.Add(1)
	}
}

// fetchOnce makes one store-fetch attempt; status 0 means no HTTP
// response arrived (transport failure — marks the peer down).
func (c *Cluster) fetchOnce(ctx context.Context, peer, hash string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opt.ProbeTimeout*4)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/store/"+hash, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.MarkDown(peer)
		return nil, 0, fmt.Errorf("cluster: fetch %s from %s: %w", hash, peer, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		out, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
		if err != nil {
			return nil, resp.StatusCode, err
		}
		return out, resp.StatusCode, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, resp.StatusCode, ErrNotFound
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, resp.StatusCode, fmt.Errorf("cluster: fetch from %s: status %d", peer, resp.StatusCode)
	}
}

// PushStore writes one blob into peer's store via PUT /v1/store/{key}
// (job-state replication). Best-effort: a failure marks the peer down
// and is reported, but callers treat replication as advisory.
func (c *Cluster) PushStore(ctx context.Context, peer, key string, val []byte) error {
	c.ctrPushes.Add(1)
	if !c.Healthy(peer) {
		c.ctrPushErrs.Add(1)
		return ErrPeerDown
	}
	ctx, cancel := context.WithTimeout(ctx, c.opt.ProbeTimeout*4)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, "http://"+peer+"/v1/store/"+key, bytes.NewReader(val))
	if err != nil {
		c.ctrPushErrs.Add(1)
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.ctrPushErrs.Add(1)
		c.MarkDown(peer)
		return fmt.Errorf("cluster: push %s to %s: %w", key, peer, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		c.ctrPushErrs.Add(1)
		return fmt.Errorf("cluster: push to %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// ForwardGet proxies one GET (e.g. /v1/jobs/{id}) to peer and returns
// the response bytes. ErrNotFound reports a clean 404; other non-200
// statuses are errors. A transport failure marks the peer down.
func (c *Cluster) ForwardGet(ctx context.Context, peer, path string) ([]byte, error) {
	if !c.Healthy(peer) {
		return nil, ErrPeerDown
	}
	budget, err := c.forwardBudget(ctx, c.opt.ForwardTimeout)
	if err != nil {
		return nil, err
	}
	if err := c.breakerAllow(peer); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	req.Header.Set(DeadlineHeader, strconv.FormatInt(budget.Milliseconds(), 10))
	resp, err := c.client.Do(req)
	if err != nil {
		c.MarkDown(peer)
		c.breakerRecord(peer, false)
		return nil, fmt.Errorf("cluster: get %s from %s: %w", path, peer, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		c.breakerRecord(peer, false)
		return nil, err
	}
	// Any HTTP response except 5xx/429 means the peer is responsive.
	c.breakerRecord(peer, resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests)
	switch resp.StatusCode {
	case http.StatusOK:
		return out, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("cluster: get %s from %s: status %d", path, peer, resp.StatusCode)
	}
}

// Stats snapshots the counters and health view.
func (c *Cluster) Stats() Stats {
	healthy := 0
	var rows []PeerHealth
	for _, p := range c.others {
		st := c.states[p]
		st.mu.Lock()
		row := PeerHealth{
			Peer:             p,
			Healthy:          st.healthy,
			ConsecutiveFails: st.fails,
		}
		if !st.nextProbe.IsZero() {
			row.NextProbeUnixMS = st.nextProbe.UnixMilli()
		}
		st.mu.Unlock()
		if row.Healthy {
			healthy++
		}
		if b := c.breakers[p]; b != nil {
			bs := b.Snapshot()
			row.Breaker = bs.State
			row.BreakerTrips = bs.Trips
		}
		rows = append(rows, row)
	}
	rb := c.retry.Snapshot()
	return Stats{
		Self:              c.self,
		Peers:             c.ring.Peers(),
		HealthyPeers:      healthy,
		PeerHealth:        rows,
		Forwards:          c.ctrForwards.Load(),
		ForwardErrors:     c.ctrForwardErrs.Load(),
		StoreFetches:      c.ctrFetches.Load(),
		StoreFetchHits:    c.ctrFetchHits.Load(),
		StoreFetchMisses:  c.ctrFetchMisses.Load(),
		StoreFetchErrors:  c.ctrFetchErrs.Load(),
		Probes:            c.ctrProbes.Load(),
		ProbeFails:        c.ctrProbeFails.Load(),
		StorePushes:       c.ctrPushes.Load(),
		StorePushErrors:   c.ctrPushErrs.Load(),
		Retries:           c.ctrRetries.Load(),
		RetryBudgetDenied: c.ctrRetryDenied.Load(),
		BreakerRefusals:   c.ctrBreakerRefusals.Load(),
		RetryBudget:       &rb,
	}
}

const maxForwardBody = 32 << 20

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
