package overload

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports a call refused locally because the target's
// circuit breaker is open — no network attempt was made.
var ErrBreakerOpen = errors.New("overload: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value gets defaults from
// NewBreaker.
type BreakerConfig struct {
	// Window is the failure-rate observation window; counts reset when
	// it rolls over (default 10s).
	Window time.Duration
	// MinSamples is the minimum observations within a window before the
	// failure ratio can trip the breaker (default 5).
	MinSamples int
	// FailureRatio trips the breaker when fails/(fails+successes)
	// reaches it with MinSamples observed (default 0.5).
	FailureRatio float64
	// OpenFor holds the breaker open before allowing half-open probes
	// (default 10s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent trial calls while half-open
	// (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 10 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// BreakerSnapshot is one breaker's state for /v1/metrics.
type BreakerSnapshot struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Trips            int64  `json:"trips"`
	// NextProbeUnixMS is when an open breaker will admit a half-open
	// probe (0 unless open).
	NextProbeUnixMS int64 `json:"next_probe_unix_ms,omitempty"`
}

// Breaker is a windowed failure-rate circuit breaker: closed → open
// when the failure ratio over the window reaches the threshold, open →
// half-open after the hold, and half-open → closed (probe succeeded) or
// back to open (probe failed). Allow gates calls; every allowed call
// must Record its outcome exactly once.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu          sync.Mutex
	state       BreakerState
	windowStart time.Time
	succ, fail  int
	consecFails int
	openedAt    time.Time
	probes      int // in-flight half-open trial calls
	trips       int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed. Open returns
// ErrBreakerOpen without any side effect; half-open admits up to
// HalfOpenProbes concurrent trials. A nil return obliges the caller to
// Record the call's outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = BreakerHalfOpen
		b.probes = 0
	}
	switch b.state {
	case BreakerOpen:
		return ErrBreakerOpen
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return ErrBreakerOpen
		}
		b.probes++
		return nil
	}
	if now.Sub(b.windowStart) > b.cfg.Window {
		b.windowStart, b.succ, b.fail = now, 0, 0
	}
	return nil
}

// Record feeds one allowed call's outcome into the state machine.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consecFails = 0
	} else {
		b.consecFails++
	}
	if b.state == BreakerHalfOpen {
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.state = BreakerClosed
			b.windowStart, b.succ, b.fail = b.now(), 0, 0
		} else {
			b.tripLocked()
		}
		return
	}
	if b.state != BreakerClosed {
		return
	}
	if ok {
		b.succ++
		return
	}
	b.fail++
	total := b.succ + b.fail
	if total >= b.cfg.MinSamples && float64(b.fail)/float64(total) >= b.cfg.FailureRatio {
		b.tripLocked()
	}
}

// Trip forces the breaker open (the overload.breaker fault hook and
// tests). Idempotent while already open.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		b.tripLocked()
	}
}

func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
	b.succ, b.fail = 0, 0
}

// State returns the current position (rolling open → half-open if the
// hold has elapsed, so observers see what Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Snapshot reports the breaker for /v1/metrics.
func (b *Breaker) Snapshot() BreakerSnapshot {
	state := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		State:            state.String(),
		ConsecutiveFails: b.consecFails,
		Trips:            b.trips,
	}
	if b.state == BreakerOpen {
		s.NextProbeUnixMS = b.openedAt.Add(b.cfg.OpenFor).UnixMilli()
	}
	return s
}
