package overload

import (
	"math/rand"
	"sync"
	"time"
)

// RetryBudget is a token bucket tying retries to a fraction of normal
// traffic: every successful call earns Ratio tokens (capped at Max),
// and every retry spends one. Under a full outage the budget drains in
// Max retries and stays empty — retries stop amplifying the load —
// while isolated transient failures always have a token available.
type RetryBudget struct {
	mu            sync.Mutex
	tokens        float64
	max           float64
	ratio         float64
	rng           *rand.Rand
	spent, denied int64
}

// RetryBudgetSnapshot is the budget state for /v1/metrics.
type RetryBudgetSnapshot struct {
	Tokens float64 `json:"tokens"`
	Spent  int64   `json:"spent"`
	Denied int64   `json:"denied"`
}

// NewRetryBudget builds a budget earning ratio tokens per success with
// a bucket of max (defaults 0.1 and 10; a negative ratio disables
// retries — Spend always refuses). The bucket starts full so a cold
// process can retry immediately.
func NewRetryBudget(ratio, max float64) *RetryBudget {
	if max <= 0 {
		max = 10
	}
	b := &RetryBudget{ratio: ratio, max: max, rng: rand.New(rand.NewSource(1))}
	if ratio == 0 {
		b.ratio = 0.1
	}
	if b.ratio > 0 {
		b.tokens = max
	}
	return b
}

// Earn credits one successful call.
func (b *RetryBudget) Earn() {
	b.mu.Lock()
	if b.ratio > 0 && b.tokens < b.max {
		b.tokens += b.ratio
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.mu.Unlock()
}

// Spend takes one retry token, reporting whether the retry may proceed.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ratio <= 0 || b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Backoff returns the jittered exponential delay before retry attempt
// (0-based): uniform in (0, base<<attempt], capped at ceil — full
// jitter, so synchronized clients spread out instead of retrying in
// lockstep.
func (b *RetryBudget) Backoff(attempt int, base, ceil time.Duration) time.Duration {
	d := base << uint(attempt)
	if d <= 0 || d > ceil {
		d = ceil
	}
	b.mu.Lock()
	f := b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(f * float64(d))
}

// Snapshot reports the budget for /v1/metrics.
func (b *RetryBudget) Snapshot() RetryBudgetSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return RetryBudgetSnapshot{Tokens: b.tokens, Spent: b.spent, Denied: b.denied}
}
