package overload

import (
	"context"
	"time"

	"lcn3d/internal/faults"
)

// HedgeOutcome reports how a hedged call resolved.
type HedgeOutcome struct {
	// SecondaryWon is true when the secondary (hedge) arm produced the
	// returned value.
	SecondaryWon bool
	// SecondaryStarted is true when the hedge fired at all. On error the
	// caller must NOT re-run the secondary's work — it already ran.
	SecondaryStarted bool
	// PrimaryErr is the primary arm's failure, set only when it completed
	// with an error before the race resolved. It lets callers distinguish
	// a secondary win over a dead primary (a fallback) from a win over a
	// merely slow one (a latency hedge).
	PrimaryErr error
}

type hedgeResult struct {
	buf       []byte
	err       error
	secondary bool
}

// Hedge races primary against a delayed secondary: primary starts
// immediately; if it has not answered within delay (or it fails early),
// secondary launches, and the first success wins — the loser's context
// is cancelled. The overload.hedge fault point elides the delay so the
// race is deterministic in chaos runs. If both arms fail, the
// secondary's error is returned when it ran (it is the fallback the
// caller would have surfaced), else the primary's.
func Hedge(ctx context.Context, delay time.Duration, primary, secondary func(context.Context) ([]byte, error)) ([]byte, HedgeOutcome, error) {
	if faults.Fire(faults.OverloadHedge) {
		delay = 0
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan hedgeResult, 2)
	launch := func(fn func(context.Context) ([]byte, error), sec bool) {
		go func() {
			buf, err := fn(ctx)
			results <- hedgeResult{buf: buf, err: err, secondary: sec}
		}()
	}
	launch(primary, false)

	var out HedgeOutcome
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var secErr error
	priDone, secDone := false, false
	for {
		select {
		case <-ctx.Done():
			return nil, out, ctx.Err()
		case <-timer.C:
			if !out.SecondaryStarted {
				out.SecondaryStarted = true
				launch(secondary, true)
			}
		case r := <-results:
			if r.err == nil {
				out.SecondaryWon = r.secondary
				return r.buf, out, nil
			}
			if r.secondary {
				secDone, secErr = true, r.err
			} else {
				priDone = true
				out.PrimaryErr = r.err
				if !out.SecondaryStarted {
					// The primary failed before the hedge fired: launch the
					// secondary immediately instead of waiting out the delay.
					out.SecondaryStarted = true
					launch(secondary, true)
				}
			}
			if priDone && secDone {
				// Both arms failed; the secondary's error is the one the
				// non-hedged fallback path would have surfaced.
				return nil, out, secErr
			}
		}
	}
}
