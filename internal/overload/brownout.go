package overload

import (
	"sync"
	"time"

	"lcn3d/internal/faults"
)

// Level is a brownout ladder rung. Each rung keeps every degradation
// of the rungs below it active.
type Level int

const (
	// LevelHealthy serves normally.
	LevelHealthy Level = iota
	// LevelStale serves from the local tiers only: the peer read tier is
	// skipped, so no request waits on a fleet round trip.
	LevelStale
	// LevelDowngrade substitutes the cheap 2RM model for new 4RM
	// computations; responses are flagged Degraded and never cached
	// under the full-fidelity key.
	LevelDowngrade
	// LevelPause additionally pauses background store fills and sheds
	// new job admissions.
	LevelPause
)

func (l Level) String() string {
	switch l {
	case LevelHealthy:
		return "healthy"
	case LevelStale:
		return "stale-serve"
	case LevelDowngrade:
		return "downgrade"
	case LevelPause:
		return "pause"
	}
	return "unknown"
}

// BrownoutConfig tunes the ladder. The zero value gets defaults from
// NewBrownout.
type BrownoutConfig struct {
	// EscalateAfter is the consecutive over-pressure observations that
	// climb one rung (default 3).
	EscalateAfter int
	// DeescalateAfter is the consecutive calm observations that step
	// down one rung (default 8).
	DeescalateAfter int
	// Hold is the minimum dwell at a rung before de-escalating, so the
	// ladder does not flap around the pressure threshold (default 3s).
	Hold time.Duration
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 3
	}
	if c.DeescalateAfter <= 0 {
		c.DeescalateAfter = 8
	}
	if c.Hold <= 0 {
		c.Hold = 3 * time.Second
	}
	return c
}

// BrownoutSnapshot is the ladder state for /v1/metrics.
type BrownoutSnapshot struct {
	Level       int     `json:"level"`
	LevelName   string  `json:"level_name"`
	Transitions int64   `json:"transitions"`
	OverStreak  int     `json:"over_streak"`
	CalmStreak  int     `json:"calm_streak"`
	AtLevelSec  float64 `json:"at_level_sec"`
}

// Brownout is the degradation ladder: it observes one pressure sample
// per completed request, climbs a rung after EscalateAfter consecutive
// over-pressure samples, and steps down after DeescalateAfter calm
// samples once the Hold dwell has passed. The overload.pressure fault
// point forces samples over, so every rung is reachable
// deterministically.
type Brownout struct {
	cfg BrownoutConfig
	now func() time.Time

	mu          sync.Mutex
	level       Level
	overStreak  int
	calmStreak  int
	lastChange  time.Time
	transitions int64
}

// NewBrownout builds a healthy ladder.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	b := &Brownout{cfg: cfg.withDefaults(), now: time.Now}
	b.lastChange = b.now()
	return b
}

// Observe feeds one pressure sample and returns the (possibly updated)
// level. Escalation needs only the streak — shedding load promptly
// matters more than stability; de-escalation additionally waits out the
// Hold dwell.
func (b *Brownout) Observe(over bool) Level {
	if faults.Fire(faults.OverloadPressure) {
		over = true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if over {
		b.overStreak++
		b.calmStreak = 0
		if b.overStreak >= b.cfg.EscalateAfter && b.level < LevelPause {
			b.level++
			b.transitions++
			b.lastChange = b.now()
			b.overStreak = 0
		}
		return b.level
	}
	b.calmStreak++
	b.overStreak = 0
	if b.calmStreak >= b.cfg.DeescalateAfter && b.level > LevelHealthy &&
		b.now().Sub(b.lastChange) >= b.cfg.Hold {
		b.level--
		b.transitions++
		b.lastChange = b.now()
		b.calmStreak = 0
	}
	return b.level
}

// Level returns the current rung.
func (b *Brownout) Level() Level {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

// Snapshot reports the ladder for /v1/metrics.
func (b *Brownout) Snapshot() BrownoutSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrownoutSnapshot{
		Level:       int(b.level),
		LevelName:   b.level.String(),
		Transitions: b.transitions,
		OverStreak:  b.overStreak,
		CalmStreak:  b.calmStreak,
		AtLevelSec:  b.now().Sub(b.lastChange).Seconds(),
	}
}
