package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcn3d/internal/faults"
)

// fakeClock steps time manually so AIMD/breaker/brownout transitions
// are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionAdmitsUpToLimitAndQueues(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 2, MaxQueue: 8})
	ctx := context.Background()
	r1, err := a.Acquire(ctx, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(ctx, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	// Third caller queues; releasing one slot grants it.
	granted := make(chan struct{})
	go func() {
		r3, err := a.Acquire(ctx, Batch)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		} else {
			r3(time.Millisecond)
		}
		close(granted)
	}()
	waitSnapshot(t, a, func(s AdmissionSnapshot) bool { return s.Waiting == 1 })
	r1(time.Millisecond)
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never granted")
	}
	r2(time.Millisecond)
	s := a.Snapshot()
	if s.InFlight != 0 || s.Waiting != 0 {
		t.Fatalf("not drained: %+v", s)
	}
	if got := s.Interactive.Admitted + s.Batch.Admitted; got != 3 {
		t.Fatalf("admitted = %d, want 3", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 1, MaxQueue: 1})
	ctx := context.Background()
	release, err := a.Acquire(ctx, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	defer release(time.Millisecond)
	// One waiter fills the queue.
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()
	go a.Acquire(qctx, Interactive) //nolint:errcheck
	waitSnapshot(t, a, func(s AdmissionSnapshot) bool { return s.Waiting == 1 })
	// The next arrival is shed with a Retry-After.
	_, err = a.Acquire(ctx, Batch)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if shed.Class != Batch || shed.RetryAfter < time.Second {
		t.Fatalf("shed = %+v", shed)
	}
	if s := a.Snapshot(); s.Batch.Shed != 1 || !a.Pressure() {
		t.Fatalf("snapshot after shed: %+v pressure=%v", s, a.Pressure())
	}
}

func TestAdmissionShedsExhaustedDeadline(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 1, MinDeadline: 50 * time.Millisecond})

	// An idle pool admits even a starved deadline: the compute itself
	// decides whether it can finish in time.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	release, err := a.Acquire(ctx, Interactive)
	if err != nil {
		t.Fatalf("idle pool refused a tiny deadline: %v", err)
	}

	// A saturated pool sheds it up front: queueing a request that cannot
	// survive the wait only manufactures a timeout.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	_, err = a.Acquire(ctx2, Interactive)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *ShedError (deadline below MinDeadline while saturated)", err)
	}
	release(time.Millisecond)
}

func TestAdmissionAbandonsExpiredWaiters(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 1})
	release, err := a.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, Interactive); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: %v, want DeadlineExceeded", err)
	}
	release(time.Millisecond)
	s := a.Snapshot()
	if s.Interactive.Abandoned != 1 || s.Waiting != 0 || s.InFlight != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
	// offered = admitted + shed + abandoned once idle.
	if s.Interactive.Offered != s.Interactive.Admitted+s.Interactive.Shed+s.Interactive.Abandoned {
		t.Fatalf("counters do not reconcile: %+v", s.Interactive)
	}
}

func TestAdmissionPrefersInteractiveWaiters(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 1, MaxQueue: 4})
	release, err := a.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue batch first, then interactive; the interactive waiter must
	// be granted first when the slot frees.
	done := make(chan Class, 2)
	go func() {
		r, err := a.Acquire(context.Background(), Batch)
		if err == nil {
			done <- Batch
			r(time.Millisecond)
		}
	}()
	waitSnapshot(t, a, func(s AdmissionSnapshot) bool { return s.Batch.Waiting == 1 })
	go func() {
		r, err := a.Acquire(context.Background(), Interactive)
		if err == nil {
			done <- Interactive
			r(time.Millisecond)
		}
	}()
	waitSnapshot(t, a, func(s AdmissionSnapshot) bool { return s.Interactive.Waiting == 1 })
	release(time.Millisecond)
	first := <-done
	second := <-done
	if first != Interactive || second != Batch {
		t.Fatalf("grant order = %v, %v; want interactive first", first, second)
	}
}

func TestAdmissionAIMD(t *testing.T) {
	clk := newClock()
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 10, LatencyTarget: 100 * time.Millisecond})
	a.now = clk.now
	slot := func(lat time.Duration) {
		r, err := a.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Fatal(err)
		}
		r(lat)
	}
	// Over-target completions cut the limit multiplicatively, at most
	// once per target interval.
	slot(time.Second)
	if got := a.Snapshot().Limit; got >= 10 {
		t.Fatalf("limit after slow completion = %v, want < 10", got)
	}
	l1 := a.Snapshot().Limit
	slot(time.Second) // same interval: no second cut
	if got := a.Snapshot().Limit; got != l1 {
		t.Fatalf("limit cut twice in one interval: %v -> %v", l1, got)
	}
	clk.advance(time.Second)
	slot(time.Second)
	if got := a.Snapshot().Limit; got >= l1 {
		t.Fatalf("limit not cut after interval: %v", got)
	}
	// Fast completions walk it back up, clamped at the max.
	for i := 0; i < 200; i++ {
		slot(time.Millisecond)
	}
	if got := a.Snapshot().Limit; got != 10 {
		t.Fatalf("limit after recovery = %v, want 10", got)
	}
}

func TestAdmissionShedFault(t *testing.T) {
	if err := faults.Arm("overload.shed=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 4})
	_, err := a.Acquire(context.Background(), Interactive)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want injected *ShedError", err)
	}
}

func waitSnapshot(t *testing.T, a *Admission, ok func(AdmissionSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok(a.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatalf("condition never reached: %+v", a.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newClock()
	b := NewBreaker(BreakerConfig{Window: 10 * time.Second, MinSamples: 4, FailureRatio: 0.5, OpenFor: 5 * time.Second})
	b.now = clk.now
	// Below MinSamples nothing trips.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before MinSamples", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false) // 4 fails / 4 samples >= 0.5: trips
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
	// After the hold: half-open admits one probe, refuses the second.
	clk.advance(5 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open allowed a second concurrent probe: %v", err)
	}
	// Probe failure re-opens; probe success closes.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	if s := b.Snapshot(); s.Trips != 2 {
		t.Fatalf("trips = %d, want 2", s.Trips)
	}
}

func TestBreakerTripForcesOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.Trip()
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped breaker allowed a call: %v", err)
	}
	if s := b.Snapshot(); s.State != "open" || s.Trips != 1 || s.NextProbeUnixMS == 0 {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestRetryBudgetDrainsAndEarns(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if !b.Spend() || !b.Spend() {
		t.Fatal("full bucket refused a retry")
	}
	if b.Spend() {
		t.Fatal("empty bucket allowed a retry")
	}
	b.Earn()
	b.Earn() // 2 * 0.5 = 1 token
	if !b.Spend() {
		t.Fatal("earned token refused")
	}
	s := b.Snapshot()
	if s.Spent != 3 || s.Denied != 1 {
		t.Fatalf("snapshot: %+v", s)
	}
	off := NewRetryBudget(-1, 4)
	if off.Spend() {
		t.Fatal("disabled budget allowed a retry")
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	b := NewRetryBudget(0.1, 10)
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Backoff(attempt, 10*time.Millisecond, 200*time.Millisecond)
		if d < 0 || d > 200*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v out of bounds", attempt, d)
		}
	}
}

func TestHedgePrimaryWinsWithoutHedge(t *testing.T) {
	var secondaries atomic.Int64
	buf, out, err := Hedge(context.Background(), time.Second,
		func(context.Context) ([]byte, error) { return []byte("peer"), nil },
		func(context.Context) ([]byte, error) { secondaries.Add(1); return []byte("local"), nil })
	if err != nil || string(buf) != "peer" || out.SecondaryStarted || out.SecondaryWon {
		t.Fatalf("buf=%q out=%+v err=%v", buf, out, err)
	}
	if secondaries.Load() != 0 {
		t.Fatal("secondary ran despite a fast primary")
	}
}

func TestHedgeSecondaryWinsOverSlowPrimary(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	buf, out, err := Hedge(context.Background(), 5*time.Millisecond,
		func(ctx context.Context) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, errors.New("slow peer")
		},
		func(context.Context) ([]byte, error) { return []byte("local"), nil })
	if err != nil || string(buf) != "local" || !out.SecondaryStarted || !out.SecondaryWon {
		t.Fatalf("buf=%q out=%+v err=%v", buf, out, err)
	}
}

func TestHedgeLaunchesSecondaryOnEarlyPrimaryFailure(t *testing.T) {
	t0 := time.Now()
	buf, out, err := Hedge(context.Background(), 10*time.Second,
		func(context.Context) ([]byte, error) { return nil, errors.New("refused") },
		func(context.Context) ([]byte, error) { return []byte("local"), nil })
	if err != nil || string(buf) != "local" || !out.SecondaryStarted {
		t.Fatalf("buf=%q out=%+v err=%v", buf, out, err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("hedge waited out the delay despite an early primary failure")
	}
}

func TestHedgeBothFailReturnsSecondaryError(t *testing.T) {
	secErr := errors.New("local compute failed")
	_, out, err := Hedge(context.Background(), time.Millisecond,
		func(context.Context) ([]byte, error) { return nil, errors.New("peer failed") },
		func(context.Context) ([]byte, error) { return nil, secErr })
	if !errors.Is(err, secErr) || !out.SecondaryStarted {
		t.Fatalf("out=%+v err=%v, want secondary error", out, err)
	}
}

func TestHedgeFaultElidesDelay(t *testing.T) {
	if err := faults.Arm("overload.hedge=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	block := make(chan struct{})
	defer close(block)
	t0 := time.Now()
	buf, out, err := Hedge(context.Background(), time.Hour,
		func(ctx context.Context) ([]byte, error) { <-ctx.Done(); return nil, ctx.Err() },
		func(context.Context) ([]byte, error) { return []byte("local"), nil })
	if err != nil || string(buf) != "local" || !out.SecondaryWon {
		t.Fatalf("buf=%q out=%+v err=%v", buf, out, err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("hedge fault did not elide the delay")
	}
}

func TestBrownoutLadderDeterministic(t *testing.T) {
	clk := newClock()
	b := NewBrownout(BrownoutConfig{EscalateAfter: 3, DeescalateAfter: 2, Hold: time.Second})
	b.now = clk.now
	b.lastChange = clk.now()
	// 3 over-pressure samples per rung, all the way to pause.
	for want := LevelStale; want <= LevelPause; want++ {
		for i := 0; i < 3; i++ {
			b.Observe(true)
		}
		if got := b.Level(); got != want {
			t.Fatalf("level = %v, want %v", got, want)
		}
	}
	// Still pause: the ladder is clamped.
	for i := 0; i < 6; i++ {
		b.Observe(true)
	}
	if b.Level() != LevelPause {
		t.Fatalf("level above pause: %v", b.Level())
	}
	// Calm samples inside the hold do not de-escalate...
	b.Observe(false)
	b.Observe(false)
	if b.Level() != LevelPause {
		t.Fatalf("de-escalated inside hold: %v", b.Level())
	}
	// ...after the hold they do, one rung per streak.
	for want := LevelDowngrade; want >= LevelHealthy; want-- {
		clk.advance(time.Second)
		b.Observe(false)
		b.Observe(false)
		if got := b.Level(); got != want {
			t.Fatalf("level = %v, want %v", got, want)
		}
	}
	if s := b.Snapshot(); s.Transitions != 6 || s.LevelName != "healthy" {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestBrownoutPressureFault(t *testing.T) {
	if err := faults.Arm("overload.pressure=first:6"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	b := NewBrownout(BrownoutConfig{EscalateAfter: 3, DeescalateAfter: 2, Hold: time.Nanosecond})
	// Calm observations are forced over by the fault: 6 samples climb
	// exactly two rungs, then the plan exhausts and calm resumes.
	for i := 0; i < 6; i++ {
		b.Observe(false)
	}
	if b.Level() != LevelDowngrade {
		t.Fatalf("level = %v, want downgrade after 6 injected samples", b.Level())
	}
	for i := 0; i < 4; i++ {
		time.Sleep(time.Millisecond)
		b.Observe(false)
	}
	if b.Level() != LevelHealthy {
		t.Fatalf("level = %v, want healthy after calm", b.Level())
	}
}
