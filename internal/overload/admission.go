// Package overload is the admission-control and degradation layer of
// the serving path: an adaptive-concurrency admission controller with
// priority classes and early shedding, per-peer circuit breakers, a
// token-bucket retry budget, hedged reads, and a brownout ladder that
// trades result fidelity for availability under sustained pressure.
//
// The pieces are deliberately independent — each is a small state
// machine with its own snapshot — and the service composes them:
// admission gates the worker pool, breakers and the retry budget gate
// peer traffic, the hedge races a peer read against local compute, and
// the brownout level selects which degradations are active. Every
// transition is observable via snapshots (served under /v1/metrics) and
// reachable deterministically through the overload.* points of
// internal/faults.
package overload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"lcn3d/internal/faults"
)

// Class is a request priority class. Interactive work (simulate,
// evaluate — a human or a tight loop is waiting) is admitted ahead of
// batch work (optimize, job submission) whenever slots are scarce.
type Class int

const (
	Interactive Class = iota
	Batch
	numClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ShedError reports a request rejected by admission control (or by the
// brownout ladder's job-admission pause). The HTTP layer maps it to
// 429 with a Retry-After header.
type ShedError struct {
	Class      Class
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: %s request shed, retry after %v", e.Class, e.RetryAfter)
}

// AdmissionConfig tunes the Admission controller. The zero value gets
// usable defaults from NewAdmission.
type AdmissionConfig struct {
	// MaxConcurrency is the hard concurrency cap — the worker pool size.
	MaxConcurrency int
	// MinConcurrency is the AIMD floor (default 1).
	MinConcurrency int
	// LatencyTarget is the AIMD reference: completions slower than this
	// multiplicatively decrease the concurrency limit, faster ones
	// additively increase it. 0 disables adaptation (the limit stays
	// pinned at MaxConcurrency).
	LatencyTarget time.Duration
	// MaxQueue bounds waiters across both classes; an arrival beyond it
	// is shed immediately (default 4*MaxConcurrency).
	MaxQueue int
	// MinDeadline sheds arrivals whose remaining context budget is
	// already below this — queueing them only manufactures timeouts
	// (default 5ms).
	MinDeadline time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 1
	}
	if c.MinConcurrency <= 0 {
		c.MinConcurrency = 1
	}
	if c.MinConcurrency > c.MaxConcurrency {
		c.MinConcurrency = c.MaxConcurrency
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrency
	}
	if c.MinDeadline <= 0 {
		c.MinDeadline = 5 * time.Millisecond
	}
	return c
}

type waiter struct {
	class Class
	ch    chan struct{} // closed on grant, under mu
}

// classCounters are one class's lifetime admission outcomes. They
// reconcile exactly: offered = admitted + shed + abandoned + waiting.
type classCounters struct {
	offered, admitted, shed, abandoned int64
}

// ClassSnapshot is one class's admission counters for /v1/metrics.
type ClassSnapshot struct {
	Offered   int64 `json:"offered"`
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Abandoned int64 `json:"abandoned"` // context expired while queued
	Waiting   int   `json:"waiting"`
}

// AdmissionSnapshot is the controller state for /v1/metrics.
type AdmissionSnapshot struct {
	Limit          float64       `json:"limit"` // current AIMD concurrency limit
	MaxConcurrency int           `json:"max_concurrency"`
	InFlight       int           `json:"in_flight"`
	Waiting        int           `json:"waiting"`
	Interactive    ClassSnapshot `json:"interactive"`
	Batch          ClassSnapshot `json:"batch"`
}

// Admission is a bounded, deadline-aware admission queue with priority
// classes in front of a worker pool, plus an AIMD adaptive concurrency
// limit: each completion's latency is compared against LatencyTarget,
// additively raising the limit when under it and multiplicatively
// cutting it (at most once per target interval) when over, clamped to
// [MinConcurrency, MaxConcurrency]. Requests beyond the limit queue —
// interactive ahead of batch — and arrivals beyond the queue bound or
// without enough remaining deadline are shed with a *ShedError carrying
// a Retry-After estimate.
type Admission struct {
	cfg AdmissionConfig
	now func() time.Time

	mu           sync.Mutex
	limit        float64
	inFlight     int
	queues       [numClasses][]*waiter // FIFO per class
	waiting      int
	lastDecrease time.Time
	lastShed     time.Time
	counters     [numClasses]classCounters
}

// NewAdmission builds a controller; the limit starts at MaxConcurrency
// (optimistic — real latencies walk it down).
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	return &Admission{
		cfg:   cfg,
		now:   time.Now,
		limit: float64(cfg.MaxConcurrency),
	}
}

// deadliner is the subset of context.Context Acquire needs; taking the
// interface keeps the hot path free of context plumbing in tests.
type deadliner interface {
	Deadline() (time.Time, bool)
	Done() <-chan struct{}
	Err() error
}

// Acquire admits one request of class, blocking in the class queue when
// the pool is saturated. On success it returns a release function that
// MUST be called exactly once with the observed latency (which feeds
// the AIMD limit). Failures are *ShedError (queue full, deadline too
// small to survive queueing, or injected overload.shed fault) or the
// context's error if it expired while queued.
func (a *Admission) Acquire(ctx deadliner, class Class) (release func(latency time.Duration), err error) {
	a.mu.Lock()
	a.counters[class].offered++
	if faults.Fire(faults.OverloadShed) {
		return nil, a.shedLocked(class)
	}
	if a.inFlight < a.limitNow() && a.waiting == 0 {
		a.inFlight++
		a.counters[class].admitted++
		a.mu.Unlock()
		return a.release, nil
	}
	// The pool is saturated, so this request would queue: shed it up
	// front when its remaining budget cannot survive even a short wait —
	// queueing it only manufactures a timeout. An idle pool admits tiny
	// deadlines (the compute itself decides whether it can finish).
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < a.cfg.MinDeadline {
		return nil, a.shedLocked(class)
	}
	if a.waiting >= a.cfg.MaxQueue {
		return nil, a.shedLocked(class)
	}
	w := &waiter{class: class, ch: make(chan struct{})}
	a.queues[class] = append(a.queues[class], w)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-w.ch:
		// Granted: the granter already moved us to inFlight.
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.removeLocked(w) {
			a.counters[class].abandoned++
			a.mu.Unlock()
			return nil, ctx.Err()
		}
		// The grant raced the expiry: we own a slot nobody will use.
		a.counters[class].admitted-- // net it out as abandoned, not admitted
		a.counters[class].abandoned++
		a.inFlight--
		a.wakeLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// shedLocked records one shed and builds its error. Callers hold mu;
// it unlocks.
func (a *Admission) shedLocked(class Class) error {
	a.counters[class].shed++
	a.lastShed = a.now()
	retry := a.retryAfterLocked()
	a.mu.Unlock()
	return &ShedError{Class: class, RetryAfter: retry}
}

// retryAfterLocked estimates how long the backlog needs to clear:
// roughly one target interval per queued-requests-per-slot, clamped to
// [1s, 30s].
func (a *Admission) retryAfterLocked() time.Duration {
	per := a.cfg.LatencyTarget
	if per <= 0 {
		per = time.Second
	}
	d := time.Duration(1+a.waiting/a.limitNow()) * per
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func (a *Admission) limitNow() int {
	n := int(a.limit)
	if n < 1 {
		n = 1
	}
	return n
}

// release returns one slot, feeds the AIMD limit, and wakes queued
// waiters that now fit under it.
func (a *Admission) release(latency time.Duration) {
	a.mu.Lock()
	a.inFlight--
	a.observeLocked(latency)
	a.wakeLocked()
	a.mu.Unlock()
}

// observeLocked is the AIMD step. The multiplicative decrease is
// rate-limited to once per target interval so one burst of slow
// completions cuts the limit once, not once per completion.
func (a *Admission) observeLocked(latency time.Duration) {
	if a.cfg.LatencyTarget <= 0 || latency <= 0 {
		return
	}
	if latency > a.cfg.LatencyTarget {
		if now := a.now(); now.Sub(a.lastDecrease) >= a.cfg.LatencyTarget {
			a.limit = math.Max(float64(a.cfg.MinConcurrency), a.limit*0.9)
			a.lastDecrease = now
		}
		return
	}
	a.limit = math.Min(float64(a.cfg.MaxConcurrency), a.limit+1/math.Max(1, a.limit))
}

// wakeLocked grants freed slots to waiters, interactive queue first.
func (a *Admission) wakeLocked() {
	for a.inFlight < a.limitNow() {
		var w *waiter
		for class := Interactive; class < numClasses; class++ {
			if q := a.queues[class]; len(q) > 0 {
				w = q[0]
				a.queues[class] = q[1:]
				break
			}
		}
		if w == nil {
			return
		}
		a.waiting--
		a.inFlight++
		a.counters[w.class].admitted++
		close(w.ch)
	}
}

// removeLocked unlinks a still-queued waiter; false means it was
// already granted.
func (a *Admission) removeLocked(w *waiter) bool {
	q := a.queues[w.class]
	for i, v := range q {
		if v == w {
			a.queues[w.class] = append(q[:i:i], q[i+1:]...)
			a.waiting--
			return true
		}
	}
	return false
}

// Pressure reports whether the controller is currently saturated:
// requests are queued, or something was shed within the last target
// interval. The brownout ladder samples this per completed request.
func (a *Admission) Pressure() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	window := a.cfg.LatencyTarget
	if window <= 0 {
		window = time.Second
	}
	return a.waiting > 0 || (!a.lastShed.IsZero() && a.now().Sub(a.lastShed) < window)
}

// Snapshot returns the controller state for /v1/metrics.
func (a *Admission) Snapshot() AdmissionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := func(c Class) ClassSnapshot {
		return ClassSnapshot{
			Offered:   a.counters[c].offered,
			Admitted:  a.counters[c].admitted,
			Shed:      a.counters[c].shed,
			Abandoned: a.counters[c].abandoned,
			Waiting:   len(a.queues[c]),
		}
	}
	return AdmissionSnapshot{
		Limit:          a.limit,
		MaxConcurrency: a.cfg.MaxConcurrency,
		InFlight:       a.inFlight,
		Waiting:        a.waiting,
		Interactive:    cs(Interactive),
		Batch:          cs(Batch),
	}
}
