package overload

import "time"

// DefaultHedgeAfter is the peer-read hedge delay when none is
// configured: long enough that a healthy peer answers first, short
// enough that a sick one costs little extra latency.
const DefaultHedgeAfter = 250 * time.Millisecond

// Options bundles the service-side overload knobs (the cluster holds
// its own breaker and retry-budget configuration).
type Options struct {
	Admission AdmissionConfig
	// HedgeAfter is the delay before a peer read is hedged with local
	// compute (0 = DefaultHedgeAfter; negative disables hedging).
	HedgeAfter time.Duration
	Brownout   BrownoutConfig
}
