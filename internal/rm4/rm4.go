// Package rm4 implements the 4-register-model thermal simulator of paper
// Section 2.2: thermal cells coincide with basic cells in every layer, so
// the model follows the microchannel geometry exactly. It is the accuracy
// reference used for final evaluation (and the last SA stage), at the
// cost of a much larger linear system than the 2RM model.
package rm4

import (
	"fmt"
	"sync"

	"lcn3d/internal/flow"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/sparse"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
	"lcn3d/internal/units"
)

// Model is a 4RM simulator bound to a stack and one cooling network per
// channel layer.
type Model struct {
	Stk    *stack.Stack
	Nets   []*network.Network // one per channel layer, bottom to top
	Scheme thermal.Scheme

	geom     flow.Geometry
	refFlows []*flow.Solution // flow solutions at P_sys = 1 Pa
	chOfIdx  map[int]int      // layer index -> channel ordinal

	// The factored thermal system is assembled once at the reference
	// pressure and reused across all Simulate probes (pattern, conduction
	// block, warm starts, preconditioner).
	factOnce sync.Once
	fact     *thermal.Factored
	caps     []float64
	factErr  error
}

// New validates the inputs and pre-solves the (pressure-independent) flow
// distribution of every channel layer at a reference pressure.
func New(stk *stack.Stack, nets []*network.Network, scheme thermal.Scheme) (*Model, error) {
	if err := stk.Validate(); err != nil {
		return nil, err
	}
	ch := stk.ChannelLayers()
	if len(nets) != len(ch) {
		return nil, fmt.Errorf("rm4: %d networks for %d channel layers", len(nets), len(ch))
	}
	m := &Model{Stk: stk, Nets: nets, Scheme: scheme, chOfIdx: make(map[int]int)}
	for k, li := range ch {
		m.chOfIdx[li] = k
	}
	m.geom = flow.Geometry{
		Pitch:        stk.Pitch,
		ChannelWidth: stk.ChannelWidth,
		Coolant:      stk.Coolant,
	}
	for k, li := range ch {
		n := nets[k]
		if n.Dims != stk.Dims {
			return nil, fmt.Errorf("rm4: network %d dims %v != stack dims %v", k, n.Dims, stk.Dims)
		}
		if errs := n.Check(); len(errs) > 0 {
			return nil, fmt.Errorf("rm4: network %d illegal: %v", k, errs[0])
		}
		g := m.geom
		g.ChannelHeight = stk.Layers[li].Thickness
		ref, err := flow.Solve(n, g, 1)
		if err != nil {
			return nil, fmt.Errorf("rm4: channel layer %d: %w", k, err)
		}
		m.refFlows = append(m.refFlows, ref)
	}
	return m, nil
}

// Name implements thermal.Model.
func (m *Model) Name() string { return "4RM" }

// node returns the unknown index of cell i in layer l.
func (m *Model) node(l, i int) int { return l*m.Stk.Dims.N() + i }

// NumNodes returns the size of the thermal system.
func (m *Model) NumNodes() int { return len(m.Stk.Layers) * m.Stk.Dims.N() }

// assembleRef builds the steady thermal system at the reference pressure
// of the flow solutions (P_sys = 1 Pa) and also returns the per-node heat
// capacities (J/K) used by the transient extension. Convection terms go
// through the assembler's flow group, so the compiled Factored system
// reproduces any positive pressure by linear scaling.
func (m *Model) assembleRef() (*thermal.Assembler, []float64, error) {
	stk := m.Stk
	d := stk.Dims
	n := d.N()
	asm := thermal.NewAssembler(m.NumNodes(), m.Scheme)
	caps := make([]float64, m.NumNodes())
	pitch := stk.Pitch

	var qsysTotal float64
	for _, ref := range m.refFlows {
		qsysTotal += ref.Qsys
	}
	if qsysTotal <= 0 && stk.TotalPower() > 0 {
		return nil, nil, fmt.Errorf("rm4: network admits no coolant flow")
	}

	for l, layer := range stk.Layers {
		t := layer.Thickness
		kSolid := layer.Mat.K
		isCh := layer.Kind == stack.Channel
		var net *network.Network
		var fs *flow.Solution
		if isCh {
			k := m.chOfIdx[l]
			net = m.Nets[k]
			fs = m.refFlows[k]
		}
		liquid := func(i int) bool { return isCh && net.Liquid[i] }
		// Film coefficient per liquid cell; width modulation (GreenCool
		// baselines) changes the duct aspect ratio and thus h_conv.
		hconvAt := func(i int) float64 {
			x, y := d.Coord(i)
			return units.HeatTransferCoeff(stk.Coolant, net.WidthAt(x, y, stk.ChannelWidth), t)
		}
		// Top/bottom wetted fraction: a channel narrower than the cell
		// pitch touches the layers above/below over w x pitch only.
		wetFracAt := func(i int) float64 {
			x, y := d.Coord(i)
			return net.WidthAt(x, y, stk.ChannelWidth) / stk.Pitch
		}

		// Heat capacities.
		vol := pitch * pitch * t
		for i := 0; i < n; i++ {
			if liquid(i) {
				caps[m.node(l, i)] = stk.Coolant.Cv * vol
			} else {
				caps[m.node(l, i)] = layer.Mat.Cv * vol
			}
		}

		// Lateral conduction within the layer (stamp east/north once).
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				i := d.Index(x, y)
				for _, nb := range [2][2]int{{x + 1, y}, {x, y + 1}} {
					if !d.In(nb[0], nb[1]) {
						continue
					}
					j := d.Index(nb[0], nb[1])
					var g float64
					li, lj := liquid(i), liquid(j)
					switch {
					case !li && !lj:
						// Solid-solid (Eq. (4)): g = k*A/l with A = t*pitch,
						// l = pitch.
						g = kSolid * t
					case li && lj:
						// Liquid-liquid conduction (convection handled from
						// the flow field below).
						g = stk.Coolant.K * t
					default:
						// Solid-liquid through the side wall (Eq. (5)):
						// half-cell solid conduction in series with the
						// convective film on the side wall area t*pitch.
						liqIdx := i
						if !li {
							liqIdx = j
						}
						g = units.SeriesG(hconvAt(liqIdx)*t*pitch, 2*kSolid*t)
					}
					asm.Conductance(m.node(l, i), m.node(l, j), g)
				}
			}
		}

		// Vertical conduction to the layer above.
		if l+1 < len(stk.Layers) {
			up := stk.Layers[l+1]
			upCh := up.Kind == stack.Channel
			var upNet *network.Network
			if upCh {
				upNet = m.Nets[m.chOfIdx[l+1]]
			}
			area := pitch * pitch
			for i := 0; i < n; i++ {
				var gLo, gHi float64
				if liquid(i) {
					gLo = hconvAt(i) * area * wetFracAt(i)
				} else {
					gLo = 2 * kSolid * area / t
				}
				if upCh && upNet.Liquid[i] {
					x, y := d.Coord(i)
					upW := upNet.WidthAt(x, y, stk.ChannelWidth)
					gHi = units.HeatTransferCoeff(stk.Coolant, upW, up.Thickness) * area * (upW / stk.Pitch)
				} else {
					gHi = 2 * up.Mat.K * area / up.Thickness
				}
				asm.Conductance(m.node(l, i), m.node(l+1, i), units.SeriesG(gLo, gHi))
			}
		}

		// Convective transport along the channels (Eq. (6)).
		if isCh {
			cv := stk.Coolant.Cv
			for y := 0; y < d.NY; y++ {
				for x := 0; x < d.NX; x++ {
					i := d.Index(x, y)
					if !fs.Active[i] {
						continue
					}
					if q := fs.QEast[i]; q > 0 {
						asm.Convection(m.node(l, i), m.node(l, d.Index(x+1, y)), cv*q)
					} else if q < 0 {
						asm.Convection(m.node(l, d.Index(x+1, y)), m.node(l, i), -cv*q)
					}
					if q := fs.QNorth[i]; q > 0 {
						asm.Convection(m.node(l, i), m.node(l, d.Index(x, y+1)), cv*q)
					} else if q < 0 {
						asm.Convection(m.node(l, d.Index(x, y+1)), m.node(l, i), -cv*q)
					}
					if q := fs.QIn[i]; q > 0 {
						asm.ConvectionInlet(m.node(l, i), cv*q, stk.TinK)
					}
					if q := fs.QOut[i]; q > 0 {
						asm.ConvectionOutlet(m.node(l, i), cv*q)
					}
				}
			}
		}

		// Heat sources.
		if layer.Kind == stack.Source {
			for i := 0; i < n; i++ {
				asm.Source(m.node(l, i), layer.Power.W[i])
			}
		}
	}
	m.setCoarseMap(asm)
	return asm, caps, nil
}

// mgCoarsen is the tile side (in basic cells) of the multigrid coarse
// space — the paper's 2RM coarsening factor, so the coarse grid of the
// 4RM solve is exactly the 2RM cell structure of the same stack.
const mgCoarsen = 4

// setCoarseMap hands the assembler the 2RM-structured aggregation for
// the two-level multigrid preconditioner: per layer and m×m tile one
// solid aggregate, plus one liquid aggregate in channel layers (the
// solid/liquid split is what makes the coarse operator see the
// convective transport separately from conduction, like 2RM does).
func (m *Model) setCoarseMap(asm *thermal.Assembler) {
	d := m.Stk.Dims
	til, err := grid.NewTiling(d, mgCoarsen)
	if err != nil {
		return
	}
	n := d.N()
	ncc := til.Coarse.N()
	agg := make([]int, m.NumNodes())
	next := 0
	solidID := make([]int, ncc)
	liquidID := make([]int, ncc)
	for l, layer := range m.Stk.Layers {
		isCh := layer.Kind == stack.Channel
		var net *network.Network
		if isCh {
			net = m.Nets[m.chOfIdx[l]]
		}
		for c := 0; c < ncc; c++ {
			solidID[c], liquidID[c] = -1, -1
		}
		for i := 0; i < n; i++ {
			x, y := d.Coord(i)
			cx, cy := til.CoarseOf(x, y)
			c := til.Coarse.Index(cx, cy)
			if isCh && net.Liquid[i] {
				if liquidID[c] < 0 {
					liquidID[c] = next
					next++
				}
				agg[m.node(l, i)] = liquidID[c]
			} else {
				if solidID[c] < 0 {
					solidID[c] = next
					next++
				}
				agg[m.node(l, i)] = solidID[c]
			}
		}
	}
	asm.SetCoarseMap(agg, next)
}

// factored lazily compiles the reference-pressure system.
func (m *Model) factored() (*thermal.Factored, error) {
	m.factOnce.Do(func() {
		asm, caps, err := m.assembleRef()
		if err != nil {
			m.factErr = err
			return
		}
		m.fact = asm.Factor()
		m.caps = caps
	})
	return m.fact, m.factErr
}

// FactorStats exposes the amortization counters of the model's factored
// system (zero-valued before the first Simulate).
func (m *Model) FactorStats() thermal.FactorStats {
	if m.fact == nil {
		return thermal.FactorStats{}
	}
	return m.fact.Stats()
}

// checkFlow rejects pressures at which the powered stack has no coolant
// throughput (no steady state exists under adiabatic boundaries).
func (m *Model) checkFlow(psys float64) error {
	var qsysTotal float64
	for _, ref := range m.refFlows {
		qsysTotal += ref.Qsys * psys
	}
	if qsysTotal <= 0 && m.Stk.TotalPower() > 0 {
		return fmt.Errorf("rm4: no coolant flow at P_sys=%g Pa; steady state does not exist under adiabatic boundaries", psys)
	}
	return nil
}

// Simulate implements thermal.Model. The thermal system is assembled once
// per model at the reference pressure; each probe rescales the convection
// block in place and warm-starts the solve (see thermal.Factored).
func (m *Model) Simulate(psys float64) (*thermal.Outcome, error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	temps, res, probe, err := fact.SolveAt(psys, m.Stk.TinK)
	if err != nil {
		return nil, err
	}
	out := m.outcome(psys, temps, res.Iterations)
	out.Probe = probe
	return out, nil
}

func (m *Model) outcome(psys float64, temps []float64, iters int) *thermal.Outcome {
	d := m.Stk.Dims
	n := d.N()
	out := &thermal.Outcome{
		Psys:       psys,
		SourceDims: d,
		FineDims:   d,
		SolveIters: iters,
	}
	for _, l := range m.Stk.SourceLayers() {
		field := make([]float64, n)
		copy(field, temps[l*n:(l+1)*n])
		out.SourceTemps = append(out.SourceTemps, field)
	}
	out.FineTemps = out.SourceTemps
	out.Metrics = thermal.ComputeMetrics(out.SourceTemps)
	for _, ref := range m.refFlows {
		out.Qsys += ref.Qsys * psys
	}
	out.Wpump = psys * out.Qsys
	if out.Qsys > 0 {
		out.Rsys = psys / out.Qsys
	}
	return out
}

// EnergyBalance returns (coolant enthalpy rise, total die power) at the
// given pressure; the two agree to solver tolerance under the adiabatic
// boundaries (used by the property tests).
func (m *Model) EnergyBalance(psys float64) (carried, injected float64, err error) {
	if err := m.checkFlow(psys); err != nil {
		return 0, 0, err
	}
	fact, err := m.factored()
	if err != nil {
		return 0, 0, err
	}
	temps, _, _, err := fact.SolveAt(psys, m.Stk.TinK)
	if err != nil {
		return 0, 0, err
	}
	for k, li := range m.Stk.ChannelLayers() {
		ref := m.refFlows[k]
		for i, q := range ref.QOut {
			if qs := q * psys; qs > 0 {
				carried += m.Stk.Coolant.Cv * qs * (temps[m.node(li, i)] - m.Stk.TinK)
			}
		}
	}
	return carried, m.Stk.TotalPower(), nil
}

// Temperatures runs a steady simulation and returns the full temperature
// field (layer-major) for inspection and the transient extension.
func (m *Model) Temperatures(psys float64) ([]float64, error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	t, _, _, err := fact.SolveAt(psys, m.Stk.TinK)
	return t, err
}

// System exposes the assembled steady system and heat capacities for the
// transient extension: C dT/dt = b - A T.
func (m *Model) System(psys float64) (a *SystemMatrices, err error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	mat, rhs := fact.SystemAt(psys)
	caps := append([]float64(nil), m.caps...)
	return &SystemMatrices{A: mat, B: rhs, Cap: caps, Tin: m.Stk.TinK}, nil
}

// SystemMatrices bundles a thermal system for transient stepping
// (C dT/dt = B - A·T).
type SystemMatrices struct {
	A   *sparse.CSR // steady conductance matrix
	B   []float64   // constant RHS
	Cap []float64   // node heat capacities, J/K
	Tin float64
}

// LayerField extracts layer l's temperatures from a full field.
func (m *Model) LayerField(temps []float64, l int) []float64 {
	n := m.Stk.Dims.N()
	out := make([]float64, n)
	copy(out, temps[l*n:(l+1)*n])
	return out
}

var _ thermal.Model = (*Model)(nil)
