package rm4

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// At a fixed pressure the steady thermal system is linear in the heat
// sources, so temperature *rises* scale and superpose exactly. These
// property tests pin that structure down.

func stackWithMaps(t *testing.T, maps []*power.Map) *stack.Stack {
	t.Helper()
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6}, maps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTemperatureRiseLinearInPower(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		alpha := 0.25 + float64(alphaRaw%16)/4 // 0.25 .. 4
		pm := power.Hotspots(d21, seed, 2, 0.5, 1.0)
		pmScaled := pm.Clone()
		for i := range pmScaled.W {
			pmScaled.W[i] *= alpha
		}
		n := network.Straight(d21, grid.SideWest, 1)

		m1, err := New(stackWithMaps(t, []*power.Map{pm.Clone(), pm}), []*network.Network{n}, thermal.Central)
		if err != nil {
			return false
		}
		m2, err := New(stackWithMaps(t, []*power.Map{pmScaled.Clone(), pmScaled}), []*network.Network{n}, thermal.Central)
		if err != nil {
			return false
		}
		o1, err := m1.Simulate(8e3)
		if err != nil {
			return false
		}
		o2, err := m2.Simulate(8e3)
		if err != nil {
			return false
		}
		for i := range o1.SourceTemps[0] {
			r1 := o1.SourceTemps[0][i] - 300
			r2 := o2.SourceTemps[0][i] - 300
			if math.Abs(r2-alpha*r1) > 1e-4*(1+alpha*r1) {
				return false
			}
		}
		// Metrics scale too.
		return math.Abs(o2.DeltaT-alpha*o1.DeltaT) < 1e-4*(1+alpha*o1.DeltaT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperpositionOfSources(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pa := power.Hotspots(d21, rng.Int63(), 2, 0.6, 0.8)
	pb := power.Hotspots(d21, rng.Int63(), 3, 0.4, 1.2)
	pSum := pa.Clone()
	for i := range pSum.W {
		pSum.W[i] += pb.W[i]
	}
	n := network.Straight(d21, grid.SideWest, 1)
	sim := func(pm *power.Map) []float64 {
		m, err := New(stackWithMaps(t, []*power.Map{pm.Clone(), pm}), []*network.Network{n}, thermal.Central)
		if err != nil {
			t.Fatal(err)
		}
		o, err := m.Simulate(9e3)
		if err != nil {
			t.Fatal(err)
		}
		return o.SourceTemps[0]
	}
	ta, tb, ts := sim(pa), sim(pb), sim(pSum)
	for i := range ts {
		want := (ta[i] - 300) + (tb[i] - 300)
		got := ts[i] - 300
		if math.Abs(got-want) > 1e-4*(1+want) {
			t.Fatalf("superposition broken at %d: %g vs %g", i, got, want)
		}
	}
}

func TestSymmetryOfSymmetricProblem(t *testing.T) {
	// A north-south symmetric power map on a symmetric straight network
	// must give a north-south symmetric temperature field.
	pm := power.New(d21)
	pm.AddGaussian(10, 10, 3, 1.0) // centered
	pm.AddUniform(0.5)
	n := network.Straight(d21, grid.SideWest, 1)
	m, err := New(stackWithMaps(t, []*power.Map{pm.Clone(), pm}), []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	o, err := m.Simulate(7e3)
	if err != nil {
		t.Fatal(err)
	}
	f := o.SourceTemps[0]
	for y := 0; y < d21.NY/2; y++ {
		for x := 0; x < d21.NX; x++ {
			a := f[d21.Index(x, y)]
			b := f[d21.Index(x, d21.NY-1-y)]
			if math.Abs(a-b) > 1e-5*(1+math.Abs(a-300)) {
				t.Fatalf("asymmetry at (%d,%d): %g vs %g", x, y, a, b)
			}
		}
	}
}

func TestMetricsInvariantUnderNetworkMirror(t *testing.T) {
	// Mirroring both the network and the power map leaves ΔT and Tmax
	// unchanged.
	pm := power.Hotspots(d21, 77, 3, 0.6, 1.4)
	pmMir := power.New(d21)
	for y := 0; y < d21.NY; y++ {
		for x := 0; x < d21.NX; x++ {
			pmMir.Set(d21.NX-1-x, y, pm.At(x, y))
		}
	}
	tr, err := network.Tree(grid.Dims{NX: 21, NY: 21},
		network.UniformTreeSpec(grid.Dims{NX: 21, NY: 21}, 1, network.Branch2, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := New(stackWithMaps(t, []*power.Map{pm.Clone(), pm}), []*network.Network{tr}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(stackWithMaps(t, []*power.Map{pmMir.Clone(), pmMir}), []*network.Network{tr.MirrorX()}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := m1.Simulate(15e3)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m2.Simulate(15e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o1.Tmax-o2.Tmax) > 1e-5*(o1.Tmax-300) {
		t.Fatalf("Tmax not mirror invariant: %g vs %g", o1.Tmax, o2.Tmax)
	}
	if math.Abs(o1.DeltaT-o2.DeltaT) > 1e-5*(1+o1.DeltaT) {
		t.Fatalf("DeltaT not mirror invariant: %g vs %g", o1.DeltaT, o2.DeltaT)
	}
	if math.Abs(o1.Qsys-o2.Qsys) > 1e-9*o1.Qsys {
		t.Fatalf("Qsys not mirror invariant: %g vs %g", o1.Qsys, o2.Qsys)
	}
}
