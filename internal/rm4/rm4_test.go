package rm4

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func smallStack(t *testing.T, total float64, seed int64) *stack.Stack {
	t.Helper()
	pm := power.Hotspots(d21, seed, 2, 0.6, total)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm, power.Hotspots(d21, seed+1, 2, 0.6, total)})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func model(t *testing.T, s *stack.Stack, n *network.Network) *Model {
	t.Helper()
	m, err := New(s, []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSimulateBasics(t *testing.T) {
	s := smallStack(t, 1.0, 1)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	out, err := m.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SourceTemps) != 2 {
		t.Fatalf("want 2 source layers, got %d", len(out.SourceTemps))
	}
	if out.Tmax <= s.TinK {
		t.Fatalf("Tmax %g must exceed inlet %g", out.Tmax, s.TinK)
	}
	if out.DeltaT <= 0 {
		t.Fatalf("DeltaT %g must be positive for nonuniform power", out.DeltaT)
	}
	if out.Qsys <= 0 || out.Wpump <= 0 {
		t.Fatalf("flow missing: Qsys=%g Wpump=%g", out.Qsys, out.Wpump)
	}
	for _, f := range out.SourceTemps {
		for _, v := range f {
			if v < s.TinK-1e-6 {
				t.Fatalf("temperature %g below inlet; unphysical", v)
			}
			if math.IsNaN(v) {
				t.Fatal("NaN temperature")
			}
		}
	}
}

func TestEnergyBalance(t *testing.T) {
	s := smallStack(t, 2.0, 3)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	carried, injected, err := m.EnergyBalance(8e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-4*injected {
		t.Fatalf("energy balance violated: coolant carries %g W of %g W", carried, injected)
	}
}

func TestEnergyBalanceUpwind(t *testing.T) {
	s := smallStack(t, 2.0, 3)
	n := network.Straight(d21, grid.SideWest, 1)
	m, err := New(s, []*network.Network{n}, thermal.Upwind)
	if err != nil {
		t.Fatal(err)
	}
	carried, injected, err := m.EnergyBalance(8e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-4*injected {
		t.Fatalf("upwind energy balance violated: %g vs %g", carried, injected)
	}
}

func TestMorePressureLowersPeak(t *testing.T) {
	s := smallStack(t, 1.5, 5)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	lo, err := m.Simulate(3e3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.Simulate(30e3)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Tmax >= lo.Tmax {
		t.Fatalf("Tmax should fall with pressure: %g (30 kPa) vs %g (3 kPa)", hi.Tmax, lo.Tmax)
	}
}

func TestDownstreamHotterThanUpstream(t *testing.T) {
	// Uniform power, west-to-east flow: the east (downstream) end of the
	// source layer must be hotter than the west end.
	pm := power.New(d21)
	pm.AddUniform(1.0)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm.Clone(), pm})
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	out, err := m.Simulate(5e3)
	if err != nil {
		t.Fatal(err)
	}
	f := out.SourceTemps[0]
	west := f[d21.Index(1, 10)]
	east := f[d21.Index(19, 10)]
	if east <= west {
		t.Fatalf("downstream %g K should exceed upstream %g K", east, west)
	}
}

func TestCoolantRiseMatchesBulkFormula(t *testing.T) {
	// With uniform power the mean coolant outlet rise approximates
	// P_total/(Cv*Qsys); the source-layer mean rise must be at least that.
	pm := power.New(d21)
	pm.AddUniform(1.0)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm.Clone(), pm})
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	out, err := m.Simulate(5e3)
	if err != nil {
		t.Fatal(err)
	}
	bulkRise := s.TotalPower() / (s.Coolant.Cv * out.Qsys)
	meanRise := out.PerLayer[0].Mean - s.TinK
	if meanRise < 0.4*bulkRise {
		t.Fatalf("mean source rise %g K too small vs bulk coolant rise %g K", meanRise, bulkRise)
	}
}

func TestTreeNetworkSimulates(t *testing.T) {
	big := grid.Dims{NX: 31, NY: 31}
	pm := power.Hotspots(big, 4, 3, 0.6, 2.0)
	s, err := stack.NewDieStack(stack.Config{Dims: big, ChannelHeight: 200e-6},
		[]*power.Map{pm})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := network.Tree(big, network.UniformTreeSpec(big, 2, network.Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, []*network.Network{tr}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Simulate(20e3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tmax <= s.TinK || math.IsNaN(out.Tmax) {
		t.Fatalf("bad Tmax %g", out.Tmax)
	}
}

func TestThreeDieTwoChannelLayers(t *testing.T) {
	maps := []*power.Map{
		power.Hotspots(d21, 1, 2, 0.5, 0.7),
		power.Hotspots(d21, 2, 2, 0.5, 0.7),
		power.Hotspots(d21, 3, 2, 0.5, 0.7),
	}
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6}, maps)
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	m, err := New(s, []*network.Network{n, n.Clone()}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SourceTemps) != 3 {
		t.Fatalf("want 3 source layers, got %d", len(out.SourceTemps))
	}
	carried, injected, err := m.EnergyBalance(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-4*injected {
		t.Fatalf("3-die energy balance: %g vs %g", carried, injected)
	}
}

func TestZeroFlowErrors(t *testing.T) {
	s := smallStack(t, 1.0, 7)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	if _, err := m.Simulate(0); err == nil {
		t.Fatal("zero pressure with nonzero power should error (no steady state)")
	}
}

func TestNetworkCountMismatch(t *testing.T) {
	s := smallStack(t, 1.0, 8)
	if _, err := New(s, nil, thermal.Central); err == nil {
		t.Fatal("missing networks should be rejected")
	}
}

func TestIllegalNetworkRejected(t *testing.T) {
	s := smallStack(t, 1.0, 9)
	bad := network.New(d21) // no liquid, no ports
	if _, err := New(s, []*network.Network{bad}, thermal.Central); err == nil {
		t.Fatal("illegal network should be rejected")
	}
}

func TestCentralAndUpwindAgreeRoughly(t *testing.T) {
	s := smallStack(t, 1.0, 11)
	n := network.Straight(d21, grid.SideWest, 1)
	mc := model(t, s, n)
	mu, err := New(s, []*network.Network{n}, thermal.Upwind)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := mc.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	ou, err := mu.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	riseC := oc.Tmax - s.TinK
	riseU := ou.Tmax - s.TinK
	if math.Abs(riseC-riseU) > 0.3*riseC {
		t.Fatalf("schemes disagree too much: central rise %g K vs upwind %g K", riseC, riseU)
	}
}

func TestSystemExposedForTransient(t *testing.T) {
	s := smallStack(t, 1.0, 13)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	sys, err := m.System(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.A.N != m.NumNodes() || len(sys.Cap) != m.NumNodes() {
		t.Fatal("system dimensions wrong")
	}
	for _, c := range sys.Cap {
		if c <= 0 {
			t.Fatal("nonpositive heat capacity")
		}
	}
}
