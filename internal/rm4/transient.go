package rm4

// Transient-scenario surface of the 4RM model: the implicit-Euler
// stepper shares the model's factored steady system (affine static/flow
// split, coarse map, escalation ladder), and power schedules are applied
// as RHS deltas so a workload change never costs a refactorization.

import (
	"fmt"

	"lcn3d/internal/power"
	"lcn3d/internal/thermal"
)

// Transient compiles an implicit-Euler stepper at pump pressure psys and
// time step dt, sharing the model's compiled thermal system. The stepper
// owns a private copy, so steady probes on the model stay unaffected.
func (m *Model) Transient(psys, dt float64) (*thermal.TransientSystem, error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	return fact.Transient(m.caps, dt, psys)
}

// Tin returns the coolant inlet temperature, K.
func (m *Model) Tin() float64 { return m.Stk.TinK }

// BasePowers returns clones of the source layers' power maps (fine grid,
// bottom to top) — the state a transient schedule mutates per step.
func (m *Model) BasePowers() []*power.Map {
	var out []*power.Map
	for _, l := range m.Stk.SourceLayers() {
		out = append(out, m.Stk.Layers[l].Power.Clone())
	}
	return out
}

// PowerDelta converts replacement source-layer power maps (fine grid,
// same order as BasePowers) into the RHS delta the transient stepper
// applies on top of the compiled b(s): delta[node] = new − assembled.
func (m *Model) PowerDelta(maps []*power.Map) ([]float64, error) {
	src := m.Stk.SourceLayers()
	if len(maps) != len(src) {
		return nil, fmt.Errorf("rm4: %d power maps for %d source layers", len(maps), len(src))
	}
	n := m.Stk.Dims.N()
	delta := make([]float64, m.NumNodes())
	for k, l := range src {
		if maps[k].Dims != m.Stk.Dims {
			return nil, fmt.Errorf("rm4: power map %d is %dx%d, want %dx%d",
				k, maps[k].Dims.NX, maps[k].Dims.NY, m.Stk.Dims.NX, m.Stk.Dims.NY)
		}
		base := m.Stk.Layers[l].Power
		for i := 0; i < n; i++ {
			delta[m.node(l, i)] = maps[k].W[i] - base.W[i]
		}
	}
	return delta, nil
}

// PeakDelta derives the per-step scalar metrics (peak source temperature
// and max per-layer spread) from a full transient field.
func (m *Model) PeakDelta(field []float64) (tmax, deltaT float64) {
	n := m.Stk.Dims.N()
	var layers [][]float64
	for _, l := range m.Stk.SourceLayers() {
		layers = append(layers, field[l*n:(l+1)*n])
	}
	met := thermal.ComputeMetrics(layers)
	return met.Tmax, met.DeltaT
}

// PumpWork returns the total coolant throughput (m³/s) and pumping power
// (W) at pressure psys; both are linear in the pressure.
func (m *Model) PumpWork(psys float64) (qsys, wpump float64) {
	for _, ref := range m.refFlows {
		qsys += ref.Qsys * psys
	}
	return qsys, psys * qsys
}
