package rm4

import (
	"context"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/scenario"
	"lcn3d/internal/thermal"
)

var _ scenario.Model = (*Model)(nil)

// TestTransientOneFactorizationPerSegment is the amortization acceptance
// bar: a >=200-step trace spanning three (dt, s) segments must build
// exactly three preconditioners — one per segment — while every step
// runs as a warm-started solve. The segment boundaries are chosen to
// defeat reuse: the pressure jump exceeds the ILU drift window
// (|log(8e4/2e4)| = 1.39 > 0.5) and SetDt invalidates unconditionally.
func TestTransientOneFactorizationPerSegment(t *testing.T) {
	prev := thermal.GetPrecondStrategy()
	thermal.SetPrecondStrategy(thermal.PrecondILU)
	t.Cleanup(func() { thermal.SetPrecondStrategy(prev) })

	s := smallStack(t, 1.5, 7)
	m := model(t, s, network.Straight(d21, grid.SideWest, 1))
	ts, err := m.Transient(2e4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	field := make([]float64, m.NumNodes())
	for i := range field {
		field[i] = m.Tin()
	}
	if err := ts.Run(field, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := ts.SetScale(8e4); err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(field, 60, nil); err != nil {
		t.Fatal(err)
	}
	if err := ts.SetDt(5e-4); err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(field, 60, nil); err != nil {
		t.Fatal(err)
	}

	st := ts.Stats()
	if st.Steps != 220 {
		t.Fatalf("steps = %d, want 220", st.Steps)
	}
	if st.Segments != 3 {
		t.Fatalf("segments = %d, want 3", st.Segments)
	}
	if st.Probes != 220 {
		t.Fatalf("probes = %d, want one per step", st.Probes)
	}
	if st.WarmStarts != 220 {
		t.Fatalf("warm starts = %d, want one per step", st.WarmStarts)
	}
	if st.PrecondBuilds != st.Segments {
		t.Fatalf("preconditioner builds = %d over %d segments, want exactly one per (dt, s) segment",
			st.PrecondBuilds, st.Segments)
	}
	if st.RetryRebuild != 0 || st.RetryGMRES != 0 || st.RetryDense != 0 {
		t.Fatalf("healthy trace escalated: %+v", st.FactorStats)
	}
	for _, v := range field {
		if v < m.Tin()-1e-6 {
			t.Fatalf("temperature %g below inlet after trace", v)
		}
	}
}

// TestScenarioRunOnModel drives the full scenario layer on the real 4RM
// model: a DVFS step must raise the trace peak above the no-event trace,
// and the stepped trace must report sane per-step records.
func TestScenarioRunOnModel(t *testing.T) {
	mk := func() *Model {
		return model(t, smallStack(t, 1.0, 9), network.Straight(d21, grid.SideWest, 1))
	}
	plain := &scenario.Spec{Dt: 2e-3, Steps: 30, Psys: 1e4}
	resPlain, err := scenario.Run(context.Background(), mk(), plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	boosted := &scenario.Spec{Dt: 2e-3, Steps: 30, Psys: 1e4,
		Power: []scenario.PowerEvent{{Kind: "dvfs", Layer: -1, T0: 0, Factor: 3}}}
	var last scenario.StepRecord
	resBoost, err := scenario.Run(context.Background(), mk(), boosted, func(r scenario.StepRecord) error {
		last = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resBoost.Peak <= resPlain.Peak {
		t.Fatalf("tripled power did not raise the peak: %g vs %g", resBoost.Peak, resPlain.Peak)
	}
	if last.Step != 30 || last.Tpeak != resBoost.Final {
		t.Fatalf("last record inconsistent with result: %+v vs final %g", last, resBoost.Final)
	}
	if last.PumpW <= 0 || last.Psys != 1e4 {
		t.Fatalf("pump record wrong: %+v", last)
	}
	if resBoost.Stats.Steps != 30 {
		t.Fatalf("stats steps = %d", resBoost.Stats.Steps)
	}
}

// TestScenarioPumpFailureHeatsUp checks the pump-event path end to end:
// losing most of the pump pressure mid-trace must leave the die hotter
// than the healthy trace at the same step.
func TestScenarioPumpFailureHeatsUp(t *testing.T) {
	mk := func() *Model {
		return model(t, smallStack(t, 1.5, 11), network.Straight(d21, grid.SideWest, 1))
	}
	healthy := &scenario.Spec{Dt: 5e-3, Steps: 40, Psys: 2e4}
	resH, err := scenario.Run(context.Background(), mk(), healthy, nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := &scenario.Spec{Dt: 5e-3, Steps: 40, Psys: 2e4,
		Pump: []scenario.PumpEvent{{Kind: "fail", T0: 0.05, Frac: 0.05}}}
	resF, err := scenario.Run(context.Background(), mk(), failed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resF.Final <= resH.Final {
		t.Fatalf("pump failure did not heat the die: %g vs %g", resF.Final, resH.Final)
	}
	if resF.Stats.Segments < 2 {
		t.Fatalf("pump failure should open a new (dt, s) segment, got %d", resF.Stats.Segments)
	}
	if resF.PumpEnergy >= resH.PumpEnergy {
		t.Fatalf("failed pump spent more energy: %g vs %g", resF.PumpEnergy, resH.PumpEnergy)
	}
}
