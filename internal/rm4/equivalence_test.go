package rm4

import (
	"math"
	"testing"

	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// The factored path rescales the convection block in place and warm-starts
// each solve from the nearest cached field. A model that has probed many
// pressures must agree with a freshly built model at every one of them.

func equivModel(t *testing.T, seed int64) *Model {
	t.Helper()
	pm := power.Hotspots(d21, seed, 3, 0.6, 1.2)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm.Clone(), pm})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := network.Tree(d21, network.UniformTreeSpec(d21, 1, network.Branch2, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, []*network.Network{tr}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Non-monotone sweep: warm starts jump between cached fields and the
// preconditioner serves pressures far from where it was built.
var equivSweep = []float64{10e3, 40e3, 15e3, 60e3, 11e3, 25e3, 60e3, 6e3}

// tighten drives a model's linear solves to a tolerance well below the
// 1e-9 equivalence criterion, so the comparison measures the amortization
// machinery rather than where two iterative solves happened to stop.
func tighten(t *testing.T, m *Model) {
	t.Helper()
	fact, err := m.factored()
	if err != nil {
		t.Fatal(err)
	}
	fact.SetTol(1e-12)
}

func TestIncrementalMatchesFromScratch4RM(t *testing.T) {
	shared := equivModel(t, 5)
	tighten(t, shared)
	for _, p := range equivSweep {
		oShared, err := shared.Simulate(p)
		if err != nil {
			t.Fatalf("shared model at %g Pa: %v", p, err)
		}
		fresh := equivModel(t, 5)
		tighten(t, fresh)
		oFresh, err := fresh.Simulate(p)
		if err != nil {
			t.Fatalf("fresh model at %g Pa: %v", p, err)
		}
		for l := range oFresh.SourceTemps {
			for i := range oFresh.SourceTemps[l] {
				a, b := oShared.SourceTemps[l][i], oFresh.SourceTemps[l][i]
				if math.Abs(a-b) > 1e-9*math.Abs(b) {
					t.Fatalf("at %g Pa layer %d cell %d: incremental %g vs from-scratch %g (rel %g)",
						p, l, i, a, b, math.Abs(a-b)/math.Abs(b))
				}
			}
		}
		if math.Abs(oShared.Qsys-oFresh.Qsys) > 1e-12*oFresh.Qsys {
			t.Fatalf("at %g Pa: Qsys %g vs %g", p, oShared.Qsys, oFresh.Qsys)
		}
	}
	st := shared.FactorStats()
	if st.Probes != len(equivSweep) {
		t.Fatalf("probes %d, want %d", st.Probes, len(equivSweep))
	}
	if st.WarmStarts == 0 {
		t.Fatal("sweep never warm-started; the equivalence test is not exercising the fast path")
	}
}

func TestReassembledSystemMatchesFreshBuild4RM(t *testing.T) {
	// In-place rewrites are a pure function of the pressure: after a long
	// sweep the system served at any pressure is bitwise identical to a
	// never-probed model's.
	shared := equivModel(t, 9)
	for _, p := range equivSweep {
		if _, err := shared.Simulate(p); err != nil {
			t.Fatal(err)
		}
	}
	fresh := equivModel(t, 9)
	const p = 22e3
	sA, err := shared.System(p)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := fresh.System(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sA.A.Vals) != len(sB.A.Vals) || len(sA.B) != len(sB.B) {
		t.Fatalf("system shapes differ: %d/%d vals, %d/%d rhs",
			len(sA.A.Vals), len(sB.A.Vals), len(sA.B), len(sB.B))
	}
	for k := range sA.A.Vals {
		if sA.A.Vals[k] != sB.A.Vals[k] {
			t.Fatalf("matrix value %d drifted: %g vs %g", k, sA.A.Vals[k], sB.A.Vals[k])
		}
	}
	for i := range sA.B {
		if sA.B[i] != sB.B[i] {
			t.Fatalf("rhs value %d drifted: %g vs %g", i, sA.B[i], sB.B[i])
		}
	}
}
