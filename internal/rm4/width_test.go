package rm4

import (
	"lcn3d/internal/flow"
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// Width-modulation (GreenCool baseline) thermal behaviour.

func TestWidthModulatedEnergyBalance(t *testing.T) {
	s := smallStack(t, 2.0, 21)
	n := network.Straight(d21, grid.SideWest, 1)
	pm := s.Layers[s.SourceLayers()[0]].Power
	heat := network.RowHeatLoads(d21, pm.W)
	if err := network.ModulateStraightWidths(n, heat, s.ChannelWidth, 200e-6, 0.5); err != nil {
		t.Fatal(err)
	}
	m, err := New(s, []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	carried, injected, err := m.EnergyBalance(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-4*injected {
		t.Fatalf("width-modulated energy balance: %g vs %g", carried, injected)
	}
}

func TestWidthModulationReducesGradientOnSkewedLoad(t *testing.T) {
	// A moderately skewed load at high power, where the cross-channel
	// gradient is dominated by coolant temperature rise — the regime
	// GreenCool's flow-share equalization targets. The south half
	// dissipates twice the north half's density.
	pm := power.New(d21)
	pm.AddBlock(0, 0, d21.NX, d21.NY/2, 8.0/3.0)
	pm.AddBlock(0, d21.NY/2, d21.NX, d21.NY, 4.0/3.0)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm.Clone(), pm})
	if err != nil {
		t.Fatal(err)
	}
	plain := network.Straight(d21, grid.SideWest, 1)
	mod := network.Straight(d21, grid.SideWest, 1)
	heat := network.RowHeatLoads(d21, pm.W)
	// Double-count both dies' identical maps is fine: only ratios matter.
	if err := network.ModulateStraightWidths(mod, heat, s.ChannelWidth, 200e-6, 0.5); err != nil {
		t.Fatal(err)
	}

	// A low pressure keeps the coolant rise (and thus the equalizable
	// part of the profile) large.
	const psys = 3e3
	mp, err := New(s, []*network.Network{plain}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := New(s, []*network.Network{mod}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	// GreenCool's design objective is equalizing the coolant temperature
	// rise across channels (its flow share matches each channel's heat
	// share). Compare the spread of outlet-column coolant temperatures.
	spread := func(m *Model) float64 {
		t.Helper()
		temps, err := m.Temperatures(psys)
		if err != nil {
			t.Fatal(err)
		}
		ch := m.Stk.ChannelLayers()[0]
		lo, hi := math.Inf(1), math.Inf(-1)
		for y := 0; y < d21.NY; y += 2 {
			v := temps[m.node(ch, d21.Index(d21.NX-1, y))]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	sp, sm := spread(mp), spread(mm)
	// The paper's critique of GreenCool, reproduced: the open-loop 1D
	// heat-share rule ignores lateral conduction between regions cooled
	// by different channels (the overcooled half imports heat), so it
	// does NOT reliably equalize outlet temperatures on the full chip —
	// here it overshoots and the spread grows.
	t.Logf("outlet spread: plain %.2f K, open-loop modulated %.2f K", sp, sm)

	// The closed-loop calibration (feedback from full-chip simulations)
	// fixes exactly that, and must beat the plain network.
	cal := network.Straight(d21, grid.SideWest, 1)
	const calPsys = psys
	measure := func(n *network.Network) (map[int]float64, error) {
		m, err := New(s, []*network.Network{n}, thermal.Central)
		if err != nil {
			return nil, err
		}
		temps, err := m.Temperatures(calPsys)
		if err != nil {
			return nil, err
		}
		geom := flow.Geometry{Pitch: s.Pitch, ChannelWidth: s.ChannelWidth,
			ChannelHeight: 200e-6, Coolant: s.Coolant}
		fs, err := flow.Solve(n, geom, calPsys)
		if err != nil {
			return nil, err
		}
		ch := s.ChannelLayers()[0]
		out := make(map[int]float64)
		for y := 0; y < d21.NY; y += 2 {
			i := d21.Index(d21.NX-1, y)
			tOut := temps[ch*d21.N()+i]
			out[y] = s.Coolant.Cv * fs.QOut[i] * (tOut - s.TinK)
		}
		return out, nil
	}
	if err := network.CalibrateStraightWidths(cal, measure, s.ChannelWidth, 200e-6, 0.5, 4); err != nil {
		t.Fatal(err)
	}
	mc, err := New(s, []*network.Network{cal}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	sc := spread(mc)
	t.Logf("outlet spread: calibrated %.2f K", sc)
	if sc >= sp {
		t.Fatalf("calibrated width modulation should equalize outlet temps: %.2f vs plain %.2f K", sc, sp)
	}
}

func TestNarrowChannelsRaiseSystemResistance(t *testing.T) {
	s := smallStack(t, 1.0, 22)
	plain := network.Straight(d21, grid.SideWest, 1)
	narrow := network.Straight(d21, grid.SideWest, 1)
	narrow.SetUniformWidth(0.6 * s.ChannelWidth)

	mp, err := New(s, []*network.Network{plain}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := New(s, []*network.Network{narrow}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	op, err := mp.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	on, err := mn.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if on.Rsys <= op.Rsys {
		t.Fatalf("narrow channels must raise R_sys: %g vs %g", on.Rsys, op.Rsys)
	}
	if on.Qsys >= op.Qsys {
		t.Fatalf("narrow channels at equal pressure must carry less flow: %g vs %g", on.Qsys, op.Qsys)
	}
	// Note: Tmax can move either way — the narrower duct has a higher
	// film coefficient (h ∝ 1/D_h), which can outweigh the smaller flow
	// until the coolant temperature rise dominates. Both outcomes are
	// physical, so only the hydraulic facts are asserted here.
}
