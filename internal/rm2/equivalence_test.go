package rm2

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// The factored simulation path reuses one assembled system across probes:
// the convection block is rescaled in place, solves warm-start from the
// nearest cached field, and the preconditioner carries over. These tests
// pin down that none of that shared state leaks between pressures — a
// well-used model must agree with a freshly built one at every pressure.

func equivModel(t *testing.T, seed int64) *Model {
	t.Helper()
	pm := power.Hotspots(d21, seed, 3, 0.6, 1.2)
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{pm.Clone(), pm})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, []*network.Network{network.Straight(d21, grid.SideWest, 1)}, 3, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sweep is deliberately non-monotone so warm starts jump between cached
// fields and the preconditioner sees pressures far from where it was built.
var equivSweep = []float64{8e3, 32e3, 12e3, 50e3, 9e3, 21e3, 50e3, 5e3}

// tighten drives a model's linear solves to a tolerance well below the
// 1e-9 equivalence criterion, so the comparison measures the amortization
// machinery rather than where two iterative solves happened to stop.
func tighten(t *testing.T, m *Model) {
	t.Helper()
	fact, err := m.factored()
	if err != nil {
		t.Fatal(err)
	}
	fact.SetTol(1e-12)
}

func TestIncrementalMatchesFromScratch2RM(t *testing.T) {
	shared := equivModel(t, 7)
	tighten(t, shared)
	for _, p := range equivSweep {
		oShared, err := shared.Simulate(p)
		if err != nil {
			t.Fatalf("shared model at %g Pa: %v", p, err)
		}
		fresh := equivModel(t, 7)
		tighten(t, fresh)
		oFresh, err := fresh.Simulate(p)
		if err != nil {
			t.Fatalf("fresh model at %g Pa: %v", p, err)
		}
		for l := range oFresh.SourceTemps {
			for i := range oFresh.SourceTemps[l] {
				a, b := oShared.SourceTemps[l][i], oFresh.SourceTemps[l][i]
				if math.Abs(a-b) > 1e-9*math.Abs(b) {
					t.Fatalf("at %g Pa layer %d cell %d: incremental %g vs from-scratch %g (rel %g)",
						p, l, i, a, b, math.Abs(a-b)/math.Abs(b))
				}
			}
		}
		if math.Abs(oShared.Qsys-oFresh.Qsys) > 1e-12*oFresh.Qsys {
			t.Fatalf("at %g Pa: Qsys %g vs %g", p, oShared.Qsys, oFresh.Qsys)
		}
	}
	st := shared.FactorStats()
	if st.Probes != len(equivSweep) {
		t.Fatalf("probes %d, want %d", st.Probes, len(equivSweep))
	}
	if st.WarmStarts == 0 {
		t.Fatal("sweep never warm-started; the equivalence test is not exercising the fast path")
	}
}

func TestReassembledSystemMatchesFreshBuild2RM(t *testing.T) {
	// After a long sweep of in-place rewrites, the shared model's system at
	// a pressure must be bitwise identical to a never-probed model's: the
	// rewrite is a pure function of the pressure, with no drift.
	shared := equivModel(t, 11)
	for _, p := range equivSweep {
		if _, err := shared.Simulate(p); err != nil {
			t.Fatal(err)
		}
	}
	fresh := equivModel(t, 11)
	if _, err := fresh.factored(); err != nil {
		t.Fatal(err)
	}
	const p = 17e3
	mA, bA := shared.fact.SystemAt(p)
	mB, bB := fresh.fact.SystemAt(p)
	if len(mA.Vals) != len(mB.Vals) || len(bA) != len(bB) {
		t.Fatalf("system shapes differ: %d/%d vals, %d/%d rhs", len(mA.Vals), len(mB.Vals), len(bA), len(bB))
	}
	for k := range mA.Vals {
		if mA.Vals[k] != mB.Vals[k] {
			t.Fatalf("matrix value %d drifted: %g vs %g", k, mA.Vals[k], mB.Vals[k])
		}
	}
	for i := range bA {
		if bA[i] != bB[i] {
			t.Fatalf("rhs value %d drifted: %g vs %g", i, bA[i], bB[i])
		}
	}
}
