package rm2

import (
	"lcn3d/internal/thermal"
)

// Simulate implements thermal.Model.
func (m *Model) Simulate(psys float64) (*thermal.Outcome, error) {
	asm, _, err := m.assemble(psys)
	if err != nil {
		return nil, err
	}
	temps, res, err := asm.SolveSteady(m.Stk.TinK)
	if err != nil {
		return nil, err
	}
	cd := m.til.Coarse
	out := &thermal.Outcome{
		Psys:       psys,
		SourceDims: cd,
		FineDims:   m.Stk.Dims,
		SolveIters: res.Iterations,
	}
	for _, l := range m.Stk.SourceLayers() {
		field := make([]float64, cd.N())
		for c := 0; c < cd.N(); c++ {
			field[c] = temps[m.solidNode[l][c]]
		}
		out.SourceTemps = append(out.SourceTemps, field)
		out.FineTemps = append(out.FineTemps, m.expand(field))
	}
	out.Metrics = thermal.ComputeMetrics(out.SourceTemps)
	for _, ref := range m.refFlows {
		out.Qsys += ref.Qsys * psys
	}
	out.Wpump = psys * out.Qsys
	if out.Qsys > 0 {
		out.Rsys = psys / out.Qsys
	}
	return out, nil
}

// expand maps a coarse field onto the basic-cell grid by piecewise
// constant interpolation (each fine cell takes its coarse node's value).
func (m *Model) expand(coarse []float64) []float64 {
	d := m.Stk.Dims
	out := make([]float64, d.N())
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			cx, cy := m.til.CoarseOf(x, y)
			out[d.Index(x, y)] = coarse[m.til.Coarse.Index(cx, cy)]
		}
	}
	return out
}

// EnergyBalance returns (coolant enthalpy rise, total die power) for the
// steady solution at psys.
func (m *Model) EnergyBalance(psys float64) (carried, injected float64, err error) {
	asm, _, err := m.assemble(psys)
	if err != nil {
		return 0, 0, err
	}
	temps, _, err := asm.SolveSteady(m.Stk.TinK)
	if err != nil {
		return 0, 0, err
	}
	for k := range m.refFlows {
		ci := &m.ch[k]
		for c, q := range ci.qOut {
			qs := q * psys
			if qs > 0 {
				if ln := m.liquidNode[k][c]; ln >= 0 {
					carried += m.Stk.Coolant.Cv * qs * (temps[ln] - m.Stk.TinK)
				}
			}
		}
	}
	return carried, m.Stk.TotalPower(), nil
}

var _ thermal.Model = (*Model)(nil)
