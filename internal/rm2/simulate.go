package rm2

import (
	"fmt"

	"lcn3d/internal/thermal"
)

// checkFlow rejects pressures at which the powered stack has no coolant
// throughput (no steady state exists under adiabatic boundaries).
func (m *Model) checkFlow(psys float64) error {
	var qsysTotal float64
	for _, ref := range m.refFlows {
		qsysTotal += ref.Qsys * psys // reference is at 1 Pa
	}
	if qsysTotal <= 0 && m.Stk.TotalPower() > 0 {
		return fmt.Errorf("rm2: no coolant flow at P_sys=%g Pa", psys)
	}
	return nil
}

// Simulate implements thermal.Model. The thermal system is assembled once
// per model at the reference pressure; each probe rescales the convection
// block in place and warm-starts the solve (see thermal.Factored).
func (m *Model) Simulate(psys float64) (*thermal.Outcome, error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	temps, res, probe, err := fact.SolveAt(psys, m.Stk.TinK)
	if err != nil {
		return nil, err
	}
	cd := m.til.Coarse
	out := &thermal.Outcome{
		Psys:       psys,
		SourceDims: cd,
		FineDims:   m.Stk.Dims,
		SolveIters: res.Iterations,
		Probe:      probe,
	}
	for _, l := range m.Stk.SourceLayers() {
		field := make([]float64, cd.N())
		for c := 0; c < cd.N(); c++ {
			field[c] = temps[m.solidNode[l][c]]
		}
		out.SourceTemps = append(out.SourceTemps, field)
		out.FineTemps = append(out.FineTemps, m.expand(field))
	}
	out.Metrics = thermal.ComputeMetrics(out.SourceTemps)
	for _, ref := range m.refFlows {
		out.Qsys += ref.Qsys * psys
	}
	out.Wpump = psys * out.Qsys
	if out.Qsys > 0 {
		out.Rsys = psys / out.Qsys
	}
	return out, nil
}

// expand maps a coarse field onto the basic-cell grid by piecewise
// constant interpolation (each fine cell takes its coarse node's value).
func (m *Model) expand(coarse []float64) []float64 {
	d := m.Stk.Dims
	out := make([]float64, d.N())
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			cx, cy := m.til.CoarseOf(x, y)
			out[d.Index(x, y)] = coarse[m.til.Coarse.Index(cx, cy)]
		}
	}
	return out
}

// EnergyBalance returns (coolant enthalpy rise, total die power) for the
// steady solution at psys.
func (m *Model) EnergyBalance(psys float64) (carried, injected float64, err error) {
	if err := m.checkFlow(psys); err != nil {
		return 0, 0, err
	}
	fact, err := m.factored()
	if err != nil {
		return 0, 0, err
	}
	temps, _, _, err := fact.SolveAt(psys, m.Stk.TinK)
	if err != nil {
		return 0, 0, err
	}
	for k := range m.refFlows {
		ci := &m.ch[k]
		for c, q := range ci.qOut {
			qs := q * psys
			if qs > 0 {
				if ln := m.liquidNode[k][c]; ln >= 0 {
					carried += m.Stk.Coolant.Cv * qs * (temps[ln] - m.Stk.TinK)
				}
			}
		}
	}
	return carried, m.Stk.TotalPower(), nil
}

var _ thermal.Model = (*Model)(nil)
