// Package rm2 implements the 2-register-model (porous medium) thermal
// simulator of paper Section 2.3. Thermal cells cover m×m basic cells;
// in the channel layer each coarse cell is represented by one solid node
// and one liquid node. Lateral solid conductances in the channel layer
// use the complete-conducting-path construction (Eq. (7)); side-wall
// convection is folded into the vertical solid-liquid conductance
// (Eq. (8)); liquid-liquid transport uses the net flow rate across each
// coarse interface with Eq. (6).
package rm2

import (
	"fmt"
	"sync"

	"lcn3d/internal/flow"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// Variant selects the solid-liquid treatment in the channel layer.
type Variant int

// Model variants.
const (
	// Paper2RM follows Section 2.3 exactly: the side-wall film is folded
	// into the vertical solid-liquid conductance (Eq. (8)) and the
	// lateral solid-liquid conductance is zero.
	Paper2RM Variant = iota
	// LateralSL is an accuracy extension beyond the paper: side walls
	// couple the channel-layer solid and liquid nodes directly (as in
	// 4RM), and only the top/bottom areas enter the vertical path. It
	// cuts the error floor on sparse (tree-like) networks; see the
	// ablation bench.
	LateralSL
)

func (v Variant) String() string {
	if v == LateralSL {
		return "lateral-sl"
	}
	return "paper"
}

// Model is a 2RM simulator bound to a stack, one network per channel
// layer, and a coarsening factor m (thermal cell = m×m basic cells).
type Model struct {
	Stk     *stack.Stack
	Nets    []*network.Network
	Scheme  thermal.Scheme
	M       int
	Variant Variant

	til      *grid.Tiling
	refFlows []*flow.Solution
	chOfIdx  map[int]int

	solidNode  [][]int // [layer][coarse cell] -> node or -1
	liquidNode [][]int // [channel ordinal][coarse cell] -> node or -1
	numNodes   int

	ch []chInfo // per channel ordinal, static geometry aggregates

	// The factored thermal system is assembled once at the reference
	// pressure and reused across all Simulate probes (pattern, conduction
	// block, warm starts, preconditioner).
	factOnce sync.Once
	fact     *thermal.Factored
	caps     []float64
	factErr  error
}

// factored lazily compiles the reference-pressure system.
func (m *Model) factored() (*thermal.Factored, error) {
	m.factOnce.Do(func() {
		asm, caps, err := m.assembleRef()
		if err != nil {
			m.factErr = err
			return
		}
		m.fact = asm.Factor()
		m.caps = caps
	})
	return m.fact, m.factErr
}

// FactorStats exposes the amortization counters of the model's factored
// system (zero-valued before the first Simulate).
func (m *Model) FactorStats() thermal.FactorStats {
	if m.fact == nil {
		return thermal.FactorStats{}
	}
	return m.fact.Stats()
}

// chInfo caches the per-coarse-cell aggregates of one channel layer.
type chInfo struct {
	nSolid  []int     // solid basic cells per coarse cell
	nLiquid []int     // liquid basic cells per coarse cell
	sideA   []float64 // total side-wall area per coarse cell, m^2

	// Conducting-path counts for the solid lateral conductance: for the
	// east interface of coarse cell c, pathsE[c][0] counts complete solid
	// rows in c's east half, pathsE[c][1] in the east neighbor's west
	// half. Analogously pathsN for north interfaces.
	pathsE [][2]int
	pathsN [][2]int

	// Reference (P_sys = 1 Pa) aggregated flows.
	netQE []float64 // net eastward flow across each east interface
	netQN []float64 // net northward flow across each north interface
	qIn   []float64 // inlet inflow per coarse cell
	qOut  []float64 // outlet outflow per coarse cell

	liquidPairsE []int // liquid fine-cell pairs across east interfaces
	liquidPairsN []int
}

// New builds a 2RM model with coarsening factor m (in basic cells).
func New(stk *stack.Stack, nets []*network.Network, m int, scheme thermal.Scheme) (*Model, error) {
	if err := stk.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("rm2: coarsening factor %d", m)
	}
	chl := stk.ChannelLayers()
	if len(nets) != len(chl) {
		return nil, fmt.Errorf("rm2: %d networks for %d channel layers", len(nets), len(chl))
	}
	til, err := grid.NewTiling(stk.Dims, m)
	if err != nil {
		return nil, err
	}
	mod := &Model{Stk: stk, Nets: nets, Scheme: scheme, M: m, til: til, chOfIdx: make(map[int]int)}
	for k, li := range chl {
		mod.chOfIdx[li] = k
	}
	geo := flow.Geometry{Pitch: stk.Pitch, ChannelWidth: stk.ChannelWidth, Coolant: stk.Coolant}
	for k, li := range chl {
		n := nets[k]
		if n.Dims != stk.Dims {
			return nil, fmt.Errorf("rm2: network %d dims %v != %v", k, n.Dims, stk.Dims)
		}
		if errs := n.Check(); len(errs) > 0 {
			return nil, fmt.Errorf("rm2: network %d illegal: %v", k, errs[0])
		}
		g := geo
		g.ChannelHeight = stk.Layers[li].Thickness
		ref, err := flow.Solve(n, g, 1)
		if err != nil {
			return nil, fmt.Errorf("rm2: channel layer %d: %w", k, err)
		}
		mod.refFlows = append(mod.refFlows, ref)
	}
	mod.assignNodes()
	mod.precompute()
	return mod, nil
}

// Name implements thermal.Model.
func (m *Model) Name() string { return fmt.Sprintf("2RM/m=%d", m.M) }

// CoarseDims returns the thermal-cell grid dimensions.
func (m *Model) CoarseDims() grid.Dims { return m.til.Coarse }

// NumNodes returns the thermal system size.
func (m *Model) NumNodes() int { return m.numNodes }

func (m *Model) assignNodes() {
	nc := m.til.Coarse.N()
	next := 0
	m.solidNode = make([][]int, len(m.Stk.Layers))
	m.liquidNode = make([][]int, len(m.refFlows))
	for l, layer := range m.Stk.Layers {
		m.solidNode[l] = make([]int, nc)
		if layer.Kind != stack.Channel {
			for c := 0; c < nc; c++ {
				m.solidNode[l][c] = next
				next++
			}
			continue
		}
		k := m.chOfIdx[l]
		net := m.Nets[k]
		m.liquidNode[k] = make([]int, nc)
		for cy := 0; cy < m.til.Coarse.NY; cy++ {
			for cx := 0; cx < m.til.Coarse.NX; cx++ {
				c := m.til.Coarse.Index(cx, cy)
				nLiq := 0
				m.til.EachFine(cx, cy, func(x, y int) {
					if net.IsLiquid(x, y) {
						nLiq++
					}
				})
				nSol := m.til.CellArea(cx, cy) - nLiq
				if nSol > 0 {
					m.solidNode[l][c] = next
					next++
				} else {
					m.solidNode[l][c] = -1
				}
				if nLiq > 0 {
					m.liquidNode[k][c] = next
					next++
				} else {
					m.liquidNode[k][c] = -1
				}
			}
		}
	}
	m.numNodes = next
}

func (m *Model) precompute() {
	d := m.Stk.Dims
	cd := m.til.Coarse
	nc := cd.N()
	m.ch = make([]chInfo, len(m.refFlows))
	for k := range m.refFlows {
		net := m.Nets[k]
		ref := m.refFlows[k]
		hc := m.Stk.Layers[m.Stk.ChannelLayers()[k]].Thickness
		ci := chInfo{
			nSolid: make([]int, nc), nLiquid: make([]int, nc), sideA: make([]float64, nc),
			pathsE: make([][2]int, nc), pathsN: make([][2]int, nc),
			netQE: make([]float64, nc), netQN: make([]float64, nc),
			qIn: make([]float64, nc), qOut: make([]float64, nc),
			liquidPairsE: make([]int, nc), liquidPairsN: make([]int, nc),
		}
		liquid := func(x, y int) bool { return net.IsLiquid(x, y) }

		for cy := 0; cy < cd.NY; cy++ {
			for cx := 0; cx < cd.NX; cx++ {
				c := cd.Index(cx, cy)
				m.til.EachFine(cx, cy, func(x, y int) {
					i := d.Index(x, y)
					if !liquid(x, y) {
						ci.nSolid[c]++
						return
					}
					ci.nLiquid[c]++
					// Side walls: solid in-grid neighbors plus sealed chip
					// boundary faces count as wall area.
					walls := 4
					d.Neighbors4(x, y, func(nx, ny int, _ grid.Dir) {
						if liquid(nx, ny) {
							walls--
						}
					})
					ci.sideA[c] += float64(walls) * m.Stk.Pitch * hc
					ci.qIn[c] += ref.QIn[i]
					ci.qOut[c] += ref.QOut[i]
					// Flows crossing coarse interfaces.
					if x == xRangeHi(m.til, cx)-1 && cx+1 < cd.NX {
						ci.netQE[c] += ref.QEast[i]
						if x+1 < d.NX && liquid(x+1, y) {
							ci.liquidPairsE[c]++
						}
					}
					if y == yRangeHi(m.til, cy)-1 && cy+1 < cd.NY {
						ci.netQN[c] += ref.QNorth[i]
						if y+1 < d.NY && liquid(x, y+1) {
							ci.liquidPairsN[c]++
						}
					}
				})
				// Conducting paths across the east interface: rows whose
				// east-half cells (this cell) and west-half cells
				// (neighbor) are all solid.
				if cx+1 < cd.NX {
					ci.pathsE[c][0] = countPathsX(m.til, net, cx, cy, true)
					ci.pathsE[c][1] = countPathsX(m.til, net, cx+1, cy, false)
				}
				if cy+1 < cd.NY {
					ci.pathsN[c][0] = countPathsY(m.til, net, cx, cy, true)
					ci.pathsN[c][1] = countPathsY(m.til, net, cx, cy+1, false)
				}
			}
		}
		m.ch[k] = ci
	}
}

func xRangeHi(t *grid.Tiling, cx int) int { _, hi := t.XRange(cx); return hi }
func yRangeHi(t *grid.Tiling, cy int) int { _, hi := t.YRange(cy); return hi }

// countPathsX counts the complete solid rows in the half of coarse cell
// (cx, cy) adjacent to its east (eastHalf=true) or west interface.
func countPathsX(t *grid.Tiling, net *network.Network, cx, cy int, eastHalf bool) int {
	xlo, xhi := t.XRange(cx)
	ylo, yhi := t.YRange(cy)
	w := xhi - xlo
	half := (w + 1) / 2
	hlo, hhi := xlo, xlo+half
	if eastHalf {
		hlo, hhi = xhi-half, xhi
	}
	paths := 0
	for y := ylo; y < yhi; y++ {
		ok := true
		for x := hlo; x < hhi; x++ {
			if net.IsLiquid(x, y) {
				ok = false
				break
			}
		}
		if ok {
			paths++
		}
	}
	return paths
}

// countPathsY counts the complete solid columns in the half of coarse
// cell (cx, cy) adjacent to its north (northHalf=true) or south interface.
func countPathsY(t *grid.Tiling, net *network.Network, cx, cy int, northHalf bool) int {
	xlo, xhi := t.XRange(cx)
	ylo, yhi := t.YRange(cy)
	h := yhi - ylo
	half := (h + 1) / 2
	hlo, hhi := ylo, ylo+half
	if northHalf {
		hlo, hhi = yhi-half, yhi
	}
	paths := 0
	for x := xlo; x < xhi; x++ {
		ok := true
		for y := hlo; y < hhi; y++ {
			if net.IsLiquid(x, y) {
				ok = false
				break
			}
		}
		if ok {
			paths++
		}
	}
	return paths
}
