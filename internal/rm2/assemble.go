package rm2

import (
	"fmt"

	"lcn3d/internal/grid"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
	"lcn3d/internal/units"
)

// assembleRef builds the coarse steady thermal system at the reference
// pressure of the flow solutions (P_sys = 1 Pa). Convection terms are
// recorded through the assembler's flow group, so the compiled Factored
// system reproduces any positive pressure by linear scaling.
func (m *Model) assembleRef() (*thermal.Assembler, []float64, error) {
	stk := m.Stk
	cd := m.til.Coarse
	nc := cd.N()
	pitch := stk.Pitch
	asm := thermal.NewAssembler(m.numNodes, m.Scheme)
	caps := make([]float64, m.numNodes)

	var qsysTotal float64
	for _, ref := range m.refFlows {
		qsysTotal += ref.Qsys
	}
	if qsysTotal <= 0 && stk.TotalPower() > 0 {
		return nil, nil, fmt.Errorf("rm2: network admits no coolant flow")
	}

	for l, layer := range stk.Layers {
		t := layer.Thickness
		kS := layer.Mat.K
		if layer.Kind != stack.Channel {
			// Lateral conduction between coarse cells.
			for cy := 0; cy < cd.NY; cy++ {
				for cx := 0; cx < cd.NX; cx++ {
					c := cd.Index(cx, cy)
					if cx+1 < cd.NX {
						g := kS * t * float64(m.til.Height(cy)) /
							(0.5 * float64(m.til.Width(cx)+m.til.Width(cx+1)))
						asm.Conductance(m.solidNode[l][c], m.solidNode[l][cd.Index(cx+1, cy)], g)
					}
					if cy+1 < cd.NY {
						g := kS * t * float64(m.til.Width(cx)) /
							(0.5 * float64(m.til.Height(cy)+m.til.Height(cy+1)))
						asm.Conductance(m.solidNode[l][c], m.solidNode[l][cd.Index(cx, cy+1)], g)
					}
					// Heat capacity.
					area := float64(m.til.CellArea(cx, cy)) * pitch * pitch
					caps[m.solidNode[l][c]] = layer.Mat.Cv * area * t
					// Source power.
					if layer.Kind == stack.Source {
						var q float64
						d := stk.Dims
						m.til.EachFine(cx, cy, func(x, y int) { q += layer.Power.W[d.Index(x, y)] })
						asm.Source(m.solidNode[l][c], q)
					}
				}
			}
			// Vertical conduction handled generically below via halfG.
			continue
		}

		// Channel layer.
		k := m.chOfIdx[l]
		ci := &m.ch[k]
		cv := stk.Coolant.Cv
		for cy := 0; cy < cd.NY; cy++ {
			for cx := 0; cx < cd.NX; cx++ {
				c := cd.Index(cx, cy)
				sn := m.solidNode[l][c]
				ln := m.liquidNode[k][c]
				// Heat capacities.
				if sn >= 0 {
					caps[sn] = layer.Mat.Cv * float64(ci.nSolid[c]) * pitch * pitch * t
				}
				if ln >= 0 {
					caps[ln] = cv * float64(ci.nLiquid[c]) * pitch * pitch * t
				}
				// Lateral solid-solid via conducting paths (Eq. (7)).
				if cx+1 < cd.NX {
					c2 := cd.Index(cx+1, cy)
					g1 := 2 * kS * t * float64(ci.pathsE[c][0]) / float64(m.til.Width(cx))
					g2 := 2 * kS * t * float64(ci.pathsE[c][1]) / float64(m.til.Width(cx+1))
					if sn >= 0 && m.solidNode[l][c2] >= 0 {
						asm.Conductance(sn, m.solidNode[l][c2], units.SeriesG(g1, g2))
					}
					// Liquid-liquid lateral: net convection + weak
					// conduction across the interface.
					l2 := m.liquidNode[k][c2]
					if ln >= 0 && l2 >= 0 {
						if ci.liquidPairsE[c] > 0 {
							gLL := stk.Coolant.K * t * float64(ci.liquidPairsE[c]) /
								(0.5 * float64(m.til.Width(cx)+m.til.Width(cx+1)))
							asm.Conductance(ln, l2, gLL)
						}
						if q := ci.netQE[c]; q > 0 {
							asm.Convection(ln, l2, cv*q)
						} else if q < 0 {
							asm.Convection(l2, ln, -cv*q)
						}
					}
				}
				if cy+1 < cd.NY {
					c2 := cd.Index(cx, cy+1)
					g1 := 2 * kS * t * float64(ci.pathsN[c][0]) / float64(m.til.Height(cy))
					g2 := 2 * kS * t * float64(ci.pathsN[c][1]) / float64(m.til.Height(cy+1))
					if sn >= 0 && m.solidNode[l][c2] >= 0 {
						asm.Conductance(sn, m.solidNode[l][c2], units.SeriesG(g1, g2))
					}
					l2 := m.liquidNode[k][c2]
					if ln >= 0 && l2 >= 0 {
						if ci.liquidPairsN[c] > 0 {
							gLL := stk.Coolant.K * t * float64(ci.liquidPairsN[c]) /
								(0.5 * float64(m.til.Height(cy)+m.til.Height(cy+1)))
							asm.Conductance(ln, l2, gLL)
						}
						if q := ci.netQN[c]; q > 0 {
							asm.Convection(ln, l2, cv*q)
						} else if q < 0 {
							asm.Convection(l2, ln, -cv*q)
						}
					}
				}
				// LateralSL variant: direct side-wall coupling between
				// the in-cell solid and liquid nodes (4RM-style film in
				// series with half-cell wall conduction).
				if m.Variant == LateralSL && sn >= 0 && ln >= 0 && ci.sideA[c] > 0 {
					hconv := units.HeatTransferCoeff(stk.Coolant, stk.ChannelWidth, t)
					gFilm := hconv * ci.sideA[c]
					gWall := kS * ci.sideA[c] / (0.5 * float64(m.M) * pitch)
					asm.Conductance(sn, ln, units.SeriesG(gFilm, gWall))
				}
				// Inlet/outlet convection.
				if ln >= 0 {
					if q := ci.qIn[c]; q > 0 {
						asm.ConvectionInlet(ln, cv*q, stk.TinK)
					}
					if q := ci.qOut[c]; q > 0 {
						asm.ConvectionOutlet(ln, cv*q)
					}
				}
			}
		}
	}

	// Vertical conduction between consecutive layers. halfG returns the
	// conductance from a layer's node(s) to the interface plane for each
	// coarse cell, handling the channel-layer solid/liquid split.
	for l := 0; l+1 < len(stk.Layers); l++ {
		for c := 0; c < nc; c++ {
			cx, cy := cd.Coord(c)
			area := float64(m.til.CellArea(cx, cy)) * pitch * pitch
			lowers := m.verticalHalves(l, c, area)
			uppers := m.verticalHalves(l+1, c, area)
			for _, lo := range lowers {
				for _, hi := range uppers {
					// Split each half conductance by the partner's area
					// fraction so parallel paths are not double counted.
					g := units.SeriesG(lo.g*hi.frac, hi.g*lo.frac)
					asm.Conductance(lo.node, hi.node, g)
				}
			}
		}
	}
	m.setCoarseMap(asm)
	return asm, caps, nil
}

// mgSuperCoarsen is the side (in 2RM thermal cells) of the super-tiles
// the multigrid coarse space aggregates the 2RM system into — a second
// level of the same porous-medium coarsening.
const mgSuperCoarsen = 4

// setCoarseMap hands the assembler the multigrid aggregation: one solid
// and (in channel layers) one liquid aggregate per layer and super-tile
// of mgSuperCoarsen×mgSuperCoarsen thermal cells, mirroring the node
// structure one coarsening level up.
func (m *Model) setCoarseMap(asm *thermal.Assembler) {
	cd := m.til.Coarse
	super, err := grid.NewTiling(cd, mgSuperCoarsen)
	if err != nil {
		return
	}
	nsc := super.Coarse.N()
	agg := make([]int, m.numNodes)
	next := 0
	solidID := make([]int, nsc)
	liquidID := make([]int, nsc)
	for l, layer := range m.Stk.Layers {
		for sc := 0; sc < nsc; sc++ {
			solidID[sc], liquidID[sc] = -1, -1
		}
		for cy := 0; cy < cd.NY; cy++ {
			for cx := 0; cx < cd.NX; cx++ {
				c := cd.Index(cx, cy)
				sx, sy := super.CoarseOf(cx, cy)
				sc := super.Coarse.Index(sx, sy)
				if sn := m.solidNode[l][c]; sn >= 0 {
					if solidID[sc] < 0 {
						solidID[sc] = next
						next++
					}
					agg[sn] = solidID[sc]
				}
				if layer.Kind == stack.Channel {
					if ln := m.liquidNode[m.chOfIdx[l]][c]; ln >= 0 {
						if liquidID[sc] < 0 {
							liquidID[sc] = next
							next++
						}
						agg[ln] = liquidID[sc]
					}
				}
			}
		}
	}
	asm.SetCoarseMap(agg, next)
}

// vhalf is one vertical half-path from a node to a layer interface.
type vhalf struct {
	node int
	g    float64 // conductance from node to the interface plane, W/K
	frac float64 // footprint fraction of the coarse cell
}

// verticalHalves lists the half-conductances of layer l's node(s) in
// coarse cell c toward a horizontal interface. Solid (and source) layers
// contribute one conduction path over the full cell footprint; channel
// layers contribute a solid-wall path over the wall footprint and a
// convective path (Eq. (8): top/bottom area plus half the side-wall
// area) over the liquid footprint.
func (m *Model) verticalHalves(l, c int, area float64) []vhalf {
	stk := m.Stk
	layer := stk.Layers[l]
	t := layer.Thickness
	if layer.Kind != stack.Channel {
		return []vhalf{{node: m.solidNode[l][c], g: 2 * layer.Mat.K * area / t, frac: 1}}
	}
	k := m.chOfIdx[l]
	ci := &m.ch[k]
	total := float64(ci.nSolid[c] + ci.nLiquid[c])
	var out []vhalf
	if sn := m.solidNode[l][c]; sn >= 0 {
		aSolid := float64(ci.nSolid[c]) * stk.Pitch * stk.Pitch
		out = append(out, vhalf{node: sn, g: 2 * layer.Mat.K * aSolid / t, frac: float64(ci.nSolid[c]) / total})
	}
	if ln := m.liquidNode[k][c]; ln >= 0 {
		aTop := float64(ci.nLiquid[c]) * stk.Pitch * stk.Pitch
		hconv := units.HeatTransferCoeff(stk.Coolant, stk.ChannelWidth, t)
		a := aTop + ci.sideA[c]/2 // Eq. (8): half the side walls per face
		if m.Variant == LateralSL {
			a = aTop // side walls couple laterally instead
		}
		out = append(out, vhalf{node: ln, g: hconv * a, frac: float64(ci.nLiquid[c]) / total})
	}
	return out
}
