package rm2

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/rm4"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func smallStack(t *testing.T, total float64, seed int64) *stack.Stack {
	t.Helper()
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{
			power.Hotspots(d21, seed, 2, 0.6, total),
			power.Hotspots(d21, seed+1, 2, 0.6, total),
		})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func model2(t *testing.T, s *stack.Stack, n *network.Network, m int) *Model {
	t.Helper()
	mod, err := New(s, []*network.Network{n}, m, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestSimulateBasics(t *testing.T) {
	s := smallStack(t, 1.0, 1)
	m := model2(t, s, network.Straight(d21, grid.SideWest, 1), 3)
	out, err := m.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if out.SourceDims != m.CoarseDims() {
		t.Fatalf("source dims %v != coarse %v", out.SourceDims, m.CoarseDims())
	}
	if out.FineDims != d21 {
		t.Fatalf("fine dims %v", out.FineDims)
	}
	if out.Tmax <= s.TinK || math.IsNaN(out.Tmax) {
		t.Fatalf("bad Tmax %g", out.Tmax)
	}
	if len(out.FineTemps[0]) != d21.N() {
		t.Fatalf("fine field has %d entries", len(out.FineTemps[0]))
	}
}

func TestProblemSizeReduction(t *testing.T) {
	s := smallStack(t, 1.0, 2)
	n := network.Straight(d21, grid.SideWest, 1)
	m1 := model2(t, s, n, 1)
	m4 := model2(t, s, n, 4)
	if m4.NumNodes() >= m1.NumNodes() {
		t.Fatalf("m=4 nodes %d should be far fewer than m=1 nodes %d", m4.NumNodes(), m1.NumNodes())
	}
	// The reduction should approach m^2 = 16 for the solid layers.
	ratio := float64(m1.NumNodes()) / float64(m4.NumNodes())
	if ratio < 6 {
		t.Fatalf("size reduction %.1fx too small", ratio)
	}
}

func TestEnergyBalance(t *testing.T) {
	s := smallStack(t, 2.0, 3)
	for _, mm := range []int{1, 2, 4} {
		m := model2(t, s, network.Straight(d21, grid.SideWest, 1), mm)
		carried, injected, err := m.EnergyBalance(8e3)
		if err != nil {
			t.Fatalf("m=%d: %v", mm, err)
		}
		if math.Abs(carried-injected) > 1e-3*injected {
			t.Fatalf("m=%d energy balance: coolant %g W vs power %g W", mm, carried, injected)
		}
	}
}

func TestAgreesWith4RMOnStraightChannels(t *testing.T) {
	s := smallStack(t, 1.0, 5)
	n := network.Straight(d21, grid.SideWest, 1)
	m2 := model2(t, s, n, 2)
	m4, err := rm4.New(s, []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m2.Simulate(8e3)
	if err != nil {
		t.Fatal(err)
	}
	o4, err := m4.Simulate(8e3)
	if err != nil {
		t.Fatal(err)
	}
	// Mean relative error of the fine-grid source field (the Fig. 9(a)
	// metric) should be small for straight channels at small cell size.
	var errSum float64
	for i := range o4.FineTemps[0] {
		errSum += math.Abs(o2.FineTemps[0][i]-o4.FineTemps[0][i]) / o4.FineTemps[0][i]
	}
	mean := errSum / float64(len(o4.FineTemps[0]))
	if mean > 0.01 {
		t.Fatalf("2RM(m=2) vs 4RM mean relative error %.4f too large", mean)
	}
	// Flow-side quantities are identical by construction.
	if math.Abs(o2.Qsys-o4.Qsys) > 1e-12 {
		t.Fatalf("Qsys differ: %g vs %g", o2.Qsys, o4.Qsys)
	}
}

func TestErrorGrowsWithCellSize(t *testing.T) {
	s := smallStack(t, 1.5, 6)
	n := network.Straight(d21, grid.SideWest, 1)
	m4, err := rm4.New(s, []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	o4, err := m4.Simulate(8e3)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := func(mm int) float64 {
		o2, err := model2(t, s, n, mm).Simulate(8e3)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range o4.FineTemps[0] {
			sum += math.Abs(o2.FineTemps[0][i]-o4.FineTemps[0][i]) / o4.FineTemps[0][i]
		}
		return sum / float64(len(o4.FineTemps[0]))
	}
	e2, e7 := meanErr(2), meanErr(7)
	if e7 <= e2 {
		t.Fatalf("error should grow with cell size: m=2 %.5f vs m=7 %.5f", e2, e7)
	}
}

func TestTreeNetwork(t *testing.T) {
	big := grid.Dims{NX: 31, NY: 31}
	s, err := stack.NewDieStack(stack.Config{Dims: big, ChannelHeight: 200e-6},
		[]*power.Map{power.Hotspots(big, 4, 3, 0.6, 2.0)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := network.Tree(big, network.UniformTreeSpec(big, 2, network.Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(s, []*network.Network{tr}, 3, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Simulate(20e3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tmax <= s.TinK || math.IsNaN(out.Tmax) {
		t.Fatalf("bad Tmax %g", out.Tmax)
	}
	carried, injected, err := m.EnergyBalance(20e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-3*injected {
		t.Fatalf("tree energy balance: %g vs %g", carried, injected)
	}
}

func TestMorePressureLowersPeak(t *testing.T) {
	s := smallStack(t, 1.5, 7)
	m := model2(t, s, network.Straight(d21, grid.SideWest, 1), 3)
	lo, err := m.Simulate(3e3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.Simulate(30e3)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Tmax >= lo.Tmax {
		t.Fatalf("Tmax should fall with pressure: %g vs %g", hi.Tmax, lo.Tmax)
	}
}

func TestThreeDie(t *testing.T) {
	maps := []*power.Map{
		power.Hotspots(d21, 1, 2, 0.5, 0.7),
		power.Hotspots(d21, 2, 2, 0.5, 0.7),
		power.Hotspots(d21, 3, 2, 0.5, 0.7),
	}
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6}, maps)
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	m, err := New(s, []*network.Network{n, n.Clone()}, 3, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SourceTemps) != 3 {
		t.Fatalf("want 3 source fields, got %d", len(out.SourceTemps))
	}
}

func TestRaggedTiling(t *testing.T) {
	// m=4 on a 21-cell grid leaves a ragged final coarse cell; the model
	// must stay consistent.
	s := smallStack(t, 1.0, 8)
	m := model2(t, s, network.Straight(d21, grid.SideWest, 1), 4)
	if m.CoarseDims() != (grid.Dims{NX: 6, NY: 6}) {
		t.Fatalf("coarse dims %v", m.CoarseDims())
	}
	carried, injected, err := m.EnergyBalance(9e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-3*injected {
		t.Fatalf("ragged energy balance: %g vs %g", carried, injected)
	}
}

func TestZeroFlowErrors(t *testing.T) {
	s := smallStack(t, 1.0, 9)
	m := model2(t, s, network.Straight(d21, grid.SideWest, 1), 3)
	if _, err := m.Simulate(0); err == nil {
		t.Fatal("zero pressure should error")
	}
}

func TestBadInputs(t *testing.T) {
	s := smallStack(t, 1.0, 10)
	n := network.Straight(d21, grid.SideWest, 1)
	if _, err := New(s, []*network.Network{n}, 0, thermal.Central); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := New(s, nil, 2, thermal.Central); err == nil {
		t.Error("missing nets should fail")
	}
	if _, err := New(s, []*network.Network{network.New(d21)}, 2, thermal.Central); err == nil {
		t.Error("illegal network should fail")
	}
}

func TestNameIncludesFactor(t *testing.T) {
	s := smallStack(t, 1.0, 11)
	m := model2(t, s, network.Straight(d21, grid.SideWest, 1), 4)
	if m.Name() != "2RM/m=4" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestLateralSLVariantImprovesTreeAccuracy(t *testing.T) {
	// The LateralSL extension should cut the error floor against 4RM on
	// sparse tree networks (the dominant error source at small cells is
	// the paper variant's side-wall folding).
	big := grid.Dims{NX: 31, NY: 31}
	s, err := stack.NewDieStack(stack.Config{Dims: big, ChannelHeight: 200e-6},
		[]*power.Map{power.Hotspots(big, 4, 3, 0.6, 2.0)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := network.Tree(big, network.UniformTreeSpec(big, 2, network.Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	m4, err := rm4.New(s, []*network.Network{tr}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	o4, err := m4.Simulate(20e3)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := func(variant Variant) float64 {
		mod, err := New(s, []*network.Network{tr}, 2, thermal.Central)
		if err != nil {
			t.Fatal(err)
		}
		mod.Variant = variant
		// Rebuilding is unnecessary: the variant is applied at assembly.
		o2, err := mod.Simulate(20e3)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range o4.FineTemps[0] {
			sum += math.Abs(o2.FineTemps[0][i]-o4.FineTemps[0][i]) / o4.FineTemps[0][i]
		}
		return sum / float64(len(o4.FineTemps[0]))
	}
	paper, lateral := meanErr(Paper2RM), meanErr(LateralSL)
	t.Logf("tree m=2 error: paper %.4f%%, lateral-sl %.4f%%", 100*paper, 100*lateral)
	if lateral >= paper {
		t.Fatalf("LateralSL should improve tree accuracy: %.5f vs %.5f", lateral, paper)
	}
}

func TestLateralSLEnergyBalance(t *testing.T) {
	s := smallStack(t, 2.0, 33)
	mod := model2(t, s, network.Straight(d21, grid.SideWest, 1), 3)
	mod.Variant = LateralSL
	carried, injected, err := mod.EnergyBalance(8e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-injected) > 1e-3*injected {
		t.Fatalf("LateralSL energy balance: %g vs %g", carried, injected)
	}
}
