package rm2

// Transient-scenario surface of the 2RM model, mirroring rm4's: power
// schedules arrive on the fine grid and are aggregated onto the coarse
// thermal cells, so the same scenario drives both models and their
// traces stay comparable.

import (
	"fmt"

	"lcn3d/internal/power"
	"lcn3d/internal/thermal"
)

// Transient compiles an implicit-Euler stepper at pump pressure psys and
// time step dt, sharing the model's compiled thermal system. The stepper
// owns a private copy, so steady probes on the model stay unaffected.
func (m *Model) Transient(psys, dt float64) (*thermal.TransientSystem, error) {
	if err := m.checkFlow(psys); err != nil {
		return nil, err
	}
	fact, err := m.factored()
	if err != nil {
		return nil, err
	}
	return fact.Transient(m.caps, dt, psys)
}

// Tin returns the coolant inlet temperature, K.
func (m *Model) Tin() float64 { return m.Stk.TinK }

// BasePowers returns clones of the source layers' power maps (fine grid,
// bottom to top) — schedules mutate these; the model aggregates the
// result onto its coarse cells in PowerDelta.
func (m *Model) BasePowers() []*power.Map {
	var out []*power.Map
	for _, l := range m.Stk.SourceLayers() {
		out = append(out, m.Stk.Layers[l].Power.Clone())
	}
	return out
}

// PowerDelta converts replacement fine-grid source-layer power maps into
// the RHS delta of the coarse system: each coarse solid cell receives
// the summed fine-cell difference against the assembled base powers.
func (m *Model) PowerDelta(maps []*power.Map) ([]float64, error) {
	src := m.Stk.SourceLayers()
	if len(maps) != len(src) {
		return nil, fmt.Errorf("rm2: %d power maps for %d source layers", len(maps), len(src))
	}
	d := m.Stk.Dims
	cd := m.til.Coarse
	delta := make([]float64, m.NumNodes())
	for k, l := range src {
		if maps[k].Dims != d {
			return nil, fmt.Errorf("rm2: power map %d is %dx%d, want %dx%d",
				k, maps[k].Dims.NX, maps[k].Dims.NY, d.NX, d.NY)
		}
		base := m.Stk.Layers[l].Power
		for cy := 0; cy < cd.NY; cy++ {
			for cx := 0; cx < cd.NX; cx++ {
				sn := m.solidNode[l][cd.Index(cx, cy)]
				if sn < 0 {
					continue
				}
				var dq float64
				m.til.EachFine(cx, cy, func(x, y int) {
					i := d.Index(x, y)
					dq += maps[k].W[i] - base.W[i]
				})
				delta[sn] += dq
			}
		}
	}
	return delta, nil
}

// PeakDelta derives the per-step scalar metrics (peak source temperature
// and max per-layer spread) from a full transient field.
func (m *Model) PeakDelta(field []float64) (tmax, deltaT float64) {
	cd := m.til.Coarse
	var layers [][]float64
	for _, l := range m.Stk.SourceLayers() {
		vals := make([]float64, 0, cd.N())
		for _, sn := range m.solidNode[l] {
			if sn >= 0 {
				vals = append(vals, field[sn])
			}
		}
		layers = append(layers, vals)
	}
	met := thermal.ComputeMetrics(layers)
	return met.Tmax, met.DeltaT
}

// PumpWork returns the total coolant throughput (m³/s) and pumping power
// (W) at pressure psys; both are linear in the pressure.
func (m *Model) PumpWork(psys float64) (qsys, wpump float64) {
	for _, ref := range m.refFlows {
		qsys += ref.Qsys * psys
	}
	return qsys, psys * qsys
}
