package rm2

import (
	"math"
	"testing"
	"testing/quick"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// Structural property tests for the coarse model.

func TestTemperatureRiseLinearInPower2RM(t *testing.T) {
	f := func(seed int64) bool {
		pm := power.Hotspots(d21, seed, 2, 0.5, 1.0)
		pm2 := pm.Clone()
		for i := range pm2.W {
			pm2.W[i] *= 3
		}
		build := func(p *power.Map) *Model {
			s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
				[]*power.Map{p.Clone(), p})
			if err != nil {
				return nil
			}
			m, err := New(s, []*network.Network{network.Straight(d21, grid.SideWest, 1)}, 3, thermal.Central)
			if err != nil {
				return nil
			}
			return m
		}
		m1, m2 := build(pm), build(pm2)
		if m1 == nil || m2 == nil {
			return false
		}
		o1, err := m1.Simulate(8e3)
		if err != nil {
			return false
		}
		o2, err := m2.Simulate(8e3)
		if err != nil {
			return false
		}
		return math.Abs(o2.DeltaT-3*o1.DeltaT) < 1e-4*(1+3*o1.DeltaT) &&
			math.Abs((o2.Tmax-300)-3*(o1.Tmax-300)) < 1e-4*(1+3*(o1.Tmax-300))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarserIsNeverBigger(t *testing.T) {
	// Node count decreases monotonically with the coarsening factor.
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{power.Hotspots(d21, 1, 2, 0.5, 1.0), power.Hotspots(d21, 2, 2, 0.5, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	prev := 1 << 30
	for _, m := range []int{1, 2, 3, 4, 5, 7} {
		mod, err := New(s, []*network.Network{n}, m, thermal.Central)
		if err != nil {
			t.Fatal(err)
		}
		if mod.NumNodes() > prev {
			t.Fatalf("m=%d has %d nodes, more than finer %d", m, mod.NumNodes(), prev)
		}
		prev = mod.NumNodes()
	}
}

func TestConductingPathsCountsStraightChannels(t *testing.T) {
	// With channels on every even row and m=2, every 2x2 coarse cell in
	// the channel layer holds one liquid and one solid row; a horizontal
	// interface half-region (one column, one cell high... actually two
	// cells wide) can never form a complete solid column, so the
	// north-south solid conductance uses zero paths; east-west halves are
	// full solid rows half the time.
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{power.Hotspots(d21, 1, 2, 0.5, 1.0), power.Hotspots(d21, 2, 2, 0.5, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	mod, err := New(s, []*network.Network{n}, 2, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	ci := mod.ch[0]
	cd := mod.til.Coarse
	for cy := 0; cy < cd.NY-1; cy++ {
		for cx := 0; cx < cd.NX; cx++ {
			c := cd.Index(cx, cy)
			// With a channel on every even row, every coarse cell's
			// south half-region (its bottom row, an even row) is liquid,
			// so at least one side of each north interface has zero
			// complete paths and the series conductance vanishes —
			// the porous-medium behavior of parallel fins.
			p := ci.pathsN[c]
			if p[0] != 0 && p[1] != 0 {
				t.Fatalf("north interface at (%d,%d) = %v should be blocked on one side", cx, cy, p)
			}
		}
	}
	// East-west: solid rows (odd rows) form complete paths.
	foundEW := false
	for cy := 0; cy < cd.NY; cy++ {
		for cx := 0; cx < cd.NX-1; cx++ {
			if p := ci.pathsE[cd.Index(cx, cy)]; p[0] > 0 && p[1] > 0 {
				foundEW = true
			}
		}
	}
	if !foundEW {
		t.Fatal("expected east-west conducting paths along solid rows")
	}
}

func TestAggregatesMatchNetwork(t *testing.T) {
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{power.Hotspots(d21, 1, 2, 0.5, 1.0), power.Hotspots(d21, 2, 2, 0.5, 1.0)})
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	mod, err := New(s, []*network.Network{n}, 4, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	ci := mod.ch[0]
	totLiquid, totSolid := 0, 0
	for c := range ci.nLiquid {
		totLiquid += ci.nLiquid[c]
		totSolid += ci.nSolid[c]
	}
	if totLiquid != n.NumLiquid() {
		t.Fatalf("aggregated liquid %d != network %d", totLiquid, n.NumLiquid())
	}
	if totLiquid+totSolid != d21.N() {
		t.Fatalf("liquid+solid %d != cells %d", totLiquid+totSolid, d21.N())
	}
	// Inlet aggregate equals the reference solution's system flow.
	var qin float64
	for _, q := range ci.qIn {
		qin += q
	}
	if math.Abs(qin-mod.refFlows[0].Qsys) > 1e-12 {
		t.Fatalf("aggregated inlet flow %g != Qsys %g", qin, mod.refFlows[0].Qsys)
	}
}
