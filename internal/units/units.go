// Package units collects the physical constants, material properties and
// empirical correlations used by the flow and thermal models.
//
// All quantities are in SI units: meters, kilograms, seconds, kelvins,
// watts, pascals. Conductances are W/K (thermal) or m^3/(s*Pa) (fluidic).
package units

import (
	"fmt"
	"math"
)

// Material is a homogeneous solid with isotropic properties.
type Material struct {
	Name string
	K    float64 // thermal conductivity, W/(m*K)
	Cv   float64 // volumetric heat capacity, J/(m^3*K)
}

// Standard stack materials. Conductivities follow the values used by
// 3D-ICE-style compact models around the 300-360 K operating range.
var (
	Silicon = Material{Name: "silicon", K: 130, Cv: 1.628e6}
	// BEOL is the back-end-of-line metal/dielectric stack treated as one
	// effective material.
	BEOL = Material{Name: "beol", K: 2.25, Cv: 2.175e6}
	// Copper is provided for TSV-aware extensions.
	Copper = Material{Name: "copper", K: 385, Cv: 3.422e6}
)

// Coolant holds the single-phase liquid properties. The paper assumes
// constant properties (water near the 300 K inlet temperature).
type Coolant struct {
	Name string
	Mu   float64 // dynamic viscosity, Pa*s
	K    float64 // thermal conductivity, W/(m*K)
	Cv   float64 // volumetric heat capacity, J/(m^3*K)
}

// Water is the default coolant: properties of liquid water at 300 K.
var Water = Coolant{Name: "water", Mu: 8.9e-4, K: 0.613, Cv: 4.18e6}

// HydraulicDiameter returns D_h = 2*w*h/(w+h) for a rectangular duct of
// width w and height h.
func HydraulicDiameter(w, h float64) float64 {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("units: invalid duct %g x %g", w, h))
	}
	return 2 * w * h / (w + h)
}

// FluidConductance returns the Hagen-Poiseuille conductance
// g = D_h^2 * A_c / (32 * l * mu) of a duct segment of length l (paper
// Eq. (1)), so that Q = g * (P_i - P_j).
func FluidConductance(w, h, l, mu float64) float64 {
	dh := HydraulicDiameter(w, h)
	ac := w * h
	return dh * dh * ac / (32 * l * mu)
}

// nusseltTable lists fully developed laminar Nusselt numbers for
// rectangular ducts with four heated walls under the H1 boundary
// condition, from Shah & London, "Laminar Flow Forced Convection in
// Ducts" (the paper's reference [22]). Entries are (aspect ratio
// min(w,h)/max(w,h), Nu).
var nusseltTable = []struct{ alpha, nu float64 }{
	{0.0, 8.235},
	{0.1, 6.785},
	{0.2, 5.738},
	{0.25, 5.331},
	{1.0 / 3.0, 4.795},
	{0.5, 4.123},
	{0.75, 3.707},
	{1.0, 3.599},
}

// Nusselt returns the fully developed laminar Nusselt number for a
// rectangular duct of width w and height h, linearly interpolated in the
// Shah-London table on aspect ratio min/max.
func Nusselt(w, h float64) float64 {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("units: invalid duct %g x %g", w, h))
	}
	alpha := w / h
	if alpha > 1 {
		alpha = 1 / alpha
	}
	tab := nusseltTable
	for i := 1; i < len(tab); i++ {
		if alpha <= tab[i].alpha {
			t := (alpha - tab[i-1].alpha) / (tab[i].alpha - tab[i-1].alpha)
			return tab[i-1].nu + t*(tab[i].nu-tab[i-1].nu)
		}
	}
	return tab[len(tab)-1].nu
}

// HeatTransferCoeff returns h_conv = Nu * k_liquid / D_h for a
// rectangular duct, in W/(m^2*K).
func HeatTransferCoeff(c Coolant, w, h float64) float64 {
	return Nusselt(w, h) * c.K / HydraulicDiameter(w, h)
}

// SeriesG combines two conductances in series: g = g1*g2/(g1+g2)
// (paper Eqs. (5) and (7)). A zero conductance short-circuits to zero.
func SeriesG(g1, g2 float64) float64 {
	if g1 <= 0 || g2 <= 0 {
		return 0
	}
	return g1 * g2 / (g1 + g2)
}

// Kelvin converts degrees Celsius to kelvins.
func Kelvin(celsius float64) float64 { return celsius + 273.15 }

// ReynoldsNumber returns Re = rho*v*D_h/mu given the volumetric flow Q
// through a rectangular duct. Used to validate that solutions stay in the
// laminar regime the model assumes.
func ReynoldsNumber(c Coolant, rho, q, w, h float64) float64 {
	v := q / (w * h)
	return rho * math.Abs(v) * HydraulicDiameter(w, h) / c.Mu
}
