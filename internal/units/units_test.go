package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestHydraulicDiameterSquare(t *testing.T) {
	// For a square duct, D_h equals the side length.
	if dh := HydraulicDiameter(1e-4, 1e-4); !almostEqual(dh, 1e-4, 1e-12) {
		t.Fatalf("square duct D_h = %g, want 1e-4", dh)
	}
}

func TestHydraulicDiameterRect(t *testing.T) {
	// w=100um, h=200um: D_h = 2*1e-4*2e-4/3e-4 = 1.3333e-4.
	dh := HydraulicDiameter(1e-4, 2e-4)
	if !almostEqual(dh, 4.0/3.0*1e-4, 1e-9) {
		t.Fatalf("D_h = %g, want %g", dh, 4.0/3.0*1e-4)
	}
}

func TestHydraulicDiameterSymmetric(t *testing.T) {
	f := func(w, h float64) bool {
		w = 1e-5 + math.Abs(math.Mod(w, 1e3))
		h = 1e-5 + math.Abs(math.Mod(h, 1e3))
		if math.IsNaN(w) || math.IsNaN(h) {
			return true
		}
		return almostEqual(HydraulicDiameter(w, h), HydraulicDiameter(h, w), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFluidConductanceBallpark(t *testing.T) {
	// The sanity check from DESIGN.md: a 100um x 200um water channel cell
	// of length 100um has g ~ 1.25e-10 m^3/(s*Pa).
	g := FluidConductance(1e-4, 2e-4, 1e-4, Water.Mu)
	if g < 1.1e-10 || g > 1.4e-10 {
		t.Fatalf("g = %g, want ~1.25e-10", g)
	}
}

func TestFluidConductanceScalesInverselyWithLength(t *testing.T) {
	g1 := FluidConductance(1e-4, 2e-4, 1e-4, Water.Mu)
	g2 := FluidConductance(1e-4, 2e-4, 2e-4, Water.Mu)
	if !almostEqual(g1, 2*g2, 1e-12) {
		t.Fatalf("doubling length should halve conductance: %g vs %g", g1, g2)
	}
}

func TestNusseltTableEndpoints(t *testing.T) {
	if nu := Nusselt(1e-4, 1e-4); !almostEqual(nu, 3.599, 1e-6) {
		t.Fatalf("square duct Nu = %g, want 3.599", nu)
	}
	// Very flat duct approaches the parallel-plate limit 8.235.
	if nu := Nusselt(1e-6, 1.0); nu < 8.0 || nu > 8.3 {
		t.Fatalf("flat duct Nu = %g, want near 8.235", nu)
	}
}

func TestNusseltMonotoneInAspect(t *testing.T) {
	// Nu decreases as the duct becomes more square.
	prev := math.Inf(1)
	for _, alpha := range []float64{0.05, 0.15, 0.3, 0.5, 0.8, 1.0} {
		nu := Nusselt(alpha, 1.0)
		if nu > prev {
			t.Fatalf("Nu not monotone at alpha=%g: %g > %g", alpha, nu, prev)
		}
		prev = nu
	}
}

func TestNusseltSymmetric(t *testing.T) {
	if !almostEqual(Nusselt(1e-4, 4e-4), Nusselt(4e-4, 1e-4), 1e-12) {
		t.Fatal("Nusselt should depend only on aspect ratio")
	}
}

func TestHeatTransferCoeffBallpark(t *testing.T) {
	// 100um x 200um water channel: h ~ Nu*k/D_h ~ 4.1*0.613/1.33e-4 ~ 1.9e4.
	h := HeatTransferCoeff(Water, 1e-4, 2e-4)
	if h < 1.2e4 || h > 3.5e4 {
		t.Fatalf("h_conv = %g, want O(2e4)", h)
	}
}

func TestSeriesG(t *testing.T) {
	if g := SeriesG(2, 2); !almostEqual(g, 1, 1e-12) {
		t.Fatalf("series of equal conductances should halve: %g", g)
	}
	if g := SeriesG(0, 5); g != 0 {
		t.Fatalf("zero conductance should dominate series: %g", g)
	}
	if g := SeriesG(1e12, 3); !almostEqual(g, 3, 1e-9) {
		t.Fatalf("huge conductance in series should vanish: %g", g)
	}
}

func TestSeriesGPropertyBounded(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1e6)) + 1e-9
		b = math.Abs(math.Mod(b, 1e6)) + 1e-9
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		g := SeriesG(a, b)
		return g <= a && g <= b && g > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKelvin(t *testing.T) {
	if k := Kelvin(85); !almostEqual(k, 358.15, 1e-12) {
		t.Fatalf("85C = %g K, want 358.15", k)
	}
}

func TestReynoldsLaminarAtBenchmarkFlow(t *testing.T) {
	// Per-channel flow in the case-1 baseline is ~1.6e-8 m^3/s; the flow
	// must be laminar for the Hagen-Poiseuille model to apply.
	re := ReynoldsNumber(Water, 998, 1.6e-8, 1e-4, 2e-4)
	if re > 2300 {
		t.Fatalf("Re = %g, not laminar", re)
	}
	if re < 1 {
		t.Fatalf("Re = %g suspiciously small", re)
	}
}

func TestMaterialsSane(t *testing.T) {
	for _, m := range []Material{Silicon, BEOL, Copper} {
		if m.K <= 0 || m.Cv <= 0 || m.Name == "" {
			t.Errorf("material %+v has invalid properties", m)
		}
	}
	if Water.Mu <= 0 || Water.K <= 0 || Water.Cv <= 0 {
		t.Error("water properties invalid")
	}
}
