package sparse

import "sort"

// RCM computes a reverse Cuthill-McKee ordering of the matrix graph and
// returns the permutation p with p[old] = new. The ordering clusters each
// row's column indices near the diagonal, which shrinks the bandwidth of
// the assembled system: ILU(0) factors become more local and the x-vector
// gathers of SpMV stay inside cache lines. The traversal is fully
// deterministic — ties are broken by (degree, index) — so renumbered
// assemblies are bitwise reproducible.
func RCM(m *CSR) []int {
	n := m.N
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = m.RowPtr[i+1] - m.RowPtr[i]
	}
	perm := make([]int, n) // filled in Cuthill-McKee order
	placed := make([]bool, n)
	next := 0
	var frontier []int

	push := func(i int) {
		placed[i] = true
		perm[next] = i
		next++
	}
	// lessDeg orders candidate nodes by (degree, index) for determinism.
	lessDeg := func(a, b int) bool {
		if deg[a] != deg[b] {
			return deg[a] < deg[b]
		}
		return a < b
	}

	for next < n {
		// Start each component from its minimum-degree node (a cheap
		// pseudo-peripheral choice, deterministic).
		start := -1
		for i := 0; i < n; i++ {
			if !placed[i] && (start < 0 || lessDeg(i, start)) {
				start = i
			}
		}
		push(start)
		for head := next - 1; head < next; head++ {
			i := perm[head]
			frontier = frontier[:0]
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if j := m.Cols[k]; j != i && !placed[j] {
					frontier = append(frontier, j)
					placed[j] = true // reserve; pushed below in order
				}
			}
			sort.Slice(frontier, func(a, b int) bool { return lessDeg(frontier[a], frontier[b]) })
			for _, j := range frontier {
				perm[next] = j
				next++
			}
		}
	}

	// Reverse (the "R" in RCM) and invert into old -> new form.
	p := make([]int, n)
	for newIdx, old := range perm {
		p[old] = n - 1 - newIdx
	}
	return p
}

// InversePerm inverts p[old] = new into q[new] = old.
func InversePerm(p []int) []int {
	q := make([]int, len(p))
	for old, nw := range p {
		q[nw] = old
	}
	return q
}

// PermuteCSR returns B with B[p[i], p[j]] = A[i, j], i.e. the matrix of
// the same operator after renumbering the unknowns by p (p[old] = new).
// Rows keep strictly increasing column order.
func PermuteCSR(m *CSR, p []int) *CSR {
	n := m.N
	q := InversePerm(p)
	b := &CSR{N: n, RowPtr: make([]int, n+1),
		Cols: make([]int, m.NNZ()), Vals: make([]float64, m.NNZ())}
	for nw := 0; nw < n; nw++ {
		old := q[nw]
		b.RowPtr[nw+1] = b.RowPtr[nw] + (m.RowPtr[old+1] - m.RowPtr[old])
	}
	// Fill each new row, then sort it by column (the permuted columns of a
	// sorted row are not sorted in general; rows are short, so insertion
	// sort is the right tool).
	for nw := 0; nw < n; nw++ {
		old := q[nw]
		at := b.RowPtr[nw]
		for k := m.RowPtr[old]; k < m.RowPtr[old+1]; k++ {
			b.Cols[at] = p[m.Cols[k]]
			b.Vals[at] = m.Vals[k]
			at++
		}
		insertionSortRow(b.Cols[b.RowPtr[nw]:at], b.Vals[b.RowPtr[nw]:at])
	}
	return b
}

// PermutedBandwidth returns the bandwidth the matrix would have after
// renumbering by p (p[old] = new), without materializing the permuted
// matrix: max over stored entries of |p[i] - p[j]|.
func PermutedBandwidth(m *CSR, p []int) int {
	bw := 0
	for i := 0; i < m.N; i++ {
		pi := p[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := pi - p[m.Cols[k]]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// PermuteVec scatters src into dst under p (p[old] = new):
// dst[p[i]] = src[i]. dst and src must not alias.
func PermuteVec(dst, src []float64, p []int) {
	for i, v := range src {
		dst[p[i]] = v
	}
}

// PermuteInts scatters an integer vector the same way PermuteVec does.
func PermuteInts(dst, src []int, p []int) {
	for i, v := range src {
		dst[p[i]] = v
	}
}

// Bandwidth returns the maximum |i - j| over stored entries, the quantity
// RCM minimizes heuristically.
func Bandwidth(m *CSR) int {
	bw := 0
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d := m.Cols[k] - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
