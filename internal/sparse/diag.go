package sparse

import "fmt"

// findInRow locates column j in the sorted row i, returning the
// value-array index or -1 when the entry is not stored.
func (c *CSR) findInRow(i, j int) int {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.Cols[mid] == j:
			return mid
		case c.Cols[mid] < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// DiagIndices returns, for each row i, the value-array index of the
// stored (i, i) entry. It errors when a row has no diagonal slot; callers
// that need one in every row should pass the matrix through WithDiagonal
// first.
func (c *CSR) DiagIndices() ([]int, error) {
	idx := make([]int, c.N)
	for i := 0; i < c.N; i++ {
		k := c.findInRow(i, i)
		if k < 0 {
			return nil, fmt.Errorf("sparse: row %d has no stored diagonal entry", i)
		}
		idx[i] = k
	}
	return idx, nil
}

// WithDiagonal returns the matrix itself when every row already stores a
// diagonal entry, or an independent copy with explicit zero-valued (i, i)
// slots inserted where missing. Builder.Add cannot create such slots (it
// drops exact zeros), and the transient stepper needs an addressable
// diagonal in every row to fold the C/dt capacity term into.
func WithDiagonal(c *CSR) *CSR {
	missing := 0
	for i := 0; i < c.N; i++ {
		if c.findInRow(i, i) < 0 {
			missing++
		}
	}
	if missing == 0 {
		return c
	}
	out := &CSR{N: c.N, RowPtr: make([]int, c.N+1),
		Cols: make([]int, 0, len(c.Cols)+missing),
		Vals: make([]float64, 0, len(c.Vals)+missing)}
	for i := 0; i < c.N; i++ {
		placed := false
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if !placed && c.Cols[k] >= i {
				if c.Cols[k] > i {
					out.Cols = append(out.Cols, i)
					out.Vals = append(out.Vals, 0)
				}
				placed = true
			}
			out.Cols = append(out.Cols, c.Cols[k])
			out.Vals = append(out.Vals, c.Vals[k])
		}
		if !placed {
			out.Cols = append(out.Cols, i)
			out.Vals = append(out.Vals, 0)
		}
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}
