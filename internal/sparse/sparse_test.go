package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall() *CSR {
	// [ 2 -1  0 ]
	// [-1  2 -1 ]
	// [ 0 -1  2 ]
	b := NewBuilder(3)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	b.Add(0, 0, 1)
	b.Add(2, 2, 1)
	return b.Build()
}

func TestBuilderAccumulatesDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(1, 0, -1)
	b.Add(1, 0, 1) // cancels to zero but stays stored
	m := b.Build()
	if got := m.At(0, 0); got != 3.5 {
		t.Fatalf("At(0,0) = %g, want 3.5", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %g, want 0", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("missing entry should read 0, got %g", got)
	}
}

func TestBuilderSkipsZeros(t *testing.T) {
	b := NewBuilder(4)
	b.Add(1, 2, 0)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("zero adds should not be stored, nnz=%d", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestMulVecTridiagonal(t *testing.T) {
	m := buildSmall()
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{0, 0, 4}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestDiag(t *testing.T) {
	m := buildSmall()
	d := m.Diag()
	for i, want := range []float64{2, 2, 2} {
		if d[i] != want {
			t.Fatalf("diag[%d] = %g, want %g", i, d[i], want)
		}
	}
}

func TestColsSortedWithinRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(20)
	for k := 0; k < 300; k++ {
		b.Add(rng.Intn(20), rng.Intn(20), rng.NormFloat64())
	}
	m := b.Build()
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k-1] >= m.Cols[k] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(15)
	for k := 0; k < 120; k++ {
		b.Add(rng.Intn(15), rng.Intn(15), rng.NormFloat64())
	}
	m := b.Build()
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("double transpose changed nnz: %d vs %d", tt.NNZ(), m.NNZ())
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if math.Abs(m.At(i, j)-tt.At(i, j)) > 1e-15 {
				t.Fatalf("double transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeMulVecAgree(t *testing.T) {
	// Property: y^T (A x) == x^T (A^T y) for random A, x, y.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10
		b := NewBuilder(n)
		for k := 0; k < 40; k++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		m := b.Build()
		mt := m.Transpose()
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, n)
		aty := make([]float64, n)
		m.MulVec(ax, x)
		mt.MulVec(aty, y)
		var s1, s2 float64
		for i := range x {
			s1 += y[i] * ax[i]
			s2 += x[i] * aty[i]
		}
		return math.Abs(s1-s2) < 1e-9*(1+math.Abs(s1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !buildSmall().IsSymmetric(1e-12) {
		t.Fatal("tridiagonal stamp matrix should be symmetric")
	}
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	if b.Build().IsSymmetric(1e-12) {
		t.Fatal("upper-only matrix should not be symmetric")
	}
}

func TestAddSymStampConservation(t *testing.T) {
	// Property: a pure AddSym matrix has zero row sums (conductance
	// networks conserve flux), regardless of the stamps applied.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		b := NewBuilder(n)
		for k := 0; k < 30; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			b.AddSym(i, j, math.Abs(rng.NormFloat64()))
		}
		m := b.Build()
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		dst := make([]float64, n)
		m.MulVec(dst, ones)
		for _, v := range dst {
			if math.Abs(v) > 1e-10 {
				return false
			}
		}
		return m.IsSymmetric(1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMatchesAt(t *testing.T) {
	m := buildSmall()
	d := m.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[i][j] != m.At(i, j) {
				t.Fatalf("Dense[%d][%d] = %g, At = %g", i, j, d[i][j], m.At(i, j))
			}
		}
	}
}

func TestMulVecAutoMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path.
	n := 25000
	b := NewBuilder(n)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < n; i++ {
		b.Add(i, i, 2+rng.Float64())
		if i+1 < n {
			b.AddSym(i, i+1, rng.Float64())
		}
		b.Add(i, rng.Intn(n), rng.NormFloat64())
	}
	m := b.Build()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, n)
	parallel := make([]float64, n)
	m.MulVec(serial, x)
	m.MulVecAuto(parallel, x)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel SpMV differs at %d: %g vs %g", i, parallel[i], serial[i])
		}
	}
}

func TestMulVecAutoSmallStaysSerial(t *testing.T) {
	m := buildSmall()
	dst := make([]float64, 3)
	m.MulVecAuto(dst, []float64{1, 2, 3})
	want := []float64{0, 0, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecAuto[%d] = %g", i, dst[i])
		}
	}
}

func benchMatrix(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
		if i+100 < n {
			b.AddSym(i, i+100, -0.5)
		}
	}
	return b.Build()
}

func BenchmarkMulVecSerial(b *testing.B) {
	m := benchMatrix(80000)
	x := make([]float64, m.N)
	dst := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkMulVecAuto(b *testing.B) {
	m := benchMatrix(80000)
	x := make([]float64, m.N)
	dst := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecAuto(dst, x)
	}
}
