package sparse

import (
	"math/rand"
	"testing"
)

// shuffledGrid builds a 2D five-point grid operator with its unknowns
// scrambled by a random relabeling, giving RCM a genuinely wide band to
// shrink.
func shuffledGrid(rng *rand.Rand, nx, ny int) *CSR {
	n := nx * ny
	label := rng.Perm(n)
	b := NewBuilder(n)
	idx := func(x, y int) int { return label[y*nx+x] }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			b.Add(i, i, 4)
			if x+1 < nx {
				b.AddSym(i, idx(x+1, y), 1)
			}
			if y+1 < ny {
				b.AddSym(i, idx(x, y+1), 1)
			}
		}
	}
	return b.Build()
}

func isPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestRCMIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := shuffledGrid(rng, 11, 13)
	p := RCM(m)
	if !isPermutation(p) {
		t.Fatal("RCM did not return a permutation")
	}
	q := InversePerm(p)
	for old, nw := range p {
		if q[nw] != old {
			t.Fatalf("InversePerm broken at %d", old)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := shuffledGrid(rng, 20, 20)
	p := RCM(m)
	bw0 := Bandwidth(m)
	bw1 := PermutedBandwidth(m, p)
	// A shuffled 20×20 grid has bandwidth near n; RCM should recover
	// something close to the grid cross-section (~2·20).
	if bw1 >= bw0/2 {
		t.Fatalf("RCM bandwidth %d not well below original %d", bw1, bw0)
	}
	if bw1 > 4*20 {
		t.Fatalf("RCM bandwidth %d far above the grid cross-section", bw1)
	}
}

// TestPermuteCSRMatchesDense checks B[p[i], p[j]] = A[i, j] entrywise and
// that PermutedBandwidth predicts the materialized bandwidth exactly.
func TestPermuteCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := shuffledGrid(rng, 9, 7)
	p := RCM(m)
	b := PermuteCSR(m, p)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Cols[k]
			if got := b.At(p[i], p[j]); got != m.Vals[k] {
				t.Fatalf("B[p[%d],p[%d]] = %g, want %g", i, j, got, m.Vals[k])
			}
		}
	}
	if b.NNZ() != m.NNZ() {
		t.Fatalf("permutation changed nnz: %d vs %d", b.NNZ(), m.NNZ())
	}
	for i := 0; i < b.N; i++ {
		for k := b.RowPtr[i] + 1; k < b.RowPtr[i+1]; k++ {
			if b.Cols[k-1] >= b.Cols[k] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
	if got, want := PermutedBandwidth(m, p), Bandwidth(b); got != want {
		t.Fatalf("PermutedBandwidth = %d, materialized bandwidth = %d", got, want)
	}
}

// TestPermuteRoundTrip: permuting by p then by its inverse restores the
// original matrix and vectors bit for bit.
func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := shuffledGrid(rng, 8, 8)
	p := RCM(m)
	q := InversePerm(p)
	back := PermuteCSR(PermuteCSR(m, p), q)
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip changed nnz")
	}
	for i := range m.RowPtr {
		if back.RowPtr[i] != m.RowPtr[i] {
			t.Fatalf("round trip changed RowPtr[%d]", i)
		}
	}
	for k := range m.Cols {
		if back.Cols[k] != m.Cols[k] || back.Vals[k] != m.Vals[k] {
			t.Fatalf("round trip changed entry %d", k)
		}
	}
	v := make([]float64, m.N)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	fwd := make([]float64, m.N)
	rt := make([]float64, m.N)
	PermuteVec(fwd, v, p)
	PermuteVec(rt, fwd, q)
	for i := range v {
		if rt[i] != v[i] {
			t.Fatalf("vector round trip changed entry %d", i)
		}
	}
}

// TestRCMDeterministic: the ordering must be a pure function of the
// pattern — renumbered assemblies have to be bitwise reproducible.
func TestRCMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := shuffledGrid(rng, 14, 14)
	p1 := RCM(m)
	p2 := RCM(m)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("RCM not deterministic at %d", i)
		}
	}
}
