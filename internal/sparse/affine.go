package sparse

import "fmt"

// AffinePair holds the compiled union pattern of two matrices S and F of
// equal dimension and materializes M(s) = S + s·F by rewriting the value
// array of a single CSR in place. The sparsity pattern is merged once at
// construction; SetShift then costs one pass over the nonzeros with no
// sorting and no allocation. This is the pattern-preserving update path
// the thermal simulators use to re-evaluate one network at many system
// pressures: conduction entries (S) are pressure-independent while
// convection entries (F) scale linearly with P_sys.
type AffinePair struct {
	mat *CSR
	// base and slope are S's and F's values expanded onto the union
	// pattern (zero where a matrix has no entry), so SetShift is a single
	// fused multiply-add sweep.
	base, slope []float64
	shift       float64
}

// NewAffinePair merges the patterns of S and F. Both matrices are copied;
// later mutation of s or f does not affect the pair. The pair's matrix is
// initialized to shift 0, i.e. M = S.
func NewAffinePair(s, f *CSR) (*AffinePair, error) {
	if s.N != f.N {
		return nil, fmt.Errorf("sparse: affine pair dimension mismatch: %d vs %d", s.N, f.N)
	}
	n := s.N
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	// First pass: count union entries per row (both CSR rows are sorted by
	// column, so a linear merge suffices).
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = m.RowPtr[i] + mergedRowLen(s, f, i)
	}
	nnz := m.RowPtr[n]
	m.Cols = make([]int, nnz)
	m.Vals = make([]float64, nnz)
	p := &AffinePair{mat: m, base: make([]float64, nnz), slope: make([]float64, nnz)}
	// Second pass: fill columns and the expanded value arrays.
	for i := 0; i < n; i++ {
		k := m.RowPtr[i]
		a, aEnd := s.RowPtr[i], s.RowPtr[i+1]
		b, bEnd := f.RowPtr[i], f.RowPtr[i+1]
		for a < aEnd || b < bEnd {
			switch {
			case b >= bEnd || (a < aEnd && s.Cols[a] < f.Cols[b]):
				m.Cols[k] = s.Cols[a]
				p.base[k] = s.Vals[a]
				a++
			case a >= aEnd || f.Cols[b] < s.Cols[a]:
				m.Cols[k] = f.Cols[b]
				p.slope[k] = f.Vals[b]
				b++
			default: // same column in both
				m.Cols[k] = s.Cols[a]
				p.base[k] = s.Vals[a]
				p.slope[k] = f.Vals[b]
				a++
				b++
			}
			k++
		}
	}
	copy(m.Vals, p.base)
	return p, nil
}

// mergedRowLen counts the union of row i's column sets.
func mergedRowLen(s, f *CSR, i int) int {
	a, aEnd := s.RowPtr[i], s.RowPtr[i+1]
	b, bEnd := f.RowPtr[i], f.RowPtr[i+1]
	n := 0
	for a < aEnd || b < bEnd {
		switch {
		case b >= bEnd || (a < aEnd && s.Cols[a] < f.Cols[b]):
			a++
		case a >= aEnd || f.Cols[b] < s.Cols[a]:
			b++
		default:
			a++
			b++
		}
		n++
	}
	return n
}

// Matrix returns the pair's CSR. The same matrix object is rewritten in
// place by every SetShift call; callers that must retain a snapshot should
// use MatrixCopy.
func (p *AffinePair) Matrix() *CSR { return p.mat }

// Base returns S's values expanded onto the union pattern. The slice is
// owned by the pair and must not be modified; the multigrid
// preconditioner reads it to project the static block to the coarse grid
// once, independently of the flow scale.
func (p *AffinePair) Base() []float64 { return p.base }

// Slope returns F's values expanded onto the union pattern (read-only,
// see Base).
func (p *AffinePair) Slope() []float64 { return p.slope }

// Shift returns the s of the currently materialized M = S + s·F.
func (p *AffinePair) Shift() float64 { return p.shift }

// SetShift rewrites the matrix values in place to M = S + s·F. No
// allocation, no pattern work.
func (p *AffinePair) SetShift(s float64) {
	vals := p.mat.Vals
	for k := range vals {
		vals[k] = p.base[k] + s*p.slope[k]
	}
	p.shift = s
}

// SetBaseAt overwrites base (S) entries at the given value-array indices
// of the union pattern and refreshes the materialized matrix values under
// the current shift, all in place. The transient stepper uses it to fold
// a new C/dt capacity term into the diagonal when only the time step
// changes — no pattern work, no re-merge, no allocation.
func (p *AffinePair) SetBaseAt(idx []int, vals []float64) {
	for j, k := range idx {
		p.base[k] = vals[j]
		p.mat.Vals[k] = vals[j] + p.shift*p.slope[k]
	}
}

// MatrixCopy materializes an independent CSR at shift s, sharing nothing
// with the pair's in-place matrix. Used where callers retain the system
// beyond the next SetShift (e.g. the transient stepper).
func (p *AffinePair) MatrixCopy(s float64) *CSR {
	m := &CSR{N: p.mat.N, RowPtr: p.mat.RowPtr, Cols: p.mat.Cols,
		Vals: make([]float64, len(p.mat.Vals))}
	for k := range m.Vals {
		m.Vals[k] = p.base[k] + s*p.slope[k]
	}
	return m
}
