package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomCSR builds an n×n matrix with a random pattern (density d) plus a
// full diagonal, via the Builder.
func randomCSR(rng *rand.Rand, n int, d float64) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < d {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestAffinePairMatchesExplicitSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomCSR(rng, 40, 0.1)
	f := randomCSR(rng, 40, 0.07)
	p, err := NewAffinePair(s, f)
	if err != nil {
		t.Fatal(err)
	}
	sd, fd := s.Dense(), f.Dense()
	for _, shift := range []float64{0, 1, 0.5, 3.75e4, -2} {
		p.SetShift(shift)
		md := p.Matrix().Dense()
		for i := range md {
			for j := range md[i] {
				want := sd[i][j] + shift*fd[i][j]
				if math.Abs(md[i][j]-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("shift %g: M[%d][%d] = %g, want %g", shift, i, j, md[i][j], want)
				}
			}
		}
	}
}

func TestAffinePairUnionPattern(t *testing.T) {
	// S has entries F lacks and vice versa; the union must hold both.
	bs := NewBuilder(3)
	bs.Add(0, 0, 1)
	bs.Add(0, 2, 5)
	bs.Add(1, 1, 2)
	bs.Add(2, 2, 3)
	bf := NewBuilder(3)
	bf.Add(0, 1, 10)
	bf.Add(1, 1, 4)
	bf.Add(2, 0, 7)
	p, err := NewAffinePair(bs.Build(), bf.Build())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Matrix().NNZ(); got != 6 {
		t.Fatalf("union nnz = %d, want 6", got)
	}
	p.SetShift(2)
	m := p.Matrix()
	checks := map[[2]int]float64{
		{0, 0}: 1, {0, 1}: 20, {0, 2}: 5, {1, 1}: 10, {2, 0}: 14, {2, 2}: 3,
	}
	for rc, want := range checks {
		if got := m.At(rc[0], rc[1]); got != want {
			t.Fatalf("M[%d][%d] = %g, want %g", rc[0], rc[1], got, want)
		}
	}
	if p.Shift() != 2 {
		t.Fatalf("shift = %g", p.Shift())
	}
}

func TestAffinePairSetShiftReproducible(t *testing.T) {
	// Revisiting a shift must reproduce bitwise-identical values: the
	// memoized pressure probes rely on value updates being deterministic.
	rng := rand.New(rand.NewSource(3))
	s := randomCSR(rng, 25, 0.15)
	f := randomCSR(rng, 25, 0.15)
	p, err := NewAffinePair(s, f)
	if err != nil {
		t.Fatal(err)
	}
	p.SetShift(1.37e4)
	first := append([]float64(nil), p.Matrix().Vals...)
	p.SetShift(9.1e3)
	p.SetShift(1.37e4)
	for k, v := range p.Matrix().Vals {
		if v != first[k] {
			t.Fatalf("entry %d changed across revisit: %g vs %g", k, v, first[k])
		}
	}
}

func TestAffinePairMatrixCopyIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomCSR(rng, 10, 0.2)
	f := randomCSR(rng, 10, 0.2)
	p, err := NewAffinePair(s, f)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.MatrixCopy(2)
	want := append([]float64(nil), snap.Vals...)
	p.SetShift(17) // must not disturb the copy
	for k, v := range snap.Vals {
		if v != want[k] {
			t.Fatalf("copy mutated at %d", k)
		}
	}
	p.SetShift(2)
	for k, v := range p.Matrix().Vals {
		if v != snap.Vals[k] {
			t.Fatalf("copy disagrees with in-place matrix at %d: %g vs %g", k, snap.Vals[k], v)
		}
	}
}

func TestAffinePairDimensionMismatch(t *testing.T) {
	if _, err := NewAffinePair(NewBuilder(2).Build(), NewBuilder(3).Build()); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}
