// Package sparse implements the compressed sparse row (CSR) matrices used
// by the flow and thermal solvers. Matrices are assembled through a
// coordinate-format Builder that accumulates duplicate entries, which
// matches the natural finite-volume assembly pattern (each conductance
// contributes to up to four entries).
package sparse

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Builder accumulates matrix entries in coordinate form. Duplicate
// (row, col) entries are summed when the builder is compiled to CSR.
type Builder struct {
	n          int
	rows, cols []int
	vals       []float64
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add accumulates v into entry (r, c).
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d x %d matrix", r, c, b.n, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, r)
	b.cols = append(b.cols, c)
	b.vals = append(b.vals, v)
}

// AddSym accumulates a symmetric conductance g between nodes i and j:
// +g on both diagonals, -g on both off-diagonals. This is the standard
// nodal-analysis stamp shared by the fluidic and thermal networks.
func (b *Builder) AddSym(i, j int, g float64) {
	b.Add(i, i, g)
	b.Add(j, j, g)
	b.Add(i, j, -g)
	b.Add(j, i, -g)
}

// Build compiles the accumulated entries into a CSR matrix. Triplets
// are bucketed by row with a counting sort (stable, so duplicates sum
// in assembly order) and each short row is column-ordered with an
// insertion sort — no comparison sort over the full entry list.
func (b *Builder) Build() *CSR {
	n := b.n
	nnz := len(b.vals)
	count := make([]int, n+1)
	for _, r := range b.rows {
		count[r+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	pos := append([]int(nil), count[:n]...)
	cols := make([]int, nnz)
	vals := make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		p := pos[b.rows[k]]
		pos[b.rows[k]]++
		cols[p] = b.cols[k]
		vals[p] = b.vals[k]
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	out := 0
	for i := 0; i < n; i++ {
		lo, hi := count[i], count[i+1]
		insertionSortRow(cols[lo:hi], vals[lo:hi])
		rowStart := out
		for k := lo; k < hi; k++ {
			if out > rowStart && cols[out-1] == cols[k] {
				vals[out-1] += vals[k]
			} else {
				cols[out] = cols[k]
				vals[out] = vals[k]
				out++
			}
		}
		m.RowPtr[i+1] = out
	}
	m.Cols = cols[:out:out]
	m.Vals = vals[:out:out]
	return m
}

// insertionSortRow orders one CSR row's (column, value) pairs by column.
// Rows of the finite-volume systems hold a handful of entries, where a
// stable insertion sort beats any general comparison sort.
func insertionSortRow(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1] = cols[j]
			vals[j+1] = vals[j]
			j--
		}
		cols[j+1] = c
		vals[j+1] = v
	}
}

// CSR is a compressed sparse row matrix. Row i occupies
// Cols/Vals[RowPtr[i]:RowPtr[i+1]], with column indices strictly
// increasing inside each row.
type CSR struct {
	N      int
	RowPtr []int
	Cols   []int
	Vals   []float64

	// blk caches the sliced-row partition used by MulVecAuto. It depends
	// only on RowPtr (immutable after construction), so it is computed
	// lazily and shared across in-place value rewrites.
	blk atomic.Pointer[rowBlocks]
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// MulVec computes dst = M*x. dst and x must have length N and must not
// alias.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: %d, %d vs N=%d", len(dst), len(x), m.N))
	}
	m.mulRows(dst, x, 0, m.N)
}

// Diag extracts the main diagonal. Missing diagonal entries are zero.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] == i {
				d[i] = m.Vals[k]
				break
			}
		}
	}
	return d
}

// At returns entry (r, c) using binary search within the row.
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	k := sort.SearchInts(m.Cols[lo:hi], c) + lo
	if k < hi && m.Cols[k] == c {
		return m.Vals[k]
	}
	return 0
}

// Transpose returns M^T as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{N: m.N, RowPtr: make([]int, m.N+1),
		Cols: make([]int, m.NNZ()), Vals: make([]float64, m.NNZ())}
	for _, c := range m.Cols {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, m.N)
	copy(next, t.RowPtr[:m.N])
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.Cols[k]
			p := next[c]
			t.Cols[p] = r
			t.Vals[p] = m.Vals[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetric reports whether |M - M^T| <= tol entrywise, relative to the
// largest absolute entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	t := m.Transpose()
	var maxAbs float64
	for _, v := range m.Vals {
		if av := abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		return true
	}
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] != t.Cols[k] || abs(m.Vals[k]-t.Vals[k]) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// Dense expands the matrix into a row-major dense [][]float64, for tests
// and tiny direct solves only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i][m.Cols[k]] = m.Vals[k]
		}
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
