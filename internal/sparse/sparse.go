// Package sparse implements the compressed sparse row (CSR) matrices used
// by the flow and thermal solvers. Matrices are assembled through a
// coordinate-format Builder that accumulates duplicate entries, which
// matches the natural finite-volume assembly pattern (each conductance
// contributes to up to four entries).
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates matrix entries in coordinate form. Duplicate
// (row, col) entries are summed when the builder is compiled to CSR.
type Builder struct {
	n          int
	rows, cols []int
	vals       []float64
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Add accumulates v into entry (r, c).
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d x %d matrix", r, c, b.n, b.n))
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, r)
	b.cols = append(b.cols, c)
	b.vals = append(b.vals, v)
}

// AddSym accumulates a symmetric conductance g between nodes i and j:
// +g on both diagonals, -g on both off-diagonals. This is the standard
// nodal-analysis stamp shared by the fluidic and thermal networks.
func (b *Builder) AddSym(i, j int, g float64) {
	b.Add(i, i, g)
	b.Add(j, j, g)
	b.Add(i, j, -g)
	b.Add(j, i, -g)
}

// Build compiles the accumulated entries into a CSR matrix.
func (b *Builder) Build() *CSR {
	n := b.n
	// Count entries per row after duplicate merging. First sort triplets
	// by (row, col) with a permutation to keep memory reasonable.
	idx := make([]int, len(b.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool {
		i, j := idx[p], idx[q]
		if b.rows[i] != b.rows[j] {
			return b.rows[i] < b.rows[j]
		}
		return b.cols[i] < b.cols[j]
	})

	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	var lastR, lastC = -1, -1
	for _, k := range idx {
		r, c, v := b.rows[k], b.cols[k], b.vals[k]
		if r == lastR && c == lastC {
			m.Vals[len(m.Vals)-1] += v
			continue
		}
		m.Cols = append(m.Cols, c)
		m.Vals = append(m.Vals, v)
		m.RowPtr[r+1]++
		lastR, lastC = r, c
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed sparse row matrix. Row i occupies
// Cols/Vals[RowPtr[i]:RowPtr[i+1]], with column indices strictly
// increasing inside each row.
type CSR struct {
	N      int
	RowPtr []int
	Cols   []int
	Vals   []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// MulVec computes dst = M*x. dst and x must have length N and must not
// alias.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: %d, %d vs N=%d", len(dst), len(x), m.N))
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		dst[i] = s
	}
}

// Diag extracts the main diagonal. Missing diagonal entries are zero.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] == i {
				d[i] = m.Vals[k]
				break
			}
		}
	}
	return d
}

// At returns entry (r, c) using binary search within the row.
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	k := sort.SearchInts(m.Cols[lo:hi], c) + lo
	if k < hi && m.Cols[k] == c {
		return m.Vals[k]
	}
	return 0
}

// Transpose returns M^T as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{N: m.N, RowPtr: make([]int, m.N+1),
		Cols: make([]int, m.NNZ()), Vals: make([]float64, m.NNZ())}
	for _, c := range m.Cols {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, m.N)
	copy(next, t.RowPtr[:m.N])
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.Cols[k]
			p := next[c]
			t.Cols[p] = r
			t.Vals[p] = m.Vals[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetric reports whether |M - M^T| <= tol entrywise, relative to the
// largest absolute entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	t := m.Transpose()
	var maxAbs float64
	for _, v := range m.Vals {
		if av := abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		return true
	}
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Cols[k] != t.Cols[k] || abs(m.Vals[k]-t.Vals[k]) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// Dense expands the matrix into a row-major dense [][]float64, for tests
// and tiny direct solves only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i][m.Cols[k]] = m.Vals[k]
		}
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
