package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the system size above which MulVecAuto fans out to
// worker goroutines. Small systems (2RM-scale) stay serial: goroutine
// overhead would dominate their sub-millisecond solves.
const parallelThreshold = 20000

// spmvWorkers caps the goroutines MulVecAuto fans out to. Zero means
// "use runtime.GOMAXPROCS(0)". Stored atomically so the cap can be tuned
// while solves are running (benchmarks sweep it).
var spmvWorkers int32

// SetSpMVWorkers sets the worker cap for parallel SpMV. n <= 0 restores
// the default (GOMAXPROCS). BenchmarkMulVecAutoWorkers sweeps this to
// pick a cap for a given machine; on the 4RM systems (~10^5 rows) SpMV
// scales with the memory bandwidth, so GOMAXPROCS is the right default
// rather than a hard-coded core count.
func SetSpMVWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt32(&spmvWorkers, int32(n))
}

// SpMVWorkers reports the effective worker cap.
func SpMVWorkers() int {
	if n := int(atomic.LoadInt32(&spmvWorkers)); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// MulVecAuto computes dst = M*x like MulVec, fanning out across CPUs for
// large matrices (the 4RM systems reach ~10^5 rows; SpMV dominates
// BiCGSTAB time). Row partitioning makes the parallel result bitwise
// identical to the serial one.
func (m *CSR) MulVecAuto(dst, x []float64) {
	if m.N < parallelThreshold {
		m.MulVec(dst, x)
		return
	}
	workers := SpMVWorkers()
	if workers < 2 {
		m.MulVec(dst, x)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.N)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var s float64
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					s += m.Vals[k] * x[m.Cols[k]]
				}
				dst[i] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}
