package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the system size above which MulVecAuto fans out to
// worker goroutines. Small systems (2RM-scale) stay serial: goroutine
// overhead would dominate their sub-millisecond solves.
const parallelThreshold = 20000

// spmvWorkers caps the goroutines MulVecAuto fans out to. Zero means
// "use runtime.GOMAXPROCS(0)". Stored atomically so the cap can be tuned
// while solves are running (benchmarks sweep it).
var spmvWorkers int32

// spmvBlockNNZ is the target number of stored entries per row block of
// the sliced-CSR partition. Zero means defaultBlockNNZ. Stored atomically
// so the sweep benchmark can tune it live.
var spmvBlockNNZ int32

// defaultBlockNNZ is the tile size the worker/block sweep benchmark
// (BenchmarkBlockedSpMV) settles on for the banded 4RM-style patterns:
// large enough that a block amortizes the scheduling atomics, small
// enough that ~8 blocks per worker keep the dynamic schedule balanced
// when rows have uneven occupancy.
const defaultBlockNNZ = 16384

// SetSpMVWorkers sets the worker cap for parallel SpMV. n <= 0 restores
// the default (GOMAXPROCS). BenchmarkBlockedSpMV sweeps this to pick a
// cap for a given machine; on the 4RM systems (~10^5 rows) SpMV scales
// with the memory bandwidth, so GOMAXPROCS is the right default rather
// than a hard-coded core count.
func SetSpMVWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt32(&spmvWorkers, int32(n))
}

// SpMVWorkers reports the effective worker cap.
func SpMVWorkers() int {
	if n := int(atomic.LoadInt32(&spmvWorkers)); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetSpMVBlockNNZ sets the target stored-entries-per-block of the sliced
// row partition. n <= 0 restores the default. Changing the target
// invalidates cached partitions lazily (each matrix rebuilds its blocking
// on the next MulVecAuto).
func SetSpMVBlockNNZ(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt32(&spmvBlockNNZ, int32(n))
}

// SpMVBlockNNZ reports the effective block target.
func SpMVBlockNNZ() int {
	if n := int(atomic.LoadInt32(&spmvBlockNNZ)); n > 0 {
		return n
	}
	return defaultBlockNNZ
}

// rowBlocks is a sliced-CSR partition: bounds[b] .. bounds[b+1] is the
// row range of block b, cut so every block holds roughly the same number
// of stored entries. Equal-nnz blocks keep the dynamic schedule balanced
// when a renumbering (or a ragged assembly) makes row occupancy uneven,
// which equal-row chunking cannot.
type rowBlocks struct {
	target int // the SpMVBlockNNZ the partition was built for
	bounds []int32
}

// blocking returns the cached row partition, rebuilding it when the block
// target changed. The partition depends only on RowPtr, which is
// immutable after construction, so a stale read races benignly: both
// candidates are valid partitions and the pointer settles on one.
func (m *CSR) blocking() *rowBlocks {
	target := SpMVBlockNNZ()
	if bl := m.blk.Load(); bl != nil && bl.target == target {
		return bl
	}
	bl := &rowBlocks{target: target, bounds: []int32{0}}
	nextCut := target
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i+1] >= nextCut {
			bl.bounds = append(bl.bounds, int32(i+1))
			nextCut = m.RowPtr[i+1] + target
		}
	}
	if last := bl.bounds[len(bl.bounds)-1]; int(last) != m.N {
		bl.bounds = append(bl.bounds, int32(m.N))
	}
	m.blk.Store(bl)
	return bl
}

// mulRows computes dst[i] = Σ_k Vals[k]·x[Cols[k]] for rows [lo, hi).
// The 4-way unrolled accumulators are the single SpMV kernel shared by
// the serial and parallel paths, so results are bitwise identical no
// matter how rows are scheduled across workers.
func (m *CSR) mulRows(dst, x []float64, lo, hi int) {
	vals, cols, rowPtr := m.Vals, m.Cols, m.RowPtr
	for i := lo; i < hi; i++ {
		k, end := rowPtr[i], rowPtr[i+1]
		var s0, s1, s2, s3 float64
		for ; k+4 <= end; k += 4 {
			s0 += vals[k] * x[cols[k]]
			s1 += vals[k+1] * x[cols[k+1]]
			s2 += vals[k+2] * x[cols[k+2]]
			s3 += vals[k+3] * x[cols[k+3]]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; k < end; k++ {
			s += vals[k] * x[cols[k]]
		}
		dst[i] = s
	}
}

// MulVecAuto computes dst = M*x like MulVec, fanning out across CPUs for
// large matrices (the 4RM systems reach ~10^5 rows; SpMV dominates
// BiCGSTAB time). Work is dealt as equal-nnz row blocks from a shared
// cursor; each dst row is written by exactly one worker with the shared
// serial kernel, so the result is bitwise identical to MulVec for every
// worker count and block size.
func (m *CSR) MulVecAuto(dst, x []float64) {
	workers := SpMVWorkers()
	if m.N < parallelThreshold || workers < 2 {
		m.MulVec(dst, x)
		return
	}
	bl := m.blocking()
	nb := len(bl.bounds) - 1
	if workers > nb {
		workers = nb
	}
	if workers < 2 {
		m.MulVec(dst, x)
		return
	}
	var cursor atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= nb {
					return
				}
				m.mulRows(dst, x, int(bl.bounds[b]), int(bl.bounds[b+1]))
			}
		}()
	}
	wg.Wait()
}
