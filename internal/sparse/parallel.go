package sparse

import (
	"runtime"
	"sync"
)

// parallelThreshold is the system size above which MulVec fans out to
// worker goroutines. Small systems (2RM-scale) stay serial: goroutine
// overhead would dominate their sub-millisecond solves.
const parallelThreshold = 20000

// MulVec computes dst = M*x, fanning out across CPUs for large matrices
// (the 4RM systems reach ~10^5 rows; SpMV dominates BiCGSTAB time).
// Row partitioning makes the parallel result bitwise identical to the
// serial one.
func (m *CSR) MulVecAuto(dst, x []float64) {
	if m.N < parallelThreshold {
		m.MulVec(dst, x)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 2 {
		m.MulVec(dst, x)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.N)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var s float64
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					s += m.Vals[k] * x[m.Cols[k]]
				}
				dst[i] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}
