package sparse

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"
)

// bandedCSR builds an n×n banded matrix (half-bandwidth w) quickly enough
// to exercise the parallel SpMV path above parallelThreshold.
func bandedCSR(rng *rand.Rand, n, w int) *CSR {
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		lo, hi := max(0, i-w), min(n-1, i+w)
		for j := lo; j <= hi; j++ {
			m.Cols = append(m.Cols, j)
			m.Vals = append(m.Vals, rng.NormFloat64())
		}
		m.RowPtr[i+1] = len(m.Cols)
	}
	return m
}

func TestMulVecAutoBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := parallelThreshold + 1234 // force the parallel path
	m := bandedCSR(rng, n, 3)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, n)
	parallel := make([]float64, n)
	m.MulVec(serial, x)
	for _, workers := range []int{0, 1, 2, 3, 7, runtime.GOMAXPROCS(0)} {
		SetSpMVWorkers(workers)
		for i := range parallel {
			parallel[i] = 0
		}
		m.MulVecAuto(parallel, x)
		for i := range parallel {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: row %d differs: %v vs %v", workers, i, parallel[i], serial[i])
			}
		}
	}
	SetSpMVWorkers(0)
}

func TestSpMVWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	SetSpMVWorkers(0)
	if got := SpMVWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetSpMVWorkers(3)
	if got := SpMVWorkers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	SetSpMVWorkers(-5) // negative restores the default
	if got := SpMVWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers after reset = %d, want GOMAXPROCS", got)
	}
	SetSpMVWorkers(0)
}

// BenchmarkMulVecAutoWorkers sweeps the worker cap on a 4RM-scale SpMV,
// the measurement behind defaulting the cap to GOMAXPROCS instead of the
// previous hard-coded 8.
func BenchmarkMulVecAutoWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 120000
	m := bandedCSR(rng, n, 3)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	caps := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		caps = append(caps, p)
	}
	for _, w := range caps {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			SetSpMVWorkers(w)
			defer SetSpMVWorkers(0)
			for i := 0; i < b.N; i++ {
				m.MulVecAuto(dst, x)
			}
		})
	}
}

// BenchmarkBlockedSpMV compares the plain serial CSR kernel against the
// sliced-row MulVecAuto path at the 4RM system sizes of the bench scales
// (scale 21 ≈ 3.1k rows, scale 51 ≈ 18k rows, both below the parallel
// threshold) and at a full-scale size, where it also sweeps the worker
// cap and the stored-entries-per-block target. This is the measurement
// behind defaultBlockNNZ and the GOMAXPROCS worker default.
func BenchmarkBlockedSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, sc := range []struct {
		name string
		n    int
	}{
		{"scale21", 3087},
		{"scale51", 18207},
		{"full", 120000},
	} {
		m := bandedCSR(rng, sc.n, 3)
		x := make([]float64, sc.n)
		dst := make([]float64, sc.n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b.Run(sc.name+"/plain", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulVec(dst, x)
			}
		})
		b.Run(sc.name+"/auto", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulVecAuto(dst, x)
			}
		})
		if sc.n < parallelThreshold {
			continue // auto == plain below the threshold; nothing to sweep
		}
		for _, w := range []int{2, 4, 8} {
			for _, blk := range []int{4096, 16384, 65536} {
				name := sc.name + "/workers=" + strconv.Itoa(w) + "/blocknnz=" + strconv.Itoa(blk)
				b.Run(name, func(b *testing.B) {
					SetSpMVWorkers(w)
					SetSpMVBlockNNZ(blk)
					defer SetSpMVWorkers(0)
					defer SetSpMVBlockNNZ(0)
					for i := 0; i < b.N; i++ {
						m.MulVecAuto(dst, x)
					}
				})
			}
		}
	}
}
