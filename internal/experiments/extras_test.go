package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtrasRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design evaluation")
	}
	var buf bytes.Buffer
	if err := Extras(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"straight", "width-modulated", "mesh", "serpentine", "GreenCool"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Every design row carries 6 columns (name + 5 numbers/N-A).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 7 {
		t.Fatalf("too few lines:\n%s", out)
	}
}
