// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 6). Each experiment can run at full contest
// scale or on a scaled-down grid for laptop-speed runs; the shape of the
// results (who wins, by what factor, how error/speed-up trend) is
// preserved at either scale. See EXPERIMENTS.md for recorded outputs.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/thermal"
)

// Config controls experiment scale and output.
type Config struct {
	Scale int       // grid size (101 = full); default 51
	Full  bool      // paper-scale SA schedules and sweeps
	Seed  int64     // SA seed
	Out   io.Writer // table/series destination (default os.Stdout)
	Dir   string    // directory for image artifacts ("" disables)
	Logf  func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 51
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

func (c Config) dims() grid.Dims { return grid.Dims{NX: c.Scale, NY: c.Scale} }

// Table2 prints the benchmark statistics (paper Table 2) as loaded.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	tb := &report.Table{
		Title:  "Table 2: ICCAD 2015 Benchmark Statistics (as reconstructed)",
		Header: []string{"#", "Die Num", "h_c (um)", "Die Power (W)", "dT* (K)", "Tmax* (K)", "Other Constraint"},
	}
	bs, err := iccad.LoadAll(cfg.dims())
	if err != nil {
		return err
	}
	for _, b := range bs {
		sp := b.Spec
		tb.AddRow(
			fmt.Sprint(sp.ID),
			fmt.Sprint(sp.Dies),
			report.F(sp.ChannelHeight*1e6, 0),
			report.F(b.Stk.TotalPower(), 3),
			report.F(sp.DeltaTStar, 0),
			report.F(sp.TmaxStar, 2),
			sp.Other,
		)
	}
	return tb.Write(cfg.Out)
}

// Fig5 sweeps P_sys for a straight-channel network on case 1 and reports
// the temperatures of an upstream, a mid-stream and a downstream source
// cell, illustrating the turning-point behaviour of Section 4.1.
func Fig5(cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := iccad.LoadScaled(1, cfg.dims())
	if err != nil {
		return err
	}
	d := b.Stk.Dims
	n := network.Straight(d, grid.SideWest, 1)
	sim, err := b.Sim2RM(n, 2, thermal.Central)
	if err != nil {
		return err
	}
	cells := []int{
		d.Index(d.NX/10, d.NY/2),   // upstream
		d.Index(d.NX/2, d.NY/2),    // mid
		d.Index(d.NX*9/10, d.NY/2), // downstream
	}
	pressures := logspace(1e3, 200e3, 13)
	pts, err := core.PressureProfile(sim, pressures, cells)
	if err != nil {
		return err
	}
	x := make([]float64, len(pts))
	up := make([]float64, len(pts))
	mid := make([]float64, len(pts))
	down := make([]float64, len(pts))
	for i, p := range pts {
		x[i] = p.Psys
		up[i], mid[i], down[i] = p.CellTemps[0], p.CellTemps[1], p.CellTemps[2]
	}
	fmt.Fprintln(cfg.Out, "Fig 5: node temperature vs P_sys (straight channels, case 1)")
	if err := report.WriteSeriesCSV(cfg.Out, "Psys_Pa",
		report.Series{Name: "T_upstream_K", X: x, Y: up},
		report.Series{Name: "T_mid_K", X: x, Y: mid},
		report.Series{Name: "T_downstream_K", X: x, Y: down},
	); err != nil {
		return err
	}
	// Turning points: pressure where the remaining temperature drop falls
	// below 10% of the total drop. Upstream cells turn earlier.
	fmt.Fprintf(cfg.Out, "turning points (Pa): upstream %.0f, mid %.0f, downstream %.0f\n",
		turningPoint(x, up), turningPoint(x, mid), turningPoint(x, down))
	return nil
}

// turningPoint estimates where a decreasing curve flattens: the smallest
// x whose remaining drop is under 10% of the total drop.
func turningPoint(x, y []float64) float64 {
	total := y[0] - y[len(y)-1]
	if total <= 0 {
		return x[0]
	}
	for i := range y {
		if y[i]-y[len(y)-1] < 0.1*total {
			return x[i]
		}
	}
	return x[len(x)-1]
}

// Fig6 reports ΔT = f(P_sys) for two networks exhibiting the two shapes
// of Section 4.1: uni-modal and monotonically decreasing.
func Fig6(cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := iccad.LoadScaled(1, cfg.dims())
	if err != nil {
		return err
	}
	d := b.Stk.Dims
	nets := []struct {
		name string
		net  *network.Network
	}{
		{"straight", network.Straight(d, grid.SideWest, 1)},
		{"mesh", network.Mesh(d, 1, 4)},
	}
	if tr, err := network.Tree(d, network.UniformTreeSpec(d, max(1, d.NY/24), network.Branch4, 0.35, 0.65)); err == nil {
		nets = append(nets, struct {
			name string
			net  *network.Network
		}{"tree", tr})
	}
	pressures := logspace(1e3, 400e3, 15)
	fmt.Fprintln(cfg.Out, "Fig 6: thermal gradient vs P_sys")
	var series []report.Series
	for _, nt := range nets {
		sim, err := b.Sim2RM(nt.net, 2, thermal.Central)
		if err != nil {
			return err
		}
		pts, err := core.PressureProfile(sim, pressures, nil)
		if err != nil {
			return err
		}
		x := make([]float64, len(pts))
		y := make([]float64, len(pts))
		for i, p := range pts {
			x[i], y[i] = p.Psys, p.DeltaT
		}
		series = append(series, report.Series{Name: "dT_" + nt.name + "_K", X: x, Y: y})
		fmt.Fprintf(cfg.Out, "%-10s profile: %s (min %.2f K)\n",
			nt.name, core.ClassifyProfile(pts), minOf(y))
	}
	return report.WriteSeriesCSV(cfg.Out, "Psys_Pa", series...)
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		m = math.Min(m, x)
	}
	return m
}

// Fig9Row is one (cell size, network style) accuracy/speed sample.
type Fig9Row struct {
	CellUM  float64 // thermal cell size in µm
	Style   string  // "straight" | "tree" | "all"
	MeanErr float64 // mean relative source-layer error vs 4RM
	SpeedUp float64 // wall-clock 4RM/2RM
	NumSims int
	RM4ms   float64
	RM2ms   float64
}

// Fig9 measures 2RM accuracy (a) and speed-up (b) against 4RM across
// benchmarks, network samples, thermal cell sizes and pressures. The
// default configuration uses a reduced sweep (2 cases x 5 networks x 5
// cell sizes x 3 pressures); -full widens it toward the paper's
// 5 x 40 x 6 x 13 sweep.
func Fig9(cfg Config) ([]Fig9Row, error) {
	cfg = cfg.withDefaults()
	d := cfg.dims()
	caseIDs := []int{1, 2}
	pressures := []float64{5e3, 20e3, 80e3}
	ms := []int{1, 2, 3, 4, 6}
	if cfg.Full {
		caseIDs = []int{1, 2, 3, 4, 5}
		pressures = logspace(2e3, 200e3, 13)
		ms = []int{1, 2, 3, 4, 5, 6}
	}

	type sample struct {
		style string
		net   *network.Network
	}
	makeSamples := func(b *iccad.Benchmark) []sample {
		dd := b.Stk.Dims
		samples := []sample{
			{"straight", network.Straight(dd, grid.SideWest, 1)},
			{"all", network.Mesh(dd, 1, 4)},
			{"all", network.Serpentine(dd)},
		}
		nt := max(1, dd.NY/24)
		if tr, err := network.Tree(dd, network.UniformTreeSpec(dd, nt, network.Branch4, 0.3, 0.6)); err == nil {
			samples = append(samples, sample{"tree", tr})
		}
		if tr, err := network.Tree(dd, network.UniformTreeSpec(dd, nt, network.Branch2, 0.4, 0.7)); err == nil {
			samples = append(samples, sample{"tree", tr})
		}
		for i := range samples {
			b.ApplyKeepout(samples[i].net)
		}
		return samples
	}

	// acc[style][m] accumulates errors; timing accumulated per m.
	type acc struct {
		sumErr float64
		n      int
	}
	accs := map[string]map[int]*acc{"straight": {}, "tree": {}, "all": {}}
	rm4ms := map[int]*acc{}
	rm2ms := map[int]*acc{}

	for _, id := range caseIDs {
		b, err := iccad.LoadScaled(id, d)
		if err != nil {
			return nil, err
		}
		for _, smp := range makeSamples(b) {
			if errs := smp.net.Check(); len(errs) > 0 {
				continue
			}
			nets := replicate(smp.net, len(b.Stk.ChannelLayers()))
			m4, err := rm4.New(b.Stk, nets, thermal.Central)
			if err != nil {
				return nil, err
			}
			for _, p := range pressures {
				t0 := time.Now()
				o4, err := m4.Simulate(p)
				if err != nil {
					continue // e.g. pressure too low for this network
				}
				el4 := time.Since(t0).Seconds() * 1e3
				for _, mm := range ms {
					m2, err := rm2.New(b.Stk, nets, mm, thermal.Central)
					if err != nil {
						return nil, err
					}
					t1 := time.Now()
					o2, err := m2.Simulate(p)
					if err != nil {
						continue
					}
					el2 := time.Since(t1).Seconds() * 1e3
					e := meanRelErr(o2, o4)
					get := func(mp map[int]*acc, k int) *acc {
						if mp[k] == nil {
							mp[k] = &acc{}
						}
						return mp[k]
					}
					a := get(accs[smp.style], mm)
					a.sumErr += e
					a.n++
					all := get(accs["all"], mm)
					if smp.style != "all" {
						all.sumErr += e
						all.n++
					}
					t4 := get(rm4ms, mm)
					t4.sumErr += el4
					t4.n++
					t2 := get(rm2ms, mm)
					t2.sumErr += el2
					t2.n++
					cfg.Logf("case %d %s m=%d p=%.0f err=%.4f%%", id, smp.style, mm, p, 100*e)
				}
			}
		}
	}

	var rows []Fig9Row
	cellUM := func(mm int) float64 { return float64(mm) * 100 }
	for _, style := range []string{"straight", "tree", "all"} {
		for _, mm := range ms {
			a := accs[style][mm]
			if a == nil || a.n == 0 {
				continue
			}
			t4, t2 := rm4ms[mm], rm2ms[mm]
			rows = append(rows, Fig9Row{
				CellUM:  cellUM(mm),
				Style:   style,
				MeanErr: a.sumErr / float64(a.n),
				SpeedUp: (t4.sumErr / float64(t4.n)) / (t2.sumErr / float64(t2.n)),
				NumSims: a.n,
				RM4ms:   t4.sumErr / float64(t4.n),
				RM2ms:   t2.sumErr / float64(t2.n),
			})
		}
	}

	tb := &report.Table{
		Title:  "Fig 9: 2RM accuracy and speed-up vs thermal cell size",
		Header: []string{"style", "cell (um)", "mean rel err (%)", "speed-up (x)", "4RM (ms)", "2RM (ms)", "sims"},
	}
	for _, r := range rows {
		tb.AddRow(r.Style, report.F(r.CellUM, 0), report.F(100*r.MeanErr, 4),
			report.F(r.SpeedUp, 1), report.F(r.RM4ms, 1), report.F(r.RM2ms, 2), fmt.Sprint(r.NumSims))
	}
	if err := tb.Write(cfg.Out); err != nil {
		return nil, err
	}
	return rows, nil
}

// meanRelErr is the Fig. 9(a) error metric: the average relative error of
// source-layer thermal nodes against the 4RM reference, computed on the
// basic-cell grid.
func meanRelErr(o2, o4 *thermal.Outcome) float64 {
	var sum float64
	var n int
	for l := range o4.FineTemps {
		f4, f2 := o4.FineTemps[l], o2.FineTemps[l]
		for i := range f4 {
			sum += math.Abs(f2[i]-f4[i]) / f4[i]
			n++
		}
	}
	return sum / float64(n)
}

func replicate(n *network.Network, k int) []*network.Network {
	out := make([]*network.Network, k)
	for i := range out {
		out[i] = n
	}
	return out
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, t)
	}
	return out
}

func writeImage(dir, name string, hm *report.Heatmap) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return hm.WritePPM(f)
}
