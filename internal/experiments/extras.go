package experiments

import (
	"context"
	"fmt"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/thermal"
)

// Extras runs comparisons beyond the paper's tables: the GreenCool-style
// channel-width-modulation baseline (the paper's reference [10], which
// it criticizes for using a 1D model and straight channels only) and the
// other manual network styles, evaluated under both problem formulations
// on case 1.
func Extras(cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := iccad.LoadScaled(1, cfg.dims())
	if err != nil {
		return err
	}
	d := b.Stk.Dims
	hc := b.Stk.Layers[b.Stk.ChannelLayers()[0]].Thickness

	type entry struct {
		name string
		net  *network.Network
	}
	var entries []entry

	straight := network.Straight(d, grid.SideWest, 1)
	entries = append(entries, entry{"straight", straight})

	// GreenCool-style width modulation: each straight channel's width is
	// set so its flow share matches its heat share.
	widthMod := straight.Clone()
	pm := b.Stk.Layers[b.Stk.SourceLayers()[0]].Power.Clone()
	// Aggregate heat over all source layers for the row loads.
	for _, l := range b.Stk.SourceLayers()[1:] {
		for i, w := range b.Stk.Layers[l].Power.W {
			pm.W[i] += w
		}
	}
	if err := network.ModulateStraightWidths(widthMod, network.RowHeatLoads(d, pm.W), b.Stk.ChannelWidth, hc, 0.5); err != nil {
		return err
	}
	entries = append(entries, entry{"width-modulated", widthMod})

	entries = append(entries,
		entry{"mesh", network.Mesh(d, 1, 4)},
		entry{"serpentine", network.Serpentine(d)},
	)
	nt := max(1, d.NY/8)
	if tr, err := network.Tree(d, network.UniformTreeSpec(d, nt, network.Branch2, 0.35, 0.65)); err == nil {
		entries = append(entries, entry{"tree (uniform)", tr})
	}

	tb := &report.Table{
		Title: "Extras: manual styles and the GreenCool width-modulation baseline (case 1)",
		Header: []string{"design", "P1 Wpump (mW)", "P1 Psys (kPa)", "P1 dT (K)",
			"P2 dT (K)", "P2 Psys (kPa)"},
	}
	for _, e := range entries {
		b.ApplyKeepout(e.net)
		if errs := e.net.Check(); len(errs) > 0 {
			tb.AddRow(e.name, "illegal", "", "", "", "")
			continue
		}
		p1, err := b.EvaluateNetworkPumpMin(context.Background(), e.net, thermal.Central, core.SearchOptions{})
		if err != nil {
			return fmt.Errorf("extras %s P1: %w", e.name, err)
		}
		p2, err := b.EvaluateNetworkGradMin(context.Background(), e.net, thermal.Central, core.SearchOptions{})
		if err != nil {
			return fmt.Errorf("extras %s P2: %w", e.name, err)
		}
		row := []string{e.name}
		if p1.Feasible {
			row = append(row, report.F(p1.Wpump*1e3, 3), report.F(p1.Psys/1e3, 2), report.F(p1.DeltaT, 2))
		} else {
			row = append(row, "N/A", "N/A", "N/A")
		}
		if p2.Feasible {
			row = append(row, report.F(p2.DeltaT, 2), report.F(p2.Psys/1e3, 2))
		} else {
			row = append(row, "N/A", "N/A")
		}
		tb.AddRow(row...)
		cfg.Logf("extras %s done", e.name)
	}
	return tb.Write(cfg.Out)
}
