package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"lcn3d/internal/core"
	"lcn3d/internal/iccad"
)

type coreEval struct {
	feasible    bool
	psys, wpump float64
	deltaT      float64
}

func toEval(ev core.EvalResult) coreEval {
	return coreEval{feasible: ev.Feasible, psys: ev.Psys, wpump: ev.Wpump, deltaT: ev.DeltaT}
}

func table2DeltaTStar(caseID int) float64 { return iccad.Table2[caseID-1].DeltaTStar }

// The experiment drivers run at a tiny scale here; correctness of the
// underlying physics is covered by the model packages' tests. These tests
// assert the experiments execute end to end and that their headline
// shapes match the paper.

func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 21, Seed: 1, Out: buf}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "matched inlets/outlets", "restricted area"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 7 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

// parseLabeled extracts the float following each label in a line like
// "turning points (Pa): upstream 5000, mid 12000, downstream 28000".
func parseLabeled(t *testing.T, line string, labels ...string) []float64 {
	t.Helper()
	fields := strings.Fields(line)
	out := make([]float64, 0, len(labels))
	for _, lbl := range labels {
		found := false
		for i, f := range fields {
			if strings.TrimSuffix(f, ",") == lbl && i+1 < len(fields) {
				v, err := strconv.ParseFloat(strings.TrimSuffix(fields[i+1], ","), 64)
				if err != nil {
					t.Fatalf("bad float after %q in %q: %v", lbl, line, err)
				}
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("label %q not in %q", lbl, line)
		}
	}
	return out
}

func TestFig5TurningPointsOrdered(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var tp []float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "turning points") {
			tp = parseLabeled(t, line, "upstream", "mid", "downstream")
		}
	}
	if tp == nil {
		t.Fatalf("missing turning points line:\n%s", out)
	}
	// Paper Sec. 4.1: upstream regions reach turning points earlier.
	if tp[0] > tp[2] {
		t.Fatalf("upstream turning point %.0f exceeds downstream %.0f", tp[0], tp[2])
	}
}

func TestFig6ClassifiesProfiles(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unimodal") && !strings.Contains(out, "decreasing") {
		t.Fatalf("no profile classification:\n%s", out)
	}
	if !strings.Contains(out, "dT_straight_K") {
		t.Fatalf("missing straight series:\n%s", out)
	}
}

func TestFig9ShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	var buf bytes.Buffer
	rows, err := Fig9(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	byStyle := map[string][]Fig9Row{}
	for _, r := range rows {
		byStyle[r.Style] = append(byStyle[r.Style], r)
	}
	// Accuracy worsens with thermal cell size for straight channels. (For
	// tree/manual styles at this tiny 21x21 scale the m=1 model-difference
	// floor dominates, so the growth trend is only asserted at the larger
	// scales used by cmd/lcn-bench; see EXPERIMENTS.md.)
	rs := byStyle["straight"]
	if len(rs) < 2 {
		t.Fatal("missing straight rows")
	}
	first, last := rs[0], rs[len(rs)-1]
	if last.MeanErr <= first.MeanErr {
		t.Errorf("straight: error should grow with cell size: %.5f (%.0f um) vs %.5f (%.0f um)",
			first.MeanErr, first.CellUM, last.MeanErr, last.CellUM)
	}
	// Straight channels have the smallest error at the largest cell size
	// (paper: "straight-channel networks having the smallest").
	var straightErr, treeErr float64
	for _, r := range byStyle["straight"] {
		straightErr = r.MeanErr
	}
	for _, r := range byStyle["tree"] {
		treeErr = r.MeanErr
	}
	if straightErr > treeErr {
		t.Errorf("straight error %.5f should not exceed tree error %.5f at max cell size", straightErr, treeErr)
	}
	// Errors stay small in absolute terms (sub-2% everywhere).
	for _, r := range rows {
		if r.MeanErr > 0.02 {
			t.Errorf("%s m=%.0fum: error %.4f implausibly large", r.Style, r.CellUM, r.MeanErr)
		}
	}
	// Speed-up should exceed 1 for m >= 2 cells.
	for _, r := range byStyle["all"] {
		if r.CellUM >= 300 && r.SpeedUp <= 1 {
			t.Errorf("2RM at %0.f um should beat 4RM: speed-up %.2f", r.CellUM, r.SpeedUp)
		}
	}
}

func TestTable3TinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("SA sweep over 5 cases")
	}
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	results, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("want 5 cases, got %d", len(results))
	}
	out := buf.String()
	if !strings.Contains(out, "Ours (tree + SA)") || !strings.Contains(out, "max pumping power saving") {
		t.Fatalf("table incomplete:\n%s", out)
	}
	// At this tiny 21x21 scale the constraints are very loose, so the
	// straight-vs-tree ranking is not meaningful (the paper's headline
	// comparison is reproduced at >= 51x51 by cmd/lcn-bench; see
	// EXPERIMENTS.md). Here we assert structural consistency: feasible
	// results respect their constraints and carry coherent numbers.
	for _, r := range results {
		for name, ev := range map[string]coreEval{"baseline": toEval(r.Baseline), "ours": toEval(r.Ours)} {
			if !ev.feasible {
				continue
			}
			if ev.psys <= 0 || ev.wpump <= 0 {
				t.Errorf("case %d %s: non-positive Psys/Wpump: %+v", r.CaseID, name, ev)
			}
			if ev.deltaT > table2DeltaTStar(r.CaseID)*1.02 {
				t.Errorf("case %d %s: ΔT %.2f violates constraint", r.CaseID, name, ev.deltaT)
			}
		}
	}
}
