package experiments

import (
	"context"
	"fmt"
	"math"

	"lcn3d/internal/core"
	"lcn3d/internal/iccad"
	"lcn3d/internal/network"
	"lcn3d/internal/report"
	"lcn3d/internal/thermal"
)

// CaseResult is one column of Tables 3/4.
type CaseResult struct {
	CaseID   int
	Baseline core.EvalResult
	Manual   core.EvalResult // reference manual design (mesh family)
	Ours     core.EvalResult
}

// manualReference builds the stand-in for the contest first place's
// manual designs: a cross-linked mesh, which our early exploration (like
// the paper's) found to be the strongest simple manual style.
func manualReference(b *iccad.Benchmark) *network.Network {
	n := network.Mesh(b.Stk.Dims, 1, 5)
	b.ApplyKeepout(n)
	return n
}

func saOptions(cfg Config, problem int) core.Options {
	opt := core.Options{Seed: cfg.Seed, Logf: cfg.Logf}
	if cfg.Full {
		if problem == 1 {
			opt.Stages = []core.Stage{
				{Iterations: 60, Rounds: 8, Step: 8, FixedPsys: true},
				{Iterations: 40, Rounds: 4, Step: 8},
				{Iterations: 40, Rounds: 2, Step: 2},
				{Iterations: 30, Rounds: 1, Step: 2, Use4RM: true},
			}
		} else {
			opt.Stages = []core.Stage{
				{Iterations: 80, Rounds: 8, Step: 8, GroupSize: 5},
				{Iterations: 20, Rounds: 2, Step: 2, GroupSize: 5},
				{Iterations: 20, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 5},
			}
		}
	}
	return opt
}

// Table3 reproduces the pumping power minimization results (Problem 1):
// straight baseline vs a manual reference vs the SA-optimized tree
// network, per case.
func Table3(cfg Config) ([]CaseResult, error) {
	return runTable(cfg, 1, "Table 3: Pumping Power Minimization (Problem 1)")
}

// Table4 reproduces the thermal gradient minimization results
// (Problem 2) with W*_pump = 0.1% of die power.
func Table4(cfg Config) ([]CaseResult, error) {
	return runTable(cfg, 2, "Table 4: Thermal Gradient Minimization (Problem 2)")
}

func runTable(cfg Config, problem int, title string) ([]CaseResult, error) {
	cfg = cfg.withDefaults()
	d := cfg.dims()
	var results []CaseResult
	for id := 1; id <= 5; id++ {
		b, err := iccad.LoadScaled(id, d)
		if err != nil {
			return nil, err
		}
		cr := CaseResult{CaseID: id}

		base, err := b.BestStraightBaseline(context.Background(), problem, thermal.Central, core.SearchOptions{})
		if err != nil {
			return nil, fmt.Errorf("case %d baseline: %w", id, err)
		}
		cr.Baseline = base.Eval
		cfg.Logf("case %d baseline done (feasible=%v)", id, base.Eval.Feasible)

		man := manualReference(b)
		if errs := man.Check(); len(errs) == 0 {
			var ev core.EvalResult
			if problem == 1 {
				ev, err = b.EvaluateNetworkPumpMin(context.Background(), man, thermal.Central, core.SearchOptions{})
			} else {
				ev, err = b.EvaluateNetworkGradMin(context.Background(), man, thermal.Central, core.SearchOptions{})
			}
			if err != nil {
				return nil, fmt.Errorf("case %d manual: %w", id, err)
			}
			cr.Manual = ev
		} else {
			cr.Manual = core.EvalResult{Wpump: math.Inf(1), DeltaT: math.Inf(1)}
		}
		cfg.Logf("case %d manual done", id)

		opt := saOptions(cfg, problem)
		var sol *core.Solution
		if problem == 1 {
			sol, err = b.SolveProblem1(opt)
		} else {
			sol, err = b.SolveProblem2(opt)
		}
		if err != nil {
			// SA can fail entirely on hard cases (the paper designs
			// case 5 manually); fall back to the manual reference.
			cr.Ours = cr.Manual
			cfg.Logf("case %d SA failed (%v); using the manual design, as the paper does for case 5", id, err)
		} else {
			cr.Ours = sol.Eval
			if betterOf(problem, cr.Manual, cr.Ours) {
				// Paper: "In the difficult case 5, SA cannot find a
				// feasible solution with tree-like structure, so the
				// cooling system is designed manually."
				cr.Ours = cr.Manual
				cfg.Logf("case %d: manual design beats SA tree; using it (paper's case-5 treatment)", id)
			}
		}
		if betterOf(problem, cr.Baseline, cr.Ours) {
			// Straight channels are legal cooling networks too; the
			// design flow never returns something worse than the best
			// baseline it already evaluated.
			cr.Ours = cr.Baseline
			cfg.Logf("case %d: falling back to the straight baseline", id)
		}
		cfg.Logf("case %d ours done (feasible=%v)", id, cr.Ours.Feasible)
		results = append(results, cr)
	}
	if err := printTable(cfg, problem, title, results); err != nil {
		return nil, err
	}
	return results, nil
}

// betterOf reports whether a strictly beats b under the problem metric.
func betterOf(problem int, a, b core.EvalResult) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if !a.Feasible {
		return false
	}
	if problem == 1 {
		return a.Wpump < b.Wpump
	}
	return a.DeltaT < b.DeltaT
}

func printTable(cfg Config, problem int, title string, results []CaseResult) error {
	tb := &report.Table{Title: title}
	tb.Header = []string{"design", "metric", "1", "2", "3", "4", "5"}
	addRows := func(name string, get func(CaseResult) core.EvalResult) {
		rows := [][]string{
			{name, "Psys (kPa)"},
			{"", "Tmax (K)"},
			{"", "dT (K)"},
			{"", "Wpump (mW)"},
		}
		for _, r := range results {
			ev := get(r)
			if !ev.Feasible {
				for i := range rows {
					rows[i] = append(rows[i], "N/A")
				}
				continue
			}
			rows[0] = append(rows[0], report.F(ev.Psys/1e3, 2))
			tmax := 0.0
			if ev.Out != nil {
				tmax = ev.Out.Tmax
			}
			rows[1] = append(rows[1], report.F(tmax, 0))
			rows[2] = append(rows[2], report.F(ev.DeltaT, 2))
			rows[3] = append(rows[3], report.F(ev.Wpump*1e3, 2))
		}
		for _, r := range rows {
			tb.AddRow(r...)
		}
	}
	addRows("Baseline (straight)", func(r CaseResult) core.EvalResult { return r.Baseline })
	addRows("Manual (mesh ref)", func(r CaseResult) core.EvalResult { return r.Manual })
	addRows("Ours (tree + SA)", func(r CaseResult) core.EvalResult { return r.Ours })
	if err := tb.Write(cfg.Out); err != nil {
		return err
	}

	// Headline comparison, mirroring the paper's summary sentences.
	var bestImp float64
	for _, r := range results {
		if r.Baseline.Feasible && r.Ours.Feasible {
			var imp float64
			if problem == 1 {
				imp = 1 - r.Ours.Wpump/r.Baseline.Wpump
			} else {
				imp = 1 - r.Ours.DeltaT/r.Baseline.DeltaT
			}
			bestImp = math.Max(bestImp, imp)
		}
	}
	metric := "pumping power saving"
	if problem == 2 {
		metric = "thermal gradient reduction"
	}
	_, err := fmt.Fprintf(cfg.Out, "max %s vs straight baseline: %.2f%%\n", metric, 100*bestImp)
	return err
}

// Fig10 renders the case-1 bottom-source-layer temperature maps for the
// Problem 1 and Problem 2 solutions side by side.
func Fig10(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "Fig 10: bottom source layer temperature maps, case 1")
	for _, problem := range []int{1, 2} {
		bb, err := iccad.LoadScaled(1, cfg.dims())
		if err != nil {
			return err
		}
		opt := saOptions(cfg, problem)
		var sol *core.Solution
		if problem == 1 {
			sol, err = bb.SolveProblem1(opt)
		} else {
			sol, err = bb.SolveProblem2(opt)
		}
		if err != nil {
			return fmt.Errorf("fig10 problem %d: %w", problem, err)
		}
		out := sol.Eval.Out
		hm := &report.Heatmap{Dims: out.FineDims, V: out.FineTemps[0]}
		lo, hi := hm.Bounds()
		fmt.Fprintf(cfg.Out, "Problem %d: Psys %.2f kPa, Wpump %.3f mW, dT %.2f K, range [%.1f, %.1f] K\n",
			problem, sol.Eval.Psys/1e3, sol.Eval.Wpump*1e3, sol.Eval.DeltaT, lo, hi)
		fmt.Fprint(cfg.Out, hm.ASCII(48))
		if err := writeImage(cfg.Dir, fmt.Sprintf("fig10_problem%d.ppm", problem), hm); err != nil {
			return err
		}
	}
	return nil
}
