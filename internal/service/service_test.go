package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"lcn3d/internal/network"
)

// testService builds a service pinned to a reduced-scale case so tests
// run in seconds; 2RM keeps each probe cheap.
func testService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Scale == 0 {
		cfg.Scale = 21
	}
	return New(cfg)
}

func evalReq() EvaluateRequest {
	return EvaluateRequest{
		CaseRef:   CaseRef{Case: 1},
		ModelSpec: ModelSpec{Model: "2rm", CoarseM: 4},
		Network:   NetworkSpec{Generator: "straight"},
	}
}

// TestConcurrentIdenticalRequestsSingleFlight is acceptance criterion
// (a): concurrent identical evaluations run ONE evaluation, and all
// callers get identical bytes. The compute hook holds the leader open
// until every caller has passed the cache check, so the overlap is
// deterministic regardless of how fast the evaluation itself is.
func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	s := testService(t, Config{})
	const callers = 4
	release := make(chan struct{})
	s.computeHook = func() { <-release }
	results := make([][]byte, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Evaluate(context.Background(), evalReq())
		}(i)
	}
	// Wait until every caller has missed the result cache (and thus
	// joined the single-flight group), then let the leader compute.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().CacheMisses < callers {
		if time.Now().After(deadline) {
			t.Fatal("callers never reached the cache check")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	m := s.Metrics()
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1 (single-flight)", m.Evaluations)
	}
	if m.DedupHits != callers-1 {
		t.Errorf("dedup hits = %d, want %d", m.DedupHits, callers-1)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(results[0], &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !resp.Feasible || resp.Wpump <= 0 {
		t.Errorf("unexpected evaluation result: %+v", resp)
	}
}

// TestRepeatedRequestIsBitwiseCacheHit is acceptance criterion (b): a
// repeat after completion is a cache hit returning bitwise-identical
// bytes, without running another evaluation.
func TestRepeatedRequestIsBitwiseCacheHit(t *testing.T) {
	s := testService(t, Config{})
	first, err := s.Evaluate(context.Background(), evalReq())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Evaluate(context.Background(), evalReq())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit not bitwise identical:\n%s\n%s", first, second)
	}
	m := s.Metrics()
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1", m.Evaluations)
	}
	if m.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", m.CacheHits)
	}
	if m.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %g, want > 0", m.CacheHitRate)
	}
}

// TestCacheKeyConstructionPathIndependent: a network uploaded in the
// save-file format hits the cache entry created by the equivalent
// generator request.
func TestCacheKeyConstructionPathIndependent(t *testing.T) {
	s := testService(t, Config{})
	first, err := s.Evaluate(context.Background(), evalReq())
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the same straight network and upload it as a file.
	b, _, err := s.bench(CaseRef{Case: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := evalReq()
	var buf bytes.Buffer
	n, err := NetworkSpec{Generator: "straight"}.resolve(&b.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	req.Network = NetworkSpec{File: buf.String()}
	second, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("file-uploaded identical network missed the cache")
	}
	if m := s.Metrics(); m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1", m.Evaluations)
	}
}

// TestShortDeadlineTimesOutWithoutLeak is acceptance criterion (c): a
// request with a tiny deadline returns a timeout error, releases its
// worker slot, and leaves the service fully usable. The compute hook
// simulates an evaluation slower than the deadline.
func TestShortDeadlineTimesOutWithoutLeak(t *testing.T) {
	s := testService(t, Config{Workers: 1})
	s.computeHook = func() { time.Sleep(30 * time.Millisecond) }
	req := evalReq()
	req.TimeoutMS = 1
	_, err := s.Evaluate(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	m := s.Metrics()
	if m.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Timeouts)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("leaked worker: in_flight=%d queue_depth=%d", m.InFlight, m.QueueDepth)
	}
	if m.Evaluations != 0 {
		t.Errorf("evaluations = %d, want 0 (timed out before computing)", m.Evaluations)
	}
	// The single worker slot must be free again: a normal request works.
	s.computeHook = nil
	req.TimeoutMS = 0
	if _, err := s.Evaluate(context.Background(), req); err != nil {
		t.Fatalf("service unusable after timeout: %v", err)
	}
	if m := s.Metrics(); m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("leaked worker after recovery: %+v", m)
	}
}

// TestDeadlineExpiresWhileQueued: with one worker held busy, a queued
// request with a short deadline returns a timeout without ever taking
// the worker slot.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	s := testService(t, Config{Workers: 1})
	release := make(chan struct{})
	s.computeHook = func() { <-release }
	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Evaluate(context.Background(), evalReq())
		blockerDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never took the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A *different* request (distinct key, so no dedup) must queue
	// behind the blocker and time out in the queue.
	queued := evalReq()
	queued.Problem = 2
	queued.TimeoutMS = 20
	_, err := s.Evaluate(context.Background(), queued)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request err = %v, want deadline exceeded", err)
	}

	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if m := s.Metrics(); m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("leaked slots: in_flight=%d queue_depth=%d", m.InFlight, m.QueueDepth)
	}
}

// TestDrainFinishesInFlightAndRejectsNew is acceptance criterion (d):
// Drain lets in-flight work finish and rejects new work.
func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	s := testService(t, Config{})
	started := make(chan struct{})
	type result struct {
		buf []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		close(started)
		buf, err := s.Evaluate(context.Background(), evalReq())
		done <- result{buf, err}
	}()
	<-started
	// Give the evaluation a moment to enter the service before draining.
	time.Sleep(20 * time.Millisecond)
	s.Drain()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if len(r.buf) == 0 {
			t.Fatal("in-flight request returned empty result")
		}
	default:
		t.Fatal("Drain returned while a request was still in flight")
	}

	if _, err := s.Evaluate(context.Background(), evalReq()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request: err = %v, want ErrDraining", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
}

// TestSimulateAndWarmReuse: repeated probes of the same network at
// different pressures reuse one factored system (warm starts across
// requests), and distinct pressures are distinct cache entries.
func TestSimulateAndWarmReuse(t *testing.T) {
	s := testService(t, Config{})
	sim := func(psys float64) SimulateRequest {
		return SimulateRequest{
			CaseRef:   CaseRef{Case: 1},
			ModelSpec: ModelSpec{Model: "2rm", CoarseM: 4},
			Network:   NetworkSpec{Generator: "straight"},
			Psys:      psys,
		}
	}
	pressures := []float64{8e3, 10e3, 12e3, 16e3}
	for _, p := range pressures {
		buf, err := s.Simulate(context.Background(), sim(p))
		if err != nil {
			t.Fatalf("psys %g: %v", p, err)
		}
		var resp SimulateResponse
		if err := json.Unmarshal(buf, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.DeltaT <= 0 || resp.Tmax <= 0 {
			t.Fatalf("psys %g: implausible outcome %+v", p, resp)
		}
	}
	m := s.Metrics()
	if m.Evaluations != int64(len(pressures)) {
		t.Errorf("evaluations = %d, want %d", m.Evaluations, len(pressures))
	}
	if m.ModelsCached != 1 {
		t.Errorf("models cached = %d, want 1 (shared factored state)", m.ModelsCached)
	}
	if m.Factor.Probes < len(pressures) {
		t.Errorf("factored probes = %d, want >= %d", m.Factor.Probes, len(pressures))
	}
	if m.Factor.WarmStarts == 0 {
		t.Error("no warm starts across requests; factored state is not being reused")
	}
}

// TestBadRequests exercises the validation surface.
func TestBadRequests(t *testing.T) {
	s := testService(t, Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		run  func() error
	}{
		{"both generator and file", func() error {
			r := evalReq()
			r.Network.File = "network 3 3\n"
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"no network", func() error {
			r := evalReq()
			r.Network = NetworkSpec{}
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"unknown generator", func() error {
			r := evalReq()
			r.Network.Generator = "moebius"
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"bad case", func() error {
			r := evalReq()
			r.Case = 99
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"bad model", func() error {
			r := evalReq()
			r.Model = "9rm"
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"bad problem", func() error {
			r := evalReq()
			r.Problem = 3
			_, err := s.Evaluate(ctx, r)
			return err
		}},
		{"nonpositive psys", func() error {
			_, err := s.Simulate(ctx, SimulateRequest{
				CaseRef: CaseRef{Case: 1}, Network: NetworkSpec{Generator: "straight"}})
			return err
		}},
		{"dims mismatch", func() error {
			r := evalReq()
			r.Network = NetworkSpec{File: "network 3 3\nrows\n###\n###\n###\nend\n"}
			_, err := s.Evaluate(ctx, r)
			return err
		}},
	}
	for _, c := range cases {
		err := c.run()
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("%s: err = %v, want *RequestError", c.name, err)
		}
	}
}

// TestEvaluateProblem2 smoke-checks the gradient-minimization path.
func TestEvaluateProblem2(t *testing.T) {
	s := testService(t, Config{})
	req := evalReq()
	req.Problem = 2
	buf, err := s.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Problem != 2 {
		t.Errorf("problem = %d, want 2", resp.Problem)
	}
	if resp.Feasible && resp.DeltaT <= 0 {
		t.Errorf("feasible with implausible ΔT: %+v", resp)
	}
}
