package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lcn3d/internal/scenario"
)

func transientReq() TransientRequest {
	return TransientRequest{
		CaseRef:   CaseRef{Case: 1, Scale: 15},
		ModelSpec: ModelSpec{Model: "2rm", CoarseM: 3},
		Network:   NetworkSpec{Generator: "straight"},
		Schedule:  scenario.Spec{Dt: 2e-3, Steps: 10, Psys: 1e4},
		Every:     2,
	}
}

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	event string
	data  []byte
}

func parseSSE(t *testing.T, body []byte) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != nil {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if cur.event != "" || cur.data != nil {
		out = append(out, cur)
	}
	return out
}

// TestTransientEndpointStreams drives POST /v1/transient end to end: the
// body must be a well-formed SSE stream with one "step" event per Every
// steps plus the terminal "result" summary, and the transient metrics
// counters must reflect the trace.
func TestTransientEndpointStreams(t *testing.T) {
	s := testService(t, Config{Scale: 15})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	buf, _ := json.Marshal(transientReq())
	resp, err := http.Post(srv.URL+"/v1/transient", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q, want text/event-stream", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	events := parseSSE(t, body.Bytes())
	if len(events) != 6 {
		t.Fatalf("got %d events, want 5 steps + 1 result:\n%s", len(events), body.String())
	}
	wantSteps := []int{2, 4, 6, 8, 10}
	for i, want := range wantSteps {
		if events[i].event != "step" {
			t.Fatalf("event %d = %q, want step", i, events[i].event)
		}
		var rec scenario.StepRecord
		if err := json.Unmarshal(events[i].data, &rec); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if rec.Step != want {
			t.Errorf("event %d step = %d, want %d", i, rec.Step, want)
		}
		if rec.Tpeak < 300 || rec.PumpW <= 0 {
			t.Errorf("step %d implausible: Tpeak=%v PumpW=%v", rec.Step, rec.Tpeak, rec.PumpW)
		}
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("terminal event = %q, want result", last.event)
	}
	var res scenario.Result
	if err := json.Unmarshal(last.data, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Steps != 10 {
		t.Errorf("result steps = %d, want 10", res.Steps)
	}
	if res.Stats.FactorStats.PrecondBuilds != 1 {
		t.Errorf("factorizations = %d, want 1 (single (dt, psys) segment)",
			res.Stats.FactorStats.PrecondBuilds)
	}

	m := s.Metrics()
	if m.Transient.Runs != 1 || m.Transient.Steps != 10 || m.Transient.Factorizations != 1 {
		t.Errorf("transient metrics = %+v, want runs=1 steps=10 factorizations=1", m.Transient)
	}
	if got, want := m.Transient.StepsPerFactorization, 10.0; got != want {
		t.Errorf("steps_per_factorization = %v, want %v", got, want)
	}
}

// TestTransientEndpointBadSchedule asserts pre-stream failures keep the
// plain HTTP error path: no SSE headers, a 400 with the validation text.
func TestTransientEndpointBadSchedule(t *testing.T) {
	s := testService(t, Config{Scale: 15})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := transientReq()
	req.Schedule.Dt = -1
	buf, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/transient", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct == "text/event-stream" {
		t.Fatal("pre-stream failure must not switch to SSE")
	}
}

// TestTransientDirectRejectsBadLayer exercises the mid-schedule
// rejection path: a structurally valid schedule whose event targets a
// layer the model does not have maps to a RequestError, not a 500-class
// failure.
func TestTransientDirectRejectsBadLayer(t *testing.T) {
	s := testService(t, Config{Scale: 15})
	req := transientReq()
	req.Schedule.Power = []scenario.PowerEvent{{Kind: "dvfs", Layer: 99, Factor: 2}}
	err := s.Transient(context.Background(), req, func(string, any) error { return nil })
	var rerr *RequestError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want RequestError", err)
	}
}
