package service

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, concurrency-safe LRU map. The service uses two:
// a content-addressed result cache (key -> marshaled response bytes) and
// a model cache (key -> *modelEntry holding warm thermal.Factored state).
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	// evicted, when non-nil, observes values dropped by capacity or Remove.
	evicted func(key string, val any)
}

type lruItem struct {
	key string
	val any
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// GetOrPut returns the existing value for key, or inserts val and returns
// it. The boolean reports whether the value was already present. This is
// the atomic lookup the model cache needs so two concurrent requests for
// the same model share one entry.
func (c *lruCache) GetOrPut(key string, val any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruItem).val, true
	}
	c.insert(key, val)
	return val, false
}

// Put inserts or replaces the value for key.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.insert(key, val)
}

// insert assumes c.mu is held and key is absent.
func (c *lruCache) insert(key string, val any) {
	c.items[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		it := oldest.Value.(*lruItem)
		delete(c.items, it.key)
		if c.evicted != nil {
			c.evicted(it.key, it.val)
		}
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Each calls fn for every cached value (iteration order unspecified).
func (c *lruCache) Each(fn func(key string, val any)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*lruItem)
		fn(it.key, it.val)
	}
}
