package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/jobs"
	"lcn3d/internal/overload"
)

// maxBodyBytes bounds uploaded request bodies (a full-scale network file
// is ~10 KB; 8 MB leaves generous headroom).
const maxBodyBytes = 8 << 20

// Handler returns the HTTP API:
//
//	POST /v1/simulate     one flow+thermal probe at a fixed pressure
//	POST /v1/evaluate     Algorithm 2/3 lowest-feasible-P_sys evaluation
//	POST /v1/transient    streamed transient trace: implicit-Euler steps
//	                      over a power/pump schedule, one "step" SSE per
//	                      selected step plus a terminal "result" event
//	POST /v1/optimize     multi-chain SA optimization; single job or a
//	                      {"jobs": [...]} batch fanned through the pool
//	POST /v1/jobs         submit an optimization job asynchronously;
//	                      returns the pending record (with id) at once
//	GET  /v1/jobs/{id}    job record: state, per-chain progress,
//	                      checkpoint sequence, result when done
//	GET  /v1/jobs/{id}/events  Server-Sent Events stream of the job's
//	                      state/progress/checkpoint/result events
//	GET  /v1/store/{hash} raw cached response bytes by cache key — the
//	                      cheap peer fetch path (404 when absent; never
//	                      computes)
//	PUT  /v1/store/{key}  store a blob under key — the peer replication
//	                      sink for job records and checkpoints (the key
//	                      segment may contain slashes)
//	GET  /v1/metrics      counters, rates, latency quantiles, and live
//	                      per-chain optimization progress as JSON
//	GET  /healthz         "ok" (200) or "draining" (503)
//
// Requests carrying the cluster loop-guard header (X-LCN-Forwarded) are
// marked in their context so the service answers them locally instead of
// forwarding again.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req SimulateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		buf, err := s.Simulate(r.Context(), req)
		writeResult(w, buf, err)
	})
	mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req EvaluateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		buf, err := s.Evaluate(r.Context(), req)
		writeResult(w, buf, err)
	})
	mux.HandleFunc("POST /v1/transient", s.handleTransient)
	mux.HandleFunc("POST /v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		// The endpoint accepts either a single job or a {"jobs": [...]}
		// batch; the envelope is tried first because a single job cannot
		// contain a "jobs" field.
		var batch OptimizeBatchRequest
		if err := strictUnmarshal(body, &batch); err == nil && batch.Jobs != nil {
			buf, err := s.OptimizeBatch(r.Context(), batch)
			writeResult(w, buf, err)
			return
		}
		var req OptimizeRequest
		if err := strictUnmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		buf, err := s.Optimize(r.Context(), req)
		writeResult(w, buf, err)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobSubmitRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		rec, err := s.SubmitJob(r.Context(), req)
		if err != nil {
			writeResult(w, nil, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := s.JobStatus(r.Context(), r.PathValue("id"))
		if err != nil {
			if errors.Is(err, ErrJobNotFound) {
				writeError(w, http.StatusNotFound, err)
				return
			}
			writeResult(w, nil, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	// The rest-of-path wildcard is required: job blob keys contain
	// slashes (job/<id>/rec/<seq>), unlike the single-segment cache
	// hashes of the GET route.
	mux.HandleFunc("PUT /v1/store/{key...}", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Store == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no store on this node"))
			return
		}
		key := r.PathValue("key")
		if key == "" {
			writeError(w, http.StatusBadRequest, errors.New("empty key"))
			return
		}
		val, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if err := s.cfg.Store.Put(key, val); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/store/{hash}", func(w http.ResponseWriter, r *http.Request) {
		blob, ok := s.storeLookup(r.PathValue("hash"))
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("not cached"))
			return
		}
		s.met.storeFetchServed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(blob)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(cluster.ForwardedHeader) != "" {
			r = r.WithContext(WithForwarded(r.Context()))
		}
		// A propagated deadline budget (milliseconds) caps the request
		// context: work on this node never outlives the remaining budget
		// of the caller that forwarded it. context.WithTimeout keeps the
		// earlier of this and any per-request timeout applied later.
		if v := r.Header.Get(cluster.DeadlineHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		mux.ServeHTTP(w, r)
	})
}

// handleTransient streams a transient trace as Server-Sent Events. The
// SSE headers are written lazily on the first event, so failures before
// any step ran (bad schedule, unknown case, admission shed, drain) still
// map to proper HTTP statuses; a failure mid-stream becomes a terminal
// "error" event instead.
func (s *Service) handleTransient(w http.ResponseWriter, r *http.Request) {
	var req TransientRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	started := false
	emit := func(event string, data any) error {
		payload, err := json.Marshal(data)
		if err != nil {
			return err
		}
		if !started {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.Header().Set("Connection", "keep-alive")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	if err := s.Transient(r.Context(), req, emit); err != nil {
		if !started {
			writeResult(w, nil, err)
			return
		}
		emit("error", map[string]string{"error": err.Error()})
	}
}

// handleJobEvents streams one job's lifecycle as Server-Sent Events:
// an initial "state" event with the current record, then every
// state/progress/checkpoint event as it happens, ending with the
// terminal "result" (or shutdown "drain") event. Progress events may be
// dropped under backpressure; terminal events never are.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrJobNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	// Subscribe before the initial snapshot so no event between snapshot
	// and subscription is lost; the worst case is one duplicate.
	ch, cancel := j.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	rec := j.Snapshot()
	initial := "state"
	if rec.State.Terminal() {
		initial = "result"
	}
	writeSSE(w, initial, rec, 0)
	fl.Flush()
	if rec.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			writeSSE(w, ev.Type, ev.Job, ev.Dropped)
			fl.Flush()
			if ev.Type == "result" || ev.Type == "drain" {
				return
			}
		}
	}
}

// writeSSE emits one event. The record's fields stay top-level;
// dropped (the count of progress events this subscriber lost to
// backpressure since its last delivery) is an additive field so
// existing consumers are unaffected.
func writeSSE(w io.Writer, event string, rec jobs.Record, dropped int64) {
	data, err := json.Marshal(struct {
		jobs.Record
		Dropped int64 `json:"dropped,omitempty"`
	}{rec, dropped})
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// storeLookup answers a peer's store fetch from the local tiers only:
// the memory LRU, then the disk store (promoting a hit). It never
// computes and never forwards — a fetch is a question, not a request.
func (s *Service) storeLookup(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	if buf, ok := s.results.Get(key); ok {
		return buf.([]byte), true
	}
	if s.cfg.Store != nil {
		if blob, ok := s.cfg.Store.Get(key); ok {
			s.results.Put(key, blob)
			return blob, true
		}
	}
	return nil, false
}

// strictUnmarshal decodes with unknown-field rejection, the same policy
// decodeJSON applies to streamed bodies.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// writeResult maps service errors onto HTTP statuses: malformed requests
// to 400, deadline/cancellation to 504, drain rejection to 503, overload
// sheds to 429 with a Retry-After header, anything else to 500.
// Successful responses are the service's cached bytes, written verbatim
// so repeats are bitwise identical.
func writeResult(w http.ResponseWriter, buf []byte, err error) {
	var shed *overload.ShedError
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(buf)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &shed):
		secs := int64(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
