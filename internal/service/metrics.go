package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/faults"
	"lcn3d/internal/overload"
	"lcn3d/internal/store"
)

// metrics holds the service counters. Everything is atomics or a small
// mutex-guarded latency ring so the /v1/metrics scrape never blocks
// behind an evaluation.
type metrics struct {
	start time.Time

	requests    atomic.Int64 // accepted requests (simulate + evaluate)
	cacheHits   atomic.Int64 // served from the result cache
	cacheMisses atomic.Int64 // had to go through single-flight
	dedupHits   atomic.Int64 // coalesced onto an in-flight identical request
	evaluations atomic.Int64 // actual computations run (leaders)
	timeouts    atomic.Int64 // requests that hit their deadline
	errors      atomic.Int64 // non-timeout failures
	rejected    atomic.Int64 // refused while draining
	panics      atomic.Int64 // panics contained in the compute path

	queueDepth atomic.Int64 // waiting for a worker slot
	inFlight   atomic.Int64 // holding a worker slot

	optimizeRuns atomic.Int64 // optimization jobs actually computed

	// Transient-trace counters: accepted /v1/transient runs, total
	// implicit-Euler steps executed, and the matrix factorizations those
	// steps cost (one per (dt, s) segment when amortization holds).
	transientRuns           atomic.Int64
	transientSteps          atomic.Int64
	transientFactorizations atomic.Int64

	// Read-path tier counters beyond the memory LRU: the persistent
	// store (tier 2), the owning peer (tier 3), and the fallback when
	// the owner could not answer.
	storeHits        atomic.Int64 // served from the local disk store
	storeMisses      atomic.Int64 // disk store consulted, absent
	peerHits         atomic.Int64 // served by the owning peer (fetch or forward)
	localFallbacks   atomic.Int64 // peer-owned key computed locally (owner unreachable)
	storeFetchServed atomic.Int64 // /v1/store/{hash} requests this node answered

	// Overload-control counters: admission sheds, peer-read hedges, and
	// the brownout ladder's degradations.
	shed             atomic.Int64 // requests rejected by admission (429)
	hedges           atomic.Int64 // peer reads whose local hedge fired
	hedgeLocalWins   atomic.Int64 // hedged reads won by local compute
	downgradedServed atomic.Int64 // responses served from the 2RM substitute
	fillsPaused      atomic.Int64 // store fills skipped at LevelPause
	peerTierSkips    atomic.Int64 // peer tier skipped at LevelStale+

	lat latencyRing
}

// latencyRing keeps the most recent request latencies for quantile
// estimation; a fixed window keeps the snapshot O(1) memory and makes
// p50/p95 reflect recent traffic rather than all-time history.
type latencyRing struct {
	mu   sync.Mutex
	buf  [1024]time.Duration
	next int
	n    int
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-quantile (0..1) of the window, 0 when empty.
func (r *latencyRing) quantiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	sorted := make([]time.Duration, r.n)
	copy(sorted, r.buf[:r.n])
	r.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(sorted) == 0 {
		return out
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		k := int(q * float64(len(sorted)-1))
		out[i] = sorted[k]
	}
	return out
}

// FactorSnapshot aggregates the thermal.FactorStats of every cached
// model, proving warm-start amortization survives across requests.
type FactorSnapshot struct {
	Probes        int     `json:"probes"`
	WarmStarts    int     `json:"warm_starts"`
	WarmStartRate float64 `json:"warm_start_rate"`
	PrecondBuilds int     `json:"precond_builds"`
	SolveIters    int     `json:"solve_iters"`

	// Escalation-ladder counters (see solver.Rung): probes that climbed
	// to each fallback rung, and probes whose result was degraded.
	RetryRebuild int `json:"retry_rebuild"`
	RetryGMRES   int `json:"retry_gmres"`
	RetryDense   int `json:"retry_dense"`
	Degraded     int `json:"degraded"`

	Multigrid MultigridSnapshot `json:"multigrid"`
}

// MultigridSnapshot aggregates the two-level multigrid preconditioner
// counters (solver.MGStats) of every cached model, plus the latch-off
// count: models that permanently fell back to ILU preconditioning.
type MultigridSnapshot struct {
	VCycles        int64 `json:"v_cycles"`
	SmootherSweeps int64 `json:"smoother_sweeps"`
	SmootherBuilds int64 `json:"smoother_builds"`
	CoarseSolves   int64 `json:"coarse_solves"`
	CoarseIters    int64 `json:"coarse_iters"`
	Updates        int64 `json:"updates"`
	LatchOffs      int64 `json:"latch_offs"`
}

// MetricsSnapshot is the JSON document served by /v1/metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	DedupHits   int64 `json:"dedup_hits"`
	Evaluations int64 `json:"evaluations"`
	Timeouts    int64 `json:"timeouts"`
	Errors      int64 `json:"errors"`
	Rejected    int64 `json:"rejected"`
	Panics      int64 `json:"panics"`

	// CacheHitRate = hits / (hits + misses); DedupRate = coalesced /
	// accepted requests.
	CacheHitRate float64 `json:"cache_hit_rate"`
	DedupRate    float64 `json:"dedup_rate"`

	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`

	ResultsCached int `json:"results_cached"`
	ModelsCached  int `json:"models_cached"`

	// Read-path tier counters beyond the memory LRU (zero when the node
	// runs without a store or cluster).
	StoreHits        int64 `json:"store_hits"`
	StoreMisses      int64 `json:"store_misses"`
	PeerHits         int64 `json:"peer_hits"`
	LocalFallbacks   int64 `json:"local_fallbacks"`
	StoreFetchServed int64 `json:"store_fetch_served"`

	// Store and Cluster snapshot the persistent result store and the
	// sharding fleet state; both are absent on a standalone node.
	Store   *store.Stats   `json:"store,omitempty"`
	Cluster *cluster.Stats `json:"cluster,omitempty"`

	// Overload reports the admission controller, brownout ladder, and
	// degradation counters.
	Overload OverloadSnapshot `json:"overload"`

	Factor FactorSnapshot `json:"factor"`

	Optimize OptimizeSnapshot `json:"optimize"`

	Transient TransientSnapshot `json:"transient"`

	// Faults reports per-point fault-injection counters when injection
	// is armed (absent otherwise), so chaos runs can assert their plan
	// actually fired.
	Faults map[string]faults.Stat `json:"faults,omitempty"`
}

// OverloadSnapshot reports the overload-control state: the admission
// controller (AIMD limit, per-class counters), the brownout ladder, and
// every degradation the ladder has applied.
type OverloadSnapshot struct {
	Admission overload.AdmissionSnapshot `json:"admission"`
	Brownout  overload.BrownoutSnapshot  `json:"brownout"`

	Shed             int64 `json:"shed"`              // requests rejected with 429
	Hedges           int64 `json:"hedges"`            // peer reads whose local hedge fired
	HedgeLocalWins   int64 `json:"hedge_local_wins"`  // hedged reads won by local compute
	DowngradedServed int64 `json:"downgraded_served"` // 2RM-substituted responses served
	FillsPaused      int64 `json:"fills_paused"`      // store fills skipped at pause
	PeerTierSkips    int64 `json:"peer_tier_skips"`   // peer tier skipped at stale-serve+
	JobsShed         int64 `json:"jobs_shed"`         // job submissions refused at pause
}

// OptimizeSnapshot reports optimization activity: total solver runs
// (cache hits excluded), live per-chain SA positions of running jobs,
// retained terminal job records with completion timestamps, and the
// checkpoint/resume counters of the jobs subsystem.
type OptimizeSnapshot struct {
	Runs   int64 `json:"runs"`
	Active int   `json:"active"` // jobs currently running
	Queued int   `json:"queued"` // pending or checkpointed, awaiting a slot
	// Jobs lists every retained record: running jobs with live progress
	// and terminal ones with CompletedUnixMS set.
	Jobs   []OptimizeProgress `json:"jobs,omitempty"`
	States map[string]int     `json:"states,omitempty"`

	Checkpoints int64 `json:"checkpoints"`
	Resumes     int64 `json:"resumes"`
	Recovered   int64 `json:"recovered"`
	// EventsDropped counts SSE subscriber events lost to backpressure
	// across all jobs (each subscriber also sees its own count on the
	// next delivered event).
	EventsDropped int64 `json:"events_dropped"`
}

// TransientSnapshot reports /v1/transient activity. StepsPerFactorization
// is the amortization headline: how many implicit-Euler solves rode on
// each matrix factorization (one factorization per (dt, s) segment when
// the transient engine's reuse holds).
type TransientSnapshot struct {
	Runs                  int64   `json:"runs"`
	Steps                 int64   `json:"steps"`
	Factorizations        int64   `json:"factorizations"`
	StepsPerFactorization float64 `json:"steps_per_factorization"`
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
