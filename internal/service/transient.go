package service

import (
	"context"
	"errors"
	"strings"
	"time"

	"lcn3d/internal/overload"
	"lcn3d/internal/scenario"
)

// Transient runs one streamed transient trace end to end: schedule
// validation, model binding, admission in the batch class (a trace holds
// a worker slot for its whole duration, so it must not starve
// interactive probes), then scenario.Run with every selected step pushed
// through emit as a "step" event and the trace summary as the final
// "result" event. Streams bypass the result cache and the cluster tiers:
// the response is a sequence of events, not a cacheable document.
func (s *Service) Transient(ctx context.Context, req TransientRequest, emit func(event string, data any) error) error {
	if err := req.Schedule.Validate(); err != nil {
		s.met.errors.Add(1)
		return badRequest("%v", err)
	}
	every := req.Every
	if every <= 0 {
		every = 1
	}
	p, err := s.prepare(req.CaseRef, req.ModelSpec, req.Network)
	if err != nil {
		s.met.errors.Add(1)
		return err
	}
	if !s.enter() {
		s.met.rejected.Add(1)
		return ErrDraining
	}
	defer s.leave()
	s.met.requests.Add(1)
	s.met.transientRuns.Add(1)
	t0 := time.Now()
	defer func() { s.met.lat.observe(time.Since(t0)) }()
	defer func() { s.brown.Observe(s.adm.Pressure()) }()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	s.met.queueDepth.Add(1)
	release, aerr := s.adm.Acquire(ctx, overload.Batch)
	s.met.queueDepth.Add(-1)
	if aerr != nil {
		var shed *overload.ShedError
		if errors.As(aerr, &shed) {
			s.met.shed.Add(1)
		} else if errors.Is(aerr, context.DeadlineExceeded) || errors.Is(aerr, context.Canceled) {
			s.met.timeouts.Add(1)
		}
		return aerr
	}
	tAdm := time.Now()
	s.met.inFlight.Add(1)
	defer func() {
		s.met.inFlight.Add(-1)
		release(time.Since(tAdm))
	}()
	s.met.evaluations.Add(1)

	v, err := s.protect(ctx, func(ctx context.Context) (any, error) {
		return scenario.Run(ctx, p.entry.tmodel, &req.Schedule, func(rec scenario.StepRecord) error {
			s.met.transientSteps.Add(1)
			if rec.Step%every != 0 && rec.Step != req.Schedule.Steps {
				return nil
			}
			return emit("step", rec)
		})
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.met.timeouts.Add(1)
		default:
			s.met.errors.Add(1)
			// The scenario layer's own rejections (a bad event layer, an
			// infeasible stepper input) are the client's fault, not a
			// server failure.
			if strings.HasPrefix(err.Error(), "scenario:") {
				return badRequest("%v", err)
			}
		}
		return err
	}
	res := v.(*scenario.Result)
	s.met.transientFactorizations.Add(int64(res.Stats.PrecondBuilds))
	return emit("result", res)
}
