package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"lcn3d/internal/anneal"
	"lcn3d/internal/core"
	"lcn3d/internal/network"
	"lcn3d/internal/overload"
)

// OptimizeRequest runs the multi-chain SA optimizer (Algorithm 1) on a
// benchmark case and returns the best network found. Unlike simulate and
// evaluate, no input network is given: the optimizer searches the tree
// topology space itself.
type OptimizeRequest struct {
	CaseRef
	// Problem selects the formulation: 1 = pumping-power minimization
	// (default), 2 = gradient minimization.
	Problem int `json:"problem,omitempty"`
	// Seed pins the SA. A (seed, chains) pair gives bitwise-reproducible
	// results regardless of server core count.
	Seed int64 `json:"seed,omitempty"`
	// Chains is the number of SA replicas (0 = stage default, max 32).
	Chains int `json:"chains,omitempty"`
	// ExchangeEvery is the iteration period of best-state exchange
	// barriers (0 = default, negative = independent chains).
	ExchangeEvery int `json:"exchange_every,omitempty"`
	// NumTrees fixes the tree count and Branch the leaves per tree
	// (2|4|8); zero sweeps structures automatically.
	NumTrees int `json:"num_trees,omitempty"`
	Branch   int `json:"branch,omitempty"`
	// CoarseM is the 2RM coarsening of the fast SA stages (default 4).
	CoarseM int  `json:"coarse_m,omitempty"`
	Upwind  bool `json:"upwind,omitempty"`
	// WpumpStar overrides the case's Problem 2 pumping budget (W).
	WpumpStar float64 `json:"wpump_star,omitempty"`
	// Effort selects the SA schedule: "quick" (default, scaled-down) or
	// "full" (the paper's Table 1 schedule; slow).
	Effort    string `json:"effort,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// OptimizeResponse reports the optimized design. The network is returned
// both as its canonical hash (the cache identity) and as a file in the
// internal/network save format, directly usable as the "file" field of a
// later simulate/evaluate request.
type OptimizeResponse struct {
	CacheKey string  `json:"cache_key"`
	Problem  int     `json:"problem"`
	Feasible bool    `json:"feasible"`
	Psys     float64 `json:"psys"`
	// Wpump is 0 (not +Inf) when the result is infeasible.
	Wpump  float64 `json:"wpump"`
	DeltaT float64 `json:"delta_t"`
	Tmax   float64 `json:"tmax,omitempty"`
	// Evals counts candidate evaluations across all SA stages; Chains,
	// Exchanges and Adoptions summarize the multi-chain run, and the
	// cache counters report shared-topology-cache effectiveness (hits are
	// evaluations answered without re-simulating).
	Evals        int     `json:"evals"`
	Chains       int     `json:"chains"`
	Exchanges    int     `json:"exchanges"`
	Adoptions    int     `json:"adoptions"`
	CacheHits    int64   `json:"topo_cache_hits"`
	CacheMisses  int64   `json:"topo_cache_misses"`
	CacheHitRate float64 `json:"topo_cache_hit_rate"`
	NetworkHash  string  `json:"network_hash"`
	NetworkFile  string  `json:"network_file"`
}

// OptimizeBatchRequest fans several optimization jobs through the
// service's worker pool concurrently.
type OptimizeBatchRequest struct {
	Jobs      []OptimizeRequest `json:"jobs"`
	TimeoutMS int               `json:"timeout_ms,omitempty"` // default per job
}

// OptimizeBatchResponse returns per-job results in request order.
// Exactly one of Result/Error is set per entry.
type OptimizeBatchResponse struct {
	Results []OptimizeBatchEntry `json:"results"`
}

type OptimizeBatchEntry struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// maxBatchJobs bounds one batch request; larger sweeps should be split
// so drain and timeout semantics stay predictable.
const maxBatchJobs = 64

func (r OptimizeRequest) validate() (OptimizeRequest, error) {
	if r.Problem == 0 {
		r.Problem = 1
	}
	if r.Problem != 1 && r.Problem != 2 {
		return r, badRequest("problem must be 1 or 2, got %d", r.Problem)
	}
	if r.Chains < 0 || r.Chains > 32 {
		return r, badRequest("chains must be in 0..32, got %d", r.Chains)
	}
	if r.NumTrees < 0 || r.NumTrees > 32 {
		return r, badRequest("num_trees must be in 0..32, got %d", r.NumTrees)
	}
	switch r.Branch {
	case 0, 2, 4, 8:
	default:
		return r, badRequest("branch must be 2, 4 or 8, got %d", r.Branch)
	}
	switch r.Effort {
	case "":
		r.Effort = "quick"
	case "quick", "full":
	default:
		return r, badRequest("effort must be quick or full, got %q", r.Effort)
	}
	return r, nil
}

func (r OptimizeRequest) branchType() network.BranchType {
	switch r.Branch {
	case 2:
		return network.Branch2
	case 8:
		return network.Branch8
	default:
		return network.Branch4
	}
}

// stages returns the SA schedule for the requested effort (nil selects
// the scaled-down default inside core).
func (r OptimizeRequest) stages() []core.Stage {
	if r.Effort != "full" {
		return nil
	}
	if r.Problem == 1 {
		return []core.Stage{
			{Iterations: 60, Rounds: 8, Step: 8, FixedPsys: true},
			{Iterations: 40, Rounds: 4, Step: 8},
			{Iterations: 40, Rounds: 2, Step: 2},
			{Iterations: 30, Rounds: 1, Step: 2, Use4RM: true},
		}
	}
	return []core.Stage{
		{Iterations: 80, Rounds: 8, Step: 8, GroupSize: 5},
		{Iterations: 20, Rounds: 2, Step: 2, GroupSize: 5},
		{Iterations: 20, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 5},
	}
}

// optimizeKey content-addresses an optimization job: every field that
// can change the result participates; fields that only change wall-clock
// (timeout) do not.
func optimizeKey(r OptimizeRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "lcn-serve-v1|optimize|case=%d|scale=%d|problem=%d|seed=%d|chains=%d|exch=%d|trees=%d|branch=%d|m=%d|upwind=%v|effort=%s|",
		r.Case, r.Scale, r.Problem, r.Seed, r.Chains, r.ExchangeEvery,
		r.NumTrees, r.Branch, r.CoarseM, r.Upwind, r.Effort)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], floatBits(r.WpumpStar))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// OptimizeProgress is one job's position as exported under
// /v1/metrics: live per-chain SA progress while it runs, and the
// completion timestamp once it is terminal (terminal entries stay
// visible in the bounded retention ring instead of vanishing at
// completion).
type OptimizeProgress struct {
	ID     string                 `json:"id"`
	Key    string                 `json:"key"`
	State  string                 `json:"state"`
	Stage  int                    `json:"stage"`
	Chains []anneal.ChainProgress `json:"chains,omitempty"`

	CheckpointSeq   uint64 `json:"checkpoint_seq,omitempty"`
	Resumes         int    `json:"resumes,omitempty"`
	CompletedUnixMS int64  `json:"completed_unix_ms,omitempty"`
}

// Optimize runs (or serves from cache) one optimization job
// synchronously. Identical jobs — same case, problem, seed, chain
// count, schedule — are answered from the result cache bitwise
// identically; the SA itself is deterministic for a fixed (seed,
// chains), so a cache hit and a rerun agree. Internally the compute
// rides the jobs subsystem: the call submits (or attaches to) a
// checkpointable job and waits for its terminal event, so a drain
// mid-run checkpoints the work instead of discarding it.
func (s *Service) Optimize(ctx context.Context, req OptimizeRequest) ([]byte, error) {
	req, err := req.validate()
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	_, scale, err := s.bench(req.CaseRef)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	req.Scale = scale // pin the effective scale into the cache key
	key := optimizeKey(req)
	// req is already normalized (validate) and scale-pinned, so the
	// forwarded copy derives the same key on the owning peer. Optimize
	// is batch class: under pressure it queues (and sheds) behind
	// interactive simulate/evaluate traffic.
	return s.do(ctx, key, "/v1/optimize", req, req.TimeoutMS, overload.Batch, func(ctx context.Context) (any, error) {
		return s.computeViaJob(ctx, req, key)
	})
}

// OptimizeBatch fans the batch's jobs out concurrently; each job runs
// through the same admission, cache, dedup, and worker pool as a single
// request, so the pool bounds total compute and cancellation of the
// batch context stops every job at its next probe.
func (s *Service) OptimizeBatch(ctx context.Context, batch OptimizeBatchRequest) ([]byte, error) {
	if len(batch.Jobs) == 0 {
		s.met.errors.Add(1)
		return nil, badRequest("batch has no jobs")
	}
	if len(batch.Jobs) > maxBatchJobs {
		s.met.errors.Add(1)
		return nil, badRequest("batch has %d jobs, limit %d", len(batch.Jobs), maxBatchJobs)
	}
	resp := OptimizeBatchResponse{Results: make([]OptimizeBatchEntry, len(batch.Jobs))}
	var wg sync.WaitGroup
	for i, job := range batch.Jobs {
		if job.TimeoutMS == 0 {
			job.TimeoutMS = batch.TimeoutMS
		}
		wg.Add(1)
		go func(i int, job OptimizeRequest) {
			defer wg.Done()
			buf, err := s.Optimize(ctx, job)
			if err != nil {
				resp.Results[i] = OptimizeBatchEntry{Error: err.Error()}
				return
			}
			resp.Results[i] = OptimizeBatchEntry{Result: json.RawMessage(buf)}
		}(i, job)
	}
	wg.Wait()
	out, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("service: marshal batch response: %w", err)
	}
	return out, nil
}
