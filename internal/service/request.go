package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"lcn3d/internal/core"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/scenario"
	"lcn3d/internal/thermal"
)

// RequestError marks a malformed or semantically invalid request; the
// HTTP layer maps it to 400 instead of 500.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// CaseRef selects a benchmark case, optionally at reduced scale.
type CaseRef struct {
	Case int `json:"case"`
	// Scale is the square grid size (0 = the service's default scale,
	// which itself defaults to the full 101x101 contest die).
	Scale int `json:"scale,omitempty"`
}

// ModelSpec selects the thermal model an evaluation runs on.
type ModelSpec struct {
	Model   string `json:"model,omitempty"`    // "4rm" (default) | "2rm"
	CoarseM int    `json:"coarse_m,omitempty"` // 2RM coarsening (default 4)
	Upwind  bool   `json:"upwind,omitempty"`   // upwind convection scheme
}

func (m ModelSpec) normalize() (ModelSpec, error) {
	switch m.Model {
	case "", "4rm":
		m.Model = "4rm"
	case "2rm":
		if m.CoarseM <= 0 {
			m.CoarseM = 4
		}
	default:
		return m, badRequest("unknown model %q (want 4rm or 2rm)", m.Model)
	}
	if m.Model == "4rm" {
		m.CoarseM = 0
	}
	return m, nil
}

func (m ModelSpec) scheme() thermal.Scheme {
	if m.Upwind {
		return thermal.Upwind
	}
	return thermal.Central
}

// NetworkSpec names a cooling network: either a generator family with
// parameters, or an uploaded network in the internal/network save format
// (the File field). Exactly one of Generator/File must be set.
type NetworkSpec struct {
	Generator string `json:"generator,omitempty"` // straight|serpentine|mesh|comb|tree
	InletSide string `json:"inlet_side,omitempty"`
	RowStep   int    `json:"row_step,omitempty"`
	ColStep   int    `json:"col_step,omitempty"`
	NumTrees  int    `json:"num_trees,omitempty"`
	Branch    int    `json:"branch,omitempty"` // leaves per tree: 2|4|8
	// F1/F2 are the branch-point positions as fractions of chip width
	// (defaults 0.35/0.65).
	F1   float64 `json:"f1,omitempty"`
	F2   float64 `json:"f2,omitempty"`
	File string  `json:"file,omitempty"`
}

var sidesByName = map[string]grid.Side{
	"east": grid.SideEast, "north": grid.SideNorth,
	"west": grid.SideWest, "south": grid.SideSouth,
}

// resolve materializes the spec on the instance's grid, carves the
// case keepout, and validates the design rules. The same in-memory
// representation is produced whether the network arrives as a generator
// spec or as a file, so the canonical hash — and therefore the cache
// key — is construction-path independent.
func (ns NetworkSpec) resolve(in *core.Instance) (*network.Network, error) {
	d := in.Stk.Dims
	if (ns.Generator == "") == (ns.File == "") {
		return nil, badRequest("network: exactly one of generator or file must be set")
	}
	var n *network.Network
	switch {
	case ns.File != "":
		var err error
		n, err = network.Read(strings.NewReader(ns.File))
		if err != nil {
			return nil, badRequest("network file: %v", err)
		}
		if n.Dims != d {
			return nil, badRequest("network file dims %dx%d do not match case grid %dx%d",
				n.Dims.NX, n.Dims.NY, d.NX, d.NY)
		}
	case ns.Generator == "straight":
		side, err := ns.side(grid.SideWest)
		if err != nil {
			return nil, err
		}
		n = network.Straight(d, side, max(ns.RowStep, 1))
	case ns.Generator == "serpentine":
		n = network.Serpentine(d)
	case ns.Generator == "mesh":
		n = network.Mesh(d, max(ns.RowStep, 1), max(ns.ColStep, 1))
	case ns.Generator == "comb":
		n = network.Comb(d, max(ns.RowStep, 1))
	case ns.Generator == "tree":
		trees := max(ns.NumTrees, 1)
		var typ network.BranchType
		switch ns.Branch {
		case 0, 4:
			typ = network.Branch4
		case 2:
			typ = network.Branch2
		case 8:
			typ = network.Branch8
		default:
			return nil, badRequest("network: branch must be 2, 4 or 8, got %d", ns.Branch)
		}
		f1, f2 := ns.F1, ns.F2
		if f1 <= 0 {
			f1 = 0.35
		}
		if f2 <= 0 {
			f2 = 0.65
		}
		var err error
		n, err = network.Tree(d, network.UniformTreeSpec(d, trees, typ, f1, f2))
		if err != nil {
			return nil, badRequest("network: tree: %v", err)
		}
	default:
		return nil, badRequest("network: unknown generator %q", ns.Generator)
	}
	in.ApplyKeepout(n)
	// Validate (not the lenient Check): an uploaded file is untrusted
	// input, and dims or mask inconsistencies would panic deep in the
	// solvers instead of producing a 400 here.
	if errs := n.Validate(); len(errs) > 0 {
		return nil, badRequest("network violates design rules: %v", errs[0])
	}
	return n, nil
}

func (ns NetworkSpec) side(def grid.Side) (grid.Side, error) {
	if ns.InletSide == "" {
		return def, nil
	}
	s, ok := sidesByName[ns.InletSide]
	if !ok {
		return 0, badRequest("network: unknown inlet_side %q", ns.InletSide)
	}
	return s, nil
}

// SimulateRequest asks for one flow+thermal probe at a fixed pressure.
type SimulateRequest struct {
	CaseRef
	ModelSpec
	Network NetworkSpec `json:"network"`
	Psys    float64     `json:"psys"` // system pressure drop, Pa
	// TimeoutMS bounds this request's wall time (0 = service default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SimulateResponse summarizes one thermal.Outcome.
type SimulateResponse struct {
	CacheKey   string  `json:"cache_key"`
	Psys       float64 `json:"psys"`
	DeltaT     float64 `json:"delta_t"`
	Tmax       float64 `json:"tmax"`
	Wpump      float64 `json:"wpump"`
	Qsys       float64 `json:"qsys"`
	Rsys       float64 `json:"rsys"`
	SolveIters int     `json:"solve_iters"`
	// Degraded marks results whose solve needed a fallback rung of the
	// solver escalation ladder (see solver.Rung): still within
	// tolerance, but outside the normal operating envelope.
	Degraded bool `json:"degraded,omitempty"`
}

// TransientRequest asks for a streamed transient trace: the schedule's
// implicit-Euler steps run on the bound model and every step's summary
// is emitted as a Server-Sent Event. Transient traces are admitted in
// the batch class (they hold a worker slot for the whole trace) and are
// never cached — the response is a stream, not a document.
type TransientRequest struct {
	CaseRef
	ModelSpec
	Network NetworkSpec `json:"network"`
	// Schedule is the transient scenario: dt, step count, base pump
	// pressure, and the power/pump events that perturb them.
	Schedule scenario.Spec `json:"schedule"`
	// Every thins the stream: one "step" event per Every steps (default
	// 1 = every step). The final step is always emitted.
	Every     int `json:"every,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// EvaluateRequest asks for the Algorithm 2/3 network evaluation: the
// lowest-feasible-P_sys operating point under the case constraints.
type EvaluateRequest struct {
	CaseRef
	ModelSpec
	Network NetworkSpec `json:"network"`
	// Problem selects the formulation: 1 = pumping-power minimization
	// under ΔT*/T*_max (default), 2 = gradient minimization under
	// T*_max/W*_pump.
	Problem int `json:"problem,omitempty"`
	// WpumpStar overrides the case's Problem 2 pumping budget (W).
	WpumpStar float64 `json:"wpump_star,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// EvaluateResponse summarizes a core.EvalResult.
type EvaluateResponse struct {
	CacheKey string  `json:"cache_key"`
	Problem  int     `json:"problem"`
	Feasible bool    `json:"feasible"`
	Psys     float64 `json:"psys"`
	Wpump    float64 `json:"wpump"`
	DeltaT   float64 `json:"delta_t"`
	Tmax     float64 `json:"tmax,omitempty"`
	Probes   int     `json:"probes"`
	// Degraded marks evaluations in which at least one thermal solve
	// needed a fallback rung of the escalation ladder (see solver.Rung).
	Degraded bool `json:"degraded,omitempty"`
}

// modelKey identifies a (case, scale, model, network) binding — the unit
// of thermal.Factored state reuse across requests.
func modelKey(ref CaseRef, ms ModelSpec, netHash string) string {
	return fmt.Sprintf("case=%d|scale=%d|model=%s|m=%d|upwind=%v|net=%s",
		ref.Case, ref.Scale, ms.Model, ms.CoarseM, ms.Upwind, netHash)
}

// cacheKey derives the content address of a request: SHA-256 over the
// model binding plus the request-kind-specific parameters. Float params
// hash by their exact bit patterns, so "the same pressure" means
// bitwise the same.
func cacheKey(kind string, ref CaseRef, ms ModelSpec, netHash string, params ...float64) string {
	h := sha256.New()
	h.Write([]byte("lcn-serve-v1|" + kind + "|" + modelKey(ref, ms, netHash)))
	var buf [8]byte
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf[:], floatBits(p))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
