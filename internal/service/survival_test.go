package service

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lcn3d/internal/core"
	"lcn3d/internal/faults"
)

func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

// TestMalformedPayloadsThenHealthy hammers the HTTP surface with broken
// and hostile payloads: every one must produce an orderly 4xx/5xx JSON
// error, and the daemon must still serve a healthy request afterwards.
func TestMalformedPayloadsThenHealthy(t *testing.T) {
	s := testService(t, Config{})
	h := s.Handler()
	cases := []struct {
		name, path, body string
	}{
		{"empty", "/v1/simulate", ""},
		{"not-json", "/v1/simulate", "ceci n'est pas un json"},
		{"truncated", "/v1/evaluate", `{"case": 1, "network": {"gen`},
		{"wrong-types", "/v1/simulate", `{"case": "one", "psys": []}`},
		{"unknown-field", "/v1/evaluate", `{"case": 1, "bogus": true}`},
		{"negative-psys", "/v1/simulate", `{"case": 1, "psys": -5, "network": {"generator": "straight"}}`},
		{"zero-psys", "/v1/simulate", `{"case": 1, "network": {"generator": "straight"}}`},
		{"bad-case", "/v1/evaluate", `{"case": 99, "network": {"generator": "straight"}}`},
		{"bad-scale", "/v1/evaluate", `{"case": 1, "scale": 100000, "network": {"generator": "straight"}}`},
		{"no-network", "/v1/evaluate", `{"case": 1}`},
		{"both-network", "/v1/evaluate", `{"case": 1, "network": {"generator": "straight", "file": "x"}}`},
		{"bad-generator", "/v1/evaluate", `{"case": 1, "network": {"generator": "moebius"}}`},
		{"bad-model", "/v1/evaluate", `{"case": 1, "model": "42rm", "network": {"generator": "straight"}}`},
		{"bad-problem", "/v1/evaluate", `{"case": 1, "problem": 7, "network": {"generator": "straight"}}`},
		{"garbage-file", "/v1/simulate", `{"case": 1, "psys": 1000, "network": {"file": "not a network"}}`},
		{"nan-psys", "/v1/simulate", `{"case": 1, "psys": NaN, "network": {"generator": "straight"}}`},
		{"deep-nesting", "/v1/evaluate", `{"case": 1, "network": ` + strings.Repeat(`{"file":`, 50) + `"x"` + strings.Repeat(`}`, 50) + `}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(h, c.path, c.body)
			if rec.Code < 400 || rec.Code >= 600 {
				t.Fatalf("status = %d, want 4xx/5xx; body %s", rec.Code, rec.Body.String())
			}
			var resp map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body.String())
			}
			if _, ok := resp["error"]; !ok {
				t.Fatalf("error body missing error field: %s", rec.Body.String())
			}
		})
	}

	// The daemon must be fully healthy after the barrage.
	rec := post(h, "/v1/simulate", `{"case": 1, "psys": 20000, "model": "2rm", "coarse_m": 4, "network": {"generator": "straight"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy request after barrage: status %d, body %s", rec.Code, rec.Body.String())
	}
}

// FuzzMalformedRequests drives arbitrary bytes at both POST endpoints.
// The invariant under fuzzing is purely "no panic, always an HTTP
// response": any status is acceptable, a crash is not.
func FuzzMalformedRequests(f *testing.F) {
	seeds := []string{
		"",
		"{}",
		`{"case": 1}`,
		`{"case": -1, "psys": 1e308}`,
		`{"case": 1, "psys": 1000, "network": {"generator": "straight"}, "timeout_ms": 1}`,
		`{"case": 1, "network": {"file": "P1\n#\n"}}`,
		`[{}]`,
		`"str"`,
		"\x00\xff\xfe",
		`{"case": 1, "scale": 5, "network": {"generator": "tree", "branch": 3}}`,
	}
	for _, s := range seeds {
		f.Add("/v1/simulate", s)
		f.Add("/v1/evaluate", s)
	}
	svc := New(Config{Scale: 21})
	h := svc.Handler()
	f.Fuzz(func(t *testing.T, path, body string) {
		if path != "/v1/simulate" && path != "/v1/evaluate" {
			path = "/v1/simulate"
		}
		rec := post(h, path, body)
		if rec.Code == 0 {
			t.Fatalf("no response written for %q", body)
		}
	})
}

// TestForcedPanicContained: an injected panic inside the compute path
// returns a 500 JSON error without leaking the worker slot or the drain
// count — with Workers=1 a leak would deadlock the follow-up request.
// Run under -race in CI.
func TestForcedPanicContained(t *testing.T) {
	s := testService(t, Config{Workers: 1})
	h := s.Handler()
	if err := faults.Arm("service.panic=first:1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	body := `{"case": 1, "model": "2rm", "coarse_m": 4, "network": {"generator": "straight"}}`
	rec := post(h, "/v1/evaluate", body)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500; body %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "panic") {
		t.Fatalf("500 body does not mention the panic: %s", rec.Body.String())
	}

	// The worker slot must have been released: the same request (the
	// failed one is not cached) computes normally on the single worker.
	rec = post(h, "/v1/evaluate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("request after contained panic: status %d, body %s", rec.Code, rec.Body.String())
	}

	m := s.Metrics()
	if m.Panics != 1 {
		t.Errorf("panics = %d, want 1", m.Panics)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("leaked slot accounting: in_flight=%d queue_depth=%d", m.InFlight, m.QueueDepth)
	}
	if s.Draining() {
		t.Error("service unexpectedly draining")
	}
	// Drain must not hang on a leaked active count.
	s.Drain()
}

// TestPanicErrorIsInternal: the recovered panic surfaces as the typed
// *core.InternalError with a captured stack.
func TestPanicErrorIsInternal(t *testing.T) {
	s := testService(t, Config{})
	if err := faults.Arm("service.panic=first:1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	_, err := s.Evaluate(context.Background(), evalReq())
	var ie *core.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *core.InternalError", err)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("InternalError carries no stack")
	}
}

// TestEscalationEndToEnd is the headline acceptance scenario: with
// injection forcing a breakdown on every thermal probe, an evaluation
// completes through the ladder, is marked degraded, matches the
// uninjected run within solver tolerance, and the ladder activity is
// visible in /v1/metrics.
func TestEscalationEndToEnd(t *testing.T) {
	// Clean run on its own service instance (fresh caches, no
	// cross-contamination from the injected run's warm state).
	clean := testService(t, Config{})
	cleanBuf, err := clean.Evaluate(context.Background(), evalReq())
	if err != nil {
		t.Fatal(err)
	}
	var want EvaluateResponse
	if err := json.Unmarshal(cleanBuf, &want); err != nil {
		t.Fatal(err)
	}
	if want.Degraded {
		t.Fatal("clean run unexpectedly degraded")
	}

	s := testService(t, Config{})
	if err := faults.Arm("solver.bicgstab.breakdown=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	buf, err := s.Evaluate(context.Background(), evalReq())
	if err != nil {
		t.Fatalf("evaluation did not survive forced breakdowns: %v", err)
	}
	var got EvaluateResponse
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Error("response not marked degraded")
	}
	if got.Feasible != want.Feasible {
		t.Fatalf("feasibility flipped: got %v, want %v", got.Feasible, want.Feasible)
	}
	relClose := func(name string, a, b float64) {
		if b == 0 && a == 0 {
			return
		}
		if math.Abs(a-b) > 1e-3*math.Max(math.Abs(a), math.Abs(b)) {
			t.Errorf("%s: degraded %g vs clean %g", name, a, b)
		}
	}
	relClose("psys", got.Psys, want.Psys)
	relClose("wpump", got.Wpump, want.Wpump)
	relClose("delta_t", got.DeltaT, want.DeltaT)
	relClose("tmax", got.Tmax, want.Tmax)

	// Ladder activity and fault counters visible via the metrics API.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Factor.RetryGMRES == 0 {
		t.Errorf("retry_gmres = 0, want > 0: %+v", snap.Factor)
	}
	if snap.Factor.Degraded == 0 {
		t.Errorf("degraded = 0, want > 0: %+v", snap.Factor)
	}
	st, ok := snap.Faults[string(faults.BiCGBreakdown)]
	if !ok || st.Fired == 0 {
		t.Errorf("fault counters not visible in metrics: %+v", snap.Faults)
	}
}
