package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical work: while one caller
// (the leader) computes the value for a key, later callers with the same
// key block on the leader's result instead of repeating the computation.
// Unlike a result cache, entries live only while the computation is in
// flight; completed results belong to the result cache.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  []byte
	err  error
}

// Do executes fn under single-flight semantics for key. The boolean
// reports whether this caller shared a leader's result instead of
// computing. A waiter whose ctx expires returns the ctx error without
// cancelling the leader (other waiters may still want the result).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
