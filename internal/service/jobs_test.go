package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lcn3d/internal/core"
	"lcn3d/internal/faults"
	"lcn3d/internal/jobs"
)

// jobReq is the async twin of optReq: a small deterministic job with a
// barrier every SA iteration, so checkpoints are dense enough for the
// interrupt-and-resume tests to cut anywhere.
func jobReq() OptimizeRequest {
	r := optReq()
	r.ExchangeEvery = 1
	return r
}

// straightRun computes the uninterrupted reference solution for
// jobReq() once per test binary (every job test compares against the
// same run, and the SA is deterministic).
var (
	straightOnce sync.Once
	straightRes  OptimizeResponse
	straightErr  error
)

func straightRun(t *testing.T) OptimizeResponse {
	t.Helper()
	straightOnce.Do(func() {
		s := testService(t, Config{})
		buf, err := s.Optimize(context.Background(), jobReq())
		if err != nil {
			straightErr = err
			return
		}
		straightRes = decodeOpt(t, buf)
	})
	if straightErr != nil {
		t.Fatalf("straight run: %v", straightErr)
	}
	return straightRes
}

// sameSolution asserts the paper-level keystone: the final best network
// and cost of two runs are bitwise identical. Cache amortization
// counters (topo_cache_*) legitimately differ on a resumed run — the
// eval cache restarts empty — so they are excluded.
func sameSolution(t *testing.T, tag string, got, want OptimizeResponse) {
	t.Helper()
	if got.NetworkHash != want.NetworkHash || got.NetworkFile != want.NetworkFile {
		t.Fatalf("%s: network differs: %s vs %s", tag, got.NetworkHash, want.NetworkHash)
	}
	if got.Feasible != want.Feasible ||
		floatBits(got.Psys) != floatBits(want.Psys) ||
		floatBits(got.Wpump) != floatBits(want.Wpump) ||
		floatBits(got.DeltaT) != floatBits(want.DeltaT) ||
		floatBits(got.Tmax) != floatBits(want.Tmax) {
		t.Fatalf("%s: cost differs:\n got %+v\nwant %+v", tag, got, want)
	}
	if got.Evals != want.Evals || got.Chains != want.Chains ||
		got.Exchanges != want.Exchanges || got.Adoptions != want.Adoptions {
		t.Fatalf("%s: SA trajectory differs:\n got %+v\nwant %+v", tag, got, want)
	}
}

// waitJobState polls JobStatus until the job reaches want (fatal on a
// different terminal state).
func waitJobState(t *testing.T, s *Service, id string, want jobs.State) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		rec, err := s.JobStatus(context.Background(), id)
		if err == nil {
			if rec.State == want {
				return rec
			}
			if rec.State.Terminal() && rec.State != want {
				t.Fatalf("job %s reached %s (error %q), want %s", id, rec.State, rec.Error, want)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Record{}
}

// waitCheckpoints blocks until the job has persisted at least n
// checkpoints (under thermal.slow pacing this is long before it
// finishes).
func waitCheckpoints(t *testing.T, j *jobs.Job, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for j.CheckpointSeq() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if j.CheckpointSeq() < n {
		t.Fatalf("job made %d checkpoints, want >= %d", j.CheckpointSeq(), n)
	}
}

// slowPace arms the thermal.slow fault so every probe sleeps a little:
// the job is paced far below completion speed, making interrupt windows
// deterministic without touching the result (a sleep changes wall
// clock, not physics).
func slowPace(t *testing.T) {
	t.Helper()
	if err := faults.Arm("thermal.slow=always;delay=3ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

// TestJobSubmitStatusAndEvents drives the async API end to end over
// HTTP: submit returns a pending record immediately, the SSE stream
// carries checkpoint events and ends with the result event, and the
// status endpoint reports the terminal record with checkpoint
// bookkeeping.
func TestJobSubmitStatusAndEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	want := straightRun(t)
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Pace the run so the SSE stream reliably attaches before the first
	// checkpoint; the pacing is dropped as soon as the stream sees one.
	slowPace(t)

	body, _ := json.Marshal(JobSubmitRequest{OptimizeRequest: jobReq(), Priority: 3})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobs.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rec.ID == "" {
		t.Fatalf("submit: status %d record %+v", resp.StatusCode, rec)
	}
	if rec.State.Terminal() {
		t.Fatalf("submit returned a terminal record: %+v", rec)
	}

	// Stream events until the terminal one.
	es, err := http.Get(srv.URL + "/v1/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	seen := map[string]int{}
	var final jobs.Record
	sc := bufio.NewScanner(es.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			seen[event]++
			if event == "checkpoint" {
				faults.Disarm() // pacing no longer needed; finish fast
			}
		}
		if strings.HasPrefix(line, "data: ") && event == "result" {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				t.Fatal(err)
			}
		}
	}
	if seen["result"] != 1 {
		t.Fatalf("event counts %v: want exactly one result event", seen)
	}
	if seen["checkpoint"] == 0 {
		t.Fatalf("event counts %v: no checkpoint events streamed", seen)
	}
	if final.State != jobs.StateDone || final.Result == nil {
		t.Fatalf("final event record: %+v", final)
	}

	// The status endpoint agrees with the stream.
	st, err := http.Get(srv.URL + "/v1/jobs/" + rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var got jobs.Record
	if err := json.NewDecoder(st.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone || got.CheckpointSeq < 1 || got.CompletedUnixMS == 0 {
		t.Fatalf("status record: %+v", got)
	}
	sameSolution(t, "async vs sync", decodeOpt(t, got.Result), want)

	// Unknown ids are clean 404s on both endpoints.
	for _, path := range []string{"/v1/jobs/ffffffffffffffff", "/v1/jobs/ffffffffffffffff/events"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}
}

// TestJobDrainRestartResumeBitwise is the tentpole keystone: a job
// interrupted by Drain, recovered by a cold-restarted service over the
// same store directory, finishes with the final best network and cost
// bitwise identical to the uninterrupted run with the same seed.
func TestJobDrainRestartResumeBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	want := straightRun(t)

	dir := t.TempDir()
	st := openStoreT(t, dir)
	s1 := testService(t, Config{Store: st})

	slowPace(t)
	rec, err := s1.SubmitJob(context.Background(), JobSubmitRequest{OptimizeRequest: jobReq()})
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s1.jobs.Job(rec.ID)
	if !ok {
		t.Fatal("job not registered locally")
	}
	waitCheckpoints(t, j, 2)
	s1.Drain() // checkpoint running jobs, then flush the store
	faults.Disarm()

	cut, err := s1.JobStatus(context.Background(), rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cut.State != jobs.StateCheckpointed || cut.CheckpointSeq < 2 {
		t.Fatalf("state after drain: %+v, want checkpointed with >= 2 checkpoints", cut)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart over the same directory: recovery re-queues the job,
	// which resumes from its newest checkpoint and completes.
	st2 := openStoreT(t, dir)
	defer st2.Close()
	s2 := testService(t, Config{Store: st2})
	if n := s2.RecoverJobs(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	got := waitJobState(t, s2, rec.ID, jobs.StateDone)
	if got.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", got.Resumes)
	}
	if got.CheckpointSeq < cut.CheckpointSeq {
		t.Fatalf("checkpoint seq regressed: %d -> %d", cut.CheckpointSeq, got.CheckpointSeq)
	}
	sameSolution(t, "resumed vs straight", decodeOpt(t, got.Result), want)

	m := s2.Metrics()
	if m.Optimize.Resumes < 1 || m.Optimize.Recovered != 1 {
		t.Fatalf("metrics: %+v", m.Optimize)
	}
}

// TestJobTornCheckpointFallsBack crashes a node while the
// jobs.checkpoint fault tears every new checkpoint blob, then verifies
// recovery skips the torn tail, resumes from the newest intact
// checkpoint, and still reproduces the straight run exactly.
func TestJobTornCheckpointFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	want := straightRun(t)

	st := openStoreT(t, t.TempDir())
	defer st.Close()
	s1 := testService(t, Config{Store: st})

	slowPace(t)
	rec, err := s1.SubmitJob(context.Background(), JobSubmitRequest{OptimizeRequest: jobReq()})
	if err != nil {
		t.Fatal(err)
	}
	j, ok := s1.jobs.Job(rec.ID)
	if !ok {
		t.Fatal("job not registered locally")
	}
	waitCheckpoints(t, j, 2)
	// From here on every new checkpoint blob is truncated mid-write. Any
	// checkpoint at or below armedAt predates the tear and is intact.
	if err := faults.Arm("thermal.slow=always;delay=3ms;jobs.checkpoint=always"); err != nil {
		t.Fatal(err)
	}
	armedAt := j.CheckpointSeq()
	waitCheckpoints(t, j, armedAt+2)
	s1.jobs.Kill() // crash: no terminal transition is persisted
	faults.Disarm()

	// Prove the torn tail is really torn and an intact prefix exists.
	last := j.CheckpointSeq()
	if blob, ok := j.CheckpointAt(last); ok {
		var cp core.SolveCheckpoint
		if json.Unmarshal(blob, &cp) == nil {
			t.Fatalf("newest checkpoint %d decoded despite the tear", last)
		}
	}
	var cp core.SolveCheckpoint
	blob, ok := j.CheckpointAt(armedAt)
	if !ok || json.Unmarshal(blob, &cp) != nil {
		t.Fatalf("intact checkpoint %d unreadable", armedAt)
	}

	// A new service over the same (still-open) store adopts the crashed
	// state: the newest readable checkpoint is below the torn tail, and
	// the resumed run must land on the straight-run solution anyway.
	s2 := testService(t, Config{Store: st})
	if n := s2.RecoverJobs(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	got := waitJobState(t, s2, rec.ID, jobs.StateDone)
	if got.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", got.Resumes)
	}
	sameSolution(t, "torn-fallback vs straight", decodeOpt(t, got.Result), want)
}

// TestJobMigratesAcrossFleet is the cluster half of the tentpole: a job
// owned by a node that dies is adopted by a surviving peer from the
// replicated records and checkpoints, restarted from the last
// checkpoint, and completes with the straight-run solution.
func TestJobMigratesAcrossFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	want := straightRun(t)

	svcs, servers, addrs := testFleet(t, 2)
	slowPace(t)

	const id = "migrate-test-job"
	body, _ := json.Marshal(JobSubmitRequest{OptimizeRequest: jobReq(), ID: id})
	resp, err := http.Post(servers[0].URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobs.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rec.ID != id {
		t.Fatalf("submit: status %d record %+v", resp.StatusCode, rec)
	}

	// Locate the owner (submission may have been forwarded) and its
	// survivor.
	ownerIdx := -1
	for i, a := range addrs {
		if a == rec.Owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("record owner %q not in fleet %v", rec.Owner, addrs)
	}
	survIdx := 1 - ownerIdx
	j, ok := svcs[ownerIdx].jobs.Job(id)
	if !ok {
		t.Fatalf("job not registered on owner %s", rec.Owner)
	}
	waitCheckpoints(t, j, 1)

	// Replication is asynchronous: wait until the survivor's store holds
	// both a record and a checkpoint replica before killing the owner.
	survStore := svcs[survIdx].cfg.Store
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if len(survStore.Keys("job/"+id+"/rec/")) > 0 && len(survStore.Keys("job/"+id+"/ckpt/")) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(survStore.Keys("job/"+id+"/ckpt/")) == 0 {
		t.Fatal("no checkpoint replica reached the survivor")
	}

	svcs[ownerIdx].jobs.Kill() // crash the owner
	servers[ownerIdx].Close()
	faults.Disarm()

	// A status poll on the survivor finds the owner dead, adopts the job
	// from the replicas, and restarts it from the last checkpoint.
	fetch := func() jobs.Record {
		t.Helper()
		r, err := http.Get(servers[survIdx].URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var rec jobs.Record
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("survivor status: %d (%v)", r.StatusCode, err)
		}
		return rec
	}
	adopted := fetch()
	if adopted.ID != id {
		t.Fatalf("survivor returned %+v", adopted)
	}
	var got jobs.Record
	deadline = time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		got = fetch()
		if got.State == jobs.StateDone {
			break
		}
		if got.State == jobs.StateFailed {
			t.Fatalf("migrated job failed: %q", got.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got.State != jobs.StateDone {
		t.Fatalf("migrated job never finished: %+v", got)
	}
	if got.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", got.Resumes)
	}
	if got.Owner != addrs[survIdx] {
		t.Fatalf("finished on %q, want survivor %q", got.Owner, addrs[survIdx])
	}
	sameSolution(t, "migrated vs straight", decodeOpt(t, got.Result), want)
	if st := svcs[survIdx].jobs.Stats(); st.Adopted != 1 {
		t.Fatalf("survivor adoption stats: %+v", st)
	}
}
