// Package service is the serving subsystem behind cmd/lcn-serve: a
// concurrent thermal-evaluation front end over the benchmark cases and
// the factored fast path of internal/thermal. It adds, in front of each
// evaluation:
//
//   - a content-addressed LRU result cache keyed on the canonical
//     serialization of the (case, model, network, parameters) tuple, so
//     structurally identical requests hit regardless of how the network
//     was constructed, and repeated requests return bitwise-identical
//     response bytes;
//   - single-flight deduplication, so concurrent identical requests run
//     one evaluation and share its result;
//   - a bounded worker pool with per-request context deadlines plumbed
//     down to individual simulator probes (internal/core cancellation);
//   - per-(case, network, model) reuse of warm thermal.Factored state,
//     so warm starts and preconditioner reuse survive across requests;
//   - counters and latency quantiles served as a metrics snapshot;
//   - graceful drain: stop accepting, finish in-flight work, report.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/core"
	"lcn3d/internal/faults"
	"lcn3d/internal/grid"
	"lcn3d/internal/iccad"
	"lcn3d/internal/jobs"
	"lcn3d/internal/network"
	"lcn3d/internal/overload"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/scenario"
	"lcn3d/internal/store"
	"lcn3d/internal/thermal"
)

// ErrDraining is returned for requests that arrive after Drain started.
var ErrDraining = errors.New("service: draining, not accepting new work")

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Config tunes a Service. The zero value is usable.
type Config struct {
	// Scale is the default square grid size for cases whose request does
	// not specify one (0 = full 101x101 contest scale).
	Scale int
	// Workers bounds concurrent evaluations (default NumCPU).
	Workers int
	// ResultCacheSize bounds the content-addressed response cache
	// (default 4096 entries).
	ResultCacheSize int
	// ModelCacheSize bounds the number of warm model bindings kept
	// (default 16; each holds a factored thermal system).
	ModelCacheSize int
	// DefaultTimeout bounds requests that carry no timeout_ms
	// (default 2 minutes).
	DefaultTimeout time.Duration
	// Search overrides the pressure-search options (zero = defaults).
	Search core.SearchOptions
	// Store, when non-nil, is the persistent content-addressed result
	// store: the second tier of the read path (memory LRU → Store →
	// owning peer), filled asynchronously through its write batcher, and
	// flushed by Drain. The caller owns its lifecycle (Close).
	Store *store.Store
	// Cluster, when non-nil, shards work across a fleet: cache keys
	// whose consistent-hash owner is a peer are answered by fetching
	// from that peer's store or forwarding the request single-hop, with
	// local compute as the fallback when the owner is down.
	Cluster *cluster.Cluster
	// Overload tunes the admission controller, the peer-read hedge, and
	// the brownout ladder. The zero value gets defaults (admission capped
	// at Workers).
	Overload overload.Options
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 4096
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	return c
}

// Service is a concurrent evaluation front end. Create with New, then
// serve requests via Simulate/Evaluate (or the HTTP handler), and stop
// with Drain.
type Service struct {
	cfg Config

	benchMu sync.Mutex
	benches map[[2]int]*iccad.Benchmark // (case, scale) -> loaded case

	models  *lruCache // modelKey -> *modelEntry
	results *lruCache // cacheKey -> []byte (marshaled response)
	flights flightGroup

	// adm replaces a plain worker semaphore: a bounded, deadline-aware
	// admission queue with priority classes and an AIMD concurrency
	// limit, shedding early with 429 instead of queueing unboundedly.
	adm *overload.Admission
	// brown is the degradation ladder; do() feeds it one pressure sample
	// per completed request.
	brown *overload.Brownout
	// hedgeAfter is the resolved peer-read hedge delay (negative =
	// hedging disabled).
	hedgeAfter time.Duration

	// jobs owns checkpointable optimization jobs: its own concurrency
	// pool (separate from sem, so a sync optimize waiting on its job
	// never deadlocks the slot the job needs), durable records in Store,
	// and the SSE event streams.
	jobs *jobs.Manager

	met metrics

	drainMu  sync.Mutex
	drainCV  *sync.Cond
	draining bool
	active   int

	// computeHook, when non-nil, runs on the leader after it takes a
	// worker slot and before it computes. Tests use it to hold a
	// computation open so concurrency windows are deterministic.
	computeHook func()
}

// New builds a Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		benches: make(map[[2]int]*iccad.Benchmark),
		models:  newLRU(cfg.ModelCacheSize),
		results: newLRU(cfg.ResultCacheSize),
	}
	acfg := cfg.Overload.Admission
	if acfg.MaxConcurrency <= 0 {
		acfg.MaxConcurrency = cfg.Workers
	}
	s.adm = overload.NewAdmission(acfg)
	s.brown = overload.NewBrownout(cfg.Overload.Brownout)
	switch {
	case cfg.Overload.HedgeAfter < 0:
		s.hedgeAfter = -1
	case cfg.Overload.HedgeAfter == 0:
		s.hedgeAfter = overload.DefaultHedgeAfter
	default:
		s.hedgeAfter = cfg.Overload.HedgeAfter
	}
	s.drainCV = sync.NewCond(&s.drainMu)
	s.met.start = time.Now()
	jcfg := jobs.Config{
		Run:         s.runOptimizeJob,
		Concurrency: cfg.Workers,
		Logf:        log.Printf,
		// At the top brownout rung new jobs are shed: running work keeps
		// its checkpoints, but the queue stops growing until pressure
		// clears.
		Gate: func() error {
			if s.brown.Level() >= overload.LevelPause {
				return &overload.ShedError{Class: overload.Batch, RetryAfter: 5 * time.Second}
			}
			return nil
		},
	}
	if cfg.Store != nil {
		jcfg.Blobs = cfg.Store
	}
	if cfg.Cluster != nil {
		jcfg.Owner = cfg.Cluster.Self()
		jcfg.Replicate = s.replicateJobBlob
	}
	s.jobs = jobs.NewManager(jcfg)
	return s
}

// bench loads (and caches) a benchmark case at the requested scale.
func (s *Service) bench(ref CaseRef) (*iccad.Benchmark, int, error) {
	scale := ref.Scale
	if scale == 0 {
		scale = s.cfg.Scale
	}
	if scale == 0 {
		scale = iccad.FullDims.NX
	}
	if scale < 5 || scale > 201 {
		return nil, 0, badRequest("scale %d outside 5..201", scale)
	}
	key := [2]int{ref.Case, scale}
	s.benchMu.Lock()
	defer s.benchMu.Unlock()
	if b, ok := s.benches[key]; ok {
		return b, scale, nil
	}
	b, err := iccad.LoadScaled(ref.Case, grid.Dims{NX: scale, NY: scale})
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	s.benches[key] = b
	return b, scale, nil
}

// modelEntry is one warm (case, network, model) binding. The simulator
// is built lazily exactly once; its thermal.Factored state (warm-start
// fields, preconditioner) persists for the entry's LRU lifetime, so
// probes from later requests against the same network warm-start from
// earlier ones.
type modelEntry struct {
	once  sync.Once
	sim   core.SimFunc // memoized
	stats func() thermal.FactorStats
	// tmodel is the scenario-facing surface of the same bound model,
	// used by the /v1/transient stream (each trace compiles its own
	// stepper, so concurrent traces on one entry are safe).
	tmodel scenario.Model
	err    error
}

func (s *Service) model(ref CaseRef, ms ModelSpec, b *iccad.Benchmark, n *network.Network, netHash string) (*modelEntry, error) {
	key := modelKey(ref, ms, netHash)
	v, _ := s.models.GetOrPut(key, &modelEntry{})
	e := v.(*modelEntry)
	e.once.Do(func() {
		// The recover must live inside the once closure: a panicking
		// builder would otherwise mark the Once done with e.sim nil, and
		// every later request on this entry would nil-deref. Recovering
		// here poisons the entry with a diagnosable error instead.
		defer func() {
			if r := recover(); r != nil {
				e.err = &core.InternalError{Recovered: r, Stack: debug.Stack()}
			}
		}()
		nets := make([]*network.Network, len(b.Stk.ChannelLayers()))
		for i := range nets {
			nets[i] = n
		}
		switch ms.Model {
		case "2rm":
			m, err := rm2.New(b.Stk, nets, ms.CoarseM, ms.scheme())
			if err != nil {
				e.err = err
				return
			}
			e.sim = core.Memo(m.Simulate)
			e.stats = m.FactorStats
			e.tmodel = m
		default:
			m, err := rm4.New(b.Stk, nets, ms.scheme())
			if err != nil {
				e.err = err
				return
			}
			e.sim = core.Memo(m.Simulate)
			e.stats = m.FactorStats
			e.tmodel = m
		}
	})
	if e.err != nil {
		var ie *core.InternalError
		if errors.As(e.err, &ie) {
			return nil, e.err // a builder panic is a 500, not the client's fault
		}
		return nil, badRequest("model: %v", e.err)
	}
	return e, nil
}

// enter registers an accepted request; it fails once draining started.
func (s *Service) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Service) leave() {
	s.drainMu.Lock()
	s.active--
	if s.active == 0 {
		s.drainCV.Broadcast()
	}
	s.drainMu.Unlock()
}

// Drain stops accepting new requests, checkpoints running jobs, blocks
// until every in-flight request has finished, then pushes any batched
// store writes to disk so results — and job records and checkpoints —
// computed just before shutdown survive a restart. The order matters:
// the admission gate closes first, then the job drain cancels runners
// at their next barrier (their checkpoint persists and sync waiters
// unblock with ErrDraining, which is what lets active reach zero), and
// the store flush runs last so it captures the final job records. It
// is idempotent.
func (s *Service) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.jobs.Drain()
	s.drainMu.Lock()
	for s.active > 0 {
		s.drainCV.Wait()
	}
	s.drainMu.Unlock()
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Flush(); err != nil {
			log.Printf("service: drain store flush: %v", err)
		}
	}
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// forwardedKey marks request contexts that arrived with the cluster
// loop-guard header: the request was already forwarded one hop, so this
// node must answer it locally (serve or compute), never re-forward.
type forwardedKey struct{}

// WithForwarded marks ctx as carrying an already-forwarded request.
// The HTTP layer applies it when the X-LCN-Forwarded header is present.
func WithForwarded(ctx context.Context) context.Context {
	return context.WithValue(ctx, forwardedKey{}, true)
}

func forwardedFrom(ctx context.Context) bool {
	v, _ := ctx.Value(forwardedKey{}).(bool)
	return v
}

// fromPeer answers key from its owning peer: first the cheap store
// lookup (GET /v1/store/{hash} — no compute on the peer), then the full
// forwarded request, which the peer serves from any of its tiers or
// computes exactly once under its own single-flight.
func (s *Service) fromPeer(ctx context.Context, owner, endpoint, key string, fwdReq any) ([]byte, error) {
	if blob, err := s.cfg.Cluster.FetchStore(ctx, owner, key); err == nil {
		return blob, nil
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	body, err := json.Marshal(fwdReq)
	if err != nil {
		return nil, fmt.Errorf("service: marshal forward request: %w", err)
	}
	return s.cfg.Cluster.Forward(ctx, owner, endpoint, body)
}

// downgradedResponse wraps a response whose compute substituted the
// cheap 2RM model under brownout: do() serves it (flagged Degraded by
// the compute closure) but never caches it under the full-fidelity key,
// so the first healthy request recomputes the real answer instead of
// inheriting the degraded one.
type downgradedResponse struct{ resp any }

// do runs one request end to end: admission, deadline, the three-tier
// read path (memory LRU → local disk store → owning peer), single-
// flight, worker pool, compute. It returns the marshaled response
// bytes — cached responses are returned verbatim, so a repeat of a
// cached request is bitwise identical. endpoint and fwdReq describe the
// request for peer forwarding (fwdReq must marshal to a body the peer's
// HTTP handler accepts, with every normalized field pinned so the peer
// derives the same key). class selects the admission priority; every
// completion feeds one pressure sample to the brownout ladder.
func (s *Service) do(ctx context.Context, key, endpoint string, fwdReq any, timeoutMS int, class overload.Class, compute func(ctx context.Context) (any, error)) ([]byte, error) {
	if !s.enter() {
		s.met.rejected.Add(1)
		return nil, ErrDraining
	}
	defer s.leave()
	s.met.requests.Add(1)
	t0 := time.Now()
	defer func() { s.met.lat.observe(time.Since(t0)) }()
	defer func() { s.brown.Observe(s.adm.Pressure()) }()

	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	if buf, ok := s.results.Get(key); ok {
		s.met.cacheHits.Add(1)
		return buf.([]byte), nil
	}
	s.met.cacheMisses.Add(1)

	buf, err, shared := s.flights.Do(ctx, key, func() ([]byte, error) {
		// Tier 2: the local disk store. A hit is promoted into the memory
		// LRU and served without touching a worker slot — a cold-restarted
		// node answers previously solved topologies from disk without
		// re-running the solver.
		if s.cfg.Store != nil {
			if blob, ok := s.cfg.Store.Get(key); ok {
				s.met.storeHits.Add(1)
				s.results.Put(key, blob)
				return blob, nil
			}
			s.met.storeMisses.Add(1)
		}
		// localCompute is the leader path: admission (queue, priority,
		// AIMD limit, early shedding), then the computation under panic
		// containment. It is also the hedge's secondary arm.
		localCompute := func(ctx context.Context) ([]byte, error) {
			s.met.queueDepth.Add(1)
			release, aerr := s.adm.Acquire(ctx, class)
			s.met.queueDepth.Add(-1)
			if aerr != nil {
				var shed *overload.ShedError
				if errors.As(aerr, &shed) {
					s.met.shed.Add(1)
				}
				return nil, aerr
			}
			tAdm := time.Now()
			s.met.inFlight.Add(1)
			defer func() {
				s.met.inFlight.Add(-1)
				release(time.Since(tAdm))
			}()
			if s.computeHook != nil {
				s.computeHook()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s.met.evaluations.Add(1)
			resp, err := s.protect(ctx, compute)
			if err != nil {
				return nil, err
			}
			downgraded := false
			if dg, ok := resp.(*downgradedResponse); ok {
				downgraded, resp = true, dg.resp
			}
			out, err := json.Marshal(resp)
			if err != nil {
				return nil, fmt.Errorf("service: marshal response: %w", err)
			}
			if downgraded {
				// Serve it, never cache it: the key promises full fidelity.
				s.met.downgradedServed.Add(1)
				return out, nil
			}
			s.results.Put(key, out)
			// Fill the persistent store asynchronously: Put enqueues into the
			// write batcher (group fsync); Drain flushes what is pending. The
			// top brownout rung pauses fills — fsync bandwidth goes to
			// checkpoints and live traffic until pressure clears.
			if s.cfg.Store != nil {
				if s.brown.Level() >= overload.LevelPause {
					s.met.fillsPaused.Add(1)
				} else if err := s.cfg.Store.Put(key, out); err != nil {
					log.Printf("service: store fill %s: %v", key, err)
				}
			}
			return out, nil
		}
		// Tier 3: the owning peer. Only for keys this node does not own,
		// and never for requests that were already forwarded once (the
		// X-LCN-Forwarded loop guard keeps forwarding single-hop). From
		// LevelStale up the tier is skipped entirely — local answers only.
		// Otherwise the peer read is hedged: if the owner has not answered
		// within hedgeAfter (or fails early), local compute launches and
		// the first success wins.
		if s.cfg.Cluster != nil && !forwardedFrom(ctx) {
			if owner, self := s.cfg.Cluster.Owner(key); !self {
				if s.brown.Level() >= overload.LevelStale {
					s.met.peerTierSkips.Add(1)
				} else if s.hedgeAfter < 0 {
					if blob, err := s.fromPeer(ctx, owner, endpoint, key, fwdReq); err == nil {
						s.met.peerHits.Add(1)
						s.results.Put(key, blob)
						return blob, nil
					} else if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					s.met.localFallbacks.Add(1)
				} else {
					blob, outcome, err := overload.Hedge(ctx, s.hedgeAfter,
						func(ctx context.Context) ([]byte, error) {
							return s.fromPeer(ctx, owner, endpoint, key, fwdReq)
						}, localCompute)
					if outcome.SecondaryStarted {
						s.met.hedges.Add(1)
					}
					if err == nil {
						if outcome.SecondaryWon {
							// localCompute cached it (unless downgraded). A win
							// over a dead owner is the classic local fallback; a
							// win over a merely slow one is a latency hedge.
							if outcome.PrimaryErr != nil {
								s.met.localFallbacks.Add(1)
							} else {
								s.met.hedgeLocalWins.Add(1)
							}
						} else {
							s.met.peerHits.Add(1)
							s.results.Put(key, blob)
						}
						return blob, nil
					}
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					if outcome.SecondaryStarted {
						// Local compute already ran (and failed) inside the
						// hedge; running it again would double the work.
						return nil, err
					}
					s.met.localFallbacks.Add(1)
				}
			}
		}
		return localCompute(ctx)
	})
	if shared {
		s.met.dedupHits.Add(1)
	}
	if err != nil {
		var shed *overload.ShedError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.met.timeouts.Add(1)
		case errors.As(err, &shed):
			// Counted at the shed site; not an internal error.
		default:
			s.met.errors.Add(1)
		}
		return nil, err
	}
	return buf, nil
}

// protect runs one computation with panic containment: a panic anywhere
// in the model/evaluation stack is converted to a *core.InternalError
// (HTTP 500) and counted, while the deferred worker-slot and drain
// bookkeeping in do() proceeds normally — one poisoned request must not
// leak a slot or take the daemon down. The stack is logged server-side;
// clients only see the recovered value.
func (s *Service) protect(ctx context.Context, compute func(ctx context.Context) (any, error)) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			ie := &core.InternalError{Recovered: r, Stack: debug.Stack()}
			s.met.panics.Add(1)
			log.Printf("service: recovered panic in compute: %v\n%s", r, ie.Stack)
			resp, err = nil, ie
		}
	}()
	if faults.Fire(faults.ServicePanic) {
		panic("faults: injected service panic")
	}
	return compute(ctx)
}

// prepared is the common front half of both request kinds. The resolved
// network is retained so a brownout downgrade can bind a substitute 2RM
// model against the same topology.
type prepared struct {
	bench   *iccad.Benchmark
	entry   *modelEntry
	ref     CaseRef
	ms      ModelSpec
	net     *network.Network
	netHash string
}

// downgradeEntry returns the model entry a brownout downgrade should
// compute with: the cheap 2RM binding of the same (case, network) when
// the ladder is at LevelDowngrade+ and the request asked for the full
// 4RM model. ok reports that a substitution happened — the response
// must be flagged Degraded and must not be cached.
func (s *Service) downgradeEntry(p *prepared) (*modelEntry, bool) {
	if s.brown.Level() < overload.LevelDowngrade || p.ms.Model == "2rm" {
		return p.entry, false
	}
	sub := ModelSpec{Model: "2rm", CoarseM: 4, Upwind: p.ms.Upwind}
	e, err := s.model(p.ref, sub, p.bench, p.net, p.netHash)
	if err != nil {
		// The substitute failed to build; serve full fidelity rather than
		// failing the request over an optimization.
		return p.entry, false
	}
	return e, true
}

func (s *Service) prepare(ref CaseRef, ms ModelSpec, ns NetworkSpec) (*prepared, error) {
	if ref.Case < 1 {
		return nil, badRequest("case must be >= 1")
	}
	ms, err := ms.normalize()
	if err != nil {
		return nil, err
	}
	b, scale, err := s.bench(ref)
	if err != nil {
		return nil, err
	}
	ref.Scale = scale // pin the effective scale into the cache key
	n, err := ns.resolve(&b.Instance)
	if err != nil {
		return nil, err
	}
	netHash := n.CanonicalHash()
	entry, err := s.model(ref, ms, b, n, netHash)
	if err != nil {
		return nil, err
	}
	return &prepared{bench: b, entry: entry, ref: ref, ms: ms, net: n, netHash: netHash}, nil
}

// Simulate runs (or serves from cache) one steady probe at req.Psys.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) ([]byte, error) {
	if req.Psys <= 0 {
		s.met.errors.Add(1)
		return nil, badRequest("psys must be positive, got %g", req.Psys)
	}
	p, err := s.prepare(req.CaseRef, req.ModelSpec, req.Network)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	key := cacheKey("simulate", p.ref, p.ms, p.netHash, req.Psys)
	// The forwarded copy carries the pinned scale and normalized model so
	// a peer with different defaults derives the same cache key.
	fwd := req
	fwd.CaseRef, fwd.ModelSpec = p.ref, p.ms
	return s.do(ctx, key, "/v1/simulate", fwd, req.TimeoutMS, overload.Interactive, func(ctx context.Context) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entry, subbed := s.downgradeEntry(p)
		out, err := entry.sim(req.Psys)
		if err != nil {
			return nil, err
		}
		resp := &SimulateResponse{
			CacheKey: key, Psys: out.Psys, DeltaT: out.DeltaT, Tmax: out.Tmax,
			Wpump: out.Wpump, Qsys: out.Qsys, Rsys: out.Rsys, SolveIters: out.SolveIters,
			Degraded: out.Probe.Degraded || subbed,
		}
		if subbed {
			return &downgradedResponse{resp: resp}, nil
		}
		return resp, nil
	})
}

// Evaluate runs (or serves from cache) the Algorithm 2/3 evaluation.
func (s *Service) Evaluate(ctx context.Context, req EvaluateRequest) ([]byte, error) {
	problem := req.Problem
	if problem == 0 {
		problem = 1
	}
	if problem != 1 && problem != 2 {
		s.met.errors.Add(1)
		return nil, badRequest("problem must be 1 or 2, got %d", req.Problem)
	}
	p, err := s.prepare(req.CaseRef, req.ModelSpec, req.Network)
	if err != nil {
		s.met.errors.Add(1)
		return nil, err
	}
	key := cacheKey("evaluate", p.ref, p.ms, p.netHash, float64(problem), req.WpumpStar)
	fwd := req
	fwd.CaseRef, fwd.ModelSpec, fwd.Problem = p.ref, p.ms, problem
	return s.do(ctx, key, "/v1/evaluate", fwd, req.TimeoutMS, overload.Interactive, func(ctx context.Context) (any, error) {
		in := &p.bench.Instance
		opt := s.cfg.Search
		entry, subbed := s.downgradeEntry(p)
		// An evaluation runs many probes; the degraded count of the
		// entry's factored system advancing during this computation means
		// at least one of them needed a fallback rung.
		deg0 := entry.stats().Degraded
		var r core.EvalResult
		var err error
		if problem == 1 {
			r, err = core.EvaluatePumpMin(ctx, entry.sim, in.DeltaTStar, in.TmaxStar, opt)
		} else {
			wstar := req.WpumpStar
			if wstar <= 0 {
				wstar = in.WpumpStar
			}
			pinit := opt.PInit
			if pinit <= 0 {
				pinit = 10e3
			}
			// Any probe yields R_sys, which converts the pumping budget
			// into the pressure budget of Eq. (10).
			var out *thermal.Outcome
			out, err = entry.sim(pinit)
			if err == nil {
				budget := core.PressureBudget(wstar, out.Rsys)
				r, err = core.EvaluateGradMin(ctx, entry.sim, in.TmaxStar, budget, opt)
			}
		}
		if err != nil {
			return nil, err
		}
		resp := &EvaluateResponse{
			CacheKey: key, Problem: problem, Feasible: r.Feasible,
			Psys: r.Psys, Wpump: r.Wpump, DeltaT: r.DeltaT, Probes: r.Probes,
			Degraded: entry.stats().Degraded > deg0 || subbed,
		}
		if r.Out != nil {
			resp.Tmax = r.Out.Tmax
			resp.Degraded = resp.Degraded || r.Out.Probe.Degraded
		}
		if subbed {
			return &downgradedResponse{resp: resp}, nil
		}
		return resp, nil
	})
}

// Metrics snapshots the service counters, including the aggregate
// factored-system amortization stats of every warm cached model.
func (s *Service) Metrics() MetricsSnapshot {
	hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load()
	qs := s.met.lat.quantiles(0.50, 0.95)
	snap := MetricsSnapshot{
		UptimeSec:     time.Since(s.met.start).Seconds(),
		Requests:      s.met.requests.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		DedupHits:     s.met.dedupHits.Load(),
		Evaluations:   s.met.evaluations.Load(),
		Timeouts:      s.met.timeouts.Load(),
		Errors:        s.met.errors.Load(),
		Rejected:      s.met.rejected.Load(),
		Panics:        s.met.panics.Load(),
		CacheHitRate:  ratio(hits, hits+misses),
		DedupRate:     ratio(s.met.dedupHits.Load(), s.met.requests.Load()),
		QueueDepth:    s.met.queueDepth.Load(),
		InFlight:      s.met.inFlight.Load(),
		LatencyP50Ms:  float64(qs[0]) / float64(time.Millisecond),
		LatencyP95Ms:  float64(qs[1]) / float64(time.Millisecond),
		ResultsCached: s.results.Len(),
		ModelsCached:  s.models.Len(),

		StoreHits:        s.met.storeHits.Load(),
		StoreMisses:      s.met.storeMisses.Load(),
		PeerHits:         s.met.peerHits.Load(),
		LocalFallbacks:   s.met.localFallbacks.Load(),
		StoreFetchServed: s.met.storeFetchServed.Load(),
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		snap.Store = &st
	}
	if s.cfg.Cluster != nil {
		st := s.cfg.Cluster.Stats()
		snap.Cluster = &st
	}
	snap.Overload = OverloadSnapshot{
		Admission:        s.adm.Snapshot(),
		Brownout:         s.brown.Snapshot(),
		Shed:             s.met.shed.Load(),
		Hedges:           s.met.hedges.Load(),
		HedgeLocalWins:   s.met.hedgeLocalWins.Load(),
		DowngradedServed: s.met.downgradedServed.Load(),
		FillsPaused:      s.met.fillsPaused.Load(),
		PeerTierSkips:    s.met.peerTierSkips.Load(),
	}
	s.models.Each(func(_ string, v any) {
		e := v.(*modelEntry)
		if e.stats == nil {
			return
		}
		st := e.stats()
		snap.Factor.Probes += st.Probes
		snap.Factor.WarmStarts += st.WarmStarts
		snap.Factor.PrecondBuilds += st.PrecondBuilds
		snap.Factor.SolveIters += st.SolveIters
		snap.Factor.RetryRebuild += st.RetryRebuild
		snap.Factor.RetryGMRES += st.RetryGMRES
		snap.Factor.RetryDense += st.RetryDense
		snap.Factor.Degraded += st.Degraded
		mg := &snap.Factor.Multigrid
		mg.VCycles += st.MG.VCycles
		mg.SmootherSweeps += st.MG.SmootherSweeps
		mg.SmootherBuilds += st.MG.SmootherBuilds
		mg.CoarseSolves += st.MG.CoarseSolves
		mg.CoarseIters += st.MG.CoarseIters
		mg.Updates += st.MG.Updates
		mg.LatchOffs += int64(st.MGLatchOffs)
	})
	if snap.Factor.Probes > 0 {
		snap.Factor.WarmStartRate = float64(snap.Factor.WarmStarts) / float64(snap.Factor.Probes)
	}
	snap.Transient = TransientSnapshot{
		Runs:           s.met.transientRuns.Load(),
		Steps:          s.met.transientSteps.Load(),
		Factorizations: s.met.transientFactorizations.Load(),
	}
	if snap.Transient.Factorizations > 0 {
		snap.Transient.StepsPerFactorization =
			float64(snap.Transient.Steps) / float64(snap.Transient.Factorizations)
	}
	js := s.jobs.Stats()
	snap.Optimize.Runs = s.met.optimizeRuns.Load()
	snap.Optimize.Checkpoints = js.Checkpoints
	snap.Optimize.Resumes = js.Resumes
	snap.Optimize.Recovered = js.Recovered
	snap.Optimize.States = js.States
	snap.Optimize.EventsDropped = js.EventsDropped
	snap.Overload.JobsShed = js.Shed
	for _, rec := range s.jobs.List() {
		p := OptimizeProgress{
			ID: rec.ID, Key: rec.Key, State: string(rec.State),
			Stage: rec.Stage, Chains: rec.Chains,
			CheckpointSeq: rec.CheckpointSeq, Resumes: rec.Resumes,
			CompletedUnixMS: rec.CompletedUnixMS,
		}
		snap.Optimize.Jobs = append(snap.Optimize.Jobs, p)
		switch rec.State {
		case jobs.StateRunning:
			snap.Optimize.Active++
		case jobs.StatePending, jobs.StateCheckpointed:
			snap.Optimize.Queued++
		}
	}
	snap.Faults = faults.Snapshot()
	return snap
}
