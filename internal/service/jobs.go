package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"lcn3d/internal/anneal"
	"lcn3d/internal/cluster"
	"lcn3d/internal/core"
	"lcn3d/internal/jobs"
	"lcn3d/internal/network"
)

// ErrJobNotFound reports a job id unknown to this node, its cluster
// owner, and the local replica store.
var ErrJobNotFound = errors.New("service: job not found")

// JobSubmitRequest is the body of POST /v1/jobs: an optimization job
// plus scheduling fields. ID pins the job identity (cluster forwarding
// pins it so the submitting node and the owner agree); empty draws a
// fresh one. Higher Priority runs first.
type JobSubmitRequest struct {
	OptimizeRequest
	ID       string `json:"id,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// SubmitJob validates, normalizes, and registers an optimization job,
// returning its pending record immediately — the result arrives later
// via GET /v1/jobs/{id} or the SSE stream. With a cluster configured,
// the job is placed on the consistent-hash owner of "job:"+id (single
// hop, same loop guard as result forwarding); if the owner is down or
// unreachable the job runs locally so submission never depends on
// fleet health.
func (s *Service) SubmitJob(ctx context.Context, req JobSubmitRequest) (jobs.Record, error) {
	opt, err := req.OptimizeRequest.validate()
	if err != nil {
		s.met.errors.Add(1)
		return jobs.Record{}, err
	}
	_, scale, err := s.bench(opt.CaseRef)
	if err != nil {
		s.met.errors.Add(1)
		return jobs.Record{}, err
	}
	opt.Scale = scale // pin so every node derives the same cache key
	req.OptimizeRequest = opt
	if req.ID == "" {
		req.ID = jobs.NewID()
	}
	if s.cfg.Cluster != nil && !forwardedFrom(ctx) {
		if owner, self := s.cfg.Cluster.Owner(jobRingKey(req.ID)); !self && s.cfg.Cluster.Healthy(owner) {
			body, err := json.Marshal(req)
			if err != nil {
				return jobs.Record{}, fmt.Errorf("service: marshal job submit: %w", err)
			}
			if blob, err := s.cfg.Cluster.Forward(ctx, owner, "/v1/jobs", body); err == nil {
				var rec jobs.Record
				if json.Unmarshal(blob, &rec) == nil && rec.ID == req.ID {
					return rec, nil
				}
			}
			// Fall through: owner did not take it, run locally.
		}
	}
	return s.submitJobLocal(req)
}

func (s *Service) submitJobLocal(req JobSubmitRequest) (jobs.Record, error) {
	raw, err := json.Marshal(req.OptimizeRequest)
	if err != nil {
		return jobs.Record{}, fmt.Errorf("service: marshal job request: %w", err)
	}
	rec, err := s.jobs.Submit(req.ID, raw, optimizeKey(req.OptimizeRequest), req.Priority)
	if errors.Is(err, jobs.ErrDraining) {
		s.met.rejected.Add(1)
		return jobs.Record{}, ErrDraining
	}
	return rec, err
}

// jobRingKey places job ownership on the cluster ring. The prefix keeps
// job placement independent of the result-key space.
func jobRingKey(id string) string { return "job:" + id }

// JobStatus returns a job's record: from the local manager, else from
// the job's cluster owner (single-hop proxy), else adopted from the
// replicated records in the local store — the migration path when the
// owner is dead and this node is its ring successor. Adoption re-queues
// a non-terminal job, so the first status poll after an owner failure
// is also what restarts the work from its last checkpoint.
func (s *Service) JobStatus(ctx context.Context, id string) (jobs.Record, error) {
	if rec, ok := s.jobs.Get(id); ok {
		return rec, nil
	}
	if s.cfg.Cluster != nil && !forwardedFrom(ctx) {
		if owner, self := s.cfg.Cluster.Owner(jobRingKey(id)); !self && s.cfg.Cluster.Healthy(owner) {
			blob, err := s.cfg.Cluster.ForwardGet(ctx, owner, "/v1/jobs/"+id)
			if err == nil {
				var rec jobs.Record
				if json.Unmarshal(blob, &rec) == nil && rec.ID == id {
					return rec, nil
				}
			}
			if errors.Is(err, cluster.ErrNotFound) {
				return jobs.Record{}, ErrJobNotFound
			}
			// Owner unreachable: fall through to the replica path.
		}
	}
	if rec, ok := s.jobs.Adopt(id); ok {
		return rec, nil
	}
	return jobs.Record{}, ErrJobNotFound
}

// RecoverJobs reloads persisted jobs from the store on startup:
// terminal records become visible history, interrupted ones re-enter
// the queue and resume from their newest readable checkpoint.
func (s *Service) RecoverJobs() int { return s.jobs.Recover() }

// JobStats exposes the manager's counters (for lcn-serve's drain log).
func (s *Service) JobStats() jobs.Stats { return s.jobs.Stats() }

// replicateJobBlob copies a persisted job blob to the job's fallback
// owner (first ring successor), so that node can adopt the job if this
// one dies. Best effort: replication failures only cost redundancy.
func (s *Service) replicateJobBlob(key string, val []byte) {
	parts := strings.SplitN(key, "/", 3)
	if len(parts) < 3 {
		return
	}
	peer, ok := s.cfg.Cluster.ReplicaTarget(jobRingKey(parts[1]))
	if !ok || !s.cfg.Cluster.Healthy(peer) {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.cfg.Cluster.PushStore(ctx, peer, key, val); err != nil {
		log.Printf("service: job replicate %s -> %s: %v", key, peer, err)
	}
}

// runOptimizeJob is the jobs.RunFunc: it executes one optimization job
// attempt inside the manager's pool. Cached results short-circuit; a
// fresh run checkpoints at every exchange barrier via the job, resumes
// from the newest readable checkpoint, and falls back to a scratch run
// when the checkpoint does not match the request (schedule drift).
func (s *Service) runOptimizeJob(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	var req OptimizeRequest
	if err := json.Unmarshal(j.Request(), &req); err != nil {
		return nil, fmt.Errorf("service: job request: %w", err)
	}
	key := j.Key()
	if buf, ok := s.results.Get(key); ok {
		s.met.cacheHits.Add(1)
		return json.RawMessage(buf.([]byte)), nil
	}
	if s.cfg.Store != nil {
		if blob, ok := s.cfg.Store.Get(key); ok {
			s.met.storeHits.Add(1)
			s.results.Put(key, blob)
			return json.RawMessage(blob), nil
		}
	}
	resume := s.loadJobCheckpoint(j)
	out, err := s.solveOptimizeContained(ctx, req, key, resume, j)
	var mm *core.CheckpointMismatchError
	if errors.As(err, &mm) {
		log.Printf("service: job %s checkpoint rejected (%v), restarting from scratch", j.ID(), err)
		out, err = s.solveOptimizeContained(ctx, req, key, nil, j)
	}
	if err != nil {
		return nil, err
	}
	s.results.Put(key, []byte(out))
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(key, out); err != nil {
			log.Printf("service: store fill %s: %v", key, err)
		}
	}
	return out, nil
}

// loadJobCheckpoint walks the job's checkpoint sequence downward and
// returns the newest blob that decodes. A torn blob — crash or injected
// jobs.checkpoint fault mid-write — fails json.Unmarshal and is
// skipped, so resume falls back to the previous consistent cut.
func (s *Service) loadJobCheckpoint(j *jobs.Job) *core.SolveCheckpoint {
	for seq := j.CheckpointSeq(); seq >= 1; seq-- {
		blob, ok := j.CheckpointAt(seq)
		if !ok {
			continue
		}
		var cp core.SolveCheckpoint
		if err := json.Unmarshal(blob, &cp); err != nil {
			log.Printf("service: job %s checkpoint %d unreadable (%v), falling back", j.ID(), seq, err)
			continue
		}
		return &cp
	}
	return nil
}

// solveOptimizeContained wraps the solver in the service's panic
// containment so a poisoned job fails its record instead of killing
// the daemon.
func (s *Service) solveOptimizeContained(ctx context.Context, req OptimizeRequest, key string, resume *core.SolveCheckpoint, j *jobs.Job) (json.RawMessage, error) {
	resp, err := s.protect(ctx, func(ctx context.Context) (any, error) {
		return s.solveOptimize(ctx, req, key, resume, j)
	})
	if err != nil {
		return nil, err
	}
	return resp.(json.RawMessage), nil
}

// solveOptimize runs the SA solver for one optimization job and returns
// the marshaled OptimizeResponse. req must be validated and
// scale-pinned. The job carries progress and checkpoints; resume
// restarts the solver from a prior barrier (bitwise-identical to the
// uninterrupted run).
func (s *Service) solveOptimize(ctx context.Context, req OptimizeRequest, key string, resume *core.SolveCheckpoint, j *jobs.Job) (json.RawMessage, error) {
	b, _, err := s.bench(req.CaseRef)
	if err != nil {
		return nil, err
	}
	s.met.optimizeRuns.Add(1)
	in := b.Instance // copy: WpumpStar override must not leak across jobs
	if req.Problem == 2 && req.WpumpStar > 0 {
		in.WpumpStar = req.WpumpStar
	}
	opt := core.Options{
		Stages:        req.stages(),
		NumTrees:      req.NumTrees,
		BranchType:    req.branchType(),
		CoarseM:       req.CoarseM,
		Seed:          req.Seed,
		Chains:        req.Chains,
		ExchangeEvery: req.ExchangeEvery,
		Search:        s.cfg.Search,
		Resume:        resume,
	}
	if j != nil {
		opt.Progress = func(stage int, chains []anneal.ChainProgress) {
			j.SetProgress(stage, chains)
		}
		// The hook runs at exchange barriers with all chains parked, so
		// marshaling synchronously here is a consistent cut; SaveCheckpoint
		// persists it under the next sequence key before the SA resumes.
		opt.Checkpoint = func(cp *core.SolveCheckpoint) {
			blob, err := json.Marshal(cp)
			if err != nil {
				log.Printf("service: job %s marshal checkpoint: %v", j.ID(), err)
				return
			}
			if err := j.SaveCheckpoint(blob); err != nil {
				log.Printf("service: job %s save checkpoint: %v", j.ID(), err)
			}
		}
	}
	if req.Upwind {
		opt.Scheme = ModelSpec{Upwind: true}.scheme()
	}
	var sol *core.Solution
	var solveErr error
	if req.Problem == 1 {
		sol, solveErr = in.SolveProblem1Ctx(ctx, opt)
	} else {
		sol, solveErr = in.SolveProblem2Ctx(ctx, opt)
	}
	if solveErr != nil {
		return nil, solveErr
	}
	var file strings.Builder
	if err := network.Write(&file, sol.Net); err != nil {
		return nil, fmt.Errorf("service: encode optimized network: %w", err)
	}
	resp := &OptimizeResponse{
		CacheKey: key, Problem: req.Problem, Feasible: sol.Eval.Feasible,
		Psys: sol.Eval.Psys, DeltaT: sol.Eval.DeltaT,
		Evals: sol.Evals, Chains: sol.Chains,
		Exchanges: sol.Exchanges, Adoptions: sol.Adoptions,
		CacheHits: sol.Cache.Hits, CacheMisses: sol.Cache.Misses,
		CacheHitRate: sol.Cache.HitRate(),
		NetworkHash:  sol.Net.CanonicalHash(), NetworkFile: file.String(),
	}
	if !math.IsInf(sol.Eval.Wpump, 0) && !math.IsNaN(sol.Eval.Wpump) {
		resp.Wpump = sol.Eval.Wpump
	}
	if sol.Eval.Out != nil {
		resp.Tmax = sol.Eval.Out.Tmax
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("service: marshal optimize response: %w", err)
	}
	return json.RawMessage(out), nil
}

// computeViaJob is the sync /v1/optimize compute path: it attaches to
// an already-running job with the same cache key or submits a fresh
// one, then blocks until the job reaches a terminal event. A drain
// unblocks the wait with ErrDraining while the job's checkpointed state
// persists for the restart.
func (s *Service) computeViaJob(ctx context.Context, req OptimizeRequest, key string) (json.RawMessage, error) {
	j, ok := s.jobs.ActiveByKey(key)
	if !ok {
		raw, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("service: marshal job request: %w", err)
		}
		rec, err := s.jobs.Submit("", raw, key, 0)
		if err != nil {
			if errors.Is(err, jobs.ErrDraining) {
				return nil, ErrDraining
			}
			return nil, err
		}
		if j, ok = s.jobs.Job(rec.ID); !ok {
			return nil, fmt.Errorf("service: submitted job %s vanished", rec.ID)
		}
	}
	return s.waitJob(ctx, j)
}

// waitJob blocks until the job is terminal (returning its result or
// error), the service drains, or ctx expires. On ctx expiry the job
// keeps running in the background — its record and SSE stream stay
// live, and the result lands in the caches for a retry to find.
func (s *Service) waitJob(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	ch, cancel := j.Subscribe()
	defer cancel()
	if rec := j.Snapshot(); rec.State.Terminal() {
		return jobOutcome(rec)
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case ev, open := <-ch:
			if !open {
				// Stream ended without a terminal event reaching us (late
				// subscription); the record has the outcome.
				return jobOutcome(j.Snapshot())
			}
			switch ev.Type {
			case "result":
				return jobOutcome(ev.Job)
			case "drain":
				return nil, ErrDraining
			}
		}
	}
}

// jobOutcome converts a settled record into the sync call's return.
func jobOutcome(rec jobs.Record) (json.RawMessage, error) {
	switch rec.State {
	case jobs.StateDone:
		return rec.Result, nil
	case jobs.StateFailed:
		return nil, errors.New(rec.Error)
	default:
		// Non-terminal after the stream ended: the node is shutting down.
		return nil, ErrDraining
	}
}
