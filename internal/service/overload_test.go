package service

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/overload"
)

// TestSustainedOverloadShedsAndRecovers is the overload chaos drill:
// a flood at ~4x the pool's capacity must resolve promptly — admitted
// requests succeed, the surplus is shed with 429 + Retry-After instead
// of queueing unboundedly — the admission counters must reconcile
// exactly, and the service must be fully usable the moment the burst
// ends.
func TestSustainedOverloadShedsAndRecovers(t *testing.T) {
	s := testService(t, Config{
		Workers: 1,
		Overload: overload.Options{
			Admission:  overload.AdmissionConfig{MaxQueue: 2},
			HedgeAfter: -1,
		},
	})
	s.computeHook = func() { time.Sleep(20 * time.Millisecond) }
	h := s.Handler()
	baseline := runtime.NumGoroutine()

	const flood = 12 // 1 running + 2 queued admitted; the rest shed
	codes := make([]int, flood)
	retryAfter := make([]string, flood)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(simReq(6000 + float64(i))) // distinct keys: no dedup
			rec := post(h, "/v1/simulate", string(body))
			codes[i] = rec.Code
			retryAfter[i] = rec.Header().Get("Retry-After")
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(t0); elapsed > 20*time.Second {
		t.Fatalf("flood took %v; shed latency is not bounded", elapsed)
	}

	oks, sheds := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			oks++
		case http.StatusTooManyRequests:
			sheds++
			if secs, err := strconv.Atoi(retryAfter[i]); err != nil || secs < 1 {
				t.Fatalf("429 without a usable Retry-After header: %q", retryAfter[i])
			}
		default:
			t.Fatalf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	if oks == 0 || sheds == 0 {
		t.Fatalf("flood resolved %d OK / %d shed; want both nonzero", oks, sheds)
	}

	m := s.Metrics()
	adm := m.Overload.Admission.Interactive
	if adm.Offered != adm.Admitted+adm.Shed+adm.Abandoned {
		t.Fatalf("admission counters do not reconcile: offered=%d admitted=%d shed=%d abandoned=%d",
			adm.Offered, adm.Admitted, adm.Shed, adm.Abandoned)
	}
	if m.Overload.Shed != int64(sheds) {
		t.Fatalf("metrics shed = %d, HTTP saw %d", m.Overload.Shed, sheds)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Fatalf("leaked slots after the flood: in_flight=%d queue_depth=%d", m.InFlight, m.QueueDepth)
	}

	// Goroutine recovery: everything the flood spawned must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d, started at %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Recovery: the very next request must be served normally.
	s.computeHook = nil
	body, _ := json.Marshal(simReq(7777))
	if rec := post(h, "/v1/simulate", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("service unusable after the flood: status %d body %s", rec.Code, rec.Body)
	}
}

// TestBrownoutDowngradeIsServedButNeverCached: at the downgrade rung a
// 4RM request is answered by the cheap 2RM substitute, flagged
// Degraded — and NOT cached under the full-fidelity key, so the first
// request after the brownout clears recomputes the real answer.
func TestBrownoutDowngradeIsServedButNeverCached(t *testing.T) {
	s := testService(t, Config{
		Workers: 1,
		Overload: overload.Options{
			Brownout:   overload.BrownoutConfig{EscalateAfter: 1, DeescalateAfter: 1, Hold: time.Millisecond},
			HedgeAfter: -1,
		},
	})
	if err := faults.Arm("overload.pressure=first:2"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	// Two forced-over pressure samples climb two rungs: healthy ->
	// stale-serve -> downgrade. Deterministic: the fault decides the
	// samples, not actual load.
	for i := 0; i < 2; i++ {
		if _, err := s.Simulate(ctxBG(), simReq(5000+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if name := s.Metrics().Overload.Brownout.LevelName; name != "downgrade" {
		t.Fatalf("level after 2 forced samples = %q, want downgrade", name)
	}

	req := simReq(8000)
	req.ModelSpec = ModelSpec{Model: "4rm"}
	buf, err := s.Simulate(ctxBG(), req)
	if err != nil {
		t.Fatal(err)
	}
	var degraded SimulateResponse
	if err := json.Unmarshal(buf, &degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded {
		t.Fatal("downgraded response not flagged Degraded")
	}
	m := s.Metrics()
	if m.Overload.DowngradedServed != 1 {
		t.Fatalf("downgraded_served = %d, want 1", m.Overload.DowngradedServed)
	}
	// Pump calm pressure samples (cache hits feed Observe too) until
	// the Hold dwell passes and the ladder steps below the downgrade
	// rung; the identical request must then recompute at full fidelity —
	// a cache hit would mean the degraded bytes poisoned the
	// full-fidelity key.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Overload.Brownout.Level >= int(overload.LevelDowngrade) {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never de-escalated: %+v", s.Metrics().Overload.Brownout)
		}
		if _, err := s.Simulate(ctxBG(), simReq(5000)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	evalsBefore := s.Metrics().Evaluations
	buf2, err := s.Simulate(ctxBG(), req)
	if err != nil {
		t.Fatal(err)
	}
	var full SimulateResponse
	if err := json.Unmarshal(buf2, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Fatal("request after brownout cleared still served degraded")
	}
	if got := s.Metrics().Evaluations; got != evalsBefore+1 {
		t.Fatalf("evaluations = %d, want %d (degraded result must not be cached)", got, evalsBefore+1)
	}
}

// TestBrownoutPauseShedsJobSubmissions: at the top rung new job
// admissions are refused with 429, while interactive traffic still
// flows (degraded).
func TestBrownoutPauseShedsJobSubmissions(t *testing.T) {
	s := testService(t, Config{
		Workers: 1,
		Overload: overload.Options{
			Brownout:   overload.BrownoutConfig{EscalateAfter: 1},
			HedgeAfter: -1,
		},
	})
	if err := faults.Arm("overload.pressure=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	h := s.Handler()

	for i := 0; i < 3; i++ { // healthy -> stale -> downgrade -> pause
		if _, err := s.Simulate(ctxBG(), simReq(5100+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if name := s.Metrics().Overload.Brownout.LevelName; name != "pause" {
		t.Fatalf("level = %q, want pause", name)
	}
	rec := post(h, "/v1/jobs", `{"case": 1}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("job submit at pause: status %d body %s, want 429", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("job shed without a Retry-After header")
	}
	if got := s.Metrics().Overload.JobsShed; got != 1 {
		t.Fatalf("jobs_shed = %d, want 1", got)
	}
	// Interactive traffic still answered (degraded is fine, refused is not).
	if _, err := s.Simulate(ctxBG(), simReq(5200)); err != nil {
		t.Fatalf("interactive request refused at pause: %v", err)
	}
}

func ctxBG() context.Context { return context.Background() }
