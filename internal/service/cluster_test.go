package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lcn3d/internal/cluster"
	"lcn3d/internal/store"
)

// openStoreT opens a store with auto-flush effectively disabled, so a
// test controls exactly when batches reach disk (Drain or Flush).
func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{
		FlushCount:    1 << 20,
		FlushBytes:    1 << 30,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

func simReq(psys float64) SimulateRequest {
	return SimulateRequest{
		CaseRef:   CaseRef{Case: 1},
		ModelSpec: ModelSpec{Model: "2rm", CoarseM: 4},
		Network:   NetworkSpec{Generator: "straight"},
		Psys:      psys,
	}
}

// TestDrainFlushesStoreAndRestartServesFromDisk is satellite (2) plus
// acceptance criterion (c): results computed before a SIGTERM drain are
// flushed to disk by Drain itself, and a cold-restarted service answers
// the same request from the store — store hit counter up, zero solver
// runs — with bitwise-identical bytes.
func TestDrainFlushesStoreAndRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	st := openStoreT(t, dir)
	s1 := testService(t, Config{Store: st})
	want, err := s1.Simulate(context.Background(), simReq(8e3))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if got := st.Stats().Pending; got == 0 {
		t.Fatal("result not pending in the store batcher before drain")
	}
	s1.Drain() // must flush the pending batch (satellite 2)
	if got := st.Stats().Pending; got != 0 {
		t.Fatalf("drain left %d records pending", got)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store.Close: %v", err)
	}

	// Cold restart: fresh service, fresh store handle, same directory.
	st2 := openStoreT(t, dir)
	defer st2.Close()
	if got := st2.Stats().Records; got != 1 {
		t.Fatalf("reopened store has %d records, want 1", got)
	}
	s2 := testService(t, Config{Store: st2})
	got, err := s2.Simulate(context.Background(), simReq(8e3))
	if err != nil {
		t.Fatalf("Simulate after restart: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted service returned different bytes")
	}
	m := s2.Metrics()
	if m.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", m.StoreHits)
	}
	if m.Evaluations != 0 {
		t.Errorf("evaluations = %d, want 0 (must not re-run the solver)", m.Evaluations)
	}
	// Promoted into the memory LRU: a repeat is a tier-1 hit.
	if _, err := s2.Simulate(context.Background(), simReq(8e3)); err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if m := s2.Metrics(); m.StoreHits != 1 || m.CacheHits != 1 {
		t.Errorf("repeat: store hits %d cache hits %d, want 1 and 1", m.StoreHits, m.CacheHits)
	}
}

// testFleet starts n services behind real HTTP listeners sharing one
// peer list, each with its own store directory.
func testFleet(t *testing.T, n int) ([]*Service, []*httptest.Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	svcs := make([]*Service, n)
	servers := make([]*httptest.Server, n)
	for i := range svcs {
		cl, err := cluster.New(cluster.Options{Self: addrs[i], Peers: addrs})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Stop)
		svcs[i] = testService(t, Config{
			Store:   openStoreT(t, t.TempDir()),
			Cluster: cl,
		})
		t.Cleanup(func() { svcs[i].cfg.Store.Close() })
		srv := httptest.NewUnstartedServer(svcs[i].Handler())
		srv.Listener.Close()
		srv.Listener = listeners[i]
		srv.Start()
		t.Cleanup(srv.Close)
		servers[i] = srv
	}
	return svcs, servers, addrs
}

func postSim(t *testing.T, url string, req SimulateRequest) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestFleetForwardsToOwnerSingleCompute is acceptance criterion (d):
// the same request sent to every node of a 3-node fleet runs the solver
// exactly once fleet-wide — the owner computes, the other two answer
// via the peer tier (store fetch or forwarded request) — and every node
// returns bitwise-identical bytes.
func TestFleetForwardsToOwnerSingleCompute(t *testing.T) {
	svcs, servers, _ := testFleet(t, 3)

	req := simReq(9e3)
	var first []byte
	for i, srv := range servers {
		got := postSim(t, srv.URL, req)
		if i == 0 {
			first = got
		} else if !bytes.Equal(got, first) {
			t.Fatalf("node %d returned different bytes", i)
		}
	}

	var evals, peerHits int64
	for _, s := range svcs {
		m := s.Metrics()
		evals += m.Evaluations
		peerHits += m.PeerHits
	}
	if evals != 1 {
		t.Errorf("fleet-wide evaluations = %d, want exactly 1", evals)
	}
	// Whichever node owns the key answers locally; the other two reach
	// it through the peer tier.
	if peerHits != 2 {
		t.Errorf("fleet-wide peer hits = %d, want 2", peerHits)
	}
}

// TestDeadOwnerFallsBackToLocalCompute: when the owner of a key is
// down, a surviving node computes locally instead of erroring.
func TestDeadOwnerFallsBackToLocalCompute(t *testing.T) {
	svcs, servers, addrs := testFleet(t, 3)

	// Find a request owned by node 0 from the viewpoint of node 1.
	other := svcs[1]
	var req SimulateRequest
	found := false
	for psys := 5e3; psys < 5e3+100; psys++ {
		r := simReq(psys)
		p, err := other.prepare(r.CaseRef, r.ModelSpec, r.Network)
		if err != nil {
			t.Fatal(err)
		}
		key := cacheKey("simulate", p.ref, p.ms, p.netHash, r.Psys)
		if owner, self := other.cfg.Cluster.Owner(key); !self && owner == addrs[0] {
			req, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no probed key owned by node 0")
	}

	servers[0].Close() // kill the owner
	got := postSim(t, servers[1].URL, req)
	var resp SimulateResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	m := svcs[1].Metrics()
	if m.LocalFallbacks != 1 {
		t.Errorf("local fallbacks = %d, want 1", m.LocalFallbacks)
	}
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1 (computed locally)", m.Evaluations)
	}
}

// TestForwardedRequestIsNotReforwarded: a request that already hopped
// once (loop-guard header set) is answered locally even when its key is
// owned elsewhere — forwarding is single-hop by construction.
func TestForwardedRequestIsNotReforwarded(t *testing.T) {
	// A 2-node view where the other node is unreachable; every key it
	// owns would otherwise be forwarded (and fail into fallback).
	cl, err := cluster.New(cluster.Options{Self: "self:1", Peers: []string{"self:1", "198.51.100.1:9"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	s := testService(t, Config{Cluster: cl})

	// Find a key the dead peer owns.
	var req SimulateRequest
	found := false
	for psys := 6e3; psys < 6e3+100; psys++ {
		r := simReq(psys)
		p, err := s.prepare(r.CaseRef, r.ModelSpec, r.Network)
		if err != nil {
			t.Fatal(err)
		}
		key := cacheKey("simulate", p.ref, p.ms, p.netHash, r.Psys)
		if _, self := s.cfg.Cluster.Owner(key); !self {
			req, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no probed key owned by the peer")
	}

	if _, err := s.Simulate(WithForwarded(context.Background()), req); err != nil {
		t.Fatalf("forwarded request: %v", err)
	}
	m := s.Metrics()
	if m.PeerHits != 0 || m.LocalFallbacks != 0 {
		t.Errorf("forwarded request touched the peer tier: peer hits %d, fallbacks %d",
			m.PeerHits, m.LocalFallbacks)
	}
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1", m.Evaluations)
	}
}

// TestPropagatedDeadlineCapsPeerWork: a request arriving with the
// cluster deadline header is bounded by that budget on this node — the
// forwarded work 504s with the caller's deadline instead of running for
// the service default.
func TestPropagatedDeadlineCapsPeerWork(t *testing.T) {
	s := testService(t, Config{Workers: 1})
	s.computeHook = func() { time.Sleep(300 * time.Millisecond) }
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(simReq(4242))
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.DeadlineHeader, "50")
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (propagated deadline ignored)", resp.StatusCode)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("request held for %v despite a 50ms propagated budget", elapsed)
	}
}

// TestStoreFetchEndpointServesAndCounts: GET /v1/store/{hash} returns
// the cached bytes for a known key, 404 for an unknown one, and never
// computes.
func TestStoreFetchEndpointServesAndCounts(t *testing.T) {
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	want, err := s.Simulate(context.Background(), simReq(7e3))
	if err != nil {
		t.Fatal(err)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(want, &resp); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(srv.URL + "/v1/store/" + resp.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	if r.StatusCode != http.StatusOK || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("store fetch: %d, %q", r.StatusCode, buf.String())
	}

	if r, err = http.Get(srv.URL + "/v1/store/deadbeef"); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: %d, want 404", r.StatusCode)
	}

	m := s.Metrics()
	if m.StoreFetchServed != 1 {
		t.Errorf("store fetch served = %d, want 1", m.StoreFetchServed)
	}
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1 (fetches never compute)", m.Evaluations)
	}
}
