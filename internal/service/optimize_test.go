package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// optReq is a small deterministic optimization job: fixed structure and
// a single orientation keep it to a handful of SA evaluations.
func optReq() OptimizeRequest {
	return OptimizeRequest{
		CaseRef:  CaseRef{Case: 1, Scale: 15},
		Problem:  1,
		Seed:     7,
		Chains:   2,
		NumTrees: 2,
		Branch:   2,
		CoarseM:  3,
	}
}

func decodeOpt(t *testing.T, buf []byte) OptimizeResponse {
	t.Helper()
	var resp OptimizeResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatalf("bad optimize response %s: %v", buf, err)
	}
	return resp
}

// TestOptimizeDeterministicAndCached: a repeated identical job is served
// from the result cache bitwise identically, and an explicit rerun on a
// fresh service reproduces the same network (SA determinism surviving
// the service plumbing).
func TestOptimizeDeterministicAndCached(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	s := testService(t, Config{})
	buf1, err := s.Optimize(context.Background(), optReq())
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := s.Optimize(context.Background(), optReq())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("repeated identical job returned different bytes")
	}
	m := s.Metrics()
	if m.CacheHits < 1 || m.Optimize.Runs != 1 {
		t.Fatalf("expected 1 computed run and a cache hit, got runs=%d hits=%d",
			m.Optimize.Runs, m.CacheHits)
	}

	fresh := testService(t, Config{})
	buf3, err := fresh.Optimize(context.Background(), optReq())
	if err != nil {
		t.Fatal(err)
	}
	r1, r3 := decodeOpt(t, buf1), decodeOpt(t, buf3)
	if r1.NetworkHash != r3.NetworkHash || r1.Wpump != r3.Wpump || r1.Evals != r3.Evals {
		t.Fatalf("rerun on fresh service diverged: %+v vs %+v", r1, r3)
	}
	if r1.Chains != 2 {
		t.Fatalf("chains = %d, want 2", r1.Chains)
	}
	if r1.Evals <= 0 || r1.CacheHits+r1.CacheMisses == 0 {
		t.Fatalf("missing SA bookkeeping: %+v", r1)
	}
}

// TestOptimizeNetworkFileRoundTrips: the returned network file must be
// directly usable as the input of an evaluate request, and its canonical
// identity must match the reported hash.
func TestOptimizeNetworkFileRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	s := testService(t, Config{})
	buf, err := s.Optimize(context.Background(), optReq())
	if err != nil {
		t.Fatal(err)
	}
	r := decodeOpt(t, buf)
	if r.NetworkFile == "" || !strings.HasPrefix(r.NetworkFile, "network ") {
		t.Fatalf("network_file missing or malformed: %q", r.NetworkFile)
	}
	evalBuf, err := s.Evaluate(context.Background(), EvaluateRequest{
		CaseRef:   CaseRef{Case: 1, Scale: 15},
		ModelSpec: ModelSpec{Model: "4rm"},
		Network:   NetworkSpec{File: r.NetworkFile},
	})
	if err != nil {
		t.Fatalf("evaluate of optimized network: %v", err)
	}
	var ev EvaluateResponse
	if err := json.Unmarshal(evalBuf, &ev); err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("optimized network should evaluate feasible")
	}
}

// TestOptimizeBatch fans three jobs (two identical) through the pool:
// order-preserving results, dedup of the identical pair, and per-job
// error isolation for the malformed one.
func TestOptimizeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	s := testService(t, Config{})
	bad := optReq()
	bad.Problem = 3
	batch := OptimizeBatchRequest{Jobs: []OptimizeRequest{optReq(), bad, optReq()}}
	buf, err := s.OptimizeBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	var resp OptimizeBatchResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(resp.Results))
	}
	if resp.Results[1].Error == "" || resp.Results[1].Result != nil {
		t.Fatalf("job 2 should fail: %+v", resp.Results[1])
	}
	if resp.Results[0].Error != "" || resp.Results[2].Error != "" {
		t.Fatalf("good jobs failed: %+v", resp.Results)
	}
	if !bytes.Equal(resp.Results[0].Result, resp.Results[2].Result) {
		t.Fatal("identical jobs in one batch returned different bytes")
	}
	if s.Metrics().Optimize.Runs != 1 {
		t.Fatalf("identical jobs should compute once, ran %d times", s.Metrics().Optimize.Runs)
	}
}

// TestOptimizeHTTP drives the endpoint through the HTTP handler in both
// shapes, and checks progress tracking is exported (and cleared) via the
// metrics document.
func TestOptimizeHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SA optimizer")
	}
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp.StatusCode, out.Bytes()
	}

	code, body := post(`{"case":1,"scale":15,"seed":7,"chains":2,"num_trees":2,"branch":2,"coarse_m":3}`)
	if code != 200 {
		t.Fatalf("single job: status %d body %s", code, body)
	}
	single := decodeOpt(t, body)
	if single.NetworkHash == "" {
		t.Fatalf("no network hash in %s", body)
	}

	code, body = post(`{"jobs":[{"case":1,"scale":15,"seed":7,"chains":2,"num_trees":2,"branch":2,"coarse_m":3}]}`)
	if code != 200 {
		t.Fatalf("batch: status %d body %s", code, body)
	}
	var batchResp OptimizeBatchResponse
	if err := json.Unmarshal(body, &batchResp); err != nil || len(batchResp.Results) != 1 {
		t.Fatalf("bad batch response %s (%v)", body, err)
	}

	if code, body = post(`{"case":1,"chains":99}`); code != 400 {
		t.Fatalf("chains out of range: status %d body %s", code, body)
	}
	if code, body = post(`{"bogus":1}`); code != 400 {
		t.Fatalf("unknown field: status %d body %s", code, body)
	}

	// Terminal jobs stay visible: after completion the snapshot must
	// report no running jobs but retain the finished records, each with
	// a completion timestamp (the pre-jobs tracker deleted entries at
	// completion, which made finished work invisible to metrics).
	m := s.Metrics()
	if m.Optimize.Active != 0 || m.Optimize.Queued != 0 {
		t.Fatalf("jobs still live after completion: %+v", m.Optimize)
	}
	if len(m.Optimize.Jobs) == 0 {
		t.Fatalf("terminal job records were dropped from metrics: %+v", m.Optimize)
	}
	for _, j := range m.Optimize.Jobs {
		if j.State != "done" || j.CompletedUnixMS == 0 {
			t.Fatalf("terminal entry missing completion data: %+v", j)
		}
	}
	if m.Optimize.Runs < 1 {
		t.Fatal("optimize runs not counted")
	}
	if m.Optimize.Checkpoints < 1 {
		t.Fatal("no checkpoints recorded for a completed run")
	}
}
