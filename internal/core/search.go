package core

import (
	"context"
	"fmt"
	"math"

	"lcn3d/internal/thermal"
)

// SearchOptions tunes the one-dimensional pressure searches.
type SearchOptions struct {
	PInit  float64 // initial probe pressure (default 10 kPa)
	RInit  float64 // initial step ratio r_init of Algorithm 3 (default 0.5)
	RelTol float64 // relative convergence tolerance (default 0.01)
	PMin   float64 // lowest physical pressure considered (default 1 Pa)
	PMax   float64 // highest pressure considered (default 10 MPa)
	// PlateauRuns is the number of consecutive right-moves with nearly
	// unchanged f that declares a monotone plateau (Algorithm 3 line 11).
	PlateauRuns int
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.PInit <= 0 {
		o.PInit = 10e3
	}
	if o.RInit <= 0 {
		o.RInit = 0.5
	}
	if o.RelTol <= 0 {
		o.RelTol = 0.01
	}
	if o.PMin <= 0 {
		o.PMin = 1
	}
	if o.PMax <= 0 {
		o.PMax = 10e6
	}
	if o.PlateauRuns <= 0 {
		o.PlateauRuns = 4
	}
	return o
}

// Alg3Result is the outcome of the Algorithm 3 search.
type Alg3Result struct {
	Psys     float64          // feasible pressure, or the minimizer of f if infeasible
	Out      *thermal.Outcome // simulation at Psys
	Feasible bool             // whether f(Psys) <= ΔT*
	Probes   int              // simulator invocations (before memoization)
}

// MinPressureForDeltaT is Algorithm 3: find the smallest P_sys with
// f(P_sys) = ΔT(P_sys) <= deltaTStar, exploiting that f is either
// uni-modal or monotonically decreasing (Section 4.1). If no feasible
// pressure exists it returns the minimizer of f with Feasible=false.
// Cancelling ctx aborts the search at the next probe.
func MinPressureForDeltaT(ctx context.Context, sim SimFunc, deltaTStar float64, opt SearchOptions) (_ Alg3Result, err error) {
	defer RecoverToError(&err)
	opt = opt.withDefaults()
	sim = cancellable(ctx, sim)
	probes := 0
	f := func(p float64) (float64, error) {
		probes++
		out, err := sim(p)
		if err != nil {
			return 0, err
		}
		return out.DeltaT, nil
	}
	finish := func(p float64, feasible bool) (Alg3Result, error) {
		out, err := sim(p)
		if err != nil {
			return Alg3Result{}, err
		}
		return Alg3Result{Psys: p, Out: out, Feasible: feasible && out.DeltaT <= deltaTStar*(1+1e-9), Probes: probes}, nil
	}

	// Lines 1-4: establish P0 with f(P0) > ΔT* and f decreasing at P0.
	p0 := opt.PInit
	for {
		f0, err := f(p0)
		if err != nil {
			return Alg3Result{}, fmt.Errorf("core: Algorithm 3 init: %w", err)
		}
		if f0 < deltaTStar {
			if p0 <= opt.PMin {
				// Feasible all the way down to the physical floor.
				return finish(p0, true)
			}
			p0 = math.Max(p0/2, opt.PMin)
			continue
		}
		p1 := p0 * (1 + opt.RInit)
		f1, err := f(p1)
		if err != nil {
			return Alg3Result{}, err
		}
		if f0 < f1 {
			// f increasing at P0: we are right of the minimum; move left.
			if p0 <= opt.PMin {
				return finish(p0, false)
			}
			p0 = math.Max(p0/2, opt.PMin)
			continue
		}
		// Lines 5-11: expand right until f(P1) <= ΔT* or a minimum/
		// plateau proves infeasibility.
		s := p1 - p0
		plateau := 0
		for {
			f1, err = f(p1)
			if err != nil {
				return Alg3Result{}, err
			}
			if f1 <= deltaTStar {
				break // crossing bracketed in [p0, p1]
			}
			s *= 2
			p2 := p1 + s
			if p2 > opt.PMax {
				return finish(p1, false)
			}
			f2, err := f(p2)
			if err != nil {
				return Alg3Result{}, err
			}
			// Line 7: contracted search once past the minimum.
			for f1 < f2 {
				if math.Abs(1-p0/p1) < opt.RelTol && math.Abs(1-p2/p1) < opt.RelTol {
					return finish(p1, false) // converged on the minimum; infeasible
				}
				p2 = p1
				p1 = (p0 + p2) / 2
				s = p2 - p1
				f1, err = f(p1)
				if err != nil {
					return Alg3Result{}, err
				}
				f2, err = f(p2)
				if err != nil {
					return Alg3Result{}, err
				}
				if f1 <= deltaTStar {
					break
				}
			}
			if f1 <= deltaTStar {
				break
			}
			// Line 10: move right.
			if math.Abs(1-f1/f2) < opt.RelTol {
				plateau++
				if plateau >= opt.PlateauRuns {
					return finish(p2, false) // monotone plateau above ΔT*
				}
			} else {
				plateau = 0
			}
			p0, p1 = p1, p2
		}
		// Lines 12-13: bisect for the crossing f(P) = ΔT* in [p0, p1].
		for math.Abs(1-p0/p1) > opt.RelTol {
			pm := (p0 + p1) / 2
			fm, err := f(pm)
			if err != nil {
				return Alg3Result{}, err
			}
			if fm > deltaTStar {
				p0 = pm
			} else {
				p1 = pm
			}
		}
		return finish(p1, true)
	}
}

// MinPressureForTmax performs the second step of Algorithm 2: given that
// T_max = h(P_sys) decreases monotonically, find the smallest pressure
// >= pLo with h <= tmaxStar by doubling and bisection. Cancelling ctx
// aborts the search at the next probe.
func MinPressureForTmax(ctx context.Context, sim SimFunc, tmaxStar, pLo float64, opt SearchOptions) (_ float64, _ *thermal.Outcome, _ bool, err error) {
	defer RecoverToError(&err)
	opt = opt.withDefaults()
	h := cancellable(ctx, sim)

	lo := math.Max(pLo, opt.PMin)
	out, err := h(lo)
	if err != nil {
		return 0, nil, false, err
	}
	if out.Tmax <= tmaxStar {
		return lo, out, true, nil
	}
	hi := lo
	var outHi *thermal.Outcome
	for {
		hi *= 2
		if hi > opt.PMax {
			return hi / 2, out, false, nil
		}
		outHi, err = h(hi)
		if err != nil {
			return 0, nil, false, err
		}
		if outHi.Tmax <= tmaxStar {
			break
		}
		out = outHi
	}
	for math.Abs(1-lo/hi) > opt.RelTol {
		mid := (lo + hi) / 2
		outMid, err := h(mid)
		if err != nil {
			return 0, nil, false, err
		}
		if outMid.Tmax <= tmaxStar {
			hi, outHi = mid, outMid
		} else {
			lo = mid
		}
	}
	return hi, outHi, true, nil
}

// GoldenSectionMinDeltaT minimizes f(P_sys) = ΔT on [lo, hi] by golden
// section search (Section 5, solving Eq. (13) when the pressure budget
// lies past the minimum of f). The int result counts the simulator
// invocations issued (before any memoization the caller wraps sim in), so
// evaluation budgets can be accounted exactly. Cancelling ctx aborts the
// search at the next probe.
func GoldenSectionMinDeltaT(ctx context.Context, sim SimFunc, lo, hi float64, opt SearchOptions) (_ float64, _ *thermal.Outcome, _ int, err error) {
	defer RecoverToError(&err)
	opt = opt.withDefaults()
	sim = cancellable(ctx, sim)
	if hi < lo {
		lo, hi = hi, lo
	}
	probes := 0
	probe := func(p float64) (*thermal.Outcome, error) {
		probes++
		return sim(p)
	}
	const invPhi = 0.6180339887498949
	f := func(p float64) (float64, error) {
		out, err := probe(p)
		if err != nil {
			return 0, err
		}
		return out.DeltaT, nil
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, err := f(c)
	if err != nil {
		return 0, nil, probes, err
	}
	fd, err := f(d)
	if err != nil {
		return 0, nil, probes, err
	}
	for math.Abs(1-a/b) > opt.RelTol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			if fc, err = f(c); err != nil {
				return 0, nil, probes, err
			}
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			if fd, err = f(d); err != nil {
				return 0, nil, probes, err
			}
		}
	}
	// Also consider the interval endpoints (the minimum may sit on the
	// pressure budget boundary).
	best := (a + b) / 2
	outBest, err := probe(best)
	if err != nil {
		return 0, nil, probes, err
	}
	for _, p := range []float64{lo, hi} {
		out, err := probe(p)
		if err != nil {
			return 0, nil, probes, err
		}
		if out.DeltaT < outBest.DeltaT {
			best, outBest = p, out
		}
	}
	return best, outBest, probes, nil
}
