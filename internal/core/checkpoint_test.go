package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"lcn3d/internal/network"
	"lcn3d/internal/thermal"
)

func resumeOptions(seed int64, problem int) Options {
	opt := Options{
		Seed:          seed,
		Chains:        2,
		CoarseM:       3,
		NumTrees:      2,
		BranchType:    network.Branch2,
		ExchangeEvery: 2, // several barriers (checkpoints) per stage
		Orientations:  []network.Orientation{{Rotations: 0}, {Rotations: 2}},
	}
	if problem == 1 {
		opt.Stages = []Stage{
			{Iterations: 4, Step: 4, FixedPsys: true},
			{Iterations: 4, Step: 2},
		}
	} else {
		opt.Stages = []Stage{
			{Iterations: 4, Step: 4, GroupSize: 3},
			{Iterations: 4, Step: 2, GroupSize: 3},
		}
	}
	return opt
}

func runProblem(t *testing.T, in *Instance, ctx context.Context, opt Options, problem int) (*Solution, error) {
	t.Helper()
	if problem == 1 {
		return in.SolveProblem1Ctx(ctx, opt)
	}
	return in.SolveProblem2Ctx(ctx, opt)
}

// TestSolveCheckpointResumeBitwise is the keystone: interrupt a solve at
// a checkpoint, resume from the JSON round-tripped snapshot, and require
// the final best network, cost, and evaluation count to be bitwise
// identical to the uninterrupted run with the same seed. Problem 2's
// grouped stages cover the mid-group optimal-pressure state.
func TestSolveCheckpointResumeBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("SA run")
	}
	for _, problem := range []int{1, 2} {
		in := testInstance(t, 10, 3)
		opt := resumeOptions(11, problem)

		straight, err := runProblem(t, in, context.Background(), opt, problem)
		if err != nil {
			t.Fatalf("problem %d straight run: %v", problem, err)
		}

		// Interrupted run: cancel from inside the Checkpoint hook after a
		// few barriers — exactly how a drain stops a job mid-stage.
		ctx, cancel := context.WithCancel(context.Background())
		var blobs [][]byte
		iopt := opt
		iopt.Checkpoint = func(cp *SolveCheckpoint) {
			blob, err := json.Marshal(cp)
			if err != nil {
				t.Errorf("marshal checkpoint: %v", err)
			}
			blobs = append(blobs, blob)
			if len(blobs) == 3 {
				cancel()
			}
		}
		if _, err := runProblem(t, in, ctx, iopt, problem); !errors.Is(err, context.Canceled) {
			t.Fatalf("problem %d interrupted run: err=%v, want context.Canceled", problem, err)
		}
		cancel()
		if len(blobs) < 3 {
			t.Fatalf("problem %d: only %d checkpoints captured", problem, len(blobs))
		}

		// Resume each captured checkpoint; all must converge on the
		// straight run's answer.
		for i, blob := range blobs {
			var cp SolveCheckpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				t.Fatalf("unmarshal checkpoint %d: %v", i, err)
			}
			ropt := opt
			ropt.Resume = &cp
			resumed, err := runProblem(t, in, context.Background(), ropt, problem)
			if err != nil {
				t.Fatalf("problem %d resume from checkpoint %d: %v", problem, i, err)
			}
			if resumed.Net.CanonicalHash() != straight.Net.CanonicalHash() {
				t.Fatalf("problem %d checkpoint %d: network hash %s, want %s",
					problem, i, resumed.Net.CanonicalHash(), straight.Net.CanonicalHash())
			}
			re, se := resumed.Eval, straight.Eval
			if re.Feasible != se.Feasible || re.Psys != se.Psys || re.Wpump != se.Wpump ||
				re.DeltaT != se.DeltaT || re.Probes != se.Probes {
				t.Fatalf("problem %d checkpoint %d: eval %+v, want %+v",
					problem, i, re, se)
			}
			// The full thermal fields must match bitwise too; only solver
			// amortization counters (warm-start history) may differ.
			ro, so := *re.Out, *se.Out
			ro.Probe, so.Probe = thermal.ProbeStats{}, thermal.ProbeStats{}
			ro.SolveIters, so.SolveIters = 0, 0
			if !reflect.DeepEqual(ro, so) {
				t.Fatalf("problem %d checkpoint %d: outcome fields diverged", problem, i)
			}
			if resumed.Evals != straight.Evals {
				t.Fatalf("problem %d checkpoint %d: %d evals, want %d",
					problem, i, resumed.Evals, straight.Evals)
			}
			if resumed.Exchanges != straight.Exchanges || resumed.Adoptions != straight.Adoptions {
				t.Fatalf("problem %d checkpoint %d: exchanges/adoptions %d/%d, want %d/%d",
					problem, i, resumed.Exchanges, resumed.Adoptions,
					straight.Exchanges, straight.Adoptions)
			}
		}
	}
}

// TestSolveCheckpointMismatch: a checkpoint from another run must be
// rejected with a typed error, not silently resumed.
func TestSolveCheckpointMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("SA run")
	}
	in := testInstance(t, 10, 3)
	opt := resumeOptions(11, 1)
	var cp *SolveCheckpoint
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopt := opt
	iopt.Checkpoint = func(c *SolveCheckpoint) { cp = c; cancel() }
	runProblem(t, in, ctx, iopt, 1) //nolint:errcheck // interrupted on purpose
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}

	var cme *CheckpointMismatchError
	bad := opt
	bad.Seed = 99
	bad.Resume = cp
	if _, err := in.SolveProblem1Ctx(context.Background(), bad); !errors.As(err, &cme) {
		t.Fatalf("seed mismatch: err=%v, want CheckpointMismatchError", err)
	}
	bad = opt
	bad.Resume = cp
	if _, err := in.SolveProblem2Ctx(context.Background(), bad); !errors.As(err, &cme) {
		t.Fatalf("problem mismatch: err=%v, want CheckpointMismatchError", err)
	}
}
