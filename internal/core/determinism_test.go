package core

import (
	"runtime"
	"testing"

	"lcn3d/internal/network"
)

// solveFingerprint runs SolveProblem1 on a small instance with a short
// two-stage schedule and returns everything that must be reproducible:
// the best network's canonical hash, the final cost, and the evaluation
// count.
func solveFingerprint(t *testing.T, chains, parallelism int) (string, float64, int) {
	t.Helper()
	in := testInstance(t, 10, 3)
	// Fixed structure and a two-orientation sweep keep the run about the
	// SA engine, not the (deterministic, serial) structure search.
	sol, err := in.SolveProblem1(Options{
		Seed:         7,
		Chains:       chains,
		Parallelism:  parallelism,
		CoarseM:      3,
		NumTrees:     2,
		BranchType:   network.Branch2,
		Orientations: []network.Orientation{{Rotations: 0}, {Rotations: 2}},
		Stages: []Stage{
			{Iterations: 3, Step: 2, FixedPsys: true},
			{Iterations: 2, Step: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Net.CanonicalHash(), sol.Eval.Wpump, sol.Evals
}

// TestSolveProblem1DeterministicAcrossWorkers is the engine's contract:
// for a fixed root seed and chain count, the optimization result is
// bitwise identical regardless of evaluation parallelism and GOMAXPROCS.
// Worker count moves wall-clock, never the answer.
func TestSolveProblem1DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration SA run")
	}
	for _, chains := range []int{1, 2, 8} {
		refHash, refCost, refEvals := solveFingerprint(t, chains, 1)
		for _, par := range []int{2, runtime.NumCPU()} {
			hash, cost, evals := solveFingerprint(t, chains, par)
			if hash != refHash || cost != refCost || evals != refEvals {
				t.Fatalf("chains=%d parallelism=%d diverged: %s/%.17g/%d vs %s/%.17g/%d",
					chains, par, hash, cost, evals, refHash, refCost, refEvals)
			}
		}
		// GOMAXPROCS=1 forces full serialization of whatever goroutines
		// exist; the reduction order must not care.
		old := runtime.GOMAXPROCS(1)
		hash, cost, evals := solveFingerprint(t, chains, runtime.NumCPU())
		runtime.GOMAXPROCS(old)
		if hash != refHash || cost != refCost || evals != refEvals {
			t.Fatalf("chains=%d GOMAXPROCS=1 diverged: %s/%.17g/%d vs %s/%.17g/%d",
				chains, hash, cost, evals, refHash, refCost, refEvals)
		}
	}
}

// TestSolveProblem2DeterministicAcrossWorkers covers the grouped-
// iteration Problem 2 path, whose per-chain optimal-pressure state is
// the subtle part of the determinism argument: it is refreshed only at
// iteration boundaries (OnIteration), never from concurrent candidate
// evaluations.
func TestSolveProblem2DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration SA run")
	}
	run := func(parallelism int) (string, float64) {
		in := testInstance(t, 10, 3)
		sol, err := in.SolveProblem2(Options{
			Seed:         11,
			Chains:       3,
			Parallelism:  parallelism,
			CoarseM:      3,
			NumTrees:     2,
			BranchType:   network.Branch2,
			Orientations: []network.Orientation{{Rotations: 0}},
			Stages: []Stage{
				{Iterations: 3, Step: 2, GroupSize: 2},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Net.CanonicalHash(), sol.Eval.DeltaT
	}
	refHash, refCost := run(1)
	for _, par := range []int{2, runtime.NumCPU()} {
		hash, cost := run(par)
		if hash != refHash || cost != refCost {
			t.Fatalf("parallelism=%d diverged: %s/%.17g vs %s/%.17g", par, hash, cost, refHash, refCost)
		}
	}
}

// TestSolveProblem1SeedSensitivity guards against the opposite failure:
// a "deterministic" engine that ignores its seed entirely.
func TestSolveProblem1SeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("SA run")
	}
	run := func(seed int64) int {
		in := testInstance(t, 10, 3)
		sol, err := in.SolveProblem1(Options{
			Seed: seed, Chains: 2, CoarseM: 3,
			NumTrees: 2, BranchType: network.Branch2,
			Orientations: []network.Orientation{{Rotations: 0}},
			Stages:       []Stage{{Iterations: 4, Step: 2, FixedPsys: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Evals
	}
	// Different seeds must at least traverse the same number of
	// evaluations (schedule-determined) — this exercises that the seed
	// reaches the chains without crashing; divergence of the actual
	// result across seeds is landscape-dependent and not asserted.
	if run(1) != run(2) {
		t.Fatal("evaluation count should be schedule-determined, independent of seed")
	}
}
