package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"lcn3d/internal/anneal"
	"lcn3d/internal/network"
	"lcn3d/internal/thermal"
)

// Stage configures one SA stage of Algorithm 1's schedule (paper
// Table 1): earlier stages are rougher and quicker.
type Stage struct {
	Iterations int
	Rounds     int
	Step       int  // tree-parameter step, in basic cells (kept even)
	Use4RM     bool // use the accurate 4RM simulator
	// FixedPsys evaluates candidates by ΔT under one fixed pressure
	// (stage 1 of Problem 1) instead of the full network evaluation.
	FixedPsys bool
	// GroupSize groups consecutive iterations sharing one optimal-P_sys
	// computation (Problem 2 speed-up technique; 0 disables).
	GroupSize int
}

// Options tunes the full optimization flow.
type Options struct {
	Stages []Stage // nil selects the paper's schedule scaled by ScaleDown

	// NumTrees fixes the tree count (0 = sweep candidates automatically,
	// mirroring the paper's "branch types are assigned manually to fit
	// the chip size" step).
	NumTrees   int
	BranchType network.BranchType // used only when NumTrees > 0
	CoarseM    int                // 2RM coarsening (default 4, the paper's 400 µm cells)
	Scheme     thermal.Scheme
	Seed       int64
	// Stage1Psys is the fixed pressure of FixedPsys stages (default
	// Search.PInit).
	Stage1Psys float64
	Search     SearchOptions
	// Parallelism bounds concurrent candidate evaluations.
	Parallelism int
	// Orientations to sweep for the global flow direction; nil = all 8
	// for square chips, the 4 non-transposing ones otherwise.
	Orientations []network.Orientation
	// Verbose emits progress lines via Logf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults(in *Instance, problem int) Options {
	d := in.Stk.Dims
	if o.CoarseM <= 0 {
		o.CoarseM = 4
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	o.Search = o.Search.withDefaults()
	if o.Stage1Psys <= 0 {
		o.Stage1Psys = o.Search.PInit
	}
	if o.Stages == nil {
		if problem == 1 {
			// Paper: 60/40/40/30 iterations with 8/4/2/1 rounds; scaled
			// down by default for laptop runs (full scale via cmd flags).
			o.Stages = []Stage{
				{Iterations: 12, Rounds: 4, Step: 8, FixedPsys: true},
				{Iterations: 8, Rounds: 2, Step: 8},
				{Iterations: 8, Rounds: 1, Step: 2},
				{Iterations: 6, Rounds: 1, Step: 2, Use4RM: true},
			}
		} else {
			// Paper: 80/20/20 iterations with 8/2/1 rounds.
			o.Stages = []Stage{
				{Iterations: 16, Rounds: 4, Step: 8, GroupSize: 4},
				{Iterations: 6, Rounds: 2, Step: 2, GroupSize: 4},
				{Iterations: 5, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 4},
			}
		}
	}
	if o.Orientations == nil {
		if d.NX == d.NY {
			o.Orientations = network.AllOrientations()
		} else {
			o.Orientations = []network.Orientation{
				{Rotations: 0}, {Rotations: 2},
				{Rotations: 0, Mirror: true}, {Rotations: 2, Mirror: true},
			}
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Solution is the result of SolveProblem1 / SolveProblem2.
type Solution struct {
	Net    *network.Network
	Spec   network.TreeSpec
	Orient network.Orientation
	Eval   EvalResult // final 4RM evaluation
	Evals  int        // total candidate evaluations across stages
}

// candidate is the SA state: tree parameters under a fixed orientation.
type candidate struct {
	spec network.TreeSpec
}

// buildNet realizes a candidate as a legal network, or returns an error.
func (in *Instance) buildNet(spec network.TreeSpec, orient network.Orientation) (*network.Network, error) {
	n, err := network.Tree(in.Stk.Dims, spec)
	if err != nil {
		return nil, err
	}
	n = orient.Apply(n)
	in.ApplyKeepout(n)
	if errs := n.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("core: candidate network illegal: %v", errs[0])
	}
	return n, nil
}

// SolveProblem1 minimizes pumping power under ΔT* and T*_max (paper
// Section 4, ICCAD 2015 contest formulation).
func (in *Instance) SolveProblem1(opt Options) (*Solution, error) {
	opt = opt.withDefaults(in, 1)
	return in.solve(opt, 1)
}

// SolveProblem2 minimizes thermal gradient under T*_max and W*_pump
// (paper Section 5).
func (in *Instance) SolveProblem2(opt Options) (*Solution, error) {
	opt = opt.withDefaults(in, 2)
	if in.WpumpStar <= 0 {
		return nil, fmt.Errorf("core: Problem 2 requires WpumpStar > 0")
	}
	return in.solve(opt, 2)
}

func (in *Instance) solve(opt Options, problem int) (*Solution, error) {
	d := in.Stk.Dims
	totalEvals := 0

	// Structure and global-flow-direction sweep: the paper attempts all
	// eight flow configurations and assigns branch types manually to fit
	// the chip size; here every (tree count, branch type, orientation)
	// combination is scored cheaply by ΔT under the fixed stage-1
	// pressure and the best is kept.
	type structure struct {
		numTrees int
		typ      network.BranchType
	}
	var structures []structure
	if opt.NumTrees > 0 {
		structures = []structure{{opt.NumTrees, opt.BranchType}}
	} else {
		seen := map[structure]bool{}
		for _, div := range []int{6, 8, 12, 16, 24} {
			nt := d.NY / div
			if nt < 1 {
				nt = 1
			}
			for _, typ := range []network.BranchType{network.Branch2, network.Branch4, network.Branch8} {
				if d.NY < nt*2*typ.Leaves() {
					continue // band too small for this branch type
				}
				s := structure{nt, typ}
				if !seen[s] {
					seen[s] = true
					structures = append(structures, s)
				}
			}
		}
	}

	var initSpec network.TreeSpec
	bestOrient := opt.Orientations[0]
	bestScore := math.Inf(1)
	for _, st := range structures {
		spec := network.UniformTreeSpec(d, st.numTrees, st.typ, 0.35, 0.65)
		for _, orient := range opt.Orientations {
			score := math.Inf(1)
			if n, err := in.buildNet(spec, orient); err == nil {
				if sim, err := in.Sim2RM(n, opt.CoarseM, opt.Scheme); err == nil {
					if out, err := sim(opt.Stage1Psys); err == nil {
						score = out.DeltaT
					}
				}
			}
			totalEvals++
			if score < bestScore {
				bestScore, bestOrient, initSpec = score, orient, spec
				opt.Logf("structure %d x %v, orientation %v: ΔT=%.3f K at %.0f Pa (new best)",
					st.numTrees, st.typ, orient, score, opt.Stage1Psys)
			}
		}
	}
	if math.IsInf(bestScore, 1) {
		return nil, fmt.Errorf("core: no structure/orientation yields a legal simulable network")
	}

	// Cost of one candidate under a stage's metric. (Counting happens in
	// the annealer's stats; the cost function itself stays pure.)
	stageCost := func(st Stage, groupPsys *groupState) func(candidate) float64 {
		return func(c candidate) float64 {
			n, err := in.buildNet(c.spec, bestOrient)
			if err != nil {
				return math.Inf(1)
			}
			var sim SimFunc
			if st.Use4RM {
				sim, err = in.Sim4RM(n, opt.Scheme)
			} else {
				sim, err = in.Sim2RM(n, opt.CoarseM, opt.Scheme)
			}
			if err != nil {
				return math.Inf(1)
			}
			switch {
			case st.FixedPsys:
				out, err := sim(opt.Stage1Psys)
				if err != nil {
					return math.Inf(1)
				}
				return out.DeltaT
			case problem == 1:
				r, err := EvaluatePumpMin(context.Background(), sim, in.DeltaTStar, in.TmaxStar, opt.Search)
				if err != nil || !r.Feasible {
					return math.Inf(1)
				}
				return r.Wpump
			default: // problem 2
				if p := groupPsys.get(); p > 0 {
					out, err := sim(p)
					if err != nil || out.Tmax > in.TmaxStar*(1+1e-9) {
						return math.Inf(1)
					}
					return out.DeltaT
				}
				out, err := sim(opt.Search.PInit)
				if err != nil {
					return math.Inf(1)
				}
				budget := PressureBudget(in.WpumpStar, out.Rsys)
				r, err := EvaluateGradMin(context.Background(), sim, in.TmaxStar, budget, opt.Search)
				if err != nil || !r.Feasible {
					return math.Inf(1)
				}
				groupPsys.set(r.Psys)
				return r.DeltaT
			}
		}
	}

	spec := initSpec
	for si, st := range opt.Stages {
		group := &groupState{size: st.GroupSize}
		cost := stageCost(st, group)
		move := func(rng *rand.Rand, c candidate) candidate {
			s := c.spec.Clone()
			for t := 0; t < s.NumTrees; t++ {
				if rng.Intn(2) == 0 {
					s.B1[t] += st.Step * (2*rng.Intn(2) - 1)
				}
				if rng.Intn(2) == 0 {
					s.B2[t] += st.Step * (2*rng.Intn(2) - 1)
				}
			}
			s.Canonicalize(d)
			group.tick()
			return candidate{spec: s}
		}
		cfg := anneal.Config{
			Iterations:  st.Iterations,
			Neighbors:   max(2, opt.Parallelism/max(1, st.Rounds)),
			Seed:        opt.Seed + int64(si)*104729,
			Parallelism: opt.Parallelism,
			Converge:    st.Iterations, // run full budget
		}
		best, bestCost, stats := anneal.MultiRound(cfg, st.Rounds, candidate{spec: spec}, move, cost)
		totalEvals += stats.Evaluations
		opt.Logf("stage %d (%s): cost %.4g after %d evaluations",
			si+1, stageName(st), bestCost, stats.Evaluations)
		if !math.IsInf(bestCost, 1) {
			spec = best.spec
		}
	}
	// Final accurate evaluation with 4RM.
	n, err := in.buildNet(spec, bestOrient)
	if err != nil {
		return nil, err
	}
	sim, err := in.Sim4RM(n, opt.Scheme)
	if err != nil {
		return nil, err
	}
	var final EvalResult
	if problem == 1 {
		final, err = EvaluatePumpMin(context.Background(), sim, in.DeltaTStar, in.TmaxStar, opt.Search)
	} else {
		var out *thermal.Outcome
		out, err = sim(opt.Search.PInit)
		if err == nil {
			budget := PressureBudget(in.WpumpStar, out.Rsys)
			final, err = EvaluateGradMin(context.Background(), sim, in.TmaxStar, budget, opt.Search)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Solution{Net: n, Spec: spec, Orient: bestOrient, Eval: final, Evals: totalEvals}, nil
}

func stageName(st Stage) string {
	switch {
	case st.FixedPsys:
		return "fixed-P ΔT, 2RM"
	case st.Use4RM:
		return "full eval, 4RM"
	default:
		return "full eval, 2RM"
	}
}

// groupState implements the Problem 2 grouped-iteration trick: the first
// evaluation of each group computes the optimal pressure; the following
// GroupSize-1 evaluations reuse it with a single simulation.
type groupState struct {
	mu    sync.Mutex
	size  int
	count int
	psys  float64
}

func (g *groupState) tick() {
	if g == nil || g.size <= 0 {
		return
	}
	g.mu.Lock()
	g.count++
	if g.count >= g.size {
		g.count = 0
		g.psys = 0 // force a full evaluation next
	}
	g.mu.Unlock()
}

func (g *groupState) get() float64 {
	if g == nil || g.size <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.psys
}

func (g *groupState) set(p float64) {
	if g == nil || g.size <= 0 {
		return
	}
	g.mu.Lock()
	g.psys = p
	g.mu.Unlock()
}
