package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"

	"lcn3d/internal/anneal"
	"lcn3d/internal/network"
	"lcn3d/internal/thermal"
)

// Stage configures one SA stage of Algorithm 1's schedule (paper
// Table 1): earlier stages are rougher and quicker.
type Stage struct {
	Iterations int
	Rounds     int
	Step       int  // tree-parameter step, in basic cells (kept even)
	Use4RM     bool // use the accurate 4RM simulator
	// FixedPsys evaluates candidates by ΔT under one fixed pressure
	// (stage 1 of Problem 1) instead of the full network evaluation.
	FixedPsys bool
	// GroupSize groups consecutive iterations sharing one optimal-P_sys
	// computation (Problem 2 speed-up technique; 0 disables).
	GroupSize int
}

// Options tunes the full optimization flow.
type Options struct {
	Stages []Stage // nil selects the paper's schedule scaled by ScaleDown

	// NumTrees fixes the tree count (0 = sweep candidates automatically,
	// mirroring the paper's "branch types are assigned manually to fit
	// the chip size" step).
	NumTrees   int
	BranchType network.BranchType // used only when NumTrees > 0
	CoarseM    int                // 2RM coarsening (default 4, the paper's 400 µm cells)
	Scheme     thermal.Scheme
	Seed       int64
	// Stage1Psys is the fixed pressure of FixedPsys stages (default
	// Search.PInit).
	Stage1Psys float64
	Search     SearchOptions
	// Parallelism bounds concurrent candidate evaluations across all
	// chains. It affects wall-clock only, never the result.
	Parallelism int
	// Chains is the number of SA replicas run per stage by the parallel
	// annealer (0 = the stage's Rounds). Chain seeds derive
	// deterministically from Seed, so a (Seed, Chains) pair pins the
	// result bitwise regardless of Parallelism or GOMAXPROCS.
	Chains int
	// ExchangeEvery is the number of SA iterations between best-state
	// exchange barriers (0 = default 5, negative = independent chains).
	ExchangeEvery int
	// Neighbors is the number of candidates per SA iteration (default 8).
	// Kept independent of Parallelism so results do not depend on the
	// machine's core count.
	Neighbors int
	// Orientations to sweep for the global flow direction; nil = all 8
	// for square chips, the 4 non-transposing ones otherwise.
	Orientations []network.Orientation
	// Progress, when non-nil, receives per-chain positions at every
	// exchange barrier of every stage (from a single goroutine).
	Progress func(stage int, chains []anneal.ChainProgress)
	// Checkpoint, when non-nil, receives a serializable snapshot of the
	// whole run at every exchange barrier (from a single goroutine). The
	// snapshot is deep-copied: callers may marshal or persist it
	// asynchronously. Resuming it via Resume with the same Options
	// reproduces the uninterrupted run bitwise.
	Checkpoint func(*SolveCheckpoint)
	// Resume, when non-nil, restarts a run from a checkpoint instead of
	// from scratch. The Options must match the checkpointed run (seed,
	// stage schedule, problem); a mismatch returns a
	// *CheckpointMismatchError.
	Resume *SolveCheckpoint
	// Verbose emits progress lines via Logf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults(in *Instance, problem int) Options {
	d := in.Stk.Dims
	if o.CoarseM <= 0 {
		o.CoarseM = 4
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Neighbors <= 0 {
		o.Neighbors = 8
	}
	o.Search = o.Search.withDefaults()
	if o.Stage1Psys <= 0 {
		o.Stage1Psys = o.Search.PInit
	}
	if o.Stages == nil {
		if problem == 1 {
			// Paper: 60/40/40/30 iterations with 8/4/2/1 rounds; scaled
			// down by default for laptop runs (full scale via cmd flags).
			o.Stages = []Stage{
				{Iterations: 12, Rounds: 4, Step: 8, FixedPsys: true},
				{Iterations: 8, Rounds: 2, Step: 8},
				{Iterations: 8, Rounds: 1, Step: 2},
				{Iterations: 6, Rounds: 1, Step: 2, Use4RM: true},
			}
		} else {
			// Paper: 80/20/20 iterations with 8/2/1 rounds.
			o.Stages = []Stage{
				{Iterations: 16, Rounds: 4, Step: 8, GroupSize: 4},
				{Iterations: 6, Rounds: 2, Step: 2, GroupSize: 4},
				{Iterations: 5, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 4},
			}
		}
	}
	if o.Orientations == nil {
		if d.NX == d.NY {
			o.Orientations = network.AllOrientations()
		} else {
			o.Orientations = []network.Orientation{
				{Rotations: 0}, {Rotations: 2},
				{Rotations: 0, Mirror: true}, {Rotations: 2, Mirror: true},
			}
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Solution is the result of SolveProblem1 / SolveProblem2.
type Solution struct {
	Net    *network.Network
	Spec   network.TreeSpec
	Orient network.Orientation
	Eval   EvalResult // final 4RM evaluation
	Evals  int        // total candidate evaluations across stages
	// Chains is the replica count the SA stages ran with; Exchanges and
	// Adoptions count best-state exchange activity across stages.
	Chains    int
	Exchanges int
	Adoptions int
	// Cache aggregates the shared topology-cache counters across stages:
	// hits are candidate evaluations answered without re-simulating a
	// topology another chain (or iteration) already scored.
	Cache MemoStats
}

// candidate is the SA state: tree parameters under a fixed orientation.
type candidate struct {
	spec network.TreeSpec
}

// buildNet realizes a candidate as a legal network, or returns an error.
func (in *Instance) buildNet(spec network.TreeSpec, orient network.Orientation) (*network.Network, error) {
	n, err := network.Tree(in.Stk.Dims, spec)
	if err != nil {
		return nil, err
	}
	n = orient.Apply(n)
	in.ApplyKeepout(n)
	if errs := n.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("core: candidate network illegal: %v", errs[0])
	}
	return n, nil
}

// SolveProblem1 minimizes pumping power under ΔT* and T*_max (paper
// Section 4, ICCAD 2015 contest formulation).
func (in *Instance) SolveProblem1(opt Options) (*Solution, error) {
	return in.SolveProblem1Ctx(context.Background(), opt)
}

// SolveProblem1Ctx is SolveProblem1 with cancellation: the SA stages
// stop at the next iteration boundary and candidate evaluations at the
// next simulator probe.
func (in *Instance) SolveProblem1Ctx(ctx context.Context, opt Options) (*Solution, error) {
	opt = opt.withDefaults(in, 1)
	return in.solve(ctx, opt, 1)
}

// SolveProblem2 minimizes thermal gradient under T*_max and W*_pump
// (paper Section 5).
func (in *Instance) SolveProblem2(opt Options) (*Solution, error) {
	return in.SolveProblem2Ctx(context.Background(), opt)
}

// SolveProblem2Ctx is SolveProblem2 with cancellation.
func (in *Instance) SolveProblem2Ctx(ctx context.Context, opt Options) (*Solution, error) {
	opt = opt.withDefaults(in, 2)
	if in.WpumpStar <= 0 {
		return nil, fmt.Errorf("core: Problem 2 requires WpumpStar > 0")
	}
	return in.solve(ctx, opt, 2)
}

func (in *Instance) solve(ctx context.Context, opt Options, problem int) (*Solution, error) {
	d := in.Stk.Dims
	if opt.Resume != nil {
		if err := opt.Resume.check(opt, problem); err != nil {
			return nil, err
		}
		return in.solveStages(ctx, opt, problem,
			opt.Resume.Spec.Clone(), opt.Resume.Orient, opt.Resume.TotalEvals)
	}
	totalEvals := 0

	// Structure and global-flow-direction sweep: the paper attempts all
	// eight flow configurations and assigns branch types manually to fit
	// the chip size; here every (tree count, branch type, orientation)
	// combination is scored cheaply by ΔT under the fixed stage-1
	// pressure and the best is kept.
	type structure struct {
		numTrees int
		typ      network.BranchType
	}
	var structures []structure
	if opt.NumTrees > 0 {
		structures = []structure{{opt.NumTrees, opt.BranchType}}
	} else {
		seen := map[structure]bool{}
		for _, div := range []int{6, 8, 12, 16, 24} {
			nt := d.NY / div
			if nt < 1 {
				nt = 1
			}
			for _, typ := range []network.BranchType{network.Branch2, network.Branch4, network.Branch8} {
				if d.NY < nt*2*typ.Leaves() {
					continue // band too small for this branch type
				}
				s := structure{nt, typ}
				if !seen[s] {
					seen[s] = true
					structures = append(structures, s)
				}
			}
		}
	}

	var initSpec network.TreeSpec
	bestOrient := opt.Orientations[0]
	bestScore := math.Inf(1)
	for _, st := range structures {
		spec := network.UniformTreeSpec(d, st.numTrees, st.typ, 0.35, 0.65)
		for _, orient := range opt.Orientations {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			score := math.Inf(1)
			if n, err := in.buildNet(spec, orient); err == nil {
				if sim, err := in.Sim2RM(n, opt.CoarseM, opt.Scheme); err == nil {
					if out, err := sim(opt.Stage1Psys); err == nil {
						score = out.DeltaT
					}
				}
			}
			totalEvals++
			if score < bestScore {
				bestScore, bestOrient, initSpec = score, orient, spec
				opt.Logf("structure %d x %v, orientation %v: ΔT=%.3f K at %.0f Pa (new best)",
					st.numTrees, st.typ, orient, score, opt.Stage1Psys)
			}
		}
	}
	if math.IsInf(bestScore, 1) {
		return nil, fmt.Errorf("core: no structure/orientation yields a legal simulable network")
	}
	return in.solveStages(ctx, opt, problem, initSpec, bestOrient, totalEvals)
}

// solveStages runs the SA stage schedule and final 4RM evaluation. On a
// resumed run (opt.Resume non-nil) the caller passes the checkpointed
// structure-sweep outcome and the loop fast-forwards to the in-progress
// stage, restoring its grouped pressures and anneal state.
func (in *Instance) solveStages(ctx context.Context, opt Options, problem int,
	initSpec network.TreeSpec, bestOrient network.Orientation, totalEvals int) (*Solution, error) {

	d := in.Stk.Dims
	resume := opt.Resume
	startStage := 0
	sol := &Solution{Orient: bestOrient}
	if resume != nil {
		startStage = resume.Stage
		sol.Chains = resume.Chains
		sol.Exchanges = resume.Exchanges
		sol.Adoptions = resume.Adoptions
		sol.Cache = MemoStats{Hits: resume.CacheHits, Misses: resume.CacheMisses}
	}
	spec := initSpec
	for si := startStage; si < len(opt.Stages); si++ {
		st := opt.Stages[si]
		chains := opt.Chains
		if chains <= 0 {
			chains = max(1, st.Rounds)
		}
		// groupPsys[c] is chain c's current grouped optimal pressure
		// (Problem 2 speed-up); it is refreshed deterministically at
		// iteration boundaries via the OnIteration hook, so the cost
		// function stays pure between refreshes.
		groupPsys := make([]float64, chains)
		var annealFrom *anneal.Checkpoint[candidate]
		if resume != nil && si == startStage {
			if len(resume.Anneal.Chains) != chains {
				return nil, &CheckpointMismatchError{Reason: fmt.Sprintf(
					"stage %d has %d chains, checkpoint has %d", si, chains, len(resume.Anneal.Chains))}
			}
			annealFrom = decodeAnnealCP(resume.Anneal)
			for c := range groupPsys {
				if c < len(resume.GroupPsysBits) {
					groupPsys[c] = math.Float64frombits(resume.GroupPsysBits[c])
				}
			}
		}
		cache := NewEvalCache()
		cost := in.stageCost(ctx, opt, st, problem, bestOrient, cache, groupPsys)

		move := func(rng *rand.Rand, _ int, c candidate) candidate {
			s := c.spec.Clone()
			for t := 0; t < s.NumTrees; t++ {
				if rng.Intn(2) == 0 {
					s.B1[t] += st.Step * (2*rng.Intn(2) - 1)
				}
				if rng.Intn(2) == 0 {
					s.B2[t] += st.Step * (2*rng.Intn(2) - 1)
				}
			}
			s.Canonicalize(d)
			return candidate{spec: s}
		}

		hooks := anneal.Hooks[candidate]{}
		if problem == 2 && st.GroupSize > 0 {
			hooks.OnIteration = func(chain, iter int, cur candidate) {
				if iter%st.GroupSize != 0 {
					return
				}
				groupPsys[chain] = in.groupPressure(ctx, opt, st, cur, bestOrient)
			}
		}
		if opt.Progress != nil {
			hooks.Progress = func(cp []anneal.ChainProgress) { opt.Progress(si, cp) }
		}
		if opt.Checkpoint != nil {
			// Close over the stage-entry state: the checkpoint records the
			// spec and aggregates as they stood entering this stage, plus
			// the live anneal state, which is everything a resumed run
			// needs to replay the remainder bitwise.
			entrySpec := spec.Clone()
			entry := *sol
			entryEvals := totalEvals
			hooks.Snapshot = func(acp *anneal.Checkpoint[candidate]) {
				scp := &SolveCheckpoint{
					Version: 1, Problem: problem, Seed: opt.Seed,
					StageCount: len(opt.Stages), Stage: si,
					Spec: entrySpec.Clone(), Orient: bestOrient,
					TotalEvals: entryEvals,
					Chains:     entry.Chains, Exchanges: entry.Exchanges,
					Adoptions: entry.Adoptions,
					CacheHits: entry.Cache.Hits, CacheMisses: entry.Cache.Misses,
					Anneal: encodeAnnealCP(acp),
				}
				if problem == 2 && st.GroupSize > 0 {
					scp.GroupPsysBits = make([]uint64, len(groupPsys))
					for c, p := range groupPsys {
						scp.GroupPsysBits[c] = math.Float64bits(p)
					}
				}
				opt.Checkpoint(scp)
			}
		}

		cfg := anneal.Config{
			Iterations:    st.Iterations,
			Neighbors:     opt.Neighbors,
			Seed:          opt.Seed + int64(si)*104729,
			Parallelism:   opt.Parallelism,
			Chains:        chains,
			ExchangeEvery: opt.ExchangeEvery,
			Converge:      st.Iterations, // run full budget
		}
		best, bestCost, stats := anneal.ResumeChains(ctx, cfg, annealFrom, candidate{spec: spec}, move, cost, hooks)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		totalEvals += stats.Evaluations
		sol.Chains = max(sol.Chains, stats.Chains)
		sol.Exchanges += stats.Exchanges
		sol.Adoptions += stats.Adoptions
		sol.Cache.add(cache.Stats())
		cs := cache.Stats()
		opt.Logf("stage %d (%s): cost %.4g after %d evaluations (%d chains, %d exchanges, %d adoptions, cache %.0f%% hit)",
			si+1, stageName(st), bestCost, stats.Evaluations,
			stats.Chains, stats.Exchanges, stats.Adoptions, 100*cs.HitRate())
		if !math.IsInf(bestCost, 1) {
			spec = best.spec
		}
	}
	// Final accurate evaluation with 4RM.
	n, err := in.buildNet(spec, bestOrient)
	if err != nil {
		return nil, err
	}
	sim, err := in.Sim4RM(n, opt.Scheme)
	if err != nil {
		return nil, err
	}
	var final EvalResult
	if problem == 1 {
		final, err = EvaluatePumpMin(ctx, sim, in.DeltaTStar, in.TmaxStar, opt.Search)
	} else {
		var out *thermal.Outcome
		out, err = sim(opt.Search.PInit)
		if err == nil {
			budget := PressureBudget(in.WpumpStar, out.Rsys)
			final, err = EvaluateGradMin(ctx, sim, in.TmaxStar, budget, opt.Search)
		}
	}
	if err != nil {
		return nil, err
	}
	sol.Net, sol.Spec, sol.Eval, sol.Evals = n, spec, final, totalEvals
	return sol, nil
}

// stageCost builds the per-chain candidate scorer for one stage. Scores
// are memoized in cache keyed on the realized network's canonical hash
// (plus the chain's grouped pressure for grouped Problem 2 stages, whose
// metric depends on it), so no topology is simulated twice — not within
// a chain, and not across chains.
func (in *Instance) stageCost(ctx context.Context, opt Options, st Stage, problem int,
	orient network.Orientation, cache *EvalCache, groupPsys []float64) func(int, candidate) float64 {

	grouped := problem == 2 && st.GroupSize > 0
	return func(chain int, c candidate) float64 {
		n, err := in.buildNet(c.spec, orient)
		if err != nil {
			return math.Inf(1)
		}
		var psys float64 // grouped stages: the chain's shared pressure
		key := n.CanonicalHash()
		if grouped {
			psys = groupPsys[chain]
			key += "|" + strconv.FormatUint(math.Float64bits(psys), 16)
		}
		return cache.Do(key, func() float64 {
			var sim SimFunc
			if st.Use4RM {
				sim, err = in.Sim4RM(n, opt.Scheme)
			} else {
				sim, err = in.Sim2RM(n, opt.CoarseM, opt.Scheme)
			}
			if err != nil {
				return math.Inf(1)
			}
			switch {
			case st.FixedPsys:
				out, err := sim(opt.Stage1Psys)
				if err != nil {
					return math.Inf(1)
				}
				return out.DeltaT
			case problem == 1:
				r, err := EvaluatePumpMin(ctx, sim, in.DeltaTStar, in.TmaxStar, opt.Search)
				if err != nil || !r.Feasible {
					return math.Inf(1)
				}
				return r.Wpump
			default: // problem 2
				if psys > 0 {
					out, err := sim(psys)
					if err != nil || out.Tmax > in.TmaxStar*(1+1e-9) {
						return math.Inf(1)
					}
					return out.DeltaT
				}
				out, err := sim(opt.Search.PInit)
				if err != nil {
					return math.Inf(1)
				}
				budget := PressureBudget(in.WpumpStar, out.Rsys)
				r, err := EvaluateGradMin(ctx, sim, in.TmaxStar, budget, opt.Search)
				if err != nil || !r.Feasible {
					return math.Inf(1)
				}
				return r.DeltaT
			}
		})
	}
}

// groupPressure computes the optimal P_sys of the chain's current state,
// shared by the following GroupSize iterations (Problem 2 speed-up). It
// returns 0 when the state is illegal or infeasible, which makes the
// cost function fall back to full per-candidate evaluation.
func (in *Instance) groupPressure(ctx context.Context, opt Options, st Stage, cur candidate, orient network.Orientation) float64 {
	n, err := in.buildNet(cur.spec, orient)
	if err != nil {
		return 0
	}
	var sim SimFunc
	if st.Use4RM {
		sim, err = in.Sim4RM(n, opt.Scheme)
	} else {
		sim, err = in.Sim2RM(n, opt.CoarseM, opt.Scheme)
	}
	if err != nil {
		return 0
	}
	out, err := sim(opt.Search.PInit)
	if err != nil {
		return 0
	}
	budget := PressureBudget(in.WpumpStar, out.Rsys)
	r, err := EvaluateGradMin(ctx, sim, in.TmaxStar, budget, opt.Search)
	if err != nil || !r.Feasible {
		return 0
	}
	return r.Psys
}

func stageName(st Stage) string {
	switch {
	case st.FixedPsys:
		return "fixed-P ΔT, 2RM"
	case st.Use4RM:
		return "full eval, 4RM"
	default:
		return "full eval, 2RM"
	}
}
