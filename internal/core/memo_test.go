package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"lcn3d/internal/thermal"
)

// TestMemoConcurrentSingleFlight hammers one pressure from many
// goroutines: the underlying simulator must run exactly once, everyone
// must see the same outcome, and the counters must balance.
func TestMemoConcurrentSingleFlight(t *testing.T) {
	var computes atomic.Int64
	sim := func(psys float64) (*thermal.Outcome, error) {
		computes.Add(1)
		return &thermal.Outcome{Psys: psys, Metrics: thermal.Metrics{DeltaT: psys * 2}}, nil
	}
	memo, stats := MemoWithStats(sim)

	const workers = 64
	outs := make([]*thermal.Outcome, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := memo(10e3)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("simulator ran %d times, want 1 (single flight)", n)
	}
	for i := 1; i < workers; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("worker %d got a different outcome pointer", i)
		}
	}
	st := stats()
	if st.Hits+st.Misses != workers || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d calls with 1 miss", st, workers)
	}
	if r := st.HitRate(); math.Abs(r-float64(workers-1)/workers) > 1e-12 {
		t.Fatalf("hit rate %g", r)
	}
}

// TestMemoConcurrentDistinctPressures checks distinct keys never share
// results and errors are memoized alongside outcomes.
func TestMemoConcurrentDistinctPressures(t *testing.T) {
	var computes atomic.Int64
	sim := func(psys float64) (*thermal.Outcome, error) {
		computes.Add(1)
		if psys < 0 {
			return nil, fmt.Errorf("negative pressure %g", psys)
		}
		return &thermal.Outcome{Psys: psys}, nil
	}
	memo, stats := MemoWithStats(sim)
	pressures := []float64{1e3, 2e3, 3e3, -1, 1e3, 2e3, 3e3, -1}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for _, p := range pressures {
			wg.Add(1)
			go func(p float64) {
				defer wg.Done()
				out, err := memo(p)
				if p < 0 {
					if err == nil {
						t.Errorf("negative pressure did not error")
					}
					return
				}
				if err != nil || out.Psys != p {
					t.Errorf("at %g: out=%v err=%v", p, out, err)
				}
			}(p)
		}
	}
	wg.Wait()
	if n := computes.Load(); n != 4 {
		t.Fatalf("simulator ran %d times, want 4 (one per distinct pressure)", n)
	}
	if st := stats(); st.Misses != 4 || st.Hits != 8*8-4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvalCacheConcurrent checks the topology-score cache: single-flight
// per key under concurrency, with balanced counters.
func TestEvalCacheConcurrent(t *testing.T) {
	c := NewEvalCache()
	var computes atomic.Int64
	keys := []string{"a", "b", "c", "d"}
	const rounds = 32
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for ki, k := range keys {
			wg.Add(1)
			go func(k string, want float64) {
				defer wg.Done()
				got := c.Do(k, func() float64 {
					computes.Add(1)
					return want
				})
				if got != want {
					t.Errorf("key %s: got %g want %g", k, got, want)
				}
			}(k, float64(ki))
		}
	}
	wg.Wait()
	if n := computes.Load(); n != int64(len(keys)) {
		t.Fatalf("computed %d times, want %d", n, len(keys))
	}
	st := c.Stats()
	if st.Hits+st.Misses != rounds*int64(len(keys)) || st.Misses != int64(len(keys)) {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvalCacheInfCost verifies +Inf (infeasible) scores are cached like
// any other: an illegal topology is judged once, not once per chain.
func TestEvalCacheInfCost(t *testing.T) {
	c := NewEvalCache()
	var computes atomic.Int64
	for i := 0; i < 5; i++ {
		got := c.Do("illegal", func() float64 {
			computes.Add(1)
			return math.Inf(1)
		})
		if !math.IsInf(got, 1) {
			t.Fatalf("got %g", got)
		}
	}
	if computes.Load() != 1 {
		t.Fatalf("infeasible key recomputed %d times", computes.Load())
	}
}
