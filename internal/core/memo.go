package core

import (
	"sync"
	"sync/atomic"

	"lcn3d/internal/thermal"
)

// MemoStats counts cache traffic, in the FactorStats style: snapshot via
// the stats closure / Stats method, rates derived on read.
type MemoStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate returns Hits / (Hits + Misses), 0 when empty.
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s *MemoStats) add(o MemoStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// memoEntry is one pressure's computation slot. The sync.Once gives the
// cache single-flight semantics: concurrent callers probing the same
// pressure block on the leader's solve instead of re-simulating.
type memoEntry struct {
	once sync.Once
	out  *thermal.Outcome
	err  error
}

// Memo wraps a SimFunc with a concurrency-safe, single-flight cache
// keyed on pressure. Algorithm 3 probes f(P_sys) repeatedly at recurring
// points (bisection endpoints, re-evaluations); the cache makes those
// free, and concurrent chains probing the same pressure share one solve.
func Memo(sim SimFunc) SimFunc {
	m, _ := MemoWithStats(sim)
	return m
}

// MemoWithStats is Memo plus a hit/miss counter snapshot function.
// A hit is any call that found the entry already present (it may still
// block until the leader finishes computing it).
func MemoWithStats(sim SimFunc) (SimFunc, func() MemoStats) {
	var cache sync.Map // float64 -> *memoEntry
	var hits, misses atomic.Int64
	wrapped := func(psys float64) (*thermal.Outcome, error) {
		v, loaded := cache.LoadOrStore(psys, &memoEntry{})
		if loaded {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		e := v.(*memoEntry)
		e.once.Do(func() { e.out, e.err = sim(psys) })
		return e.out, e.err
	}
	stats := func() MemoStats {
		return MemoStats{Hits: hits.Load(), Misses: misses.Load()}
	}
	return wrapped, stats
}

// evalEntry is one topology's score slot, single-flight like memoEntry.
type evalEntry struct {
	once sync.Once
	cost float64
}

// EvalCache memoizes whole-topology scores across the concurrent chains
// of the parallel annealer, keyed on the candidate network's canonical
// hash (plus any stage parameters folded into the key by the caller).
// A topology one chain already scored is never re-simulated by another:
// followers either read the cached cost or block on the in-flight
// leader. The scoring function must be pure for the key.
type EvalCache struct {
	m            sync.Map // string -> *evalEntry
	hits, misses atomic.Int64
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache { return &EvalCache{} }

// Do returns the cached cost for key, computing it with f on first use.
func (c *EvalCache) Do(key string, f func() float64) float64 {
	v, loaded := c.m.LoadOrStore(key, &evalEntry{})
	if loaded {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e := v.(*evalEntry)
	e.once.Do(func() { e.cost = f() })
	return e.cost
}

// Stats snapshots the hit/miss counters.
func (c *EvalCache) Stats() MemoStats {
	return MemoStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
