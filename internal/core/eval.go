package core

import (
	"context"
	"math"

	"lcn3d/internal/thermal"
)

// EvalResult scores one cooling network.
type EvalResult struct {
	Feasible bool
	Psys     float64          // chosen system pressure drop, Pa
	Wpump    float64          // pumping power at Psys (+Inf if infeasible)
	DeltaT   float64          // thermal gradient at Psys
	Out      *thermal.Outcome // simulation at Psys
	Probes   int              // simulator invocations
}

// EvaluatePumpMin is Algorithm 2: the lowest feasible pumping power of a
// network under the ΔT* and T*_max constraints (Problem 1's inner level).
// The returned Wpump is +Inf when no feasible pressure exists. Cancelling
// ctx aborts the evaluation at the next simulator probe.
func EvaluatePumpMin(ctx context.Context, sim SimFunc, deltaTStar, tmaxStar float64, opt SearchOptions) (_ EvalResult, err error) {
	// A panicking simulator (poisoned model state, injected fault) must
	// surface as an error on this one evaluation, not kill the process.
	defer RecoverToError(&err)
	// Line 1: solve Eq. (11), the ΔT-only problem.
	r, err := MinPressureForDeltaT(ctx, sim, deltaTStar, opt)
	if err != nil {
		return EvalResult{}, err
	}
	// Line 2: if even the minimizer violates ΔT*, infeasible.
	if !r.Feasible {
		res := infeasible(r.Psys, r.Out, r.Probes)
		res.DeltaT = r.Out.DeltaT
		return res, nil
	}
	psys, out := r.Psys, r.Out
	// Lines 3-5: repair a T*_max violation by raising the pressure
	// (h decreases monotonically), then re-check both constraints.
	if out.Tmax > tmaxStar {
		p2, out2, ok, err := MinPressureForTmax(ctx, sim, tmaxStar, psys, opt)
		if err != nil {
			return EvalResult{}, err
		}
		if !ok || out2.DeltaT > deltaTStar*(1+1e-9) || out2.Tmax > tmaxStar*(1+1e-9) {
			res := infeasible(p2, out2, r.Probes)
			if out2 != nil {
				res.DeltaT = out2.DeltaT
			}
			return res, nil
		}
		psys, out = p2, out2
	}
	// Line 6: W'_pump at the chosen pressure.
	return EvalResult{Feasible: true, Psys: psys, Wpump: out.Wpump, DeltaT: out.DeltaT, Out: out, Probes: r.Probes}, nil
}

// EvaluateGradMin is the Problem 2 network evaluation (Section 5): the
// lowest achievable ΔT under the pressure budget psysMax (derived from
// W*_pump via Eq. (10)) and the T*_max constraint. The returned "cost"
// field is DeltaT; Wpump reports the spend at the chosen pressure.
// Cancelling ctx aborts the evaluation at the next simulator probe.
func EvaluateGradMin(ctx context.Context, sim SimFunc, tmaxStar, psysMax float64, opt SearchOptions) (_ EvalResult, err error) {
	defer RecoverToError(&err)
	opt = opt.withDefaults()
	sim = cancellable(ctx, sim)
	if psysMax < opt.PMin {
		return EvalResult{Feasible: false, Wpump: math.Inf(1), DeltaT: math.Inf(1)}, nil
	}
	probes := 0
	// T_max is monotone decreasing in pressure: if it is violated at the
	// budget, it is violated everywhere below it.
	outHi, err := sim(psysMax)
	if err != nil {
		return EvalResult{}, err
	}
	probes++
	if outHi.Tmax > tmaxStar {
		return EvalResult{Feasible: false, Psys: psysMax, Wpump: math.Inf(1), DeltaT: math.Inf(1), Out: outHi, Probes: probes}, nil
	}
	// Lowest pressure that still satisfies T*_max bounds the search.
	pLo, _, ok, err := MinPressureForTmax(ctx, sim, tmaxStar, opt.PMin, opt)
	if err != nil {
		return EvalResult{}, err
	}
	if !ok {
		pLo = psysMax
	}
	// If f is still falling at the budget, the boundary is optimal
	// (Section 5: "if P*_sys locates on the falling side of f, it is the
	// optimal solution directly"); otherwise golden-section search.
	probe := psysMax * (1 - 2*opt.RelTol)
	if probe < pLo {
		probe = pLo
	}
	outProbe, err := sim(probe)
	if err != nil {
		return EvalResult{}, err
	}
	probes++
	psys, out := psysMax, outHi
	if outProbe.DeltaT < outHi.DeltaT && probe > pLo {
		p, o, gsProbes, err := GoldenSectionMinDeltaT(ctx, sim, pLo, psysMax, opt)
		if err != nil {
			return EvalResult{}, err
		}
		if o.DeltaT < out.DeltaT {
			psys, out = p, o
		}
		probes += gsProbes
	}
	if out.Tmax > tmaxStar*(1+1e-9) {
		return EvalResult{Feasible: false, Psys: psys, Wpump: math.Inf(1), DeltaT: math.Inf(1), Out: out, Probes: probes}, nil
	}
	return EvalResult{Feasible: true, Psys: psys, Wpump: out.Wpump, DeltaT: out.DeltaT, Out: out, Probes: probes}, nil
}

// PressureBudget converts a pumping-power budget into the corresponding
// pressure budget via Eq. (10): W = P²/R  =>  P* = sqrt(W* · R_sys).
// R_sys is a property of the network alone (obtainable from any outcome).
func PressureBudget(wpumpStar, rsys float64) float64 {
	if rsys <= 0 || math.IsInf(rsys, 1) {
		return 0
	}
	return math.Sqrt(wpumpStar * rsys)
}
