package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"lcn3d/internal/thermal"
)

func TestMinPressureForTmaxBisection(t *testing.T) {
	h := func(p float64) float64 { return 300 + 2e8/p } // h<=340 at p>=5e6... too big
	_ = h
	// Use a reachable curve: h<=320 at p >= 1e5.
	sim := Memo(syntheticSim(func(p float64) float64 { return 3 },
		func(p float64) float64 { return 300 + 2e6/p }))
	p, out, ok, err := MinPressureForTmax(context.Background(), sim, 320, 1e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("should be feasible")
	}
	if math.Abs(p-1e5)/1e5 > 0.05 {
		t.Fatalf("crossing at %g, want ~1e5", p)
	}
	if out.Tmax > 320*(1+1e-9) {
		t.Fatalf("returned point violates Tmax: %g", out.Tmax)
	}
}

func TestMinPressureForTmaxAlreadySatisfied(t *testing.T) {
	sim := Memo(syntheticSim(func(p float64) float64 { return 3 },
		func(p float64) float64 { return 310 }))
	p, _, ok, err := MinPressureForTmax(context.Background(), sim, 320, 5e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || p != 5e3 {
		t.Fatalf("should return pLo unchanged, got %g ok=%v", p, ok)
	}
}

func TestMinPressureForTmaxUnreachable(t *testing.T) {
	sim := Memo(syntheticSim(func(p float64) float64 { return 3 },
		func(p float64) float64 { return 400 }))
	_, _, ok, err := MinPressureForTmax(context.Background(), sim, 320, 1e3, SearchOptions{PMax: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unreachable Tmax should report infeasible")
	}
}

func TestGoldenSectionFindsMinimum(t *testing.T) {
	f := func(p float64) float64 { return 5 + (p-40e3)*(p-40e3)/1e8 }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 310 }))
	p, out, probes, err := GoldenSectionMinDeltaT(context.Background(), sim, 10e3, 100e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-40e3)/40e3 > 0.05 {
		t.Fatalf("minimizer %g, want ~40e3", p)
	}
	if math.Abs(out.DeltaT-5) > 0.05 {
		t.Fatalf("minimum %g, want ~5", out.DeltaT)
	}
	// Shrinking the bracket by invPhi per step from [10e3, 100e3] down to
	// the 1% default tolerance takes ~10 interior probes plus the three
	// final candidate evaluations.
	if probes < 5 || probes > 40 {
		t.Fatalf("probe count %d outside plausible golden-section budget", probes)
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	// Decreasing f: minimum at the right endpoint.
	f := func(p float64) float64 { return 4 + 1e5/p }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 310 }))
	p, _, _, err := GoldenSectionMinDeltaT(context.Background(), sim, 10e3, 80e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 80e3 {
		t.Fatalf("boundary minimum should be the endpoint, got %g", p)
	}
}

func TestGoldenSectionSwappedInterval(t *testing.T) {
	f := func(p float64) float64 { return 4 + 1e5/p }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 310 }))
	if _, _, _, err := GoldenSectionMinDeltaT(context.Background(), sim, 80e3, 10e3, SearchOptions{}); err != nil {
		t.Fatalf("swapped interval should be handled: %v", err)
	}
}

func TestSearchPropagatesSimErrors(t *testing.T) {
	boom := errors.New("boom")
	sim := func(p float64) (*thermal.Outcome, error) { return nil, boom }
	if _, err := MinPressureForDeltaT(context.Background(), sim, 5, SearchOptions{}); !errors.Is(err, boom) {
		t.Fatalf("Algorithm 3 should propagate sim errors, got %v", err)
	}
	if _, _, _, err := MinPressureForTmax(context.Background(), sim, 320, 1e3, SearchOptions{}); !errors.Is(err, boom) {
		t.Fatalf("Tmax search should propagate sim errors, got %v", err)
	}
	if _, _, _, err := GoldenSectionMinDeltaT(context.Background(), sim, 1e3, 1e4, SearchOptions{}); !errors.Is(err, boom) {
		t.Fatalf("golden section should propagate sim errors, got %v", err)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	sim := Memo(func(p float64) (*thermal.Outcome, error) {
		calls++
		return nil, boom
	})
	sim(1e3)
	if _, err := sim(1e3); !errors.Is(err, boom) {
		t.Fatal("error should be cached and returned")
	}
	if calls != 1 {
		t.Fatalf("error results should be memoized too, calls=%d", calls)
	}
}

func TestSearchOptionsDefaults(t *testing.T) {
	o := SearchOptions{}.withDefaults()
	if o.PInit <= 0 || o.RInit <= 0 || o.RelTol <= 0 || o.PMin <= 0 || o.PMax <= o.PMin {
		t.Fatalf("bad defaults: %+v", o)
	}
}

func TestAlg3ProbeCountBounded(t *testing.T) {
	// Algorithm 3 should need only tens of probes, not hundreds: the
	// paper runs it inside the SA inner loop.
	f := func(p float64) float64 { return 4 + math.Abs(p-60e3)/15e3 }
	probes := 0
	sim := Memo(func(p float64) (*thermal.Outcome, error) {
		probes++
		return &thermal.Outcome{Metrics: thermal.Metrics{DeltaT: f(p), Tmax: 320},
			Psys: p, Qsys: p * 1e-10, Rsys: 1e10, Wpump: p * p * 1e-10}, nil
	})
	if _, err := MinPressureForDeltaT(context.Background(), sim, 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if probes > 40 {
		t.Fatalf("Algorithm 3 used %d probes; too many for an inner loop", probes)
	}
}

// TestSearchesStopOnCancelledContext proves the per-probe cancellation
// check: once the context is cancelled, every search aborts with the
// context error after at most the probes issued before cancellation.
func TestSearchesStopOnCancelledContext(t *testing.T) {
	const cutoff = 3
	newSim := func(cancel context.CancelFunc) SimFunc {
		calls := 0
		inner := syntheticSim(
			func(p float64) float64 { return 5 + (p-40e3)*(p-40e3)/1e8 },
			func(p float64) float64 { return 300 + 2e6/p })
		return func(p float64) (*thermal.Outcome, error) {
			calls++
			if calls == cutoff {
				cancel()
			}
			if calls > cutoff {
				t.Errorf("probe %d issued after cancellation", calls)
			}
			return inner(p)
		}
	}

	runs := []struct {
		name string
		run  func(ctx context.Context, sim SimFunc) error
	}{
		{"MinPressureForDeltaT", func(ctx context.Context, sim SimFunc) error {
			_, err := MinPressureForDeltaT(ctx, sim, 0.001, SearchOptions{})
			return err
		}},
		{"MinPressureForTmax", func(ctx context.Context, sim SimFunc) error {
			_, _, _, err := MinPressureForTmax(ctx, sim, 300.0001, 1, SearchOptions{})
			return err
		}},
		{"GoldenSectionMinDeltaT", func(ctx context.Context, sim SimFunc) error {
			_, _, _, err := GoldenSectionMinDeltaT(ctx, sim, 1e3, 1e6, SearchOptions{})
			return err
		}},
		{"EvaluatePumpMin", func(ctx context.Context, sim SimFunc) error {
			_, err := EvaluatePumpMin(ctx, sim, 0.001, 301, SearchOptions{})
			return err
		}},
		{"EvaluateGradMin", func(ctx context.Context, sim SimFunc) error {
			_, err := EvaluateGradMin(ctx, sim, 310, 1e6, SearchOptions{})
			return err
		}},
	}
	for _, r := range runs {
		ctx, cancel := context.WithCancel(context.Background())
		err := r.run(ctx, newSim(cancel))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.name, err)
		}
	}
}
