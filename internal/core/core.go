// Package core implements the paper's design-optimization contribution:
// the pressure–temperature analysis of Section 4.1, the network
// evaluation procedures of Section 4.2 (Algorithms 2 and 3), the
// golden-section variant for thermal-gradient minimization (Section 5),
// and the multi-stage simulated-annealing search over hierarchical
// tree-like networks (Sections 4.3–4.4, Algorithm 1).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lcn3d/internal/network"
	"lcn3d/internal/rm2"
	"lcn3d/internal/rm4"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// SimFunc runs one steady cooling-system simulation at a system pressure
// drop and returns the outcome. Implementations are obtained by binding a
// thermal model to a network (see Instance.Sim2RM / Sim4RM).
type SimFunc func(psys float64) (*thermal.Outcome, error)

// cancellable wraps sim so every probe first checks the context. Each
// probe is a full linear solve (tens of milliseconds to seconds), so a
// per-probe check is what lets a timed-out or cancelled caller stop a
// pressure search mid-way instead of burning solver iterations to the
// end. The searches of Algorithms 2/3 and the golden-section refinement
// all run their probes through this wrapper.
func cancellable(ctx context.Context, sim SimFunc) SimFunc {
	if ctx == nil {
		return sim
	}
	return func(psys float64) (*thermal.Outcome, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sim(psys)
	}
}

// Instance is one benchmark problem: a stack plus the constraints of
// Problem 1 / Problem 2.
type Instance struct {
	Name string
	Stk  *stack.Stack

	DeltaTStar float64 // ΔT* constraint, K
	TmaxStar   float64 // T*_max constraint, K
	WpumpStar  float64 // W*_pump constraint, W (Problem 2)

	// Keepout, when non-nil, forbids channels in the half-open rectangle
	// [x0, x1) x [y0, y1) of every channel layer (benchmark case 3).
	Keepout *[4]int
}

// nets replicates one channel-layer network across every channel layer of
// the stack (this also realizes the case-4 "matched inlets and outlets
// across layers" rule in the strongest form).
func (in *Instance) nets(n *network.Network) []*network.Network {
	out := make([]*network.Network, len(in.Stk.ChannelLayers()))
	for i := range out {
		out[i] = n
	}
	return out
}

// ApplyKeepout carves the instance's keepout region (if any) into the
// network, adding the detour ring.
func (in *Instance) ApplyKeepout(n *network.Network) {
	if in.Keepout != nil {
		k := *in.Keepout
		network.CarveKeepout(n, k[0], k[1], k[2], k[3])
	}
}

// Sim2RM binds a 2RM model (coarsening m, scheme) to the network and
// returns a memoized SimFunc.
func (in *Instance) Sim2RM(n *network.Network, m int, scheme thermal.Scheme) (SimFunc, error) {
	mod, err := rm2.New(in.Stk, in.nets(n), m, scheme)
	if err != nil {
		return nil, err
	}
	return Memo(mod.Simulate), nil
}

// Sim4RM binds a 4RM model to the network and returns a memoized SimFunc.
func (in *Instance) Sim4RM(n *network.Network, scheme thermal.Scheme) (SimFunc, error) {
	mod, err := rm4.New(in.Stk, in.nets(n), scheme)
	if err != nil {
		return nil, err
	}
	return Memo(mod.Simulate), nil
}

// ProfilePoint is one sample of the pressure sweep behind Figs. 5 and 6.
type ProfilePoint struct {
	Psys   float64
	DeltaT float64
	Tmax   float64
	Wpump  float64
	// CellTemps holds the temperatures of the requested sample cells in
	// the bottom source layer (Fig. 5 plots individual cells).
	CellTemps []float64
}

// PressureProfile sweeps the simulator over the given pressures,
// reporting ΔT = f(P_sys), T_max = h(P_sys), W_pump, and optionally the
// temperatures of chosen bottom-source-layer cells.
func PressureProfile(sim SimFunc, pressures []float64, sampleCells []int) ([]ProfilePoint, error) {
	pts := make([]ProfilePoint, 0, len(pressures))
	sorted := append([]float64(nil), pressures...)
	sort.Float64s(sorted)
	for _, p := range sorted {
		out, err := sim(p)
		if err != nil {
			return nil, fmt.Errorf("core: profile at %g Pa: %w", p, err)
		}
		pt := ProfilePoint{Psys: p, DeltaT: out.DeltaT, Tmax: out.Tmax, Wpump: out.Wpump}
		for _, c := range sampleCells {
			pt.CellTemps = append(pt.CellTemps, out.FineTemps[0][c])
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// ClassifyProfile reports whether a ΔT profile is "unimodal" (falls then
// rises, Fig. 6(a)) or "decreasing" (Fig. 6(b)), with a small relative
// tolerance for solver noise.
func ClassifyProfile(pts []ProfilePoint) string {
	const tol = 1e-3
	minIdx := 0
	for i, p := range pts {
		if p.DeltaT < pts[minIdx].DeltaT {
			minIdx = i
		}
	}
	if minIdx == len(pts)-1 {
		return "decreasing"
	}
	rise := pts[len(pts)-1].DeltaT - pts[minIdx].DeltaT
	if rise > tol*pts[minIdx].DeltaT {
		return "unimodal"
	}
	return "decreasing"
}

// infeasible constructs the +Inf evaluation used by Algorithm 2 when no
// pressure satisfies the constraints.
func infeasible(psys float64, out *thermal.Outcome, probes int) EvalResult {
	return EvalResult{Feasible: false, Psys: psys, Wpump: math.Inf(1), Out: out, Probes: probes}
}
