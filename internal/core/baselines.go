package core

import (
	"context"
	"fmt"
	"math"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/thermal"
)

// EvaluateNetworkPumpMin evaluates an arbitrary network for Problem 1
// with the accurate 4RM simulator.
func (in *Instance) EvaluateNetworkPumpMin(ctx context.Context, n *network.Network, scheme thermal.Scheme, opt SearchOptions) (EvalResult, error) {
	sim, err := in.Sim4RM(n, scheme)
	if err != nil {
		return EvalResult{}, err
	}
	return EvaluatePumpMin(ctx, sim, in.DeltaTStar, in.TmaxStar, opt)
}

// EvaluateNetworkGradMin evaluates an arbitrary network for Problem 2
// with the accurate 4RM simulator.
func (in *Instance) EvaluateNetworkGradMin(ctx context.Context, n *network.Network, scheme thermal.Scheme, opt SearchOptions) (EvalResult, error) {
	sim, err := in.Sim4RM(n, scheme)
	if err != nil {
		return EvalResult{}, err
	}
	out, err := cancellable(ctx, sim)(opt.withDefaults().PInit)
	if err != nil {
		return EvalResult{}, err
	}
	budget := PressureBudget(in.WpumpStar, out.Rsys)
	return EvaluateGradMin(ctx, sim, in.TmaxStar, budget, opt)
}

// BaselineResult reports the best straight-channel baseline.
type BaselineResult struct {
	Net  *network.Network
	Side grid.Side
	Eval EvalResult
}

// BestStraightBaseline evaluates maximum-density straight-channel
// networks over all four global directions (the paper's baseline:
// "straight channels of diverse global directions are evaluated by the
// network evaluation process and the best is the baseline") and returns
// the best one. problem selects the evaluation metric (1 or 2). The
// result's Eval.Feasible is false when no direction is feasible (e.g.
// case 5 under Problem 1).
func (in *Instance) BestStraightBaseline(ctx context.Context, problem int, scheme thermal.Scheme, opt SearchOptions) (*BaselineResult, error) {
	var best *BaselineResult
	for _, side := range []grid.Side{grid.SideWest, grid.SideEast, grid.SideSouth, grid.SideNorth} {
		n := network.Straight(in.Stk.Dims, side, 1)
		in.ApplyKeepout(n)
		if errs := n.Check(); len(errs) > 0 {
			continue
		}
		var ev EvalResult
		var err error
		if problem == 1 {
			ev, err = in.EvaluateNetworkPumpMin(ctx, n, scheme, opt)
		} else {
			ev, err = in.EvaluateNetworkGradMin(ctx, n, scheme, opt)
		}
		if err != nil {
			return nil, fmt.Errorf("core: baseline %v: %w", side, err)
		}
		cand := &BaselineResult{Net: n, Side: side, Eval: ev}
		if best == nil || betterEval(problem, cand.Eval, best.Eval) {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no legal straight baseline exists")
	}
	return best, nil
}

func betterEval(problem int, a, b EvalResult) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if problem == 1 {
		return less(a.Wpump, b.Wpump)
	}
	return less(a.DeltaT, b.DeltaT)
}

func less(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return false
	}
	return a < b
}
