package core

import (
	"fmt"
	"runtime/debug"
)

// InternalError wraps a panic recovered at a trust boundary: an
// evaluation entry point or the service compute path. It carries the
// recovered value and the goroutine stack at recovery, so the failure
// is attributable server-side while callers see an ordinary error (the
// HTTP layer maps it to a 500) instead of a crashed process.
type InternalError struct {
	Recovered any    // the value passed to panic
	Stack     []byte // debug.Stack() captured at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal: recovered panic: %v", e.Recovered)
}

// RecoverToError converts an in-flight panic into an *InternalError
// assigned through errp. Use as the first defer of a function with a
// named error return:
//
//	func F() (err error) {
//		defer core.RecoverToError(&err)
//		...
//	}
//
// A nil recover (normal return) leaves *errp untouched.
func RecoverToError(errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Recovered: r, Stack: debug.Stack()}
	}
}
