package core

import (
	"fmt"
	"math"

	"lcn3d/internal/anneal"
	"lcn3d/internal/network"
)

// SolveCheckpoint is a serializable snapshot of a solve() in flight,
// captured at an exchange barrier of the current SA stage. Together
// with the original Options it resumes the run bitwise-identically:
// the structure/orientation sweep is skipped (its outcome is recorded
// here), completed stages are not re-run, and the in-progress stage
// continues from the embedded anneal checkpoint with every chain's RNG
// fast-forwarded to its recorded draw position.
//
// All float64 fields are stored as IEEE-754 bit patterns: infeasible
// costs are +Inf, which encoding/json cannot represent, and bitwise
// resume cannot tolerate a decimal round trip.
type SolveCheckpoint struct {
	Version    int   `json:"version"`
	Problem    int   `json:"problem"`
	Seed       int64 `json:"seed"`
	StageCount int   `json:"stage_count"`

	// Structure sweep outcome and pre-stage progress.
	Stage      int                 `json:"stage"` // in-progress stage index
	Spec       network.TreeSpec    `json:"spec"`  // spec entering that stage
	Orient     network.Orientation `json:"orient"`
	TotalEvals int                 `json:"total_evals"` // through completed stages

	// Solution aggregates from completed stages only; the in-progress
	// stage re-adds its own (checkpoint-continued) stats on completion.
	Chains      int   `json:"chains"`
	Exchanges   int   `json:"exchanges"`
	Adoptions   int   `json:"adoptions"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// GroupPsysBits is each chain's grouped optimal pressure (Problem 2),
	// refreshed only at GroupSize boundaries — mid-group state that must
	// survive the restart or resumed cost evaluations diverge.
	GroupPsysBits []uint64 `json:"group_psys_bits,omitempty"`

	Anneal *AnnealCheckpoint `json:"anneal"`
}

// AnnealCheckpoint mirrors anneal.Checkpoint[candidate] with JSON-safe
// float encoding and TreeSpec states.
type AnnealCheckpoint struct {
	Done               int                     `json:"done"`
	SinceImprove       int                     `json:"since_improve"`
	GlobalBest         network.TreeSpec        `json:"global_best"`
	GlobalBestCostBits uint64                  `json:"global_best_cost_bits"`
	Exchanges          int                     `json:"exchanges"`
	Adoptions          int                     `json:"adoptions"`
	Chains             []AnnealChainCheckpoint `json:"chains"`
}

// AnnealChainCheckpoint is one chain's serialized barrier state.
type AnnealChainCheckpoint struct {
	Draws        uint64           `json:"draws"`
	Cur          network.TreeSpec `json:"cur"`
	CurCostBits  uint64           `json:"cur_cost_bits"`
	Best         network.TreeSpec `json:"best"`
	BestCostBits uint64           `json:"best_cost_bits"`
	TempBits     uint64           `json:"temp_bits"`
	Stats        anneal.Stats     `json:"stats"`
}

// CheckpointMismatchError reports a checkpoint that cannot resume the
// requested run (different problem, seed, or stage schedule). Callers
// typically discard the checkpoint and restart from scratch.
type CheckpointMismatchError struct{ Reason string }

func (e *CheckpointMismatchError) Error() string {
	return "core: checkpoint mismatch: " + e.Reason
}

func (cp *SolveCheckpoint) check(opt Options, problem int) error {
	mismatch := func(format string, args ...any) error {
		return &CheckpointMismatchError{Reason: fmt.Sprintf(format, args...)}
	}
	switch {
	case cp.Version != 1:
		return mismatch("version %d, want 1", cp.Version)
	case cp.Problem != problem:
		return mismatch("problem %d, want %d", cp.Problem, problem)
	case cp.Seed != opt.Seed:
		return mismatch("seed %d, want %d", cp.Seed, opt.Seed)
	case cp.StageCount != len(opt.Stages):
		return mismatch("%d stages, want %d", cp.StageCount, len(opt.Stages))
	case cp.Stage < 0 || cp.Stage >= len(opt.Stages):
		return mismatch("stage %d out of range", cp.Stage)
	case cp.Anneal == nil:
		return mismatch("missing anneal state")
	}
	return nil
}

// encodeAnnealCP deep-copies a live barrier snapshot into the JSON-safe
// form. Called synchronously from the Snapshot hook while chains are
// parked, so cloning here is what makes later (async) marshaling safe.
func encodeAnnealCP(cp *anneal.Checkpoint[candidate]) *AnnealCheckpoint {
	out := &AnnealCheckpoint{
		Done:               cp.Done,
		SinceImprove:       cp.SinceImprove,
		GlobalBest:         cp.GlobalBest.spec.Clone(),
		GlobalBestCostBits: math.Float64bits(cp.GlobalBestCost),
		Exchanges:          cp.Exchanges,
		Adoptions:          cp.Adoptions,
		Chains:             make([]AnnealChainCheckpoint, len(cp.Chains)),
	}
	for c := range cp.Chains {
		cc := &cp.Chains[c]
		out.Chains[c] = AnnealChainCheckpoint{
			Draws:        cc.Draws,
			Cur:          cc.Cur.spec.Clone(),
			CurCostBits:  math.Float64bits(cc.CurCost),
			Best:         cc.Best.spec.Clone(),
			BestCostBits: math.Float64bits(cc.BestCost),
			TempBits:     math.Float64bits(cc.Temp),
			Stats:        cc.Stats,
		}
	}
	return out
}

func decodeAnnealCP(a *AnnealCheckpoint) *anneal.Checkpoint[candidate] {
	cp := &anneal.Checkpoint[candidate]{
		Done:           a.Done,
		SinceImprove:   a.SinceImprove,
		GlobalBest:     candidate{spec: a.GlobalBest.Clone()},
		GlobalBestCost: math.Float64frombits(a.GlobalBestCostBits),
		Exchanges:      a.Exchanges,
		Adoptions:      a.Adoptions,
		Chains:         make([]anneal.ChainCheckpoint[candidate], len(a.Chains)),
	}
	for c := range a.Chains {
		cc := &a.Chains[c]
		cp.Chains[c] = anneal.ChainCheckpoint[candidate]{
			Draws:    cc.Draws,
			Cur:      candidate{spec: cc.Cur.Clone()},
			CurCost:  math.Float64frombits(cc.CurCostBits),
			Best:     candidate{spec: cc.Best.Clone()},
			BestCost: math.Float64frombits(cc.BestCostBits),
			Temp:     math.Float64frombits(cc.TempBits),
			Stats:    cc.Stats,
		}
	}
	return cp
}
