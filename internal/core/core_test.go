package core

import (
	"context"
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func testInstance(t *testing.T, total float64, seed int64) *Instance {
	t.Helper()
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{
			power.Hotspots(d21, seed, 2, 0.6, total/2),
			power.Hotspots(d21, seed+1, 2, 0.6, total/2),
		})
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{
		Name: "test", Stk: s,
		DeltaTStar: 10, TmaxStar: 358.15, WpumpStar: total / 1000,
	}
}

// syntheticSim builds a SimFunc from closed-form f and h curves, letting
// the searches be verified against brute force without a full simulator.
func syntheticSim(f, h func(p float64) float64) SimFunc {
	return func(p float64) (*thermal.Outcome, error) {
		return &thermal.Outcome{
			Metrics: thermal.Metrics{DeltaT: f(p), Tmax: h(p)},
			Psys:    p,
			Qsys:    p * 1e-10, // R_sys = 1e10
			Rsys:    1e10,
			Wpump:   p * p * 1e-10,
		}, nil
	}
}

func bruteForceMinFeasible(f func(float64) float64, target float64) float64 {
	best := math.Inf(1)
	for p := 10.0; p < 1e6; p *= 1.002 {
		if f(p) <= target {
			best = p
			break
		}
	}
	return best
}

func TestAlg3UnimodalFeasible(t *testing.T) {
	// f falls to 4 at p=50e3 then rises (Fig. 6(a)).
	f := func(p float64) float64 { return 4 + math.Abs(p-50e3)/10e3 }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := MinPressureForDeltaT(context.Background(), sim, 6, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("ΔT*=6 is feasible (minimum is 4)")
	}
	want := bruteForceMinFeasible(f, 6)
	if math.Abs(r.Psys-want)/want > 0.03 {
		t.Fatalf("Psys = %g, brute force %g", r.Psys, want)
	}
}

func TestAlg3UnimodalInfeasible(t *testing.T) {
	f := func(p float64) float64 { return 4 + math.Abs(p-50e3)/10e3 }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := MinPressureForDeltaT(context.Background(), sim, 3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatal("ΔT*=3 is infeasible (minimum is 4)")
	}
	// The search should land near the minimizer 50 kPa.
	if math.Abs(r.Psys-50e3)/50e3 > 0.1 {
		t.Fatalf("infeasible return %g should approximate the minimizer 50e3", r.Psys)
	}
}

func TestAlg3MonotoneDecreasingFeasible(t *testing.T) {
	// f decreasing toward asymptote 2 (Fig. 6(b)).
	f := func(p float64) float64 { return 2 + 1e5/p }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := MinPressureForDeltaT(context.Background(), sim, 4, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("should be feasible")
	}
	want := bruteForceMinFeasible(f, 4) // crossing at p=5e4
	if math.Abs(r.Psys-want)/want > 0.03 {
		t.Fatalf("Psys = %g, want ~%g", r.Psys, want)
	}
}

func TestAlg3MonotonePlateauInfeasible(t *testing.T) {
	f := func(p float64) float64 { return 5 + 1e4/p }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := MinPressureForDeltaT(context.Background(), sim, 4.9, SearchOptions{PMax: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatal("asymptote 5 > 4.9: infeasible")
	}
}

func TestAlg3FeasibleAtFloor(t *testing.T) {
	f := func(p float64) float64 { return 1.0 } // always tiny
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 310 }))
	r, err := MinPressureForDeltaT(context.Background(), sim, 5, SearchOptions{PMin: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.Psys > 200 {
		t.Fatalf("should be feasible near the floor, got %g", r.Psys)
	}
}

func TestEvaluatePumpMinTmaxBinds(t *testing.T) {
	f := func(p float64) float64 { return 2 + 1e4/p }   // feasible from p=5e3 (ΔT*=4)
	h := func(p float64) float64 { return 300 + 6e5/p } // h<=340 needs p>=15e3
	sim := Memo(syntheticSim(f, h))
	r, err := EvaluatePumpMin(context.Background(), sim, 4, 340, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("should be feasible")
	}
	if r.Psys < 15e3*0.97 || r.Psys > 15e3*1.1 {
		t.Fatalf("Psys = %g, want ~15e3 (Tmax-bound)", r.Psys)
	}
	if r.Out.Tmax > 340*(1+1e-6) {
		t.Fatalf("Tmax %g violates 340", r.Out.Tmax)
	}
}

func TestEvaluatePumpMinInfeasible(t *testing.T) {
	f := func(p float64) float64 { return 20.0 }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := EvaluatePumpMin(context.Background(), sim, 10, 358, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible || !math.IsInf(r.Wpump, 1) {
		t.Fatalf("expected +Inf, got %+v", r)
	}
}

func TestEvaluateGradMinBoundaryOptimal(t *testing.T) {
	// f strictly decreasing: optimum is the pressure budget itself.
	f := func(p float64) float64 { return 2 + 1e5/p }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := EvaluateGradMin(context.Background(), sim, 358, 80e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("should be feasible")
	}
	if math.Abs(r.Psys-80e3)/80e3 > 0.05 {
		t.Fatalf("boundary should be optimal: got %g, want 80e3", r.Psys)
	}
}

func TestEvaluateGradMinInteriorOptimal(t *testing.T) {
	// f uni-modal with minimum at 30e3, budget at 100e3: golden section
	// must find the interior minimum.
	f := func(p float64) float64 { return 4 + math.Abs(p-30e3)/10e3 }
	sim := Memo(syntheticSim(f, func(p float64) float64 { return 320 }))
	r, err := EvaluateGradMin(context.Background(), sim, 358, 100e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("should be feasible")
	}
	if math.Abs(r.DeltaT-4) > 0.2 {
		t.Fatalf("ΔT = %g, want ~4 (interior minimum)", r.DeltaT)
	}
}

func TestEvaluateGradMinTmaxInfeasible(t *testing.T) {
	h := func(p float64) float64 { return 400.0 } // always too hot
	sim := Memo(syntheticSim(func(p float64) float64 { return 3 }, h))
	r, err := EvaluateGradMin(context.Background(), sim, 358, 50e3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Fatal("Tmax can never be met; must be infeasible")
	}
}

func TestPressureBudget(t *testing.T) {
	// W = P^2/R: budget 1 mW with R=1e10 -> P = sqrt(1e-3*1e10) ~ 3162 Pa.
	p := PressureBudget(1e-3, 1e10)
	if math.Abs(p-math.Sqrt(1e7)) > 1 {
		t.Fatalf("budget %g", p)
	}
	if PressureBudget(1e-3, math.Inf(1)) != 0 {
		t.Fatal("infinite resistance should yield zero budget")
	}
}

func TestMemoCachesSimulations(t *testing.T) {
	calls := 0
	sim := Memo(func(p float64) (*thermal.Outcome, error) {
		calls++
		return &thermal.Outcome{Psys: p}, nil
	})
	sim(1e3)
	sim(1e3)
	sim(2e3)
	if calls != 2 {
		t.Fatalf("memo should dedupe: %d calls", calls)
	}
}

func TestClassifyProfile(t *testing.T) {
	uni := []ProfilePoint{{DeltaT: 10}, {DeltaT: 5}, {DeltaT: 4}, {DeltaT: 6}}
	dec := []ProfilePoint{{DeltaT: 10}, {DeltaT: 7}, {DeltaT: 5}, {DeltaT: 4.5}}
	if ClassifyProfile(uni) != "unimodal" {
		t.Fatal("uni-modal misclassified")
	}
	if ClassifyProfile(dec) != "decreasing" {
		t.Fatal("decreasing misclassified")
	}
}

func TestPressureProfileOnRealModel(t *testing.T) {
	in := testInstance(t, 2.0, 1)
	n := network.Straight(d21, grid.SideWest, 1)
	sim, err := in.Sim2RM(n, 3, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	pressures := []float64{2e3, 5e3, 10e3, 20e3, 40e3}
	pts, err := PressureProfile(sim, pressures, []int{d21.Index(1, 10), d21.Index(19, 10)})
	if err != nil {
		t.Fatal(err)
	}
	// h must decrease monotonically (Section 4.1).
	for i := 1; i < len(pts); i++ {
		if pts[i].Tmax >= pts[i-1].Tmax {
			t.Fatalf("Tmax not decreasing: %v", pts)
		}
	}
	// Every cell temperature must also decrease with pressure.
	for i := 1; i < len(pts); i++ {
		for c := range pts[i].CellTemps {
			if pts[i].CellTemps[c] >= pts[i-1].CellTemps[c] {
				t.Fatalf("cell %d temp not decreasing", c)
			}
		}
	}
}

func TestAlg3OnRealModelMatchesScan(t *testing.T) {
	in := testInstance(t, 2.0, 3)
	n := network.Straight(d21, grid.SideWest, 1)
	sim, err := in.Sim2RM(n, 3, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MinPressureForDeltaT(context.Background(), sim, 6.0, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		// Fine: verify the scan agrees that it is infeasible near r.Psys.
		out, _ := sim(r.Psys * 4)
		if out != nil && out.DeltaT <= 6.0 {
			t.Fatalf("declared infeasible but ΔT(4*P)=%g <= 6", out.DeltaT)
		}
		return
	}
	// Scan: no pressure 20% below should be feasible.
	below, err := sim(r.Psys * 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if below.DeltaT <= 6.0*(1-0.02) {
		t.Fatalf("found P=%g but 0.8P also feasible (ΔT=%g)", r.Psys, below.DeltaT)
	}
	if r.Out.DeltaT > 6.0*1.01 {
		t.Fatalf("returned pressure violates ΔT*: %g", r.Out.DeltaT)
	}
}

func TestSolveProblem1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("SA run")
	}
	in := testInstance(t, 2.0, 5)
	// The hotspot layout of this small chip has an asymptotic ΔT near
	// 9 K (conduction-dominated); 12 K is feasible at moderate pressure.
	in.DeltaTStar = 12
	sol, err := in.SolveProblem1(Options{
		Seed:     1,
		NumTrees: 1,
		CoarseM:  3,
		Stages: []Stage{
			{Iterations: 3, Rounds: 1, Step: 4, FixedPsys: true},
			{Iterations: 3, Rounds: 1, Step: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Eval.Feasible {
		t.Fatalf("solution infeasible: %+v", sol.Eval)
	}
	if sol.Eval.Out.DeltaT > in.DeltaTStar*1.01 || sol.Eval.Out.Tmax > in.TmaxStar*1.001 {
		t.Fatalf("constraints violated: ΔT=%g Tmax=%g", sol.Eval.Out.DeltaT, sol.Eval.Out.Tmax)
	}
	if sol.Eval.Wpump <= 0 {
		t.Fatalf("Wpump = %g", sol.Eval.Wpump)
	}
}

func TestSolveProblem2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("SA run")
	}
	in := testInstance(t, 2.0, 6)
	in.WpumpStar = 2e-3
	sol, err := in.SolveProblem2(Options{
		Seed:     2,
		NumTrees: 1,
		CoarseM:  3,
		Stages: []Stage{
			{Iterations: 3, Rounds: 1, Step: 4, GroupSize: 3},
			{Iterations: 2, Rounds: 1, Step: 2, Use4RM: true, GroupSize: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Eval.Feasible {
		t.Fatalf("solution infeasible: %+v", sol.Eval)
	}
	if sol.Eval.Wpump > in.WpumpStar*1.05 {
		t.Fatalf("pump budget exceeded: %g > %g", sol.Eval.Wpump, in.WpumpStar)
	}
}

func TestBestStraightBaseline(t *testing.T) {
	in := testInstance(t, 2.0, 7)
	in.DeltaTStar = 12
	b, err := in.BestStraightBaseline(context.Background(), 1, thermal.Central, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Eval.Feasible {
		t.Fatalf("straight baseline should be feasible here: %+v", b.Eval)
	}
	if b.Eval.Out.DeltaT > in.DeltaTStar*1.01 {
		t.Fatalf("baseline violates ΔT*: %g", b.Eval.Out.DeltaT)
	}
}

func TestKeepoutAppliedToCandidates(t *testing.T) {
	in := testInstance(t, 1.0, 8)
	in.Keepout = &[4]int{8, 8, 13, 13}
	n := network.Straight(d21, grid.SideWest, 1)
	in.ApplyKeepout(n)
	for y := 8; y < 13; y++ {
		for x := 8; x < 13; x++ {
			if n.IsLiquid(x, y) {
				t.Fatalf("keepout cell (%d,%d) liquid", x, y)
			}
		}
	}
	if errs := n.Check(); len(errs) > 0 {
		t.Fatalf("carved baseline illegal: %v", errs)
	}
}
