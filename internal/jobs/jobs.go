// Package jobs owns long-running optimization jobs: records with a
// priority and a state machine (pending → running → checkpointed →
// done/failed), a bounded-concurrency scheduler, per-job event streams
// for SSE, and durable persistence. Records and checkpoint blobs are
// written into a content-addressed blob store under monotonically
// increasing sequence keys (job/<id>/rec/<seq>, job/<id>/ckpt/<seq>),
// so every version has a unique key — the store's duplicate-key drop
// never applies — and startup recovery replays the highest readable
// sequence. A torn checkpoint (crash or injected jobs.checkpoint
// fault mid-write) is survived by falling back to the previous one.
//
// The package is deliberately ignorant of what a job computes: the
// service supplies a Run function; jobs supplies durability, state,
// scheduling, and observation.
package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/anneal"
	"lcn3d/internal/faults"
)

// State is a job's lifecycle position.
type State string

const (
	StatePending      State = "pending"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed" // stopped with resumable state
	StateDone         State = "done"
	StateFailed       State = "failed"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// ErrDraining rejects submissions while the manager drains.
var ErrDraining = errors.New("jobs: draining")

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("jobs: not found")

// Record is a job's externally visible state. It is the JSON shape of
// GET /v1/jobs/{id} and of the persisted job/<id>/rec/<seq> blobs.
type Record struct {
	ID       string `json:"id"`
	Priority int    `json:"priority"`
	State    State  `json:"state"`
	// Key is the content-addressed result cache key the job computes.
	Key string `json:"key,omitempty"`
	// Owner is the node that last ran the job (cluster migration trail).
	Owner   string          `json:"owner,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	CreatedUnixMS   int64 `json:"created_unix_ms"`
	StartedUnixMS   int64 `json:"started_unix_ms,omitempty"`
	CompletedUnixMS int64 `json:"completed_unix_ms,omitempty"`

	// CheckpointSeq is the newest persisted checkpoint's sequence number
	// (0 = none yet). Resume scans downward from it, skipping torn blobs.
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	// Resumes counts restarts from a checkpoint (including migrations).
	Resumes int `json:"resumes,omitempty"`

	// Stage and Chains mirror the live optimization progress (per-chain
	// positions at the last exchange barrier).
	Stage  int                    `json:"stage,omitempty"`
	Chains []anneal.ChainProgress `json:"chains,omitempty"`

	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Event is one entry of a job's progress stream.
type Event struct {
	// Type is "state" (lifecycle transition), "progress" (per-chain
	// positions), "checkpoint" (a checkpoint persisted), "result"
	// (terminal, with the result attached), or "drain" (the node is
	// shutting down; the stream ends).
	Type string `json:"type"`
	Job  Record `json:"job"`
	// Dropped counts events this subscriber lost to backpressure since
	// its previous delivered event, so a slow SSE client can tell its
	// view is gappy instead of silently missing progress.
	Dropped int64 `json:"dropped,omitempty"`
}

// Blobs is the persistence surface the manager needs; *store.Store
// satisfies it. A nil Blobs runs memory-only (no recovery).
type Blobs interface {
	Put(key string, val []byte) error
	Get(key string) ([]byte, bool)
	Keys(prefix string) []string
}

// RunFunc executes one job attempt. It must honor ctx (a drain cancels
// it), persist resumable state via job.SaveCheckpoint, and return the
// final result bytes. A ctx-cancellation error moves the job to
// StateCheckpointed (resumable); any other error fails it.
type RunFunc func(ctx context.Context, job *Job) (json.RawMessage, error)

// Config configures a Manager.
type Config struct {
	Blobs Blobs
	Run   RunFunc
	// Concurrency bounds simultaneously running jobs (0 = 1).
	Concurrency int
	// TerminalRetain bounds the ring of terminal records kept visible
	// for metrics after completion (0 = 64).
	TerminalRetain int
	// Owner stamps records with this node's identity.
	Owner string
	// Replicate, when non-nil, receives every persisted (key, blob) for
	// best-effort copying to a fallback peer. Called asynchronously.
	Replicate func(key string, val []byte)
	// Gate, when non-nil, is consulted before every submission; a non-nil
	// error rejects the job (the service sheds batch admissions during a
	// brownout pause through this hook).
	Gate func() error
	Logf func(format string, args ...any)
}

// Stats is the manager's counter snapshot for /v1/metrics.
type Stats struct {
	Submitted     int64          `json:"submitted"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	Checkpoints   int64          `json:"checkpoints"`
	Resumes       int64          `json:"resumes"`
	Recovered     int64          `json:"recovered"`
	Adopted       int64          `json:"adopted"`
	Shed          int64          `json:"shed"`           // submissions refused by the Gate
	EventsDropped int64          `json:"events_dropped"` // subscriber events lost to backpressure
	States        map[string]int `json:"states"`
}

// Manager owns the job table, the scheduler, and persistence.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    jobQueue
	terminal []string // terminal job ids, oldest first, bounded ring
	running  int
	draining bool
	killed   bool
	seq      uint64 // submission tie-break for equal priorities

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	ctrSubmitted, ctrCompleted, ctrFailed                int64
	ctrCheckpoints, ctrResumes, ctrRecovered, ctrAdopted int64
	ctrShed                                              int64

	// ctrEventsDropped is atomic, not under mu: emit holds j.mu, and the
	// lock order everywhere else is m.mu before j.mu.
	ctrEventsDropped atomic.Int64
}

// NewManager builds a manager. Call Recover to load persisted jobs,
// then the manager schedules work as submissions arrive.
func NewManager(cfg Config) *Manager {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.TerminalRetain <= 0 {
		cfg.TerminalRetain = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		baseCtx: ctx,
		cancel:  cancel,
	}
}

// NewID returns a fresh random job id.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Submit registers a job and schedules it. id must be unique ("" draws
// a fresh one); higher priority runs first. The returned record is the
// pending snapshot.
func (m *Manager) Submit(id string, request json.RawMessage, key string, priority int) (Record, error) {
	if id == "" {
		id = NewID()
	}
	if m.cfg.Gate != nil {
		if err := m.cfg.Gate(); err != nil {
			m.mu.Lock()
			m.ctrShed++
			m.mu.Unlock()
			return Record{}, err
		}
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Record{}, ErrDraining
	}
	if _, dup := m.jobs[id]; dup {
		m.mu.Unlock()
		return Record{}, fmt.Errorf("jobs: duplicate id %q", id)
	}
	j := &Job{
		m: m,
		rec: Record{
			ID: id, Priority: priority, State: StatePending,
			Key: key, Owner: m.cfg.Owner, Request: request,
			CreatedUnixMS: time.Now().UnixMilli(),
		},
		subs: make(map[int]*subscriber),
	}
	m.jobs[id] = j
	m.seq++
	heap.Push(&m.queue, queued{id: id, priority: priority, seq: m.seq})
	m.ctrSubmitted++
	m.mu.Unlock()

	j.persist()
	rec := j.Snapshot()
	m.schedule()
	return rec, nil
}

// ActiveByKey returns a non-terminal job computing key, if any — the
// dedup hook for synchronous optimize calls.
func (m *Manager) ActiveByKey(key string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		hit := j.rec.Key == key && !j.rec.State.Terminal()
		j.mu.Unlock()
		if hit {
			return j, true
		}
	}
	return nil, false
}

// Get returns a job's current record.
func (m *Manager) Get(id string) (Record, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Record{}, false
	}
	return j.Snapshot(), true
}

// Job returns the live job handle (for Subscribe).
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every known record: active jobs first (newest last),
// then the terminal ring.
func (m *Manager) List() []Record {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	recs := make([]Record, 0, len(js))
	for _, j := range js {
		recs = append(recs, j.Snapshot())
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].CreatedUnixMS < recs[k].CreatedUnixMS })
	return recs
}

// Stats snapshots counters and per-state counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Submitted: m.ctrSubmitted, Completed: m.ctrCompleted, Failed: m.ctrFailed,
		Checkpoints: m.ctrCheckpoints, Resumes: m.ctrResumes,
		Recovered: m.ctrRecovered, Adopted: m.ctrAdopted,
		Shed:          m.ctrShed,
		EventsDropped: m.ctrEventsDropped.Load(),
		States:        make(map[string]int),
	}
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		s.States[string(j.rec.State)]++
		j.mu.Unlock()
	}
	return s
}

// schedule starts queued jobs while concurrency slots are free. Safe to
// call from anywhere; scheduling decisions are made under the lock.
func (m *Manager) schedule() {
	for {
		m.mu.Lock()
		if m.draining || m.running >= m.cfg.Concurrency || m.queue.Len() == 0 {
			m.mu.Unlock()
			return
		}
		q := heap.Pop(&m.queue).(queued)
		j, ok := m.jobs[q.id]
		if !ok {
			m.mu.Unlock()
			continue
		}
		m.running++
		m.wg.Add(1)
		m.mu.Unlock()
		go m.runJob(j)
	}
}

// runJob executes one attempt and applies the outcome transition.
func (m *Manager) runJob(j *Job) {
	defer m.wg.Done()
	ctx, cancel := context.WithCancel(m.baseCtx)

	j.mu.Lock()
	// A drain can beat the goroutine to the job; leave it pending (it is
	// already persisted and will be recovered).
	if j.rec.State.Terminal() {
		j.mu.Unlock()
		cancel()
		m.release()
		return
	}
	resumed := j.rec.CheckpointSeq > 0
	j.cancel = cancel
	j.rec.State = StateRunning
	j.rec.Owner = m.cfg.Owner
	if j.rec.StartedUnixMS == 0 {
		j.rec.StartedUnixMS = time.Now().UnixMilli()
	}
	j.mu.Unlock()
	if resumed {
		m.mu.Lock()
		m.ctrResumes++
		m.mu.Unlock()
	}
	j.persist()
	j.emit(Event{Type: "state"})

	result, err := m.cfg.Run(ctx, j)
	interrupted := ctx.Err() != nil // read before cancel() poisons it
	cancel()

	// Lock order is m.mu before j.mu everywhere (ActiveByKey, Stats), so
	// read the kill flag and bump counters outside the j.mu section.
	if m.isKilled() {
		// Crash simulation (tests): drop the outcome on the floor, as a
		// SIGKILL would — the persisted record must stay pre-terminal.
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
		m.release()
		return
	}
	j.mu.Lock()
	j.cancel = nil
	var completed, failed bool
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.Result = result
		j.rec.Error = ""
		j.rec.CompletedUnixMS = time.Now().UnixMilli()
		completed = true
	case interrupted:
		// Stopped, not failed: the drain (or kill) interrupted it. The
		// last checkpoint — persisted by the Run callback — resumes it.
		j.rec.State = StateCheckpointed
		j.rec.Error = ""
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
		j.rec.CompletedUnixMS = time.Now().UnixMilli()
		failed = true
	}
	state := j.rec.State
	j.mu.Unlock()
	if completed || failed {
		m.mu.Lock()
		if completed {
			m.ctrCompleted++
		} else {
			m.ctrFailed++
		}
		m.mu.Unlock()
	}

	j.persist()
	if state.Terminal() {
		m.retireTerminal(j.ID())
		j.emit(Event{Type: "result"})
		j.closeSubs()
	} else {
		j.emit(Event{Type: "state"})
	}
	m.release()
	m.schedule()
}

func (m *Manager) release() {
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
}

func (m *Manager) isKilled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

// retireTerminal moves a terminal job into the bounded ring, evicting
// the oldest terminal records (and their in-memory jobs) beyond the
// retention bound. Persisted blobs are untouched.
func (m *Manager) retireTerminal(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.terminal = append(m.terminal, id)
	for len(m.terminal) > m.cfg.TerminalRetain {
		evict := m.terminal[0]
		m.terminal = m.terminal[1:]
		delete(m.jobs, evict)
	}
}

// Terminal returns the retained terminal records, newest first.
func (m *Manager) Terminal() []Record {
	m.mu.Lock()
	ids := make([]string, len(m.terminal))
	copy(ids, m.terminal)
	js := make([]*Job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j, ok := m.jobs[ids[i]]; ok {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]Record, 0, len(js))
	for _, j := range js {
		out = append(out, j.Snapshot())
	}
	return out
}

// Drain stops scheduling, cancels running jobs (they checkpoint and
// move to StateCheckpointed), and waits for the runners to finish
// persisting. Queued jobs stay pending — also persisted, also
// recoverable. Subscribers of every non-terminal job receive a final
// "drain" event. Idempotent.
func (m *Manager) Drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()

	for _, j := range js {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	m.wg.Wait()
	for _, j := range js {
		j.mu.Lock()
		terminal := j.rec.State.Terminal()
		j.mu.Unlock()
		if !terminal {
			j.emit(Event{Type: "drain"})
			j.closeSubs()
		}
	}
}

// Kill simulates a crash for tests: runners are cancelled and their
// outcomes discarded without any state transition or persistence, so
// the durable state is exactly what a SIGKILL would leave behind.
func (m *Manager) Kill() {
	m.mu.Lock()
	m.killed = true
	m.draining = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// Recover loads persisted job records from the blob store: terminal
// jobs re-enter the retained ring, non-terminal jobs (pending, running
// or checkpointed at crash/drain time) are re-queued to run — from
// their newest readable checkpoint if one exists. adoptedFrom tags
// jobs recovered from another node's replicated state (metrics only).
func (m *Manager) Recover() int {
	if m.cfg.Blobs == nil {
		return 0
	}
	n := 0
	for _, id := range m.persistedIDs() {
		if m.recoverOne(id, false) {
			n++
		}
	}
	return n
}

// Adopt recovers one job from replicated state (the owning peer died;
// this node is its ring successor). Idempotent: an already-known id is
// a no-op returning its record.
func (m *Manager) Adopt(id string) (Record, bool) {
	if rec, ok := m.Get(id); ok {
		return rec, true
	}
	if m.cfg.Blobs == nil {
		return Record{}, false
	}
	if !m.recoverOne(id, true) {
		return Record{}, false
	}
	return m.Get(id)
}

func (m *Manager) persistedIDs() []string {
	seen := map[string]bool{}
	var ids []string
	for _, k := range m.cfg.Blobs.Keys("job/") {
		parts := strings.Split(k, "/")
		if len(parts) != 4 || parts[2] != "rec" {
			continue
		}
		if !seen[parts[1]] {
			seen[parts[1]] = true
			ids = append(ids, parts[1])
		}
	}
	return ids
}

// recoverOne loads the newest readable record of id and installs it.
func (m *Manager) recoverOne(id string, adopted bool) bool {
	rec, seq, ok := m.newestRecord(id)
	if !ok {
		return false
	}
	j := &Job{m: m, rec: rec, seq: seq, subs: make(map[int]*subscriber)}
	m.mu.Lock()
	if _, dup := m.jobs[id]; dup || m.draining {
		m.mu.Unlock()
		return false
	}
	m.jobs[id] = j
	if rec.State.Terminal() {
		m.terminal = append(m.terminal, id)
		for len(m.terminal) > m.cfg.TerminalRetain {
			evict := m.terminal[0]
			m.terminal = m.terminal[1:]
			delete(m.jobs, evict)
		}
	} else {
		// Interrupted mid-flight: back to the queue. The runner resumes
		// from the newest readable checkpoint.
		j.rec.State = StateCheckpointed
		if j.rec.CheckpointSeq == 0 {
			j.rec.State = StatePending
		}
		j.rec.Resumes++
		m.seq++
		heap.Push(&m.queue, queued{id: id, priority: rec.Priority, seq: m.seq})
	}
	m.ctrRecovered++
	if adopted {
		m.ctrAdopted++
	}
	m.mu.Unlock()
	if !rec.State.Terminal() {
		j.persist()
		m.schedule()
	}
	m.cfg.Logf("jobs: recovered %s (state %s, checkpoint seq %d)", id, rec.State, rec.CheckpointSeq)
	return true
}

// newestRecord scans job/<id>/rec/* downward for the newest blob that
// decodes — the record analogue of the torn-checkpoint fallback.
func (m *Manager) newestRecord(id string) (Record, uint64, bool) {
	var seqs []uint64
	prefix := "job/" + id + "/rec/"
	for _, k := range m.cfg.Blobs.Keys(prefix) {
		if s, err := strconv.ParseUint(k[len(prefix):], 10, 64); err == nil {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] > seqs[k] })
	for _, s := range seqs {
		blob, ok := m.cfg.Blobs.Get(prefix + strconv.FormatUint(s, 10))
		if !ok {
			continue
		}
		var rec Record
		if err := json.Unmarshal(blob, &rec); err != nil || rec.ID != id {
			continue
		}
		return rec, s, true
	}
	return Record{}, 0, false
}

// queued is one pending entry of the priority queue.
type queued struct {
	id       string
	priority int
	seq      uint64
}

// jobQueue is a max-heap on (priority, -submission order).
type jobQueue []queued

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, k int) bool {
	if q[i].priority != q[k].priority {
		return q[i].priority > q[k].priority
	}
	return q[i].seq < q[k].seq
}
func (q jobQueue) Swap(i, k int) { q[i], q[k] = q[k], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(queued)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Job is one live job. All exported methods are safe for concurrent
// use; the runner (RunFunc) calls SaveCheckpoint/SetProgress, HTTP
// handlers call Snapshot/Subscribe.
type Job struct {
	m *Manager

	mu     sync.Mutex
	rec    Record
	seq    uint64 // persistence sequence (rec blobs)
	cancel context.CancelFunc
	subs   map[int]*subscriber
	subSeq int
	closed bool
}

// subscriber is one attached event channel plus the count of events it
// has lost to backpressure since its last delivered event.
type subscriber struct {
	ch      chan Event
	dropped int64
}

// ID returns the job id.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.ID
}

// Key returns the result cache key.
func (j *Job) Key() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.Key
}

// Request returns the submitted request bytes.
func (j *Job) Request() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.Request
}

// Snapshot returns a copy of the record (progress slice cloned).
func (j *Job) Snapshot() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := j.rec
	if rec.Chains != nil {
		rec.Chains = append([]anneal.ChainProgress(nil), rec.Chains...)
	}
	return rec
}

// CheckpointSeq returns the newest persisted checkpoint sequence.
func (j *Job) CheckpointSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.CheckpointSeq
}

// CheckpointAt reads checkpoint blob seq (1-based) from the store.
func (j *Job) CheckpointAt(seq uint64) ([]byte, bool) {
	if j.m.cfg.Blobs == nil {
		return nil, false
	}
	return j.m.cfg.Blobs.Get(j.ckptKey(seq))
}

func (j *Job) ckptKey(seq uint64) string {
	return "job/" + j.ID() + "/ckpt/" + strconv.FormatUint(seq, 10)
}

// SaveCheckpoint persists one checkpoint blob under the next sequence
// key and records it on the job. The jobs.checkpoint fault point tears
// the blob mid-write (truncates it), modeling a crash during the write:
// the sequence still advances, and resume must fall back.
func (j *Job) SaveCheckpoint(blob []byte) error {
	j.mu.Lock()
	seq := j.rec.CheckpointSeq + 1
	j.rec.CheckpointSeq = seq
	j.mu.Unlock()

	if faults.Fire(faults.JobsCheckpoint) && len(blob) > 0 {
		blob = blob[:len(blob)/3] // torn mid-write
	}
	if j.m.cfg.Blobs != nil {
		if err := j.m.cfg.Blobs.Put(j.ckptKey(seq), blob); err != nil {
			return err
		}
		j.m.replicate(j.ckptKey(seq), blob)
	}
	j.m.mu.Lock()
	j.m.ctrCheckpoints++
	j.m.mu.Unlock()
	j.persist()
	j.emit(Event{Type: "checkpoint"})
	return nil
}

// SetProgress updates the live per-chain progress and notifies
// subscribers. Not persisted on its own (checkpoints carry the durable
// state); the next record write includes it.
func (j *Job) SetProgress(stage int, chains []anneal.ChainProgress) {
	j.mu.Lock()
	j.rec.Stage = stage
	j.rec.Chains = append([]anneal.ChainProgress(nil), chains...)
	j.mu.Unlock()
	j.emit(Event{Type: "progress"})
}

// persist writes the current record under the next job/<id>/rec/<seq>
// key. Every version gets a fresh key: the store drops duplicate keys
// silently (content-addressing), so reusing one would lose updates.
func (j *Job) persist() {
	if j.m.cfg.Blobs == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	key := "job/" + j.rec.ID + "/rec/" + strconv.FormatUint(j.seq, 10)
	blob, err := json.Marshal(j.rec)
	j.mu.Unlock()
	if err != nil {
		j.m.cfg.Logf("jobs: marshal record: %v", err)
		return
	}
	if err := j.m.cfg.Blobs.Put(key, blob); err != nil {
		j.m.cfg.Logf("jobs: persist %s: %v", key, err)
		return
	}
	j.m.replicate(key, blob)
}

// replicate hands a persisted blob to the replication hook, async so a
// slow peer never blocks the barrier that produced the checkpoint.
func (m *Manager) replicate(key string, blob []byte) {
	if m.cfg.Replicate == nil {
		return
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	go m.cfg.Replicate(key, cp)
}

// Subscribe attaches an event channel. The caller receives subsequent
// events (coalesced under backpressure: progress events may drop, the
// terminal event never does) and must call the returned cancel.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		ch := make(chan Event, 1)
		close(ch)
		return ch, func() {}
	}
	j.subSeq++
	id := j.subSeq
	ch := make(chan Event, 16)
	j.subs[id] = &subscriber{ch: ch}
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
	}
}

// emit fans one event out to subscribers. The record snapshot is taken
// once. When a subscriber's buffer is full: progress events are
// dropped, anything else evicts the oldest buffered event — a terminal
// event must always land. Every loss is counted per subscriber and the
// accumulated count rides on that subscriber's next delivered event
// (Event.Dropped), so a slow client knows its stream is gappy.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.subs) == 0 {
		return
	}
	rec := j.rec
	if rec.Chains != nil {
		rec.Chains = append([]anneal.ChainProgress(nil), rec.Chains...)
	}
	ev.Job = rec
	var lost int64
	for _, sub := range j.subs {
		ev.Dropped = sub.dropped
		select {
		case sub.ch <- ev:
			sub.dropped = 0
			continue
		default:
		}
		if ev.Type == "progress" {
			sub.dropped++
			lost++
			continue // lossy under backpressure
		}
		select {
		case <-sub.ch: // evict oldest
			sub.dropped++
			lost++
		default:
		}
		ev.Dropped = sub.dropped
		select {
		case sub.ch <- ev:
			sub.dropped = 0
		default:
			sub.dropped++
			lost++
		}
	}
	if lost > 0 {
		j.m.ctrEventsDropped.Add(lost)
	}
}

// closeSubs ends every subscription after the terminal/drain event.
func (j *Job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	for id, sub := range j.subs {
		close(sub.ch)
		delete(j.subs, id)
	}
}
