package jobs_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/jobs"
)

// memBlobs is an in-memory Blobs with store-like semantics for tests.
type memBlobs struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemBlobs() *memBlobs { return &memBlobs{m: make(map[string][]byte)} }

func (b *memBlobs) Put(key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(val))
	copy(cp, val)
	b.m[key] = cp
	return nil
}

func (b *memBlobs) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *memBlobs) Keys(prefix string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for k := range b.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// testReq steers the test RunFunc via the job's request bytes.
type testReq struct {
	Steps int    `json:"steps"` // checkpoints to write before finishing
	Fail  string `json:"fail"`  // non-empty: fail with this message
	Block bool   `json:"block"` // park until ctx cancel (drain/kill tests)
}

// testRun checkpoints Steps times (resuming from the persisted step
// counter when one exists), then returns the step count as the result.
func testRun(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	var req testReq
	if err := json.Unmarshal(j.Request(), &req); err != nil {
		return nil, err
	}
	if req.Fail != "" {
		return nil, errors.New(req.Fail)
	}
	start := 0
	if seq := j.CheckpointSeq(); seq > 0 {
		if blob, ok := j.CheckpointAt(seq); ok {
			fmt.Sscanf(string(blob), "step=%d", &start)
		}
	}
	for i := start; i < req.Steps; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		if err := j.SaveCheckpoint([]byte(fmt.Sprintf("step=%d", i+1))); err != nil {
			return nil, err
		}
	}
	if req.Block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return json.RawMessage(fmt.Sprintf(`{"steps":%d}`, req.Steps)), nil
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitState(t *testing.T, m *jobs.Manager, id string, want jobs.State) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := m.Get(id)
		if ok && rec.State == want {
			return rec
		}
		if ok && rec.State.Terminal() && rec.State != want {
			t.Fatalf("job %s reached terminal state %s (error %q), want %s", id, rec.State, rec.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec, _ := m.Get(id)
	t.Fatalf("job %s stuck in state %s, want %s", id, rec.State, want)
	return jobs.Record{}
}

func TestJobLifecycleAndResult(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Blobs: newMemBlobs(), Run: testRun})
	rec, err := m.Submit("", mustJSON(t, testReq{Steps: 3}), "key-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != jobs.StatePending || rec.ID == "" {
		t.Fatalf("submit record = %+v, want pending with id", rec)
	}
	done := waitState(t, m, rec.ID, jobs.StateDone)
	if done.CheckpointSeq != 3 {
		t.Fatalf("checkpoint seq = %d, want 3", done.CheckpointSeq)
	}
	if done.CompletedUnixMS == 0 || done.StartedUnixMS == 0 {
		t.Fatalf("timestamps not stamped: %+v", done)
	}
	var res struct{ Steps int }
	if err := json.Unmarshal(done.Result, &res); err != nil || res.Steps != 3 {
		t.Fatalf("result = %s (err %v), want steps 3", done.Result, err)
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Checkpoints != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobFailure(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Run: testRun})
	rec, err := m.Submit("f1", mustJSON(t, testReq{Fail: "solver exploded"}), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, rec.ID, jobs.StateFailed)
	if got.Error != "solver exploded" || got.CompletedUnixMS == 0 {
		t.Fatalf("failed record = %+v", got)
	}
}

// TestPriorityOrder blocks the single worker slot, enqueues three jobs
// with mixed priorities, and asserts they start high-priority-first
// with submission order as the tie-break.
func TestPriorityOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	run := func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		mu.Lock()
		order = append(order, j.ID())
		first := len(order) == 1
		mu.Unlock()
		if first {
			<-gate // hold the slot until the queue is fully loaded
		}
		return json.RawMessage(`{}`), nil
	}
	m := jobs.NewManager(jobs.Config{Run: run, Concurrency: 1})
	if _, err := m.Submit("hold", mustJSON(t, testReq{}), "", 0); err != nil {
		t.Fatal(err)
	}
	// Wait until the holder occupies the slot so the rest truly queue.
	waitState(t, m, "hold", jobs.StateRunning)
	for _, s := range []struct {
		id  string
		pri int
	}{{"low", 1}, {"high", 9}, {"mid", 5}, {"high2", 9}} {
		if _, err := m.Submit(s.id, mustJSON(t, testReq{}), "", s.pri); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	for _, id := range []string{"hold", "low", "high", "mid", "high2"} {
		waitState(t, m, id, jobs.StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"hold", "high", "high2", "mid", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Run: testRun})
	if _, err := m.Submit("dup", mustJSON(t, testReq{Steps: 1}), "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("dup", mustJSON(t, testReq{Steps: 1}), "", 0); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestActiveByKey(t *testing.T) {
	gate := make(chan struct{})
	run := func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		<-gate
		return json.RawMessage(`{}`), nil
	}
	m := jobs.NewManager(jobs.Config{Run: run})
	if _, err := m.Submit("k1", mustJSON(t, testReq{}), "shared-key", 0); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, "k1", jobs.StateRunning)
	j, ok := m.ActiveByKey("shared-key")
	if !ok || j.ID() != "k1" {
		t.Fatalf("ActiveByKey(shared-key) = %v, %v", j, ok)
	}
	if _, ok := m.ActiveByKey("other-key"); ok {
		t.Fatal("ActiveByKey matched a key no job has")
	}
	close(gate)
	waitState(t, m, "k1", jobs.StateDone)
	if _, ok := m.ActiveByKey("shared-key"); ok {
		t.Fatal("ActiveByKey matched a terminal job")
	}
}

// TestDrainCheckpointsRunning drains a blocked job and verifies it
// lands in StateCheckpointed with its last checkpoint persisted, the
// subscriber stream ends with a drain event, and the persisted record
// is recoverable by a fresh manager that completes the job.
func TestDrainCheckpointsRunning(t *testing.T) {
	blobs := newMemBlobs()
	m := jobs.NewManager(jobs.Config{Blobs: blobs, Run: testRun})
	if _, err := m.Submit("d1", mustJSON(t, testReq{Steps: 1000, Block: true}), "", 0); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, "d1", jobs.StateRunning)
	j, _ := m.Job("d1")
	ch, cancelSub := j.Subscribe()
	defer cancelSub()

	// Let it make some progress first.
	deadline := time.Now().Add(10 * time.Second)
	for j.CheckpointSeq() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if j.CheckpointSeq() < 2 {
		t.Fatal("job made no checkpoints")
	}
	m.Drain()

	rec, _ := m.Get("d1")
	if rec.State != jobs.StateCheckpointed {
		t.Fatalf("state after drain = %s, want checkpointed", rec.State)
	}
	if _, err := m.Submit("late", mustJSON(t, testReq{}), "", 0); !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	// The stream must end, and a drain event must be visible on it.
	sawDrain := false
	for ev := range ch {
		if ev.Type == "drain" {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("subscriber never saw the drain event")
	}

	// A fresh manager over the same blobs recovers the job and finishes
	// it from its newest checkpoint.
	m3 := jobs.NewManager(jobs.Config{Blobs: blobs, Run: runIgnoreBlock})
	if n := m3.Recover(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	got := waitState(t, m3, "d1", jobs.StateDone)
	if got.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", got.Resumes)
	}
	if got.CheckpointSeq < rec.CheckpointSeq {
		t.Fatalf("checkpoint seq went backwards: %d -> %d", rec.CheckpointSeq, got.CheckpointSeq)
	}
}

// runIgnoreBlock is testRun minus the Block parking — the "resumed
// binary" equivalent whose job definition finishes.
func runIgnoreBlock(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	var req testReq
	if err := json.Unmarshal(j.Request(), &req); err != nil {
		return nil, err
	}
	req.Block = false
	req.Steps = 5
	start := 0
	if seq := j.CheckpointSeq(); seq > 0 {
		if blob, ok := j.CheckpointAt(seq); ok {
			fmt.Sscanf(string(blob), "step=%d", &start)
		}
	}
	for i := start; i < req.Steps; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		if err := j.SaveCheckpoint([]byte(fmt.Sprintf("step=%d", i+1))); err != nil {
			return nil, err
		}
	}
	return json.RawMessage(fmt.Sprintf(`{"steps":%d}`, req.Steps)), nil
}

// TestKillRecovery simulates a crash: Kill discards in-flight outcomes
// without persisting a transition, so the durable record still says
// "running"; a fresh manager must recover it, resume from the newest
// checkpoint, and finish.
func TestKillRecovery(t *testing.T) {
	blobs := newMemBlobs()
	m := jobs.NewManager(jobs.Config{Blobs: blobs, Run: testRun})
	if _, err := m.Submit("c1", mustJSON(t, testReq{Steps: 1000, Block: true}), "", 0); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, "c1", jobs.StateRunning)
	j, _ := m.Job("c1")
	deadline := time.Now().Add(10 * time.Second)
	for j.CheckpointSeq() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	seqAtKill := j.CheckpointSeq()
	if seqAtKill < 3 {
		t.Fatal("job made no checkpoints before kill")
	}
	m.Kill()

	// The persisted record must be pre-terminal (crash left it running).
	m2 := jobs.NewManager(jobs.Config{Blobs: blobs, Run: runIgnoreBlock})
	if n := m2.Recover(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	rec, _ := m2.Get("c1")
	if rec.Resumes != 1 {
		t.Fatalf("resumes after recovery = %d, want 1", rec.Resumes)
	}
	got := waitState(t, m2, "c1", jobs.StateDone)
	if got.CheckpointSeq < seqAtKill {
		t.Fatalf("checkpoint seq regressed across crash: %d -> %d", seqAtKill, got.CheckpointSeq)
	}
	if st := m2.Stats(); st.Recovered != 1 || st.Resumes != 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

// TestTornCheckpointFallback arms the jobs.checkpoint fault so the
// final checkpoint blob is truncated mid-write, then verifies the torn
// blob is detectable and the previous sequence still decodes — the
// fallback contract resume relies on.
func TestTornCheckpointFallback(t *testing.T) {
	blobs := newMemBlobs()
	m := jobs.NewManager(jobs.Config{Blobs: blobs, Run: testRun})
	if _, err := m.Submit("t1", mustJSON(t, testReq{Steps: 1000, Block: true}), "", 0); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, "t1", jobs.StateRunning)
	j, _ := m.Job("t1")
	deadline := time.Now().Add(10 * time.Second)
	for j.CheckpointSeq() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Tear every checkpoint written from here on.
	if err := faults.Arm(string(faults.JobsCheckpoint) + "=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	before := j.CheckpointSeq()
	for j.CheckpointSeq() < before+2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Kill()
	faults.Disarm()

	last := j.CheckpointSeq()
	if last < before+2 {
		t.Fatal("no checkpoints written while the fault was armed")
	}
	// The newest blobs are torn: truncated, so the step marker parses
	// wrong or not at all. Walk down to the newest intact one — it must
	// exist and be a full "step=N" record.
	intact := uint64(0)
	for seq := last; seq >= 1; seq-- {
		blob, ok := j.CheckpointAt(seq)
		if !ok {
			continue
		}
		var step int
		if n, _ := fmt.Sscanf(string(blob), "step=%d", &step); n == 1 && strings.HasPrefix(string(blob), "step=") && len(blob) >= len("step=1") {
			// A torn blob is a strict prefix; "step=" alone or "st" fails
			// the Sscanf, so reaching here means the blob decodes.
			intact = seq
			break
		}
	}
	if intact == 0 {
		t.Fatal("no intact checkpoint found below the torn ones")
	}
	if intact > last-2 {
		t.Fatalf("newest intact checkpoint %d should be below the torn tail (last %d)", intact, last)
	}
	topBlob, ok := j.CheckpointAt(last)
	if ok {
		var step int
		if n, _ := fmt.Sscanf(string(topBlob), "step=%d", &step); n == 1 {
			t.Fatalf("newest checkpoint %q decoded despite the tear", topBlob)
		}
	}
}

// TestTerminalRingBounded checks the terminal retention ring evicts
// oldest-first at the configured bound while keeping persisted blobs.
func TestTerminalRingBounded(t *testing.T) {
	blobs := newMemBlobs()
	m := jobs.NewManager(jobs.Config{Blobs: blobs, Run: testRun, TerminalRetain: 2, Concurrency: 1})
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := m.Submit(id, mustJSON(t, testReq{}), "", 0); err != nil {
			t.Fatal(err)
		}
		waitState(t, m, id, jobs.StateDone)
	}
	term := m.Terminal()
	if len(term) != 2 {
		t.Fatalf("terminal ring holds %d records, want 2", len(term))
	}
	if term[0].ID != "r3" || term[1].ID != "r2" {
		t.Fatalf("terminal ring = [%s %s], want [r3 r2] (newest first)", term[0].ID, term[1].ID)
	}
	if _, ok := m.Get("r0"); ok {
		t.Fatal("evicted job r0 still visible in memory")
	}
	// Durable history survives eviction.
	if keys := blobs.Keys("job/r0/rec/"); len(keys) == 0 {
		t.Fatal("evicted job r0 lost its persisted records")
	}
}

// TestSubscribeEventFlow watches a full lifecycle on the event stream:
// state(running) ... checkpoint* ... result(done), then channel close.
func TestSubscribeEventFlow(t *testing.T) {
	gate := make(chan struct{})
	m := jobs.NewManager(jobs.Config{Blobs: newMemBlobs(), Run: func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		<-gate
		return testRun(ctx, j)
	}})
	if _, err := m.Submit("s1", mustJSON(t, testReq{Steps: 2}), "", 0); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Job("s1")
	if !ok {
		t.Fatal("job not found")
	}
	ch, cancelSub := j.Subscribe()
	defer cancelSub()
	close(gate)

	var types []string
	var final jobs.Record
	for ev := range ch {
		types = append(types, ev.Type)
		final = ev.Job
	}
	joined := strings.Join(types, ",")
	if !strings.HasSuffix(joined, "result") {
		t.Fatalf("event stream %v must end with the result event", types)
	}
	if !strings.Contains(joined, "checkpoint") {
		t.Fatalf("event stream %v missing checkpoint events", types)
	}
	if final.State != jobs.StateDone || final.Result == nil {
		t.Fatalf("final event record = %+v, want done with result", final)
	}
	// Subscribing after close yields an already-closed channel.
	ch2, cancel2 := j.Subscribe()
	defer cancel2()
	if _, open := <-ch2; open {
		t.Fatal("subscription on a finished job should be closed immediately")
	}
}

// TestRecoverTerminal re-opens a store holding only finished jobs and
// verifies they land in the terminal ring, not the run queue.
func TestRecoverTerminal(t *testing.T) {
	blobs := newMemBlobs()
	m := jobs.NewManager(jobs.Config{Blobs: blobs, Run: testRun})
	if _, err := m.Submit("fin", mustJSON(t, testReq{Steps: 1}), "", 0); err != nil {
		t.Fatal(err)
	}
	want := waitState(t, m, "fin", jobs.StateDone)
	m.Drain()

	ran := make(chan string, 1)
	m2 := jobs.NewManager(jobs.Config{Blobs: blobs, Run: func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		ran <- j.ID()
		return nil, errors.New("terminal jobs must not rerun")
	}})
	if n := m2.Recover(); n != 1 {
		t.Fatalf("recovered %d, want 1", n)
	}
	rec, ok := m2.Get("fin")
	if !ok || rec.State != jobs.StateDone {
		t.Fatalf("recovered record = %+v, want done", rec)
	}
	if string(rec.Result) != string(want.Result) {
		t.Fatalf("recovered result %s != original %s", rec.Result, want.Result)
	}
	select {
	case id := <-ran:
		t.Fatalf("terminal job %s was rescheduled", id)
	case <-time.After(50 * time.Millisecond):
	}
	if got := m2.Terminal(); len(got) != 1 || got[0].ID != "fin" {
		t.Fatalf("terminal ring after recovery = %+v", got)
	}
}

// TestSlowSubscriberDropsProgressAndCounts: a subscriber that never
// drains its buffer loses progress events (never terminal ones); the
// accumulated loss count rides on the next delivered event and the
// manager-wide counter matches.
func TestSlowSubscriberDropsProgressAndCounts(t *testing.T) {
	const bursts = 64 // well past the 16-slot subscriber buffer
	start := make(chan struct{})
	emitted := make(chan struct{})
	release := make(chan struct{})
	run := func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		<-start
		for i := 0; i < bursts; i++ {
			j.SetProgress(i, nil)
		}
		close(emitted)
		<-release
		return json.RawMessage(`{"done":true}`), nil
	}
	m := jobs.NewManager(jobs.Config{Blobs: newMemBlobs(), Run: run})
	rec, err := m.Submit("", json.RawMessage(`{}`), "key-drop", 0)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := m.Job(rec.ID)
	if !ok {
		t.Fatal("job not found")
	}
	ch, cancel := j.Subscribe()
	defer cancel()
	close(start) // progress burst begins only after the subscription
	<-emitted
	close(release)
	waitState(t, m, rec.ID, jobs.StateDone)

	var last jobs.Event
	gotResult := false
	for ev := range ch {
		last = ev
		if ev.Type == "result" {
			gotResult = true
			break
		}
	}
	if !gotResult {
		t.Fatalf("terminal event was dropped; last = %+v", last)
	}
	if last.Dropped == 0 {
		t.Fatal("result event carries dropped = 0 after an undrained burst")
	}
	if got := m.Stats().EventsDropped; got != last.Dropped {
		t.Fatalf("manager events_dropped = %d, subscriber saw %d", got, last.Dropped)
	}
}

// TestGateShedsSubmissions: a failing admission gate refuses Submit
// before any state is created and counts the shed.
func TestGateShedsSubmissions(t *testing.T) {
	gateErr := errors.New("paused")
	gated := true
	m := jobs.NewManager(jobs.Config{Blobs: newMemBlobs(), Run: testRun,
		Gate: func() error {
			if gated {
				return gateErr
			}
			return nil
		}})
	if _, err := m.Submit("", mustJSON(t, testReq{Steps: 1}), "key-gate", 0); !errors.Is(err, gateErr) {
		t.Fatalf("gated submit = %v, want gate error", err)
	}
	if st := m.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	gated = false
	rec, err := m.Submit("", mustJSON(t, testReq{Steps: 1}), "key-gate", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, jobs.StateDone)
}
