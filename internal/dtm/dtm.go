// Package dtm implements the run-time dynamic thermal management
// extension the paper lists as future work: "combining cooling networks
// with run-time thermal management techniques (e.g., DVFS and adjustable
// flow rates) to handle dynamic die power".
//
// A Controller adjusts the system pressure drop (i.e. the pump operating
// point) at a fixed control period while the chip's power varies over
// time; the thermal response is co-simulated with the transient
// backward-Euler extension of the 4RM model. Because the flow field is
// linear in P_sys, each distinct pump level needs one system assembly,
// which the simulator caches.
package dtm

import (
	"fmt"
	"math"

	"lcn3d/internal/rm4"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

// Controller picks the next pump pressure from the observed peak
// temperature. Implementations must be deterministic.
type Controller interface {
	// Next returns the pressure for the upcoming control period given
	// the current time and observed peak temperature.
	Next(t, tmax float64) float64
}

// BangBang switches between a low and a high pump level with hysteresis:
// above THigh it selects PHigh, below TLow it selects PLow, in between it
// keeps the previous level.
type BangBang struct {
	TLow, THigh float64
	PLow, PHigh float64
	cur         float64
}

// Next implements Controller.
func (b *BangBang) Next(_, tmax float64) float64 {
	if b.cur == 0 {
		b.cur = b.PLow
	}
	switch {
	case tmax >= b.THigh:
		b.cur = b.PHigh
	case tmax <= b.TLow:
		b.cur = b.PLow
	}
	return b.cur
}

// PI is a proportional-integral controller tracking a peak-temperature
// target by modulating the pump pressure within [PMin, PMax].
type PI struct {
	Target     float64 // peak temperature setpoint, K
	Kp, Ki     float64 // gains, Pa/K and Pa/(K*s)
	PMin, PMax float64
	integral   float64
}

// Next implements Controller.
func (c *PI) Next(_ float64, tmax float64) float64 {
	err := tmax - c.Target // positive = too hot = pump harder
	c.integral += err
	p := c.Kp*err + c.Ki*c.integral
	if p < c.PMin {
		p = c.PMin
		// Anti-windup: stop integrating against the saturation.
		c.integral -= err
	}
	if p > c.PMax {
		p = c.PMax
		c.integral -= err
	}
	return p
}

// Fixed always returns the same pressure (the no-DTM baseline).
type Fixed float64

// Next implements Controller.
func (f Fixed) Next(_, _ float64) float64 { return float64(f) }

// Trace maps time (s) to a global power multiplier, modeling workload
// phases.
type Trace func(t float64) float64

// StepTrace alternates between lo and hi multipliers with the given
// period (50% duty cycle), a classic DTM stress pattern.
func StepTrace(lo, hi, period float64) Trace {
	return func(t float64) float64 {
		if math.Mod(t, period) < period/2 {
			return hi
		}
		return lo
	}
}

// Sample is one control-period observation.
type Sample struct {
	T          float64 // end-of-period time, s
	Psys       float64 // pump level during the period, Pa
	PowerScale float64
	Tmax       float64 // peak temperature at period end, K
	PumpEnergy float64 // pumping energy spent this period, J
}

// Config describes a DTM co-simulation.
type Config struct {
	Model      *rm4.Model
	Controller Controller
	Trace      Trace
	Dt         float64 // integration step, s
	CtrlEvery  int     // integration steps per control period (>= 1)
	Duration   float64 // total simulated time, s
}

// Result aggregates a run.
type Result struct {
	Samples    []Sample
	PeakTmax   float64 // highest observed peak temperature, K
	PumpEnergy float64 // total pumping energy, J
	MeanPsys   float64
	Overshoots int // control periods with Tmax above the PI target / THigh
	OverTarget float64
}

// Run co-simulates the controller against the transient thermal model.
func Run(cfg Config) (*Result, error) {
	if cfg.Model == nil || cfg.Controller == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("dtm: Model, Controller and Trace are required")
	}
	if cfg.Dt <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("dtm: Dt and Duration must be positive")
	}
	if cfg.CtrlEvery < 1 {
		cfg.CtrlEvery = 1
	}
	mod := cfg.Model
	stk := mod.Stk

	// Cache per pump level: the implicit stepper and baseline RHS split
	// into inlet and power parts (power scales with the trace).
	type level struct {
		ts     *thermal.TransientSystem
		bInlet []float64
		bPower []float64
		wpump  float64
	}
	levels := map[float64]*level{}
	getLevel := func(psys float64) (*level, error) {
		if lv, ok := levels[psys]; ok {
			return lv, nil
		}
		sys, err := mod.System(psys)
		if err != nil {
			return nil, err
		}
		bPower := powerRHS(mod)
		bInlet := make([]float64, len(sys.B))
		for i := range bInlet {
			bInlet[i] = sys.B[i] - bPower[i]
		}
		ts, err := thermal.NewTransientSystem(sys.A, append([]float64(nil), sys.B...), sys.Cap, cfg.Dt)
		if err != nil {
			return nil, err
		}
		out, err := mod.Simulate(psys)
		if err != nil {
			return nil, err
		}
		lv := &level{ts: ts, bInlet: bInlet, bPower: bPower, wpump: out.Wpump}
		levels[psys] = lv
		return lv, nil
	}

	field := make([]float64, mod.NumNodes())
	for i := range field {
		field[i] = stk.TinK
	}
	res := &Result{}
	tmax := stk.TinK
	steps := int(cfg.Duration/cfg.Dt + 0.5)
	var psysSum float64
	periods := 0
	for s := 0; s < steps; s += cfg.CtrlEvery {
		t := float64(s) * cfg.Dt
		psys := cfg.Controller.Next(t, tmax)
		if psys <= 0 {
			return nil, fmt.Errorf("dtm: controller returned non-positive pressure %g at t=%g", psys, t)
		}
		scale := cfg.Trace(t)
		lv, err := getLevel(psys)
		if err != nil {
			return nil, err
		}
		// Compose the RHS for this period: inlet terms plus scaled power.
		b := lv.ts.B
		for i := range b {
			b[i] = lv.bInlet[i] + scale*lv.bPower[i]
		}
		for k := 0; k < cfg.CtrlEvery && s+k < steps; k++ {
			if err := lv.ts.Step(field); err != nil {
				return nil, err
			}
		}
		tmax = sourcePeak(mod, field)
		dt := cfg.Dt * float64(cfg.CtrlEvery)
		res.Samples = append(res.Samples, Sample{
			T: t + dt, Psys: psys, PowerScale: scale, Tmax: tmax,
			PumpEnergy: lv.wpump * dt,
		})
		res.PumpEnergy += lv.wpump * dt
		res.PeakTmax = math.Max(res.PeakTmax, tmax)
		psysSum += psys
		periods++
	}
	if periods > 0 {
		res.MeanPsys = psysSum / float64(periods)
	}
	return res, nil
}

// CountOvershoots fills the overshoot statistics of a result against a
// temperature limit.
func (r *Result) CountOvershoots(limit float64) {
	r.Overshoots = 0
	r.OverTarget = 0
	for _, s := range r.Samples {
		if s.Tmax > limit {
			r.Overshoots++
			r.OverTarget = math.Max(r.OverTarget, s.Tmax-limit)
		}
	}
}

// powerRHS builds the RHS contribution of the source layers alone.
func powerRHS(m *rm4.Model) []float64 {
	stk := m.Stk
	n := stk.Dims.N()
	b := make([]float64, m.NumNodes())
	for l, layer := range stk.Layers {
		if layer.Kind != stack.Source {
			continue
		}
		for i := 0; i < n; i++ {
			b[l*n+i] = layer.Power.W[i]
		}
	}
	return b
}

// sourcePeak extracts the peak source-layer temperature from a full
// field.
func sourcePeak(m *rm4.Model, field []float64) float64 {
	stk := m.Stk
	n := stk.Dims.N()
	peak := math.Inf(-1)
	for _, l := range stk.SourceLayers() {
		for i := 0; i < n; i++ {
			if v := field[l*n+i]; v > peak {
				peak = v
			}
		}
	}
	return peak
}
