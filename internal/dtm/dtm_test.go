package dtm

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/power"
	"lcn3d/internal/rm4"
	"lcn3d/internal/stack"
	"lcn3d/internal/thermal"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func testModel(t *testing.T) *rm4.Model {
	t.Helper()
	s, err := stack.NewDieStack(stack.Config{Dims: d21, ChannelHeight: 200e-6},
		[]*power.Map{
			power.Hotspots(d21, 1, 2, 0.5, 1.0),
			power.Hotspots(d21, 2, 2, 0.5, 1.0),
		})
	if err != nil {
		t.Fatal(err)
	}
	n := network.Straight(d21, grid.SideWest, 1)
	m, err := rm4.New(s, []*network.Network{n}, thermal.Central)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFixedControllerTracksSteadyState(t *testing.T) {
	m := testModel(t)
	res, err := Run(Config{
		Model: m, Controller: Fixed(10e3), Trace: func(float64) float64 { return 1 },
		Dt: 2e-3, CtrlEvery: 5, Duration: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	steady, err := m.Simulate(10e3)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	if math.Abs(last.Tmax-steady.Tmax) > 0.2 {
		t.Fatalf("transient settle %.3f K, steady %.3f K", last.Tmax, steady.Tmax)
	}
	if res.PumpEnergy <= 0 {
		t.Fatal("pump energy should accumulate")
	}
}

func TestBangBangHysteresis(t *testing.T) {
	bb := &BangBang{TLow: 310, THigh: 320, PLow: 2e3, PHigh: 40e3}
	if p := bb.Next(0, 305); p != 2e3 {
		t.Fatalf("cool start should pick PLow, got %g", p)
	}
	if p := bb.Next(0, 321); p != 40e3 {
		t.Fatalf("hot should pick PHigh, got %g", p)
	}
	// Inside the band: keep previous level.
	if p := bb.Next(0, 315); p != 40e3 {
		t.Fatalf("hysteresis should keep PHigh, got %g", p)
	}
	if p := bb.Next(0, 309); p != 2e3 {
		t.Fatalf("below TLow should drop to PLow, got %g", p)
	}
	if p := bb.Next(0, 315); p != 2e3 {
		t.Fatalf("hysteresis should keep PLow, got %g", p)
	}
}

func TestPISaturatesAndRecovers(t *testing.T) {
	pi := &PI{Target: 320, Kp: 1e3, Ki: 10, PMin: 1e3, PMax: 50e3}
	// Very hot: saturates at PMax without unbounded windup.
	for i := 0; i < 100; i++ {
		if p := pi.Next(0, 400); p != 50e3 {
			t.Fatalf("should saturate at PMax, got %g", p)
		}
	}
	// Cooling below target must be able to bring pressure back down in a
	// bounded number of steps (anti-windup).
	steps := 0
	for ; steps < 200; steps++ {
		if pi.Next(0, 310) < 50e3 {
			break
		}
	}
	if steps >= 200 {
		t.Fatal("integrator wound up; pressure never recovers")
	}
}

func TestBangBangReactsToPowerStep(t *testing.T) {
	m := testModel(t)
	bb := &BangBang{TLow: 306, THigh: 310, PLow: 3e3, PHigh: 60e3}
	res, err := Run(Config{
		Model: m, Controller: bb,
		Trace: StepTrace(0.3, 2.0, 0.2),
		Dt:    2e-3, CtrlEvery: 5, Duration: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The controller must have used both levels.
	usedLow, usedHigh := false, false
	for _, s := range res.Samples {
		if s.Psys == 3e3 {
			usedLow = true
		}
		if s.Psys == 60e3 {
			usedHigh = true
		}
	}
	if !usedLow || !usedHigh {
		t.Fatalf("bang-bang should exercise both levels (low=%v high=%v)", usedLow, usedHigh)
	}
	// And it must save energy against always-high pumping.
	alwaysHigh, err := Run(Config{
		Model: m, Controller: Fixed(60e3), Trace: StepTrace(0.3, 2.0, 0.2),
		Dt: 2e-3, CtrlEvery: 5, Duration: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PumpEnergy >= alwaysHigh.PumpEnergy {
		t.Fatalf("DTM energy %.3g J should undercut always-high %.3g J", res.PumpEnergy, alwaysHigh.PumpEnergy)
	}
	// While keeping temperature lower than always-low pumping.
	alwaysLow, err := Run(Config{
		Model: m, Controller: Fixed(3e3), Trace: StepTrace(0.3, 2.0, 0.2),
		Dt: 2e-3, CtrlEvery: 5, Duration: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakTmax >= alwaysLow.PeakTmax {
		t.Fatalf("DTM peak %.2f K should beat always-low %.2f K", res.PeakTmax, alwaysLow.PeakTmax)
	}
}

func TestStepTrace(t *testing.T) {
	tr := StepTrace(0.5, 2, 1.0)
	if tr(0.1) != 2 || tr(0.6) != 0.5 || tr(1.2) != 2 {
		t.Fatal("step trace phases wrong")
	}
}

func TestCountOvershoots(t *testing.T) {
	r := &Result{Samples: []Sample{{Tmax: 310}, {Tmax: 321}, {Tmax: 325}}}
	r.CountOvershoots(320)
	if r.Overshoots != 2 || math.Abs(r.OverTarget-5) > 1e-12 {
		t.Fatalf("overshoots %d over %g", r.Overshoots, r.OverTarget)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	m := testModel(t)
	if _, err := Run(Config{Model: m}); err == nil {
		t.Error("missing controller/trace should fail")
	}
	if _, err := Run(Config{Model: m, Controller: Fixed(1e3),
		Trace: func(float64) float64 { return 1 }, Dt: 0, Duration: 1}); err == nil {
		t.Error("zero dt should fail")
	}
	bad := Fixed(0)
	if _, err := Run(Config{Model: m, Controller: bad,
		Trace: func(float64) float64 { return 1 }, Dt: 1e-3, Duration: 0.01}); err == nil {
		t.Error("non-positive controller pressure should fail")
	}
}
