// Package grid provides 2D rectangular grid indexing for basic cells and
// thermal cells, chip-edge sides, lateral directions, and ragged coarse
// tilings used by the 2RM porous-medium model.
//
// Coordinates follow the paper's channel-layer picture: x grows to the
// east (right), y grows to the north (up). Cell (0, 0) is the south-west
// corner. Linear indices are row-major: idx = y*NX + x.
package grid

import "fmt"

// Dims describes a rectangular grid of NX columns by NY rows.
type Dims struct {
	NX, NY int
}

// N reports the total number of cells.
func (d Dims) N() int { return d.NX * d.NY }

// Index converts (x, y) into a linear row-major index.
func (d Dims) Index(x, y int) int { return y*d.NX + x }

// Coord converts a linear index back into (x, y).
func (d Dims) Coord(i int) (x, y int) { return i % d.NX, i / d.NX }

// In reports whether (x, y) lies inside the grid.
func (d Dims) In(x, y int) bool { return x >= 0 && x < d.NX && y >= 0 && y < d.NY }

// OnEdge reports whether (x, y) touches any grid boundary.
func (d Dims) OnEdge(x, y int) bool {
	return x == 0 || y == 0 || x == d.NX-1 || y == d.NY-1
}

func (d Dims) String() string { return fmt.Sprintf("%dx%d", d.NX, d.NY) }

// Dir is a lateral direction on the grid.
type Dir int

// The four lateral directions.
const (
	East Dir = iota
	North
	West
	South
	NumDirs = 4
)

var dirNames = [NumDirs]string{"E", "N", "W", "S"}

func (dir Dir) String() string {
	if dir < 0 || dir >= NumDirs {
		return fmt.Sprintf("Dir(%d)", int(dir))
	}
	return dirNames[dir]
}

// Delta returns the unit step of the direction.
func (dir Dir) Delta() (dx, dy int) {
	switch dir {
	case East:
		return 1, 0
	case North:
		return 0, 1
	case West:
		return -1, 0
	case South:
		return 0, -1
	}
	panic("grid: invalid direction")
}

// Opposite returns the reverse direction.
func (dir Dir) Opposite() Dir { return (dir + 2) % NumDirs }

// Side identifies one of the four chip edges where inlets and outlets may
// be placed.
type Side int

// The four chip sides. SideEast is the x = NX-1 column, and so on.
const (
	SideEast Side = iota
	SideNorth
	SideWest
	SideSouth
	NumSides = 4
)

var sideNames = [NumSides]string{"east", "north", "west", "south"}

func (s Side) String() string {
	if s < 0 || s >= NumSides {
		return fmt.Sprintf("Side(%d)", int(s))
	}
	return sideNames[s]
}

// Outward returns the direction pointing out of the chip through the side.
func (s Side) Outward() Dir {
	switch s {
	case SideEast:
		return East
	case SideNorth:
		return North
	case SideWest:
		return West
	case SideSouth:
		return South
	}
	panic("grid: invalid side")
}

// Len returns the number of boundary cells along the side.
func (s Side) Len(d Dims) int {
	if s == SideEast || s == SideWest {
		return d.NY
	}
	return d.NX
}

// Cell returns the (x, y) of the k-th boundary cell along the side,
// counted from the south end for vertical sides and from the west end for
// horizontal sides.
func (s Side) Cell(d Dims, k int) (x, y int) {
	switch s {
	case SideEast:
		return d.NX - 1, k
	case SideWest:
		return 0, k
	case SideNorth:
		return k, d.NY - 1
	case SideSouth:
		return k, 0
	}
	panic("grid: invalid side")
}

// PosAlong returns the along-side coordinate k of boundary cell (x, y),
// the inverse of Cell. It panics if the cell is not on the side.
func (s Side) PosAlong(d Dims, x, y int) int {
	switch s {
	case SideEast:
		if x != d.NX-1 {
			break
		}
		return y
	case SideWest:
		if x != 0 {
			break
		}
		return y
	case SideNorth:
		if y != d.NY-1 {
			break
		}
		return x
	case SideSouth:
		if y != 0 {
			break
		}
		return x
	}
	panic(fmt.Sprintf("grid: cell (%d,%d) not on side %v", x, y, s))
}

// Neighbors4 calls fn for each in-grid orthogonal neighbor of (x, y).
func (d Dims) Neighbors4(x, y int, fn func(nx, ny int, dir Dir)) {
	for dir := Dir(0); dir < NumDirs; dir++ {
		dx, dy := dir.Delta()
		nx, ny := x+dx, y+dy
		if d.In(nx, ny) {
			fn(nx, ny, dir)
		}
	}
}
