package grid

import "fmt"

// Tiling partitions a fine Dims grid into coarse cells of m×m fine cells.
// When the fine dimensions are not divisible by m the last row/column of
// coarse cells is ragged (smaller), exactly as the paper's 400 µm thermal
// cells tile the 101×101 basic-cell grid.
type Tiling struct {
	Fine   Dims
	Coarse Dims
	M      int // nominal coarse-cell side, in fine cells

	// x0/y0 hold the fine start coordinate of each coarse column/row;
	// they have Coarse.NX+1 and Coarse.NY+1 entries so that the extent of
	// coarse column cx is [x0[cx], x0[cx+1]).
	x0, y0 []int
}

// NewTiling builds a tiling of fine with coarse cells of side m.
func NewTiling(fine Dims, m int) (*Tiling, error) {
	if m < 1 {
		return nil, fmt.Errorf("grid: tiling factor m=%d must be >= 1", m)
	}
	if fine.NX < 1 || fine.NY < 1 {
		return nil, fmt.Errorf("grid: invalid fine dims %v", fine)
	}
	t := &Tiling{Fine: fine, M: m}
	t.Coarse = Dims{NX: (fine.NX + m - 1) / m, NY: (fine.NY + m - 1) / m}
	t.x0 = make([]int, t.Coarse.NX+1)
	for cx := 0; cx <= t.Coarse.NX; cx++ {
		t.x0[cx] = min(cx*m, fine.NX)
	}
	t.y0 = make([]int, t.Coarse.NY+1)
	for cy := 0; cy <= t.Coarse.NY; cy++ {
		t.y0[cy] = min(cy*m, fine.NY)
	}
	return t, nil
}

// CoarseOf maps a fine cell to its coarse cell.
func (t *Tiling) CoarseOf(x, y int) (cx, cy int) { return x / t.M, y / t.M }

// XRange returns the fine-x half-open extent [lo, hi) of coarse column cx.
func (t *Tiling) XRange(cx int) (lo, hi int) { return t.x0[cx], t.x0[cx+1] }

// YRange returns the fine-y half-open extent [lo, hi) of coarse row cy.
func (t *Tiling) YRange(cy int) (lo, hi int) { return t.y0[cy], t.y0[cy+1] }

// Width returns the number of fine columns in coarse column cx.
func (t *Tiling) Width(cx int) int { return t.x0[cx+1] - t.x0[cx] }

// Height returns the number of fine rows in coarse row cy.
func (t *Tiling) Height(cy int) int { return t.y0[cy+1] - t.y0[cy] }

// CellArea returns the number of fine cells inside coarse cell (cx, cy).
func (t *Tiling) CellArea(cx, cy int) int { return t.Width(cx) * t.Height(cy) }

// EachFine calls fn for every fine cell inside coarse cell (cx, cy).
func (t *Tiling) EachFine(cx, cy int, fn func(x, y int)) {
	xlo, xhi := t.XRange(cx)
	ylo, yhi := t.YRange(cy)
	for y := ylo; y < yhi; y++ {
		for x := xlo; x < xhi; x++ {
			fn(x, y)
		}
	}
}
