package grid

import (
	"testing"
	"testing/quick"
)

func TestIndexCoordRoundTrip(t *testing.T) {
	d := Dims{NX: 7, NY: 5}
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			i := d.Index(x, y)
			gx, gy := d.Coord(i)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, i, gx, gy)
			}
		}
	}
	if d.N() != 35 {
		t.Fatalf("N = %d, want 35", d.N())
	}
}

func TestIndexCoordProperty(t *testing.T) {
	d := Dims{NX: 101, NY: 101}
	f := func(i uint16) bool {
		idx := int(i) % d.N()
		x, y := d.Coord(idx)
		return d.In(x, y) && d.Index(x, y) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIn(t *testing.T) {
	d := Dims{NX: 3, NY: 4}
	cases := []struct {
		x, y int
		want bool
	}{
		{0, 0, true}, {2, 3, true}, {-1, 0, false}, {0, -1, false},
		{3, 0, false}, {0, 4, false}, {1, 2, true},
	}
	for _, c := range cases {
		if got := d.In(c.x, c.y); got != c.want {
			t.Errorf("In(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestOnEdge(t *testing.T) {
	d := Dims{NX: 5, NY: 5}
	if !d.OnEdge(0, 2) || !d.OnEdge(4, 2) || !d.OnEdge(2, 0) || !d.OnEdge(2, 4) {
		t.Error("boundary cells should be on edge")
	}
	if d.OnEdge(2, 2) {
		t.Error("interior cell should not be on edge")
	}
}

func TestDirDelta(t *testing.T) {
	want := map[Dir][2]int{East: {1, 0}, North: {0, 1}, West: {-1, 0}, South: {0, -1}}
	for dir, w := range want {
		dx, dy := dir.Delta()
		if dx != w[0] || dy != w[1] {
			t.Errorf("%v.Delta() = (%d,%d), want (%d,%d)", dir, dx, dy, w[0], w[1])
		}
	}
}

func TestDirOpposite(t *testing.T) {
	for dir := Dir(0); dir < NumDirs; dir++ {
		op := dir.Opposite()
		dx, dy := dir.Delta()
		ox, oy := op.Delta()
		if dx+ox != 0 || dy+oy != 0 {
			t.Errorf("%v opposite %v does not cancel", dir, op)
		}
		if op.Opposite() != dir {
			t.Errorf("double opposite of %v is %v", dir, op.Opposite())
		}
	}
}

func TestSideCellsAreOnEdge(t *testing.T) {
	d := Dims{NX: 6, NY: 9}
	for s := Side(0); s < NumSides; s++ {
		for k := 0; k < s.Len(d); k++ {
			x, y := s.Cell(d, k)
			if !d.OnEdge(x, y) {
				t.Errorf("side %v cell %d = (%d,%d) not on edge", s, k, x, y)
			}
			if got := s.PosAlong(d, x, y); got != k {
				t.Errorf("PosAlong(%v, %d,%d) = %d, want %d", s, x, y, got, k)
			}
		}
	}
}

func TestSideOutwardLeavesGrid(t *testing.T) {
	d := Dims{NX: 4, NY: 4}
	for s := Side(0); s < NumSides; s++ {
		x, y := s.Cell(d, 1)
		dx, dy := s.Outward().Delta()
		if d.In(x+dx, y+dy) {
			t.Errorf("stepping outward from side %v stays inside the grid", s)
		}
	}
}

func TestNeighbors4(t *testing.T) {
	d := Dims{NX: 3, NY: 3}
	count := 0
	d.Neighbors4(1, 1, func(nx, ny int, dir Dir) { count++ })
	if count != 4 {
		t.Errorf("interior cell has %d neighbors, want 4", count)
	}
	count = 0
	d.Neighbors4(0, 0, func(nx, ny int, dir Dir) {
		count++
		if !d.In(nx, ny) {
			t.Errorf("neighbor (%d,%d) out of grid", nx, ny)
		}
	})
	if count != 2 {
		t.Errorf("corner cell has %d neighbors, want 2", count)
	}
}

func TestTilingExact(t *testing.T) {
	ti, err := NewTiling(Dims{NX: 8, NY: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Coarse != (Dims{NX: 2, NY: 2}) {
		t.Fatalf("coarse dims %v, want 2x2", ti.Coarse)
	}
	if ti.CellArea(1, 1) != 16 {
		t.Fatalf("cell area %d, want 16", ti.CellArea(1, 1))
	}
}

func TestTilingRagged(t *testing.T) {
	// 101 fine cells with m=4 -> 26 coarse columns, last has width 1,
	// matching the paper's 400 µm thermal cells over 101 basic cells.
	ti, err := NewTiling(Dims{NX: 101, NY: 101}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Coarse.NX != 26 || ti.Coarse.NY != 26 {
		t.Fatalf("coarse dims %v, want 26x26", ti.Coarse)
	}
	if w := ti.Width(25); w != 1 {
		t.Fatalf("last coarse column width %d, want 1", w)
	}
	if w := ti.Width(0); w != 4 {
		t.Fatalf("first coarse column width %d, want 4", w)
	}
}

func TestTilingCoversEveryFineCellOnce(t *testing.T) {
	fine := Dims{NX: 23, NY: 51}
	ti, err := NewTiling(fine, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, fine.N())
	for cy := 0; cy < ti.Coarse.NY; cy++ {
		for cx := 0; cx < ti.Coarse.NX; cx++ {
			ti.EachFine(cx, cy, func(x, y int) {
				seen[fine.Index(x, y)]++
				gcx, gcy := ti.CoarseOf(x, y)
				if gcx != cx || gcy != cy {
					t.Fatalf("CoarseOf(%d,%d) = (%d,%d), want (%d,%d)", x, y, gcx, gcy, cx, cy)
				}
			})
		}
	}
	for i, n := range seen {
		if n != 1 {
			x, y := fine.Coord(i)
			t.Fatalf("fine cell (%d,%d) covered %d times", x, y, n)
		}
	}
}

func TestTilingRejectsBadInput(t *testing.T) {
	if _, err := NewTiling(Dims{NX: 5, NY: 5}, 0); err == nil {
		t.Error("m=0 should be rejected")
	}
	if _, err := NewTiling(Dims{NX: 0, NY: 5}, 2); err == nil {
		t.Error("empty grid should be rejected")
	}
}

func TestTilingRangesProperty(t *testing.T) {
	f := func(nx, ny uint8, m uint8) bool {
		d := Dims{NX: int(nx%60) + 1, NY: int(ny%60) + 1}
		ti, err := NewTiling(d, int(m%7)+1)
		if err != nil {
			return false
		}
		total := 0
		for cx := 0; cx < ti.Coarse.NX; cx++ {
			lo, hi := ti.XRange(cx)
			if lo >= hi || hi-lo > ti.M {
				return false
			}
			total += hi - lo
		}
		return total == d.NX
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPosAlongPanicsOffSide(t *testing.T) {
	d := Dims{NX: 4, NY: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("PosAlong off-side should panic")
		}
	}()
	SideEast.PosAlong(d, 0, 1) // x=0 is the west column
}

func TestSideLen(t *testing.T) {
	d := Dims{NX: 6, NY: 9}
	if SideEast.Len(d) != 9 || SideWest.Len(d) != 9 {
		t.Fatal("vertical sides span NY")
	}
	if SideNorth.Len(d) != 6 || SideSouth.Len(d) != 6 {
		t.Fatal("horizontal sides span NX")
	}
}

func TestStringers(t *testing.T) {
	if East.String() != "E" || South.String() != "S" {
		t.Fatal("direction names")
	}
	if SideWest.String() != "west" {
		t.Fatal("side names")
	}
	if (Dims{NX: 3, NY: 4}).String() != "3x4" {
		t.Fatal("dims name")
	}
	if Dir(9).String() == "" || Side(9).String() == "" {
		t.Fatal("out-of-range stringers should not be empty")
	}
}
