package solver

import "lcn3d/internal/sparse"

// Rung identifies a step of the solver escalation ladder the thermal and
// flow models climb when a solve fails (breakdown, non-convergence, or a
// non-finite result):
//
//	RungPrimary  the model's normal method (BiCGSTAB for the thermal
//	             system, CG for the SPD flow system)
//	RungRetry    the first fallback: rebuilt preconditioner + cold
//	             restart for thermal, BiCGSTAB for flow
//	RungGMRES    restarted GMRES from a cold start
//	RungDense    dense LU, only for systems up to DenseFallbackMax
//
// A solve whose result came from RungGMRES or RungDense is "degraded":
// correct within tolerance, but produced by a method outside the normal
// operating envelope. Callers surface that as a flag so clients can tell
// a routine answer from one that needed the ladder.
type Rung int

// The escalation ladder, in climb order.
const (
	RungPrimary Rung = iota
	RungRetry
	RungGMRES
	RungDense
	NumRungs
)

func (r Rung) String() string {
	switch r {
	case RungPrimary:
		return "primary"
	case RungRetry:
		return "retry"
	case RungGMRES:
		return "gmres"
	case RungDense:
		return "dense"
	}
	return "unknown"
}

// Degraded reports whether a result produced at this rung should be
// flagged degraded (see Rung).
func (r Rung) Degraded() bool { return r >= RungGMRES }

// DenseFallbackMax is the largest system size the dense LU rung accepts:
// O(n²) memory and O(n³) time keep it a last resort for small systems
// (reduced-scale cases, coarse 2RM grids), where it is still far better
// than failing the request.
const DenseFallbackMax = 1500

// RelResidual returns ||b - A·x|| / ||b|| (0 when b is zero), used to
// report a Result for direct solves that have no iteration count.
func RelResidual(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.MulVecAuto(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bn := norm2(b)
	if bn == 0 {
		return 0
	}
	return norm2(r) / bn
}
