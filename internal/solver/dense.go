package solver

import (
	"errors"
	"math"

	"lcn3d/internal/sparse"
)

// DenseSolve solves A x = b by dense LU with partial pivoting. Intended
// for tiny systems (network evaluation cross-checks, unit tests) — cost
// is O(n^3).
func DenseSolve(a *sparse.CSR, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, errors.New("solver: DenseSolve dimension mismatch")
	}
	m := a.Dense()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, errors.New("solver: singular matrix")
		}
		if p != col {
			m[p], m[col] = m[col], m[p]
			x[p], x[col] = x[col], x[p]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
