package solver

import (
	"errors"
	"math"

	"lcn3d/internal/sparse"
)

// DenseSolve solves A x = b by dense LU with partial pivoting. Intended
// for tiny systems (network evaluation cross-checks, unit tests) — cost
// is O(n^3).
func DenseSolve(a *sparse.CSR, b []float64) ([]float64, error) {
	lu, err := NewDenseLU(a)
	if err != nil {
		return nil, err
	}
	if len(b) != a.N {
		return nil, errors.New("solver: DenseSolve dimension mismatch")
	}
	x := make([]float64, a.N)
	lu.Solve(x, b)
	return x, nil
}

// DenseLU is a reusable dense LU factorization with partial pivoting:
// factor once, solve many right-hand sides in O(n^2) each. The multigrid
// preconditioner uses it as the coarse-grid solver when the coarse
// system is small enough for O(n^3) factorization to be negligible.
type DenseLU struct {
	n    int
	m    [][]float64 // packed L (unit diagonal, below) and U (on/above)
	pivs []int       // row swapped with i at elimination step i
}

// NewDenseLU factorizes the matrix. It returns an error on a singular
// pivot.
func NewDenseLU(a *sparse.CSR) (*DenseLU, error) {
	n := a.N
	lu := &DenseLU{n: n, m: a.Dense(), pivs: make([]int, n)}
	m := lu.m
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, errors.New("solver: singular matrix")
		}
		lu.pivs[col] = p
		if p != col {
			m[p], m[col] = m[col], m[p]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = f // store the L multiplier in place
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return lu, nil
}

// Solve computes x = A^{-1} b. x and b may alias.
func (lu *DenseLU) Solve(x, b []float64) {
	n := lu.n
	if x2 := x; &x2[0] != &b[0] {
		copy(x, b)
	}
	// Apply the row swaps, then the forward and backward substitutions.
	for col := 0; col < n; col++ {
		if p := lu.pivs[col]; p != col {
			x[p], x[col] = x[col], x[p]
		}
	}
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.m[i]
		for c := 0; c < i; c++ {
			s -= row[c] * x[c]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.m[i]
		for c := i + 1; c < n; c++ {
			s -= row[c] * x[c]
		}
		x[i] = s / row[i]
	}
}
