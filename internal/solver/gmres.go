package solver

import (
	"fmt"
	"math"

	"lcn3d/internal/faults"
	"lcn3d/internal/sparse"
)

// GMRES solves the general system A x = b with restarted GMRES(m) and
// right preconditioning. x is the initial guess and result. It is the
// robust fallback for thermal systems on which BiCGSTAB stagnates (the
// central-differencing convection stencil can produce strongly
// non-normal matrices at high flow rates).
func GMRES(a *sparse.CSR, b, x []float64, opt Options) (Result, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: GMRES dimension mismatch: n=%d, |b|=%d, |x|=%d", n, len(b), len(x))
	}
	if faults.Fire(faults.GMRESBreakdown) {
		return Result{}, ErrBreakdown
	}
	if faults.Fire(faults.NotConverged) {
		return Result{Residual: math.Inf(1)}, ErrNotConverged
	}
	opt = opt.withDefaults(n)
	m := opt.Restart
	if m > n {
		m = n
	}

	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{}, nil
	}

	r := make([]float64, n)
	w := make([]float64, n)
	zt := make([]float64, n)
	// Krylov basis.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	// Hessenberg matrix, Givens rotations, residual vector.
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	y := make([]float64, m)

	totalIter := 0
	res := math.Inf(1)
	for totalIter < opt.MaxIter {
		a.MulVecAuto(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := norm2(r)
		res = beta / bnorm
		if notFinite(res) {
			return Result{Iterations: totalIter, Residual: res}, ErrBreakdown
		}
		if res <= opt.Tol {
			return Result{Iterations: totalIter, Residual: res}, nil
		}
		for i := range v[0] {
			v[0][i] = r[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && totalIter < opt.MaxIter; k++ {
			totalIter++
			// w = A * M^{-1} * v_k (right preconditioning).
			opt.Precond.Apply(zt, v[k])
			a.MulVecAuto(w, zt)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = norm2(w)
			if notFinite(h[k+1][k]) {
				return Result{Iterations: totalIter, Residual: res}, ErrBreakdown
			}
			if h[k+1][k] != 0 {
				for i := range w {
					v[k+1][i] = w[i] / h[k+1][k]
				}
			}
			// Apply existing Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to zero h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			res = math.Abs(g[k+1]) / bnorm
			if res <= opt.Tol {
				k++
				break
			}
		}
		// Back substitution for y in H y = g.
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return Result{Iterations: totalIter, Residual: res}, ErrBreakdown
			}
			y[i] = s / h[i][i]
		}
		// x += M^{-1} * V * y.
		for i := range zt {
			zt[i] = 0
		}
		for j := 0; j < k; j++ {
			axpy(y[j], v[j], zt)
		}
		opt.Precond.Apply(w, zt)
		axpy(1, w, x)

		if res <= opt.Tol {
			return Result{Iterations: totalIter, Residual: res}, nil
		}
	}
	return Result{Iterations: totalIter, Residual: res}, ErrNotConverged
}

// SolveGeneral solves a general sparse system, trying BiCGSTAB first and
// falling back to GMRES when BiCGSTAB breaks down or stagnates. This is
// the entry point the thermal simulators use.
func SolveGeneral(a *sparse.CSR, b, x []float64, opt Options) (Result, error) {
	x0 := make([]float64, len(x))
	copy(x0, x)
	res, err := BiCGSTAB(a, b, x, opt)
	if err == nil {
		return res, nil
	}
	// Restart from the original guess with GMRES.
	copy(x, x0)
	res2, err2 := GMRES(a, b, x, opt)
	if err2 == nil {
		return res2, nil
	}
	res2.Iterations += res.Iterations
	return res2, err2
}
