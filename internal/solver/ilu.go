package solver

import (
	"errors"

	"lcn3d/internal/sparse"
)

// ILU0 is a zero-fill incomplete LU preconditioner on the sparsity
// pattern of the matrix. For the symmetric flow matrix it degenerates to
// an incomplete Cholesky-like factorization; for the nonsymmetric thermal
// matrix it is the standard ILU(0).
type ILU0 struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64 // combined L (strictly lower, unit diagonal) and U
	diag   []int     // index of the diagonal entry in each row
}

// NewILU0 factorizes the matrix pattern in place (IKJ variant). It
// returns an error if a zero pivot is met; callers then fall back to
// Jacobi.
func NewILU0(m *sparse.CSR) (*ILU0, error) {
	n := m.N
	f := &ILU0{
		n:      n,
		rowPtr: m.RowPtr,
		cols:   m.Cols,
		vals:   make([]float64, len(m.Vals)),
		diag:   make([]int, n),
	}
	copy(f.vals, m.Vals)

	// Locate diagonals; require every row to have one.
	for i := 0; i < n; i++ {
		f.diag[i] = -1
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			if f.cols[k] == i {
				f.diag[i] = k
				break
			}
		}
		if f.diag[i] < 0 {
			return nil, errors.New("solver: ILU0 requires a full diagonal")
		}
	}

	// pos[j] maps column j to its entry index in the current row.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			pos[f.cols[k]] = k
		}
		for k := lo; k < hi; k++ {
			j := f.cols[k]
			if j >= i {
				break
			}
			pivot := f.vals[f.diag[j]]
			if pivot == 0 {
				return nil, errors.New("solver: ILU0 zero pivot")
			}
			lij := f.vals[k] / pivot
			f.vals[k] = lij
			// Subtract lij * row j (entries right of j) within pattern.
			for kk := f.diag[j] + 1; kk < f.rowPtr[j+1]; kk++ {
				if p := pos[f.cols[kk]]; p >= 0 {
					f.vals[p] -= lij * f.vals[kk]
				}
			}
		}
		if f.vals[f.diag[i]] == 0 {
			return nil, errors.New("solver: ILU0 zero pivot")
		}
		for k := lo; k < hi; k++ {
			pos[f.cols[k]] = -1
		}
	}
	return f, nil
}

// Apply solves (LU) z = r by forward then backward substitution.
func (f *ILU0) Apply(z, r []float64) {
	copy(z, r)
	// Forward solve L y = r (unit diagonal).
	for i := 0; i < f.n; i++ {
		s := z[i]
		for k := f.rowPtr[i]; k < f.diag[i]; k++ {
			s -= f.vals[k] * z[f.cols[k]]
		}
		z[i] = s
	}
	// Backward solve U z = y.
	for i := f.n - 1; i >= 0; i-- {
		s := z[i]
		for k := f.diag[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.vals[k] * z[f.cols[k]]
		}
		z[i] = s / f.vals[f.diag[i]]
	}
}

// BestPrecond builds the strongest available preconditioner for the
// matrix: ILU(0) when the factorization succeeds, Jacobi otherwise.
func BestPrecond(m *sparse.CSR) Preconditioner {
	if f, err := NewILU0(m); err == nil {
		return f
	}
	return NewJacobi(m)
}
