package solver

import (
	"fmt"
	"math"
	"sync/atomic"

	"lcn3d/internal/faults"
	"lcn3d/internal/sparse"
)

// TwoLevel is a geometric two-level multigrid preconditioner for the
// affine thermal family A(s) = S + s·F. The coarse space is the paper's
// own 2RM discretization: every fine unknown belongs to exactly one
// aggregate (a 2RM thermal cell — for the 4RM system that is one solid
// and one liquid node per m×m tile and layer), the prolongation P is
// piecewise constant over aggregates, and the restriction is R = P^T.
// The coarse operator is the Galerkin projection A_c = R·A·P, which for
// 0/1 aggregation is just a sum of fine entries per coarse entry — so
// A_c inherits the affine split: A_c(s) = (R·S·P) + s·(R·F·P).
//
// One Apply runs a V(pre,post)-cycle with ILU(0) smoothing: pre-smooth
// on the fine grid, restrict the residual, solve the coarse system
// (dense LU when small, ILU(0)-BiCGSTAB otherwise), prolong the
// correction, post-smooth. Pointwise (Jacobi/Gauss-Seidel) smoothing is
// not an option here: the central-differencing convection rows lose
// diagonal dominance as the flow grows — through-flow diagonal
// contributions cancel while the off-diagonals scale with ±c/2 — and
// pointwise sweeps diverge exactly in the regime the pressure searches
// spend most probes in. The ILU(0) smoother handles the advection
// chains the way the escalation ladder's baseline preconditioner does.
//
// The split that keeps the hierarchy cheap across pressure probes: the
// coarse operator is refreshed exactly at every scale for O(nnz_c)
// (A_c is affine in s), absorbing the drift sensitivity that used to
// force a full ILU refactorization at every probe, while the fine
// ILU(0) smoother — which only has to damp local error, not track the
// global temperature profile — is reused across nearby probes and
// refactored only past SmootherMaxDrift.
type TwoLevel struct {
	fine *sparse.CSR
	agg  []int // fine unknown -> coarse aggregate
	nc   int
	opt  MGOptions

	smoother Preconditioner // fine ILU(0) (Jacobi on pivot breakdown)
	smShift  float64        // shift the smoother was factorized at

	coarse        *sparse.CSR
	cBase, cSlope []float64 // Galerkin-projected static/flow blocks
	fmap          []int32   // fine nnz index -> coarse nnz index

	shift float64
	lu    *DenseLU       // coarse solver for nc <= DenseCoarseMax
	cPre  Preconditioner // coarse ILU(0) otherwise

	xf, rf, zf, rc, ec []float64 // V-cycle scratch

	// Per-level counters (atomics so stats snapshots never block a solve).
	ctrVCycles        atomic.Int64
	ctrSweeps         atomic.Int64
	ctrCoarseSolves   atomic.Int64
	ctrCoarseIters    atomic.Int64
	ctrUpdates        atomic.Int64
	ctrSmootherBuilds atomic.Int64
}

// DenseCoarseMax is the default largest coarse system factorized with a
// dense LU instead of an inner iterative solve. Callers choosing whether
// multigrid will pay off can test their aggregate count against it: a
// direct coarse solve makes the V-cycle cost essentially smoothing only.
const DenseCoarseMax = 96

// MGOptions tunes the V-cycle.
type MGOptions struct {
	PreSweeps      int     // smoothing steps before the coarse correction; default 1
	PostSweeps     int     // smoothing steps after; default 1
	DenseCoarseMax int     // largest coarse system factorized densely; default 96
	CoarseTol      float64 // relative tolerance of the iterative coarse solve; default 1e-6
	CoarseMaxIter  int     // iteration cap of the iterative coarse solve; default 4*nc
	// SmootherMaxDrift is the largest |log(s/s_smoother)| at which the
	// fine ILU(0) smoother is reused before refactorizing; default 0.5
	// (reuse within a ~1.65× scale change). Wider windows fail in the
	// convection-dominated regime: a smoother ~2× stale diverges there,
	// because the flow block it is missing dominates the matrix.
	SmootherMaxDrift float64
}

func (o MGOptions) withDefaults(nc int) MGOptions {
	if o.PreSweeps <= 0 {
		o.PreSweeps = 2
	}
	if o.PostSweeps <= 0 {
		o.PostSweeps = 2
	}
	if o.DenseCoarseMax <= 0 {
		o.DenseCoarseMax = DenseCoarseMax
	}
	if o.CoarseTol <= 0 {
		o.CoarseTol = 1e-6
	}
	if o.CoarseMaxIter <= 0 {
		o.CoarseMaxIter = 4 * nc
		if o.CoarseMaxIter < 200 {
			o.CoarseMaxIter = 200
		}
	}
	if o.SmootherMaxDrift <= 0 {
		o.SmootherMaxDrift = 0.5
	}
	return o
}

// MGStats snapshots the per-level multigrid counters.
type MGStats struct {
	VCycles        int64 // V-cycles applied (one per preconditioner Apply)
	SmootherSweeps int64 // smoothing steps across all cycles
	SmootherBuilds int64 // fine ILU(0) smoother factorizations
	CoarseSolves   int64 // coarse-grid solves (one per V-cycle)
	CoarseIters    int64 // iterations inside iterative coarse solves (0 for dense LU)
	Updates        int64 // UpdateShift refreshes of the coarse factorization
}

// Add accumulates another snapshot (used by benches summing over models).
func (s *MGStats) Add(o MGStats) {
	s.VCycles += o.VCycles
	s.SmootherSweeps += o.SmootherSweeps
	s.SmootherBuilds += o.SmootherBuilds
	s.CoarseSolves += o.CoarseSolves
	s.CoarseIters += o.CoarseIters
	s.Updates += o.Updates
}

// NewTwoLevel builds the two-level hierarchy over the pair's union
// pattern at the pair's current shift. agg maps every fine unknown to
// one of nc aggregates (the 2RM cell structure); the builder compiles
// the Galerkin coarse pattern and the fine→coarse scatter map once.
func NewTwoLevel(pair *sparse.AffinePair, agg []int, nc int, opt MGOptions) (*TwoLevel, error) {
	fine := pair.Matrix()
	n := fine.N
	if len(agg) != n {
		return nil, fmt.Errorf("solver: multigrid aggregate map has %d entries for %d unknowns", len(agg), n)
	}
	if nc < 1 || nc >= n {
		return nil, fmt.Errorf("solver: multigrid coarse size %d for fine size %d", nc, n)
	}
	g := &TwoLevel{
		fine: fine, agg: agg, nc: nc, opt: opt.withDefaults(nc),
		xf: make([]float64, n), rf: make([]float64, n), zf: make([]float64, n),
		rc: make([]float64, nc), ec: make([]float64, nc),
	}

	// Compile the Galerkin coarse pattern: every fine entry (i, j) lands
	// on coarse entry (agg[i], agg[j]). Bucket fine entry indices by
	// coarse row with a counting sort, order each bucket by coarse column
	// with an insertion sort (buckets hold one aggregate's worth of
	// entries), dedup into CSR, and record the scatter map.
	nnz := fine.NNZ()
	cc := make([]int32, nnz)
	rcount := make([]int, nc+1)
	at := 0
	for i := 0; i < n; i++ {
		ai := agg[i]
		if ai < 0 || ai >= nc {
			return nil, fmt.Errorf("solver: multigrid aggregate %d of unknown %d outside [0,%d)", ai, i, nc)
		}
		rcount[ai+1] += fine.RowPtr[i+1] - fine.RowPtr[i]
		for k := fine.RowPtr[i]; k < fine.RowPtr[i+1]; k++ {
			cc[at] = int32(agg[fine.Cols[k]])
			at++
		}
	}
	for c := 0; c < nc; c++ {
		rcount[c+1] += rcount[c]
	}
	order := make([]int32, nnz)
	pos := append([]int(nil), rcount[:nc]...)
	at = 0
	for i := 0; i < n; i++ {
		ai := agg[i]
		for k := fine.RowPtr[i]; k < fine.RowPtr[i+1]; k++ {
			order[pos[ai]] = int32(at)
			pos[ai]++
			at++
		}
	}
	for c := 0; c < nc; c++ {
		bucket := order[rcount[c]:rcount[c+1]]
		for i := 1; i < len(bucket); i++ {
			e := bucket[i]
			j := i - 1
			for j >= 0 && cc[bucket[j]] > cc[e] {
				bucket[j+1] = bucket[j]
				j--
			}
			bucket[j+1] = e
		}
	}
	g.coarse = &sparse.CSR{N: nc, RowPtr: make([]int, nc+1)}
	g.fmap = make([]int32, nnz)
	for c := 0; c < nc; c++ {
		lastC := int32(-1)
		for _, k := range order[rcount[c]:rcount[c+1]] {
			if cc[k] != lastC {
				g.coarse.Cols = append(g.coarse.Cols, int(cc[k]))
				g.coarse.RowPtr[c+1]++
				lastC = cc[k]
			}
			g.fmap[k] = int32(len(g.coarse.Cols) - 1)
		}
	}
	for c := 0; c < nc; c++ {
		g.coarse.RowPtr[c+1] += g.coarse.RowPtr[c]
	}
	cnnz := len(g.coarse.Cols)
	g.coarse.Vals = make([]float64, cnnz)
	g.cBase = make([]float64, cnnz)
	g.cSlope = make([]float64, cnnz)
	base, slope := pair.Base(), pair.Slope()
	for k := 0; k < nnz; k++ {
		g.cBase[g.fmap[k]] += base[k]
		g.cSlope[g.fmap[k]] += slope[k]
	}
	if err := g.UpdateShift(pair.Shift()); err != nil {
		return nil, err
	}
	return g, nil
}

// Shift reports the flow scale the coarse factorization is current at.
func (g *TwoLevel) Shift() float64 { return g.shift }

// NumCoarse reports the coarse system size.
func (g *TwoLevel) NumCoarse() int { return g.nc }

// UpdateShift refreshes the coarse operator to A_c(s) = R·(S + s·F)·P
// and refactorizes the coarse solver — O(nnz_c) plus the coarse
// factorization, the per-pressure-probe cost of keeping the coarse
// correction exactly current. The fine ILU(0) smoother is refactored
// only when the shift has drifted past SmootherMaxDrift since its last
// factorization.
func (g *TwoLevel) UpdateShift(s float64) error {
	for k := range g.coarse.Vals {
		g.coarse.Vals[k] = g.cBase[k] + s*g.cSlope[k]
	}
	if g.smoother == nil || scaleDist(s, g.smShift) > g.opt.SmootherMaxDrift {
		g.smoother = BestPrecond(g.fine)
		g.smShift = s
		g.ctrSmootherBuilds.Add(1)
	}
	g.shift = s
	g.ctrUpdates.Add(1)
	if g.nc <= g.opt.DenseCoarseMax {
		lu, err := NewDenseLU(g.coarse)
		if err != nil {
			return fmt.Errorf("solver: multigrid coarse factorization at s=%g: %w", s, err)
		}
		g.lu = lu
		return nil
	}
	g.cPre = BestPrecond(g.coarse)
	return nil
}

// scaleDist measures shift drift in log space (pressure probes span
// decades; ratios are what predict how far a factorization has aged).
func scaleDist(a, b float64) float64 {
	if a > 0 && b > 0 {
		return math.Abs(math.Log(a / b))
	}
	return math.Abs(a - b)
}

// Stats snapshots the per-level counters.
func (g *TwoLevel) Stats() MGStats {
	return MGStats{
		VCycles:        g.ctrVCycles.Load(),
		SmootherSweeps: g.ctrSweeps.Load(),
		SmootherBuilds: g.ctrSmootherBuilds.Load(),
		CoarseSolves:   g.ctrCoarseSolves.Load(),
		CoarseIters:    g.ctrCoarseIters.Load(),
		Updates:        g.ctrUpdates.Load(),
	}
}

// smoothStep applies one smoothing step x += M⁻¹(r - A·x) with the fine
// ILU(0) smoother. first marks x as known-zero, skipping the residual.
func (g *TwoLevel) smoothStep(x, r []float64, first bool) {
	if first {
		g.smoother.Apply(x, r)
	} else {
		g.fine.MulVecAuto(g.rf, x)
		for i := range g.rf {
			g.rf[i] = r[i] - g.rf[i]
		}
		g.smoother.Apply(g.zf, g.rf)
		for i := range x {
			x[i] += g.zf[i]
		}
	}
	g.ctrSweeps.Add(1)
}

// Apply runs one V-cycle on M z = r with a zero initial guess,
// implementing Preconditioner. The cycle is a fixed linear operation —
// fixed smoothing steps, a frozen smoother factorization, and a coarse
// solve to fixed tolerance — so the outer Krylov iteration sees a
// (numerically) constant preconditioner.
func (g *TwoLevel) Apply(z, r []float64) {
	g.ctrVCycles.Add(1)
	x := g.xf
	for i := range x {
		x[i] = 0
	}
	for s := 0; s < g.opt.PreSweeps; s++ {
		g.smoothStep(x, r, s == 0)
	}
	if faults.Fire(faults.MGSmoother) {
		x[0] = math.NaN()
	}

	// Coarse-grid correction on the pre-smoothed residual.
	g.fine.MulVecAuto(g.rf, x)
	for i := range g.rf {
		g.rf[i] = r[i] - g.rf[i]
	}
	for c := range g.rc {
		g.rc[c] = 0
	}
	for i, a := range g.agg {
		g.rc[a] += g.rf[i]
	}
	if faults.Fire(faults.MGRestrict) {
		g.rc[0] = math.NaN()
	}
	g.ctrCoarseSolves.Add(1)
	if g.lu != nil {
		g.lu.Solve(g.ec, g.rc)
	} else {
		// Seed the inner solve with the coarse preconditioner's one-shot
		// estimate — a fixed function of rc, so the cycle stays a constant
		// linear operation while the inner iteration starts much closer.
		g.cPre.Apply(g.ec, g.rc)
		res, err := BiCGSTAB(g.coarse, g.rc, g.ec, Options{
			Tol: g.opt.CoarseTol, MaxIter: g.opt.CoarseMaxIter, Precond: g.cPre,
		})
		g.ctrCoarseIters.Add(int64(res.Iterations))
		if err != nil && res.Residual > math.Sqrt(g.opt.CoarseTol) {
			// A hard coarse failure poisons the correction so the outer
			// solve surfaces ErrBreakdown and escalates off multigrid,
			// instead of silently iterating with a useless preconditioner.
			g.ec[0] = math.NaN()
		}
	}
	if faults.Fire(faults.MGCoarse) {
		g.ec[0] = math.NaN()
	}
	for i, a := range g.agg {
		x[i] += g.ec[a]
	}

	for s := 0; s < g.opt.PostSweeps; s++ {
		g.smoothStep(x, r, false)
	}
	copy(z, x)
}
