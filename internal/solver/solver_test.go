package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lcn3d/internal/sparse"
)

// laplacian1D builds the n×n second-difference matrix with Dirichlet-like
// anchoring at the ends (SPD).
func laplacian1D(n int) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
	}
	b.Add(0, 0, 1)
	b.Add(n-1, n-1, 1)
	return b.Build()
}

// laplacian2D builds a 5-point Laplacian on an nx×ny grid with a grounded
// diagonal shift (SPD).
func laplacian2D(nx, ny int) *sparse.CSR {
	idx := func(x, y int) int { return y*nx + x }
	b := sparse.NewBuilder(nx * ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				b.AddSym(idx(x, y), idx(x+1, y), 1)
			}
			if y+1 < ny {
				b.AddSym(idx(x, y), idx(x, y+1), 1)
			}
			b.Add(idx(x, y), idx(x, y), 0.01)
		}
	}
	return b.Build()
}

// convectionDiffusion1D builds a nonsymmetric matrix mimicking the thermal
// system: diffusion plus a skew central-difference convection term and an
// outlet anchor.
func convectionDiffusion1D(n int, pe float64) *sparse.CSR {
	b := sparse.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1)
		// Central convection: flow from i to i+1.
		b.Add(i, i, pe/2)
		b.Add(i, i+1, pe/2)
		b.Add(i+1, i, -pe/2)
		b.Add(i+1, i+1, -pe/2)
	}
	b.Add(n-1, n-1, pe) // outlet carries energy away
	b.Add(0, 0, 1)      // inlet anchor
	return b.Build()
}

func residual(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, a.N)
	a.MulVec(r, x)
	var num, den float64
	for i := range r {
		d := b[i] - r[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func TestCGSolvesLaplacian(t *testing.T) {
	a := laplacian1D(50)
	b := randomRHS(50, 1)
	x := make([]float64, 50)
	res, err := CG(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("CG failed: %v (res %g after %d iters)", err, res.Residual, res.Iterations)
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Fatalf("true residual %g too large", r)
	}
}

func TestCGWithJacobi(t *testing.T) {
	a := laplacian2D(20, 17)
	b := randomRHS(a.N, 2)
	x := make([]float64, a.N)
	res, err := CG(a, b, x, Options{Tol: 1e-10, Precond: NewJacobi(a)})
	if err != nil {
		t.Fatalf("CG+Jacobi failed: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("expected some iterations")
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Fatalf("true residual %g too large", r)
	}
}

func TestCGWithILU0FasterThanPlain(t *testing.T) {
	a := laplacian2D(25, 25)
	b := randomRHS(a.N, 3)

	xPlain := make([]float64, a.N)
	plain, err := CG(a, b, xPlain, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("plain CG failed: %v", err)
	}
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatalf("ILU0 failed: %v", err)
	}
	xPre := make([]float64, a.N)
	pre, err := CG(a, b, xPre, Options{Tol: 1e-10, Precond: ilu})
	if err != nil {
		t.Fatalf("CG+ILU0 failed: %v", err)
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("ILU0 should cut iterations: %d vs %d", pre.Iterations, plain.Iterations)
	}
}

func TestCGMatchesDenseSolve(t *testing.T) {
	a := laplacian1D(12)
	b := randomRHS(12, 4)
	x := make([]float64, 12)
	if _, err := CG(a, b, x, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	xd, err := DenseSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xd[i]) > 1e-8 {
			t.Fatalf("CG and dense disagree at %d: %g vs %g", i, x[i], xd[i])
		}
	}
}

func TestBiCGSTABNonsymmetric(t *testing.T) {
	for _, pe := range []float64{0.1, 1, 10} {
		a := convectionDiffusion1D(60, pe)
		b := randomRHS(60, 5)
		x := make([]float64, 60)
		_, err := BiCGSTAB(a, b, x, Options{Tol: 1e-10, Precond: BestPrecond(a)})
		if err != nil {
			t.Fatalf("pe=%g: BiCGSTAB failed: %v", pe, err)
		}
		if r := residual(a, b, x); r > 1e-7 {
			t.Fatalf("pe=%g: true residual %g", pe, r)
		}
	}
}

func TestGMRESNonsymmetric(t *testing.T) {
	a := convectionDiffusion1D(80, 5)
	b := randomRHS(80, 6)
	x := make([]float64, 80)
	_, err := GMRES(a, b, x, Options{Tol: 1e-10, Precond: BestPrecond(a), Restart: 30})
	if err != nil {
		t.Fatalf("GMRES failed: %v", err)
	}
	if r := residual(a, b, x); r > 1e-7 {
		t.Fatalf("true residual %g", r)
	}
}

func TestGMRESMatchesDense(t *testing.T) {
	a := convectionDiffusion1D(15, 3)
	b := randomRHS(15, 7)
	x := make([]float64, 15)
	if _, err := GMRES(a, b, x, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	xd, err := DenseSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xd[i]) > 1e-6*(1+math.Abs(xd[i])) {
			t.Fatalf("GMRES vs dense at %d: %g vs %g", i, x[i], xd[i])
		}
	}
}

func TestSolveGeneralFallsBackToGMRES(t *testing.T) {
	// A rotation-like skew system on which BiCGSTAB's rhat choice breaks
	// down immediately (A = [[0 1][-1 0]] with rhat = r gives rho != 0
	// but rhat.(A p) = 0 in the first step for suitable b).
	b := sparse.NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, -1)
	a := b.Build()
	rhs := []float64{1, 1}
	x := make([]float64, 2)
	if _, err := SolveGeneral(a, rhs, x, Options{Tol: 1e-12}); err != nil {
		t.Fatalf("SolveGeneral failed: %v", err)
	}
	if math.Abs(x[1]-1) > 1e-9 || math.Abs(x[0]+1) > 1e-9 {
		t.Fatalf("wrong solution %v, want [-1, 1]", x)
	}
}

func TestZeroRHSGivesZeroSolution(t *testing.T) {
	a := laplacian1D(10)
	for _, solve := range []func() ([]float64, error){
		func() ([]float64, error) {
			x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
			_, err := CG(a, make([]float64, 10), x, Options{})
			return x, err
		},
		func() ([]float64, error) {
			x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
			_, err := BiCGSTAB(a, make([]float64, 10), x, Options{})
			return x, err
		},
		func() ([]float64, error) {
			x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
			_, err := GMRES(a, make([]float64, 10), x, Options{})
			return x, err
		},
	} {
		x, err := solve()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range x {
			if v != 0 {
				t.Fatalf("zero RHS should give zero solution, got %v", x)
			}
		}
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// On a full-pattern small matrix ILU0 equals LU, so one
	// preconditioned Richardson application solves exactly.
	b := sparse.NewBuilder(3)
	vals := [3][3]float64{{4, 1, 0.5}, {1, 3, 1}, {0.5, 1, 5}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b.Add(i, j, vals[i][j])
		}
	}
	a := b.Build()
	f, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3}
	z := make([]float64, 3)
	f.Apply(z, rhs)
	if r := residual(a, rhs, z); r > 1e-12 {
		t.Fatalf("full-pattern ILU0 should solve exactly, residual %g", r)
	}
}

func TestDenseSolveSingular(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1)
	if _, err := DenseSolve(b.Build(), []float64{1, 2}); err == nil {
		t.Fatal("singular matrix should error")
	}
}

func TestDenseSolvePivoting(t *testing.T) {
	// Zero leading pivot requires row exchange.
	b := sparse.NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	x, err := DenseSolve(b.Build(), []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v, want [2 3]", x)
	}
}

func TestCGPropertyRandomSPD(t *testing.T) {
	// Property: CG solves A = L L^T + I for random sparse L.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		bld := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			bld.Add(i, i, 1+math.Abs(rng.NormFloat64()))
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				bld.AddSym(i, j, math.Abs(rng.NormFloat64())*0.1)
			}
		}
		a := bld.Build()
		rhs := randomRHS(n, seed+1)
		x := make([]float64, n)
		if _, err := CG(a, rhs, x, Options{Tol: 1e-11, MaxIter: 10 * n}); err != nil {
			return false
		}
		return residual(a, rhs, x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCGLaplacian2D(b *testing.B) {
	a := laplacian2D(50, 50)
	rhs := randomRHS(a.N, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := CG(a, rhs, x, Options{Tol: 1e-8, Precond: NewJacobi(a)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGILU0Laplacian2D(b *testing.B) {
	a := laplacian2D(50, 50)
	rhs := randomRHS(a.N, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pre, err := NewILU0(a)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, a.N)
		if _, err := CG(a, rhs, x, Options{Tol: 1e-8, Precond: pre}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiCGSTABConvection(b *testing.B) {
	a := convectionDiffusion1D(2000, 2)
	rhs := randomRHS(a.N, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := BiCGSTAB(a, rhs, x, Options{Tol: 1e-8, Precond: BestPrecond(a)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGMRESRestartLargerThanN(t *testing.T) {
	a := laplacian1D(8)
	b := randomRHS(8, 21)
	x := make([]float64, 8)
	if _, err := GMRES(a, b, x, Options{Tol: 1e-12, Restart: 100}); err != nil {
		t.Fatalf("restart > n should clamp: %v", err)
	}
	if r := residual(a, b, x); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestBiCGSTABMatchesCGOnSPD(t *testing.T) {
	a := laplacian2D(12, 12)
	b := randomRHS(a.N, 22)
	x1 := make([]float64, a.N)
	x2 := make([]float64, a.N)
	if _, err := CG(a, b, x1, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if _, err := BiCGSTAB(a, b, x2, Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x1[i])) {
			t.Fatalf("CG and BiCGSTAB disagree at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestILU0RequiresDiagonal(t *testing.T) {
	b := sparse.NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1) // no diagonal entries at all
	if _, err := NewILU0(b.Build()); err == nil {
		t.Fatal("missing diagonal should be rejected")
	}
}

func TestBestPrecondFallsBackToJacobi(t *testing.T) {
	// Missing diagonal breaks ILU0; BestPrecond must still return a
	// usable preconditioner.
	b := sparse.NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	p := BestPrecond(b.Build())
	if p == nil {
		t.Fatal("nil preconditioner")
	}
	z := make([]float64, 2)
	p.Apply(z, []float64{1, 2}) // must not panic
}

func TestCGDimensionMismatch(t *testing.T) {
	a := laplacian1D(4)
	if _, err := CG(a, make([]float64, 3), make([]float64, 4), Options{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := BiCGSTAB(a, make([]float64, 4), make([]float64, 3), Options{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := GMRES(a, make([]float64, 2), make([]float64, 4), Options{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestNotConvergedReported(t *testing.T) {
	a := laplacian2D(20, 20)
	b := randomRHS(a.N, 23)
	x := make([]float64, a.N)
	_, err := CG(a, b, x, Options{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Fatal("2 iterations cannot converge; expected ErrNotConverged")
	}
}
