package solver

import (
	"math"
	"testing"

	"lcn3d/internal/faults"
	"lcn3d/internal/sparse"
)

// buildAffineGrid assembles a 2D five-point grid operator as an affine
// pair: the static part is the Laplacian plus a Dirichlet anchor, the
// flow part is an upwind advection in +x (nonsymmetric, like the
// convection block of the thermal systems).
func buildAffineGrid(nx, ny int, advect float64) *sparse.AffinePair {
	n := nx * ny
	sb := sparse.NewBuilder(n)
	fb := sparse.NewBuilder(n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			sb.Add(i, i, 0.05) // anchor (ambient tie) keeps the system nonsingular
			if x+1 < nx {
				sb.AddSym(i, idx(x+1, y), 1)
				fb.Add(i, i, advect)
				fb.Add(idx(x+1, y), i, -advect)
			}
			if y+1 < ny {
				sb.AddSym(i, idx(x, y+1), 1)
			}
		}
	}
	pair, err := sparse.NewAffinePair(sb.Build(), fb.Build())
	if err != nil {
		panic(err)
	}
	return pair
}

// tileAgg aggregates an nx×ny grid into tiles of side m.
func tileAgg(nx, ny, m int) (agg []int, nc int) {
	cx := (nx + m - 1) / m
	cy := (ny + m - 1) / m
	agg = make([]int, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			agg[y*nx+x] = (y/m)*cx + x/m
		}
	}
	return agg, cx * cy
}

// TestTwoLevelGalerkin verifies the compiled coarse operator equals the
// explicitly computed R·A·P for piecewise-constant aggregation, at two
// different shifts.
func TestTwoLevelGalerkin(t *testing.T) {
	pair := buildAffineGrid(7, 5, 0.3)
	agg, nc := tileAgg(7, 5, 2)
	g, err := NewTwoLevel(pair, agg, nc, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0.7, 12.5} {
		pair.SetShift(s)
		if err := g.UpdateShift(s); err != nil {
			t.Fatal(err)
		}
		// Reference: dense R·A·P with P the 0/1 aggregation matrix.
		fine := pair.Matrix().Dense()
		want := make([][]float64, nc)
		for i := range want {
			want[i] = make([]float64, nc)
		}
		for i := 0; i < len(agg); i++ {
			for j := 0; j < len(agg); j++ {
				want[agg[i]][agg[j]] += fine[i][j]
			}
		}
		got := g.coarse.Dense()
		for i := 0; i < nc; i++ {
			for j := 0; j < nc; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-12*(1+math.Abs(want[i][j])) {
					t.Fatalf("s=%g: coarse[%d][%d] = %g, want %g", s, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestTwoLevelStationary checks the V-cycle works as a stationary
// iteration on the pure-diffusion problem: x += Apply(b - A·x) must
// contract the error.
func TestTwoLevelStationary(t *testing.T) {
	pair := buildAffineGrid(16, 16, 0)
	agg, nc := tileAgg(16, 16, 4)
	g, err := NewTwoLevel(pair, agg, nc, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := pair.Matrix()
	n := m.N
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	norm0 := RelResidual(m, b, x)
	for k := 0; k < 20; k++ {
		m.MulVec(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		g.Apply(z, r)
		for i := range x {
			x[i] += z[i]
		}
	}
	if rel := RelResidual(m, b, x); rel > 1e-8*norm0 {
		t.Fatalf("V-cycle iteration stalled: rel residual %g after 20 cycles", rel)
	}
}

// TestTwoLevelPreconditionsBiCGSTAB compares iteration counts with the
// ILU(0) baseline on the advective problem across shifts, and checks the
// solutions agree with a dense solve.
func TestTwoLevelPreconditionsBiCGSTAB(t *testing.T) {
	pair := buildAffineGrid(20, 20, 0.25)
	agg, nc := tileAgg(20, 20, 4)
	g, err := NewTwoLevel(pair, agg, nc, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := pair.Matrix()
	n := m.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	for _, s := range []float64{0.1, 2, 40} {
		pair.SetShift(s)
		if err := g.UpdateShift(s); err != nil {
			t.Fatal(err)
		}
		want, err := DenseSolve(m, b)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		res, err := BiCGSTAB(m, b, x, Options{Tol: 1e-10, MaxIter: 400, Precond: g})
		if err != nil {
			t.Fatalf("s=%g: MG-BiCGSTAB: %v (%d iters, res %g)", s, err, res.Iterations, res.Residual)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("s=%g: x[%d] = %g, want %g", s, i, x[i], want[i])
			}
		}
		xI := make([]float64, n)
		resI, err := BiCGSTAB(m, b, xI, Options{Tol: 1e-10, MaxIter: 4000, Precond: BestPrecond(m)})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("s=%g: MG %d iters, ILU0 %d iters", s, res.Iterations, resI.Iterations)
		if res.Iterations > 3*resI.Iterations {
			t.Fatalf("s=%g: MG took %d iters vs ILU0 %d", s, res.Iterations, resI.Iterations)
		}
	}
}

// BenchmarkMGPrecondVcycle times one V-cycle Apply against one ILU(0)
// Apply on advective grids sized like the 4RM systems at bench scales 21
// (~3.1k unknowns) and 51 (~18k unknowns). A V-cycle costs several ILU
// applications (two pre- and two post-smoothing sweeps, a fine SpMV, and
// a coarse solve); the win shown in BENCH_<date>.json comes from the
// 3-5× iteration reduction it buys, so this benchmark pins the per-cycle
// overhead side of that tradeoff.
func BenchmarkMGPrecondVcycle(b *testing.B) {
	for _, sc := range []struct {
		name   string
		nx, ny int
	}{
		{"scale21", 56, 56},   // 3136 ≈ scale-21 4RM (3087 unknowns)
		{"scale51", 135, 135}, // 18225 ≈ scale-51 4RM (18207 unknowns)
	} {
		pair := buildAffineGrid(sc.nx, sc.ny, 0.25)
		agg, nc := tileAgg(sc.nx, sc.ny, 4)
		pair.SetShift(2)
		g, err := NewTwoLevel(pair, agg, nc, MGOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.UpdateShift(2); err != nil {
			b.Fatal(err)
		}
		n := pair.Matrix().N
		r := make([]float64, n)
		for i := range r {
			r[i] = 1 + float64(i%5)
		}
		z := make([]float64, n)
		b.Run(sc.name+"/vcycle", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Apply(z, r)
			}
		})
		ilu := BestPrecond(pair.Matrix())
		b.Run(sc.name+"/ilu0", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ilu.Apply(z, r)
			}
		})
	}
}

// TestTwoLevelFaultPoints verifies each named V-cycle fault poisons the
// output, which the outer Krylov solves surface as breakdown.
func TestTwoLevelFaultPoints(t *testing.T) {
	pair := buildAffineGrid(8, 8, 0.2)
	agg, nc := tileAgg(8, 8, 2)
	for _, pt := range []faults.Point{faults.MGSmoother, faults.MGRestrict, faults.MGCoarse} {
		g, err := NewTwoLevel(pair, agg, nc, MGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := faults.Arm(string(pt) + "=always"); err != nil {
			t.Fatal(err)
		}
		n := pair.Matrix().N
		r := make([]float64, n)
		for i := range r {
			r[i] = 1
		}
		z := make([]float64, n)
		g.Apply(z, r)
		faults.Disarm()
		poisoned := false
		for _, v := range z {
			if math.IsNaN(v) {
				poisoned = true
				break
			}
		}
		if !poisoned {
			t.Fatalf("%s: output not poisoned", pt)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		if err := faults.Arm(string(pt) + "=always"); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		_, err = BiCGSTAB(pair.Matrix(), b, x, Options{Tol: 1e-10, MaxIter: 100, Precond: g})
		faults.Disarm()
		if err == nil {
			t.Fatalf("%s: BiCGSTAB did not fail under the armed fault", pt)
		}
	}
}
