package solver

import (
	"errors"
	"math"
	"testing"

	"lcn3d/internal/faults"
	"lcn3d/internal/sparse"
)

// nanSystem builds a 4x4 system whose matrix carries a NaN entry, so any
// matrix-vector product poisons the iteration vectors.
func nanSystem() (*sparse.CSR, []float64) {
	b := sparse.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 2)
	}
	b.Add(0, 1, math.NaN())
	rhs := []float64{1, 1, 1, 1}
	return b.Build(), rhs
}

// indefiniteSystem is a symmetric indefinite 2x2 system ([[0,1],[1,0]])
// on which CG's p·Ap inner product vanishes immediately.
func indefiniteSystem() (*sparse.CSR, []float64) {
	b := sparse.NewBuilder(2)
	b.AddSym(0, 1, 1)
	return b.Build(), []float64{1, 0}
}

// TestNaNGuardsStopEarly: numerical breakdown must surface as
// ErrBreakdown within the first iterations, not after burning the whole
// iteration budget on poisoned vectors.
func TestNaNGuardsStopEarly(t *testing.T) {
	a, b := nanSystem()
	solves := map[string]func(x []float64) (Result, error){
		"CG":       func(x []float64) (Result, error) { return CG(a, b, x, Options{}) },
		"BiCGSTAB": func(x []float64) (Result, error) { return BiCGSTAB(a, b, x, Options{}) },
		"GMRES":    func(x []float64) (Result, error) { return GMRES(a, b, x, Options{}) },
	}
	for name, solve := range solves {
		res, err := solve(make([]float64, 4))
		if !errors.Is(err, ErrBreakdown) {
			t.Errorf("%s on NaN system: err = %v, want ErrBreakdown", name, err)
		}
		if res.Iterations > 2 {
			t.Errorf("%s on NaN system: %d iterations, want breakdown within 2", name, res.Iterations)
		}
	}
}

func TestCGIndefiniteBreakdown(t *testing.T) {
	a, b := indefiniteSystem()
	res, err := CG(a, b, make([]float64, 2), Options{})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	if res.Iterations > 2 {
		t.Fatalf("%d iterations, want immediate breakdown", res.Iterations)
	}
}

// TestInfRHSBreakdown: a right-hand side carrying Inf must not loop to
// the budget either.
func TestInfRHSBreakdown(t *testing.T) {
	bld := sparse.NewBuilder(3)
	for i := 0; i < 3; i++ {
		bld.Add(i, i, 1)
	}
	a := bld.Build()
	b := []float64{1, math.Inf(1), 1}
	res, err := CG(a, b, make([]float64, 3), Options{})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	if res.Iterations > 2 {
		t.Fatalf("%d iterations, want immediate breakdown", res.Iterations)
	}
}

// TestHealthySystemsStillConverge guards against the finiteness checks
// rejecting legitimate solves.
func TestHealthySystemsStillConverge(t *testing.T) {
	bld := sparse.NewBuilder(10)
	for i := 0; i < 10; i++ {
		bld.Add(i, i, 4)
		if i+1 < 10 {
			bld.AddSym(i, i+1, -1)
		}
	}
	a := bld.Build()
	b := make([]float64, 10)
	for i := range b {
		b[i] = float64(i + 1)
	}
	for name, solve := range map[string]func(x []float64) (Result, error){
		"CG":       func(x []float64) (Result, error) { return CG(a, b, x, Options{}) },
		"BiCGSTAB": func(x []float64) (Result, error) { return BiCGSTAB(a, b, x, Options{}) },
		"GMRES":    func(x []float64) (Result, error) { return GMRES(a, b, x, Options{}) },
	} {
		x := make([]float64, 10)
		res, err := solve(x)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if res.Residual > 1e-8 {
			t.Errorf("%s: residual %g", name, res.Residual)
		}
	}
}

// TestInjectionPoints: armed fault points force the corresponding error
// before any work happens, and disarmed points cost nothing.
func TestInjectionPoints(t *testing.T) {
	bld := sparse.NewBuilder(2)
	bld.Add(0, 0, 1)
	bld.Add(1, 1, 1)
	a := bld.Build()
	b := []float64{1, 2}

	cases := []struct {
		spec string
		run  func() error
		want error
	}{
		{"solver.cg.breakdown=always", func() error { _, err := CG(a, b, make([]float64, 2), Options{}); return err }, ErrBreakdown},
		{"solver.bicgstab.breakdown=always", func() error { _, err := BiCGSTAB(a, b, make([]float64, 2), Options{}); return err }, ErrBreakdown},
		{"solver.gmres.breakdown=always", func() error { _, err := GMRES(a, b, make([]float64, 2), Options{}); return err }, ErrBreakdown},
		{"solver.notconverged=always", func() error { _, err := CG(a, b, make([]float64, 2), Options{}); return err }, ErrNotConverged},
	}
	for _, c := range cases {
		if err := faults.Arm(c.spec); err != nil {
			t.Fatal(err)
		}
		if err := c.run(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.spec, err, c.want)
		}
		faults.Disarm()
		if err := c.run(); err != nil {
			t.Errorf("%s disarmed: unexpected err %v", c.spec, err)
		}
	}
}

func TestRelResidual(t *testing.T) {
	bld := sparse.NewBuilder(2)
	bld.Add(0, 0, 2)
	bld.Add(1, 1, 4)
	a := bld.Build()
	b := []float64{2, 4}
	if r := RelResidual(a, b, []float64{1, 1}); r != 0 {
		t.Fatalf("exact solution residual = %g, want 0", r)
	}
	if r := RelResidual(a, b, []float64{0, 0}); math.Abs(r-1) > 1e-15 {
		t.Fatalf("zero guess residual = %g, want 1", r)
	}
}
