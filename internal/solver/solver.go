// Package solver provides the iterative linear solvers and preconditioners
// used for the fluidic (SPD) and thermal (nonsymmetric) systems:
// preconditioned conjugate gradients, BiCGSTAB, restarted GMRES, and a
// dense LU factorization for tiny systems and cross-checks.
//
// It plays the role the Eigen library plays in the paper's C++
// implementation, built on the standard library only.
package solver

import (
	"errors"
	"fmt"
	"math"

	"lcn3d/internal/faults"
	"lcn3d/internal/sparse"
)

// ErrNotConverged is returned when an iterative method exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("solver: not converged")

// ErrBreakdown is returned when an iterative method encounters a zero
// inner product that prevents further progress.
var ErrBreakdown = errors.New("solver: numerical breakdown")

// Options configures an iterative solve.
type Options struct {
	Tol     float64 // relative residual target ||b-Ax|| / ||b||; default 1e-9
	MaxIter int     // iteration budget; default 4*n
	Precond Preconditioner
	// Restart is the GMRES restart length; default 50.
	Restart int
}

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4 * n
		if o.MaxIter < 200 {
			o.MaxIter = 200
		}
	}
	if o.Precond == nil {
		o.Precond = Identity{}
	}
	if o.Restart <= 0 {
		o.Restart = 50
	}
	return o
}

// Result reports how a solve went.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual
}

// Preconditioner applies z = M^{-1} r.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner.
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi preconditions with the inverse diagonal.
type Jacobi struct{ invDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
// Zero diagonal entries are treated as 1 to stay defined.
func NewJacobi(m *sparse.CSR) *Jacobi {
	d := m.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &Jacobi{invDiag: inv}
}

// Apply sets z = D^{-1} r.
func (j *Jacobi) Apply(z, r []float64) {
	for i := range r {
		z[i] = r[i] * j.invDiag[i]
	}
}

// notFinite reports a NaN or ±Inf scalar. Iterative methods test their
// residuals and pivotal inner products with it so numerical breakdown
// surfaces as ErrBreakdown at the iteration it occurs, instead of
// iterating on poisoned vectors to the end of the budget.
func notFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CG solves the symmetric positive definite system A x = b with
// preconditioned conjugate gradients. x is used as the initial guess and
// holds the solution on return.
func CG(a *sparse.CSR, b, x []float64, opt Options) (Result, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: CG dimension mismatch: n=%d, |b|=%d, |x|=%d", n, len(b), len(x))
	}
	if faults.Fire(faults.CGBreakdown) {
		return Result{}, ErrBreakdown
	}
	if faults.Fire(faults.NotConverged) {
		return Result{Residual: math.Inf(1)}, ErrNotConverged
	}
	opt = opt.withDefaults(n)

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVecAuto(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Iterations: 0, Residual: 0}, nil
	}
	res := norm2(r) / bnorm
	if res <= opt.Tol {
		return Result{Iterations: 0, Residual: res}, nil
	}

	opt.Precond.Apply(z, r)
	copy(p, z)
	rz := dot(r, z)

	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVecAuto(ap, p)
		pap := dot(p, ap)
		if pap == 0 || notFinite(pap) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		res = norm2(r) / bnorm
		if notFinite(res) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		if res <= opt.Tol {
			return Result{Iterations: it, Residual: res}, nil
		}
		opt.Precond.Apply(z, r)
		rzNew := dot(r, z)
		if rz == 0 || notFinite(rzNew) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Result{Iterations: opt.MaxIter, Residual: res}, ErrNotConverged
}

// BiCGSTAB solves the general system A x = b with the stabilized
// bi-conjugate gradient method. x is the initial guess and result.
func BiCGSTAB(a *sparse.CSR, b, x []float64, opt Options) (Result, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("solver: BiCGSTAB dimension mismatch: n=%d, |b|=%d, |x|=%d", n, len(b), len(x))
	}
	if faults.Fire(faults.BiCGBreakdown) {
		return Result{}, ErrBreakdown
	}
	if faults.Fire(faults.NotConverged) {
		return Result{Residual: math.Inf(1)}, ErrNotConverged
	}
	opt = opt.withDefaults(n)

	r := make([]float64, n)
	rhat := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	tv := make([]float64, n)

	a.MulVecAuto(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{}, nil
	}
	res := norm2(r) / bnorm
	if res <= opt.Tol {
		return Result{Iterations: 0, Residual: res}, nil
	}
	copy(rhat, r)

	var rhoOld, alpha, omega float64 = 1, 1, 1
	for it := 1; it <= opt.MaxIter; it++ {
		rho := dot(rhat, r)
		if rho == 0 || notFinite(rho) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rho / rhoOld) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		opt.Precond.Apply(phat, p)
		a.MulVecAuto(v, phat)
		den := dot(rhat, v)
		if den == 0 || notFinite(den) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sr := norm2(s) / bnorm; sr <= opt.Tol {
			axpy(alpha, phat, x)
			return Result{Iterations: it, Residual: sr}, nil
		}
		opt.Precond.Apply(shat, s)
		a.MulVecAuto(tv, shat)
		tt := dot(tv, tv)
		if tt == 0 || notFinite(tt) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		omega = dot(tv, s) / tt
		if omega == 0 || notFinite(omega) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*tv[i]
		}
		res = norm2(r) / bnorm
		if notFinite(res) {
			return Result{Iterations: it, Residual: res}, ErrBreakdown
		}
		if res <= opt.Tol {
			return Result{Iterations: it, Residual: res}, nil
		}
		rhoOld = rho
	}
	return Result{Iterations: opt.MaxIter, Residual: res}, ErrNotConverged
}
