package thermal

import (
	"math"
	"math/rand"
	"runtime"

	"lcn3d/internal/sparse"
	"testing"
)

// scrambledFactored assembles the race-test pipe with its node labels
// scrambled by a fixed random relabeling. The scrambled band is wide, so
// RCM (when enabled) accepts the renumbering; the physics is identical
// to the in-order pipe.
func scrambledFactored(tb testing.TB, n int) *Factored {
	tb.Helper()
	label := rand.New(rand.NewSource(42)).Perm(n)
	a := NewAssembler(n, Central)
	a.ConvectionInlet(label[0], 0.5, 300)
	for i := 0; i+1 < n; i++ {
		a.Convection(label[i], label[i+1], 0.5)
		a.Conductance(label[i], label[i+1], 0.05)
	}
	a.ConvectionOutlet(label[n-1], 0.5)
	for i := 0; i < n; i++ {
		a.Source(label[i], 1.0)
	}
	return a.Factor()
}

// TestRenumberedSolveBitwiseDeterministic factors a system large enough
// for both the RCM renumbering and the parallel SpMV path, and checks
// the solved field is bitwise identical across SpMV worker counts and
// GOMAXPROCS settings. Run under -race (CI does) this also proves the
// renumbered parallel solve has no data races. The sliced-row kernel
// writes each row from exactly one worker with one summation order, so
// the whole Krylov trajectory — and therefore the solution — must not
// depend on scheduling.
func TestRenumberedSolveBitwiseDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a >20k-unknown system several times")
	}
	const scale = 2.0
	n := 21000 // above sparse.parallelThreshold and rcmMinSize
	SetRenumbering(true)
	t.Cleanup(func() { SetRenumbering(false) })

	solve := func() []float64 {
		f := scrambledFactored(t, n)
		if !f.Renumbered() {
			t.Fatal("scrambled system was not renumbered")
		}
		temps, _, _, err := f.SolveAt(scale, 300)
		if err != nil {
			t.Fatal(err)
		}
		return temps
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ref := solve()
	for _, cfg := range []struct {
		procs, workers int
	}{
		{0, 1}, {0, 2}, {0, 3}, {2, 0}, {4, 7},
	} {
		if cfg.procs > 0 {
			runtime.GOMAXPROCS(cfg.procs)
		}
		sparse.SetSpMVWorkers(cfg.workers)
		got := solve()
		sparse.SetSpMVWorkers(0)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("procs=%d workers=%d: node %d differs: %v vs %v",
					cfg.procs, cfg.workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRenumberedMatchesPlainSolve checks the renumbered solve agrees
// physically with the same assembly solved in its original ordering (the
// orderings take different Krylov paths, so agreement is to solver
// tolerance, not bitwise).
func TestRenumberedMatchesPlainSolve(t *testing.T) {
	const n, scale = 1100, 2.0 // above rcmMinSize, below the parallel threshold
	SetRenumbering(false)
	plainF := scrambledFactored(t, n)
	plain, _, _, err := plainF.SolveAt(scale, 300)
	if err != nil {
		t.Fatal(err)
	}
	if plainF.Renumbered() {
		t.Fatal("renumbering applied while disabled")
	}

	SetRenumbering(true)
	t.Cleanup(func() { SetRenumbering(false) })
	renF := scrambledFactored(t, n)
	ren, _, _, err := renF.SolveAt(scale, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !renF.Renumbered() {
		t.Fatal("renumbering not applied while enabled")
	}
	var mx float64
	for i := range plain {
		if d := math.Abs(plain[i] - ren[i]); d > mx {
			mx = d
		}
	}
	if mx > 1e-4 {
		t.Fatalf("renumbered field deviates by %g K from plain ordering", mx)
	}
}
