package thermal

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
)

// Factored is a thermal system compiled for repeated solves of the same
// network at many flow scales: A(s) = S + s·F, b(s) = b_S + s·b_F, where
// S holds the pressure-independent conduction block and F the convection
// block recorded at a reference flow (the rm2/rm4 models record at
// P_sys = 1 Pa, so s is the system pressure in Pa). Per probe it rewrites
// the matrix values in place (no pattern work, no allocation), warm-starts
// the iterative solve from the cached field of the nearest previously
// solved scale, and reuses the preconditioner across nearby scales,
// refreshing it when iteration counts regress.
//
// SolveAt is safe for concurrent use; solves on one Factored serialize.
type Factored struct {
	mu        sync.Mutex
	pair      *sparse.AffinePair
	staticRHS []float64
	flowRHS   []float64
	rhs       []float64 // scratch, rewritten per probe
	scheme    Scheme

	// perm/iperm describe the bandwidth-reducing (RCM) renumbering large
	// systems are solved in: internal index p = perm[model index]. Nil
	// when the assembly order was kept. All internal state (pair, RHS,
	// warm fields, agg) lives in the internal ordering; SolveAt and
	// SystemAt translate at the boundary.
	perm, iperm []int

	// agg/nAgg is the multigrid aggregation (already renumbered), nil
	// when the assembler provided no coarse map.
	agg  []int
	nAgg int

	warm []warmField // most recent last

	pre      solver.Preconditioner
	preScale float64 // scale the preconditioner was factorized at
	preIters int     // iterations right after the last precond build; -1 = unset

	// mg is the two-level multigrid hierarchy, built once per Factored on
	// first eligible use and refreshed per scale in O(nnz_coarse). An
	// atomic pointer so Stats can snapshot the per-level counters without
	// taking f.mu. usingMG marks whether f.pre currently routes through
	// it; mgDisabled latches after a multigrid failure so one MG-hostile
	// system does not ping-pong between rungs on every probe.
	mg         atomic.Pointer[solver.TwoLevel]
	usingMG    bool
	mgDisabled bool

	tol float64 // solve tolerance; defaultSolveTol when zero

	// Stats counters are atomics so Stats() can snapshot them without
	// taking f.mu: a metrics scrape must not block behind (or race with)
	// a solve that is in flight.
	ctrProbes         atomic.Int64
	ctrWarmStarts     atomic.Int64
	ctrPrecondBuilds  atomic.Int64
	ctrPrecondUpdates atomic.Int64
	ctrSolveIters     atomic.Int64
	ctrAssemblyNS     atomic.Int64

	// Escalation-ladder counters: probes that reached each fallback rung
	// and probes whose result came from a degraded rung (see solver.Rung).
	ctrRetryRebuild atomic.Int64
	ctrRetryGMRES   atomic.Int64
	ctrRetryDense   atomic.Int64
	ctrDegraded     atomic.Int64

	// ctrMGLatchOffs counts multigrid latch-offs: V-cycle failures (or a
	// hierarchy that cannot be built) that permanently routed this
	// Factored back to the classic ILU(0) path.
	ctrMGLatchOffs atomic.Int64
}

// defaultSolveTol is the relative residual the steady solves converge to.
const defaultSolveTol = 1e-10

// SetTol overrides the linear-solve tolerance (0 restores the default).
// Tightening it makes independently seeded solves agree more closely, at
// the cost of extra iterations per probe.
func (f *Factored) SetTol(tol float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tol = tol
}

// warmField is one cached solution used to seed later solves.
type warmField struct {
	scale float64
	t     []float64
}

// maxWarmFields bounds the solution cache; the pressure searches of
// Algorithms 2/3 probe a few dozen distinct pressures per network, and
// only the nearest neighbors matter.
const maxWarmFields = 16

// precondRegressionFactor triggers a preconditioner rebuild when a solve
// needs more than this multiple of the post-build iteration count (plus a
// small absolute slack for noise on tiny systems).
const (
	precondRegressionFactor = 2
	precondRegressionSlack  = 16
)

// precondMaxDrift is the largest |log(s/s_build)| at which the cached
// preconditioner is still used. The refinement phases of the pressure
// searches (bisection, golden section) probe within a factor ~1.5 of the
// previous probe and reuse it; the decade-spanning doubling sweeps
// (e.g. MinPressureForTmax climbing from P_min) refactorize, because an
// ILU built where convection dominates is nearly useless where
// conduction dominates — iteration counts explode long before the
// regression heuristic can react.
const precondMaxDrift = 0.5

// PrecondStrategy selects how factored systems precondition the primary
// BiCGSTAB rung.
type PrecondStrategy int32

// Preconditioning strategies.
const (
	// PrecondAuto (the default) uses two-level multigrid when the model
	// supplied a coarse map and the system is large enough to benefit,
	// ILU(0) otherwise.
	PrecondAuto PrecondStrategy = iota
	// PrecondILU forces the ILU(0) path (benchmark/ablation baseline).
	PrecondILU
	// PrecondMG forces multigrid whenever a coarse map exists, ignoring
	// the size thresholds (used by equivalence tests on small fixtures).
	PrecondMG
)

func (s PrecondStrategy) String() string {
	switch s {
	case PrecondILU:
		return "ilu0"
	case PrecondMG:
		return "multigrid"
	}
	return "auto"
}

// precondStrategy is process-global so benches and ablations can flip
// the whole evaluation stack without threading options through every
// model constructor.
var precondStrategy atomic.Int32

// SetPrecondStrategy switches the preconditioning strategy for
// subsequently created probes (existing multigrid hierarchies persist,
// but PrecondILU stops routing solves through them).
func SetPrecondStrategy(s PrecondStrategy) { precondStrategy.Store(int32(s)) }

// GetPrecondStrategy returns the active strategy.
func GetPrecondStrategy() PrecondStrategy { return PrecondStrategy(precondStrategy.Load()) }

// Multigrid eligibility under PrecondAuto: below mgMinSize an
// ILU(0)-BiCGSTAB solve is already a few hundred microseconds and the
// V-cycle overhead is not worth it; below mgMinCoarse (or above half the
// fine size) the coarse grid cannot represent the smooth error modes.
// Between the extremes, multigrid must also pay for its cycle cost:
// either the coarse solve is a direct dense LU (nAgg within
// solver.DenseCoarseMax, so a V-cycle is essentially four smoothing
// steps), or the fine system is at least mgLargeSize unknowns, where
// the 3-5× iteration reduction beats the extra per-cycle work. Mid-size
// systems with an iterative coarse solve lose wall-clock to plain
// ILU(0) even at fewer iterations, so PrecondAuto leaves them alone.
const (
	mgMinSize   = 256
	mgMinCoarse = 8
	mgLargeSize = 8192
)

// mgMaxIter caps the BiCGSTAB iteration budget while multigrid is
// active: each preconditioned iteration costs two smoothing sweeps, a
// fine SpMV, and a coarse solve, so a solve that has not converged in a
// few hundred iterations should escalate to the ILU rung instead of
// burning the 40·N budget.
const mgMaxIter = 500

// rcmMinSize gates the bandwidth-reducing renumbering when it is
// enabled: below it, systems fit in cache in any ordering.
const rcmMinSize = 1024

// renumberEnabled controls whether Factor applies RCM renumbering to
// large systems. Off by default: on the rm4/rm2 stacks RCM narrows the
// band 3-5×, but ILU(0) dropped-fill quality tracks the physical
// layer-major ordering, not the bandwidth — measured on the scale-21
// 4RM system, RCM raised cold-solve iteration counts from 23.5 to 40.5
// per probe and wall time by half despite the narrower band, and it
// slowed the multigrid smoother the same way at scale 51. The machinery
// stays available (and tested) for workloads where locality wins, e.g.
// out-of-cache SpMV-dominated sweeps.
var renumberEnabled atomic.Bool

// SetRenumbering enables or disables RCM renumbering of subsequently
// factored large systems (see renumberEnabled for why it is off by
// default).
func SetRenumbering(on bool) { renumberEnabled.Store(on) }

// GetRenumbering reports whether RCM renumbering is enabled.
func GetRenumbering() bool { return renumberEnabled.Load() }

// FactorStats accumulates amortization counters across the lifetime of a
// factored system.
type FactorStats struct {
	Probes        int // SolveAt calls
	WarmStarts    int // solves seeded from a cached temperature field
	PrecondBuilds int // preconditioner constructions (pattern + factorization)
	// PrecondUpdates counts cheap per-scale refreshes of an existing
	// multigrid hierarchy (O(nnz_coarse) value rewrite + coarse refactor)
	// — the probes that previously forced a full ILU rebuild.
	PrecondUpdates int
	SolveIters     int   // total linear-solver iterations
	AssemblyNS     int64 // cumulative nanoseconds spent rewriting values

	// MG holds the per-level multigrid counters (zero-valued while the
	// multigrid path is off).
	MG solver.MGStats

	// Escalation-ladder counters (see solver.Rung): probes that climbed
	// to the rebuilt-preconditioner retry, the GMRES rung, and the dense
	// fallback, plus probes whose result came from a degraded rung.
	RetryRebuild int
	RetryGMRES   int
	RetryDense   int
	Degraded     int

	// MGLatchOffs counts multigrid latch-offs: failures that permanently
	// routed this system back to the classic ILU(0) path (see mgDisabled).
	MGLatchOffs int
}

// WarmStartRate reports the fraction of probes that were warm-started.
func (s FactorStats) WarmStartRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(s.Probes)
}

// ProbeStats describes what one SolveAt call did.
type ProbeStats struct {
	AssemblyNS    int64 // time spent rewriting matrix/RHS values
	WarmStarted   bool  // initial guess came from a cached field
	PrecondBuilds int   // preconditioner builds this probe triggered
	// Rung is the highest escalation-ladder rung this probe climbed to;
	// Degraded marks results produced by a fallback method (GMRES or
	// dense LU) rather than the normal BiCGSTAB path.
	Rung     solver.Rung
	Degraded bool
}

// Factor compiles the assembler into a reusable factored system. The
// assembler's recorded values are copied; it can be discarded afterwards.
func (a *Assembler) Factor() *Factored {
	s := a.static.Build()
	fl := a.flow.Build()
	n := a.N()
	staticRHS := append([]float64(nil), a.rhs...)
	flowRHS := append([]float64(nil), a.flowRHS...)
	agg := append([]int(nil), a.agg...)

	// Bandwidth-reducing renumbering for large systems: RCM on the union
	// pattern, kept only when it actually narrows the band (the
	// layer-major assembly order is already banded; RCM typically cuts
	// the band to the smallest grid cross-section, which tightens the
	// ILU triangular solves and the blocked SpMV working set).
	var perm, iperm []int
	var pair *sparse.AffinePair
	if renumberEnabled.Load() && n >= rcmMinSize {
		probe, err := sparse.NewAffinePair(s, fl)
		if err != nil {
			panic(err) // both builders share the assembler's dimension; unreachable
		}
		union := probe.Matrix()
		p := sparse.RCM(union)
		if sparse.PermutedBandwidth(union, p) < sparse.Bandwidth(union) {
			perm, iperm = p, sparse.InversePerm(p)
			s = sparse.PermuteCSR(s, p)
			fl = sparse.PermuteCSR(fl, p)
			v := make([]float64, n)
			sparse.PermuteVec(v, staticRHS, p)
			staticRHS, v = v, make([]float64, n)
			sparse.PermuteVec(v, flowRHS, p)
			flowRHS = v
			if agg != nil {
				pa := make([]int, n)
				sparse.PermuteInts(pa, agg, p)
				agg = pa
			}
		} else {
			pair = probe // renumbering rejected: the probe pair is the pair
		}
	}
	if pair == nil {
		var err error
		pair, err = sparse.NewAffinePair(s, fl)
		if err != nil {
			panic(err) // both builders share the assembler's dimension; unreachable
		}
	}
	f := &Factored{
		pair:      pair,
		perm:      perm,
		iperm:     iperm,
		agg:       agg,
		nAgg:      a.nAgg,
		staticRHS: staticRHS,
		flowRHS:   flowRHS,
		rhs:       make([]float64, n),
		scheme:    a.scheme,
		preIters:  -1,
	}
	return f
}

// N returns the system size.
func (f *Factored) N() int { return len(f.rhs) }

// Stats snapshots the cumulative amortization counters. It never blocks
// on the solve lock, so it is safe (and cheap) to call from a metrics
// scraper while a solve is in flight; counters touched by that solve land
// in the next snapshot. The counters are loaded independently, so the
// snapshot is not atomic across fields; loading WarmStarts before Probes
// keeps the WarmStarts <= Probes invariant (each solve increments Probes
// before it can count a warm start).
func (f *Factored) Stats() FactorStats {
	warm := f.ctrWarmStarts.Load()
	st := FactorStats{
		Probes:         int(f.ctrProbes.Load()),
		WarmStarts:     int(warm),
		PrecondBuilds:  int(f.ctrPrecondBuilds.Load()),
		PrecondUpdates: int(f.ctrPrecondUpdates.Load()),
		SolveIters:     int(f.ctrSolveIters.Load()),
		AssemblyNS:     f.ctrAssemblyNS.Load(),
		RetryRebuild:   int(f.ctrRetryRebuild.Load()),
		RetryGMRES:     int(f.ctrRetryGMRES.Load()),
		RetryDense:     int(f.ctrRetryDense.Load()),
		Degraded:       int(f.ctrDegraded.Load()),
		MGLatchOffs:    int(f.ctrMGLatchOffs.Load()),
	}
	if mg := f.mg.Load(); mg != nil {
		st.MG = mg.Stats()
	}
	return st
}

// Multigrid reports the two-level hierarchy, nil while unbuilt (no
// coarse map, ineligible size, or no probe has run yet).
func (f *Factored) Multigrid() *solver.TwoLevel { return f.mg.Load() }

// Renumbered reports whether the system is solved in a bandwidth-reduced
// (RCM) internal ordering.
func (f *Factored) Renumbered() bool { return f.perm != nil }

// NNZ returns the stored entries of the union pattern.
func (f *Factored) NNZ() int { return f.pair.Matrix().NNZ() }

// reassemble rewrites the in-place matrix and RHS to scale s and returns
// the nanoseconds spent.
func (f *Factored) reassemble(s float64) int64 {
	t0 := time.Now()
	f.pair.SetShift(s)
	for i := range f.rhs {
		f.rhs[i] = f.staticRHS[i] + s*f.flowRHS[i]
	}
	return time.Since(t0).Nanoseconds()
}

// SystemAt materializes an independent copy of the system at scale s, for
// callers that retain the matrices (transient stepping, inspection). The
// copy is always in the caller's (assembly) ordering — the internal RCM
// renumbering, if any, is undone.
func (f *Factored) SystemAt(s float64) (*sparse.CSR, []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rhs := make([]float64, len(f.rhs))
	for i := range rhs {
		rhs[i] = f.staticRHS[i] + s*f.flowRHS[i]
	}
	mat := f.pair.MatrixCopy(s)
	if f.perm != nil {
		mat = sparse.PermuteCSR(mat, f.iperm)
		out := make([]float64, len(rhs))
		sparse.PermuteVec(out, rhs, f.iperm)
		rhs = out
	}
	return mat, rhs
}

// SolveAt solves A(s)·T = b(s), seeding the iteration from the cached
// field of the nearest previously solved scale (falling back to a uniform
// tGuess). The returned slice is owned by the caller.
//
// On solver failure (breakdown, non-convergence, or a non-finite
// temperature field) it climbs the escalation ladder (see solver.Rung):
// BiCGSTAB with the current preconditioner, then a rebuilt-preconditioner
// cold retry, then GMRES, then — for systems up to
// solver.DenseFallbackMax — dense LU. The rung that produced the result
// is reported in ProbeStats; results from the GMRES or dense rungs are
// marked Degraded.
func (f *Factored) SolveAt(s, tGuess float64) ([]float64, solver.Result, ProbeStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	var probe ProbeStats
	probe.AssemblyNS = f.reassemble(s)
	f.ctrProbes.Add(1)
	f.ctrAssemblyNS.Add(probe.AssemblyNS)
	mat := f.pair.Matrix()

	if faults.Fire(faults.ThermalSlow) {
		time.Sleep(faults.Delay())
	}

	t := make([]float64, f.N())
	if w := f.nearestWarm(s); w != nil {
		copy(t, w.t)
		probe.WarmStarted = true
		f.ctrWarmStarts.Add(1)
	} else {
		for i := range t {
			t[i] = tGuess
		}
	}

	builds0 := f.ctrPrecondBuilds.Load()
	freshPre := false
	mgActive := f.routePrecond(s)
	if !mgActive {
		// ILU path: a factorization built at a distant scale is reused
		// within the drift window and rebuilt beyond it.
		if f.pre == nil || f.usingMG || scaleDistance(s, f.preScale) > precondMaxDrift {
			f.buildPrecond(mat, s)
			freshPre = true
		}
	}
	f.usingMG = mgActive
	tol := f.tol
	if tol <= 0 {
		tol = defaultSolveTol
	}
	maxIter := 40 * f.N()
	if mgActive && maxIter > mgMaxIter {
		maxIter = mgMaxIter
	}
	opt := solver.Options{
		Tol: tol, MaxIter: maxIter, Precond: f.pre, Restart: 80,
	}
	coldStart := func() {
		for i := range t {
			t[i] = tGuess
		}
	}
	res, rung, err := f.escalate(mat, f.rhs, t, s, opt, freshPre, mgActive, coldStart)
	f.ctrSolveIters.Add(int64(res.Iterations))
	probe.PrecondBuilds = int(f.ctrPrecondBuilds.Load() - builds0)
	probe.Rung = rung
	if err != nil {
		return nil, res, probe, fmt.Errorf("thermal: steady solve failed at rung %v: %w (res %.3g)", rung, err, res.Residual)
	}
	if probe.Degraded = rung.Degraded(); probe.Degraded {
		f.ctrDegraded.Add(1)
	}

	// Track preconditioner quality: remember the iteration count of the
	// first solve that really exercised it (a warm start converging in 0
	// iterations says nothing), and schedule a refresh once solves regress
	// past the threshold (the next probe then factorizes the current
	// matrix).
	if f.preIters < 0 {
		if res.Iterations > 0 {
			f.preIters = res.Iterations
		}
	} else if res.Iterations > precondRegressionFactor*f.preIters+precondRegressionSlack {
		f.pre = nil
		f.preIters = -1
	}

	f.remember(s, t)
	if f.perm != nil {
		out := make([]float64, len(t))
		sparse.PermuteVec(out, t, f.iperm)
		t = out
	}
	return t, res, probe, nil
}

// escalate climbs the solve ladder for the materialized matrix at scale
// s: BiCGSTAB with the current preconditioner, a rebuilt-preconditioner
// cold retry (latching multigrid off on the way down), GMRES, then dense
// LU for small systems. rhs is the right-hand side and t the initial
// guess, advanced in place; cold() must reset t to the cold-start state
// before a retry. The returned Result carries the total iteration count
// across rungs. Callers hold f.mu; both SolveAt and the transient
// stepper's Step route through this one ladder.
func (f *Factored) escalate(mat *sparse.CSR, rhs, t []float64, s float64,
	opt solver.Options, freshPre, mgActive bool, cold func()) (solver.Result, solver.Rung, error) {
	tol := opt.Tol
	// check rejects solves whose reported residual or field is not
	// finite — a converged-looking solve on a poisoned system must
	// escalate, not propagate NaN temperatures into the searches.
	check := func(res solver.Result, err error) error {
		if err != nil {
			return err
		}
		if notFinite(res.Residual) || !finiteField(t) {
			return fmt.Errorf("thermal: non-finite temperature field: %w", solver.ErrBreakdown)
		}
		return nil
	}

	// Rung 0: BiCGSTAB, warm start, current preconditioner.
	rung := solver.RungPrimary
	res, err := solver.BiCGSTAB(mat, rhs, t, opt)
	if err == nil && faults.Fire(faults.ThermalNaN) {
		t[0] = math.NaN()
	}
	err = check(res, err)
	totalIters := res.Iterations

	// Rung 1: a preconditioner built at a distant scale can stall the
	// solve; rebuild at the current matrix and retry from a cold start.
	// With multigrid active this is the multigrid → ILU(0) fallback: a
	// V-cycle failure (breakdown, injected fault, a coarse grid that
	// cannot represent the system) latches multigrid off for this
	// Factored and retries on the classic path. Skipped only when an
	// already-fresh ILU factorization just failed.
	if err != nil && (!freshPre || mgActive) {
		rung = solver.RungRetry
		f.ctrRetryRebuild.Add(1)
		if mgActive {
			f.mgDisabled = true
			f.ctrMGLatchOffs.Add(1)
			f.usingMG = false
			mgActive = false
			opt.MaxIter = 40 * f.N()
		}
		f.buildPrecond(mat, s)
		opt.Precond = f.pre
		cold()
		res, err = solver.BiCGSTAB(mat, rhs, t, opt)
		err = check(res, err)
		totalIters += res.Iterations
	}

	// Rung 2: GMRES, cold start. More robust on the strongly non-normal
	// matrices the central convection stencil produces at high flow.
	if err != nil {
		rung = solver.RungGMRES
		f.ctrRetryGMRES.Add(1)
		cold()
		res, err = solver.GMRES(mat, rhs, t, opt)
		err = check(res, err)
		totalIters += res.Iterations
	}

	// Rung 3: dense LU for small systems — slow but method-independent.
	if err != nil && f.N() <= solver.DenseFallbackMax {
		rung = solver.RungDense
		f.ctrRetryDense.Add(1)
		if x, derr := solver.DenseSolve(mat, rhs); derr == nil {
			copy(t, x)
			res = solver.Result{Residual: solver.RelResidual(mat, rhs, t)}
			if finiteField(t) && res.Residual <= math.Sqrt(tol) {
				err = nil
			} else {
				err = fmt.Errorf("thermal: dense fallback residual %.3g: %w", res.Residual, solver.ErrBreakdown)
			}
		} else {
			err = fmt.Errorf("thermal: dense fallback: %w", derr)
		}
	}

	res.Iterations = totalIters
	return res, rung, err
}

// mgEligible reports whether this probe should route through the
// two-level multigrid preconditioner.
func (f *Factored) mgEligible() bool {
	if f.mgDisabled || f.agg == nil || f.nAgg < 1 || f.nAgg >= f.N() {
		return false
	}
	switch GetPrecondStrategy() {
	case PrecondILU:
		return false
	case PrecondMG:
		return true
	}
	return f.N() >= mgMinSize && f.nAgg >= mgMinCoarse && 2*f.nAgg <= f.N() &&
		(f.nAgg <= solver.DenseCoarseMax || f.N() >= mgLargeSize)
}

// routePrecond points f.pre at the preconditioner for scale s and
// reports whether it is the multigrid path. The hierarchy (coarse
// pattern, Galerkin base/slope projection, aggregation scatter) is
// built once per Factored; per scale only the coarse values and the
// coarse factorization refresh, and even that is deferred to the first
// Apply so a warm start that is already converged pays nothing.
func (f *Factored) routePrecond(s float64) bool {
	if !f.mgEligible() {
		return false
	}
	mg := f.mg.Load()
	if mg == nil {
		g, err := solver.NewTwoLevel(f.pair, f.agg, f.nAgg, solver.MGOptions{})
		if err != nil {
			f.mgDisabled = true
			f.ctrMGLatchOffs.Add(1)
			return false
		}
		f.mg.Store(g)
		f.ctrPrecondBuilds.Add(1)
		mg = g
	}
	if f.pre == nil || !f.usingMG || f.preScale != s {
		if !f.usingMG {
			f.preIters = -1
		}
		f.pre = &mgPrecond{mg: mg, f: f, scale: s}
		f.preScale = s
	}
	return true
}

// mgPrecond adapts the shared multigrid hierarchy to one probe's scale.
// The coarse refresh happens on the first Apply (cf. lazyPrecond); if
// the coarse system cannot be factorized at this scale the output is
// poisoned so the outer solve breaks down and the escalation ladder
// falls back to ILU(0).
type mgPrecond struct {
	mg     *solver.TwoLevel
	f      *Factored
	scale  float64
	synced bool
	failed bool
}

func (m *mgPrecond) Apply(z, r []float64) {
	if !m.synced {
		m.synced = true
		if m.mg.Shift() != m.scale {
			if err := m.mg.UpdateShift(m.scale); err != nil {
				m.failed = true
			} else {
				m.f.ctrPrecondUpdates.Add(1)
			}
		}
	}
	if m.failed {
		copy(z, r)
		z[0] = math.NaN()
		return
	}
	m.mg.Apply(z, r)
}

func (f *Factored) buildPrecond(mat *sparse.CSR, s float64) {
	f.pre = &lazyPrecond{mat: mat, f: f}
	f.preScale = s
	f.preIters = -1
}

// lazyPrecond defers the ILU factorization to the first Apply: a probe
// whose warm start is already converged (common when revisiting a
// pressure) never pays for a preconditioner it would not use. The
// factorization snapshots the in-place matrix values at first use; f.pre
// is only applied while SolveAt holds f.mu, so the snapshot always
// matches the scale being solved (modulo the accepted drift window).
type lazyPrecond struct {
	mat   *sparse.CSR
	f     *Factored
	inner solver.Preconditioner
}

func (l *lazyPrecond) Apply(z, r []float64) {
	if l.inner == nil {
		l.inner = solver.BestPrecond(l.mat)
		l.f.ctrPrecondBuilds.Add(1)
	}
	l.inner.Apply(z, r)
}

// nearestWarm picks the cached field whose scale is closest to s in log
// space (pressure probes span decades; ratios are what predict field
// similarity).
func (f *Factored) nearestWarm(s float64) *warmField {
	best := -1
	bestD := math.Inf(1)
	for i := range f.warm {
		d := scaleDistance(f.warm[i].scale, s)
		if d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return nil
	}
	return &f.warm[best]
}

func notFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// finiteField reports whether every entry of t is finite.
func finiteField(t []float64) bool {
	for _, v := range t {
		if notFinite(v) {
			return false
		}
	}
	return true
}

func scaleDistance(a, b float64) float64 {
	if a > 0 && b > 0 {
		return math.Abs(math.Log(a / b))
	}
	return math.Abs(a - b)
}

// remember stores a copy of the solved field, evicting the oldest entry
// once the cache is full.
func (f *Factored) remember(s float64, t []float64) {
	for i := range f.warm {
		if f.warm[i].scale == s {
			copy(f.warm[i].t, t)
			return
		}
	}
	cp := append([]float64(nil), t...)
	if len(f.warm) >= maxWarmFields {
		copy(f.warm, f.warm[1:])
		f.warm[len(f.warm)-1] = warmField{scale: s, t: cp}
		return
	}
	f.warm = append(f.warm, warmField{scale: s, t: cp})
}
