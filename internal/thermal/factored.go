package thermal

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
)

// Factored is a thermal system compiled for repeated solves of the same
// network at many flow scales: A(s) = S + s·F, b(s) = b_S + s·b_F, where
// S holds the pressure-independent conduction block and F the convection
// block recorded at a reference flow (the rm2/rm4 models record at
// P_sys = 1 Pa, so s is the system pressure in Pa). Per probe it rewrites
// the matrix values in place (no pattern work, no allocation), warm-starts
// the iterative solve from the cached field of the nearest previously
// solved scale, and reuses the preconditioner across nearby scales,
// refreshing it when iteration counts regress.
//
// SolveAt is safe for concurrent use; solves on one Factored serialize.
type Factored struct {
	mu        sync.Mutex
	pair      *sparse.AffinePair
	staticRHS []float64
	flowRHS   []float64
	rhs       []float64 // scratch, rewritten per probe
	scheme    Scheme

	warm []warmField // most recent last

	pre      solver.Preconditioner
	preScale float64 // scale the preconditioner was factorized at
	preIters int     // iterations right after the last precond build; -1 = unset

	tol float64 // solve tolerance; defaultSolveTol when zero

	// Stats counters are atomics so Stats() can snapshot them without
	// taking f.mu: a metrics scrape must not block behind (or race with)
	// a solve that is in flight.
	ctrProbes        atomic.Int64
	ctrWarmStarts    atomic.Int64
	ctrPrecondBuilds atomic.Int64
	ctrSolveIters    atomic.Int64
	ctrAssemblyNS    atomic.Int64

	// Escalation-ladder counters: probes that reached each fallback rung
	// and probes whose result came from a degraded rung (see solver.Rung).
	ctrRetryRebuild atomic.Int64
	ctrRetryGMRES   atomic.Int64
	ctrRetryDense   atomic.Int64
	ctrDegraded     atomic.Int64
}

// defaultSolveTol is the relative residual the steady solves converge to.
const defaultSolveTol = 1e-10

// SetTol overrides the linear-solve tolerance (0 restores the default).
// Tightening it makes independently seeded solves agree more closely, at
// the cost of extra iterations per probe.
func (f *Factored) SetTol(tol float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tol = tol
}

// warmField is one cached solution used to seed later solves.
type warmField struct {
	scale float64
	t     []float64
}

// maxWarmFields bounds the solution cache; the pressure searches of
// Algorithms 2/3 probe a few dozen distinct pressures per network, and
// only the nearest neighbors matter.
const maxWarmFields = 16

// precondRegressionFactor triggers a preconditioner rebuild when a solve
// needs more than this multiple of the post-build iteration count (plus a
// small absolute slack for noise on tiny systems).
const (
	precondRegressionFactor = 2
	precondRegressionSlack  = 16
)

// precondMaxDrift is the largest |log(s/s_build)| at which the cached
// preconditioner is still used. The refinement phases of the pressure
// searches (bisection, golden section) probe within a factor ~1.5 of the
// previous probe and reuse it; the decade-spanning doubling sweeps
// (e.g. MinPressureForTmax climbing from P_min) refactorize, because an
// ILU built where convection dominates is nearly useless where
// conduction dominates — iteration counts explode long before the
// regression heuristic can react.
const precondMaxDrift = 0.5

// FactorStats accumulates amortization counters across the lifetime of a
// factored system.
type FactorStats struct {
	Probes        int   // SolveAt calls
	WarmStarts    int   // solves seeded from a cached temperature field
	PrecondBuilds int   // preconditioner constructions
	SolveIters    int   // total linear-solver iterations
	AssemblyNS    int64 // cumulative nanoseconds spent rewriting values

	// Escalation-ladder counters (see solver.Rung): probes that climbed
	// to the rebuilt-preconditioner retry, the GMRES rung, and the dense
	// fallback, plus probes whose result came from a degraded rung.
	RetryRebuild int
	RetryGMRES   int
	RetryDense   int
	Degraded     int
}

// WarmStartRate reports the fraction of probes that were warm-started.
func (s FactorStats) WarmStartRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(s.Probes)
}

// ProbeStats describes what one SolveAt call did.
type ProbeStats struct {
	AssemblyNS    int64 // time spent rewriting matrix/RHS values
	WarmStarted   bool  // initial guess came from a cached field
	PrecondBuilds int   // preconditioner builds this probe triggered
	// Rung is the highest escalation-ladder rung this probe climbed to;
	// Degraded marks results produced by a fallback method (GMRES or
	// dense LU) rather than the normal BiCGSTAB path.
	Rung     solver.Rung
	Degraded bool
}

// Factor compiles the assembler into a reusable factored system. The
// assembler's recorded values are copied; it can be discarded afterwards.
func (a *Assembler) Factor() *Factored {
	s := a.static.Build()
	fl := a.flow.Build()
	pair, err := sparse.NewAffinePair(s, fl)
	if err != nil {
		// Both builders share the assembler's dimension; this is unreachable.
		panic(err)
	}
	n := a.N()
	f := &Factored{
		pair:      pair,
		staticRHS: append([]float64(nil), a.rhs...),
		flowRHS:   append([]float64(nil), a.flowRHS...),
		rhs:       make([]float64, n),
		scheme:    a.scheme,
		preIters:  -1,
	}
	return f
}

// N returns the system size.
func (f *Factored) N() int { return len(f.rhs) }

// Stats snapshots the cumulative amortization counters. It never blocks
// on the solve lock, so it is safe (and cheap) to call from a metrics
// scraper while a solve is in flight; counters touched by that solve land
// in the next snapshot. The counters are loaded independently, so the
// snapshot is not atomic across fields; loading WarmStarts before Probes
// keeps the WarmStarts <= Probes invariant (each solve increments Probes
// before it can count a warm start).
func (f *Factored) Stats() FactorStats {
	warm := f.ctrWarmStarts.Load()
	return FactorStats{
		Probes:        int(f.ctrProbes.Load()),
		WarmStarts:    int(warm),
		PrecondBuilds: int(f.ctrPrecondBuilds.Load()),
		SolveIters:    int(f.ctrSolveIters.Load()),
		AssemblyNS:    f.ctrAssemblyNS.Load(),
		RetryRebuild:  int(f.ctrRetryRebuild.Load()),
		RetryGMRES:    int(f.ctrRetryGMRES.Load()),
		RetryDense:    int(f.ctrRetryDense.Load()),
		Degraded:      int(f.ctrDegraded.Load()),
	}
}

// NNZ returns the stored entries of the union pattern.
func (f *Factored) NNZ() int { return f.pair.Matrix().NNZ() }

// reassemble rewrites the in-place matrix and RHS to scale s and returns
// the nanoseconds spent.
func (f *Factored) reassemble(s float64) int64 {
	t0 := time.Now()
	f.pair.SetShift(s)
	for i := range f.rhs {
		f.rhs[i] = f.staticRHS[i] + s*f.flowRHS[i]
	}
	return time.Since(t0).Nanoseconds()
}

// SystemAt materializes an independent copy of the system at scale s, for
// callers that retain the matrices (transient stepping, inspection).
func (f *Factored) SystemAt(s float64) (*sparse.CSR, []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rhs := make([]float64, len(f.rhs))
	for i := range rhs {
		rhs[i] = f.staticRHS[i] + s*f.flowRHS[i]
	}
	return f.pair.MatrixCopy(s), rhs
}

// SolveAt solves A(s)·T = b(s), seeding the iteration from the cached
// field of the nearest previously solved scale (falling back to a uniform
// tGuess). The returned slice is owned by the caller.
//
// On solver failure (breakdown, non-convergence, or a non-finite
// temperature field) it climbs the escalation ladder (see solver.Rung):
// BiCGSTAB with the current preconditioner, then a rebuilt-preconditioner
// cold retry, then GMRES, then — for systems up to
// solver.DenseFallbackMax — dense LU. The rung that produced the result
// is reported in ProbeStats; results from the GMRES or dense rungs are
// marked Degraded.
func (f *Factored) SolveAt(s, tGuess float64) ([]float64, solver.Result, ProbeStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	var probe ProbeStats
	probe.AssemblyNS = f.reassemble(s)
	f.ctrProbes.Add(1)
	f.ctrAssemblyNS.Add(probe.AssemblyNS)
	mat := f.pair.Matrix()

	if faults.Fire(faults.ThermalSlow) {
		time.Sleep(faults.Delay())
	}

	t := make([]float64, f.N())
	if w := f.nearestWarm(s); w != nil {
		copy(t, w.t)
		probe.WarmStarted = true
		f.ctrWarmStarts.Add(1)
	} else {
		for i := range t {
			t[i] = tGuess
		}
	}

	builds0 := f.ctrPrecondBuilds.Load()
	freshPre := false
	if f.pre == nil || scaleDistance(s, f.preScale) > precondMaxDrift {
		f.buildPrecond(mat, s)
		freshPre = true
	}
	tol := f.tol
	if tol <= 0 {
		tol = defaultSolveTol
	}
	opt := solver.Options{
		Tol: tol, MaxIter: 40 * f.N(), Precond: f.pre, Restart: 80,
	}
	coldStart := func() {
		for i := range t {
			t[i] = tGuess
		}
	}
	// check rejects solves whose reported residual or field is not
	// finite — a converged-looking solve on a poisoned system must
	// escalate, not propagate NaN temperatures into the searches.
	check := func(res solver.Result, err error) error {
		if err != nil {
			return err
		}
		if notFinite(res.Residual) || !finiteField(t) {
			return fmt.Errorf("thermal: non-finite temperature field: %w", solver.ErrBreakdown)
		}
		return nil
	}

	// Rung 0: BiCGSTAB, warm start, current preconditioner.
	rung := solver.RungPrimary
	res, err := solver.BiCGSTAB(mat, f.rhs, t, opt)
	if err == nil && faults.Fire(faults.ThermalNaN) {
		t[0] = math.NaN()
	}
	err = check(res, err)
	totalIters := res.Iterations

	// Rung 1: a preconditioner built at a distant scale can stall the
	// solve; rebuild at the current matrix and retry from a cold start.
	// Skipped when the preconditioner is already fresh.
	if err != nil && !freshPre {
		rung = solver.RungRetry
		f.ctrRetryRebuild.Add(1)
		f.buildPrecond(mat, s)
		opt.Precond = f.pre
		coldStart()
		res, err = solver.BiCGSTAB(mat, f.rhs, t, opt)
		err = check(res, err)
		totalIters += res.Iterations
	}

	// Rung 2: GMRES, cold start. More robust on the strongly non-normal
	// matrices the central convection stencil produces at high flow.
	if err != nil {
		rung = solver.RungGMRES
		f.ctrRetryGMRES.Add(1)
		coldStart()
		res, err = solver.GMRES(mat, f.rhs, t, opt)
		err = check(res, err)
		totalIters += res.Iterations
	}

	// Rung 3: dense LU for small systems — slow but method-independent.
	if err != nil && f.N() <= solver.DenseFallbackMax {
		rung = solver.RungDense
		f.ctrRetryDense.Add(1)
		if x, derr := solver.DenseSolve(mat, f.rhs); derr == nil {
			copy(t, x)
			res = solver.Result{Residual: solver.RelResidual(mat, f.rhs, t)}
			if finiteField(t) && res.Residual <= math.Sqrt(tol) {
				err = nil
			} else {
				err = fmt.Errorf("thermal: dense fallback residual %.3g: %w", res.Residual, solver.ErrBreakdown)
			}
		} else {
			err = fmt.Errorf("thermal: dense fallback: %w", derr)
		}
	}

	res.Iterations = totalIters
	f.ctrSolveIters.Add(int64(totalIters))
	probe.PrecondBuilds = int(f.ctrPrecondBuilds.Load() - builds0)
	probe.Rung = rung
	if err != nil {
		return nil, res, probe, fmt.Errorf("thermal: steady solve failed at rung %v: %w (res %.3g)", rung, err, res.Residual)
	}
	if probe.Degraded = rung.Degraded(); probe.Degraded {
		f.ctrDegraded.Add(1)
	}

	// Track preconditioner quality: remember the iteration count of the
	// first solve that really exercised it (a warm start converging in 0
	// iterations says nothing), and schedule a refresh once solves regress
	// past the threshold (the next probe then factorizes the current
	// matrix).
	if f.preIters < 0 {
		if res.Iterations > 0 {
			f.preIters = res.Iterations
		}
	} else if res.Iterations > precondRegressionFactor*f.preIters+precondRegressionSlack {
		f.pre = nil
		f.preIters = -1
	}

	f.remember(s, t)
	return t, res, probe, nil
}

func (f *Factored) buildPrecond(mat *sparse.CSR, s float64) {
	f.pre = &lazyPrecond{mat: mat, f: f}
	f.preScale = s
	f.preIters = -1
}

// lazyPrecond defers the ILU factorization to the first Apply: a probe
// whose warm start is already converged (common when revisiting a
// pressure) never pays for a preconditioner it would not use. The
// factorization snapshots the in-place matrix values at first use; f.pre
// is only applied while SolveAt holds f.mu, so the snapshot always
// matches the scale being solved (modulo the accepted drift window).
type lazyPrecond struct {
	mat   *sparse.CSR
	f     *Factored
	inner solver.Preconditioner
}

func (l *lazyPrecond) Apply(z, r []float64) {
	if l.inner == nil {
		l.inner = solver.BestPrecond(l.mat)
		l.f.ctrPrecondBuilds.Add(1)
	}
	l.inner.Apply(z, r)
}

// nearestWarm picks the cached field whose scale is closest to s in log
// space (pressure probes span decades; ratios are what predict field
// similarity).
func (f *Factored) nearestWarm(s float64) *warmField {
	best := -1
	bestD := math.Inf(1)
	for i := range f.warm {
		d := scaleDistance(f.warm[i].scale, s)
		if d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return nil
	}
	return &f.warm[best]
}

func notFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// finiteField reports whether every entry of t is finite.
func finiteField(t []float64) bool {
	for _, v := range t {
		if notFinite(v) {
			return false
		}
	}
	return true
}

func scaleDistance(a, b float64) float64 {
	if a > 0 && b > 0 {
		return math.Abs(math.Log(a / b))
	}
	return math.Abs(a - b)
}

// remember stores a copy of the solved field, evicting the oldest entry
// once the cache is full.
func (f *Factored) remember(s float64, t []float64) {
	for i := range f.warm {
		if f.warm[i].scale == s {
			copy(f.warm[i].t, t)
			return
		}
	}
	cp := append([]float64(nil), t...)
	if len(f.warm) >= maxWarmFields {
		copy(f.warm, f.warm[1:])
		f.warm[len(f.warm)-1] = warmField{scale: s, t: cp}
		return
	}
	f.warm = append(f.warm, warmField{scale: s, t: cp})
}
