// Package thermal provides the machinery shared by the 4RM and 2RM
// simulators: the finite-volume assembler with the paper's
// central-differencing convection stencil (Eq. (6)) plus an upwind
// ablation variant, temperature metrics (thermal gradient ΔT and peak
// temperature T_max as defined in Section 3), the common simulation
// outcome type, and a transient backward-Euler extension.
package thermal

import (
	"fmt"

	"lcn3d/internal/grid"
	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
)

// Scheme selects the discretization of the convective interface
// temperature T* in Eq. (6).
type Scheme int

// Convection schemes.
const (
	// Central uses T* = (T_i + T_j)/2, the paper's central differencing.
	Central Scheme = iota
	// Upwind uses T* = T_upstream; more diffusive but unconditionally
	// stable. Provided as an ablation (see DESIGN.md).
	Upwind
)

func (s Scheme) String() string {
	if s == Upwind {
		return "upwind"
	}
	return "central"
}

// Assembler accumulates the linear system A·T = b of a thermal network.
// Equation convention per node i:
//
//	Σ_j g_ij (T_i - T_j)  +  convection_out(i) - convection_in(i)  =  q_i
//
// Entries are recorded in two groups: conduction terms (Conductance,
// Dirichlet, Source) are pressure-independent, while convection terms
// (Convection, ConvectionInlet, ConvectionOutlet) are proportional to the
// coolant flow rate and therefore to P_sys. Build sums the two groups;
// Factor keeps them separate so that repeated probes of the same network
// at different pressures reuse the pattern, the conduction block, and the
// solver state (see Factored).
type Assembler struct {
	static  *sparse.Builder // conduction entries, pressure-independent
	flow    *sparse.Builder // convection entries, linear in the flow rate
	rhs     []float64       // static RHS: sources and Dirichlet baths
	flowRHS []float64       // flow RHS: inlet convection, linear in flow
	scheme  Scheme

	agg  []int // multigrid aggregate of each unknown; nil when unset
	nAgg int
}

// SetCoarseMap records a coarsening of the unknowns for the two-level
// multigrid preconditioner: agg[i] names the aggregate of unknown i
// (0 <= agg[i] < nAgg). The models pass their own coarse 2RM cell
// structure — one solid aggregate per coarse cell and layer, plus one
// liquid aggregate per coarse cell in channel layers — so the coarse
// grid is the paper's porous-medium discretization of the same stack.
// Factor copies the map; without one the factored system preconditions
// with ILU(0) only.
func (a *Assembler) SetCoarseMap(agg []int, nAgg int) {
	if len(agg) != a.N() {
		panic(fmt.Sprintf("thermal: coarse map has %d entries for %d unknowns", len(agg), a.N()))
	}
	a.agg = append([]int(nil), agg...)
	a.nAgg = nAgg
}

// NewAssembler creates an assembler for n nodes.
func NewAssembler(n int, scheme Scheme) *Assembler {
	return &Assembler{
		static: sparse.NewBuilder(n), flow: sparse.NewBuilder(n),
		rhs: make([]float64, n), flowRHS: make([]float64, n), scheme: scheme,
	}
}

// N returns the number of nodes.
func (a *Assembler) N() int { return a.static.N() }

// Conductance adds a thermal conductance g between nodes i and j.
// Zero or negative conductances are ignored.
func (a *Assembler) Conductance(i, j int, g float64) {
	if g <= 0 {
		return
	}
	a.static.AddSym(i, j, g)
}

// Dirichlet ties node i to a fixed external temperature t through
// conductance g (e.g. an ambient boundary).
func (a *Assembler) Dirichlet(i int, g, t float64) {
	if g <= 0 {
		return
	}
	a.static.Add(i, i, g)
	a.rhs[i] += g * t
}

// Source injects q watts into node i.
func (a *Assembler) Source(i int, q float64) { a.rhs[i] += q }

// Convection models coolant carrying heat from node i to node j with
// volumetric heat flow c = Cv·Q (W/K). c must be >= 0 (orient the call in
// the flow direction).
func (a *Assembler) Convection(i, j int, c float64) {
	if c <= 0 {
		return
	}
	switch a.scheme {
	case Central:
		// Energy crossing the interface: c * (T_i + T_j)/2.
		a.flow.Add(i, i, c/2)
		a.flow.Add(i, j, c/2)
		a.flow.Add(j, i, -c/2)
		a.flow.Add(j, j, -c/2)
	case Upwind:
		// Energy crossing the interface: c * T_i (upstream value).
		a.flow.Add(i, i, c)
		a.flow.Add(j, i, -c)
	}
}

// ConvectionInlet models coolant entering node i from an inlet at the
// fixed temperature tin with volumetric heat flow c = Cv·Q_in.
func (a *Assembler) ConvectionInlet(i int, c, tin float64) {
	if c <= 0 {
		return
	}
	a.flowRHS[i] += c * tin
}

// ConvectionOutlet models coolant leaving node i to an outlet with
// volumetric heat flow c = Cv·Q_out. The outlet temperature is
// approximated by T_i (paper Sec. 2.2).
func (a *Assembler) ConvectionOutlet(i int, c float64) {
	if c <= 0 {
		return
	}
	a.flow.Add(i, i, c)
}

// Build compiles the system as recorded (conduction plus convection at
// the magnitudes the caller stamped).
func (a *Assembler) Build() (*sparse.CSR, []float64) {
	f := a.Factor()
	return f.SystemAt(1)
}

// SolveSteady assembles and solves the steady system, starting the
// iteration from tGuess (pass the inlet temperature).
func (a *Assembler) SolveSteady(tGuess float64) ([]float64, solver.Result, error) {
	t, res, _, err := a.Factor().SolveAt(1, tGuess)
	return t, res, err
}

// LayerStats summarizes one source layer's temperature field.
type LayerStats struct {
	Min, Max, Mean float64
}

// Range returns Max - Min, the layer's thermal gradient ΔT_i.
func (s LayerStats) Range() float64 { return s.Max - s.Min }

// Metrics are the paper's optimization targets (Section 3).
type Metrics struct {
	Tmax     float64      // peak temperature over all source-layer nodes, K
	DeltaT   float64      // max_i(ΔT_i) over source layers, K
	PerLayer []LayerStats // one entry per source layer, bottom to top
}

// ComputeMetrics derives Metrics from per-source-layer temperature
// fields.
func ComputeMetrics(layers [][]float64) Metrics {
	m := Metrics{}
	for _, t := range layers {
		st := LayerStats{Min: t[0], Max: t[0]}
		var sum float64
		for _, v := range t {
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
			sum += v
		}
		st.Mean = sum / float64(len(t))
		m.PerLayer = append(m.PerLayer, st)
		if st.Max > m.Tmax {
			m.Tmax = st.Max
		}
		if r := st.Range(); r > m.DeltaT {
			m.DeltaT = r
		}
	}
	return m
}

// Outcome is the result of one cooling-system simulation at a specific
// system pressure drop.
type Outcome struct {
	Metrics
	Psys  float64 // system pressure drop, Pa
	Qsys  float64 // total coolant flow, m^3/s
	Rsys  float64 // system fluid resistance, Pa*s/m^3
	Wpump float64 // pumping power, W

	// SourceDims describes the grid of the model's native source-layer
	// fields in SourceTemps (fine basic cells for 4RM, coarse thermal
	// cells for 2RM).
	SourceDims  grid.Dims
	SourceTemps [][]float64 // native per-source-layer fields

	// FineDims/FineTemps hold the fields sampled on the basic-cell grid
	// (identical to SourceTemps for 4RM; expanded for 2RM). Used for the
	// 2RM-vs-4RM accuracy comparison of Fig. 9(a).
	FineDims  grid.Dims
	FineTemps [][]float64

	SolveIters int
	// Probe reports the assembly-amortization counters of the solve that
	// produced this outcome (zero-valued on the from-scratch path).
	Probe ProbeStats
}

// Model is a thermal simulator bound to one stack and cooling network.
type Model interface {
	// Name identifies the model family ("4RM", "2RM/m=4", ...).
	Name() string
	// Simulate runs a steady simulation at the given system pressure.
	Simulate(psys float64) (*Outcome, error)
}
