package thermal

import (
	"sync"
	"testing"
)

// raceFactored builds a small solvable factored system: a 1D advection
// pipe whose convection block scales with the flow (pressure) factor.
func raceFactored(tb testing.TB, n int) *Factored {
	tb.Helper()
	a := NewAssembler(n, Central)
	a.ConvectionInlet(0, 0.5, 300)
	for i := 0; i+1 < n; i++ {
		a.Convection(i, i+1, 0.5)
		a.Conductance(i, i+1, 0.05)
	}
	a.ConvectionOutlet(n-1, 0.5)
	for i := 0; i < n; i++ {
		a.Source(i, 1.0)
	}
	return a.Factor()
}

// TestStatsConcurrentWithSolves hammers Stats() from many goroutines
// while probes run, proving the counters can be scraped mid-solve. Run
// under -race (CI does) this is the FactorStats data-race regression
// test; without -race it still checks monotonic consistency.
func TestStatsConcurrentWithSolves(t *testing.T) {
	f := raceFactored(t, 64)
	const (
		readers = 4
		probes  = 40
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastProbes int
			for {
				select {
				case <-done:
					return
				default:
				}
				st := f.Stats()
				if st.Probes < lastProbes {
					t.Errorf("probe counter went backwards: %d -> %d", lastProbes, st.Probes)
					return
				}
				lastProbes = st.Probes
				if st.WarmStarts > st.Probes {
					t.Errorf("warm starts %d exceed probes %d", st.WarmStarts, st.Probes)
					return
				}
				_ = st.WarmStartRate()
			}
		}()
	}

	scales := []float64{0.5, 1, 2, 4, 1.5, 3}
	var solveWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		solveWG.Add(1)
		go func(w int) {
			defer solveWG.Done()
			for i := 0; i < probes; i++ {
				if _, _, _, err := f.SolveAt(scales[(i+w)%len(scales)], 300); err != nil {
					t.Errorf("solve: %v", err)
					return
				}
			}
		}(w)
	}
	solveWG.Wait()
	close(done)
	wg.Wait()

	st := f.Stats()
	if st.Probes != 2*probes {
		t.Fatalf("probes = %d, want %d", st.Probes, 2*probes)
	}
	if st.SolveIters == 0 || st.PrecondBuilds == 0 {
		t.Fatalf("expected nonzero solve iters and precond builds, got %+v", st)
	}
}
