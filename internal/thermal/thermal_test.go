package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAssemblerConductionRod(t *testing.T) {
	// 1D rod of 5 nodes, ends held at 300 K and 400 K through large
	// conductances: interior is a linear profile.
	a := NewAssembler(5, Central)
	for i := 0; i+1 < 5; i++ {
		a.Conductance(i, i+1, 1)
	}
	a.Dirichlet(0, 1e9, 300)
	a.Dirichlet(4, 1e9, 400)
	temps, _, err := a.SolveSteady(300)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{300, 325, 350, 375, 400} {
		if math.Abs(temps[i]-want) > 1e-3 {
			t.Fatalf("rod node %d = %g, want %g", i, temps[i], want)
		}
	}
}

func TestAssemblerSourceRaisesTemperature(t *testing.T) {
	a := NewAssembler(2, Central)
	a.Conductance(0, 1, 2)
	a.Dirichlet(1, 1000, 300)
	a.Source(0, 10) // 10 W through 2 W/K then 1000 W/K to the bath
	temps, _, err := a.SolveSteady(300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(temps[0]-305.01) > 1e-6 {
		t.Fatalf("node 0 = %g, want 305.01", temps[0])
	}
	if math.Abs(temps[1]-300.01) > 1e-6 {
		t.Fatalf("node 1 = %g, want 300.01", temps[1])
	}
}

// pipeTemps solves a 1D advection pipe: inlet -> n cells -> outlet, each
// cell receiving q watts, coolant heat flow c (W/K).
func pipeTemps(t *testing.T, scheme Scheme, n int, c, q float64) []float64 {
	t.Helper()
	a := NewAssembler(n, scheme)
	a.ConvectionInlet(0, c, 300)
	for i := 0; i+1 < n; i++ {
		a.Convection(i, i+1, c)
	}
	a.ConvectionOutlet(n-1, c)
	for i := 0; i < n; i++ {
		a.Source(i, q)
	}
	temps, _, err := a.SolveSteady(300)
	if err != nil {
		t.Fatal(err)
	}
	return temps
}

func TestAdvectionPipeEnergyBalance(t *testing.T) {
	// Total power n*q leaves through the outlet: c*(T_out - Tin) = n*q.
	for _, scheme := range []Scheme{Central, Upwind} {
		n, c, q := 10, 0.5, 1.0
		temps := pipeTemps(t, scheme, n, c, q)
		carried := c * (temps[n-1] - 300)
		if math.Abs(carried-float64(n)*q) > 1e-6 {
			t.Fatalf("%v: outlet carries %g W, want %g", scheme, carried, float64(n)*q)
		}
	}
}

func TestAdvectionPipeMonotone(t *testing.T) {
	temps := pipeTemps(t, Upwind, 12, 0.5, 1.0)
	for i := 1; i < len(temps); i++ {
		if temps[i] <= temps[i-1] {
			t.Fatalf("upwind pipe not monotone at %d: %v", i, temps)
		}
	}
}

func TestUpwindPipeExactSolution(t *testing.T) {
	// With upwind, T_i = Tin + q*(i + 1/... ): energy balance per prefix:
	// c*(T_i - Tin) = (i+1)*q? Outflow of cell i is c*T_i and inflow
	// c*T_{i-1}, so c*(T_i - T_{i-1}) = q -> T_i = 300 + (i+1)*q/c.
	n, c, q := 8, 2.0, 0.5
	temps := pipeTemps(t, Upwind, n, c, q)
	for i := 0; i < n; i++ {
		want := 300 + float64(i+1)*q/c
		if math.Abs(temps[i]-want) > 1e-9 {
			t.Fatalf("upwind T[%d] = %g, want %g", i, temps[i], want)
		}
	}
}

func TestCentralPipeOutletExact(t *testing.T) {
	// Central scheme still satisfies the global balance at the outlet.
	n, c, q := 8, 2.0, 0.5
	temps := pipeTemps(t, Central, n, c, q)
	want := 300 + float64(n)*q/c
	if math.Abs(temps[n-1]-want) > 1e-9 {
		t.Fatalf("central outlet %g, want %g", temps[n-1], want)
	}
}

func TestComputeMetrics(t *testing.T) {
	m := ComputeMetrics([][]float64{
		{300, 310, 305},
		{320, 308, 312},
	})
	if m.Tmax != 320 {
		t.Fatalf("Tmax %g", m.Tmax)
	}
	if m.DeltaT != 12 {
		t.Fatalf("DeltaT %g, want 12 (layer 2 range)", m.DeltaT)
	}
	if len(m.PerLayer) != 2 {
		t.Fatalf("layers %d", len(m.PerLayer))
	}
	if m.PerLayer[0].Range() != 10 || m.PerLayer[0].Mean != 305 {
		t.Fatalf("layer 0 stats %+v", m.PerLayer[0])
	}
}

func TestComputeMetricsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		bounded := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			bounded[i] = math.Mod(v, 1e6)
		}
		m := ComputeMetrics([][]float64{bounded})
		st := m.PerLayer[0]
		return st.Min <= st.Mean+1e-9 && st.Mean <= st.Max+1e-9 && m.DeltaT >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransientConvergesToSteady(t *testing.T) {
	// Two-node system: source node coupled to a Dirichlet bath. The
	// transient solution must approach the steady one.
	a := NewAssembler(2, Central)
	a.Conductance(0, 1, 2)
	a.Dirichlet(1, 5, 300)
	a.Source(0, 10)
	mat, rhs := a.Build()
	steady, _, err := a.SolveSteady(300)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTransientSystem(mat, rhs, []float64{1, 1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{300, 300}
	if err := ts.Run(temps, 2000, nil); err != nil {
		t.Fatal(err)
	}
	for i := range temps {
		if math.Abs(temps[i]-steady[i]) > 1e-3 {
			t.Fatalf("transient node %d = %g, steady %g", i, temps[i], steady[i])
		}
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	a := NewAssembler(1, Central)
	a.Dirichlet(0, 1, 300)
	a.Source(0, 5)
	mat, rhs := a.Build()
	ts, err := NewTransientSystem(mat, rhs, []float64{2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{300}
	prev := 300.0
	for s := 0; s < 50; s++ {
		if err := ts.Step(temps); err != nil {
			t.Fatal(err)
		}
		if temps[0] < prev-1e-12 {
			t.Fatalf("cooling during pure heating at step %d", s)
		}
		if temps[0] > 305+1e-9 {
			t.Fatalf("overshoot past steady state: %g", temps[0])
		}
		prev = temps[0]
	}
}

func TestTransientRejectsBadInput(t *testing.T) {
	a := NewAssembler(2, Central)
	a.Conductance(0, 1, 1)
	a.Dirichlet(0, 1, 300)
	mat, rhs := a.Build()
	if _, err := NewTransientSystem(mat, rhs, []float64{1, 1}, 0); err == nil {
		t.Error("dt=0 should fail")
	}
	if _, err := NewTransientSystem(mat, rhs, []float64{1}, 0.1); err == nil {
		t.Error("capacity length mismatch should fail")
	}
}

func TestSchemeString(t *testing.T) {
	if Central.String() != "central" || Upwind.String() != "upwind" {
		t.Fatal("scheme names wrong")
	}
}
