package thermal

import (
	"math"
	"runtime"
	"testing"

	"lcn3d/internal/sparse"
)

// rodTransient builds an n-node conduction rod with a bath at each end
// and a source in every node, returning the raw system for the legacy
// constructor path.
func rodTransient(tb testing.TB, n int) (*sparse.CSR, []float64, []float64) {
	tb.Helper()
	a := NewAssembler(n, Central)
	for i := 0; i+1 < n; i++ {
		a.Conductance(i, i+1, 1)
	}
	a.Dirichlet(0, 10, 300)
	a.Dirichlet(n-1, 10, 300)
	for i := 0; i < n; i++ {
		a.Source(i, 0.5)
	}
	mat, rhs := a.Build()
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.2 + 0.01*float64(i%7)
	}
	return mat, rhs, caps
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// TestTransientEnergyBalancePerStep checks the discrete backward-Euler
// energy balance after every step: C(T_{n+1}-T_n)/dt + A·T_{n+1} - b
// must vanish to solver accuracy, i.e. the relative residual against the
// step's right-hand side stays within 1e-9.
func TestTransientEnergyBalancePerStep(t *testing.T) {
	const n, dt = 50, 0.05
	mat, rhs, caps := rodTransient(t, n)
	ts, err := NewTransientSystem(mat, rhs, caps, dt)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = 300
	}
	prev := make([]float64, n)
	at := make([]float64, n)
	r := make([]float64, n)
	for step := 0; step < 100; step++ {
		copy(prev, temps)
		if err := ts.Step(temps); err != nil {
			t.Fatal(err)
		}
		mat.MulVec(at, temps)
		var scale float64
		for i := 0; i < n; i++ {
			r[i] = caps[i]*(temps[i]-prev[i])/dt + at[i] - rhs[i]
			d := rhs[i] + caps[i]/dt*prev[i]
			scale += d * d
		}
		rel := norm2(r) / math.Sqrt(scale)
		if rel > 1e-9 {
			t.Fatalf("step %d: relative energy residual %g > 1e-9", step+1, rel)
		}
	}
	st := ts.Stats()
	if st.Steps != 100 || st.Segments != 1 {
		t.Fatalf("stats after trace: %+v", st)
	}
}

// TestTransientFirstOrderConvergence checks backward Euler's O(dt)
// accuracy on the 1-node RC circuit C T' = q - g(T - Tamb), whose exact
// solution is known: halving dt must halve the error at a fixed horizon.
func TestTransientFirstOrderConvergence(t *testing.T) {
	const (
		g, c, q  = 1.0, 1.0, 5.0
		tAmb     = 300.0
		horizon  = 1.0
		tSteady  = tAmb + q/g             // 305
		exactEnd = tSteady - (q/g)*math.E // irrelevant; computed below instead
	)
	_ = exactEnd
	exact := tSteady - (q/g)*math.Exp(-horizon*g/c)
	errAt := func(dt float64) float64 {
		a := NewAssembler(1, Central)
		a.Dirichlet(0, g, tAmb)
		a.Source(0, q)
		mat, rhs := a.Build()
		ts, err := NewTransientSystem(mat, rhs, []float64{c}, dt)
		if err != nil {
			t.Fatal(err)
		}
		temps := []float64{tAmb}
		if err := ts.Run(temps, int(math.Round(horizon/dt)), nil); err != nil {
			t.Fatal(err)
		}
		return math.Abs(temps[0] - exact)
	}
	coarse := errAt(0.05)
	fine := errAt(0.025)
	ratio := coarse / fine
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("dt-refinement error ratio %g (errors %g, %g), want ~2 (first order)", ratio, coarse, fine)
	}
}

// TestFactoredTransientMatchesSteady drives the Factored-path stepper (a
// system with a genuine affine flow slope) to equilibrium and checks it
// lands on the steady solve at the same pressure.
func TestFactoredTransientMatchesSteady(t *testing.T) {
	const n, scale = 48, 2.0
	f := raceFactored(t, n)
	steady, _, _, err := f.SolveAt(scale, 300)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.05
	}
	ts, err := f.Transient(caps, 0.5, scale)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = 300
	}
	if err := ts.Run(temps, 400, nil); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(temps, steady); d > 1e-6 {
		t.Fatalf("transient equilibrium differs from steady solve by %g", d)
	}
}

// TestFactoredTransientSetScale re-targets the stepper to a new pump
// pressure mid-trace and checks it re-equilibrates onto the steady
// solution of the new pressure — the affine shift path, not a rebuild.
func TestFactoredTransientSetScale(t *testing.T) {
	const n = 48
	f := raceFactored(t, n)
	steadyHi, _, _, err := f.SolveAt(8.0, 300)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 0.05
	}
	ts, err := f.Transient(caps, 0.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = 300
	}
	if err := ts.Run(temps, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := ts.SetScale(8.0); err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(temps, 400, nil); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(temps, steadyHi); d > 1e-6 {
		t.Fatalf("post-SetScale equilibrium differs from steady solve by %g", d)
	}
	st := ts.Stats()
	if st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
	if st.Steps != 500 {
		t.Fatalf("steps = %d, want 500", st.Steps)
	}
}

// TestSetDtMatchesFreshSystem advances a trace, changes the time step in
// place, and checks the next step is bitwise identical to a freshly
// constructed stepper at the new dt started from the same field: the
// in-place C/dt diagonal refresh plus preconditioner invalidation must
// be indistinguishable from a rebuild.
func TestSetDtMatchesFreshSystem(t *testing.T) {
	const n = 50
	mat, rhs, caps := rodTransient(t, n)
	ts, err := NewTransientSystem(mat, rhs, caps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, n)
	for i := range temps {
		temps[i] = 300
	}
	if err := ts.Run(temps, 5, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewTransientSystem(mat, rhs, caps, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	freshTemps := append([]float64(nil), temps...)

	if err := ts.SetDt(0.025); err != nil {
		t.Fatal(err)
	}
	if got := ts.Dt(); got != 0.025 {
		t.Fatalf("Dt() = %g after SetDt", got)
	}
	for s := 0; s < 3; s++ {
		if err := ts.Step(temps); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Step(freshTemps); err != nil {
			t.Fatal(err)
		}
	}
	for i := range temps {
		if temps[i] != freshTemps[i] {
			t.Fatalf("node %d: in-place SetDt %v vs fresh system %v", i, temps[i], freshTemps[i])
		}
	}
	if st := ts.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
	// No-op SetDt must not open a new segment.
	if err := ts.SetDt(0.025); err != nil {
		t.Fatal(err)
	}
	if st := ts.Stats(); st.Segments != 2 {
		t.Fatalf("no-op SetDt opened a segment: %d", st.Segments)
	}
}

// TestSetSourceDelta applies a runtime power delta on top of the
// compiled RHS and checks the equilibrium shifts exactly as the added
// power predicts, then clears it and checks the system relaxes back.
func TestSetSourceDelta(t *testing.T) {
	a := NewAssembler(1, Central)
	a.Dirichlet(0, 1, 300)
	a.Source(0, 5)
	mat, rhs := a.Build()
	ts, err := NewTransientSystem(mat, rhs, []float64{0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{300}
	if err := ts.Run(temps, 100, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(temps[0]-305) > 1e-6 {
		t.Fatalf("base equilibrium %g, want 305", temps[0])
	}
	if err := ts.SetSourceDelta([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(temps, 100, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(temps[0]-310) > 1e-6 {
		t.Fatalf("delta equilibrium %g, want 310", temps[0])
	}
	if err := ts.SetSourceDelta(nil); err != nil {
		t.Fatal(err)
	}
	if err := ts.Run(temps, 100, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(temps[0]-305) > 1e-6 {
		t.Fatalf("cleared equilibrium %g, want 305", temps[0])
	}
	if err := ts.SetSourceDelta([]float64{1, 2}); err == nil {
		t.Fatal("length-mismatched delta accepted")
	}
}

// TestTransientRejects covers the stepper's input guards.
func TestTransientRejects(t *testing.T) {
	const n = 10
	mat, rhs, caps := rodTransient(t, n)
	ts, err := NewTransientSystem(mat, rhs, caps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.SetDt(0); err == nil {
		t.Error("SetDt(0) accepted")
	}
	if err := ts.SetDt(math.NaN()); err == nil {
		t.Error("SetDt(NaN) accepted")
	}
	if err := ts.SetScale(-1); err == nil {
		t.Error("SetScale(-1) accepted")
	}
	if err := ts.SetScale(math.Inf(1)); err == nil {
		t.Error("SetScale(Inf) accepted")
	}
	if err := ts.Step(make([]float64, n-1)); err == nil {
		t.Error("short field accepted")
	}
	bad := make([]float64, n)
	bad[3] = math.NaN()
	if err := ts.Step(bad); err == nil {
		t.Error("NaN field accepted")
	}
	f := raceFactored(t, 16)
	if _, err := f.Transient(make([]float64, 5), 0.1, 1); err == nil {
		t.Error("caps length mismatch accepted")
	}
	if _, err := f.Transient(make([]float64, 16), 0.1, -2); err == nil {
		t.Error("negative pressure accepted")
	}
	if _, err := f.Transient(make([]float64, 16), -0.1, 1); err == nil {
		t.Error("negative dt accepted")
	}
}

// TestTransientBitwiseDeterministic runs the same trace on a system
// large enough for the parallel SpMV path across different GOMAXPROCS
// and worker settings, and checks the final field is bitwise identical.
// Run under -race (CI does) this also proves Step has no data races.
func TestTransientBitwiseDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("steps a >20k-unknown system several times")
	}
	const n, steps = 21000, 15
	trace := func() []float64 {
		f := raceFactored(t, n)
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = 0.05
		}
		ts, err := f.Transient(caps, 0.2, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		temps := make([]float64, n)
		for i := range temps {
			temps[i] = 300
		}
		if err := ts.Run(temps, steps, nil); err != nil {
			t.Fatal(err)
		}
		return temps
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ref := trace()
	for _, cfg := range []struct {
		procs, workers int
	}{
		{2, 3}, {4, 7},
	} {
		runtime.GOMAXPROCS(cfg.procs)
		sparse.SetSpMVWorkers(cfg.workers)
		got := trace()
		sparse.SetSpMVWorkers(0)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("procs=%d workers=%d: node %d differs: %v vs %v",
					cfg.procs, cfg.workers, i, got[i], ref[i])
			}
		}
	}
}
