package thermal

import (
	"math"
	"testing"

	"lcn3d/internal/faults"
	"lcn3d/internal/solver"
)

// solveClean returns the uninjected reference field for the standard
// race-test pipe at the given scale.
func solveClean(t *testing.T, n int, scale float64) []float64 {
	t.Helper()
	f := raceFactored(t, n)
	temps, _, probe, err := f.SolveAt(scale, 300)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Rung != solver.RungPrimary || probe.Degraded {
		t.Fatalf("clean solve used rung %v (degraded=%v), want primary", probe.Rung, probe.Degraded)
	}
	return temps
}

func maxAbsDiff(a, b []float64) float64 {
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// TestEscalationLadder walks each rung of the thermal ladder by arming
// fault injections, and checks the degraded result still matches the
// clean solve within solver tolerance.
func TestEscalationLadder(t *testing.T) {
	const n, scale = 48, 2.0
	want := solveClean(t, n, scale)
	t.Cleanup(faults.Disarm)

	cases := []struct {
		name     string
		spec     string
		wantRung solver.Rung
		counters func(FactorStats) int
	}{
		{
			// First solve builds a fresh preconditioner, so the rebuild
			// rung is skipped and a BiCGSTAB breakdown lands on GMRES.
			name: "gmres", spec: "solver.bicgstab.breakdown=always",
			wantRung: solver.RungGMRES,
			counters: func(s FactorStats) int { return s.RetryGMRES },
		},
		{
			// A NaN slipped into an otherwise converged field must be
			// caught by the finiteness check and escalate the same way.
			name: "nan-field", spec: "thermal.nan=first:1",
			wantRung: solver.RungGMRES,
			counters: func(s FactorStats) int { return s.RetryGMRES },
		},
		{
			name: "dense", spec: "solver.bicgstab.breakdown=always;solver.gmres.breakdown=always",
			wantRung: solver.RungDense,
			counters: func(s FactorStats) int { return s.RetryDense },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := raceFactored(t, n)
			if err := faults.Arm(c.spec); err != nil {
				t.Fatal(err)
			}
			defer faults.Disarm()
			temps, _, probe, err := f.SolveAt(scale, 300)
			if err != nil {
				t.Fatalf("ladder did not recover: %v", err)
			}
			if probe.Rung != c.wantRung {
				t.Fatalf("rung = %v, want %v", probe.Rung, c.wantRung)
			}
			if !probe.Degraded {
				t.Fatalf("rung %v result not marked degraded", probe.Rung)
			}
			if !finiteField(temps) {
				t.Fatalf("non-finite field survived the ladder")
			}
			if d := maxAbsDiff(temps, want); d > 1e-4 {
				t.Fatalf("degraded field deviates by %g K from clean solve", d)
			}
			st := f.Stats()
			if c.counters(st) == 0 {
				t.Fatalf("rung counter not advanced: %+v", st)
			}
			if st.Degraded == 0 {
				t.Fatalf("degraded counter not advanced: %+v", st)
			}
		})
	}
}

// TestEscalationRebuildRung: with a stale (but reusable) preconditioner,
// a one-shot breakdown recovers on the rebuilt-preconditioner retry,
// which is a normal adaptation — not a degraded result.
func TestEscalationRebuildRung(t *testing.T) {
	const n, scale = 48, 2.0
	want := solveClean(t, n, scale)
	f := raceFactored(t, n)
	if _, _, _, err := f.SolveAt(scale, 300); err != nil {
		t.Fatal(err)
	}
	if err := faults.Arm("solver.bicgstab.breakdown=first:1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	// Same scale: the cached preconditioner is reused, so freshPre is
	// false and the rebuild rung is eligible. The injected breakdown is
	// spent on the primary attempt; the retry succeeds.
	temps, _, probe, err := f.SolveAt(scale, 300)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Rung != solver.RungRetry {
		t.Fatalf("rung = %v, want retry", probe.Rung)
	}
	if probe.Degraded {
		t.Fatal("retry rung must not be marked degraded")
	}
	if d := maxAbsDiff(temps, want); d > 1e-4 {
		t.Fatalf("retry field deviates by %g K", d)
	}
	if st := f.Stats(); st.RetryRebuild != 1 || st.Degraded != 0 {
		t.Fatalf("stats = %+v, want RetryRebuild=1 Degraded=0", st)
	}
}

// mgFactored builds the race-test pipe with a 4:1 coarse map so the
// factored system can route through the two-level multigrid
// preconditioner.
func mgFactored(tb testing.TB, n int) *Factored {
	tb.Helper()
	a := NewAssembler(n, Central)
	a.ConvectionInlet(0, 0.5, 300)
	for i := 0; i+1 < n; i++ {
		a.Convection(i, i+1, 0.5)
		a.Conductance(i, i+1, 0.05)
	}
	a.ConvectionOutlet(n-1, 0.5)
	for i := 0; i < n; i++ {
		a.Source(i, 1.0)
	}
	agg := make([]int, n)
	for i := range agg {
		agg[i] = i / 4
	}
	a.SetCoarseMap(agg, (n+3)/4)
	return a.Factor()
}

// TestEscalationMultigridFallback walks the multigrid → ILU(0) rung: a
// fault at any V-cycle stage (smoother, restriction, coarse solve)
// poisons the preconditioner output, the primary BiCGSTAB attempt breaks
// down, and the retry rung latches multigrid off and recovers on a fresh
// ILU(0) factorization. The recovered result is a normal solve — not
// degraded — and subsequent probes stay on the classic path.
func TestEscalationMultigridFallback(t *testing.T) {
	const n, scale = 48, 2.0
	want := solveClean(t, n, scale)
	prev := GetPrecondStrategy()
	SetPrecondStrategy(PrecondMG)
	t.Cleanup(func() { SetPrecondStrategy(prev) })
	t.Cleanup(faults.Disarm)

	for _, point := range []string{
		"solver.mg.smoother", "solver.mg.restrict", "solver.mg.coarse",
	} {
		t.Run(point, func(t *testing.T) {
			f := mgFactored(t, n)
			if err := faults.Arm(point + "=always"); err != nil {
				t.Fatal(err)
			}
			defer faults.Disarm()
			temps, _, probe, err := f.SolveAt(scale, 300)
			if err != nil {
				t.Fatalf("multigrid fallback did not recover: %v", err)
			}
			if probe.Rung != solver.RungRetry {
				t.Fatalf("rung = %v, want retry (multigrid → ILU0)", probe.Rung)
			}
			if probe.Degraded {
				t.Fatal("ILU0 fallback is a full-quality solve, must not be degraded")
			}
			if d := maxAbsDiff(temps, want); d > 1e-4 {
				t.Fatalf("fallback field deviates by %g K from clean solve", d)
			}
			st := f.Stats()
			if st.RetryRebuild != 1 || st.Degraded != 0 {
				t.Fatalf("stats = %+v, want RetryRebuild=1 Degraded=0", st)
			}
			// Multigrid is latched off: the next probe must not revisit the
			// poisoned V-cycle even though the fault is still armed.
			if _, _, probe, err = f.SolveAt(scale*1.1, 300); err != nil {
				t.Fatalf("post-latch solve: %v", err)
			}
			if probe.Rung != solver.RungPrimary {
				t.Fatalf("post-latch rung = %v, want primary on ILU0", probe.Rung)
			}
		})
	}
}

// TestEscalationMultigridToGMRES: when the V-cycle is poisoned AND the
// classic BiCGSTAB rung breaks down, the ladder must keep climbing —
// multigrid → ILU0 retry → GMRES — and flag the result degraded.
func TestEscalationMultigridToGMRES(t *testing.T) {
	const n, scale = 48, 2.0
	want := solveClean(t, n, scale)
	prev := GetPrecondStrategy()
	SetPrecondStrategy(PrecondMG)
	t.Cleanup(func() { SetPrecondStrategy(prev) })
	t.Cleanup(faults.Disarm)

	f := mgFactored(t, n)
	if err := faults.Arm("solver.mg.coarse=always;solver.bicgstab.breakdown=always"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	temps, _, probe, err := f.SolveAt(scale, 300)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if probe.Rung != solver.RungGMRES {
		t.Fatalf("rung = %v, want gmres", probe.Rung)
	}
	if !probe.Degraded {
		t.Fatal("GMRES result must be marked degraded")
	}
	if d := maxAbsDiff(temps, want); d > 1e-4 {
		t.Fatalf("degraded field deviates by %g K from clean solve", d)
	}
	st := f.Stats()
	if st.RetryRebuild != 1 || st.RetryGMRES != 1 || st.Degraded != 1 {
		t.Fatalf("stats = %+v, want RetryRebuild=1 RetryGMRES=1 Degraded=1", st)
	}
}

// TestEscalationExhausted: a system too large for the dense rung, with
// every iterative rung broken, must fail with an error naming the rung
// it died on — never return a poisoned field.
func TestEscalationExhausted(t *testing.T) {
	f := raceFactored(t, solver.DenseFallbackMax+1)
	spec := "solver.bicgstab.breakdown=always;solver.gmres.breakdown=always"
	if err := faults.Arm(spec); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	temps, _, probe, err := f.SolveAt(2.0, 300)
	if err == nil {
		t.Fatal("want error when every eligible rung fails")
	}
	if temps != nil {
		t.Fatal("failed solve must not return a field")
	}
	if probe.Rung != solver.RungGMRES {
		t.Fatalf("died at rung %v, want gmres (dense ineligible at this size)", probe.Rung)
	}
}
