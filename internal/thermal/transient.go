package thermal

import (
	"fmt"

	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
)

// TransientSystem integrates C dT/dt = b - A·T with backward Euler,
// the straightforward transient extension the paper notes for both
// models ("it can be easily extended to transient one").
type TransientSystem struct {
	A   *sparse.CSR
	B   []float64
	Cap []float64 // per-node heat capacity, J/K

	dt   float64
	lhs  *sparse.CSR
	pre  solver.Preconditioner
	work []float64
}

// NewTransientSystem prepares a stepper with a fixed time step dt (s).
// The implicit matrix (C/dt + A) is factorized once per step size.
func NewTransientSystem(a *sparse.CSR, b, caps []float64, dt float64) (*TransientSystem, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: time step %g must be positive", dt)
	}
	if len(b) != a.N || len(caps) != a.N {
		return nil, fmt.Errorf("thermal: transient dimension mismatch")
	}
	ts := &TransientSystem{A: a, B: b, Cap: caps, dt: dt, work: make([]float64, a.N)}
	bld := sparse.NewBuilder(a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			bld.Add(i, a.Cols[k], a.Vals[k])
		}
		bld.Add(i, i, caps[i]/dt)
	}
	ts.lhs = bld.Build()
	ts.pre = solver.BestPrecond(ts.lhs)
	return ts, nil
}

// Step advances the temperature field in place by one time step:
// (C/dt + A) T_{n+1} = C/dt T_n + b.
func (ts *TransientSystem) Step(t []float64) error {
	if len(t) != ts.A.N {
		return fmt.Errorf("thermal: field has %d entries, want %d", len(t), ts.A.N)
	}
	for i := range ts.work {
		ts.work[i] = ts.Cap[i]/ts.dt*t[i] + ts.B[i]
	}
	_, err := solver.SolveGeneral(ts.lhs, ts.work, t, solver.Options{
		Tol: 1e-10, MaxIter: 20 * ts.A.N, Precond: ts.pre, Restart: 60,
	})
	return err
}

// Run advances n steps, invoking observe (if non-nil) after each step
// with the elapsed time and current field.
func (ts *TransientSystem) Run(t []float64, n int, observe func(elapsed float64, t []float64)) error {
	for s := 1; s <= n; s++ {
		if err := ts.Step(t); err != nil {
			return fmt.Errorf("thermal: transient step %d: %w", s, err)
		}
		if observe != nil {
			observe(float64(s)*ts.dt, t)
		}
	}
	return nil
}
