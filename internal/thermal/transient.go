package thermal

import (
	"fmt"
	"math"
	"time"

	"lcn3d/internal/faults"
	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
)

// TransientSystem integrates C dT/dt = b(s) - A(s)·T with backward Euler,
// the transient extension the paper notes for both models ("it can be
// easily extended to transient one"). Each step solves
//
//	(C/dt + A(s)) T_{n+1} = C/dt·T_n + b(s) [+ q]
//
// through the same machinery the steady probes use: the affine
// static/flow split A(s) = S + s·F (so the pump pressure is a value
// rewrite, not a reassembly), the multigrid/ILU preconditioner routing,
// the escalation ladder, and the NaN/Inf guards. The implicit matrix is
// factorized exactly once per (dt, s) segment — SetDt folds a new C/dt
// into the diagonal in place and SetScale only moves the affine shift —
// so a trace of hundreds of steps pays for one preconditioner per
// segment and one linear solve per step, each warm-started from the
// previous field.
//
// Step is safe for concurrent use; steps on one system serialize.
type TransientSystem struct {
	// A, B and Cap are the legacy view kept for existing callers. B is
	// live: the stepper reads it at every step, so callers (internal/dtm)
	// may rewrite it in place between steps to vary the heat sources. On
	// the Factored construction path A is nil and B aliases the static
	// RHS only while the system is solved in assembly order (always,
	// unless RCM renumbering was enabled).
	A   *sparse.CSR
	B   []float64
	Cap []float64 // per-node heat capacity, J/K (assembly order)

	f     *Factored
	dt    float64
	scale float64 // current affine shift s (the pump pressure, Pa)

	diag     []int     // value-array index of each row's diagonal
	baseDiag []float64 // static diagonal before the +C/dt fold (internal order)
	capInt   []float64 // heat capacities in the internal ordering
	src      []float64 // extra source RHS (internal order), nil when unset

	tInt, xInt, diagWork []float64 // scratch

	steps    int // completed Step calls
	segments int // distinct (dt, s) segments entered
}

// TransientStats reports how much work a trace did and how well the
// factorization amortized across it: Steps solves rode on Segments
// matrix factorizations (one per distinct (dt, s) pair), with the
// embedded FactorStats carrying the solver-side counters.
type TransientStats struct {
	Steps    int
	Segments int
	FactorStats
}

// NewTransientSystem prepares a stepper from an already materialized
// system matrix with a fixed time step dt (s). The matrix is treated as
// pressure-independent (the affine slope is empty); use
// Factored.Transient to keep the pump pressure adjustable mid-trace.
// b is aliased, not copied: callers may rewrite it in place between
// steps to vary the heat sources (internal/dtm does).
func NewTransientSystem(a *sparse.CSR, b, caps []float64, dt float64) (*TransientSystem, error) {
	if len(b) != a.N || len(caps) != a.N {
		return nil, fmt.Errorf("thermal: transient dimension mismatch")
	}
	s := sparse.WithDiagonal(a)
	empty := &sparse.CSR{N: a.N, RowPtr: make([]int, a.N+1)}
	pair, err := sparse.NewAffinePair(s, empty)
	if err != nil {
		return nil, err
	}
	f := &Factored{
		pair:      pair,
		staticRHS: b, // aliased on purpose: see the doc comment
		flowRHS:   make([]float64, a.N),
		rhs:       make([]float64, a.N),
		preIters:  -1,
	}
	ts, err := newTransient(f, caps, dt, 0)
	if err != nil {
		return nil, err
	}
	ts.A = a
	ts.B = b
	return ts, nil
}

// Transient compiles an implicit-Euler stepper that shares this factored
// system's compiled pattern, static/flow RHS split, renumbering, coarse
// map, and solve tolerance. caps are per-node heat capacities (J/K) in
// the model's assembly order, psys the initial pump pressure (the affine
// shift), dt the time step (s). The stepper owns a private copy of the
// system, so steady probes on f continue unaffected.
func (f *Factored) Transient(caps []float64, dt, psys float64) (*TransientSystem, error) {
	f.mu.Lock()
	n := f.N()
	um := f.pair.Matrix()
	sM := &sparse.CSR{N: n, RowPtr: um.RowPtr, Cols: um.Cols, Vals: f.pair.Base()}
	fM := &sparse.CSR{N: n, RowPtr: um.RowPtr, Cols: um.Cols, Vals: f.pair.Slope()}
	// NewAffinePair copies its inputs, so sharing the union arrays here is
	// safe; WithDiagonal only copies when a diagonal slot is missing.
	pair, err := sparse.NewAffinePair(sparse.WithDiagonal(sM), fM)
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	tf := &Factored{
		pair:      pair,
		perm:      f.perm,
		iperm:     f.iperm,
		agg:       f.agg,
		nAgg:      f.nAgg,
		staticRHS: append([]float64(nil), f.staticRHS...),
		flowRHS:   append([]float64(nil), f.flowRHS...),
		rhs:       make([]float64, n),
		scheme:    f.scheme,
		preIters:  -1,
		tol:       f.tol,
	}
	f.mu.Unlock()
	pair.SetShift(psys)
	ts, err := newTransient(tf, append([]float64(nil), caps...), dt, psys)
	if err != nil {
		return nil, err
	}
	if tf.perm == nil {
		ts.B = tf.staticRHS
	}
	return ts, nil
}

// newTransient wires a stepper around a Factored the stepper owns
// exclusively. caps are in the assembly order; psys is the initial shift.
func newTransient(f *Factored, caps []float64, dt, psys float64) (*TransientSystem, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: time step %g must be positive", dt)
	}
	if psys < 0 || notFinite(psys) {
		return nil, fmt.Errorf("thermal: transient pressure %g must be finite and non-negative", psys)
	}
	n := f.N()
	if len(caps) != n {
		return nil, fmt.Errorf("thermal: transient dimension mismatch")
	}
	diag, err := f.pair.Matrix().DiagIndices()
	if err != nil {
		return nil, fmt.Errorf("thermal: transient: %w", err)
	}
	capInt := make([]float64, n)
	if f.perm != nil {
		sparse.PermuteVec(capInt, caps, f.perm)
	} else {
		copy(capInt, caps)
	}
	base := f.pair.Base()
	baseDiag := make([]float64, n)
	for i, k := range diag {
		baseDiag[i] = base[k]
	}
	ts := &TransientSystem{
		Cap: caps, f: f, dt: dt, scale: psys,
		diag: diag, baseDiag: baseDiag, capInt: capInt,
		tInt: make([]float64, n), xInt: make([]float64, n),
		diagWork: make([]float64, n),
		segments: 1,
	}
	ts.foldDt()
	return ts, nil
}

// foldDt rewrites the pair's base diagonal to (static diagonal + C/dt)
// in place under the current shift — the only part of the LHS that
// depends on the time step.
func (ts *TransientSystem) foldDt() {
	for i := range ts.diagWork {
		ts.diagWork[i] = ts.baseDiag[i] + ts.capInt[i]/ts.dt
	}
	ts.f.pair.SetBaseAt(ts.diag, ts.diagWork)
}

// Dt returns the current time step.
func (ts *TransientSystem) Dt() float64 {
	ts.f.mu.Lock()
	defer ts.f.mu.Unlock()
	return ts.dt
}

// Scale returns the current affine shift (pump pressure, Pa).
func (ts *TransientSystem) Scale() float64 {
	ts.f.mu.Lock()
	defer ts.f.mu.Unlock()
	return ts.scale
}

// N returns the system size.
func (ts *TransientSystem) N() int { return ts.f.N() }

// SetDt changes the time step, refreshing the C/dt diagonal in place —
// no pattern work and no full LHS rebuild; only the preconditioner is
// invalidated, so the new (dt, s) segment refactorizes exactly once on
// its first step.
func (ts *TransientSystem) SetDt(dt float64) error {
	if dt <= 0 || notFinite(dt) {
		return fmt.Errorf("thermal: time step %g must be positive", dt)
	}
	f := ts.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if dt == ts.dt {
		return nil
	}
	ts.dt = dt
	ts.foldDt()
	ts.invalidatePrecondLocked()
	ts.segments++
	return nil
}

// SetScale changes the pump pressure (the affine shift s). The matrix
// values rematerialize lazily on the next step; whether the
// preconditioner survives follows the same drift window the steady
// probes use, so small pressure moves (pump ramps) reuse it and decade
// jumps refactorize.
func (ts *TransientSystem) SetScale(s float64) error {
	if s < 0 || notFinite(s) {
		return fmt.Errorf("thermal: transient pressure %g must be finite and non-negative", s)
	}
	f := ts.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if s == ts.scale {
		return nil
	}
	ts.scale = s
	ts.segments++
	return nil
}

// SetSourceDelta adds delta (assembly order, W) to the right-hand side
// of every subsequent step, on top of the compiled b(s). Power schedules
// are RHS-only: changing them costs one vector copy and never a
// factorization. A nil delta clears the term.
func (ts *TransientSystem) SetSourceDelta(delta []float64) error {
	f := ts.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if delta == nil {
		ts.src = nil
		return nil
	}
	if len(delta) != f.N() {
		return fmt.Errorf("thermal: source delta has %d entries, want %d", len(delta), f.N())
	}
	if ts.src == nil {
		ts.src = make([]float64, f.N())
	}
	if f.perm != nil {
		sparse.PermuteVec(ts.src, delta, f.perm)
	} else {
		copy(ts.src, delta)
	}
	return nil
}

// invalidatePrecondLocked drops every structure compiled from the old
// base values: the ILU factorization, the multigrid hierarchy (its
// Galerkin coarse base was projected from the pre-SetDt diagonal), and
// the warm-field cache. Callers hold f.mu.
func (ts *TransientSystem) invalidatePrecondLocked() {
	f := ts.f
	f.pre = nil
	f.preIters = -1
	f.usingMG = false
	f.mg.Store(nil)
	f.warm = nil
}

// Step advances the temperature field in place by one implicit-Euler
// step, warm-started from the previous field and escalated through the
// same solve ladder as the steady probes. The field is guarded on both
// sides: a non-finite input is rejected before the solve, and a
// non-finite result never reaches the caller.
func (ts *TransientSystem) Step(t []float64) error {
	f := ts.f
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.N()
	if len(t) != n {
		return fmt.Errorf("thermal: field has %d entries, want %d", len(t), n)
	}
	if !finiteField(t) {
		return fmt.Errorf("thermal: transient field is not finite before the step")
	}
	if faults.Fire(faults.TransientSlow) {
		time.Sleep(faults.Delay())
	}

	tin := ts.tInt
	if f.perm != nil {
		sparse.PermuteVec(tin, t, f.perm)
	} else {
		copy(tin, t)
	}

	// Materialize A(s) if the shift moved, and compose the step RHS:
	// b(s) + C/dt·T_n (+ the schedule's source delta).
	t0 := time.Now()
	if f.pair.Shift() != ts.scale {
		f.pair.SetShift(ts.scale)
	}
	idt := 1 / ts.dt
	for i := 0; i < n; i++ {
		f.rhs[i] = f.staticRHS[i] + ts.scale*f.flowRHS[i] + ts.capInt[i]*idt*tin[i]
	}
	if ts.src != nil {
		for i := range f.rhs {
			f.rhs[i] += ts.src[i]
		}
	}
	f.ctrProbes.Add(1)
	f.ctrAssemblyNS.Add(time.Since(t0).Nanoseconds())

	mat := f.pair.Matrix()
	freshPre := false
	mgActive := f.routePrecond(ts.scale)
	if !mgActive {
		if f.pre == nil || f.usingMG || scaleDistance(ts.scale, f.preScale) > precondMaxDrift {
			f.buildPrecond(mat, ts.scale)
			freshPre = true
		}
	}
	f.usingMG = mgActive
	tol := f.tol
	if tol <= 0 {
		tol = defaultSolveTol
	}
	maxIter := 40 * n
	if mgActive && maxIter > mgMaxIter {
		maxIter = mgMaxIter
	}
	opt := solver.Options{Tol: tol, MaxIter: maxIter, Precond: f.pre, Restart: 80}

	// Every step warm-starts from the physical state — the previous
	// field is both the best available guess and the only cold-start
	// fallback that makes sense mid-trace.
	x := ts.xInt
	copy(x, tin)
	f.ctrWarmStarts.Add(1)
	cold := func() { copy(x, tin) }
	res, rung, err := f.escalate(mat, f.rhs, x, ts.scale, opt, freshPre, mgActive, cold)
	f.ctrSolveIters.Add(int64(res.Iterations))
	if err != nil {
		return fmt.Errorf("thermal: transient step failed at rung %v: %w (res %.3g)", rung, err, res.Residual)
	}
	if rung.Degraded() {
		f.ctrDegraded.Add(1)
	}
	if faults.Fire(faults.TransientNaN) {
		x[0] = math.NaN()
	}
	if !finiteField(x) {
		return fmt.Errorf("thermal: non-finite temperature field after transient step: %w", solver.ErrBreakdown)
	}
	// No regression-triggered preconditioner churn here: a (dt, s)
	// segment is factorized exactly once, and iteration drift inside a
	// segment escalates through the ladder instead of rebuilding.
	if f.preIters < 0 && res.Iterations > 0 {
		f.preIters = res.Iterations
	}

	if f.perm != nil {
		sparse.PermuteVec(t, x, f.iperm)
	} else {
		copy(t, x)
	}
	ts.steps++
	return nil
}

// Run advances n steps, invoking observe (if non-nil) after each step
// with the elapsed time and current field.
func (ts *TransientSystem) Run(t []float64, n int, observe func(elapsed float64, t []float64)) error {
	for s := 1; s <= n; s++ {
		if err := ts.Step(t); err != nil {
			return fmt.Errorf("thermal: transient step %d: %w", s, err)
		}
		if observe != nil {
			observe(float64(s)*ts.Dt(), t)
		}
	}
	return nil
}

// Stats snapshots the trace counters alongside the underlying solver
// counters. The acceptance bar for the factorization amortization is
// PrecondBuilds == Segments on the ILU path (strictly fewer when
// neighboring segments fall inside the preconditioner drift window).
func (ts *TransientSystem) Stats() TransientStats {
	ts.f.mu.Lock()
	st := TransientStats{Steps: ts.steps, Segments: ts.segments}
	ts.f.mu.Unlock()
	st.FactorStats = ts.f.Stats()
	return st
}
