// Package flow solves the laminar coolant-distribution problem of paper
// Section 2.1: Hagen-Poiseuille conductances between adjacent liquid
// cells, volume conservation at every cell, Dirichlet pressures P_sys at
// the inlets and 0 at the outlets, giving the sparse SPD system
// G·P = Q_in (Eq. (3)). Local flow rates follow from Eq. (1).
package flow

import (
	"fmt"
	"math"
	"sync/atomic"

	"lcn3d/internal/faults"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/solver"
	"lcn3d/internal/sparse"
	"lcn3d/internal/units"
)

// rcmMinSize gates the optional bandwidth-reducing renumbering: below
// it the pressure system fits in cache in any ordering.
const rcmMinSize = 1024

// renumberEnabled mirrors thermal.SetRenumbering for the pressure
// systems. Off by default for the same measured reason: the row-major
// cell ordering is already banded at the grid cross-section, and the
// IC/ILU preconditioner quality tracks the physical ordering. The
// machinery stays available for dense networks large enough that SpMV
// locality dominates.
var renumberEnabled atomic.Bool

// SetRenumbering enables or disables RCM renumbering of subsequently
// solved large pressure systems.
func SetRenumbering(on bool) { renumberEnabled.Store(on) }

// GetRenumbering reports whether RCM renumbering is enabled.
func GetRenumbering() bool { return renumberEnabled.Load() }

// Geometry carries the channel-layer physical parameters.
type Geometry struct {
	Pitch         float64 // basic cell pitch, m
	ChannelWidth  float64 // w_c, m
	ChannelHeight float64 // h_c, m
	Coolant       units.Coolant
	// EdgeFactor derates the inlet/outlet conductance relative to a
	// half-pitch duct segment, modeling entrance/exit losses (the paper
	// notes g_fluid,edge is smaller than the cell-to-cell conductance).
	// Zero means the default 0.4, which makes g_edge = 0.8 * g_cell.
	EdgeFactor float64
}

func (g Geometry) withDefaults() Geometry {
	if g.EdgeFactor == 0 {
		g.EdgeFactor = 0.4
	}
	if g.Coolant.Name == "" {
		g.Coolant = units.Water
	}
	return g
}

// CellConductance returns the fluid conductance between two adjacent
// liquid cells.
func (g Geometry) CellConductance() float64 {
	return units.FluidConductance(g.ChannelWidth, g.ChannelHeight, g.Pitch, g.Coolant.Mu)
}

// EdgeConductance returns the fluid conductance between a boundary liquid
// cell and its inlet/outlet opening.
func (g Geometry) EdgeConductance() float64 {
	gg := g.withDefaults()
	return gg.EdgeFactor * units.FluidConductance(g.ChannelWidth, g.ChannelHeight, g.Pitch/2, g.Coolant.Mu)
}

// Solution is a solved pressure/flow field.
type Solution struct {
	Net  *network.Network
	Geom Geometry
	Psys float64

	Pressure []float64 // per basic cell; 0 for solid or excluded cells
	Active   []bool    // liquid cells included in the solve

	// QEast[i] / QNorth[i] are the signed volumetric flows leaving cell i
	// toward its east / north neighbor (m^3/s, positive eastward /
	// northward). West/south flows are the negated neighbor entries.
	QEast, QNorth []float64

	QIn  []float64 // inflow from inlet ports at each boundary cell (>= 0)
	QOut []float64 // outflow to outlet ports at each boundary cell (>= 0)

	Qsys  float64 // total system flow rate, m^3/s
	Rsys  float64 // system fluid resistance P_sys/Q_sys, Pa*s/m^3
	Wpump float64 // pumping power P_sys*Q_sys, W (η omitted, see paper)

	SolveIters int
	// Rung is the escalation-ladder rung that produced the pressure
	// field (see solver.Rung); Degraded marks solutions that needed any
	// fallback from the primary CG solve.
	Rung     solver.Rung
	Degraded bool
}

// Solve computes the pressure and flow field for the network under the
// given system pressure drop.
func Solve(net *network.Network, geom Geometry, psys float64) (*Solution, error) {
	if psys < 0 {
		return nil, fmt.Errorf("flow: negative system pressure %g", psys)
	}
	geom = geom.withDefaults()
	d := net.Dims
	s := &Solution{
		Net: net, Geom: geom, Psys: psys,
		Pressure: make([]float64, d.N()),
		Active:   make([]bool, d.N()),
		QEast:    make([]float64, d.N()),
		QNorth:   make([]float64, d.N()),
		QIn:      make([]float64, d.N()),
		QOut:     make([]float64, d.N()),
	}

	// Components that touch at least one port have a well-posed pressure;
	// fully enclosed components are excluded (stagnant, P := 0).
	labels, num := net.Components()
	touched := make([]bool, num)
	inlets := net.PortCells(network.Inlet)
	outlets := net.PortCells(network.Outlet)
	for _, i := range inlets {
		touched[labels[i]] = true
	}
	for _, i := range outlets {
		touched[labels[i]] = true
	}
	idx := make([]int, d.N()) // cell -> unknown index or -1
	var cells []int           // unknown -> cell
	for i := range idx {
		idx[i] = -1
		if labels[i] >= 0 && touched[labels[i]] {
			idx[i] = len(cells)
			cells = append(cells, i)
			s.Active[i] = true
		}
	}
	if len(cells) == 0 {
		return s, nil // no flowing liquid at all
	}

	// Per-edge conductances: for uniform channels both halves equal the
	// nominal half-cell conductance, so the series combination reduces to
	// geom.CellConductance(). With width modulation each half uses the
	// local channel width (GreenCool-style baselines; see network/width.go).
	geHalf := geom.EdgeFactor
	halfG := func(i int) float64 {
		x, y := d.Coord(i)
		w := net.WidthAt(x, y, geom.ChannelWidth)
		return units.FluidConductance(w, geom.ChannelHeight, geom.Pitch/2, geom.Coolant.Mu)
	}
	gE := make([]float64, d.N()) // conductance to the east neighbor
	gN := make([]float64, d.N()) // conductance to the north neighbor
	edgeG := make([]float64, d.N())
	for _, i := range cells {
		edgeG[i] = geHalf * halfG(i)
	}

	b := sparse.NewBuilder(len(cells))
	rhs := make([]float64, len(cells))
	for u, i := range cells {
		x, y := d.Coord(i)
		// East and north neighbors stamp the symmetric pair once.
		d.Neighbors4(x, y, func(nx, ny int, dir grid.Dir) {
			if dir != grid.East && dir != grid.North {
				return
			}
			j := d.Index(nx, ny)
			if v := idx[j]; v >= 0 {
				g := units.SeriesG(halfG(i), halfG(j))
				if dir == grid.East {
					gE[i] = g
				} else {
					gN[i] = g
				}
				b.AddSym(u, v, g)
			}
		})
	}
	// Port attachments (Dirichlet via edge conductance).
	addPort := func(cellIdx []int, pressure float64) {
		for _, i := range cellIdx {
			u := idx[i]
			if u < 0 {
				continue
			}
			b.Add(u, u, edgeG[i])
			rhs[u] += edgeG[i] * pressure
		}
	}
	addPort(inlets, psys)
	addPort(outlets, 0)

	m := b.Build()
	p := make([]float64, len(cells))
	iters, err := solveMaybeRenumbered(m, rhs, p, psys, s)
	if err != nil {
		return nil, err
	}
	s.SolveIters = iters

	for u, i := range cells {
		s.Pressure[i] = p[u]
	}
	// Local flow rates (Eq. (1)) and port flows.
	for _, i := range cells {
		x, y := d.Coord(i)
		if x+1 < d.NX {
			j := d.Index(x+1, y)
			if s.Active[j] {
				s.QEast[i] = gE[i] * (s.Pressure[i] - s.Pressure[j])
			}
		}
		if y+1 < d.NY {
			j := d.Index(x, y+1)
			if s.Active[j] {
				s.QNorth[i] = gN[i] * (s.Pressure[i] - s.Pressure[j])
			}
		}
	}
	for _, i := range inlets {
		if s.Active[i] {
			s.QIn[i] += edgeG[i] * (psys - s.Pressure[i])
		}
	}
	for _, i := range outlets {
		if s.Active[i] {
			s.QOut[i] += edgeG[i] * s.Pressure[i]
		}
	}
	for i := range s.QIn {
		s.Qsys += s.QIn[i]
	}
	if s.Qsys > 0 {
		s.Rsys = psys / s.Qsys
	} else {
		s.Rsys = math.Inf(1)
	}
	s.Wpump = psys * s.Qsys
	return s, nil
}

// solveMaybeRenumbered wraps solvePressure with the optional RCM
// renumbering: for large systems (when enabled) it solves in a
// bandwidth-reduced ordering and scatters the pressures back, keeping
// the renumbering only when it actually narrows the band. The permuted
// solve is the same SPD system with relabeled unknowns, so the rung and
// degradation accounting on s is unchanged.
func solveMaybeRenumbered(m *sparse.CSR, rhs, p []float64, psys float64, s *Solution) (int, error) {
	if !renumberEnabled.Load() || m.N < rcmMinSize {
		return solvePressure(m, rhs, p, psys, s)
	}
	perm := sparse.RCM(m)
	if sparse.PermutedBandwidth(m, perm) >= sparse.Bandwidth(m) {
		return solvePressure(m, rhs, p, psys, s)
	}
	pm := sparse.PermuteCSR(m, perm)
	prhs := make([]float64, len(rhs))
	sparse.PermuteVec(prhs, rhs, perm)
	pp := make([]float64, len(p))
	iters, err := solvePressure(pm, prhs, pp, psys, s)
	if err != nil {
		return iters, err
	}
	sparse.PermuteVec(p, pp, sparse.InversePerm(perm))
	return iters, nil
}

// solvePressure runs the pressure solve through the solver escalation
// ladder: CG (the normal method for this SPD system), then BiCGSTAB from
// a cold restart, then restarted GMRES, then dense LU for systems up to
// solver.DenseFallbackMax. Any fallback from CG is abnormal for an SPD
// system, so every rung past the primary marks the solution degraded.
// It records the winning rung on s and returns the total iteration count
// across rungs.
func solvePressure(m *sparse.CSR, rhs, p []float64, psys float64, s *Solution) (int, error) {
	opt := solver.Options{Tol: 1e-11, MaxIter: 20 * len(p), Precond: solver.BestPrecond(m)}
	// Start from psys/2 everywhere, which halves iterations on typical
	// networks relative to a zero guess.
	coldStart := func() {
		for i := range p {
			p[i] = psys / 2
		}
	}
	check := func(res solver.Result, err error) error {
		if err != nil {
			return err
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("flow: non-finite pressure field: %w", solver.ErrBreakdown)
			}
		}
		return nil
	}

	coldStart()
	rung := solver.RungPrimary
	var total int
	var res solver.Result
	var err error
	if faults.Fire(faults.FlowBreakdown) {
		err = solver.ErrBreakdown
	} else {
		res, err = solver.CG(m, rhs, p, opt)
		total += res.Iterations
		err = check(res, err)
	}
	if err != nil {
		rung = solver.RungRetry
		coldStart()
		res, err = solver.BiCGSTAB(m, rhs, p, opt)
		total += res.Iterations
		err = check(res, err)
	}
	if err != nil {
		rung = solver.RungGMRES
		coldStart()
		res, err = solver.GMRES(m, rhs, p, opt)
		total += res.Iterations
		err = check(res, err)
	}
	if err != nil && len(p) <= solver.DenseFallbackMax {
		rung = solver.RungDense
		if x, derr := solver.DenseSolve(m, rhs); derr == nil {
			copy(p, x)
			// NaN compares false, so a poisoned dense result fails too.
			if r := solver.RelResidual(m, rhs, p); r <= math.Sqrt(opt.Tol) {
				err = nil
			}
		}
	}
	if err != nil {
		return total, fmt.Errorf("flow: pressure solve failed at rung %v: %w (res %.3g)", rung, err, res.Residual)
	}
	s.Rung = rung
	s.Degraded = rung > solver.RungPrimary
	return total, nil
}

// Q returns the signed flow leaving cell (x, y) in the given direction.
func (s *Solution) Q(x, y int, dir grid.Dir) float64 {
	d := s.Net.Dims
	i := d.Index(x, y)
	switch dir {
	case grid.East:
		return s.QEast[i]
	case grid.North:
		return s.QNorth[i]
	case grid.West:
		if x == 0 {
			return 0
		}
		return -s.QEast[d.Index(x-1, y)]
	case grid.South:
		if y == 0 {
			return 0
		}
		return -s.QNorth[d.Index(x, y-1)]
	}
	panic("flow: bad direction")
}

// NetOutflow returns the total signed flow leaving cell (x, y) including
// port flows; it is ~0 for every liquid cell by volume conservation.
func (s *Solution) NetOutflow(x, y int) float64 {
	i := s.Net.Dims.Index(x, y)
	var sum float64
	for dir := grid.Dir(0); dir < grid.NumDirs; dir++ {
		sum += s.Q(x, y, dir)
	}
	return sum + s.QOut[i] - s.QIn[i]
}

// TotalOutflow sums all outlet flows (== Qsys by conservation).
func (s *Solution) TotalOutflow() float64 {
	var t float64
	for _, q := range s.QOut {
		t += q
	}
	return t
}

// SpeedField returns the coolant speed magnitude per basic cell (m/s),
// averaging the four face flows — useful for flow-map visualization.
// Solid cells read zero.
func (s *Solution) SpeedField() []float64 {
	d := s.Net.Dims
	area := s.Geom.ChannelWidth * s.Geom.ChannelHeight
	out := make([]float64, d.N())
	for i, active := range s.Active {
		if !active {
			continue
		}
		x, y := d.Coord(i)
		var sum float64
		var n int
		for dir := grid.Dir(0); dir < grid.NumDirs; dir++ {
			if q := s.Q(x, y, dir); q != 0 {
				sum += math.Abs(q)
				n++
			}
		}
		sum += s.QIn[i] + s.QOut[i]
		if s.QIn[i] > 0 {
			n++
		}
		if s.QOut[i] > 0 {
			n++
		}
		if n > 0 {
			// Each unit of through-flow is counted on entry and exit.
			out[i] = sum / 2 / area
		}
	}
	return out
}

// MaxReynolds returns the largest cell Reynolds number in the field,
// used to validate the laminar-flow assumption.
func (s *Solution) MaxReynolds(rho float64) float64 {
	var mx float64
	for i := range s.QEast {
		for _, q := range []float64{s.QEast[i], s.QNorth[i]} {
			if q == 0 {
				continue
			}
			re := units.ReynoldsNumber(s.Geom.Coolant, rho, q, s.Geom.ChannelWidth, s.Geom.ChannelHeight)
			if re > mx {
				mx = re
			}
		}
	}
	return mx
}
