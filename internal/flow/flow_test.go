package flow

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/units"
)

var geo = Geometry{
	Pitch:         100e-6,
	ChannelWidth:  100e-6,
	ChannelHeight: 200e-6,
	Coolant:       units.Water,
}

func solveOrDie(t *testing.T, n *network.Network, psys float64) *Solution {
	t.Helper()
	s, err := Solve(n, geo, psys)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleStraightChannelMatchesClosedForm(t *testing.T) {
	// One straight channel of L cells between an inlet and an outlet:
	// R = (L-1)/g_cell + 2/g_edge, Q = P/R exactly.
	d := grid.Dims{NX: 21, NY: 1}
	n := network.NewFree(d)
	for x := 0; x < d.NX; x++ {
		n.SetLiquid(x, 0, true)
	}
	n.AddPort(grid.SideWest, network.Inlet, 0, 0)
	n.AddPort(grid.SideEast, network.Outlet, 0, 0)
	psys := 10e3
	s := solveOrDie(t, n, psys)

	gc := geo.CellConductance()
	ge := geo.EdgeConductance()
	r := float64(d.NX-1)/gc + 2/ge
	wantQ := psys / r
	if math.Abs(s.Qsys-wantQ) > 1e-9*wantQ {
		t.Fatalf("Qsys = %g, want %g", s.Qsys, wantQ)
	}
	if math.Abs(s.Rsys-r) > 1e-9*r {
		t.Fatalf("Rsys = %g, want %g", s.Rsys, r)
	}
	if math.Abs(s.Wpump-psys*wantQ) > 1e-9*psys*wantQ {
		t.Fatalf("Wpump = %g", s.Wpump)
	}
}

func TestParallelChannelsSplitEvenly(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Straight(d, grid.SideWest, 1)
	s := solveOrDie(t, n, 5e3)
	// 11 identical channels: each carries Qsys/11 and QIn must be equal.
	var qs []float64
	for y := 0; y < d.NY; y += 2 {
		qs = append(qs, s.QIn[d.Index(0, y)])
	}
	for _, q := range qs {
		if math.Abs(q-qs[0]) > 1e-9*qs[0] {
			t.Fatalf("unequal channel flows: %v", qs)
		}
	}
	if math.Abs(s.Qsys-11*qs[0]) > 1e-9*s.Qsys {
		t.Fatalf("Qsys %g != 11 * %g", s.Qsys, qs[0])
	}
}

func TestVolumeConservationEverywhere(t *testing.T) {
	d := grid.Dims{NX: 51, NY: 51}
	tr, err := network.Tree(d, network.UniformTreeSpec(d, 3, network.Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	s := solveOrDie(t, tr, 20e3)
	scale := s.Qsys / float64(tr.NumLiquid())
	for i, active := range s.Active {
		if !active {
			continue
		}
		x, y := d.Coord(i)
		if out := s.NetOutflow(x, y); math.Abs(out) > 1e-6*s.Qsys && math.Abs(out) > 1e-3*scale {
			t.Fatalf("conservation violated at (%d,%d): %g (Qsys %g)", x, y, out, s.Qsys)
		}
	}
	if math.Abs(s.TotalOutflow()-s.Qsys) > 1e-6*s.Qsys {
		t.Fatalf("inflow %g != outflow %g", s.Qsys, s.TotalOutflow())
	}
}

func TestPressureBounds(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Mesh(d, 1, 2)
	psys := 8e3
	s := solveOrDie(t, n, psys)
	for i, active := range s.Active {
		if !active {
			continue
		}
		if s.Pressure[i] < -1e-6*psys || s.Pressure[i] > psys*(1+1e-6) {
			t.Fatalf("pressure out of [0, Psys] at %d: %g", i, s.Pressure[i])
		}
	}
}

func TestPressureMonotoneAlongChannel(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Straight(d, grid.SideWest, 1)
	s := solveOrDie(t, n, 5e3)
	for x := 1; x < d.NX; x++ {
		if s.Pressure[d.Index(x, 0)] >= s.Pressure[d.Index(x-1, 0)] {
			t.Fatalf("pressure not decreasing at x=%d", x)
		}
	}
}

func TestLinearityInPsys(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Serpentine(d)
	s1 := solveOrDie(t, n, 10e3)
	s2 := solveOrDie(t, n, 20e3)
	if math.Abs(s2.Qsys-2*s1.Qsys) > 1e-8*s2.Qsys {
		t.Fatalf("Q not linear in P: %g vs 2*%g", s2.Qsys, s1.Qsys)
	}
	if math.Abs(s2.Rsys-s1.Rsys) > 1e-8*s1.Rsys {
		t.Fatalf("Rsys should be pressure independent: %g vs %g", s2.Rsys, s1.Rsys)
	}
	// Wpump = Psys^2/Rsys: doubling Psys quadruples Wpump (Eq. (10)).
	if math.Abs(s2.Wpump-4*s1.Wpump) > 1e-8*s2.Wpump {
		t.Fatalf("Wpump not quadratic: %g vs 4*%g", s2.Wpump, s1.Wpump)
	}
}

func TestStagnantComponentExcluded(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Straight(d, grid.SideWest, 2)
	n.SetLiquid(4, 2, true) // isolated pocket
	s := solveOrDie(t, n, 5e3)
	i := d.Index(4, 2)
	if s.Active[i] {
		t.Fatal("isolated pocket should be excluded from the solve")
	}
	if s.Pressure[i] != 0 || s.QEast[i] != 0 {
		t.Fatal("excluded cell should have zero pressure/flow")
	}
}

func TestZeroPressureGivesZeroFlow(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Straight(d, grid.SideWest, 1)
	s := solveOrDie(t, n, 0)
	if s.Qsys != 0 || s.Wpump != 0 {
		t.Fatalf("Qsys=%g Wpump=%g at zero pressure", s.Qsys, s.Wpump)
	}
	if !math.IsInf(s.Rsys, 1) {
		t.Fatalf("Rsys should be +Inf at zero flow, got %g", s.Rsys)
	}
}

func TestNegativePressureRejected(t *testing.T) {
	d := grid.Dims{NX: 5, NY: 5}
	if _, err := Solve(network.Straight(d, grid.SideWest, 1), geo, -1); err == nil {
		t.Fatal("negative pressure should be rejected")
	}
}

func TestBenchmarkScaleFlowMatchesPaperBallpark(t *testing.T) {
	// Full 101x101 straight-channel network at the case-1 baseline
	// pressure 12.98 kPa should give Qsys near 0.8 mL/s and Wpump near
	// 10 mW (paper Table 3 baseline row).
	d := grid.Dims{NX: 101, NY: 101}
	n := network.Straight(d, grid.SideWest, 1)
	s := solveOrDie(t, n, 12.98e3)
	if s.Qsys < 5e-7 || s.Qsys > 12e-7 {
		t.Fatalf("Qsys = %g m^3/s, want ~8e-7", s.Qsys)
	}
	if s.Wpump < 6e-3 || s.Wpump > 16e-3 {
		t.Fatalf("Wpump = %g W, want ~1e-2", s.Wpump)
	}
	if re := s.MaxReynolds(998); re > 2300 {
		t.Fatalf("flow not laminar: Re=%g", re)
	}
}

func TestTreeTrunkCarriesLeafSum(t *testing.T) {
	d := grid.Dims{NX: 51, NY: 51}
	tr, err := network.Tree(d, network.UniformTreeSpec(d, 1, network.Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	s := solveOrDie(t, tr, 30e3)
	// All system flow enters through the single trunk root.
	var rootQ float64
	for y := 0; y < d.NY; y++ {
		rootQ += s.QIn[d.Index(0, y)]
	}
	if math.Abs(rootQ-s.Qsys) > 1e-9*s.Qsys {
		t.Fatalf("trunk inflow %g != Qsys %g", rootQ, s.Qsys)
	}
	// And leaves it through 4 leaf outlets.
	count := 0
	for y := 0; y < d.NY; y++ {
		if s.QOut[d.Index(d.NX-1, y)] > 1e-3*s.Qsys {
			count++
		}
	}
	if count != 4 {
		t.Fatalf("flowing leaf outlets = %d, want 4", count)
	}
}

func TestMeshLowerResistanceThanStraight(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	rs := solveOrDie(t, network.Straight(d, grid.SideWest, 1), 1e4).Rsys
	rm := solveOrDie(t, network.Mesh(d, 1, 2), 1e4).Rsys
	if rm >= rs {
		t.Fatalf("mesh Rsys %g should beat straight %g", rm, rs)
	}
}
