package flow

import (
	"math"
	"testing"

	"lcn3d/internal/faults"
	"lcn3d/internal/grid"
	"lcn3d/internal/network"
	"lcn3d/internal/solver"
)

// straightChannel builds the closed-form single-channel network used by
// the analytic flow tests: L liquid cells between an inlet and outlet.
func straightChannel(L int) *network.Network {
	d := grid.Dims{NX: L, NY: 1}
	n := network.NewFree(d)
	for x := 0; x < d.NX; x++ {
		n.SetLiquid(x, 0, true)
	}
	n.AddPort(grid.SideWest, network.Inlet, 0, 0)
	n.AddPort(grid.SideEast, network.Outlet, 0, 0)
	return n
}

// TestFlowEscalationLadder walks the flow ladder rung by rung and checks
// each degraded solution still matches the closed-form flow rate.
func TestFlowEscalationLadder(t *testing.T) {
	const L = 21
	psys := 10e3
	n := straightChannel(L)
	gc := geo.CellConductance()
	ge := geo.EdgeConductance()
	wantQ := psys / (float64(L-1)/gc + 2/ge)
	t.Cleanup(faults.Disarm)

	cases := []struct {
		name     string
		spec     string
		wantRung solver.Rung
	}{
		{"bicgstab", "flow.breakdown=always", solver.RungRetry},
		{"gmres", "flow.breakdown=always;solver.bicgstab.breakdown=always", solver.RungGMRES},
		{"dense", "flow.breakdown=always;solver.bicgstab.breakdown=always;solver.gmres.breakdown=always", solver.RungDense},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := faults.Arm(c.spec); err != nil {
				t.Fatal(err)
			}
			defer faults.Disarm()
			s, err := Solve(n, geo, psys)
			if err != nil {
				t.Fatalf("ladder did not recover: %v", err)
			}
			if s.Rung != c.wantRung {
				t.Fatalf("rung = %v, want %v", s.Rung, c.wantRung)
			}
			if !s.Degraded {
				t.Fatalf("rung %v solution not marked degraded", s.Rung)
			}
			if math.Abs(s.Qsys-wantQ) > 1e-5*wantQ {
				t.Fatalf("degraded Qsys = %g, want %g", s.Qsys, wantQ)
			}
		})
	}

	// Disarmed control: the primary CG path, not degraded.
	s, err := Solve(n, geo, psys)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rung != solver.RungPrimary || s.Degraded {
		t.Fatalf("clean solve rung = %v degraded = %v, want primary/false", s.Rung, s.Degraded)
	}
	if math.Abs(s.Qsys-wantQ) > 1e-9*wantQ {
		t.Fatalf("clean Qsys = %g, want %g", s.Qsys, wantQ)
	}
}
