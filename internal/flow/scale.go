package flow

import "math"

// ScaleTo returns a copy of the solution rescaled to a different system
// pressure drop. Because the Hagen-Poiseuille model is linear (constant
// conductances), pressures and flow rates scale proportionally with
// P_sys — this lets callers solve the flow problem once per network and
// sweep pressures for free, which the network-evaluation loop of
// Algorithm 3 exploits heavily.
func (s *Solution) ScaleTo(psys float64) *Solution {
	if s.Psys == 0 {
		// A zero-pressure reference carries no information; re-solving is
		// the caller's responsibility. Guarded by Solve using psys=1 refs.
		panic("flow: cannot scale a zero-pressure solution")
	}
	f := psys / s.Psys
	c := &Solution{
		Net: s.Net, Geom: s.Geom, Psys: psys,
		Pressure:   scaled(s.Pressure, f),
		Active:     s.Active,
		QEast:      scaled(s.QEast, f),
		QNorth:     scaled(s.QNorth, f),
		QIn:        scaled(s.QIn, f),
		QOut:       scaled(s.QOut, f),
		Qsys:       s.Qsys * f,
		Rsys:       s.Rsys,
		Wpump:      s.Wpump * f * f,
		SolveIters: 0,
	}
	if c.Qsys == 0 {
		c.Rsys = math.Inf(1)
	}
	return c
}

func scaled(v []float64, f float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * f
	}
	return out
}
