package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
)

// randomNetwork draws one legal network: a random generator family on
// random dims, sometimes with a random keepout rectangle carved through
// it. Illegal draws (a keepout that severs the inlet-outlet path) are
// rejected and redrawn, so every returned network is valid by Check().
func randomNetwork(t *testing.T, rng *rand.Rand) *network.Network {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		d := grid.Dims{NX: 11 + 2*rng.Intn(8), NY: 11 + 2*rng.Intn(8)}
		var n *network.Network
		switch rng.Intn(5) {
		case 0:
			n = network.Straight(d, grid.Side(rng.Intn(4)), 1+rng.Intn(2))
		case 1:
			n = network.Serpentine(d)
		case 2:
			n = network.Mesh(d, 1+rng.Intn(2), 1+rng.Intn(2))
		case 3:
			n = network.Comb(d, 1+rng.Intn(2))
		default:
			typ := network.BranchType(rng.Intn(3))
			trees := 1 + rng.Intn(2)
			var err error
			n, err = network.Tree(d, network.UniformTreeSpec(d, trees, typ,
				0.3+0.2*rng.Float64(), 0.5+0.2*rng.Float64()))
			if err != nil {
				continue
			}
		}
		if rng.Intn(3) == 0 {
			x0, y0 := 1+rng.Intn(d.NX/3), 1+rng.Intn(d.NY/3)
			network.CarveKeepout(n, x0, y0, x0+1+rng.Intn(d.NX/3), y0+1+rng.Intn(d.NY/3))
		}
		if len(n.Check()) == 0 {
			return n
		}
	}
	t.Fatal("no legal random network in 100 attempts")
	return nil
}

// TestFlowConservesVolume is the property test of the flow solver: for
// randomized valid networks at several system pressures, the pressure
// solve must conserve volume — net inflow equals net outflow globally,
// and every interior cell balances — to within 1e-9 of the system flow.
func TestFlowConservesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	pressures := []float64{500, 5e3, 50e3, 500e3}
	for draw := 0; draw < 12; draw++ {
		n := randomNetwork(t, rng)
		t.Run(fmt.Sprintf("net%02d_%dx%d", draw, n.Dims.NX, n.Dims.NY), func(t *testing.T) {
			for _, psys := range pressures {
				s := solveOrDie(t, n, psys)
				if s.Qsys <= 0 {
					t.Fatalf("psys=%g: no flow (Qsys=%g)", psys, s.Qsys)
				}
				tol := 1e-9 * s.Qsys

				// Global balance: what the inlets push in must leave
				// through the outlets.
				if d := math.Abs(s.TotalOutflow() - s.Qsys); d > tol {
					t.Errorf("psys=%g: |Qout-Qin| = %g > %g", psys, d, tol)
				}

				// Local balance at every liquid cell: boundary cells
				// include their port flows via NetOutflow.
				worst, wx, wy := 0.0, -1, -1
				for y := 0; y < n.Dims.NY; y++ {
					for x := 0; x < n.Dims.NX; x++ {
						if !n.IsLiquid(x, y) {
							continue
						}
						if r := math.Abs(s.NetOutflow(x, y)); r > worst {
							worst, wx, wy = r, x, y
						}
					}
				}
				if worst > tol {
					t.Errorf("psys=%g: cell (%d,%d) residual %g > %g", psys, wx, wy, worst, tol)
				}
			}
		})
	}
}

// TestFlowScalesLinearly pins the linearity the pressure searches build
// on: Q(k*P) = k*Q(P) for the same network, to solver tolerance.
func TestFlowScalesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := randomNetwork(t, rng)
	base := solveOrDie(t, n, 10e3)
	scaled := solveOrDie(t, n, 70e3)
	if r := relErr(scaled.Qsys, 7*base.Qsys); r > 1e-8 {
		t.Fatalf("Qsys not linear in psys: rel err %g", r)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
