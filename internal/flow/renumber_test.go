package flow

import (
	"math"
	"math/rand"
	"testing"

	"lcn3d/internal/sparse"
)

// scrambledSPD builds a shuffled 2D grid Laplacian (plus a diagonal
// anchor making it SPD) large enough for the renumbering gate, with a
// band wide enough that RCM accepts.
func scrambledSPD(nx, ny int) (*sparse.CSR, []float64) {
	n := nx * ny
	label := rand.New(rand.NewSource(23)).Perm(n)
	b := sparse.NewBuilder(n)
	idx := func(x, y int) int { return label[y*nx+x] }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			b.Add(i, i, 0.1)
			if x+1 < nx {
				b.AddSym(i, idx(x+1, y), 1)
			}
			if y+1 < ny {
				b.AddSym(i, idx(x, y+1), 1)
			}
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1 + float64(i%7)
	}
	return b.Build(), rhs
}

// TestSolveRenumberedMatchesPlain checks the RCM-renumbered pressure
// solve scatters back to the same field the plain ordering produces,
// and that the gate leaves small or already-banded systems alone.
func TestSolveRenumberedMatchesPlain(t *testing.T) {
	m, rhs := scrambledSPD(40, 40) // 1600 unknowns >= rcmMinSize
	const psys = 2.0

	plain := make([]float64, m.N)
	var sPlain Solution
	if _, err := solvePressure(m, rhs, plain, psys, &sPlain); err != nil {
		t.Fatal(err)
	}

	SetRenumbering(true)
	t.Cleanup(func() { SetRenumbering(false) })
	// The scrambled band is near n, so RCM must be accepted here.
	if perm := sparse.RCM(m); sparse.PermutedBandwidth(m, perm) >= sparse.Bandwidth(m) {
		t.Fatal("fixture not scrambled enough: RCM would be rejected")
	}
	ren := make([]float64, m.N)
	var sRen Solution
	if _, err := solveMaybeRenumbered(m, rhs, ren, psys, &sRen); err != nil {
		t.Fatal(err)
	}
	if sRen.Degraded || sRen.Rung != sPlain.Rung {
		t.Fatalf("renumbered solve rung %v (degraded=%v), plain %v", sRen.Rung, sRen.Degraded, sPlain.Rung)
	}
	var mx float64
	for i := range plain {
		if d := math.Abs(plain[i] - ren[i]); d > mx {
			mx = d
		}
	}
	if mx > 1e-8*psys {
		t.Fatalf("renumbered pressures deviate by %g from plain ordering", mx)
	}
}
