package flow

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
	"lcn3d/internal/network"
)

func TestScaleToMatchesDirectSolve(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Mesh(d, 1, 2)
	ref := solveOrDie(t, n, 1)
	scaled := ref.ScaleTo(42e3)
	direct := solveOrDie(t, n, 42e3)

	if math.Abs(scaled.Qsys-direct.Qsys) > 1e-9*direct.Qsys {
		t.Fatalf("Qsys scaled %g vs direct %g", scaled.Qsys, direct.Qsys)
	}
	if math.Abs(scaled.Wpump-direct.Wpump) > 1e-9*direct.Wpump {
		t.Fatalf("Wpump scaled %g vs direct %g", scaled.Wpump, direct.Wpump)
	}
	for i := range scaled.Pressure {
		if math.Abs(scaled.Pressure[i]-direct.Pressure[i]) > 1e-6*(1+direct.Pressure[i]) {
			t.Fatalf("pressure mismatch at %d: %g vs %g", i, scaled.Pressure[i], direct.Pressure[i])
		}
		if math.Abs(scaled.QEast[i]-direct.QEast[i]) > 1e-9*(1+math.Abs(direct.QEast[i])) {
			t.Fatalf("QEast mismatch at %d", i)
		}
	}
}

func TestScaleToZeroGivesInfiniteResistanceGuard(t *testing.T) {
	d := grid.Dims{NX: 11, NY: 11}
	n := network.Straight(d, grid.SideWest, 1)
	ref := solveOrDie(t, n, 1)
	s := ref.ScaleTo(0)
	if s.Qsys != 0 || s.Wpump != 0 {
		t.Fatalf("zero scale should zero flows: %+v", s.Qsys)
	}
	if !math.IsInf(s.Rsys, 1) {
		t.Fatalf("Rsys should be +Inf, got %g", s.Rsys)
	}
}

func TestScaleFromZeroPanics(t *testing.T) {
	d := grid.Dims{NX: 11, NY: 11}
	n := network.Straight(d, grid.SideWest, 1)
	ref := solveOrDie(t, n, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("scaling a zero-pressure solution must panic")
		}
	}()
	ref.ScaleTo(5e3)
}

func TestWidthModulationThrottlesChannel(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := network.Straight(d, grid.SideWest, 1)
	// Narrow channel row 10 to 60% width; its flow must drop relative to
	// the unmodulated solve, and conservation must still hold.
	n.SetUniformWidth(geo.ChannelWidth)
	for x := 0; x < d.NX; x++ {
		n.Width[d.Index(x, 10)] = 0.6 * geo.ChannelWidth
	}
	mod := solveOrDie(t, n, 10e3)
	plain := solveOrDie(t, network.Straight(d, grid.SideWest, 1), 10e3)

	qMod := mod.QIn[d.Index(0, 10)]
	qPlain := plain.QIn[d.Index(0, 10)]
	if qMod >= 0.8*qPlain {
		t.Fatalf("narrowed channel flow %g should drop well below %g", qMod, qPlain)
	}
	// Untouched channels carry slightly more than before (same Psys).
	if mod.QIn[d.Index(0, 0)] < qPlain {
		t.Fatalf("untouched channel should not lose flow")
	}
	for y := 0; y < d.NY; y += 2 {
		for x := 0; x < d.NX; x++ {
			if out := mod.NetOutflow(x, y); math.Abs(out) > 1e-6*mod.Qsys {
				t.Fatalf("conservation violated at (%d,%d): %g", x, y, out)
			}
		}
	}
}

func TestUniformWidthFieldMatchesUnmodulated(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	a := network.Straight(d, grid.SideWest, 1)
	bn := network.Straight(d, grid.SideWest, 1)
	bn.SetUniformWidth(geo.ChannelWidth)
	sa := solveOrDie(t, a, 10e3)
	sb := solveOrDie(t, bn, 10e3)
	if math.Abs(sa.Qsys-sb.Qsys) > 1e-12 {
		t.Fatalf("uniform width field must match unmodulated solve: %g vs %g", sa.Qsys, sb.Qsys)
	}
}
