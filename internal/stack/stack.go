// Package stack describes the vertical composition of a liquid-cooled 3D
// IC: solid layers (bulk silicon, BEOL), active source layers carrying a
// power map, and channel layers where the cooling network is etched.
//
// It also implements the "stack description and floorplan files" that
// Algorithm 1 of the paper takes as input, as a small line-oriented text
// format (see Parse/Format).
package stack

import (
	"fmt"

	"lcn3d/internal/grid"
	"lcn3d/internal/power"
	"lcn3d/internal/units"
)

// LayerKind distinguishes the three layer roles.
type LayerKind int

// Layer kinds.
const (
	Solid   LayerKind = iota // passive solid (bulk silicon, BEOL, lid)
	Source                   // active layer dissipating a power map
	Channel                  // microchannel layer (walls + coolant)
)

func (k LayerKind) String() string {
	switch k {
	case Solid:
		return "solid"
	case Source:
		return "source"
	case Channel:
		return "channel"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// Layer is one horizontal slice of the stack. For Channel layers the
// material is the wall material (silicon) and Thickness is the channel
// height h_c.
type Layer struct {
	Name      string
	Kind      LayerKind
	Thickness float64 // m
	Mat       units.Material
	Power     *power.Map // Source layers only
}

// Stack is a full chip description: grid, geometry, coolant, and layers
// ordered bottom to top.
type Stack struct {
	Dims         grid.Dims
	Pitch        float64 // basic cell pitch, m (100 µm in the benchmarks)
	ChannelWidth float64 // microchannel width w_c, m
	Coolant      units.Coolant
	TinK         float64 // coolant inlet temperature, K
	Layers       []Layer
}

// SourceLayers returns the indices of the active layers, bottom to top.
func (s *Stack) SourceLayers() []int {
	var out []int
	for i, l := range s.Layers {
		if l.Kind == Source {
			out = append(out, i)
		}
	}
	return out
}

// ChannelLayers returns the indices of the channel layers, bottom to top.
func (s *Stack) ChannelLayers() []int {
	var out []int
	for i, l := range s.Layers {
		if l.Kind == Channel {
			out = append(out, i)
		}
	}
	return out
}

// TotalPower returns the summed die power over all source layers, W.
func (s *Stack) TotalPower() float64 {
	var t float64
	for _, l := range s.Layers {
		if l.Kind == Source && l.Power != nil {
			t += l.Power.Total()
		}
	}
	return t
}

// Validate checks structural consistency.
func (s *Stack) Validate() error {
	if s.Dims.NX < 2 || s.Dims.NY < 2 {
		return fmt.Errorf("stack: grid %v too small", s.Dims)
	}
	if s.Pitch <= 0 {
		return fmt.Errorf("stack: pitch %g must be positive", s.Pitch)
	}
	if s.ChannelWidth <= 0 || s.ChannelWidth > s.Pitch {
		return fmt.Errorf("stack: channel width %g outside (0, pitch=%g]", s.ChannelWidth, s.Pitch)
	}
	if s.TinK <= 0 {
		return fmt.Errorf("stack: inlet temperature %g K invalid", s.TinK)
	}
	if len(s.SourceLayers()) == 0 {
		return fmt.Errorf("stack: no source layer")
	}
	if len(s.ChannelLayers()) == 0 {
		return fmt.Errorf("stack: no channel layer")
	}
	names := make(map[string]bool)
	for i, l := range s.Layers {
		if l.Thickness <= 0 {
			return fmt.Errorf("stack: layer %d (%s) thickness %g invalid", i, l.Name, l.Thickness)
		}
		if l.Mat.K <= 0 {
			return fmt.Errorf("stack: layer %d (%s) has no material", i, l.Name)
		}
		if l.Name == "" {
			return fmt.Errorf("stack: layer %d unnamed", i)
		}
		if names[l.Name] {
			return fmt.Errorf("stack: duplicate layer name %q", l.Name)
		}
		names[l.Name] = true
		if l.Kind == Source {
			if l.Power == nil {
				return fmt.Errorf("stack: source layer %s has no power map", l.Name)
			}
			if l.Power.Dims != s.Dims {
				return fmt.Errorf("stack: source layer %s power map dims %v != %v", l.Name, l.Power.Dims, s.Dims)
			}
		}
	}
	return nil
}

// Clone returns a deep copy (power maps included).
func (s *Stack) Clone() *Stack {
	c := *s
	c.Layers = make([]Layer, len(s.Layers))
	copy(c.Layers, s.Layers)
	for i := range c.Layers {
		if c.Layers[i].Power != nil {
			c.Layers[i].Power = c.Layers[i].Power.Clone()
		}
	}
	return &c
}

// Config parameterizes the standard benchmark-style stack builders.
type Config struct {
	Dims          grid.Dims
	Pitch         float64 // default 100 µm
	ChannelWidth  float64 // default = Pitch
	ChannelHeight float64 // h_c; required
	BulkThickness float64 // default 100 µm
	BEOLThickness float64 // default 12 µm
	ActiveThick   float64 // default 2 µm
	TinK          float64 // default 300 K
	Coolant       units.Coolant
}

func (c Config) withDefaults() Config {
	if c.Pitch == 0 {
		c.Pitch = 100e-6
	}
	if c.ChannelWidth == 0 {
		c.ChannelWidth = c.Pitch
	}
	if c.BulkThickness == 0 {
		c.BulkThickness = 100e-6
	}
	if c.BEOLThickness == 0 {
		c.BEOLThickness = 12e-6
	}
	if c.ActiveThick == 0 {
		c.ActiveThick = 2e-6
	}
	if c.TinK == 0 {
		c.TinK = 300
	}
	if c.Coolant.Name == "" {
		c.Coolant = units.Water
	}
	return c
}

// NewDieStack builds an n-die stack with a channel layer between every
// pair of consecutive dies. Each die is BEOL / active / bulk silicon
// (bottom to top); powerMaps provides one map per die, bottom die first.
func NewDieStack(cfg Config, powerMaps []*power.Map) (*Stack, error) {
	cfg = cfg.withDefaults()
	n := len(powerMaps)
	if n < 1 {
		return nil, fmt.Errorf("stack: need at least one die power map")
	}
	if cfg.ChannelHeight <= 0 {
		return nil, fmt.Errorf("stack: channel height required")
	}
	s := &Stack{
		Dims:         cfg.Dims,
		Pitch:        cfg.Pitch,
		ChannelWidth: cfg.ChannelWidth,
		Coolant:      cfg.Coolant,
		TinK:         cfg.TinK,
	}
	for die := 0; die < n; die++ {
		pm := powerMaps[die]
		if pm == nil || pm.Dims != cfg.Dims {
			return nil, fmt.Errorf("stack: die %d power map missing or wrong dims", die)
		}
		s.Layers = append(s.Layers,
			Layer{Name: fmt.Sprintf("beol%d", die+1), Kind: Solid, Thickness: cfg.BEOLThickness, Mat: units.BEOL},
			Layer{Name: fmt.Sprintf("active%d", die+1), Kind: Source, Thickness: cfg.ActiveThick, Mat: units.Silicon, Power: pm},
			Layer{Name: fmt.Sprintf("bulk%d", die+1), Kind: Solid, Thickness: cfg.BulkThickness, Mat: units.Silicon},
		)
		if die+1 < n {
			s.Layers = append(s.Layers,
				Layer{Name: fmt.Sprintf("ch%d", die+1), Kind: Channel, Thickness: cfg.ChannelHeight, Mat: units.Silicon})
		}
	}
	if n == 1 {
		// Single die: back-side channel layer on top of the bulk.
		s.Layers = append(s.Layers,
			Layer{Name: "ch1", Kind: Channel, Thickness: cfg.ChannelHeight, Mat: units.Silicon})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
