package stack

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lcn3d/internal/grid"
	"lcn3d/internal/power"
	"lcn3d/internal/units"
)

// The stack description file format (Algorithm 1's "stack description and
// floorplan files") is line oriented:
//
//	# comment
//	stack <NX> <NY> <pitch_m>
//	channel_width <w_m>
//	coolant water
//	tin <kelvin>
//	layer <name> solid|source|channel <thickness_m> <material>
//	powermap <source-layer-name>
//	<NY rows of NX space-separated watts, south row first>
//	end
//
// Every source layer must be followed (anywhere later in the file) by its
// powermap block.

// Format writes the stack in the text format.
func Format(w io.Writer, s *Stack) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# lcn3d stack description\n")
	fmt.Fprintf(bw, "stack %d %d %g\n", s.Dims.NX, s.Dims.NY, s.Pitch)
	fmt.Fprintf(bw, "channel_width %g\n", s.ChannelWidth)
	fmt.Fprintf(bw, "coolant %s\n", s.Coolant.Name)
	fmt.Fprintf(bw, "tin %g\n", s.TinK)
	for _, l := range s.Layers {
		fmt.Fprintf(bw, "layer %s %s %g %s\n", l.Name, l.Kind, l.Thickness, l.Mat.Name)
	}
	for _, l := range s.Layers {
		if l.Kind != Source {
			continue
		}
		fmt.Fprintf(bw, "powermap %s\n", l.Name)
		for y := 0; y < s.Dims.NY; y++ {
			for x := 0; x < s.Dims.NX; x++ {
				if x > 0 {
					bw.WriteByte(' ')
				}
				fmt.Fprintf(bw, "%.12g", l.Power.At(x, y))
			}
			bw.WriteByte('\n')
		}
		fmt.Fprintf(bw, "end\n")
	}
	return bw.Flush()
}

var materialsByName = map[string]units.Material{
	"silicon": units.Silicon,
	"beol":    units.BEOL,
	"copper":  units.Copper,
}

var coolantsByName = map[string]units.Coolant{
	"water": units.Water,
}

// Parse reads a stack from the text format.
func Parse(r io.Reader) (*Stack, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	s := &Stack{Coolant: units.Water, TinK: 300}
	lineNo := 0
	byName := make(map[string]int)

	fail := func(format string, args ...any) error {
		return fmt.Errorf("stack: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "stack":
			if len(f) != 4 {
				return nil, fail("stack needs NX NY pitch")
			}
			nx, err1 := strconv.Atoi(f[1])
			ny, err2 := strconv.Atoi(f[2])
			pitch, err3 := strconv.ParseFloat(f[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("bad stack header %q", line)
			}
			s.Dims = grid.Dims{NX: nx, NY: ny}
			s.Pitch = pitch
		case "channel_width":
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil || len(f) != 2 {
				return nil, fail("bad channel_width")
			}
			s.ChannelWidth = v
		case "coolant":
			c, ok := coolantsByName[f[1]]
			if !ok {
				return nil, fail("unknown coolant %q", f[1])
			}
			s.Coolant = c
		case "tin":
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad tin")
			}
			s.TinK = v
		case "layer":
			if len(f) != 5 {
				return nil, fail("layer needs name kind thickness material")
			}
			var kind LayerKind
			switch f[2] {
			case "solid":
				kind = Solid
			case "source":
				kind = Source
			case "channel":
				kind = Channel
			default:
				return nil, fail("unknown layer kind %q", f[2])
			}
			th, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fail("bad thickness %q", f[3])
			}
			mat, ok := materialsByName[f[4]]
			if !ok {
				return nil, fail("unknown material %q", f[4])
			}
			byName[f[1]] = len(s.Layers)
			s.Layers = append(s.Layers, Layer{Name: f[1], Kind: kind, Thickness: th, Mat: mat})
		case "powermap":
			if len(f) != 2 {
				return nil, fail("powermap needs a layer name")
			}
			li, ok := byName[f[1]]
			if !ok || s.Layers[li].Kind != Source {
				return nil, fail("powermap for unknown source layer %q", f[1])
			}
			pm := power.New(s.Dims)
			for y := 0; y < s.Dims.NY; y++ {
				if !sc.Scan() {
					return nil, fail("powermap %s truncated at row %d", f[1], y)
				}
				lineNo++
				vals := strings.Fields(sc.Text())
				if len(vals) != s.Dims.NX {
					return nil, fail("powermap row has %d values, want %d", len(vals), s.Dims.NX)
				}
				for x, vs := range vals {
					v, err := strconv.ParseFloat(vs, 64)
					if err != nil {
						return nil, fail("bad power value %q", vs)
					}
					pm.Set(x, y, v)
				}
			}
			if !sc.Scan() || strings.TrimSpace(sc.Text()) != "end" {
				return nil, fail("powermap %s missing end marker", f[1])
			}
			lineNo++
			s.Layers[li].Power = pm
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stack: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
