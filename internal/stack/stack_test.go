package stack

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lcn3d/internal/grid"
	"lcn3d/internal/power"
	"lcn3d/internal/units"
)

var d11 = grid.Dims{NX: 11, NY: 11}

func twoDie(t *testing.T) *Stack {
	t.Helper()
	p1 := power.Hotspots(d11, 1, 2, 0.6, 20)
	p2 := power.Hotspots(d11, 2, 2, 0.6, 22.038)
	s, err := NewDieStack(Config{Dims: d11, ChannelHeight: 200e-6}, []*power.Map{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDieStackTwoDie(t *testing.T) {
	s := twoDie(t)
	// beol1 active1 bulk1 ch1 beol2 active2 bulk2 -> 7 layers.
	if len(s.Layers) != 7 {
		t.Fatalf("got %d layers, want 7", len(s.Layers))
	}
	if got := s.SourceLayers(); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("source layers %v", got)
	}
	if got := s.ChannelLayers(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("channel layers %v", got)
	}
	if math.Abs(s.TotalPower()-42.038) > 1e-9 {
		t.Fatalf("total power %g", s.TotalPower())
	}
}

func TestNewDieStackThreeDie(t *testing.T) {
	maps := []*power.Map{
		power.Hotspots(d11, 1, 2, 0.5, 14),
		power.Hotspots(d11, 2, 2, 0.5, 14),
		power.Hotspots(d11, 3, 2, 0.5, 15.438),
	}
	s, err := NewDieStack(Config{Dims: d11, ChannelHeight: 200e-6}, maps)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ChannelLayers()) != 2 {
		t.Fatalf("3 dies need 2 channel layers, got %d", len(s.ChannelLayers()))
	}
	if len(s.SourceLayers()) != 3 {
		t.Fatalf("source layers %v", s.SourceLayers())
	}
}

func TestNewDieStackSingleDieGetsTopChannel(t *testing.T) {
	s, err := NewDieStack(Config{Dims: d11, ChannelHeight: 400e-6},
		[]*power.Map{power.Hotspots(d11, 1, 1, 0.5, 10)})
	if err != nil {
		t.Fatal(err)
	}
	ch := s.ChannelLayers()
	if len(ch) != 1 || ch[0] != len(s.Layers)-1 {
		t.Fatalf("single die should end with a channel layer, got %v of %d", ch, len(s.Layers))
	}
}

func TestConfigDefaults(t *testing.T) {
	s := twoDie(t)
	if s.Pitch != 100e-6 || s.ChannelWidth != 100e-6 || s.TinK != 300 {
		t.Fatalf("defaults wrong: pitch=%g cw=%g tin=%g", s.Pitch, s.ChannelWidth, s.TinK)
	}
	if s.Coolant.Name != units.Water.Name {
		t.Fatalf("default coolant %q", s.Coolant.Name)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	s := twoDie(t)
	bad := s.Clone()
	bad.Layers[1].Power = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing power map not caught")
	}
	bad = s.Clone()
	bad.Layers[0].Thickness = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative thickness not caught")
	}
	bad = s.Clone()
	bad.Layers[2].Name = bad.Layers[0].Name
	if err := bad.Validate(); err == nil {
		t.Error("duplicate name not caught")
	}
	bad = s.Clone()
	bad.ChannelWidth = 2 * bad.Pitch
	if err := bad.Validate(); err == nil {
		t.Error("channel wider than pitch not caught")
	}
	bad = s.Clone()
	bad.TinK = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero inlet temperature not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := twoDie(t)
	c := s.Clone()
	c.Layers[1].Power.Set(0, 0, 999)
	if s.Layers[1].Power.At(0, 0) == 999 {
		t.Fatal("Clone must copy power maps")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := twoDie(t)
	var buf bytes.Buffer
	if err := Format(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != s.Dims || got.Pitch != s.Pitch || got.TinK != s.TinK {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Layers) != len(s.Layers) {
		t.Fatalf("layer count %d != %d", len(got.Layers), len(s.Layers))
	}
	for i := range got.Layers {
		a, b := got.Layers[i], s.Layers[i]
		if a.Name != b.Name || a.Kind != b.Kind || math.Abs(a.Thickness-b.Thickness) > 1e-15 {
			t.Fatalf("layer %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if math.Abs(got.TotalPower()-s.TotalPower()) > 1e-6 {
		t.Fatalf("power mismatch %g vs %g", got.TotalPower(), s.TotalPower())
	}
	// Spot-check one power value survives the round trip.
	if math.Abs(got.Layers[1].Power.At(5, 5)-s.Layers[1].Power.At(5, 5)) > 1e-9 {
		t.Fatal("power map value lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown directive", "stack 4 4 1e-4\nbogus 1\n"},
		{"bad material", "stack 4 4 1e-4\nlayer a solid 1e-5 unobtanium\n"},
		{"bad kind", "stack 4 4 1e-4\nlayer a gas 1e-5 silicon\n"},
		{"truncated powermap", "stack 4 4 1e-4\nchannel_width 1e-4\nlayer a source 1e-5 silicon\npowermap a\n0 0 0 0\n"},
		{"powermap for solid", "stack 4 4 1e-4\nlayer a solid 1e-5 silicon\npowermap a\n"},
		{"missing structures", "stack 4 4 1e-4\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	src := `# header comment
stack 3 3 1e-4

channel_width 1e-4
tin 300
layer a source 1e-5 silicon
layer c channel 2e-4 silicon
powermap a
1 1 1
1 2 1
1 1 1
end
`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalPower()-10) > 1e-12 {
		t.Fatalf("total power %g, want 10", s.TotalPower())
	}
}

func TestNewDieStackRejectsBadInput(t *testing.T) {
	if _, err := NewDieStack(Config{Dims: d11, ChannelHeight: 1e-4}, nil); err == nil {
		t.Error("no dies should fail")
	}
	if _, err := NewDieStack(Config{Dims: d11}, []*power.Map{power.New(d11)}); err == nil {
		t.Error("missing channel height should fail")
	}
	wrong := power.New(grid.Dims{NX: 3, NY: 3})
	if _, err := NewDieStack(Config{Dims: d11, ChannelHeight: 1e-4}, []*power.Map{wrong}); err == nil {
		t.Error("wrong-dims power map should fail")
	}
}

func TestFormatParseRoundTripProperty(t *testing.T) {
	// Round-trip random multi-die stacks through the text format.
	f := func(seed int64, dies uint8, hcSel uint8) bool {
		nd := int(dies%3) + 1
		hc := []float64{100e-6, 200e-6, 400e-6}[hcSel%3]
		maps := make([]*power.Map, nd)
		for i := range maps {
			maps[i] = power.Hotspots(d11, seed+int64(i), 2, 0.5, 1+float64(i))
		}
		s, err := NewDieStack(Config{Dims: d11, ChannelHeight: hc}, maps)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Format(&buf, s); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		if len(got.Layers) != len(s.Layers) || got.TinK != s.TinK {
			return false
		}
		return math.Abs(got.TotalPower()-s.TotalPower()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
