package network

import (
	"strings"
	"testing"

	"lcn3d/internal/grid"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func mustLegal(t *testing.T, n *Network) {
	t.Helper()
	if errs := n.Check(); len(errs) != 0 {
		t.Fatalf("network violates design rules: %v\n%s", errs[0], n)
	}
}

func TestNewTSVPattern(t *testing.T) {
	n := New(d21)
	if !n.TSV[d21.Index(1, 1)] || !n.TSV[d21.Index(3, 5)] {
		t.Fatal("odd-odd cells should be TSV")
	}
	if n.TSV[d21.Index(0, 0)] || n.TSV[d21.Index(2, 1)] || n.TSV[d21.Index(1, 2)] {
		t.Fatal("cells with an even coordinate must not be TSV")
	}
	// Count: 10x10 TSVs on a 21x21 grid.
	c := 0
	for _, v := range n.TSV {
		if v {
			c++
		}
	}
	if c != 100 {
		t.Fatalf("TSV count %d, want 100", c)
	}
}

func TestStraightLegalAndConnected(t *testing.T) {
	for _, side := range []grid.Side{grid.SideWest, grid.SideEast, grid.SideNorth, grid.SideSouth} {
		n := Straight(d21, side, 1)
		mustLegal(t, n)
		if len(n.StagnantCells()) != 0 {
			t.Fatalf("straight channels from %v have stagnant cells", side)
		}
	}
}

func TestStraightChannelCount(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	// 11 even rows of 21 cells.
	if got := n.NumLiquid(); got != 11*21 {
		t.Fatalf("liquid cells %d, want %d", got, 11*21)
	}
	n2 := Straight(d21, grid.SideWest, 2)
	if got := n2.NumLiquid(); got != 6*21 {
		t.Fatalf("sparse liquid cells %d, want %d", got, 6*21)
	}
}

func TestCheckCatchesTSVOverlap(t *testing.T) {
	n := New(d21)
	n.SetLiquid(1, 1, true) // TSV cell
	n.AddPort(grid.SideWest, Inlet, 0, 5)
	n.AddPort(grid.SideEast, Outlet, 0, 5)
	errs := n.Check()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "TSV") {
			found = true
		}
	}
	if !found {
		t.Fatalf("TSV overlap not reported: %v", errs)
	}
}

func TestCheckCatchesTwoPortsPerSide(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	n.AddPort(grid.SideWest, Outlet, 0, 3)
	errs := n.Check()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "at most one") {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate side port not reported: %v", errs)
	}
}

func TestCheckCatchesDisconnection(t *testing.T) {
	n := New(d21)
	// Liquid at west edge only; outlet on east cannot be reached.
	for y := 0; y < d21.NY; y += 2 {
		n.SetLiquid(0, y, true)
		n.SetLiquid(d21.NX-1, y, true)
	}
	n.AddPort(grid.SideWest, Inlet, 0, d21.NY-1)
	n.AddPort(grid.SideEast, Outlet, 0, d21.NY-1)
	errs := n.Check()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "no liquid path") {
			found = true
		}
	}
	if !found {
		t.Fatalf("disconnection not reported: %v", errs)
	}
}

func TestComponents(t *testing.T) {
	n := New(d21)
	n.SetLiquid(0, 0, true)
	n.SetLiquid(1, 0, true)
	n.SetLiquid(10, 10, true)
	labels, num := n.Components()
	if num != 2 {
		t.Fatalf("components = %d, want 2", num)
	}
	if labels[d21.Index(0, 0)] != labels[d21.Index(1, 0)] {
		t.Fatal("adjacent liquid cells must share a component")
	}
	if labels[d21.Index(10, 10)] == labels[d21.Index(0, 0)] {
		t.Fatal("distant cells must not share a component")
	}
	if labels[d21.Index(5, 5)] != -1 {
		t.Fatal("solid cell should be labeled -1")
	}
}

func TestStagnantCells(t *testing.T) {
	// Channels on rows 0, 4, 8, ...; cell (4, 2) is then fully isolated.
	n := Straight(d21, grid.SideWest, 2)
	n.SetLiquid(4, 2, true)
	st := n.StagnantCells()
	if len(st) != 1 || st[0] != d21.Index(4, 2) {
		t.Fatalf("stagnant cells %v", st)
	}
}

func TestSerpentineLegal(t *testing.T) {
	n := Serpentine(d21)
	mustLegal(t, n)
	if len(n.StagnantCells()) != 0 {
		t.Fatal("serpentine should be fully flowing")
	}
}

func TestMeshLegal(t *testing.T) {
	n := Mesh(d21, 1, 3)
	mustLegal(t, n)
	if n.NumLiquid() <= Straight(d21, grid.SideWest, 1).NumLiquid() {
		t.Fatal("mesh should add cross links")
	}
}

func TestCombLegal(t *testing.T) {
	n := Comb(d21, 1)
	mustLegal(t, n)
}

func TestTreeLegalAllTypes(t *testing.T) {
	big := grid.Dims{NX: 51, NY: 51}
	for _, typ := range []BranchType{Branch2, Branch4, Branch8} {
		spec := UniformTreeSpec(big, 3, typ, 0.3, 0.6)
		n, err := Tree(big, spec)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		mustLegal(t, n)
		if len(n.StagnantCells()) != 0 {
			t.Fatalf("%v tree has stagnant cells:\n%s", typ, n)
		}
	}
}

func TestTreeRejectsBadSpecs(t *testing.T) {
	if _, err := Tree(d21, TreeSpec{NumTrees: 0}); err == nil {
		t.Error("zero trees should fail")
	}
	if _, err := Tree(d21, TreeSpec{NumTrees: 2, Type: Branch8,
		B1: []int{2, 2}, B2: []int{4, 4}}); err == nil {
		t.Error("band too small for 8 leaves should fail")
	}
	// Odd branch column.
	if _, err := Tree(grid.Dims{NX: 51, NY: 51}, TreeSpec{NumTrees: 1, Type: Branch2,
		B1: []int{3}, B2: []int{10}}); err == nil {
		t.Error("odd branch column should fail")
	}
}

func TestUniformTreeSpecCanonical(t *testing.T) {
	big := grid.Dims{NX: 101, NY: 101}
	s := UniformTreeSpec(big, 4, Branch4, 0.33, 0.66)
	for tr := 0; tr < 4; tr++ {
		if s.B1[tr]%2 != 0 || s.B2[tr]%2 != 0 || s.B1[tr] >= s.B2[tr] {
			t.Fatalf("spec not canonical: b1=%d b2=%d", s.B1[tr], s.B2[tr])
		}
	}
	// Degenerate fractions still canonicalize to something legal.
	s2 := UniformTreeSpec(big, 2, Branch2, 0.99, 0.01)
	if _, err := Tree(big, s2); err != nil {
		t.Fatalf("canonicalized spec should build: %v", err)
	}
}

func TestRotate90PreservesLegalityAndCount(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	r := n.Rotate90()
	mustLegal(t, r)
	if r.NumLiquid() != n.NumLiquid() {
		t.Fatalf("rotation changed liquid count %d -> %d", n.NumLiquid(), r.NumLiquid())
	}
	// Four rotations are the identity.
	r4 := n.Rotate90().Rotate90().Rotate90().Rotate90()
	for i := range n.Liquid {
		if n.Liquid[i] != r4.Liquid[i] {
			t.Fatal("four rotations must be identity")
		}
	}
}

func TestMirrorXInvolution(t *testing.T) {
	spec := UniformTreeSpec(grid.Dims{NX: 51, NY: 51}, 2, Branch4, 0.3, 0.7)
	n, err := Tree(grid.Dims{NX: 51, NY: 51}, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := n.MirrorX()
	mustLegal(t, m)
	mm := m.MirrorX()
	for i := range n.Liquid {
		if n.Liquid[i] != mm.Liquid[i] {
			t.Fatal("double mirror must be identity")
		}
	}
	if m.Hash() == n.Hash() {
		t.Fatal("asymmetric tree should change under mirror")
	}
}

func TestAllOrientationsLegal(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	os := AllOrientations()
	if len(os) != 8 {
		t.Fatalf("want 8 orientations, got %d", len(os))
	}
	for _, o := range os {
		mustLegal(t, o.Apply(n))
	}
}

func TestHashDistinguishesNetworks(t *testing.T) {
	a := Straight(d21, grid.SideWest, 1)
	b := Straight(d21, grid.SideWest, 2)
	if a.Hash() == b.Hash() {
		t.Fatal("different networks should hash differently")
	}
	c := a.Clone()
	if c.Hash() != a.Hash() {
		t.Fatal("clone should hash equal")
	}
	c.SetLiquid(2, 1, true)
	if c.Hash() == a.Hash() {
		t.Fatal("modified clone should hash differently")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Straight(d21, grid.SideWest, 1)
	b := a.Clone()
	b.SetLiquid(0, 1, true)
	if a.IsLiquid(0, 1) {
		t.Fatal("clone must not alias")
	}
}

func TestCarveKeepoutReconnects(t *testing.T) {
	big := grid.Dims{NX: 51, NY: 51}
	n := Straight(big, grid.SideWest, 1)
	CarveKeepout(n, 20, 20, 31, 31)
	mustLegal(t, n)
	for y := 20; y < 31; y++ {
		for x := 20; x < 31; x++ {
			if n.IsLiquid(x, y) {
				t.Fatalf("keepout cell (%d,%d) still liquid", x, y)
			}
		}
	}
	if len(n.StagnantCells()) != 0 {
		t.Fatalf("carving left stagnant cells:\n%s", n)
	}
}

func TestCarveKeepoutOnTree(t *testing.T) {
	big := grid.Dims{NX: 51, NY: 51}
	tr, err := Tree(big, UniformTreeSpec(big, 2, Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	CarveKeepout(tr, 22, 22, 29, 29)
	if errs := tr.Check(); len(errs) != 0 {
		t.Fatalf("carved tree illegal: %v", errs)
	}
}

func TestStringArt(t *testing.T) {
	n := Straight(grid.Dims{NX: 5, NY: 3}, grid.SideWest, 1)
	s := n.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != 5 {
		t.Fatalf("bad art shape:\n%s", s)
	}
	// North row printed first; rows 0 and 2 are channels.
	if lines[0] != "#####" || lines[2] != "#####" {
		t.Fatalf("unexpected art:\n%s", s)
	}
	if !strings.Contains(lines[1], "T") {
		t.Fatalf("middle row should show TSVs:\n%s", s)
	}
}

func TestPortCellsRespectLiquid(t *testing.T) {
	n := New(d21)
	n.SetLiquid(0, 4, true)
	n.SetLiquid(0, 5, true)
	n.AddPort(grid.SideWest, Inlet, 0, 10)
	cells := n.PortCells(Inlet)
	if len(cells) != 2 {
		t.Fatalf("inlet cells %v, want the 2 liquid boundary cells", cells)
	}
}
