package network

import (
	"fmt"

	"lcn3d/internal/grid"
)

// BranchType selects one of the three branch structures of Fig. 8(b).
type BranchType int

// Branch types: a tree's trunk splits into 2, 4 or 8 leaf channels.
const (
	Branch2 BranchType = iota // single split at B1
	Branch4                   // splits at B1 and B2
	Branch8                   // splits at B1, B2 and a derived third level
)

func (b BranchType) String() string {
	switch b {
	case Branch2:
		return "2-leaf"
	case Branch4:
		return "4-leaf"
	case Branch8:
		return "8-leaf"
	}
	return fmt.Sprintf("BranchType(%d)", int(b))
}

// Leaves returns the number of leaf channels per tree.
func (b BranchType) Leaves() int { return 2 << int(b) }

// TreeSpec parameterizes a hierarchical tree-like cooling network in the
// canonical orientation (roots on the west edge, coolant flowing east).
// Each tree has two free parameters (paper Sec. 4.4): the columns of its
// first and second branch points.
type TreeSpec struct {
	NumTrees int
	Type     BranchType
	B1, B2   []int // per-tree branch columns, len NumTrees
}

// UniformTreeSpec builds a spec with identical parameters for every tree,
// the initialization the paper's SA starts from. f1 and f2 in (0, 1) are
// the branch positions as fractions of the chip width.
func UniformTreeSpec(d grid.Dims, numTrees int, typ BranchType, f1, f2 float64) TreeSpec {
	s := TreeSpec{NumTrees: numTrees, Type: typ,
		B1: make([]int, numTrees), B2: make([]int, numTrees)}
	for t := 0; t < numTrees; t++ {
		s.B1[t] = int(f1 * float64(d.NX-1))
		s.B2[t] = int(f2 * float64(d.NX-1))
	}
	s.Canonicalize(d)
	return s
}

// Canonicalize clamps branch columns into the valid even-column range and
// enforces B1 < B2 with at least one cell between them.
func (s *TreeSpec) Canonicalize(d grid.Dims) {
	lo, hi := 2, d.NX-3
	hi -= hi % 2
	for t := 0; t < s.NumTrees; t++ {
		b1 := clampEven(s.B1[t], lo, hi-2)
		b2 := clampEven(s.B2[t], lo+2, hi)
		if b2 <= b1 {
			b2 = b1 + 2
			if b2 > hi {
				b2 = hi
				b1 = b2 - 2
			}
		}
		s.B1[t], s.B2[t] = b1, b2
	}
}

// Clone deep-copies the spec.
func (s TreeSpec) Clone() TreeSpec {
	c := s
	c.B1 = append([]int(nil), s.B1...)
	c.B2 = append([]int(nil), s.B2...)
	return c
}

func clampEven(v, lo, hi int) int {
	v -= v % 2
	if v < lo {
		v = lo + lo%2
	}
	if v > hi {
		v = hi - hi%2
	}
	return v
}

// evenInBand returns the even row nearest to the real-valued position,
// clamped into [lo, hi].
func evenInBand(pos float64, lo, hi int) int {
	y := int(pos + 0.5)
	y -= y % 2
	if y < lo {
		y = lo + lo%2
	}
	if y > hi {
		y = hi - hi%2
	}
	return y
}

// Tree builds the hierarchical tree-like network described by the spec on
// grid d (canonical west-to-east orientation). Trees are stacked in
// NumTrees equal horizontal bands. Inlet spans the west edge, outlet the
// east edge.
func Tree(d grid.Dims, spec TreeSpec) (*Network, error) {
	if spec.NumTrees < 1 {
		return nil, fmt.Errorf("network: NumTrees=%d", spec.NumTrees)
	}
	if len(spec.B1) != spec.NumTrees || len(spec.B2) != spec.NumTrees {
		return nil, fmt.Errorf("network: branch arrays must have NumTrees=%d entries", spec.NumTrees)
	}
	minBand := 2 * spec.Type.Leaves()
	if d.NY < spec.NumTrees*minBand {
		return nil, fmt.Errorf("network: %d %v trees need at least %d rows, have %d",
			spec.NumTrees, spec.Type, spec.NumTrees*minBand, d.NY)
	}
	n := New(d)
	bandH := float64(d.NY) / float64(spec.NumTrees)
	for t := 0; t < spec.NumTrees; t++ {
		yLo := int(float64(t) * bandH)
		yHi := int(float64(t+1)*bandH) - 1
		if t == spec.NumTrees-1 {
			yHi = d.NY - 1
		}
		b1, b2 := spec.B1[t], spec.B2[t]
		if b1 < 1 || b2 <= b1 || b2 >= d.NX-1 || b1%2 != 0 || b2%2 != 0 {
			return nil, fmt.Errorf("network: tree %d has invalid branches b1=%d b2=%d (call Canonicalize)", t, b1, b2)
		}
		buildTree(n, yLo, yHi, b1, b2, spec.Type)
	}
	n.AddPort(grid.SideWest, Inlet, 0, d.NY-1)
	n.AddPort(grid.SideEast, Outlet, 0, d.NY-1)
	return n, nil
}

// buildTree carves one tree into band rows [yLo, yHi].
func buildTree(n *Network, yLo, yHi, b1, b2 int, typ BranchType) {
	d := n.Dims
	span := float64(yHi - yLo + 1)
	center := func(frac float64) int { return evenInBand(float64(yLo)+frac*span, yLo, yHi) }

	hline := func(y, x0, x1 int) {
		for x := x0; x <= x1; x++ {
			n.SetLiquid(x, y, true)
		}
	}
	vline := func(x, y0, y1 int) {
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		for y := y0; y <= y1; y++ {
			n.SetLiquid(x, y, true)
		}
	}

	trunk := center(0.5)
	switch typ {
	case Branch2:
		r0, r1 := center(0.25), center(0.75)
		hline(trunk, 0, b1)
		vline(b1, r0, r1)
		hline(r0, b1, d.NX-1)
		hline(r1, b1, d.NX-1)
	case Branch4:
		m0, m1 := center(0.25), center(0.75)
		l := []int{center(0.125), center(0.375), center(0.625), center(0.875)}
		hline(trunk, 0, b1)
		vline(b1, m0, m1)
		hline(m0, b1, b2)
		hline(m1, b1, b2)
		vline(b2, l[0], l[1])
		vline(b2, l[2], l[3])
		for _, y := range l {
			hline(y, b2, d.NX-1)
		}
	case Branch8:
		// Third-level split column derived between b2 and the east edge.
		b3 := clampEven((b2+d.NX-1)/2, b2+2, d.NX-3)
		if b3 <= b2 {
			b3 = b2 + 2
		}
		m0, m1 := center(0.25), center(0.75)
		q := []int{center(0.125), center(0.375), center(0.625), center(0.875)}
		hline(trunk, 0, b1)
		vline(b1, m0, m1)
		hline(m0, b1, b2)
		hline(m1, b1, b2)
		vline(b2, q[0], q[1])
		vline(b2, q[2], q[3])
		for _, y := range q {
			hline(y, b2, b3)
		}
		for k, frac := range []float64{0.0625, 0.1875, 0.3125, 0.4375, 0.5625, 0.6875, 0.8125, 0.9375} {
			leaf := center(frac)
			hline(leaf, b3, d.NX-1)
			// Connect the leaf to its parent quarter-row at b3.
			vline(b3, q[k/2], leaf)
		}
	}
}

// CarveKeepout removes liquid cells inside [x0, x1) x [y0, y1), marks the
// region as keepout, and adds a liquid detour ring around it on the
// nearest even rows/columns so severed channels reconnect — the paper's
// case-3 handling ("that region is filled by solid cells and surrounded
// by liquid cells").
func CarveKeepout(n *Network, x0, y0, x1, y1 int) {
	d := n.Dims
	n.SetKeepoutRect(x0, y0, x1, y1)
	cut := false
	for y := max(y0, 0); y < min(y1, d.NY); y++ {
		for x := max(x0, 0); x < min(x1, d.NX); x++ {
			if n.Liquid[d.Index(x, y)] {
				n.SetLiquid(x, y, false)
				cut = true
			}
		}
	}
	if !cut {
		return
	}
	// Even ring coordinates just outside the rectangle.
	xa := clampEven(x0-2, 0, d.NX-1)
	xb := clampEven(x1+1, 0, d.NX-1)
	if xb < x1 {
		xb = clampEven(d.NX-1, 0, d.NX-1)
	}
	ya := clampEven(y0-2, 0, d.NY-1)
	yb := clampEven(y1+1, 0, d.NY-1)
	if yb < y1 {
		yb = clampEven(d.NY-1, 0, d.NY-1)
	}
	for x := xa; x <= xb; x++ {
		if !n.Keepout[d.Index(x, ya)] {
			n.SetLiquid(x, ya, true)
		}
		if !n.Keepout[d.Index(x, yb)] {
			n.SetLiquid(x, yb, true)
		}
	}
	for y := ya; y <= yb; y++ {
		if !n.Keepout[d.Index(xa, y)] {
			n.SetLiquid(xa, y, true)
		}
		if !n.Keepout[d.Index(xb, y)] {
			n.SetLiquid(xb, y, true)
		}
	}
}
