package network

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
)

func TestSetUniformWidth(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	n.SetUniformWidth(80e-6)
	if got := n.WidthAt(0, 0, 100e-6); got != 80e-6 {
		t.Fatalf("liquid width %g", got)
	}
	// Solid cells fall back to the default.
	if got := n.WidthAt(0, 1, 100e-6); got != 100e-6 {
		t.Fatalf("solid width %g", got)
	}
}

func TestWidthAtWithoutModulation(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	if got := n.WidthAt(3, 0, 100e-6); got != 100e-6 {
		t.Fatalf("default width %g", got)
	}
}

func TestModulateStraightWidthsHotChannelStaysWide(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	heat := make([]float64, d21.NY)
	heat[0] = 10 // row 0 hot
	heat[20] = 1 // row 20 cold
	if err := ModulateStraightWidths(n, heat, 100e-6, 200e-6, 0.5); err != nil {
		t.Fatal(err)
	}
	wHot := n.WidthAt(5, 0, 100e-6)
	wCold := n.WidthAt(5, 20, 100e-6)
	if math.Abs(wHot-100e-6) > 1e-9 {
		t.Fatalf("hottest channel should keep nominal width, got %g", wHot)
	}
	if wCold >= wHot {
		t.Fatalf("cold channel %g should be narrower than hot %g", wCold, wHot)
	}
	if wCold < 0.5*100e-6-1e-12 {
		t.Fatalf("width %g under the clamp", wCold)
	}
}

func TestModulateStraightWidthsUniformHeat(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	heat := make([]float64, d21.NY)
	for i := range heat {
		heat[i] = 1
	}
	if err := ModulateStraightWidths(n, heat, 100e-6, 200e-6, 0.5); err != nil {
		t.Fatal(err)
	}
	// Equal loads -> interior channels (which each collect the same two
	// rows of heat) stay at nominal width. Edge channels collect less
	// heat and are legitimately narrowed.
	for y := 2; y <= d21.NY-3; y += 2 {
		if w := n.WidthAt(3, y, 100e-6); math.Abs(w-100e-6) > 5e-6 {
			t.Fatalf("row %d width %g, want ~nominal", y, w)
		}
	}
	if wEdge := n.WidthAt(3, 0, 100e-6); wEdge >= 100e-6 {
		t.Fatalf("edge channel should be narrowed, got %g", wEdge)
	}
}

func TestModulateErrors(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	if err := ModulateStraightWidths(n, make([]float64, 3), 100e-6, 200e-6, 0.5); err == nil {
		t.Error("wrong rowHeat length should fail")
	}
	if err := ModulateStraightWidths(n, make([]float64, d21.NY), 100e-6, 200e-6, 0); err == nil {
		t.Error("minFrac 0 should fail")
	}
	empty := New(d21)
	if err := ModulateStraightWidths(empty, make([]float64, d21.NY), 100e-6, 200e-6, 0.5); err == nil {
		t.Error("no channels should fail")
	}
}

func TestWidthForConductanceRatioMonotone(t *testing.T) {
	prev := 0.0
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
		w := widthForConductanceRatio(ratio, 100e-6, 200e-6, 0.3)
		if w < prev {
			t.Fatalf("width should grow with ratio: %g after %g", w, prev)
		}
		prev = w
	}
	if w := widthForConductanceRatio(1.0, 100e-6, 200e-6, 0.3); math.Abs(w-100e-6) > 1e-9 {
		t.Fatalf("ratio 1 should give nominal width, got %g", w)
	}
}

func TestRowHeatLoads(t *testing.T) {
	d := grid.Dims{NX: 3, NY: 2}
	w := []float64{1, 2, 3, 4, 5, 6}
	rh := RowHeatLoads(d, w)
	if rh[0] != 6 || rh[1] != 15 {
		t.Fatalf("row heats %v", rh)
	}
}

func TestWidthSurvivesCloneAndTransforms(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	n.SetUniformWidth(70e-6)
	c := n.Clone()
	c.Width[0] = 99e-6
	if n.Width[0] == 99e-6 {
		t.Fatal("clone aliases width")
	}
	r := n.Rotate90()
	if r.Width == nil {
		t.Fatal("rotation dropped width")
	}
	if got := r.WidthAt(0, d21.NX-1, 1); got != 70e-6 { // (0,0) -> (0, NX-1)
		t.Fatalf("rotated width %g", got)
	}
	m := n.MirrorX()
	if got := m.WidthAt(d21.NX-1, 0, 1); got != 70e-6 {
		t.Fatalf("mirrored width %g", got)
	}
}

func TestWidthChangesHash(t *testing.T) {
	a := Straight(d21, grid.SideWest, 1)
	b := a.Clone()
	b.SetUniformWidth(80e-6)
	if a.Hash() == b.Hash() {
		t.Fatal("width modulation must change the hash")
	}
}
