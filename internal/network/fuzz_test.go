package network

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"lcn3d/internal/grid"
)

// FuzzNetworkLoad drives Read with arbitrary bytes. Two properties must
// hold: Read never panics or over-allocates (the MaxEncodedDim bound),
// and any input it accepts survives a Write/Read round trip with its
// canonical hash intact — i.e. everything Read admits, Write can
// faithfully persist.
func FuzzNetworkLoad(f *testing.F) {
	// Seed with every generator family so the fuzzer starts from valid
	// files and mutates toward the interesting malformed neighborhood.
	d := grid.Dims{NX: 11, NY: 11}
	seeds := []*Network{
		Straight(d, grid.SideWest, 1),
		Serpentine(d),
		Mesh(d, 1, 2),
		Comb(d, 1),
	}
	if tr, err := Tree(d, UniformTreeSpec(d, 1, Branch4, 0.35, 0.65)); err == nil {
		seeds = append(seeds, tr)
	}
	for _, n := range seeds {
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed neighborhoods the parser must reject cleanly.
	for _, s := range []string{
		"",
		"network 3 3\nrows\n###\n",
		"network 999999999 999999999\n",
		"network 3 3\nport west inlet 0 99\nrows\n###\n###\n###\nend\n",
		"port west inlet 0 0\n",
		"network 2 2\nrows\n#?\n##\nend\n",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics and hangs are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("write of parsed network failed: %v", err)
		}
		m, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of written network failed: %v\nfile:\n%s", err, buf.String())
		}
		if m.CanonicalHash() != n.CanonicalHash() {
			t.Fatalf("round trip changed canonical hash\nfile:\n%s", buf.String())
		}
	})
}

// TestReadRejectsOversizedDims pins the allocation bound directly (the
// fuzzer only proves it probabilistically).
func TestReadRejectsOversizedDims(t *testing.T) {
	for _, hdr := range []string{
		"network 4097 3\n", "network 3 4097\n", "network 1000000000 1000000000\n",
	} {
		if _, err := Read(strings.NewReader(hdr + "rows\nend\n")); err == nil {
			t.Errorf("%q accepted", strings.TrimSpace(hdr))
		}
	}
	// The boundary itself is legal.
	ok := "network 4096 1\nrows\n" + strings.Repeat("#", 4096) + "\nend\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("4096-wide network rejected: %v", err)
	}
}

// randomizedNetwork perturbs a random generator family: extra port
// spans, random keepout rectangles, random liquid flips that leave the
// network decodable (legality by Check is not required for encode round
// trips — the format persists any grid). Widths stay empty because the
// file format does not carry them.
func randomizedNetwork(rng *rand.Rand) *Network {
	d := grid.Dims{NX: 7 + rng.Intn(30), NY: 7 + rng.Intn(30)}
	var n *Network
	switch rng.Intn(4) {
	case 0:
		n = Straight(d, grid.Side(rng.Intn(4)), 1+rng.Intn(3))
	case 1:
		n = Serpentine(d)
	case 2:
		n = Mesh(d, 1+rng.Intn(3), 1+rng.Intn(3))
	default:
		n = Comb(d, 1+rng.Intn(3))
	}
	if rng.Intn(2) == 0 {
		x0, y0 := rng.Intn(d.NX/2), rng.Intn(d.NY/2)
		CarveKeepout(n, x0, y0, x0+1+rng.Intn(d.NX/2), y0+1+rng.Intn(d.NY/2))
	}
	for i := rng.Intn(4); i > 0; i-- {
		n.AddPort(grid.Side(rng.Intn(4)), PortKind(rng.Intn(2)),
			rng.Intn(d.NY), rng.Intn(d.NY))
	}
	for i := rng.Intn(20); i > 0; i-- {
		c := rng.Intn(d.N())
		n.Liquid[c] = !n.Liquid[c]
		if n.Liquid[c] {
			n.TSV[c] = false
			n.Keepout[c] = false
		}
	}
	return n
}

// TestSaveLoadCanonicalHashRandomized extends the family round-trip test
// to randomized perturbations: for any width-free network the generators
// and mutations can produce, load(save(N)) is canonically identical.
func TestSaveLoadCanonicalHashRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1789))
	for i := 0; i < 200; i++ {
		n := randomizedNetwork(rng)
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("draw %d: write: %v", i, err)
		}
		saved := buf.String()
		got, err := Read(strings.NewReader(saved))
		if err != nil {
			t.Fatalf("draw %d: read: %v\nfile:\n%s", i, err, saved)
		}
		if gh, wh := got.CanonicalHash(), n.CanonicalHash(); gh != wh {
			t.Fatalf("draw %d: load(save(N)) hash %s != %s\nfile:\n%s", i, gh, wh, saved)
		}
	}
}
