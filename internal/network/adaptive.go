package network

import (
	"math"
	"sort"

	"lcn3d/internal/grid"
)

// DensityAdaptive builds straight west-east channels whose row density
// follows the heat distribution: hot bands keep every even row, cold
// bands are thinned so they run warmer. This is the paper's "factor 3"
// compensation (non-uniform channel distribution evening out non-uniform
// power) in its simplest manual form, and the style used for the
// difficult case 5 where the band-structured trees struggle.
//
// rowHeat gives the heat attributed to each grid row; keepFrac in (0, 1]
// is the fraction of candidate channel rows to keep (hottest first);
// maxGap bounds the number of consecutive even rows that may be skipped
// so no region is left uncooled.
func DensityAdaptive(d grid.Dims, rowHeat []float64, keepFrac float64, maxGap int) *Network {
	if keepFrac <= 0 || keepFrac > 1 {
		keepFrac = 1
	}
	if maxGap < 1 {
		maxGap = 1
	}
	n := New(d)

	// Candidate channel rows are the even rows; score each by the heat
	// of its neighborhood (smoothed over ±2 rows).
	var rows []int
	score := map[int]float64{}
	for y := 0; y < d.NY; y += 2 {
		rows = append(rows, y)
		var s float64
		for dy := -2; dy <= 2; dy++ {
			yy := y + dy
			if yy >= 0 && yy < d.NY && yy < len(rowHeat) {
				w := 1.0 / (1 + math.Abs(float64(dy)))
				s += rowHeat[yy] * w
			}
		}
		score[y] = s
	}
	keepCount := int(math.Ceil(keepFrac * float64(len(rows))))
	if keepCount < 2 {
		keepCount = 2
	}
	byScore := append([]int(nil), rows...)
	sort.Slice(byScore, func(a, b int) bool { return score[byScore[a]] > score[byScore[b]] })
	keep := map[int]bool{}
	for _, y := range byScore[:keepCount] {
		keep[y] = true
	}
	// Enforce the maximum gap: walk the even rows and force-keep one row
	// whenever maxGap consecutive candidates were dropped.
	gap := 0
	for _, y := range rows {
		if keep[y] {
			gap = 0
			continue
		}
		gap++
		if gap >= maxGap {
			keep[y] = true
			gap = 0
		}
	}
	for y := range keep {
		for x := 0; x < d.NX; x++ {
			n.SetLiquid(x, y, true)
		}
	}
	n.AddPort(grid.SideWest, Inlet, 0, d.NY-1)
	n.AddPort(grid.SideEast, Outlet, 0, d.NY-1)
	return n
}

// ColumnHeatLoads sums a power map's heat by grid column (for
// north-south channel variants of DensityAdaptive after rotation).
func ColumnHeatLoads(d grid.Dims, w []float64) []float64 {
	out := make([]float64, d.NX)
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			out[x] += w[d.Index(x, y)]
		}
	}
	return out
}
