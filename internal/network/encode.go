package network

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lcn3d/internal/grid"
)

// The network file format is line oriented, mirroring the stack format:
//
//	network <NX> <NY>
//	port <side> <inlet|outlet> <lo> <hi>
//	rows            # NY rows of NX chars, north row first:
//	<'#' liquid, '.' solid, 'T' tsv, 'X' keepout, '*' liquid-in-keepout?>
//	end
//
// The row art is identical to Network.String(), so saved files are
// directly human-readable.

// Write serializes the network.
func Write(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "network %d %d\n", n.Dims.NX, n.Dims.NY)
	for _, p := range n.Ports {
		fmt.Fprintf(bw, "port %s %s %d %d\n", p.Side, p.Kind, p.Lo, p.Hi)
	}
	fmt.Fprintln(bw, "rows")
	bw.WriteString(n.String())
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

var sidesByName = map[string]grid.Side{
	"east": grid.SideEast, "north": grid.SideNorth,
	"west": grid.SideWest, "south": grid.SideSouth,
}

// MaxEncodedDim bounds the per-axis grid size Read will allocate for.
// Real designs top out near 101x101; the bound exists so a malformed or
// hostile header ("network 999999999 999999999") fails fast instead of
// attempting a multi-gigabyte allocation.
const MaxEncodedDim = 4096

// Read parses a network written by Write. Untrusted input is safe: grid
// dimensions are bounded by MaxEncodedDim before any allocation.
func Read(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var n *Network
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("network: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#!") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "network":
			if len(f) != 3 {
				return nil, fail("network needs NX NY")
			}
			nx, err1 := strconv.Atoi(f[1])
			ny, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || nx < 1 || ny < 1 {
				return nil, fail("bad dimensions %q", line)
			}
			if nx > MaxEncodedDim || ny > MaxEncodedDim {
				return nil, fail("dimensions %dx%d exceed limit %d", nx, ny, MaxEncodedDim)
			}
			n = NewFree(grid.Dims{NX: nx, NY: ny})
		case "port":
			if n == nil {
				return nil, fail("port before network header")
			}
			if len(f) != 5 {
				return nil, fail("port needs side kind lo hi")
			}
			side, ok := sidesByName[f[1]]
			if !ok {
				return nil, fail("unknown side %q", f[1])
			}
			var kind PortKind
			switch f[2] {
			case "inlet":
				kind = Inlet
			case "outlet":
				kind = Outlet
			default:
				return nil, fail("unknown port kind %q", f[2])
			}
			lo, err1 := strconv.Atoi(f[3])
			hi, err2 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil {
				return nil, fail("bad port span")
			}
			n.AddPort(side, kind, lo, hi)
		case "rows":
			if n == nil {
				return nil, fail("rows before network header")
			}
			for y := n.Dims.NY - 1; y >= 0; y-- {
				if !sc.Scan() {
					return nil, fail("rows truncated at grid row %d", y)
				}
				lineNo++
				row := sc.Text()
				if len(row) != n.Dims.NX {
					return nil, fail("row has %d cells, want %d", len(row), n.Dims.NX)
				}
				for x := 0; x < n.Dims.NX; x++ {
					i := n.Dims.Index(x, y)
					switch row[x] {
					case '#':
						n.Liquid[i] = true
					case '.':
					case 'T':
						n.TSV[i] = true
					case 'X':
						n.Keepout[i] = true
					default:
						return nil, fail("unknown cell char %q", row[x])
					}
				}
			}
			if !sc.Scan() || strings.TrimSpace(sc.Text()) != "end" {
				return nil, fail("missing end marker")
			}
			lineNo++
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if n == nil {
		return nil, fmt.Errorf("network: empty input")
	}
	return n, nil
}
