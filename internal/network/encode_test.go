package network

import (
	"bytes"
	"strings"
	"testing"

	"lcn3d/internal/grid"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := grid.Dims{NX: 31, NY: 31}
	orig, err := Tree(d, UniformTreeSpec(d, 1, Branch4, 0.3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	CarveKeepout(orig, 12, 12, 17, 17)

	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != orig.Dims {
		t.Fatalf("dims %v != %v", got.Dims, orig.Dims)
	}
	for i := range orig.Liquid {
		if got.Liquid[i] != orig.Liquid[i] {
			t.Fatalf("liquid mismatch at %d", i)
		}
		// The art format renders keepout over TSV; TSV flags under the
		// keepout region are immaterial (liquid is forbidden either way).
		if !orig.Keepout[i] && got.TSV[i] != orig.TSV[i] {
			t.Fatalf("TSV mismatch at %d", i)
		}
	}
	// Keepout cells that are solid round trip as 'X'; keepout markers on
	// liquid are not representable, but CarveKeepout guarantees keepout
	// cells are solid.
	for i := range orig.Keepout {
		if orig.Keepout[i] && !orig.Liquid[i] && !got.Keepout[i] {
			t.Fatalf("keepout lost at %d", i)
		}
	}
	if len(got.Ports) != len(orig.Ports) {
		t.Fatalf("ports %d != %d", len(got.Ports), len(orig.Ports))
	}
	for i := range got.Ports {
		if got.Ports[i] != orig.Ports[i] {
			t.Fatalf("port %d: %+v != %+v", i, got.Ports[i], orig.Ports[i])
		}
	}
	if errs := got.Check(); len(errs) > 0 {
		t.Fatalf("round-tripped network illegal: %v", errs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad dims", "network x y\n"},
		{"port first", "port west inlet 0 3\n"},
		{"bad side", "network 3 3\nport up inlet 0 1\n"},
		{"bad kind", "network 3 3\nport west pump 0 1\n"},
		{"short rows", "network 3 3\nrows\n###\n"},
		{"wrong row width", "network 3 3\nrows\n####\n###\n###\nend\n"},
		{"bad char", "network 3 3\nrows\n?##\n###\n###\nend\n"},
		{"missing end", "network 3 3\nrows\n###\n###\n###\n"},
		{"unknown directive", "network 3 3\nfoo\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteIsHumanReadable(t *testing.T) {
	d := grid.Dims{NX: 5, NY: 3}
	n := Straight(d, grid.SideWest, 1)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "network 5 3") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "port west inlet 0 2") {
		t.Fatalf("missing port line:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("missing channel art:\n%s", out)
	}
}
