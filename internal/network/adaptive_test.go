package network

import (
	"testing"

	"lcn3d/internal/grid"
)

func TestDensityAdaptiveKeepsHotRows(t *testing.T) {
	d := grid.Dims{NX: 31, NY: 31}
	heat := make([]float64, d.NY)
	for y := 0; y < d.NY/2; y++ {
		heat[y] = 2 // south hot
	}
	for y := d.NY / 2; y < d.NY; y++ {
		heat[y] = 0.1
	}
	n := DensityAdaptive(d, heat, 0.6, 3)
	if errs := n.Check(); len(errs) > 0 {
		t.Fatalf("illegal: %v", errs)
	}
	south, north := 0, 0
	for y := 0; y < d.NY; y += 2 {
		full := true
		for x := 0; x < d.NX; x++ {
			if !n.IsLiquid(x, y) {
				full = false
				break
			}
		}
		if full {
			if y < d.NY/2 {
				south++
			} else {
				north++
			}
		}
	}
	if south <= north {
		t.Fatalf("hot south should keep more channels: south %d vs north %d", south, north)
	}
	if north == 0 {
		t.Fatal("maxGap should force some channels in the cold half")
	}
}

func TestDensityAdaptiveFullKeepIsStraight(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	heat := make([]float64, d.NY)
	for i := range heat {
		heat[i] = 1
	}
	n := DensityAdaptive(d, heat, 1.0, 2)
	want := Straight(d, grid.SideWest, 1)
	if n.NumLiquid() != want.NumLiquid() {
		t.Fatalf("keep=1 should equal dense straight: %d vs %d", n.NumLiquid(), want.NumLiquid())
	}
}

func TestDensityAdaptiveMaxGapEnforced(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	heat := make([]float64, d.NY)
	heat[0] = 100 // everything else cold
	n := DensityAdaptive(d, heat, 0.2, 2)
	gap := 0
	for y := 0; y < d.NY; y += 2 {
		if n.IsLiquid(5, y) {
			gap = 0
			continue
		}
		gap++
		if gap > 2 {
			t.Fatalf("gap of %d even rows at y=%d exceeds maxGap", gap, y)
		}
	}
}

func TestColumnHeatLoads(t *testing.T) {
	d := grid.Dims{NX: 2, NY: 3}
	w := []float64{1, 2, 3, 4, 5, 6}
	ch := ColumnHeatLoads(d, w)
	if ch[0] != 9 || ch[1] != 12 {
		t.Fatalf("column heats %v", ch)
	}
}
