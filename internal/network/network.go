// Package network represents liquid cooling networks with flexible
// topology on the discretized channel layer: which basic cells are liquid,
// where the TSV and keepout regions are, and where coolant enters and
// leaves the chip. It provides the paper's design-rule checks, the
// straight-channel baselines, the hierarchical tree-like family of
// Section 4.3, and several manual design styles used in the accuracy
// study of Fig. 9.
package network

import (
	"hash/fnv"
	"math"

	"lcn3d/internal/grid"
)

// PortKind distinguishes inlets from outlets.
type PortKind int

// Port kinds.
const (
	Inlet PortKind = iota
	Outlet
)

func (k PortKind) String() string {
	if k == Inlet {
		return "inlet"
	}
	return "outlet"
}

// Port is one continuous opening along a chip side, spanning boundary
// positions [Lo, Hi] inclusive. Only liquid boundary cells inside the
// span actually exchange coolant; solid cells in the span are simply
// sealed. The design rules allow at most one port per side.
type Port struct {
	Side grid.Side
	Kind PortKind
	Lo   int
	Hi   int
}

// Network is a cooling network on the channel layer's basic-cell grid.
type Network struct {
	Dims    grid.Dims
	Liquid  []bool // basic cell is a microchannel cell
	TSV     []bool // reserved for TSVs; may not be liquid
	Keepout []bool // design-forbidden region (benchmark case 3)
	Ports   []Port
	// Width optionally modulates the channel width per cell (meters; 0
	// falls back to the stack's nominal width). See width.go.
	Width []float64
}

// New returns an all-solid network with the standard TSV pattern of the
// paper (Fig. 2(b)): TSVs occupy basic cells whose x and y are both odd,
// leaving an even-row/even-column street graph for the channels.
func New(d grid.Dims) *Network {
	n := &Network{
		Dims:    d,
		Liquid:  make([]bool, d.N()),
		TSV:     make([]bool, d.N()),
		Keepout: make([]bool, d.N()),
	}
	for y := 1; y < d.NY; y += 2 {
		for x := 1; x < d.NX; x += 2 {
			n.TSV[d.Index(x, y)] = true
		}
	}
	return n
}

// NewFree returns an all-solid network without any TSV keepout, for unit
// tests and synthetic studies.
func NewFree(d grid.Dims) *Network {
	return &Network{
		Dims:    d,
		Liquid:  make([]bool, d.N()),
		TSV:     make([]bool, d.N()),
		Keepout: make([]bool, d.N()),
	}
}

// IsLiquid reports whether cell (x, y) is liquid.
func (n *Network) IsLiquid(x, y int) bool { return n.Liquid[n.Dims.Index(x, y)] }

// SetLiquid marks cell (x, y) liquid (or solid for v=false). Rule
// violations are deferred to Check.
func (n *Network) SetLiquid(x, y int, v bool) { n.Liquid[n.Dims.Index(x, y)] = v }

// SetKeepoutRect forbids channels in [x0, x1) x [y0, y1).
func (n *Network) SetKeepoutRect(x0, y0, x1, y1 int) {
	for y := max(y0, 0); y < min(y1, n.Dims.NY); y++ {
		for x := max(x0, 0); x < min(x1, n.Dims.NX); x++ {
			n.Keepout[n.Dims.Index(x, y)] = true
		}
	}
}

// AddPort appends a port. Spans are clamped to the side length.
func (n *Network) AddPort(side grid.Side, kind PortKind, lo, hi int) {
	L := side.Len(n.Dims)
	lo = max(lo, 0)
	hi = min(hi, L-1)
	n.Ports = append(n.Ports, Port{Side: side, Kind: kind, Lo: lo, Hi: hi})
}

// NumLiquid returns the number of liquid cells.
func (n *Network) NumLiquid() int {
	c := 0
	for _, v := range n.Liquid {
		if v {
			c++
		}
	}
	return c
}

// PortCells returns the linear indices of liquid boundary cells covered
// by ports of the given kind. A cell may appear once per covering port.
func (n *Network) PortCells(kind PortKind) []int {
	var out []int
	for _, p := range n.Ports {
		if p.Kind != kind {
			continue
		}
		for k := p.Lo; k <= p.Hi; k++ {
			x, y := p.Side.Cell(n.Dims, k)
			if n.IsLiquid(x, y) {
				out = append(out, n.Dims.Index(x, y))
			}
		}
	}
	return out
}

// PortSides returns, for every liquid cell index, the list of port kinds
// opening into it (usually at most one).
func (n *Network) portsByCell() map[int][]Port {
	m := make(map[int][]Port)
	for _, p := range n.Ports {
		for k := p.Lo; k <= p.Hi; k++ {
			x, y := p.Side.Cell(n.Dims, k)
			i := n.Dims.Index(x, y)
			if n.Liquid[i] {
				m[i] = append(m[i], p)
			}
		}
	}
	return m
}

// Check verifies the paper's design rules and returns the list of
// violations (empty means legal):
//
//  1. liquid cells may not overlap TSV cells;
//  2. liquid cells may not overlap the keepout region;
//  3. ports lie on chip edges (guaranteed by construction) with at most
//     one port per side;
//  4. there is at least one inlet and one outlet, and at least one
//     inlet-to-outlet liquid path exists.
//
// Check delegates to Validate but keeps the historical lenient view:
// stagnant (dangling) liquid is tolerated, because the flow solver
// excludes such components and the optimizers may pass through states
// with them. Trust boundaries that accept untrusted networks should use
// Validate directly.
func (n *Network) Check() []error {
	var errs []error
	for _, v := range n.Validate() {
		if v.Code == StagnantCells {
			continue
		}
		errs = append(errs, v)
	}
	return errs
}

// Components labels liquid cells by connected component (4-adjacency).
// The returned slice has Dims.N() entries: -1 for solid cells, otherwise
// a component id in [0, numComponents).
func (n *Network) Components() (labels []int, num int) {
	labels = make([]int, n.Dims.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	for start, liq := range n.Liquid {
		if !liq || labels[start] >= 0 {
			continue
		}
		labels[start] = num
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := n.Dims.Coord(i)
			n.Dims.Neighbors4(x, y, func(nx, ny int, _ grid.Dir) {
				j := n.Dims.Index(nx, ny)
				if n.Liquid[j] && labels[j] < 0 {
					labels[j] = num
					queue = append(queue, j)
				}
			})
		}
		num++
	}
	return labels, num
}

func (n *Network) hasInletOutletPath() bool {
	labels, _ := n.Components()
	inComp := make(map[int]bool)
	for _, i := range n.PortCells(Inlet) {
		inComp[labels[i]] = true
	}
	for _, i := range n.PortCells(Outlet) {
		if inComp[labels[i]] {
			return true
		}
	}
	return false
}

// StagnantCells returns liquid cells whose component touches no inlet or
// no outlet: they hold coolant but carry no flow.
func (n *Network) StagnantCells() []int {
	labels, num := n.Components()
	hasIn := make([]bool, num)
	hasOut := make([]bool, num)
	for _, i := range n.PortCells(Inlet) {
		hasIn[labels[i]] = true
	}
	for _, i := range n.PortCells(Outlet) {
		hasOut[labels[i]] = true
	}
	var out []int
	for i, l := range labels {
		if l >= 0 && (!hasIn[l] || !hasOut[l]) {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy.
func (n *Network) Clone() *Network {
	c := &Network{
		Dims:    n.Dims,
		Liquid:  append([]bool(nil), n.Liquid...),
		TSV:     append([]bool(nil), n.TSV...),
		Keepout: append([]bool(nil), n.Keepout...),
		Ports:   append([]Port(nil), n.Ports...),
	}
	if n.Width != nil {
		c.Width = append([]float64(nil), n.Width...)
	}
	return c
}

// Hash returns a 64-bit FNV hash of the liquid mask and ports, used as a
// cache key during optimization.
func (n *Network) Hash() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, len(n.Liquid)/8+1)
	var b byte
	for i, v := range n.Liquid {
		if v {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, b)
			b = 0
		}
	}
	buf = append(buf, b)
	h.Write(buf)
	for _, p := range n.Ports {
		h.Write([]byte{byte(p.Side), byte(p.Kind), byte(p.Lo), byte(p.Lo >> 8), byte(p.Hi), byte(p.Hi >> 8)})
	}
	for _, w := range n.Width {
		bits := math.Float64bits(w)
		h.Write([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24),
			byte(bits >> 32), byte(bits >> 40), byte(bits >> 48), byte(bits >> 56)})
	}
	return h.Sum64()
}

// String renders the network as ASCII art: '#' liquid, '.' solid, 'T'
// TSV, 'X' keepout, with the north row printed first.
func (n *Network) String() string {
	buf := make([]byte, 0, (n.Dims.NX+1)*n.Dims.NY)
	for y := n.Dims.NY - 1; y >= 0; y-- {
		for x := 0; x < n.Dims.NX; x++ {
			i := n.Dims.Index(x, y)
			switch {
			case n.Liquid[i]:
				buf = append(buf, '#')
			case n.Keepout[i]:
				buf = append(buf, 'X')
			case n.TSV[i]:
				buf = append(buf, 'T')
			default:
				buf = append(buf, '.')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
