package network

import (
	"fmt"
	"math"

	"lcn3d/internal/grid"
)

// ValidationCode classifies one network validation failure, so callers
// (notably the lcn-serve request layer) can reject malformed uploads
// with a machine-readable reason instead of a panic or a 500 deep in
// the solvers.
type ValidationCode string

// Validation failure classes.
const (
	// BadDims: grid dimensions or mask/width slice lengths are
	// inconsistent; any solve on such a network would index out of
	// bounds. Reported alone — no other check is meaningful.
	BadDims ValidationCode = "bad-dims"
	// BadWidth: a per-cell channel width is negative or non-finite.
	BadWidth ValidationCode = "bad-width"
	// TSVOverlap / KeepoutOverlap: liquid cells violate rule 1/2.
	TSVOverlap     ValidationCode = "tsv-overlap"
	KeepoutOverlap ValidationCode = "keepout-overlap"
	// BadPortSpan: a port covers no boundary positions; BadPortSide: a
	// port names a side outside the four chip edges. DuplicatePortSide:
	// more than one port on a side (rule 3).
	BadPortSpan       ValidationCode = "bad-port-span"
	BadPortSide       ValidationCode = "bad-port-side"
	DuplicatePortSide ValidationCode = "duplicate-port-side"
	// NoInlet / NoOutlet / NoPath: rule 4 (coolant must be able to
	// traverse the chip).
	NoInlet  ValidationCode = "no-inlet"
	NoOutlet ValidationCode = "no-outlet"
	NoPath   ValidationCode = "no-inlet-outlet-path"
	// StagnantCells: dangling segments — liquid whose component misses
	// an inlet or an outlet holds coolant but carries no flow. Legal for
	// the flow solver (which excludes them) but rejected at the service
	// boundary, where a dangling segment is always an authoring mistake.
	StagnantCells ValidationCode = "stagnant-cells"
)

// ValidationError is one typed violation found by Validate.
type ValidationError struct {
	Code   ValidationCode
	Detail string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("network [%s]: %s", e.Code, e.Detail)
}

// Validate runs the design rules of Check plus the well-formedness
// checks a trust boundary needs before handing an untrusted network to
// the solvers: dims/mask-length sanity, width sanity, port-side range,
// and dangling (stagnant) segments. It returns every violation; an
// empty slice means the network is safe to simulate.
func (n *Network) Validate() []*ValidationError {
	var errs []*ValidationError
	add := func(code ValidationCode, format string, args ...any) {
		errs = append(errs, &ValidationError{Code: code, Detail: fmt.Sprintf(format, args...)})
	}

	d := n.Dims
	if d.NX < 1 || d.NY < 1 {
		add(BadDims, "empty grid %dx%d", d.NX, d.NY)
		return errs
	}
	if len(n.Liquid) != d.N() || len(n.TSV) != d.N() || len(n.Keepout) != d.N() {
		add(BadDims, "mask lengths liquid=%d tsv=%d keepout=%d do not match %dx%d grid",
			len(n.Liquid), len(n.TSV), len(n.Keepout), d.NX, d.NY)
		return errs
	}
	if n.Width != nil && len(n.Width) != d.N() {
		add(BadDims, "width map length %d does not match %dx%d grid", len(n.Width), d.NX, d.NY)
		return errs
	}
	for i, w := range n.Width {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			x, y := d.Coord(i)
			add(BadWidth, "channel width %g at (%d,%d)", w, x, y)
			break
		}
	}

	for i, liq := range n.Liquid {
		if !liq {
			continue
		}
		x, y := d.Coord(i)
		if n.TSV[i] {
			add(TSVOverlap, "liquid cell (%d,%d) overlaps TSV", x, y)
		}
		if n.Keepout[i] {
			add(KeepoutOverlap, "liquid cell (%d,%d) in keepout region", x, y)
		}
	}

	perSide := map[grid.Side]int{}
	badSide := false
	for _, p := range n.Ports {
		if p.Side < 0 || int(p.Side) >= grid.NumSides {
			add(BadPortSide, "port on nonexistent side %d", int(p.Side))
			badSide = true
			continue
		}
		perSide[p.Side]++
		if p.Lo > p.Hi {
			add(BadPortSpan, "empty port span on side %v", p.Side)
		}
	}
	if badSide {
		// The reachability checks below walk PortCells, which panics on
		// a nonexistent side; with a corrupt port list they are
		// meaningless anyway.
		return errs
	}
	for side, c := range perSide {
		if c > 1 {
			add(DuplicatePortSide, "%d ports on side %v (at most one continuous port per side)", c, side)
		}
	}

	in := n.PortCells(Inlet)
	out := n.PortCells(Outlet)
	if len(in) == 0 {
		add(NoInlet, "no liquid inlet cell")
	}
	if len(out) == 0 {
		add(NoOutlet, "no liquid outlet cell")
	}
	if len(in) > 0 && len(out) > 0 && !n.hasInletOutletPath() {
		add(NoPath, "no liquid path from any inlet to any outlet")
	}
	if st := n.StagnantCells(); len(st) > 0 {
		x, y := d.Coord(st[0])
		add(StagnantCells, "%d dangling liquid cells carry no flow (first at (%d,%d))", len(st), x, y)
	}
	return errs
}
