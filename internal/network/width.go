package network

import (
	"fmt"
	"math"

	"lcn3d/internal/grid"
)

// Channel width modulation (the GreenCool approach of the paper's
// reference [10], Sabry et al., IEEE TCAD 2013): straight channels keep
// their topology but individual channels are narrowed to throttle their
// flow, steering coolant toward hotter rows. lcn3d implements it as an
// optional per-cell width field so it can serve as a prior-work baseline
// against flexible-topology networks.

// SetUniformWidth assigns one width to every liquid cell.
func (n *Network) SetUniformWidth(w float64) {
	n.Width = make([]float64, n.Dims.N())
	for i, liq := range n.Liquid {
		if liq {
			n.Width[i] = w
		}
	}
}

// WidthAt returns the channel width of cell (x, y), falling back to def
// when no modulation is set.
func (n *Network) WidthAt(x, y int, def float64) float64 {
	if n.Width == nil {
		return def
	}
	if w := n.Width[n.Dims.Index(x, y)]; w > 0 {
		return w
	}
	return def
}

// ModulateStraightWidths assigns per-row channel widths to a straight
// west-east network so that each channel's fluid conductance is
// proportional to its share of the heat load, equalizing the coolant
// temperature rise across channels (the GreenCool design rule). Widths
// are clamped to [minFrac, 1] x nominal. rowHeat[y] is the heat load
// attributed to grid row y; nominal is the unmodulated channel width.
func ModulateStraightWidths(n *Network, rowHeat []float64, nominal, height, minFrac float64) error {
	d := n.Dims
	if len(rowHeat) != d.NY {
		return fmt.Errorf("network: rowHeat has %d entries, want %d", len(rowHeat), d.NY)
	}
	if minFrac <= 0 || minFrac > 1 {
		return fmt.Errorf("network: minFrac %g outside (0, 1]", minFrac)
	}
	// Identify full straight channels (rows entirely liquid).
	type ch struct {
		y    int
		heat float64
	}
	var channels []ch
	for y := 0; y < d.NY; y++ {
		full := true
		for x := 0; x < d.NX; x++ {
			if !n.IsLiquid(x, y) {
				full = false
				break
			}
		}
		if full {
			channels = append(channels, ch{y: y})
		}
	}
	if len(channels) == 0 {
		return fmt.Errorf("network: no straight channels to modulate")
	}
	// Attribute each row's heat to its nearest channel(s), splitting ties
	// evenly so interior and edge channels are weighted consistently.
	for y := 0; y < d.NY; y++ {
		bestDist := d.NY
		for _, c := range channels {
			if dd := absInt(c.y - y); dd < bestDist {
				bestDist = dd
			}
		}
		var nearest []int
		for i, c := range channels {
			if absInt(c.y-y) == bestDist {
				nearest = append(nearest, i)
			}
		}
		for _, i := range nearest {
			channels[i].heat += rowHeat[y] / float64(len(nearest))
		}
	}
	var maxHeat float64
	for _, c := range channels {
		maxHeat = math.Max(maxHeat, c.heat)
	}
	if maxHeat == 0 {
		n.SetUniformWidth(nominal)
		return nil
	}
	// Target conductance ratio = heat ratio; invert g(w) per channel.
	// The hottest channel keeps the nominal (maximum) width.
	n.Width = make([]float64, d.N())
	for _, c := range channels {
		ratio := math.Max(c.heat/maxHeat, 1e-3)
		w := widthForConductanceRatio(ratio, nominal, height, minFrac)
		for x := 0; x < d.NX; x++ {
			n.Width[d.Index(x, c.y)] = w
		}
	}
	return nil
}

// widthForConductanceRatio solves g(w)/g(nominal) = ratio for w by
// bisection, where g(w) ∝ D_h(w)^2 * A_c(w) for fixed channel height.
func widthForConductanceRatio(ratio, nominal, height, minFrac float64) float64 {
	g := func(w float64) float64 {
		dh := 2 * w * height / (w + height)
		return dh * dh * w * height
	}
	target := ratio * g(nominal)
	lo, hi := minFrac*nominal, nominal
	if g(lo) >= target {
		return lo
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if g(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// CalibrateStraightWidths is the closed-loop variant of
// ModulateStraightWidths. The paper criticizes GreenCool's open-loop 1D
// rule because it "ignores heat transfer between regions cooled by
// different channels"; overcooled regions import heat laterally, so the
// geometric heat attribution misjudges each channel's true load.
// CalibrateStraightWidths instead iterates with feedback: measure returns
// the heat actually captured per channel row (e.g. Cv·Q_out·(T_out−T_in)
// from a full-chip simulation of the current widths); widths are then
// re-assigned so flow share matches the measured capture share.
func CalibrateStraightWidths(n *Network, measure func(*Network) (map[int]float64, error),
	nominal, height, minFrac float64, iters int) error {
	d := n.Dims
	if iters < 1 {
		iters = 1
	}
	if n.Width == nil {
		n.SetUniformWidth(nominal)
	}
	for it := 0; it < iters; it++ {
		captured, err := measure(n)
		if err != nil {
			return fmt.Errorf("network: width calibration iteration %d: %w", it, err)
		}
		var maxHeat float64
		for _, h := range captured {
			maxHeat = math.Max(maxHeat, h)
		}
		if maxHeat <= 0 {
			return fmt.Errorf("network: width calibration measured no heat")
		}
		for y, h := range captured {
			if y < 0 || y >= d.NY {
				return fmt.Errorf("network: measured channel row %d out of range", y)
			}
			ratio := math.Max(h/maxHeat, 1e-3)
			w := widthForConductanceRatio(ratio, nominal, height, minFrac)
			for x := 0; x < d.NX; x++ {
				if n.IsLiquid(x, y) {
					n.Width[d.Index(x, y)] = w
				}
			}
		}
	}
	return nil
}

// RowHeatLoads sums a power map's heat by grid row, the input
// ModulateStraightWidths expects for west-east channels.
func RowHeatLoads(d grid.Dims, w []float64) []float64 {
	out := make([]float64, d.NY)
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			out[y] += w[d.Index(x, y)]
		}
	}
	return out
}
