package network

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// canonicalVersion tags the canonical serialization so the hash can be
// evolved without silently aliasing old keys.
const canonicalVersion = "lcn-net-v2"

// AppendCanonical appends a canonical binary serialization of the network
// to buf and returns the extended slice. The encoding is stable across
// processes and construction paths: ports are sorted (the design rules
// allow at most one port per side, so sorting loses no information), and
// a nil Width slice encodes identically to an all-zero one. Two networks
// have equal canonical bytes iff they are structurally identical.
func (n *Network) AppendCanonical(buf []byte) []byte {
	buf = append(buf, canonicalVersion...)
	var u64 [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	putU64(uint64(n.Dims.NX))
	putU64(uint64(n.Dims.NY))

	// Cell flags, packed two cells per byte (liquid, TSV, keepout bits).
	// A TSV flag under a liquid or keepout cell is masked: the art file
	// format renders those states over TSV, and a flooded-through or
	// blocked via site is the same physical design either way, so masking
	// makes load(save(N)) canonically identical to N. (CarveKeepout's
	// detour ring routes liquid straight across TSV sites, so the
	// liquid-over-TSV overlap occurs on real benchmark networks.)
	var b byte
	for i := 0; i < n.Dims.N(); i++ {
		var c byte
		if n.Liquid[i] {
			c |= 1
		}
		if n.TSV[i] && !n.Keepout[i] && !n.Liquid[i] {
			c |= 2
		}
		if n.Keepout[i] {
			c |= 4
		}
		if i%2 == 0 {
			b = c
		} else {
			buf = append(buf, b|c<<4)
		}
	}
	if n.Dims.N()%2 == 1 {
		buf = append(buf, b)
	}

	ports := append([]Port(nil), n.Ports...)
	sort.Slice(ports, func(i, j int) bool {
		a, b := ports[i], ports[j]
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	putU64(uint64(len(ports)))
	for _, p := range ports {
		putU64(uint64(p.Side))
		putU64(uint64(p.Kind))
		putU64(uint64(int64(p.Lo)))
		putU64(uint64(int64(p.Hi)))
	}

	if n.hasWidths() {
		buf = append(buf, 1)
		for _, w := range n.Width {
			putU64(math.Float64bits(w))
		}
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func (n *Network) hasWidths() bool {
	for _, w := range n.Width {
		if w != 0 {
			return true
		}
	}
	return false
}

// CanonicalHash returns the hex SHA-256 of the canonical serialization.
// It is the content address used by caches and services: structurally
// identical networks hash identically regardless of how they were built
// (generator, file load, clone, port insertion order), across processes
// and releases of this package within one canonicalVersion.
func (n *Network) CanonicalHash() string {
	sum := sha256.Sum256(n.AppendCanonical(nil))
	return hex.EncodeToString(sum[:])
}
