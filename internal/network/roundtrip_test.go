package network

import (
	"bytes"
	"testing"

	"lcn3d/internal/grid"
)

// generatorFamilies builds one representative network per generator
// family on the given dims, named for failure messages.
func generatorFamilies(t *testing.T, d grid.Dims) map[string]*Network {
	t.Helper()
	fams := map[string]*Network{
		"straight/west":  Straight(d, grid.SideWest, 1),
		"straight/south": Straight(d, grid.SideSouth, 2),
		"serpentine":     Serpentine(d),
		"mesh":           Mesh(d, 1, 2),
		"comb":           Comb(d, 1),
	}
	for _, spec := range []struct {
		name  string
		trees int
		typ   BranchType
	}{
		{"tree/1x4", 1, Branch4},
		{"tree/2x2", 2, Branch2},
		{"tree/1x8", 1, Branch8},
	} {
		n, err := Tree(d, UniformTreeSpec(d, spec.trees, spec.typ, 0.35, 0.65))
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		fams[spec.name] = n
	}
	return fams
}

// TestSaveLoadCanonicalHashRoundTrip is the property test of the save
// format: for every generator family (and a keepout-carved variant),
// load(save(N)) must hash canonically identical to N.
func TestSaveLoadCanonicalHashRoundTrip(t *testing.T) {
	for _, d := range []grid.Dims{{NX: 21, NY: 21}, {NX: 31, NY: 21}} {
		fams := generatorFamilies(t, d)
		// Keepout-carved variant (benchmark case 3 construction path).
		carved := Straight(d, grid.SideWest, 1)
		CarveKeepout(carved, d.NX*2/5, d.NY/4, d.NX*3/5, d.NY/2)
		fams["straight/keepout"] = carved

		for name, n := range fams {
			var buf bytes.Buffer
			if err := Write(&buf, n); err != nil {
				t.Fatalf("%v %s: write: %v", d, name, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("%v %s: read: %v", d, name, err)
			}
			if gh, wh := got.CanonicalHash(), n.CanonicalHash(); gh != wh {
				t.Errorf("%v %s: load(save(N)) hash %s != %s", d, name, gh, wh)
			}
		}
	}
}

// TestCanonicalHashInvariants checks the content-address properties the
// service cache relies on.
func TestCanonicalHashInvariants(t *testing.T) {
	d := grid.Dims{NX: 21, NY: 21}
	n := Mesh(d, 1, 2)

	if n.Clone().CanonicalHash() != n.CanonicalHash() {
		t.Error("clone changed the canonical hash")
	}

	// Port insertion order must not matter.
	reordered := n.Clone()
	for i, j := 0, len(reordered.Ports)-1; i < j; i, j = i+1, j-1 {
		reordered.Ports[i], reordered.Ports[j] = reordered.Ports[j], reordered.Ports[i]
	}
	if reordered.CanonicalHash() != n.CanonicalHash() {
		t.Error("port order changed the canonical hash")
	}

	// A nil width slice is the same network as an all-zero one.
	zeroW := n.Clone()
	zeroW.Width = make([]float64, d.N())
	if zeroW.CanonicalHash() != n.CanonicalHash() {
		t.Error("all-zero Width differs from nil Width")
	}

	// Structural changes must change the hash.
	mutants := map[string]*Network{}
	flip := n.Clone()
	flip.Liquid[d.Index(0, 0)] = !flip.Liquid[d.Index(0, 0)]
	mutants["liquid flip"] = flip
	wider := n.Clone()
	wider.Width = make([]float64, d.N())
	wider.Width[3] = 75e-6
	mutants["nonzero width"] = wider
	port := n.Clone()
	port.Ports[0].Hi--
	mutants["port span"] = port
	for name, m := range mutants {
		if m.CanonicalHash() == n.CanonicalHash() {
			t.Errorf("%s did not change the canonical hash", name)
		}
	}

	// Different dims with identical flag prefixes must differ.
	a := NewFree(grid.Dims{NX: 4, NY: 6})
	b := NewFree(grid.Dims{NX: 6, NY: 4})
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Error("transposed dims collide")
	}
}
