package network

import (
	"math"
	"testing"

	"lcn3d/internal/grid"
)

func codes(errs []*ValidationError) map[ValidationCode]bool {
	m := make(map[ValidationCode]bool)
	for _, e := range errs {
		m[e.Code] = true
	}
	return m
}

func TestValidateLegalNetwork(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	if errs := n.Validate(); len(errs) != 0 {
		t.Fatalf("legal straight network rejected: %v", errs)
	}
}

func TestValidateDimsSanity(t *testing.T) {
	n := NewFree(d21)
	n.Liquid = n.Liquid[:10] // truncated mask would index out of range
	errs := n.Validate()
	if !codes(errs)[BadDims] {
		t.Fatalf("truncated mask not reported: %v", errs)
	}
	if len(errs) != 1 {
		t.Fatalf("bad dims must short-circuit, got %v", errs)
	}

	n2 := &Network{Dims: grid.Dims{NX: 0, NY: 5}}
	if errs := n2.Validate(); !codes(errs)[BadDims] {
		t.Fatalf("empty grid not reported: %v", errs)
	}
}

func TestValidateWidthSanity(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	n.Width = make([]float64, d21.N())
	n.Width[3] = math.NaN()
	if errs := n.Validate(); !codes(errs)[BadWidth] {
		t.Fatalf("NaN width not reported: %v", errs)
	}
	n.Width = n.Width[:4]
	if errs := n.Validate(); !codes(errs)[BadDims] {
		t.Fatalf("short width map not reported: %v", errs)
	}
}

func TestValidateStagnantSegments(t *testing.T) {
	n := Straight(d21, grid.SideWest, 2)
	n.SetLiquid(4, 2, true) // isolated pool between channel rows
	errs := n.Validate()
	if !codes(errs)[StagnantCells] {
		t.Fatalf("dangling segment not reported: %v", errs)
	}
	// The lenient Check keeps tolerating it.
	if chk := n.Check(); len(chk) != 0 {
		t.Fatalf("Check should tolerate stagnant cells: %v", chk)
	}
}

func TestValidatePortSide(t *testing.T) {
	n := Straight(d21, grid.SideWest, 1)
	n.Ports = append(n.Ports, Port{Side: grid.Side(9), Kind: Outlet, Lo: 0, Hi: 3})
	if errs := n.Validate(); !codes(errs)[BadPortSide] {
		t.Fatalf("nonexistent port side not reported: %v", errs)
	}
}

func TestValidateReachability(t *testing.T) {
	n := NewFree(d21)
	for y := 0; y < d21.NY; y += 2 {
		n.SetLiquid(0, y, true)
		n.SetLiquid(d21.NX-1, y, true)
	}
	n.AddPort(grid.SideWest, Inlet, 0, d21.NY-1)
	n.AddPort(grid.SideEast, Outlet, 0, d21.NY-1)
	got := codes(n.Validate())
	if !got[NoPath] {
		t.Fatalf("disconnected inlet/outlet not reported")
	}
	if !got[StagnantCells] {
		t.Fatalf("disconnected components are also stagnant")
	}
}
