package network

import (
	"fmt"

	"lcn3d/internal/grid"
)

// Straight builds the classic straight-microchannel baseline: horizontal
// channels on every rowStep-th even row, flowing from the inlet side to
// the opposite outlet side. inletSide must be SideWest or SideEast for
// horizontal channels, SideSouth or SideNorth for vertical ones.
// rowStep is in even-row units (1 = every even row, i.e. maximum
// density; 2 = every other even row, ...).
func Straight(d grid.Dims, inletSide grid.Side, rowStep int) *Network {
	if rowStep < 1 {
		rowStep = 1
	}
	n := New(d)
	horizontal := inletSide == grid.SideWest || inletSide == grid.SideEast
	if horizontal {
		for y := 0; y < d.NY; y += 2 * rowStep {
			for x := 0; x < d.NX; x++ {
				n.SetLiquid(x, y, true)
			}
		}
	} else {
		for x := 0; x < d.NX; x += 2 * rowStep {
			for y := 0; y < d.NY; y++ {
				n.SetLiquid(x, y, true)
			}
		}
	}
	out := oppositeSide(inletSide)
	n.AddPort(inletSide, Inlet, 0, inletSide.Len(d)-1)
	n.AddPort(out, Outlet, 0, out.Len(d)-1)
	return n
}

func oppositeSide(s grid.Side) grid.Side { return (s + 2) % grid.NumSides }

// Serpentine builds a single snake channel: horizontal runs on every
// other even row connected alternately at the east and west ends. The
// inlet is at the south-west, the outlet at the end of the last run.
// Used as one of the "manual styles" in the accuracy study.
func Serpentine(d grid.Dims) *Network {
	n := New(d)
	rows := evenRows(d)
	// Keep an odd number of runs so the snake ends at the east edge; with
	// an even count both ports would land on the west side, violating the
	// one-port-per-side rule.
	if len(rows)%2 == 0 {
		rows = rows[:len(rows)-1]
	}
	for ri, y := range rows {
		for x := 0; x < d.NX; x++ {
			n.SetLiquid(x, y, true)
		}
		if ri+1 < len(rows) {
			// Vertical connector at alternating ends.
			cx := 0
			if ri%2 == 0 {
				cx = d.NX - 1
			}
			for y2 := y; y2 <= rows[ri+1]; y2++ {
				n.SetLiquid(cx, y2, true)
			}
		}
	}
	n.AddPort(grid.SideWest, Inlet, 0, 0)
	last := rows[len(rows)-1]
	n.AddPort(grid.SideEast, Outlet, last, last)
	return n
}

// Mesh builds straight horizontal channels plus vertical cross-links
// every colStep-th even column, creating a 2D lattice. Cross-links even
// out pressure and temperature between channels; this is one of the
// strong manual styles.
func Mesh(d grid.Dims, rowStep, colStep int) *Network {
	n := Straight(d, grid.SideWest, rowStep)
	if colStep < 1 {
		colStep = 1
	}
	for x := 0; x < d.NX; x += 2 * colStep {
		for y := 0; y < d.NY; y++ {
			if !n.TSV[d.Index(x, y)] && !n.Keepout[d.Index(x, y)] {
				n.SetLiquid(x, y, true)
			}
		}
	}
	return n
}

// Comb builds a west header column feeding horizontal fingers on every
// other even row; fingers reach the east outlet. Flow in long fingers is
// weaker, producing a deliberately uneven profile — useful as an
// adversarial sample for the 2RM accuracy study.
func Comb(d grid.Dims, rowStep int) *Network {
	if rowStep < 1 {
		rowStep = 1
	}
	n := New(d)
	for y := 0; y < d.NY; y++ {
		n.SetLiquid(0, y, true) // header
	}
	for y := 0; y < d.NY; y += 2 * rowStep {
		for x := 0; x < d.NX; x++ {
			n.SetLiquid(x, y, true)
		}
	}
	n.AddPort(grid.SideSouth, Inlet, 0, 0)
	n.AddPort(grid.SideEast, Outlet, 0, d.NY-1)
	return n
}

// Rotate90 returns the network rotated 90° counter-clockwise:
// (x, y) -> (y, NX-1-x), with ports remapped accordingly. With odd grid
// dimensions the TSV pattern is preserved under rotation.
func (n *Network) Rotate90() *Network {
	d := n.Dims
	nd := grid.Dims{NX: d.NY, NY: d.NX}
	r := &Network{
		Dims:    nd,
		Liquid:  make([]bool, nd.N()),
		TSV:     make([]bool, nd.N()),
		Keepout: make([]bool, nd.N()),
	}
	if n.Width != nil {
		r.Width = make([]float64, nd.N())
	}
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			src := d.Index(x, y)
			dst := nd.Index(y, d.NX-1-x)
			r.Liquid[dst] = n.Liquid[src]
			r.TSV[dst] = n.TSV[src]
			r.Keepout[dst] = n.Keepout[src]
			if n.Width != nil {
				r.Width[dst] = n.Width[src]
			}
		}
	}
	// Side mapping under CCW rotation: east->north, north->west,
	// west->south, south->east.
	sideMap := map[grid.Side]grid.Side{
		grid.SideEast:  grid.SideNorth,
		grid.SideNorth: grid.SideWest,
		grid.SideWest:  grid.SideSouth,
		grid.SideSouth: grid.SideEast,
	}
	for _, p := range n.Ports {
		np := Port{Side: sideMap[p.Side], Kind: p.Kind}
		switch p.Side {
		case grid.SideEast, grid.SideWest:
			// Along-side coordinate was y; it stays the along-side
			// coordinate (now x) unchanged.
			np.Lo, np.Hi = p.Lo, p.Hi
		case grid.SideNorth, grid.SideSouth:
			// Along-side coordinate was x; new coordinate is NX-1-x,
			// which reverses the span.
			np.Lo, np.Hi = d.NX-1-p.Hi, d.NX-1-p.Lo
		}
		r.Ports = append(r.Ports, np)
	}
	return r
}

// MirrorX returns the network mirrored left-right: (x, y) -> (NX-1-x, y).
func (n *Network) MirrorX() *Network {
	d := n.Dims
	r := &Network{
		Dims:    d,
		Liquid:  make([]bool, d.N()),
		TSV:     make([]bool, d.N()),
		Keepout: make([]bool, d.N()),
	}
	if n.Width != nil {
		r.Width = make([]float64, d.N())
	}
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			src := d.Index(x, y)
			dst := d.Index(d.NX-1-x, y)
			r.Liquid[dst] = n.Liquid[src]
			r.TSV[dst] = n.TSV[src]
			r.Keepout[dst] = n.Keepout[src]
			if n.Width != nil {
				r.Width[dst] = n.Width[src]
			}
		}
	}
	sideMap := map[grid.Side]grid.Side{
		grid.SideEast:  grid.SideWest,
		grid.SideWest:  grid.SideEast,
		grid.SideNorth: grid.SideNorth,
		grid.SideSouth: grid.SideSouth,
	}
	for _, p := range n.Ports {
		np := Port{Side: sideMap[p.Side], Kind: p.Kind}
		switch p.Side {
		case grid.SideEast, grid.SideWest:
			np.Lo, np.Hi = p.Lo, p.Hi
		default:
			np.Lo, np.Hi = d.NX-1-p.Hi, d.NX-1-p.Lo
		}
		r.Ports = append(r.Ports, np)
	}
	return r
}

// Orientation identifies one of the eight global flow configurations of
// Fig. 8(a): four rotations, each optionally mirrored.
type Orientation struct {
	Rotations int  // 0..3 quarter turns counter-clockwise
	Mirror    bool // mirror in x before rotating
}

// AllOrientations lists the eight global flow directions.
func AllOrientations() []Orientation {
	var out []Orientation
	for _, m := range []bool{false, true} {
		for r := 0; r < 4; r++ {
			out = append(out, Orientation{Rotations: r, Mirror: m})
		}
	}
	return out
}

func (o Orientation) String() string {
	return fmt.Sprintf("rot%d/mirror=%v", o.Rotations, o.Mirror)
}

// Apply returns the network transformed by the orientation. Note that
// for non-square grids a quarter turn swaps the grid dimensions; callers
// with rectangular chips should restrict to Rotations in {0, 2}.
func (o Orientation) Apply(n *Network) *Network {
	r := n
	if o.Mirror {
		r = r.MirrorX()
	}
	for i := 0; i < o.Rotations%4; i++ {
		r = r.Rotate90()
	}
	return r
}

func evenRows(d grid.Dims) []int {
	var rows []int
	for y := 0; y < d.NY; y += 2 {
		rows = append(rows, y)
	}
	return rows
}
