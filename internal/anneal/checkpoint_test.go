package anneal

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestCountingSourceStream: the wrapper must pass the stock stream
// through untouched and skip must land on the exact draw position.
func TestCountingSourceStream(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	counted := rand.New(newCountingSource(42))
	for i := 0; i < 500; i++ {
		switch i % 4 {
		case 0:
			if a, b := plain.Uint64(), counted.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := plain.Intn(1000), counted.Intn(1000); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := plain.Int63(), counted.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		}
	}

	// Fast-forward: draws draws then compare next values.
	ref := newCountingSource(7)
	r := rand.New(ref)
	for i := 0; i < 137; i++ {
		r.Float64()
		r.Intn(10)
	}
	ff := newCountingSource(7)
	ff.skip(ref.draws)
	for i := 0; i < 50; i++ {
		if a, b := ref.Uint64(), ff.Uint64(); a != b {
			t.Fatalf("skip(%d) diverged at +%d: %d vs %d", ref.draws, i, a, b)
		}
	}
}

// toyProblem is a deterministic synthetic annealing target: minimize
// |s - 1000| with moves that random-walk s. Infeasible states (negative)
// cost +Inf to exercise the Inf paths through a checkpoint round trip.
func toyMove(rng *rand.Rand, chain int, cur int) int {
	step := rng.Intn(21) - 10
	if rng.Float64() < 0.05 {
		step *= 13
	}
	return cur + step
}

func toyCost(chain int, s int) float64 {
	if s < 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(s - 1000))
}

func toyCfg() Config {
	return Config{
		Iterations: 60, Neighbors: 4, CoolRate: 0.95, InitTemp: 50,
		Seed: 99, Chains: 3, ExchangeEvery: 5, Parallelism: 4,
	}
}

// TestResumeChainsBitwise resumes from every barrier checkpoint of a
// straight run and requires the identical final state and statistics.
func TestResumeChainsBitwise(t *testing.T) {
	cfg := toyCfg()
	var cps []*Checkpoint[int]
	best, cost, stats := RunChains(context.Background(), cfg, 500, toyMove, toyCost,
		Hooks[int]{Snapshot: func(cp *Checkpoint[int]) { cps = append(cps, cp) }})
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}

	for i, cp := range cps {
		rb, rc, rs := ResumeChains(context.Background(), cfg, cp, 0, toyMove, toyCost, Hooks[int]{})
		if rb != best || rc != cost {
			t.Fatalf("checkpoint %d (done=%d): resumed best/cost %d/%v, want %d/%v",
				i, cp.Done, rb, rc, best, cost)
		}
		if !reflect.DeepEqual(rs, stats) {
			t.Fatalf("checkpoint %d: resumed stats %+v, want %+v", i, rs, stats)
		}
	}
}

// TestResumeChainsAfterCancel cancels mid-run at a barrier, resumes
// from the final checkpoint, and requires equality with an
// uninterrupted run — the service drain/restart path in miniature.
func TestResumeChainsAfterCancel(t *testing.T) {
	cfg := toyCfg()
	best, cost, stats := RunChains(context.Background(), cfg, 500, toyMove, toyCost, Hooks[int]{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint[int]
	barriers := 0
	RunChains(ctx, cfg, 500, toyMove, toyCost, Hooks[int]{
		Snapshot: func(cp *Checkpoint[int]) {
			last = cp
			if barriers++; barriers == 4 {
				cancel() // run stops at this barrier, checkpoint in hand
			}
		},
	})
	if last == nil || last.Done >= cfg.Iterations {
		t.Fatalf("expected a mid-run checkpoint, got %+v", last)
	}

	rb, rc, rs := ResumeChains(context.Background(), cfg, last, 0, toyMove, toyCost, Hooks[int]{})
	if rb != best || rc != cost || !reflect.DeepEqual(rs, stats) {
		t.Fatalf("cancel+resume: got %d/%v %+v, want %d/%v %+v", rb, rc, rs, best, cost, stats)
	}
}

// TestResumeChainsChainMismatch: resuming with the wrong chain count
// must panic rather than silently corrupt determinism.
func TestResumeChainsChainMismatch(t *testing.T) {
	cfg := toyCfg()
	var last *Checkpoint[int]
	RunChains(context.Background(), cfg, 500, toyMove, toyCost,
		Hooks[int]{Snapshot: func(cp *Checkpoint[int]) { last = cp }})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on chain-count mismatch")
		}
	}()
	bad := cfg
	bad.Chains = 5
	ResumeChains(context.Background(), bad, last, 0, toyMove, toyCost, Hooks[int]{})
}
