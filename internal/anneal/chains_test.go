package anneal

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func chainMove(rng *rand.Rand, _ int, x float64) float64 { return x + rng.NormFloat64() }

func chainQuad(_ int, x float64) float64 { return quad(x) }

func TestRunChainsFindsQuadraticMinimum(t *testing.T) {
	best, cost, stats := RunChains(context.Background(),
		Config{Iterations: 100, Neighbors: 8, Seed: 1, Chains: 4},
		100.0, chainMove, chainQuad, Hooks[float64]{})
	if math.Abs(best-7) > 0.5 {
		t.Fatalf("best %g, want ~7 (cost %g)", best, cost)
	}
	if stats.Chains != 4 || len(stats.PerChain) != 4 {
		t.Fatalf("chain bookkeeping: %+v", stats)
	}
	if stats.Evaluations < 4*100 {
		t.Fatalf("too few evaluations: %d", stats.Evaluations)
	}
}

// runOnce executes one fixed-seed multi-chain run at the given
// parallelism and returns everything observable.
func runOnce(par, chains int) (float64, float64, ChainStats) {
	return RunChains(context.Background(),
		Config{Iterations: 60, Neighbors: 6, Seed: 42, Chains: chains,
			ExchangeEvery: 4, Parallelism: par},
		77.0, chainMove, chainQuad, Hooks[float64]{})
}

func TestRunChainsDeterministicAcrossWorkerCounts(t *testing.T) {
	refBest, refCost, refStats := runOnce(1, 5)
	for _, par := range []int{2, 3, 8, 32} {
		b, c, st := runOnce(par, 5)
		if b != refBest || c != refCost {
			t.Fatalf("parallelism %d changed the result: %g/%g vs %g/%g", par, b, c, refBest, refCost)
		}
		if !reflect.DeepEqual(st, refStats) {
			t.Fatalf("parallelism %d changed the stats:\n%+v\nvs\n%+v", par, st, refStats)
		}
	}
}

func TestRunChainsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	refBest, refCost, refStats := runOnce(8, 4)
	old := runtime.GOMAXPROCS(1)
	b, c, st := runOnce(8, 4)
	runtime.GOMAXPROCS(old)
	if b != refBest || c != refCost || !reflect.DeepEqual(st, refStats) {
		t.Fatalf("GOMAXPROCS=1 changed the result: %g/%g vs %g/%g", b, c, refBest, refCost)
	}
}

func TestRunChainsSeedsAreDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for c := 0; c < 16; c++ {
		s := chainSeed(7, c)
		if seen[s] {
			t.Fatalf("chain %d repeats seed %d", c, s)
		}
		seen[s] = true
	}
	if chainSeed(7, 0) == chainSeed(8, 0) {
		t.Fatal("root seed does not influence chain seeds")
	}
}

func TestRunChainsExchangeAdoptsGlobalBest(t *testing.T) {
	// A two-basin landscape: most chains start in the shallow basin; at
	// barriers, chains lagging behind the luckiest one must adopt its
	// state. With several chains and frequent exchanges, some adoption
	// is guaranteed on this landscape.
	cost := func(_ int, x float64) float64 {
		local := x * x
		global := (x-40)*(x-40)*0.25 - 100
		return math.Min(local, global)
	}
	move := func(rng *rand.Rand, _ int, x float64) float64 { return x + rng.NormFloat64()*20 }
	_, c, stats := RunChains(context.Background(),
		Config{Iterations: 100, Neighbors: 8, Seed: 3, Chains: 6, ExchangeEvery: 2},
		5.0, move, cost, Hooks[float64]{})
	if stats.Adoptions == 0 {
		t.Fatal("no chain ever adopted the global best")
	}
	if c > -99 {
		t.Fatalf("exchange should help reach the deep basin, got cost %g", c)
	}
	if stats.Exchanges != 50 {
		t.Fatalf("exchanges %d, want 50", stats.Exchanges)
	}
}

func TestRunChainsAllInfeasibleNeverAdopts(t *testing.T) {
	cost := func(_ int, x float64) float64 { return math.Inf(1) }
	_, c, stats := RunChains(context.Background(),
		Config{Iterations: 10, Neighbors: 2, Seed: 4, Chains: 3, ExchangeEvery: 2},
		0.0, chainMove, cost, Hooks[float64]{})
	if !math.IsInf(c, 1) {
		t.Fatalf("cost should remain +Inf, got %g", c)
	}
	if stats.Adoptions != 0 || stats.Accepted != 0 {
		t.Fatalf("infeasible landscape: %+v", stats)
	}
}

func TestRunChainsOnIterationSequentialPerChain(t *testing.T) {
	// OnIteration must never overlap the same chain's cost evaluations,
	// and must see iterations in order.
	const chains = 4
	var inEval [chains]atomic.Int32
	lastIter := make([]int, chains)
	for i := range lastIter {
		lastIter[i] = -1
	}
	hooks := Hooks[float64]{
		OnIteration: func(chain, iter int, cur float64) {
			if n := inEval[chain].Load(); n != 0 {
				t.Errorf("chain %d: OnIteration with %d evaluations in flight", chain, n)
			}
			if iter != lastIter[chain]+1 {
				t.Errorf("chain %d: iteration %d after %d", chain, iter, lastIter[chain])
			}
			lastIter[chain] = iter
		},
	}
	cost := func(chain int, x float64) float64 {
		inEval[chain].Add(1)
		defer inEval[chain].Add(-1)
		return quad(x)
	}
	RunChains(context.Background(),
		Config{Iterations: 12, Neighbors: 4, Seed: 5, Chains: chains, ExchangeEvery: 3},
		10.0, chainMove, cost, hooks)
	for c, last := range lastIter {
		if last != 11 {
			t.Fatalf("chain %d stopped at iteration %d", c, last)
		}
	}
}

func TestRunChainsProgressAtBarriers(t *testing.T) {
	var calls int
	hooks := Hooks[float64]{
		Progress: func(cp []ChainProgress) {
			calls++
			if len(cp) != 3 {
				t.Fatalf("progress for %d chains, want 3", len(cp))
			}
			for i, p := range cp {
				if p.Chain != i {
					t.Fatalf("progress out of chain order: %+v", cp)
				}
				if p.Evaluations == 0 {
					t.Fatalf("chain %d reports no evaluations", i)
				}
			}
		},
	}
	RunChains(context.Background(),
		Config{Iterations: 10, Neighbors: 2, Seed: 6, Chains: 3, ExchangeEvery: 5},
		10.0, chainMove, chainQuad, hooks)
	if calls != 2 {
		t.Fatalf("progress called %d times, want 2 (10 iterations / exchange 5)", calls)
	}
}

func TestRunChainsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	cost := func(_ int, x float64) float64 {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		time.Sleep(time.Millisecond)
		return quad(x)
	}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan struct{})
	var c float64
	go func() {
		_, c, _ = RunChains(ctx,
			Config{Iterations: 10_000, Neighbors: 4, Seed: 7, Chains: 4, ExchangeEvery: 4},
			50.0, chainMove, cost, Hooks[float64]{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not stop")
	}
	if math.IsNaN(c) {
		t.Fatal("cancelled run returned NaN")
	}
}

func TestRunChainsNegativeExchangeRunsIndependently(t *testing.T) {
	_, _, stats := RunChains(context.Background(),
		Config{Iterations: 20, Neighbors: 2, Seed: 8, Chains: 3, ExchangeEvery: -1},
		10.0, chainMove, chainQuad, Hooks[float64]{})
	if stats.Exchanges != 1 {
		t.Fatalf("independent chains should reduce exactly once, got %d", stats.Exchanges)
	}
}
