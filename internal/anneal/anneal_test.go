package anneal

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// quadratic cost with minimum at 7.
func quad(x float64) float64 { return (x - 7) * (x - 7) }

func moveFloat(rng *rand.Rand, x float64) float64 { return x + rng.NormFloat64() }

func TestRunFindsQuadraticMinimum(t *testing.T) {
	best, cost, stats := Run(Config{Iterations: 200, Neighbors: 8, Seed: 1}, 100.0, moveFloat, quad)
	if math.Abs(best-7) > 0.5 {
		t.Fatalf("best %g, want ~7 (cost %g)", best, cost)
	}
	if stats.Evaluations < 200 {
		t.Fatalf("too few evaluations: %d", stats.Evaluations)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, ca, _ := Run(Config{Iterations: 50, Neighbors: 4, Seed: 42}, 30.0, moveFloat, quad)
	b, cb, _ := Run(Config{Iterations: 50, Neighbors: 4, Seed: 42}, 30.0, moveFloat, quad)
	if a != b || ca != cb {
		t.Fatalf("same seed should give identical runs: %g/%g vs %g/%g", a, ca, b, cb)
	}
}

func TestRunHandlesInfeasible(t *testing.T) {
	// Cost is +Inf left of 5; SA must still find the feasible minimum 7.
	cost := func(x float64) float64 {
		if x < 5 {
			return math.Inf(1)
		}
		return quad(x)
	}
	best, c, _ := Run(Config{Iterations: 300, Neighbors: 8, Seed: 3}, 20.0, moveFloat, cost)
	if math.IsInf(c, 1) || math.Abs(best-7) > 0.7 {
		t.Fatalf("best %g cost %g", best, c)
	}
}

func TestRunAllInfeasibleStaysPut(t *testing.T) {
	cost := func(x float64) float64 { return math.Inf(1) }
	_, c, stats := Run(Config{Iterations: 20, Neighbors: 4, Seed: 4}, 0.0, moveFloat, cost)
	if !math.IsInf(c, 1) {
		t.Fatalf("cost should remain +Inf, got %g", c)
	}
	if stats.Accepted != 0 {
		t.Fatalf("no infeasible candidate should be accepted, got %d", stats.Accepted)
	}
}

func TestConvergeStopsEarly(t *testing.T) {
	calls := int64(0)
	cost := func(x float64) float64 {
		atomic.AddInt64(&calls, 1)
		return 0 // flat landscape: nothing ever improves
	}
	_, _, stats := Run(Config{Iterations: 1000, Neighbors: 2, Seed: 5, Converge: 10}, 0.0, moveFloat, cost)
	if stats.Iterations > 30 {
		t.Fatalf("converge should stop early, ran %d iterations", stats.Iterations)
	}
}

func TestMoveNeverSeesMutatedState(t *testing.T) {
	// States are slices; move must receive the current accepted state.
	type st = []float64
	cost := func(s st) float64 { return quad(s[0]) }
	move := func(rng *rand.Rand, s st) st {
		c := append(st(nil), s...)
		c[0] += rng.NormFloat64()
		return c
	}
	best, _, _ := Run(Config{Iterations: 150, Neighbors: 6, Seed: 6}, st{50}, move, cost)
	if math.Abs(best[0]-7) > 1 {
		t.Fatalf("best %v", best)
	}
}

func TestMultiRoundBeatsOrMatchesSingle(t *testing.T) {
	// A deceptive cost with a local basin at 0 and global minimum at 40.
	cost := func(x float64) float64 {
		local := x * x
		global := (x-40)*(x-40)*0.25 - 100
		return math.Min(local, global)
	}
	_, c1, _ := Run(Config{Iterations: 60, Neighbors: 4, Seed: 9}, 5.0, moveFloat, cost)
	_, cm, _ := MultiRound(Config{Iterations: 60, Neighbors: 4, Seed: 9}, 6, 5.0, moveFloat, cost)
	if cm > c1 {
		t.Fatalf("multi-round %g should not be worse than single %g", cm, c1)
	}
}

func TestParallelEvaluationActuallyConcurrent(t *testing.T) {
	var inFlight, maxInFlight int64
	cost := func(x float64) float64 {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&maxInFlight)
			if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // small spin to overlap
			_ = math.Sqrt(float64(i))
		}
		atomic.AddInt64(&inFlight, -1)
		return quad(x)
	}
	Run(Config{Iterations: 20, Neighbors: 16, Seed: 7, Parallelism: 8}, 0.0, moveFloat, cost)
	if atomic.LoadInt64(&maxInFlight) < 2 {
		t.Skip("no overlap observed; machine may be single-core")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Iterations <= 0 || c.Neighbors <= 0 || c.CoolRate <= 0 || c.Parallelism <= 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
}

func TestMultiRoundDeterministicPerSeed(t *testing.T) {
	cost := func(x float64) float64 { return quad(x) }
	a, ca, _ := MultiRound(Config{Iterations: 40, Neighbors: 4, Seed: 11}, 3, 25.0, moveFloat, cost)
	b, cb, _ := MultiRound(Config{Iterations: 40, Neighbors: 4, Seed: 11}, 3, 25.0, moveFloat, cost)
	if a != b || ca != cb {
		t.Fatalf("MultiRound should be deterministic per seed: %g/%g vs %g/%g", a, ca, b, cb)
	}
}

func TestMultiRoundAggregatesStats(t *testing.T) {
	_, _, stats := MultiRound(Config{Iterations: 10, Neighbors: 2, Seed: 5}, 4, 10.0, moveFloat, quad)
	if stats.Iterations != 40 {
		t.Fatalf("aggregated iterations %d, want 40", stats.Iterations)
	}
	if stats.Evaluations < 80 {
		t.Fatalf("aggregated evaluations %d too low", stats.Evaluations)
	}
}

func TestMultiRoundZeroRoundsClamped(t *testing.T) {
	best, c, _ := MultiRound(Config{Iterations: 30, Neighbors: 4, Seed: 6}, 0, 20.0, moveFloat, quad)
	if math.IsInf(c, 1) || math.Abs(best-7) > 3 {
		t.Fatalf("zero rounds should clamp to one round and still work: %g (%g)", best, c)
	}
}
