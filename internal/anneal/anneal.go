// Package anneal provides the simulated-annealing engine behind the
// paper's network topology search (Algorithm 1). Each iteration generates
// a batch of neighbor candidates, evaluates them concurrently (the paper
// evaluates 64 neighboring solutions simultaneously on an 80-core
// server), picks the best, and accepts or rejects it with the Metropolis
// criterion.
package anneal

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Config tunes one SA run.
type Config struct {
	Iterations int     // outer iterations
	Neighbors  int     // candidates per iteration (default 8)
	InitTemp   float64 // initial Metropolis temperature, in cost units
	CoolRate   float64 // geometric cooling per iteration (default 0.92)
	Seed       int64
	// Converge stops the run early after this many consecutive
	// non-improving iterations (0 disables).
	Converge int
	// Parallelism bounds concurrent cost evaluations (default NumCPU).
	// It never affects results, only wall-clock.
	Parallelism int

	// Chains is the number of independent replicas RunChains executes
	// (default 1). Ignored by Run/MultiRound.
	Chains int
	// ExchangeEvery is the number of iterations between best-state
	// exchange barriers in RunChains (default 5; negative runs the
	// chains fully independently, reducing only at the end).
	ExchangeEvery int
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.Neighbors <= 0 {
		c.Neighbors = 8
	}
	if c.CoolRate <= 0 || c.CoolRate >= 1 {
		c.CoolRate = 0.92
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// Stats reports what a run did.
type Stats struct {
	Iterations  int
	Evaluations int
	Accepted    int
	Improved    int
}

// Run anneals from the initial state. move must return a fresh candidate
// (never mutate its argument); cost returns +Inf for infeasible states.
// It returns the best state seen, its cost, and run statistics.
func Run[S any](cfg Config, initial S, move func(*rand.Rand, S) S, cost func(S) float64) (S, float64, Stats) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := initial
	curCost := cost(cur)
	best := cur
	bestCost := curCost
	stats := Stats{Evaluations: 1}

	temp := cfg.InitTemp
	if temp <= 0 {
		// Auto-scale: a tenth of the initial cost, or 1 when infeasible.
		temp = math.Abs(curCost) / 10
		if temp == 0 || math.IsInf(temp, 0) || math.IsNaN(temp) {
			temp = 1
		}
	}

	type cand struct {
		s S
		c float64
	}
	sinceImprove := 0
	for it := 0; it < cfg.Iterations; it++ {
		stats.Iterations++
		// Generate candidates sequentially (cheap, keeps determinism),
		// evaluate them in parallel (expensive).
		cands := make([]cand, cfg.Neighbors)
		for i := range cands {
			cands[i].s = move(rng, cur)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Parallelism)
		for i := range cands {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				cands[i].c = cost(cands[i].s)
				<-sem
			}(i)
		}
		wg.Wait()
		stats.Evaluations += len(cands)

		bi := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].c < cands[bi].c {
				bi = i
			}
		}
		next, nextCost := cands[bi].s, cands[bi].c

		accept := false
		switch {
		case math.IsInf(nextCost, 1):
			accept = false
		case nextCost <= curCost:
			accept = true
		default:
			accept = rng.Float64() < math.Exp((curCost-nextCost)/math.Max(temp, 1e-300))
		}
		if accept {
			cur, curCost = next, nextCost
			stats.Accepted++
		}
		if nextCost < bestCost {
			best, bestCost = next, nextCost
			stats.Improved++
			sinceImprove = 0
		} else {
			sinceImprove++
			if cfg.Converge > 0 && sinceImprove >= cfg.Converge {
				return best, bestCost, stats
			}
		}
		temp *= cfg.CoolRate
	}
	return best, bestCost, stats
}

// MultiRound runs several independent SA rounds (different seeds) and
// returns the best result, mirroring the paper's per-stage rounds where
// "in different rounds of a stage, all settings are the same except the
// random seed". Rounds execute concurrently.
func MultiRound[S any](cfg Config, rounds int, initial S, move func(*rand.Rand, S) S, cost func(S) float64) (S, float64, Stats) {
	if rounds < 1 {
		rounds = 1
	}
	type result struct {
		s     S
		c     float64
		stats Stats
	}
	results := make([]result, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := cfg
			c.Seed = cfg.Seed + int64(r)*7919
			// Share the parallelism budget across rounds.
			c.Parallelism = max(1, cfg.withDefaults().Parallelism/rounds)
			s, cost2, st := Run(c, initial, move, cost)
			results[r] = result{s, cost2, st}
		}(r)
	}
	wg.Wait()
	best := results[0]
	for _, r := range results[1:] {
		best.stats.Evaluations += r.stats.Evaluations
		best.stats.Iterations += r.stats.Iterations
		best.stats.Accepted += r.stats.Accepted
		best.stats.Improved += r.stats.Improved
		if r.c < best.c {
			best.s, best.c = r.s, r.c
		}
	}
	return best.s, best.c, best.stats
}
