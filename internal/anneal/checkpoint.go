package anneal

import "math/rand"

// Checkpoint/resume for RunChains. A chain's RNG position is recorded
// as (root seed, draw count): the stock math/rand generator advances
// its internal state exactly one step per Int63 or Uint64 call, so a
// fresh source fast-forwarded by the recorded number of draws lands on
// the same state and the resumed run is bitwise identical to one that
// was never interrupted. Snapshots are taken at exchange barriers only,
// where every chain goroutine is parked, so the captured state is a
// consistent cut of the whole ensemble.

// countingSource wraps the stock math/rand source and counts draws.
// Values pass through untouched, so the stream is identical to an
// unwrapped rand.NewSource with the same seed.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// skip advances a fresh source to draw position n.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws = n
}

// ChainCheckpoint is one chain's state at an exchange barrier. The Cur
// and Best fields alias the live chain state at capture time: Snapshot
// hooks must copy or serialize them before returning if S holds
// pointers or slices.
type ChainCheckpoint[S any] struct {
	Draws    uint64 // RNG draws consumed since chain start
	Cur      S
	CurCost  float64
	Best     S
	BestCost float64
	Temp     float64
	Stats    Stats
}

// Checkpoint is the full RunChains state at an exchange barrier,
// sufficient to resume via ResumeChains with the same Config.
type Checkpoint[S any] struct {
	Done           int // iterations completed
	SinceImprove   int
	GlobalBest     S
	GlobalBestCost float64
	Exchanges      int
	Adoptions      int
	Chains         []ChainCheckpoint[S]
}

// snapshot captures the ensemble state. Called at a barrier from the
// coordinator goroutine while all chains are parked.
func snapshot[S any](chains []*chainState[S], done, sinceImprove int,
	globalBest S, globalBestCost float64, cstats ChainStats) *Checkpoint[S] {
	cp := &Checkpoint[S]{
		Done: done, SinceImprove: sinceImprove,
		GlobalBest: globalBest, GlobalBestCost: globalBestCost,
		Exchanges: cstats.Exchanges, Adoptions: cstats.Adoptions,
		Chains: make([]ChainCheckpoint[S], len(chains)),
	}
	for c, st := range chains {
		cp.Chains[c] = ChainCheckpoint[S]{
			Draws: st.src.draws,
			Cur:   st.cur, CurCost: st.curCost,
			Best: st.best, BestCost: st.bestCost,
			Temp: st.temp, Stats: st.stats,
		}
	}
	return cp
}

// restore rebuilds per-chain state from a checkpoint: each chain's RNG
// is recreated from the deterministic chain seed and fast-forwarded to
// its recorded draw position. No cost evaluations run.
func restore[S any](cfg Config, from *Checkpoint[S]) []*chainState[S] {
	chains := make([]*chainState[S], len(from.Chains))
	for c := range from.Chains {
		cc := &from.Chains[c]
		src := newCountingSource(chainSeed(cfg.Seed, c))
		src.skip(cc.Draws)
		chains[c] = &chainState[S]{
			rng: rand.New(src), src: src,
			cur: cc.Cur, curCost: cc.CurCost,
			best: cc.Best, bestCost: cc.BestCost,
			temp: cc.Temp, stats: cc.Stats,
		}
	}
	return chains
}
