package anneal

import (
	"context"
	"math"
	"math/rand"
	"sync"
)

// Multi-chain simulated annealing: K independent replicas of the
// Metropolis chain of Run, each with its own deterministically derived
// seed, synchronizing at periodic exchange barriers where the global
// best state (reduced in (cost, chain-index) order, never completion
// order) is adopted by chains that have fallen behind. The engine is
// bitwise-deterministic for a fixed root seed regardless of how many
// goroutines execute it: every ordering-sensitive decision — candidate
// generation, Metropolis acceptance, best reduction, exchange adoption —
// happens either sequentially inside one chain or index-ordered at a
// barrier. Only wall-clock varies with Parallelism.

// ChainProgress is one chain's position, reported at exchange barriers.
type ChainProgress struct {
	Chain       int     `json:"chain"`
	Iteration   int     `json:"iteration"`
	BestCost    float64 `json:"best_cost"`
	CurCost     float64 `json:"cur_cost"`
	Evaluations int     `json:"evaluations"`
}

// ChainStats extends Stats with multi-chain bookkeeping.
type ChainStats struct {
	Stats         // aggregated across chains
	Chains    int // replicas run
	Exchanges int // barriers executed
	Adoptions int // chains that adopted the global best at a barrier
	PerChain  []Stats
}

// Hooks customizes a RunChains execution. All fields are optional.
type Hooks[S any] struct {
	// OnIteration runs at the start of every chain iteration, strictly
	// sequentially within that chain (never concurrently with the same
	// chain's moves or cost evaluations). Use it for per-chain state that
	// must be refreshed deterministically, e.g. the Problem 2 grouped
	// optimal-pressure computation.
	OnIteration func(chain, iter int, cur S)
	// Progress is called from the single coordinator goroutine at every
	// exchange barrier with one entry per chain, in chain order.
	Progress func([]ChainProgress)
	// Snapshot is called from the coordinator goroutine at every exchange
	// barrier (after the best reduction and adoptions) with a checkpoint
	// that resumes the run bitwise-identically via ResumeChains. The
	// checkpoint's states alias live chain state: copy or serialize them
	// before returning if S holds pointers or slices.
	Snapshot func(*Checkpoint[S])
}

// chainSeed derives chain c's seed from the root seed via a splitmix64
// step, so chains are decorrelated but reproducible from the root alone.
func chainSeed(root int64, chain int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(chain+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// chainState is one replica's mutable state between barriers.
type chainState[S any] struct {
	rng      *rand.Rand
	src      *countingSource // the source behind rng, for checkpointing
	cur      S
	curCost  float64
	best     S
	bestCost float64
	temp     float64
	stats    Stats
}

// RunChains anneals cfg.Chains independent replicas from the initial
// state, exchanging the global best every cfg.ExchangeEvery iterations.
// move must return a fresh candidate (never mutate its argument); cost
// must be a pure function of its state (and of any chain-local state
// maintained via Hooks.OnIteration), returning +Inf for infeasible
// states. Cancelling ctx stops the run at the next iteration boundary
// and returns the best state seen so far.
//
// For a fixed cfg (including Seed) and pure move/cost, the returned
// state, cost and per-chain statistics are identical regardless of
// cfg.Parallelism and GOMAXPROCS.
func RunChains[S any](ctx context.Context, cfg Config, initial S,
	move func(rng *rand.Rand, chain int, cur S) S,
	cost func(chain int, s S) float64,
	hooks Hooks[S]) (S, float64, ChainStats) {
	return ResumeChains(ctx, cfg, nil, initial, move, cost, hooks)
}

// ResumeChains continues a RunChains execution from a checkpoint taken
// by Hooks.Snapshot. cfg must match the original run (same Seed,
// Chains, Iterations, Neighbors, CoolRate, ...); move and cost must be
// the same pure functions, with any chain-local state they depend on
// restored by the caller. A nil checkpoint starts a fresh run. The
// resumed run's final state, cost and statistics are bitwise identical
// to the uninterrupted run's.
//
// len(from.Chains) must equal the configured chain count; a mismatch
// panics, since silently reseeding chains would corrupt determinism.
func ResumeChains[S any](ctx context.Context, cfg Config, from *Checkpoint[S], initial S,
	move func(rng *rand.Rand, chain int, cur S) S,
	cost func(chain int, s S) float64,
	hooks Hooks[S]) (S, float64, ChainStats) {

	cfg = cfg.withDefaults()
	K := cfg.Chains
	if K < 1 {
		K = 1
	}
	exchange := cfg.ExchangeEvery
	if exchange == 0 {
		exchange = 5
	}
	if exchange < 0 {
		exchange = cfg.Iterations // one barrier at the very end only
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Shared evaluation-slot semaphore: bounds concurrent cost calls
	// across all chains, so K chains with N neighbors each never run more
	// than Parallelism evaluations at once.
	sem := make(chan struct{}, cfg.Parallelism)

	var chains []*chainState[S]
	cstats := ChainStats{Chains: K}
	var globalBest S
	var globalBestCost float64
	sinceImprove := 0
	done := 0
	if from != nil {
		if len(from.Chains) != K {
			panic("anneal: checkpoint chain count does not match config")
		}
		chains = restore(cfg, from)
		globalBest, globalBestCost = from.GlobalBest, from.GlobalBestCost
		cstats.Exchanges, cstats.Adoptions = from.Exchanges, from.Adoptions
		done, sinceImprove = from.Done, from.SinceImprove
	} else {
		chains = make([]*chainState[S], K)
		var init sync.WaitGroup
		for c := 0; c < K; c++ {
			init.Add(1)
			go func(c int) {
				defer init.Done()
				sem <- struct{}{}
				c0 := cost(c, initial)
				<-sem
				src := newCountingSource(chainSeed(cfg.Seed, c))
				st := &chainState[S]{
					rng: rand.New(src), src: src,
					cur: initial, curCost: c0,
					best: initial, bestCost: c0,
					stats: Stats{Evaluations: 1},
				}
				st.temp = cfg.InitTemp
				if st.temp <= 0 {
					st.temp = math.Abs(c0) / 10
					if st.temp == 0 || math.IsInf(st.temp, 0) || math.IsNaN(st.temp) {
						st.temp = 1
					}
				}
				chains[c] = st
			}(c)
		}
		init.Wait()

		globalBest = chains[0].best
		globalBestCost = chains[0].bestCost
		for _, st := range chains[1:] {
			if st.bestCost < globalBestCost { // identical initial: stays chain 0
				globalBest, globalBestCost = st.best, st.bestCost
			}
		}
	}

	type cand struct {
		s S
		c float64
	}
	// segment advances one chain by up to `span` iterations. It runs in
	// the chain's own goroutine; inside, candidate evaluations fan out
	// through the shared semaphore and are reduced by candidate index.
	segment := func(c, startIter, span int) {
		st := chains[c]
		for k := 0; k < span; k++ {
			if ctx.Err() != nil {
				return
			}
			iter := startIter + k
			if hooks.OnIteration != nil {
				hooks.OnIteration(c, iter, st.cur)
			}
			st.stats.Iterations++
			cands := make([]cand, cfg.Neighbors)
			for i := range cands {
				cands[i].s = move(st.rng, c, st.cur)
			}
			var wg sync.WaitGroup
			for i := range cands {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int) {
					defer wg.Done()
					cands[i].c = cost(c, cands[i].s)
					<-sem
				}(i)
			}
			wg.Wait()
			st.stats.Evaluations += len(cands)

			bi := 0
			for i := 1; i < len(cands); i++ {
				if cands[i].c < cands[bi].c {
					bi = i
				}
			}
			next, nextCost := cands[bi].s, cands[bi].c

			accept := false
			switch {
			case math.IsInf(nextCost, 1):
			case nextCost <= st.curCost:
				accept = true
			default:
				accept = st.rng.Float64() < math.Exp((st.curCost-nextCost)/math.Max(st.temp, 1e-300))
			}
			if accept {
				st.cur, st.curCost = next, nextCost
				st.stats.Accepted++
			}
			if nextCost < st.bestCost {
				st.best, st.bestCost = next, nextCost
				st.stats.Improved++
			}
			st.temp *= cfg.CoolRate
		}
	}

	for done < cfg.Iterations {
		span := min(exchange, cfg.Iterations-done)
		var wg sync.WaitGroup
		for c := 0; c < K; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				segment(c, done, span)
			}(c)
		}
		wg.Wait()
		// A cancellation that lands mid-segment leaves chains at
		// different iterations — not a consistent cut. Stop before the
		// barrier bookkeeping so no snapshot of the partial span is ever
		// taken; resume replays from the previous barrier bitwise.
		if ctx.Err() != nil {
			break
		}
		done += span
		cstats.Exchanges++

		// Barrier reduction, strictly in chain order: ties keep the
		// lowest chain index, so the winner never depends on scheduling.
		improved := false
		for _, st := range chains {
			if st.bestCost < globalBestCost {
				globalBest, globalBestCost = st.best, st.bestCost
				improved = true
			}
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove += span
		}
		// Exchange: lagging chains restart from the global best. Chains
		// already at (or below) the best cost keep their own state, which
		// preserves diversity among the leaders.
		if !math.IsInf(globalBestCost, 1) {
			for _, st := range chains {
				if st.curCost > globalBestCost {
					st.cur, st.curCost = globalBest, globalBestCost
					cstats.Adoptions++
				}
			}
		}
		if hooks.Progress != nil {
			prog := make([]ChainProgress, K)
			for c, st := range chains {
				prog[c] = ChainProgress{
					Chain: c, Iteration: done,
					BestCost: st.bestCost, CurCost: st.curCost,
					Evaluations: st.stats.Evaluations,
				}
			}
			hooks.Progress(prog)
		}
		if hooks.Snapshot != nil {
			hooks.Snapshot(snapshot(chains, done, sinceImprove, globalBest, globalBestCost, cstats))
		}
		if ctx.Err() != nil {
			break
		}
		if cfg.Converge > 0 && sinceImprove >= cfg.Converge {
			break
		}
	}

	cstats.PerChain = make([]Stats, K)
	for c, st := range chains {
		cstats.PerChain[c] = st.stats
		cstats.Stats.Iterations += st.stats.Iterations
		cstats.Stats.Evaluations += st.stats.Evaluations
		cstats.Stats.Accepted += st.stats.Accepted
		cstats.Stats.Improved += st.stats.Improved
	}
	return globalBest, globalBestCost, cstats
}
