package power

import (
	"math"
	"testing"
	"testing/quick"

	"lcn3d/internal/grid"
)

var d21 = grid.Dims{NX: 21, NY: 21}

func TestTotalAndScale(t *testing.T) {
	m := New(d21)
	m.AddUniform(10)
	if got := m.Total(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Total = %g, want 10", got)
	}
	m.ScaleTo(42.038)
	if got := m.Total(); math.Abs(got-42.038) > 1e-9 {
		t.Fatalf("scaled Total = %g, want 42.038", got)
	}
}

func TestAddGaussianConservesPower(t *testing.T) {
	m := New(d21)
	m.AddGaussian(10, 10, 2, 7.5)
	if got := m.Total(); math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("Gaussian total = %g, want 7.5", got)
	}
	// Peak should be at the center.
	if m.At(10, 10) <= m.At(0, 0) {
		t.Fatal("Gaussian peak should exceed corner")
	}
}

func TestAddBlockClipped(t *testing.T) {
	m := New(d21)
	m.AddBlock(-5, -5, 3, 3, 9)
	if got := m.Total(); math.Abs(got-9) > 1e-9 {
		t.Fatalf("clipped block total = %g, want 9", got)
	}
	if m.At(0, 0) != 1 {
		t.Fatalf("block cell power = %g, want 1", m.At(0, 0))
	}
	if m.At(5, 5) != 0 {
		t.Fatal("outside block should be zero")
	}
	// Fully outside block is a no-op.
	m2 := New(d21)
	m2.AddBlock(30, 30, 40, 40, 5)
	if m2.Total() != 0 {
		t.Fatal("out-of-grid block should add nothing")
	}
}

func TestHotspotsDeterministicAndScaled(t *testing.T) {
	a := Hotspots(d21, 7, 4, 0.7, 42.038)
	b := Hotspots(d21, 7, 4, 0.7, 42.038)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed must give identical maps")
		}
	}
	if math.Abs(a.Total()-42.038) > 1e-9 {
		t.Fatalf("total = %g", a.Total())
	}
	c := Hotspots(d21, 8, 4, 0.7, 42.038)
	same := true
	for i := range a.W {
		if a.W[i] != c.W[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different maps")
	}
}

func TestHotspotsNonNegativeProperty(t *testing.T) {
	f := func(seed int64, n uint8, contrast float64) bool {
		c := math.Abs(math.Mod(contrast, 1))
		if math.IsNaN(c) {
			return true
		}
		m := Hotspots(d21, seed, int(n%6), c, 37)
		for _, v := range m.W {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return math.Abs(m.Total()-37) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientMonotone(t *testing.T) {
	m := Gradient(d21, 1, 5, 100)
	for x := 1; x < d21.NX; x++ {
		if m.At(x, 10) < m.At(x-1, 10) {
			t.Fatalf("gradient not monotone at x=%d", x)
		}
	}
	if math.Abs(m.Total()-100) > 1e-9 {
		t.Fatalf("total = %g", m.Total())
	}
}

func TestCheckerRatio(t *testing.T) {
	m := Checker(grid.Dims{NX: 8, NY: 8}, 2, 4, 80)
	hi, lo := m.At(0, 0), m.At(2, 0)
	if math.Abs(hi/lo-4) > 1e-9 {
		t.Fatalf("checker ratio = %g, want 4", hi/lo)
	}
}

func TestAggregatePreservesTotal(t *testing.T) {
	fine := grid.Dims{NX: 101, NY: 101}
	m := Hotspots(fine, 3, 5, 0.6, 148.174)
	ti, err := grid.NewTiling(fine, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Aggregate(ti)
	if c.Dims != ti.Coarse {
		t.Fatalf("aggregate dims %v, want %v", c.Dims, ti.Coarse)
	}
	if math.Abs(c.Total()-m.Total()) > 1e-6 {
		t.Fatalf("aggregate total %g != fine total %g", c.Total(), m.Total())
	}
}

func TestMaxAndClone(t *testing.T) {
	m := New(d21)
	m.Set(3, 4, 9)
	if m.Max() != 9 {
		t.Fatalf("Max = %g", m.Max())
	}
	c := m.Clone()
	c.Set(3, 4, 1)
	if m.At(3, 4) != 9 {
		t.Fatal("Clone must not alias")
	}
}

func TestScaleToZeroMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(d21).ScaleTo(5)
}

func TestCoreGridScaleConsistency(t *testing.T) {
	// Same pitch/size/contrast at two scales: per-cell peak power and
	// background level match, only the core count differs.
	small := CoreGrid(grid.Dims{NX: 51, NY: 51}, 3, 16, 8, 0.5, 10.0)
	big := CoreGrid(grid.Dims{NX: 101, NY: 101}, 3, 16, 8, 0.5, 10.0*101*101/(51.0*51.0))
	relErr := math.Abs(small.Max()-big.Max()) / big.Max()
	if relErr > 0.05 {
		t.Fatalf("peak cell power differs across scales: %g vs %g", small.Max(), big.Max())
	}
}

func TestCoreGridConservesTotal(t *testing.T) {
	m := CoreGrid(d21, 5, 8, 4, 0.6, 7.5)
	if math.Abs(m.Total()-7.5) > 1e-9 {
		t.Fatalf("total %g", m.Total())
	}
	for _, v := range m.W {
		if v < 0 {
			t.Fatal("negative power")
		}
	}
}

func TestCoreGridDeterministic(t *testing.T) {
	a := CoreGrid(d21, 9, 8, 4, 0.6, 5)
	b := CoreGrid(d21, 9, 8, 4, 0.6, 5)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed must give identical maps")
		}
	}
}

func TestCoreGridRejectsBadParams(t *testing.T) {
	for _, c := range [][2]int{{1, 1}, {8, 9}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pitch=%d size=%d should panic", c[0], c[1])
				}
			}()
			CoreGrid(d21, 1, c[0], c[1], 0.5, 1)
		}()
	}
}
